// Round-trip tests for template persistence (core/serialize.hpp).
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "core/csa.hpp"
#include "core/serialize.hpp"
#include "sim/acquisition.hpp"

namespace sidis::core {
namespace {

TEST(Serialize, MatrixAndVectorRoundTripExactly) {
  std::mt19937_64 rng(1);
  std::normal_distribution<double> d(0, 1);
  linalg::Matrix m(3, 4);
  for (double& v : m.data()) v = d(rng);
  std::stringstream ss;
  write_matrix(ss, m);
  EXPECT_EQ(read_matrix(ss), m);  // bit-exact via hex floats

  linalg::Vector v{1.0 / 3.0, -2.718281828459045, 0.0, 1e-300};
  std::stringstream sv;
  write_vector(sv, v);
  EXPECT_EQ(read_vector(sv), v);
}

TEST(Serialize, CorruptArchivesThrow) {
  std::stringstream ss("vec 3 0x1p+0 0x1p+1");  // one value short
  EXPECT_THROW(read_vector(ss), std::runtime_error);
  std::stringstream tag("nope 1 2");
  EXPECT_THROW(read_matrix(tag), std::runtime_error);
  std::stringstream neg("mat -1 2");
  EXPECT_THROW(read_matrix(neg), std::runtime_error);
}

TEST(Serialize, QdaRoundTripPredictsIdentically) {
  std::mt19937_64 rng(2);
  std::normal_distribution<double> noise(0, 0.4);
  std::vector<linalg::Vector> rows;
  std::vector<int> y;
  for (int i = 0; i < 120; ++i) {
    rows.push_back({noise(rng) - 1.5, noise(rng)});
    y.push_back(-3);
    rows.push_back({noise(rng) + 1.5, noise(rng)});
    y.push_back(9);
  }
  ml::Dataset train;
  train.x = linalg::Matrix::from_rows(rows);
  train.y = y;
  ml::Qda original;
  original.fit(train);

  std::stringstream ss;
  save_qda(ss, original);
  const ml::Qda restored = load_qda(ss);
  EXPECT_EQ(restored.labels(), original.labels());
  for (int i = 0; i < 50; ++i) {
    const linalg::Vector x{noise(rng) * 4, noise(rng) * 4};
    EXPECT_EQ(restored.predict(x), original.predict(x));
    const linalg::Vector sa = original.scores(x);
    const linalg::Vector sb = restored.scores(x);
    for (std::size_t c = 0; c < sa.size(); ++c) EXPECT_NEAR(sb[c], sa[c], 1e-9);
  }
}

class SerializeFixture : public ::testing::Test {
 protected:
  sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                    sim::SessionContext::make(0)};
  std::mt19937_64 rng{3};
};

TEST_F(SerializeFixture, PipelineRoundTripTransformsIdentically) {
  const sim::TraceSet a =
      campaign.capture_class(*avr::class_index(avr::Mnemonic::kAdd), 60, 5, rng);
  const sim::TraceSet b =
      campaign.capture_class(*avr::class_index(avr::Mnemonic::kAnd), 60, 5, rng);
  features::PipelineConfig cfg = csa_config();
  cfg.pca_components = 8;
  const auto original = features::FeaturePipeline::fit({{0, 1}, {&a, &b}}, cfg);

  std::stringstream ss;
  save_pipeline(ss, original);
  const auto restored = load_pipeline(ss);
  EXPECT_EQ(restored.unified_points().size(), original.unified_points().size());
  EXPECT_EQ(restored.grid_size(), original.grid_size());
  for (const sim::Trace& t : a) {
    const linalg::Vector za = original.transform(t);
    const linalg::Vector zb = restored.transform(t);
    ASSERT_EQ(za.size(), zb.size());
    for (std::size_t i = 0; i < za.size(); ++i) EXPECT_NEAR(zb[i], za[i], 1e-9);
  }
}

TEST_F(SerializeFixture, DisassemblerRoundTripClassifiesIdentically) {
  ProfilingData data;
  for (avr::Mnemonic m : {avr::Mnemonic::kAdd, avr::Mnemonic::kLdi, avr::Mnemonic::kCom}) {
    data.classes[*avr::class_index(m)] =
        campaign.capture_class(*avr::class_index(m), 60, 5, rng);
  }
  HierarchicalConfig cfg;
  cfg.pipeline = csa_config();
  cfg.pipeline.pca_components = 10;
  cfg.group_components = 8;
  cfg.instruction_components = 8;
  auto original = HierarchicalDisassembler::train(data, cfg);
  // v2 archives carry the reject-gate thresholds; calibrate so the gates are
  // armed with non-trivial floors before the round trip.
  original.calibrate_reject(data);
  ASSERT_TRUE(original.reject_calibrated());

  std::stringstream ss;
  save_disassembler(ss, original);
  const auto restored = load_disassembler(ss);
  EXPECT_TRUE(restored.reject_calibrated());

  for (int i = 0; i < 25; ++i) {
    const sim::Trace t = campaign.capture_trace(
        avr::random_instance(*avr::class_index(avr::Mnemonic::kAdd), rng),
        sim::ProgramContext::make(i % 5), rng);
    const Disassembly da = original.classify(t);
    const Disassembly db = restored.classify(t);
    EXPECT_EQ(da.group, db.group);
    EXPECT_EQ(da.class_idx, db.class_idx);
    EXPECT_EQ(da.verdict, db.verdict);
    // Hex-float persistence makes the gate floors, and therefore the
    // headroom arithmetic, bit-exact across the round trip.
    EXPECT_EQ(da.margin_headroom, db.margin_headroom);
    EXPECT_EQ(da.score_headroom, db.score_headroom);
  }
}

TEST_F(SerializeFixture, RejectOperatingPointRoundTripsAndDowngradesToCustom) {
  ProfilingData data;
  for (avr::Mnemonic m : {avr::Mnemonic::kAdd, avr::Mnemonic::kLdi, avr::Mnemonic::kCom}) {
    data.classes[*avr::class_index(m)] =
        campaign.capture_class(*avr::class_index(m), 60, 5, rng);
  }
  HierarchicalConfig cfg;
  cfg.pipeline = csa_config();
  cfg.pipeline.pca_components = 10;
  cfg.group_components = 8;
  cfg.instruction_components = 8;
  auto original = HierarchicalDisassembler::train(data, cfg);
  original.calibrate_reject(data, RejectOperatingPoint::kBalanced);
  ASSERT_TRUE(original.reject_calibrated());
  ASSERT_EQ(original.reject_operating_point(), RejectOperatingPoint::kBalanced);

  std::stringstream ss;
  save_disassembler(ss, original);
  const auto restored = load_disassembler(ss);
  EXPECT_EQ(restored.reject_operating_point(), RejectOperatingPoint::kBalanced);

  // An explicit RejectConfig is a custom point, and stays one across the trip.
  auto custom = HierarchicalDisassembler::train(data, cfg);
  custom.calibrate_reject(data, RejectConfig{});
  EXPECT_EQ(custom.reject_operating_point(), RejectOperatingPoint::kCustom);
  std::stringstream cs;
  save_disassembler(cs, custom);
  EXPECT_EQ(load_disassembler(cs).reject_operating_point(),
            RejectOperatingPoint::kCustom);

  // A pre-v4 archive has no operating-point trailer: the gates still arm,
  // the point downgrades to kCustom (we cannot know which preset, if any,
  // produced the stored floors).  Pre-v5 archives also carry no "kind" line,
  // so the downgrade strips it along with the version.
  std::string archive = ss.str();
  const std::string current_header = "sidis-template 5\nkind plain\n";
  ASSERT_EQ(archive.rfind(current_header, 0), 0u);
  archive.replace(0, current_header.size(), "sidis-template 3\n");
  std::stringstream old(archive);
  const auto legacy = load_disassembler(old);
  EXPECT_TRUE(legacy.reject_calibrated());
  EXPECT_EQ(legacy.reject_operating_point(), RejectOperatingPoint::kCustom);
}

TEST_F(SerializeFixture, NonQdaModelRefusesToPersist) {
  ProfilingData data;
  for (avr::Mnemonic m : {avr::Mnemonic::kAdd, avr::Mnemonic::kLdi}) {
    data.classes[*avr::class_index(m)] =
        campaign.capture_class(*avr::class_index(m), 40, 4, rng);
  }
  HierarchicalConfig cfg;
  cfg.pipeline = csa_config();
  cfg.pipeline.pca_components = 6;
  cfg.classifier = ml::ClassifierKind::kKnn;
  const auto model = HierarchicalDisassembler::train(data, cfg);
  std::stringstream ss;
  EXPECT_THROW(save_disassembler(ss, model), std::invalid_argument);
}

TEST(Serialize, BadMagicRejected) {
  std::stringstream ss("not-a-template 1");
  EXPECT_THROW(load_disassembler(ss), std::runtime_error);
}

/// Paired power+EM corpus and per-channel models for the v5 fused archives.
class FusedSerializeFixture : public ::testing::Test {
 protected:
  FusedSerializeFixture() {
    HierarchicalConfig cfg;
    cfg.pipeline = csa_config();
    cfg.pipeline.pca_components = 10;
    cfg.group_components = 8;
    cfg.instruction_components = 8;
    ProfilingData power_data, em_data;
    for (avr::Mnemonic m :
         {avr::Mnemonic::kAdd, avr::Mnemonic::kLdi, avr::Mnemonic::kCom}) {
      const std::size_t c = *avr::class_index(m);
      paired_[c] = campaign_.capture_class(c, 60, 5, rng_);
      power_data.classes[c] = sim::channel_views(paired_[c], sim::Channel::kPower);
      em_data.classes[c] = sim::channel_views(paired_[c], sim::Channel::kEm);
    }
    power_ = std::make_shared<const HierarchicalDisassembler>(
        HierarchicalDisassembler::train(power_data, cfg));
    em_ = std::make_shared<const HierarchicalDisassembler>(
        HierarchicalDisassembler::train(em_data, cfg));
  }

  sim::Trace probe(int i) {
    return campaign_.capture_trace(
        avr::random_instance(*avr::class_index(avr::Mnemonic::kAdd), rng_),
        sim::ProgramContext::make(i % 5), rng_);
  }

  sim::AcquisitionCampaign campaign_{
      sim::DeviceModel::make(0), sim::SessionContext::make(0),
      sim::LeakageConfig{}, sim::ScopeConfig{}, [] {
        sim::AcquisitionOptions o;
        o.em.enabled = true;
        return o;
      }()};
  std::mt19937_64 rng_{7};
  std::map<std::size_t, sim::TraceSet> paired_;
  std::shared_ptr<const HierarchicalDisassembler> power_, em_;
};

TEST_F(FusedSerializeFixture, FusedRoundTripClassifiesIdentically) {
  FusedDisassembler original(power_, em_,
                             LevelFusion{FusionMode::kScore, 0.5, 0.5},
                             LevelFusion{FusionMode::kScore, 0.75, 0.25});
  original.train_feature_heads(paired_);
  original.set_group_fusion(LevelFusion{FusionMode::kFeature, 0.5, 0.5});
  ASSERT_TRUE(original.has_feature_heads());

  std::stringstream ss;
  save_fused_disassembler(ss, original);
  const FusedDisassembler restored = load_fused_disassembler(ss);
  ASSERT_NE(restored.em_model(), nullptr);
  EXPECT_TRUE(restored.has_feature_heads());
  EXPECT_EQ(restored.group_fusion().mode, FusionMode::kFeature);
  EXPECT_EQ(restored.instruction_fusion().mode, FusionMode::kScore);
  EXPECT_EQ(restored.instruction_fusion().power_weight, 0.75);
  EXPECT_EQ(restored.instruction_fusion().em_weight, 0.25);
  EXPECT_EQ(restored.posterior_classes(), original.posterior_classes());

  for (int i = 0; i < 25; ++i) {
    const sim::Trace t = probe(i);
    const Disassembly da = original.classify_scored(t);
    const Disassembly db = restored.classify_scored(t);
    EXPECT_EQ(da.group, db.group);
    EXPECT_EQ(da.class_idx, db.class_idx);
    EXPECT_EQ(da.verdict, db.verdict);
    // Hex-float persistence keeps the fused posterior bit-exact too.
    ASSERT_EQ(da.log_posterior.size(), db.log_posterior.size());
    for (std::size_t c = 0; c < da.log_posterior.size(); ++c) {
      EXPECT_EQ(da.log_posterior[c], db.log_posterior[c]);
    }
  }
}

TEST_F(FusedSerializeFixture, PlainArchiveLoadsAsPowerOnlyFusion) {
  std::stringstream ss;
  save_disassembler(ss, *power_);
  std::string archive = ss.str();

  // v5 plain archive -> power-only fusion, bit-identical to the plain model.
  std::stringstream v5(archive);
  const FusedDisassembler fused = load_fused_disassembler(v5);
  EXPECT_EQ(fused.em_model(), nullptr);
  EXPECT_TRUE(fused.degenerate_to(sim::Channel::kPower));
  for (int i = 0; i < 10; ++i) {
    const sim::Trace t = probe(i);
    const Disassembly a = power_->classify(sim::channel_view(t, sim::Channel::kPower));
    const Disassembly b = fused.classify(t);
    EXPECT_EQ(a.class_idx, b.class_idx);
    EXPECT_EQ(a.verdict, b.verdict);
    EXPECT_EQ(a.margin_headroom, b.margin_headroom);
  }

  // Previous-version archive (no "kind" line) -> same power-only wrap.
  const std::string current_header = "sidis-template 5\nkind plain\n";
  ASSERT_EQ(archive.rfind(current_header, 0), 0u);
  archive.replace(0, current_header.size(), "sidis-template 4\n");
  std::stringstream v4(archive);
  const FusedDisassembler legacy = load_fused_disassembler(v4);
  EXPECT_EQ(legacy.em_model(), nullptr);
  EXPECT_TRUE(legacy.degenerate_to(sim::Channel::kPower));
}

TEST_F(FusedSerializeFixture, PlainLoaderRejectsFusedArchive) {
  FusedDisassembler fused(power_, em_, LevelFusion{FusionMode::kScore, 0.5, 0.5},
                          LevelFusion{FusionMode::kScore, 0.5, 0.5});
  std::stringstream ss;
  save_fused_disassembler(ss, fused);
  EXPECT_THROW(load_disassembler(ss), std::runtime_error);
}

}  // namespace
}  // namespace sidis::core

// Tests for KL feature selection and the end-to-end feature pipeline.
#include <gtest/gtest.h>

#include <random>

#include "core/csa.hpp"
#include "features/pipeline.hpp"
#include "features/selection.hpp"
#include "ml/discriminant.hpp"
#include "sim/acquisition.hpp"

namespace sidis::features {
namespace {

/// Synthetic trace whose value at index 100 depends on the class and whose
/// value at index 200 depends on the program -- a minimal covariate-shift
/// microcosm that exercises the selection logic without the full simulator.
sim::Trace synthetic_trace(int cls, int program, std::mt19937_64& rng) {
  std::normal_distribution<double> noise(0.0, 0.05);
  sim::Trace t;
  t.samples.assign(315, 0.0);
  for (double& v : t.samples) v = noise(rng);
  // Class-dependent burst (stable across programs).
  for (int i = 95; i < 105; ++i) t.samples[static_cast<std::size_t>(i)] += cls ? 1.0 : -1.0;
  // Program-dependent burst (same for both classes).
  for (int i = 195; i < 205; ++i) {
    t.samples[static_cast<std::size_t>(i)] += 0.8 * program;
  }
  t.meta.class_idx = static_cast<std::size_t>(cls);
  t.meta.program_id = program;
  return t;
}

sim::TraceSet synthetic_set(int cls, int num_programs, std::size_t per_program,
                            std::mt19937_64& rng) {
  sim::TraceSet out;
  for (int p = 0; p < num_programs; ++p) {
    for (std::size_t i = 0; i < per_program; ++i) out.push_back(synthetic_trace(cls, p, rng));
  }
  return out;
}

TEST(Selection, MomentsSplitPerProgram) {
  std::mt19937_64 rng(1);
  const sim::TraceSet set = synthetic_set(0, 4, 10, rng);
  const dsp::Cwt cwt{dsp::CwtConfig{}};
  const ClassMoments m = compute_class_moments(cwt, set);
  EXPECT_EQ(m.per_program.size(), 4u);
  EXPECT_EQ(m.trace_count, 40u);
  EXPECT_EQ(m.per_program_counts, (std::vector<std::size_t>{10, 10, 10, 10}));
}

TEST(Selection, WithinClassMapPeaksAtProgramDependentRegion) {
  std::mt19937_64 rng(2);
  const sim::TraceSet set = synthetic_set(0, 4, 30, rng);
  const dsp::Cwt cwt{dsp::CwtConfig{}};
  const ClassMoments m = compute_class_moments(cwt, set);
  const linalg::Matrix w = within_class_kl_map(m);
  // The program-dependent burst sits around sample 200; KL there must exceed
  // KL at the class-dependent (but program-stable) burst near sample 100.
  double kl_at_200 = 0.0, kl_at_100 = 0.0;
  for (std::size_t j = 0; j < w.rows(); ++j) {
    kl_at_200 = std::max(kl_at_200, w(j, 200));
    kl_at_100 = std::max(kl_at_100, w(j, 100));
  }
  EXPECT_GT(kl_at_200, 10.0 * kl_at_100);
}

TEST(Selection, BetweenClassMapPeaksAtClassDependentRegion) {
  std::mt19937_64 rng(3);
  const dsp::Cwt cwt{dsp::CwtConfig{}};
  const ClassMoments a = compute_class_moments(cwt, synthetic_set(0, 4, 30, rng));
  const ClassMoments b = compute_class_moments(cwt, synthetic_set(1, 4, 30, rng));
  const linalg::Matrix between = between_class_kl_map(a, b);
  double kl_at_100 = 0.0, kl_elsewhere = 0.0;
  for (std::size_t j = 0; j < between.rows(); ++j) {
    kl_at_100 = std::max(kl_at_100, between(j, 100));
    kl_elsewhere = std::max(kl_elsewhere, between(j, 280));
  }
  EXPECT_GT(kl_at_100, 20.0 * kl_elsewhere);
}

TEST(Selection, DnvpExcludesProgramSensitivePoints) {
  std::mt19937_64 rng(4);
  const dsp::Cwt cwt{dsp::CwtConfig{}};
  const sim::TraceSet sa = synthetic_set(0, 4, 40, rng);
  const sim::TraceSet sb = synthetic_set(1, 4, 40, rng);
  const ClassMoments a = compute_class_moments(cwt, sa);
  const ClassMoments b = compute_class_moments(cwt, sb);
  const double th = 0.01 + within_class_noise_floor(a);
  const auto mask_a = nvp_mask(within_class_kl_map(a), th);
  const auto mask_b = nvp_mask(within_class_kl_map(b), th);
  const linalg::Matrix between = between_class_kl_map(a, b);
  const auto points = dnvp(between, mask_a, mask_b, 8);
  ASSERT_FALSE(points.empty());
  for (const auto& p : points) {
    // The program-dependent burst occupies samples ~195-205 (plus CWT smear);
    // no selected point may sit in it.
    EXPECT_TRUE(p.k < 160 || p.k > 240) << "selected program-sensitive point k=" << p.k;
  }
}

TEST(Selection, NoiseFloorShrinksWithCorpus) {
  std::mt19937_64 rng(5);
  const dsp::Cwt cwt{dsp::CwtConfig{}};
  const ClassMoments small = compute_class_moments(cwt, synthetic_set(0, 3, 10, rng));
  const ClassMoments big = compute_class_moments(cwt, synthetic_set(0, 6, 40, rng));
  EXPECT_GT(within_class_noise_floor(small), within_class_noise_floor(big));
}

TEST(Selection, MomentsAreWorkerCountInvariant) {
  std::mt19937_64 rng(21);
  const sim::TraceSet set = synthetic_set(0, 3, 25, rng);
  const dsp::Cwt cwt{dsp::CwtConfig{}};
  const ClassMoments seq = compute_class_moments(cwt, set, 1e-12, 1);
  for (const std::size_t workers : {std::size_t{2}, std::size_t{5}}) {
    const ClassMoments par = compute_class_moments(cwt, set, 1e-12, workers);
    ASSERT_EQ(par.per_program.size(), seq.per_program.size());
    // Bit-identical, not merely close: the reduction runs in trace order
    // regardless of the worker count.
    for (std::size_t i = 0; i < seq.pooled.mean.data().size(); ++i) {
      ASSERT_EQ(par.pooled.mean.data()[i], seq.pooled.mean.data()[i]) << "workers=" << workers;
      ASSERT_EQ(par.pooled.var.data()[i], seq.pooled.var.data()[i]) << "workers=" << workers;
    }
    for (std::size_t p = 0; p < seq.per_program.size(); ++p) {
      for (std::size_t i = 0; i < seq.per_program[p].mean.data().size(); ++i) {
        ASSERT_EQ(par.per_program[p].mean.data()[i], seq.per_program[p].mean.data()[i]);
      }
    }
  }
}

TEST(Selection, UnifyPointsDeduplicates) {
  const std::vector<std::vector<stats::GridPoint>> pairs = {
      {{1, 2, 5.0}, {3, 4, 2.0}},
      {{1, 2, 5.0}, {7, 8, 9.0}},
  };
  const auto unified = unify_points(pairs);
  ASSERT_EQ(unified.size(), 3u);
  EXPECT_EQ(unified.front().j, 7u);  // sorted by value desc
}

TEST(Selection, ExtractFeaturesMatchesGrid) {
  std::mt19937_64 rng(6);
  const sim::Trace t = synthetic_trace(0, 0, rng);
  const dsp::Cwt cwt{dsp::CwtConfig{}};
  const dsp::Scalogram s = cwt.transform(t.samples);
  const std::vector<stats::GridPoint> pts = {{5, 100, 0}, {20, 250, 0}};
  const linalg::Vector f = extract_features(cwt, t.samples, pts);
  EXPECT_NEAR(f[0], s(5, 100), 1e-12);
  EXPECT_NEAR(f[1], s(20, 250), 1e-12);
}

TEST(Selection, ExtractFeaturesWorkspaceOverloadAgrees) {
  std::mt19937_64 rng(22);
  const sim::Trace t = synthetic_trace(1, 2, rng);
  const dsp::Cwt cwt{dsp::CwtConfig{}};
  std::vector<stats::GridPoint> pts;
  for (std::size_t k = 5; k < 300; k += 3) pts.push_back({17, k, 0.0});  // dense scale
  pts.push_back({3, 80, 0.0});
  const linalg::Vector plain = extract_features(cwt, t.samples, pts);
  dsp::CwtWorkspace ws;
  const linalg::Vector with_ws = extract_features(cwt, t.samples, pts, ws);
  ASSERT_EQ(plain.size(), with_ws.size());
  for (std::size_t i = 0; i < plain.size(); ++i) EXPECT_EQ(plain[i], with_ws[i]);
}

class PipelineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    std::mt19937_64 rng(7);
    a_train_ = synthetic_set(0, 5, 40, rng);
    b_train_ = synthetic_set(1, 5, 40, rng);
    a_test_ = synthetic_set(0, 5, 10, rng);
    b_test_ = synthetic_set(1, 5, 10, rng);
    cfg_.pca_components = 4;
    cfg_.kl_threshold = 0.01;
  }
  sim::TraceSet a_train_, b_train_, a_test_, b_test_;
  PipelineConfig cfg_;
};

TEST_F(PipelineFixture, FitTransformClassify) {
  const auto pipe = FeaturePipeline::fit({{0, 1}, {&a_train_, &b_train_}}, cfg_);
  EXPECT_FALSE(pipe.unified_points().empty());
  EXPECT_EQ(pipe.grid_size(), 50u * 315u);
  const ml::Dataset train = pipe.transform({{0, 1}, {&a_train_, &b_train_}});
  EXPECT_EQ(train.size(), a_train_.size() + b_train_.size());
  EXPECT_LE(train.dim(), 4u);
  ml::Qda qda;
  qda.fit(train);
  const ml::Dataset test = pipe.transform({{0, 1}, {&a_test_, &b_test_}});
  EXPECT_GE(qda.accuracy(test), 0.95);
}

TEST_F(PipelineFixture, ComponentTruncationAtTransform) {
  const auto pipe = FeaturePipeline::fit({{0, 1}, {&a_train_, &b_train_}}, cfg_);
  const linalg::Vector z2 = pipe.transform(a_test_.front(), 2);
  EXPECT_EQ(z2.size(), 2u);
  const linalg::Vector zfull = pipe.transform(a_test_.front());
  EXPECT_NEAR(z2[0], zfull[0], 1e-12);
  EXPECT_NEAR(z2[1], zfull[1], 1e-12);
}

TEST_F(PipelineFixture, PrecomputeSharedAcrossPairFits) {
  const auto data = FeaturePipeline::precompute({{0, 1}, {&a_train_, &b_train_}}, cfg_);
  ASSERT_EQ(data.size(), 2u);
  const auto pipe = FeaturePipeline::fit({&data[0], &data[1]}, cfg_);
  const auto direct = FeaturePipeline::fit({{0, 1}, {&a_train_, &b_train_}}, cfg_);
  // Same selection either way.
  ASSERT_EQ(pipe.unified_points().size(), direct.unified_points().size());
  for (std::size_t i = 0; i < pipe.unified_points().size(); ++i) {
    EXPECT_EQ(pipe.unified_points()[i].j, direct.unified_points()[i].j);
    EXPECT_EQ(pipe.unified_points()[i].k, direct.unified_points()[i].k);
  }
}

TEST_F(PipelineFixture, PerTraceNormalizationCancelsGain) {
  cfg_.per_trace_normalization = true;
  const auto pipe = FeaturePipeline::fit({{0, 1}, {&a_train_, &b_train_}}, cfg_);
  sim::Trace scaled = a_test_.front();
  const double g = 1.7;
  for (double& v : scaled.samples) v *= g;
  scaled.meta.gain_estimate = a_test_.front().meta.gain_estimate * g;
  const linalg::Vector z0 = pipe.transform(a_test_.front());
  const linalg::Vector z1 = pipe.transform(scaled);
  for (std::size_t i = 0; i < z0.size(); ++i) EXPECT_NEAR(z1[i], z0[i], 1e-9);
}

TEST_F(PipelineFixture, FitAndTransformAreWorkerCountInvariant) {
  cfg_.workers = 1;
  const auto seq = FeaturePipeline::fit({{0, 1}, {&a_train_, &b_train_}}, cfg_);
  const ml::Dataset seq_ds = seq.transform({{0, 1}, {&a_test_, &b_test_}});
  for (const std::size_t workers : {std::size_t{3}, std::size_t{8}}) {
    cfg_.workers = workers;
    const auto par = FeaturePipeline::fit({{0, 1}, {&a_train_, &b_train_}}, cfg_);
    // Identical selection...
    ASSERT_EQ(par.unified_points().size(), seq.unified_points().size());
    for (std::size_t i = 0; i < seq.unified_points().size(); ++i) {
      EXPECT_EQ(par.unified_points()[i].j, seq.unified_points()[i].j);
      EXPECT_EQ(par.unified_points()[i].k, seq.unified_points()[i].k);
      EXPECT_EQ(par.unified_points()[i].value, seq.unified_points()[i].value);
    }
    // ...and a bit-identical projection of unseen traces (scaler + PCA fitted
    // on the same matrix in the same order).
    const ml::Dataset par_ds = par.transform({{0, 1}, {&a_test_, &b_test_}});
    ASSERT_EQ(par_ds.x.data().size(), seq_ds.x.data().size());
    for (std::size_t i = 0; i < seq_ds.x.data().size(); ++i) {
      ASSERT_EQ(par_ds.x.data()[i], seq_ds.x.data()[i]) << "workers=" << workers;
    }
    EXPECT_EQ(par_ds.y, seq_ds.y);
  }
}

TEST_F(PipelineFixture, BatchedTransformMatchesPerTrace) {
  const auto pipe = FeaturePipeline::fit({{0, 1}, {&a_train_, &b_train_}}, cfg_);
  const ml::Dataset batched = pipe.transform(a_test_, /*label=*/0);
  ASSERT_EQ(batched.size(), a_test_.size());
  for (std::size_t i = 0; i < a_test_.size(); ++i) {
    const linalg::Vector one = pipe.transform(a_test_[i]);
    for (std::size_t c = 0; c < one.size(); ++c) {
      EXPECT_EQ(batched.x(i, c), one[c]) << "trace " << i;
    }
    EXPECT_EQ(batched.y[i], 0);
  }
}

TEST_F(PipelineFixture, InvalidInputsThrow) {
  EXPECT_THROW(FeaturePipeline::fit({{0}, {&a_train_}}, cfg_), std::invalid_argument);
  sim::TraceSet empty;
  EXPECT_THROW(FeaturePipeline::fit({{0, 1}, {&a_train_, &empty}}, cfg_),
               std::invalid_argument);
  FeaturePipeline unfitted;
  EXPECT_THROW(unfitted.transform(a_test_.front()), std::runtime_error);
}

TEST(CsaConfigs, EncodeThePaperSettings) {
  const PipelineConfig off = core::without_csa_config();
  const PipelineConfig mid = core::csa_without_norm_config();
  const PipelineConfig on = core::csa_config();
  EXPECT_DOUBLE_EQ(off.kl_threshold, 0.005);
  EXPECT_DOUBLE_EQ(mid.kl_threshold, 0.0005);
  EXPECT_DOUBLE_EQ(on.kl_threshold, 0.0005);
  EXPECT_FALSE(off.per_trace_normalization);
  EXPECT_FALSE(mid.per_trace_normalization);
  EXPECT_TRUE(on.per_trace_normalization);
  EXPECT_FALSE(off.adaptive_threshold);
  EXPECT_TRUE(mid.adaptive_threshold);
}

}  // namespace
}  // namespace sidis::features

// Fault-injection layer tests: seed determinism (bit-identical replay at any
// worker count), each fault kind's statistical footprint against its
// configuration, and the reject-option acceptance criterion -- under every
// single-fault profile at default severity the disassembler either stays
// within 5 points of clean accuracy or flags >= 90% of its misclassified
// windows as rejected/degraded.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>

#include "core/csa.hpp"
#include "core/fusion.hpp"
#include "core/profiler.hpp"
#include "sim/acquisition.hpp"
#include "sim/fault.hpp"
#include "sim/hash.hpp"

namespace sidis::sim {
namespace {

/// Multi-tone synthetic waveform with a DC offset -- long enough that the
/// statistical assertions (SNR within a couple dB) are tight.
std::vector<double> synthetic_wave(std::size_t n = 4096) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    x[i] = 3.0 + std::sin(2.0 * std::numbers::pi * t / 50.0) +
           0.4 * std::sin(2.0 * std::numbers::pi * t / 7.0);
  }
  return x;
}

double wave_rms(const std::vector<double>& x) {
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  double acc = 0.0;
  for (double v : x) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(x.size()));
}

// -- determinism -------------------------------------------------------------

TEST(FaultDeterminism, SameProfileKeyInputIsBitIdentical) {
  const std::vector<double> clean = synthetic_wave();
  for (FaultKind kind : all_fault_kinds()) {
    const FaultProfile profile = FaultProfile::single(kind);
    const FaultInjector a(profile);
    const FaultInjector b(profile);  // independent instance, same profile
    EXPECT_EQ(a.apply(clean, 42), b.apply(clean, 42)) << to_string(kind);
  }
}

TEST(FaultDeterminism, DifferentKeysAndSeedsDecorrelate) {
  const std::vector<double> clean = synthetic_wave();
  const FaultInjector base(FaultProfile::single(FaultKind::kGaussianNoise));
  EXPECT_NE(base.apply(clean, 1), base.apply(clean, 2));
  FaultProfile reseeded = FaultProfile::single(FaultKind::kGaussianNoise);
  reseeded.seed ^= 0xdeadbeef;
  EXPECT_NE(base.apply(clean, 1), FaultInjector(reseeded).apply(clean, 1));
}

TEST(FaultDeterminism, EmptyOrZeroSeverityProfileIsIdentity) {
  const std::vector<double> clean = synthetic_wave(512);
  FaultProfile off = FaultProfile::single(FaultKind::kClipping, 0.0);
  EXPECT_TRUE(off.empty());
  EXPECT_EQ(FaultInjector(off).apply(clean, 7), clean);
  EXPECT_EQ(FaultInjector(FaultProfile{}).apply(clean, 7), clean);

  Trace t;
  t.samples = clean;
  const Trace out = FaultInjector(off).apply(t, 7);
  EXPECT_EQ(out.meta.fault_severity, 0.0);  // clean capture stays unmarked
}

TEST(FaultDeterminism, ApplyAllKeysEachElementByIndex) {
  TraceSet traces(3);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    traces[i].samples = synthetic_wave(256);
  }
  const FaultInjector inj(FaultProfile::compound(0.5));
  const TraceSet faulted = inj.apply_all(traces, 99);
  ASSERT_EQ(faulted.size(), traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(faulted[i].samples,
              inj.apply(traces[i], hash_combine(99, i)).samples);
    EXPECT_EQ(faulted[i].meta.fault_severity, 0.5);
  }
  // Identical inputs, distinct keys: the corpus must not repeat itself.
  EXPECT_NE(faulted[0].samples, faulted[1].samples);
}

// -- per-kind statistical footprint ------------------------------------------

TEST(FaultEffects, GaussianNoiseHitsConfiguredSnr) {
  const std::vector<double> clean = synthetic_wave();
  FaultProfile p;
  p.faults = {TraceFault::gaussian_noise(14.0)};
  const FaultMetrics m = measure_fault(clean, FaultInjector(p).apply(clean, 3));
  EXPECT_NEAR(m.snr_db, 14.0, 2.0);
  EXPECT_EQ(m.changed_samples, clean.size());

  // Each severity doubling costs ~6 dB.
  p.severity = 2.0;
  const FaultMetrics hard = measure_fault(clean, FaultInjector(p).apply(clean, 3));
  EXPECT_NEAR(m.snr_db - hard.snr_db, 6.0, 0.5);
}

TEST(FaultEffects, BurstNoiseStaysWithinItsSampleBudget) {
  const std::vector<double> clean = synthetic_wave();
  FaultProfile p;
  p.faults = {TraceFault::burst_noise(3.0, 10.0)};
  const FaultMetrics m = measure_fault(clean, FaultInjector(p).apply(clean, 5));
  EXPECT_GE(m.changed_samples, 10u);       // at least one full burst landed
  EXPECT_LE(m.changed_samples, 30u);       // 3 bursts x 10 samples, may overlap
  EXPECT_GE(m.max_abs_delta, 1.8 * wave_rms(clean));  // bursts are 2-4x RMS
}

TEST(FaultEffects, DcDriftRampsToTheConfiguredOffset) {
  const std::vector<double> clean = synthetic_wave();
  const double rms = wave_rms(clean);
  FaultProfile p;
  p.faults = {TraceFault::dc_drift(1.0)};
  const std::vector<double> faulted = FaultInjector(p).apply(clean, 11);
  // Linear ramp from 0 to +/- 1.0 x RMS: exact at both ends, half on average.
  EXPECT_NEAR(faulted.front() - clean.front(), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(faulted.back() - clean.back()), rms, 1e-9);
  const FaultMetrics m = measure_fault(clean, faulted);
  EXPECT_NEAR(std::abs(m.mean_delta), rms / 2.0, 0.02 * rms);
}

TEST(FaultEffects, AmplitudeDriftScalesGainLinearly) {
  const std::vector<double> clean = synthetic_wave();
  FaultProfile p;
  p.faults = {TraceFault::amplitude_drift(0.35)};
  const std::vector<double> faulted = FaultInjector(p).apply(clean, 13);
  EXPECT_NEAR(faulted.front(), clean.front(), 1e-12);  // gain starts at 1
  const double end_gain = faulted.back() / clean.back();
  EXPECT_NEAR(std::abs(end_gain - 1.0), 0.35, 1e-9);
}

TEST(FaultEffects, ClippingPinsTheExtremes) {
  const std::vector<double> clean = synthetic_wave();
  double mean = 0.0;
  for (double v : clean) mean += v;
  mean /= static_cast<double>(clean.size());
  double peak = 0.0;
  for (double v : clean) peak = std::max(peak, std::abs(v - mean));

  FaultProfile p;
  p.faults = {TraceFault::clipping(0.35)};
  const std::vector<double> faulted = FaultInjector(p).apply(clean, 17);
  for (double v : faulted) {
    EXPECT_LE(std::abs(v - mean), 0.65 * peak + 1e-9);
  }
  const FaultMetrics m = measure_fault(clean, faulted);
  EXPECT_GT(m.clip_fraction, 0.05);  // the rails accumulate dwell time
  EXPECT_GT(m.changed_samples, 0u);
}

TEST(FaultEffects, ClockJitterWarpsTimeWithoutLeavingTheRange) {
  const std::vector<double> clean = synthetic_wave();
  const double lo = *std::min_element(clean.begin(), clean.end());
  const double hi = *std::max_element(clean.begin(), clean.end());
  FaultProfile p;
  p.faults = {TraceFault::clock_jitter(2.0, 3.0)};
  const std::vector<double> faulted = FaultInjector(p).apply(clean, 19);
  for (double v : faulted) {
    EXPECT_GE(v, lo - 1e-12);  // linear resampling cannot overshoot
    EXPECT_LE(v, hi + 1e-12);
  }
  const FaultMetrics m = measure_fault(clean, faulted);
  EXPECT_GT(m.changed_samples, clean.size() / 2);
}

TEST(FaultEffects, DroppedSamplesHoldWithinTheGapBudget) {
  const std::vector<double> clean = synthetic_wave();
  FaultProfile p;
  p.faults = {TraceFault::dropped_samples(2.0, 10.0)};
  const FaultMetrics m = measure_fault(clean, FaultInjector(p).apply(clean, 23));
  EXPECT_GE(m.changed_samples, 1u);
  EXPECT_LE(m.changed_samples, 20u);  // 2 gaps x 10 samples
}

TEST(FaultEffects, TriggerShiftIsBoundedAndUniformAcrossTheWindow) {
  // A pure ramp turns the resampling into an exact shift readout:
  // out[i] = i - shift away from the clamped edges.
  std::vector<double> ramp(512);
  for (std::size_t i = 0; i < ramp.size(); ++i) ramp[i] = static_cast<double>(i);
  FaultProfile p;
  p.faults = {TraceFault::trigger_shift(3.0)};
  const std::vector<double> faulted = FaultInjector(p).apply(ramp, 29);
  const double shift = ramp[100] - faulted[100];
  EXPECT_LE(std::abs(shift), 3.0);
  EXPECT_GT(std::abs(shift), 1e-6);  // with this key the draw is nonzero
  for (std::size_t i = 8; i + 8 < ramp.size(); ++i) {
    EXPECT_NEAR(ramp[i] - faulted[i], shift, 1e-9);
  }
}

// -- campaign integration ----------------------------------------------------

class FaultCampaignFixture : public ::testing::Test {
 protected:
  static core::ProfilingData profile_with_workers(std::size_t workers,
                                                  const FaultProfile& profile) {
    AcquisitionCampaign campaign{DeviceModel::make(0), SessionContext::make(0)};
    if (!profile.empty()) campaign.inject_faults(profile);
    core::ProfilerConfig cfg;
    cfg.classes = {*avr::class_index(avr::Mnemonic::kAdd),
                   *avr::class_index(avr::Mnemonic::kLdi)};
    cfg.traces_per_class = 6;
    cfg.num_programs = 2;
    cfg.profile_registers = false;
    cfg.workers = workers;
    std::mt19937_64 rng{77};
    return core::profile_device(campaign, cfg, rng);
  }
};

TEST_F(FaultCampaignFixture, FaultedCorpusIsBitIdenticalAcrossWorkerCounts) {
  const FaultProfile profile = FaultProfile::compound(0.8);
  const core::ProfilingData serial = profile_with_workers(1, profile);
  const core::ProfilingData parallel = profile_with_workers(4, profile);
  const core::ProfilingData clean = profile_with_workers(4, FaultProfile{});
  ASSERT_EQ(serial.classes.size(), parallel.classes.size());
  for (const auto& [cls, traces] : serial.classes) {
    const TraceSet& other = parallel.classes.at(cls);
    ASSERT_EQ(traces.size(), other.size());
    for (std::size_t i = 0; i < traces.size(); ++i) {
      EXPECT_EQ(traces[i].samples, other[i].samples);  // bit-identical replay
      EXPECT_EQ(traces[i].meta.fault_severity, 0.8);
      // ... and the faults did something: the clean corpus differs.
      EXPECT_NE(traces[i].samples, clean.classes.at(cls)[i].samples);
    }
  }
}

TEST(FaultCampaign, ReferenceWindowStaysCleanUnderInjection) {
  AcquisitionCampaign clean{DeviceModel::make(0), SessionContext::make(0)};
  AcquisitionCampaign faulty{DeviceModel::make(0), SessionContext::make(0)};
  faulty.inject_faults(FaultProfile::compound(1.0));
  // The averaged reference models a healthy profiling bench; arming faults
  // must corrupt captures, never the stored reference.
  EXPECT_EQ(clean.reference_window(), faulty.reference_window());

  std::mt19937_64 rng{5};
  const std::size_t add = *avr::class_index(avr::Mnemonic::kAdd);
  const Trace t = faulty.capture_trace(avr::random_instance(add, rng),
                                       ProgramContext::make(0), rng);
  EXPECT_EQ(t.meta.fault_severity, 1.0);
  faulty.clear_faults();
  EXPECT_EQ(faulty.injector(), nullptr);
}

TEST(FaultCompounds, NamedCompoundsAreLabeledClustersNotTheFullStack) {
  const std::vector<FaultProfile> compounds = FaultProfile::named_compounds(1.5);
  ASSERT_EQ(compounds.size(), 3u);
  EXPECT_EQ(compounds[0].name(), "drift_jitter_burst@1.5");
  EXPECT_EQ(compounds[1].name(), "gain_noise_clip@1.5");
  EXPECT_EQ(compounds[2].name(), "dropout_misalign@1.5");
  for (const FaultProfile& p : compounds) {
    EXPECT_EQ(p.severity, 1.5);
    EXPECT_GE(p.faults.size(), 3u);  // clusters, not single faults...
    EXPECT_LT(p.faults.size(), all_fault_kinds().size());  // ...nor compound()
  }
}

TEST(FaultCompounds, ScaledCopiesEverythingButSeverity) {
  const FaultProfile base = FaultProfile::gain_noise_clip(1.0, 0xabcd);
  const FaultProfile half = base.scaled(0.5);
  EXPECT_EQ(half.severity, 0.5);
  EXPECT_EQ(half.seed, base.seed);
  EXPECT_EQ(half.label, base.label);
  ASSERT_EQ(half.faults.size(), base.faults.size());
  for (std::size_t i = 0; i < base.faults.size(); ++i) {
    EXPECT_EQ(half.faults[i].kind, base.faults[i].kind);
    EXPECT_EQ(half.faults[i].magnitude, base.faults[i].magnitude);
  }
  EXPECT_EQ(half.name(), "gain_noise_clip@0.5");
  EXPECT_TRUE(base.scaled(0.0).empty());
}

TEST(FaultCampaign, SeverityScheduleReplaysBitIdentically) {
  // A severity *schedule* re-arms the injector step by step (scaled(s) per
  // capture); the whole swept corpus must still be a pure function of the
  // seeds, and every capture must carry its step's severity stamp.
  const std::vector<double> schedule = {0.0, 0.5, 1.0, 1.5, 2.0};
  const std::size_t add = *avr::class_index(avr::Mnemonic::kAdd);
  const auto sweep = [&] {
    AcquisitionCampaign campaign{DeviceModel::make(0), SessionContext::make(0)};
    TraceSet out;
    for (std::size_t step = 0; step < schedule.size(); ++step) {
      const FaultProfile armed =
          FaultProfile::drift_jitter_burst(1.0).scaled(schedule[step]);
      if (armed.empty()) {
        campaign.clear_faults();
      } else {
        campaign.inject_faults(armed);
      }
      std::mt19937_64 rng{0x5c4ed01e + step};
      out.push_back(campaign.capture_trace(avr::random_instance(add, rng),
                                           ProgramContext::make(0), rng));
    }
    return out;
  };
  const TraceSet first = sweep();
  const TraceSet second = sweep();
  ASSERT_EQ(first.size(), schedule.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].meta.fault_severity, schedule[i]) << "step " << i;
    EXPECT_EQ(first[i].samples, second[i].samples)
        << "schedule step " << i << " did not replay bit-identically";
  }
  // Severity actually bites: the clean step equals an unfaulted capture, the
  // hardest step does not.
  AcquisitionCampaign clean{DeviceModel::make(0), SessionContext::make(0)};
  std::mt19937_64 rng{0x5c4ed01e + 0};
  const Trace baseline = clean.capture_trace(avr::random_instance(add, rng),
                                             ProgramContext::make(0), rng);
  EXPECT_EQ(first[0].samples, baseline.samples);
  EXPECT_NE(first.back().samples, first[0].samples);
}

}  // namespace
}  // namespace sidis::sim

// -- reject option + robustness acceptance criterion -------------------------

namespace sidis::core {
namespace {

/// One trained + reject-calibrated model shared by every robustness test
/// (training dominates the suite's cost; the sweeps reuse it read-only).
struct RobustnessBundle {
  HierarchicalDisassembler model;
  double clean_accuracy = 0.0;
};

const RobustnessBundle& robustness_bundle() {
  static const RobustnessBundle bundle = [] {
    sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                      sim::SessionContext::make(0)};
    std::mt19937_64 rng{2718};
    ProfilingData data;
    for (avr::Mnemonic m :
         {avr::Mnemonic::kAdd, avr::Mnemonic::kSub, avr::Mnemonic::kLdi}) {
      const std::size_t cls = *avr::class_index(m);
      data.classes[cls] = campaign.capture_class(cls, 50, 3, rng);
    }
    HierarchicalConfig cfg;
    cfg.pipeline = csa_config();
    cfg.pipeline.pca_components = 20;
    cfg.group_components = 15;
    cfg.instruction_components = 15;
    cfg.factory.discriminant.shrinkage = 0.15;
    RobustnessBundle b;
    b.model = HierarchicalDisassembler::train(data, cfg);
    // A monitoring deployment trades a few percent clean throughput for
    // sensitivity: the margin gate sits at the clean 5% quantile, so windows
    // that land near a decision boundary (the signature of a perturbed
    // capture) get flagged rather than silently guessed.
    RejectConfig reject;
    reject.margin_quantile = 0.10;
    reject.score_quantile = 0.06;
    reject.score_slack = 0.25;
    b.model.calibrate_reject(data, reject);

    std::size_t hits = 0, total = 0;
    for (const auto& [cls, _] : data.classes) {
      for (int i = 0; i < 10; ++i) {
        const sim::Trace t = campaign.capture_trace(
            avr::random_instance(cls, rng), sim::ProgramContext::make(40 + i % 3), rng);
        hits += b.model.classify(t).class_idx == cls ? 1 : 0;
        ++total;
      }
    }
    b.clean_accuracy = static_cast<double>(hits) / static_cast<double>(total);
    return b;
  }();
  return bundle;
}

TEST(RejectOption, CleanTracesMostlyPassTheGates) {
  const RobustnessBundle& b = robustness_bundle();
  ASSERT_TRUE(b.model.reject_calibrated());
  EXPECT_GE(b.clean_accuracy, 0.85);

  sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                    sim::SessionContext::make(0)};
  std::mt19937_64 rng{31};
  const std::size_t add = *avr::class_index(avr::Mnemonic::kAdd);
  std::size_t ok = 0;
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    const sim::Trace t = campaign.capture_trace(avr::random_instance(add, rng),
                                                sim::ProgramContext::make(50 + i % 3), rng);
    const Disassembly d = b.model.classify(t);
    if (d.verdict == Verdict::kOk) ++ok;
    EXPECT_TRUE(std::isfinite(d.margin_headroom));  // gates are armed
    EXPECT_TRUE(std::isfinite(d.score_headroom));
  }
  // The gates sit at the ~0.5% clean quantile; a fresh clean capture session
  // should sail through almost entirely.
  EXPECT_GE(ok, n * 8 / 10);
}

TEST(RejectOption, PureNoiseIsRejectedAsOffDistribution) {
  const RobustnessBundle& b = robustness_bundle();
  std::mt19937_64 rng{0xbad};
  std::normal_distribution<double> noise(0.0, 1.0);
  sim::Trace garbage;
  garbage.samples.resize(315);
  for (double& v : garbage.samples) v = noise(rng);
  const Disassembly d = b.model.classify(garbage);
  EXPECT_EQ(d.verdict, Verdict::kRejected);
  EXPECT_FALSE(d.accepted());
  EXPECT_LT(d.score_headroom, 0.0);  // the outlier gate is what fired
}

TEST(RejectOption, VerdictNamesRoundTrip) {
  EXPECT_EQ(to_string(Verdict::kOk), "ok");
  EXPECT_EQ(to_string(Verdict::kDegraded), "degraded");
  EXPECT_EQ(to_string(Verdict::kRejected), "rejected");
}

/// The ISSUE acceptance criterion, verbatim: under each single-fault profile
/// at default severity, accuracy stays within 5 points of clean OR >= 90% of
/// the misclassified windows carry a rejected/degraded verdict.
///
/// The comparison is *paired*: every evaluation capture is replayed twice
/// from the same per-capture seed -- once on a clean campaign, once with the
/// fault armed -- so the clean baseline shares the instruction instances,
/// program contexts and measurement noise, and the delta is attributable to
/// the fault alone.
TEST(RejectOption, SingleFaultAccuracyOrFlaggedCriterion) {
  const RobustnessBundle& b = robustness_bundle();
  const std::vector<std::size_t> classes = {
      *avr::class_index(avr::Mnemonic::kAdd), *avr::class_index(avr::Mnemonic::kSub),
      *avr::class_index(avr::Mnemonic::kLdi)};
  const int kPerClass = 15;

  const sim::AcquisitionCampaign clean_campaign{sim::DeviceModel::make(0),
                                                sim::SessionContext::make(0)};

  for (sim::FaultKind kind : sim::all_fault_kinds()) {
    sim::AcquisitionCampaign faulted_campaign{sim::DeviceModel::make(0),
                                              sim::SessionContext::make(0)};
    faulted_campaign.inject_faults(sim::FaultProfile::single(kind));

    std::size_t clean_hits = 0, hits = 0, total = 0, miss_flagged = 0, misses = 0;
    for (std::size_t cls : classes) {
      for (int i = 0; i < kPerClass; ++i) {
        const std::uint64_t capture_seed = 0x4242u + cls * 1000 + static_cast<std::size_t>(i);
        const sim::ProgramContext ctx = sim::ProgramContext::make(60 + i % 3);
        const auto capture = [&](const sim::AcquisitionCampaign& campaign) {
          std::mt19937_64 rng{capture_seed};
          const avr::Instruction target = avr::random_instance(cls, rng);
          return campaign.capture_trace(target, ctx, rng);
        };
        const Disassembly clean_d = b.model.classify(capture(clean_campaign));
        const Disassembly fault_d = b.model.classify(capture(faulted_campaign));
        ++total;
        if (clean_d.class_idx == cls) ++clean_hits;
        if (fault_d.class_idx == cls) {
          ++hits;
        } else {
          ++misses;
          if (fault_d.verdict != Verdict::kOk) ++miss_flagged;
        }
      }
    }
    const double clean_acc = static_cast<double>(clean_hits) / static_cast<double>(total);
    const double accuracy = static_cast<double>(hits) / static_cast<double>(total);
    const double flagged = misses == 0 ? 1.0
                                       : static_cast<double>(miss_flagged) /
                                             static_cast<double>(misses);
    EXPECT_TRUE(accuracy >= clean_acc - 0.05 || flagged >= 0.9)
        << sim::to_string(kind) << ": accuracy " << accuracy << " vs paired clean "
        << clean_acc << ", flagged fraction " << flagged << " (" << miss_flagged
        << "/" << misses << ")";
  }
}

/// Compound acceptance criterion: under each *named compound* scenario the
/// reject gates must flag at least 90% of the misclassified windows --
/// compounds are exactly the conditions where silent wrong answers are most
/// dangerous, and their perturbations are far enough off-distribution that
/// the gates have no excuse.
TEST(RejectOption, CompoundFaultMissesAreOverwhelminglyFlagged) {
  const RobustnessBundle& b = robustness_bundle();
  const std::vector<std::size_t> classes = {
      *avr::class_index(avr::Mnemonic::kAdd), *avr::class_index(avr::Mnemonic::kSub),
      *avr::class_index(avr::Mnemonic::kLdi)};
  const int kPerClass = 15;

  for (const sim::FaultProfile& profile : sim::FaultProfile::named_compounds(1.0)) {
    sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                      sim::SessionContext::make(0)};
    campaign.inject_faults(profile);
    std::size_t misses = 0, miss_flagged = 0;
    for (std::size_t cls : classes) {
      for (int i = 0; i < kPerClass; ++i) {
        std::mt19937_64 rng{0xc03d0u + cls * 1000 + static_cast<std::size_t>(i)};
        const Disassembly d = b.model.classify(campaign.capture_trace(
            avr::random_instance(cls, rng), sim::ProgramContext::make(70 + i % 3),
            rng));
        if (d.class_idx != cls) {
          ++misses;
          if (d.verdict != Verdict::kOk) ++miss_flagged;
        }
      }
    }
    const double flagged = misses == 0 ? 1.0
                                       : static_cast<double>(miss_flagged) /
                                             static_cast<double>(misses);
    EXPECT_GE(flagged, 0.9) << profile.name() << ": only " << miss_flagged << "/"
                            << misses << " misses carried a non-ok verdict";
  }
}

/// Ramping a compound's severity schedule from clean to 2x nominal must push
/// the not-ok (flagged) fraction up: the gates track the degradation a drift
/// schedule produces, they don't just fire at one magic severity.
TEST(RejectOption, CompoundSeverityScheduleRaisesTheFlagRate) {
  const RobustnessBundle& b = robustness_bundle();
  const std::size_t add = *avr::class_index(avr::Mnemonic::kAdd);
  const sim::FaultProfile base = sim::FaultProfile::gain_noise_clip(1.0);
  const std::vector<double> schedule = {0.0, 1.0, 2.0};
  std::vector<double> not_ok_fraction;
  for (double severity : schedule) {
    sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                      sim::SessionContext::make(0)};
    const sim::FaultProfile armed = base.scaled(severity);
    if (!armed.empty()) campaign.inject_faults(armed);
    int not_ok = 0;
    const int n = 25;
    for (int i = 0; i < n; ++i) {
      std::mt19937_64 rng{0x5e7e1u + static_cast<std::uint64_t>(i)};
      // In-profile program contexts: the clean step must measure the gates'
      // baseline, not program-transfer effects.
      const Disassembly d = b.model.classify(campaign.capture_trace(
          avr::random_instance(add, rng), sim::ProgramContext::make(i % 3), rng));
      if (d.verdict != Verdict::kOk) ++not_ok;
    }
    not_ok_fraction.push_back(static_cast<double>(not_ok) / n);
  }
  // The bundle's monitoring-grade gates (10% margin + 6% score quantiles)
  // flag a sizable clean fraction by design; the schedule contract is about
  // *growth*, with a sanity ceiling on the clean step.
  EXPECT_LE(not_ok_fraction.front(), 0.5) << "clean step already heavily flagged";
  EXPECT_GE(not_ok_fraction.back(), not_ok_fraction.front() + 0.25)
      << "flag rate did not rise across the severity schedule";
  EXPECT_GE(not_ok_fraction.back(), 0.6)
      << "2x-nominal gain_noise_clip should flag most windows";
}

/// EM-channel-only faults at severity 2: the fused stack must never fall
/// below the power-only operating curve (the EM channel's reject gates throw
/// the corrupted windows out and fusion degrades to the power result), and
/// the windows whose EM half was rejected come back flagged -- silent
/// degradation is the failure mode this contract forbids.
TEST(FaultFusion, EmFaultsAloneNeverDropFusionBelowPowerOnly) {
  sim::AcquisitionOptions opts;
  opts.em.enabled = true;
  const auto make_campaign = [&opts] {
    return sim::AcquisitionCampaign(sim::DeviceModel::make(0),
                                    sim::SessionContext::make(0),
                                    sim::LeakageConfig{}, sim::ScopeConfig{},
                                    opts);
  };
  sim::AcquisitionCampaign clean = make_campaign();
  std::mt19937_64 rng{6021};
  const std::vector<std::size_t> classes = {
      *avr::class_index(avr::Mnemonic::kAdd),
      *avr::class_index(avr::Mnemonic::kSub),
      *avr::class_index(avr::Mnemonic::kLdi)};
  ProfilingData power_data, em_data;
  std::map<std::size_t, sim::TraceSet> paired;
  for (std::size_t cls : classes) {
    paired[cls] = clean.capture_class(cls, 50, 3, rng);
    power_data.classes[cls] = sim::channel_views(paired[cls], sim::Channel::kPower);
    em_data.classes[cls] = sim::channel_views(paired[cls], sim::Channel::kEm);
  }
  HierarchicalConfig cfg;
  cfg.pipeline = csa_config();
  cfg.pipeline.pca_components = 20;
  cfg.group_components = 15;
  cfg.instruction_components = 15;
  cfg.factory.discriminant.shrinkage = 0.15;
  auto p = HierarchicalDisassembler::train(power_data, cfg);
  p.calibrate_reject(power_data);
  auto e = HierarchicalDisassembler::train(em_data, cfg);
  e.calibrate_reject(em_data);
  auto power = std::make_shared<const HierarchicalDisassembler>(std::move(p));
  auto em = std::make_shared<const HierarchicalDisassembler>(std::move(e));
  const FusedDisassembler fused(power, em,
                                LevelFusion{FusionMode::kScore, 0.5, 0.5},
                                LevelFusion{FusionMode::kScore, 0.5, 0.5});

  // Severity-2 compound on the EM channel ONLY; the power half of every
  // paired capture stays clean.
  sim::AcquisitionCampaign faulted = make_campaign();
  faulted.inject_em_faults(sim::FaultProfile::compound(2.0));

  std::size_t windows = 0, power_hits = 0, fused_hits = 0, flagged = 0;
  for (std::size_t cls : classes) {
    std::mt19937_64 eval_rng{0xfa57ed + cls};
    const sim::TraceSet set = faulted.capture_class(cls, 20, 3, eval_rng);
    for (const sim::Trace& t : set) {
      EXPECT_EQ(t.meta.fault_severity, 0.0);
      EXPECT_EQ(t.meta.em_fault_severity, 2.0);
      ++windows;
      const Disassembly pw =
          power->classify(sim::channel_view(t, sim::Channel::kPower));
      const Disassembly fu = fused.classify(t);
      if (pw.class_idx == cls) ++power_hits;
      if (fu.class_idx == cls) ++fused_hits;
      if (fu.verdict != Verdict::kOk) ++flagged;
    }
  }
  EXPECT_GE(fused_hits, power_hits)
      << "EM-only faults dropped fusion below the power-only curve";
  // The corrupted EM halves must surface in the verdicts, not vanish.
  EXPECT_GE(static_cast<double>(flagged) / static_cast<double>(windows), 0.5)
      << "severity-2 EM faults left most fused windows unflagged";
}

}  // namespace
}  // namespace sidis::core

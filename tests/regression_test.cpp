// End-to-end golden regression: a fixed-seed profile -> train -> calibrate ->
// capture_program -> disassemble run whose headline numbers must stay inside
// a checked-in tolerance band.  This is the canary for the whole chain --
// any change to the simulator, feature pipeline, classifiers or reject
// calibration that silently costs accuracy trips these bounds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <iostream>
#include <random>

#include "avr/assembler.hpp"
#include "core/csa.hpp"
#include "core/disassembler.hpp"
#include "core/fusion.hpp"
#include "core/profiler.hpp"
#include "core/sequence.hpp"
#include "core/transfer.hpp"
#include "runtime/decoder.hpp"
#include "runtime/drift.hpp"
#include "runtime/recal.hpp"
#include "runtime/streaming.hpp"
#include "sim/acquisition.hpp"

namespace sidis::core {
namespace {

// The checked-in band.  Recorded from the seeded run below; the floors leave
// headroom for legitimate cross-platform floating-point drift, but a real
// regression (a broken level, a miscalibrated gate) lands far below them.
constexpr double kMinWindowAccuracy = 0.90;   ///< per-window class accuracy
constexpr double kMinAcceptedFraction = 0.80; ///< windows with verdict != rejected
constexpr std::size_t kGoldenSeed = 20260806;

struct GoldenRun {
  double window_accuracy = 0.0;
  double accepted_fraction = 0.0;
  std::size_t windows = 0;
};

GoldenRun run_golden_pipeline(
    const sim::AcquisitionConfig& acq = sim::AcquisitionConfig::nominal()) {
  // The nominal run takes the acquisition-configured constructor on purpose:
  // its band was recorded through the legacy constructor, so staying inside
  // it re-proves the nominal config is a bit-exact identity every CI run.
  sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                    sim::SessionContext::make(0), acq};
  std::mt19937_64 rng{kGoldenSeed};

  ProfilerConfig pcfg;
  pcfg.classes = {*avr::class_index(avr::Mnemonic::kAdd),
                  *avr::class_index(avr::Mnemonic::kEor),
                  *avr::class_index(avr::Mnemonic::kLdi),
                  *avr::class_index(avr::Mnemonic::kCom)};
  pcfg.traces_per_class = 60;
  pcfg.num_programs = 3;
  pcfg.profile_registers = false;
  const ProfilingData data = profile_device(campaign, pcfg, rng);

  HierarchicalConfig cfg;
  cfg.pipeline = features::configured_for(csa_config(), acq.samples_per_cycle);
  cfg.pipeline.pca_components = 20;
  cfg.group_components = 15;
  cfg.instruction_components = 15;
  cfg.factory.discriminant.shrinkage = 0.15;
  HierarchicalDisassembler model = HierarchicalDisassembler::train(data, cfg);
  model.calibrate_reject(data);

  // Deployment mode: one program execution, one window per instruction,
  // using only the profiled classes so every window is scoreable.
  const avr::Program program = avr::assemble(
      "SBI 5, 5\n"
      "NOP\n"
      "LDI r16, 7\n"
      "ADD r0, r16\n"
      "EOR r1, r16\n"
      "COM r1\n"
      "LDI r17, 31\n"
      "EOR r0, r17\n"
      "ADD r1, r17\n"
      "COM r0\n"
      "CBI 5, 5").program;

  GoldenRun out;
  std::size_t hits = 0;
  // Several repetitions with distinct register/SRAM contexts keep the stats
  // meaningful while the run stays fully seeded.
  for (int repeat = 0; repeat < 4; ++repeat) {
    const sim::TraceSet windows =
        campaign.capture_program(program, sim::ProgramContext::make(repeat), rng);
    const std::vector<Disassembly> recovered = disassemble(model, windows);
    EXPECT_EQ(recovered.size(), windows.size());
    for (std::size_t i = 0; i < windows.size(); ++i) {
      const avr::Mnemonic truth = windows[i].meta.instr.mnemonic;
      const auto truth_cls = avr::class_index(truth);
      if (!truth_cls.has_value()) continue;  // trigger/NOP scaffolding
      if (std::find(pcfg.classes.begin(), pcfg.classes.end(), *truth_cls) ==
          pcfg.classes.end()) {
        continue;  // unprofiled class: no ground-truth expectation
      }
      ++out.windows;
      if (recovered[i].class_idx == *truth_cls) ++hits;
      if (recovered[i].accepted()) {
        out.accepted_fraction += 1.0;  // finalized below
      }
    }
  }
  out.window_accuracy = static_cast<double>(hits) / static_cast<double>(out.windows);
  out.accepted_fraction /= static_cast<double>(out.windows);
  return out;
}

TEST(GoldenRegression, EndToEndAccuracyStaysInsideTheBand) {
  const GoldenRun run = run_golden_pipeline();
  ASSERT_GE(run.windows, 28u);  // 8 scoreable windows x 4 repeats, minus none
  EXPECT_GE(run.window_accuracy, kMinWindowAccuracy)
      << "end-to-end accuracy regressed: " << run.window_accuracy << " over "
      << run.windows << " windows";
  EXPECT_LE(run.window_accuracy, 1.0);
  EXPECT_GE(run.accepted_fraction, kMinAcceptedFraction)
      << "reject gates fire too eagerly on clean deployment traces: "
      << run.accepted_fraction;
}

// -- cross-device golden (Sec. 5.6 / Table 4) --------------------------------
//
// Train on device 0, classify device 1's field traces.  The checked-in band
// pins three facts: the same-device accuracy stays high, the cross-device
// drop exists but stays bounded (the variation model did not run away), and
// spending a small recalibration budget never makes transfer *worse*.
// Recorded run: self 0.867, cross 0.767, recal 0.900 (renorm, K = 10).
constexpr double kMinSelfAccuracy = 0.80;
constexpr double kMinCrossAccuracy = 0.55;
constexpr double kMaxCrossAccuracy = 0.97;  ///< a drop must exist at all
constexpr std::size_t kRecalBudget = 10;

struct CrossDeviceRun {
  double self_accuracy = 0.0;
  double cross_accuracy = 0.0;
  double recal_accuracy = 0.0;
};

CrossDeviceRun run_cross_device_golden() {
  TransferConfig cfg;
  // Same-group ALU classes: level-2 fine discrimination is where inter-device
  // process corners actually bite (cross-group sets stay separable anywhere).
  cfg.classes = {*avr::class_index(avr::Mnemonic::kAdd),
                 *avr::class_index(avr::Mnemonic::kAdc),
                 *avr::class_index(avr::Mnemonic::kSub)};
  cfg.train_traces_per_class = 50;
  cfg.test_traces_per_class = 20;
  cfg.num_programs = 3;
  cfg.budgets = {0, kRecalBudget};
  cfg.model.pipeline = csa_config();
  cfg.model.pipeline.pca_components = 18;
  cfg.model.group_components = 15;
  cfg.model.instruction_components = 15;
  cfg.model.factory.discriminant.shrinkage = 0.15;
  cfg.seed = kGoldenSeed;
  cfg.eval_workers = 2;

  const TransferEvaluator eval(0, cfg);
  const TransferEvaluator::FieldData self_field = eval.capture_field(0);
  const TransferEvaluator::FieldData cross_field = eval.capture_field(1);

  CrossDeviceRun out;
  out.self_accuracy = eval.accuracy(eval.model(), self_field.field);
  out.cross_accuracy = eval.accuracy(eval.model(), cross_field.field);
  const HierarchicalDisassembler recal = eval.recalibrated(
      eval.budget_slice(cross_field.recal_pool, kRecalBudget), RecalMode::kRenorm);
  out.recal_accuracy = eval.accuracy(recal, cross_field.field);
  return out;
}

TEST(GoldenRegression, CrossDeviceTransferStaysInsideTheBand) {
  const CrossDeviceRun run = run_cross_device_golden();
  // Surfaced so a tripped band can be re-pinned without a debug build.
  std::cout << "[cross-device golden] self=" << run.self_accuracy
            << " cross=" << run.cross_accuracy << " recal=" << run.recal_accuracy
            << '\n';
  EXPECT_GE(run.self_accuracy, kMinSelfAccuracy)
      << "same-device accuracy regressed: " << run.self_accuracy;
  EXPECT_GE(run.cross_accuracy, kMinCrossAccuracy)
      << "device 1 became unclassifiable: " << run.cross_accuracy;
  EXPECT_LE(run.cross_accuracy, kMaxCrossAccuracy)
      << "no cross-device gap left -- the variation model is not biting";
  EXPECT_LT(run.cross_accuracy, run.self_accuracy)
      << "transfer should cost accuracy by construction";
  EXPECT_GE(run.recal_accuracy, run.cross_accuracy - 0.02)
      << "a recalibration budget must never hurt transfer: "
      << run.cross_accuracy << " -> " << run.recal_accuracy;
}

TEST(GoldenRegression, CrossDeviceRunIsReproducible) {
  const CrossDeviceRun a = run_cross_device_golden();
  const CrossDeviceRun b = run_cross_device_golden();
  EXPECT_EQ(a.self_accuracy, b.self_accuracy);
  EXPECT_EQ(a.cross_accuracy, b.cross_accuracy);
  EXPECT_EQ(a.recal_accuracy, b.recal_accuracy);
}

TEST(GoldenRegression, FixedSeedRunIsReproducible) {
  // The whole chain is seeded; two runs must agree bit-for-bit on every
  // derived statistic, not merely land in the same band.
  const GoldenRun a = run_golden_pipeline();
  const GoldenRun b = run_golden_pipeline();
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_EQ(a.window_accuracy, b.window_accuracy);
  EXPECT_EQ(a.accepted_fraction, b.accepted_fraction);
}

// -- acquisition-configuration golden ----------------------------------------
//
// The same end-to-end chain at two degraded acquisition corners: half the
// sample rate (159-sample windows, CWT grid rescaled to the decimated clock)
// and a 6-bit digitizer.  Each corner carries its own checked-in band -- a
// cheaper configuration is allowed to cost accuracy, but the cost must stay
// where it was recorded, and every corner must remain bit-reproducible.
// Recorded run: half-rate 1.00/1.00, 6-bit 1.00/1.00 over 32 windows (the
// four-group golden task keeps full separation at both corners; the floors
// below only bound legitimate cross-platform drift).

TEST(GoldenRegression, DegradedAcquisitionConfigsStayInsideTheirBands) {
  const struct {
    sim::AcquisitionConfig acq;
    double min_accuracy;
    double min_accepted;
  } bands[] = {
      {sim::AcquisitionConfig::half_rate(), 0.85, 0.75},
      {sim::AcquisitionConfig::low_resolution(6), 0.85, 0.75},
  };
  for (const auto& band : bands) {
    const GoldenRun run = run_golden_pipeline(band.acq);
    std::cout << "[config golden] " << band.acq.label << " accuracy="
              << run.window_accuracy << " accepted=" << run.accepted_fraction
              << " windows=" << run.windows << '\n';
    ASSERT_GE(run.windows, 28u) << band.acq.label;
    EXPECT_GE(run.window_accuracy, band.min_accuracy)
        << band.acq.label << " config regressed past its recorded cost";
    EXPECT_GE(run.accepted_fraction, band.min_accepted)
        << band.acq.label << " gates fire too eagerly on clean traces";
  }
}

TEST(GoldenRegression, DegradedAcquisitionRunsAreReproducible) {
  for (const sim::AcquisitionConfig& acq :
       {sim::AcquisitionConfig::half_rate(),
        sim::AcquisitionConfig::low_resolution(6)}) {
    const GoldenRun a = run_golden_pipeline(acq);
    const GoldenRun b = run_golden_pipeline(acq);
    EXPECT_EQ(a.windows, b.windows) << acq.label;
    EXPECT_EQ(a.window_accuracy, b.window_accuracy) << acq.label;
    EXPECT_EQ(a.accepted_fraction, b.accepted_fraction) << acq.label;
  }
}

}  // namespace
}  // namespace sidis::core

// -- drift -> detect -> recalibrate -> recover golden ------------------------
//
// The online-adaptation canary: a seeded stream with linear aging gain drift
// is served through the streaming engine while a DriftMonitor watches the
// emissions and a RecalibrationScheduler answers its events.  The checked-in
// band pins four facts: the drift IS detected (and not absurdly late), the
// stale model HAS lost accuracy by end of stream, the recalibrated model
// recovers to within 2 points of clean, and the whole loop is bit-for-bit
// reproducible.  Recorded run: detect@107, 2 events / 2 recals / 36 traces
// spent, clean 0.733, stale 0.600, recalibrated 0.750.
namespace sidis::runtime {
namespace {

constexpr std::size_t kDriftGoldenSeed = 20260806;
constexpr double kAgingGainDrift = 0.3;
constexpr std::size_t kStreamWindows = 240;
constexpr std::uint64_t kMaxDetectObservation = 180;  ///< of 240 windows
constexpr double kMaxRecoveryGap = 0.02;  ///< vs clean, the ISSUE criterion
constexpr double kMinStaleDip = 0.05;     ///< drift must actually bite

struct DriftGoldenRun {
  std::uint64_t detect_observation = 0;
  std::size_t events = 0;
  std::uint64_t recalibrations = 0;
  std::uint64_t traces_spent = 0;
  double clean_accuracy = 0.0;
  double stale_accuracy = 0.0;
  double recal_accuracy = 0.0;
};

DriftGoldenRun run_drift_golden() {
  // Same-group ALU classes, like the cross-device golden: level-2 fine
  // discrimination is where a gain ramp actually costs accuracy (cross-group
  // sets stay separable under far larger shifts).  The monitor transparently
  // falls back to instruction-level moments for the degenerate group level.
  const std::vector<std::size_t> classes = {
      *avr::class_index(avr::Mnemonic::kAdd), *avr::class_index(avr::Mnemonic::kAdc),
      *avr::class_index(avr::Mnemonic::kSub)};

  // Profile + train on the healthy device.
  sim::AcquisitionCampaign clean{sim::DeviceModel::make(0),
                                 sim::SessionContext::make(0)};
  std::mt19937_64 rng{kDriftGoldenSeed};
  core::ProfilingData data;
  for (std::size_t cls : classes) {
    data.classes[cls] = clean.capture_class(cls, 40, 3, rng);
  }
  core::HierarchicalConfig cfg;
  cfg.pipeline = core::csa_config();
  cfg.pipeline.pca_components = 10;
  cfg.group_components = 8;
  cfg.instruction_components = 8;
  const auto model = std::make_shared<const core::HierarchicalDisassembler>(
      core::HierarchicalDisassembler::train(data, cfg));

  // The same physical device, aged: gain ramps +30% across the stream.
  sim::DeviceModel aged = sim::DeviceModel::make(0);
  aged.aging_gain_drift = kAgingGainDrift;
  const sim::AcquisitionCampaign drifting{aged, sim::SessionContext::make(0)};

  sim::TraceSet windows;
  std::mt19937_64 stream_rng{kDriftGoldenSeed + 1};
  for (std::size_t i = 0; i < kStreamWindows; ++i) {
    windows.push_back(drifting.capture_trace(
        avr::random_instance(classes[i % classes.size()], stream_rng, {}),
        sim::ProgramContext::make(static_cast<int>(i % 3)), stream_rng,
        static_cast<double>(i) / static_cast<double>(kStreamWindows - 1)));
  }

  StreamingConfig scfg;
  scfg.workers = 1;
  StreamingDisassembler engine(
      [model](const sim::Trace& t) { return model->classify(t); }, scfg);
  // Tighter-than-default monitor: continuous drift needs continuous
  // adaptation, so the z gate sits lower and the cooldown shorter -- the
  // monitor re-alarms while the ramp keeps going and the scheduler spends
  // its second budgeted round near end of stream instead of one-shot repair.
  DriftConfig dcfg;
  dcfg.z_threshold = 2.5;
  dcfg.cooldown = 40;
  DriftMonitor monitor(model, dcfg);
  CampaignCalibrationSource source(drifting, classes, 3, kDriftGoldenSeed + 2);
  RecalPolicy policy;
  policy.traces_per_class = 6;
  policy.trace_budget = 36;
  RecalibrationScheduler scheduler(engine, model, source, policy);

  DriftGoldenRun out;
  constexpr std::size_t kBatch = 16;
  for (std::size_t base = 0; base < windows.size(); base += kBatch) {
    const std::size_t end = std::min(windows.size(), base + kBatch);
    for (std::size_t i = base; i < end; ++i) (void)engine.submit(windows[i]);
    std::size_t emitted = base;
    while (emitted < end) {
      if (auto r = engine.poll()) {
        monitor.observe(windows[r->sequence], r->value);
        ++emitted;
      }
    }
    if (const auto event = monitor.poll_event()) {
      if (out.events == 0) out.detect_observation = event->observation;
      ++out.events;
      source.set_progress(static_cast<double>(end - 1) /
                          static_cast<double>(windows.size() - 1));
      (void)scheduler.on_drift(*event, monitor);
    }
  }
  (void)engine.drain();
  const RuntimeStats stats = engine.stats();
  out.recalibrations = stats.recalibrations;
  out.traces_spent = stats.recal_traces_spent;

  // Paired evaluation corpora: identical seeds, one captured healthy at
  // campaign start, one fully aged.
  sim::TraceSet eval_clean, eval_aged;
  std::mt19937_64 rng_a{kDriftGoldenSeed + 3};
  std::mt19937_64 rng_b{kDriftGoldenSeed + 3};
  for (std::size_t i = 0; i < 60; ++i) {
    const std::size_t cls = classes[i % classes.size()];
    const sim::ProgramContext prog = sim::ProgramContext::make(static_cast<int>(i % 3));
    eval_clean.push_back(
        clean.capture_trace(avr::random_instance(cls, rng_a, {}), prog, rng_a, 0.0));
    eval_aged.push_back(
        drifting.capture_trace(avr::random_instance(cls, rng_b, {}), prog, rng_b, 1.0));
  }
  const auto accuracy = [](const core::HierarchicalDisassembler& m,
                           const sim::TraceSet& set) {
    std::size_t hits = 0;
    for (const sim::Trace& t : set) {
      if (m.classify(t).class_idx == t.meta.class_idx) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(set.size());
  };
  out.clean_accuracy = accuracy(*model, eval_clean);
  out.stale_accuracy = accuracy(*model, eval_aged);
  out.recal_accuracy = accuracy(*scheduler.active_model(), eval_aged);
  return out;
}

TEST(GoldenRegression, DriftDetectRecalibrateRecoverStaysInsideTheBand) {
  const DriftGoldenRun run = run_drift_golden();
  std::cout << "[drift golden] detect@" << run.detect_observation << " events="
            << run.events << " recals=" << run.recalibrations << " spent="
            << run.traces_spent << " clean=" << run.clean_accuracy << " stale="
            << run.stale_accuracy << " recal=" << run.recal_accuracy << '\n';
  ASSERT_GE(run.events, 1u) << "aging gain drift was never detected";
  EXPECT_LE(run.detect_observation, kMaxDetectObservation)
      << "detection came too late to be useful";
  EXPECT_GE(run.recalibrations, 1u);
  EXPECT_LE(run.traces_spent, 36u) << "scheduler overspent its trace budget";
  EXPECT_LE(run.stale_accuracy, run.clean_accuracy - kMinStaleDip)
      << "the drift scenario no longer hurts the stale model -- band is vacuous";
  EXPECT_GE(run.recal_accuracy, run.clean_accuracy - kMaxRecoveryGap)
      << "recalibration failed to recover within 2 points of clean: clean "
      << run.clean_accuracy << " vs recalibrated " << run.recal_accuracy;
}

TEST(GoldenRegression, DriftGoldenRunIsReproducible) {
  const DriftGoldenRun a = run_drift_golden();
  const DriftGoldenRun b = run_drift_golden();
  EXPECT_EQ(a.detect_observation, b.detect_observation);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.traces_spent, b.traces_spent);
  EXPECT_EQ(a.clean_accuracy, b.clean_accuracy);
  EXPECT_EQ(a.stale_accuracy, b.stale_accuracy);
  EXPECT_EQ(a.recal_accuracy, b.recal_accuracy);
}

// -- sequence-decoding golden ------------------------------------------------
//
// The probabilistic-decoding canary: a seeded same-group ALU model serves a
// firmware-shaped stream (a repeating ADD -> ADC -> SUB cadence, the kind of
// multi-byte arithmetic cadence the IsaPrior's idioms encode) through the
// bounded-lag SequenceDecoder under an ISA prior blended with the stream's
// own bigram statistics.  The band pins three facts: per-window argmax
// still makes mistakes (else the scenario is vacuous), sequence decoding
// recovers a real fraction of them, and the whole decode is bit-for-bit
// reproducible.  Recorded run: argmax 0.758, decoded 0.942, smoothed 22.
constexpr std::size_t kSequenceGoldenSeed = 20260806;
constexpr std::size_t kSequenceWindows = 120;
constexpr double kMaxArgmaxAccuracy = 0.95;  ///< errors must exist at all
constexpr double kMinDecodeLift = 0.03;      ///< decoded - argmax floor

struct SequenceGoldenRun {
  double argmax_accuracy = 0.0;
  double decoded_accuracy = 0.0;
  std::uint64_t smoothed = 0;
  double confidence_sum = 0.0;  ///< finite confidences, reproducibility probe
};

SequenceGoldenRun run_sequence_golden() {
  const std::vector<std::size_t> classes = {
      *avr::class_index(avr::Mnemonic::kAdd), *avr::class_index(avr::Mnemonic::kAdc),
      *avr::class_index(avr::Mnemonic::kSub)};

  sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                    sim::SessionContext::make(0)};
  std::mt19937_64 rng{kSequenceGoldenSeed};
  core::ProfilingData data;
  for (std::size_t cls : classes) {
    data.classes[cls] = campaign.capture_class(cls, 40, 3, rng);
  }
  core::HierarchicalConfig cfg;
  cfg.pipeline = core::csa_config();
  cfg.pipeline.pca_components = 10;
  cfg.group_components = 8;
  cfg.instruction_components = 8;
  const auto model = std::make_shared<const core::HierarchicalDisassembler>(
      core::HierarchicalDisassembler::train(data, cfg));

  // The served stream and its ground truth, plus the bigram evidence the
  // deployed prior would be estimated from (the firmware image is known in
  // the paper's threat model; its transition counts are free).
  std::vector<std::size_t> truth;
  sim::TraceSet windows;
  core::BigramPrior evidence(avr::num_instruction_classes());
  std::mt19937_64 stream_rng{kSequenceGoldenSeed + 1};
  for (std::size_t i = 0; i < kSequenceWindows; ++i) {
    truth.push_back(classes[i % classes.size()]);
    if (i > 0) evidence.add_transition(truth[i - 1], truth[i]);
    windows.push_back(campaign.capture_trace(
        avr::random_instance(truth.back(), stream_rng, {}),
        sim::ProgramContext::make(static_cast<int>(i % 3)), stream_rng, 0.0));
  }
  const auto prior = std::make_shared<const core::IsaPrior>(evidence);

  SequenceDecoderConfig dcfg;
  dcfg.lag = 6;
  SequenceDecoder decoder(model->posterior_classes(), prior, dcfg);

  SequenceGoldenRun out;
  std::size_t argmax_hits = 0, decoded_hits = 0;
  std::vector<SmoothedWindow> smoothed;
  for (const sim::Trace& t : windows) {
    const core::Disassembly scored = model->classify_scored(t);
    decoder.push(scored);
    while (auto w = decoder.poll()) smoothed.push_back(std::move(*w));
  }
  for (auto& w : decoder.flush()) smoothed.push_back(std::move(w));
  EXPECT_EQ(smoothed.size(), windows.size());
  for (std::size_t i = 0; i < smoothed.size(); ++i) {
    if (smoothed[i].raw_class == truth[i]) ++argmax_hits;
    if (smoothed[i].value.class_idx == truth[i]) ++decoded_hits;
    if (std::isfinite(smoothed[i].confidence)) {
      out.confidence_sum += smoothed[i].confidence;
    }
  }
  out.argmax_accuracy =
      static_cast<double>(argmax_hits) / static_cast<double>(windows.size());
  out.decoded_accuracy =
      static_cast<double>(decoded_hits) / static_cast<double>(windows.size());
  out.smoothed = decoder.smoothed_count();
  return out;
}

TEST(GoldenRegression, SequenceDecodingStaysAboveArgmax) {
  const SequenceGoldenRun run = run_sequence_golden();
  std::cout << "[sequence golden] argmax=" << run.argmax_accuracy
            << " decoded=" << run.decoded_accuracy << " smoothed="
            << run.smoothed << " confsum=" << run.confidence_sum << '\n';
  EXPECT_LE(run.argmax_accuracy, kMaxArgmaxAccuracy)
      << "per-window classification no longer errs -- the band is vacuous";
  EXPECT_GE(run.decoded_accuracy, run.argmax_accuracy + kMinDecodeLift)
      << "sequence decoding stopped paying for itself: argmax "
      << run.argmax_accuracy << " vs decoded " << run.decoded_accuracy;
  EXPECT_GE(run.smoothed, 1u) << "the decoder never overrode a window";
}

TEST(GoldenRegression, SequenceGoldenRunIsReproducible) {
  const SequenceGoldenRun a = run_sequence_golden();
  const SequenceGoldenRun b = run_sequence_golden();
  EXPECT_EQ(a.argmax_accuracy, b.argmax_accuracy);
  EXPECT_EQ(a.decoded_accuracy, b.decoded_accuracy);
  EXPECT_EQ(a.smoothed, b.smoothed);
  EXPECT_EQ(a.confidence_sum, b.confidence_sum);
}

}  // namespace
}  // namespace sidis::runtime

// -- multimodal fusion golden ------------------------------------------------
//
// Paired power+EM capture -> per-channel training -> held-out fusion
// calibration -> evaluation of all three operating points on fresh paired
// windows.  The band pins the fusion contract the bench gates at full scale:
// the fused point never falls below either single channel, and a fixed-seed
// run is bit-reproducible.

namespace sidis::core {
namespace {

constexpr double kMinFusedGoldenAccuracy = 0.90;
constexpr std::size_t kFusionGoldenSeed = 20260808;

struct FusionGoldenRun {
  double power_accuracy = 0.0;
  double em_accuracy = 0.0;
  double fused_accuracy = 0.0;
  double heldout_accuracy = 0.0;  ///< calibrate_fusion's selection score
};

FusionGoldenRun run_fusion_golden() {
  sim::AcquisitionOptions opts;
  opts.em.enabled = true;
  sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                    sim::SessionContext::make(0),
                                    sim::LeakageConfig{}, sim::ScopeConfig{},
                                    opts};
  std::mt19937_64 rng{kFusionGoldenSeed};
  const std::vector<std::size_t> classes = {
      *avr::class_index(avr::Mnemonic::kAdd), *avr::class_index(avr::Mnemonic::kEor),
      *avr::class_index(avr::Mnemonic::kLdi), *avr::class_index(avr::Mnemonic::kCom)};
  ProfilingData power_data, em_data;
  std::map<std::size_t, sim::TraceSet> paired;
  for (std::size_t cls : classes) {
    paired[cls] = campaign.capture_class(cls, 60, 3, rng);
    power_data.classes[cls] = sim::channel_views(paired[cls], sim::Channel::kPower);
    em_data.classes[cls] = sim::channel_views(paired[cls], sim::Channel::kEm);
  }
  HierarchicalConfig cfg;
  cfg.pipeline = csa_config();
  cfg.pipeline.pca_components = 20;
  cfg.group_components = 15;
  cfg.instruction_components = 15;
  cfg.factory.discriminant.shrinkage = 0.15;
  auto p = HierarchicalDisassembler::train(power_data, cfg);
  p.calibrate_reject(power_data);
  auto e = HierarchicalDisassembler::train(em_data, cfg);
  e.calibrate_reject(em_data);
  auto power = std::make_shared<const HierarchicalDisassembler>(std::move(p));
  auto em = std::make_shared<const HierarchicalDisassembler>(std::move(e));

  FusedDisassembler fused(power, em);
  fused.train_feature_heads(paired);
  sim::TraceSet heldout;
  for (std::size_t cls : classes) {
    const sim::TraceSet h = campaign.capture_class(cls, 12, 3, rng);
    heldout.insert(heldout.end(), h.begin(), h.end());
  }
  FusionGoldenRun out;
  out.heldout_accuracy = fused.calibrate_fusion(heldout);

  std::size_t windows = 0, p_hits = 0, e_hits = 0, f_hits = 0;
  for (std::size_t cls : classes) {
    const sim::TraceSet eval = campaign.capture_class(cls, 15, 3, rng);
    for (const sim::Trace& t : eval) {
      ++windows;
      if (power->classify(sim::channel_view(t, sim::Channel::kPower)).class_idx == cls)
        ++p_hits;
      if (em->classify(sim::channel_view(t, sim::Channel::kEm)).class_idx == cls)
        ++e_hits;
      if (fused.classify(t).class_idx == cls) ++f_hits;
    }
  }
  const double n = static_cast<double>(windows);
  out.power_accuracy = static_cast<double>(p_hits) / n;
  out.em_accuracy = static_cast<double>(e_hits) / n;
  out.fused_accuracy = static_cast<double>(f_hits) / n;
  return out;
}

TEST(GoldenRegression, FusionStaysInsideTheBand) {
  const FusionGoldenRun run = run_fusion_golden();
  std::cout << "[fusion golden] power=" << run.power_accuracy
            << " em=" << run.em_accuracy << " fused=" << run.fused_accuracy
            << " heldout=" << run.heldout_accuracy << "\n";
  EXPECT_GE(run.fused_accuracy, kMinFusedGoldenAccuracy);
  // The calibrated fused point must never sit below either single channel --
  // calibration may *select* a single channel, in which case equality holds.
  EXPECT_GE(run.fused_accuracy,
            std::max(run.power_accuracy, run.em_accuracy) - 1e-12);
}

TEST(GoldenRegression, FusionGoldenRunIsReproducible) {
  const FusionGoldenRun a = run_fusion_golden();
  const FusionGoldenRun b = run_fusion_golden();
  EXPECT_EQ(a.power_accuracy, b.power_accuracy);
  EXPECT_EQ(a.em_accuracy, b.em_accuracy);
  EXPECT_EQ(a.fused_accuracy, b.fused_accuracy);
  EXPECT_EQ(a.heldout_accuracy, b.heldout_accuracy);
}

}  // namespace
}  // namespace sidis::core

// End-to-end golden regression: a fixed-seed profile -> train -> calibrate ->
// capture_program -> disassemble run whose headline numbers must stay inside
// a checked-in tolerance band.  This is the canary for the whole chain --
// any change to the simulator, feature pipeline, classifiers or reject
// calibration that silently costs accuracy trips these bounds.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "avr/assembler.hpp"
#include "core/csa.hpp"
#include "core/disassembler.hpp"
#include "core/profiler.hpp"
#include "sim/acquisition.hpp"

namespace sidis::core {
namespace {

// The checked-in band.  Recorded from the seeded run below; the floors leave
// headroom for legitimate cross-platform floating-point drift, but a real
// regression (a broken level, a miscalibrated gate) lands far below them.
constexpr double kMinWindowAccuracy = 0.90;   ///< per-window class accuracy
constexpr double kMinAcceptedFraction = 0.80; ///< windows with verdict != rejected
constexpr std::size_t kGoldenSeed = 20260806;

struct GoldenRun {
  double window_accuracy = 0.0;
  double accepted_fraction = 0.0;
  std::size_t windows = 0;
};

GoldenRun run_golden_pipeline() {
  sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                    sim::SessionContext::make(0)};
  std::mt19937_64 rng{kGoldenSeed};

  ProfilerConfig pcfg;
  pcfg.classes = {*avr::class_index(avr::Mnemonic::kAdd),
                  *avr::class_index(avr::Mnemonic::kEor),
                  *avr::class_index(avr::Mnemonic::kLdi),
                  *avr::class_index(avr::Mnemonic::kCom)};
  pcfg.traces_per_class = 60;
  pcfg.num_programs = 3;
  pcfg.profile_registers = false;
  const ProfilingData data = profile_device(campaign, pcfg, rng);

  HierarchicalConfig cfg;
  cfg.pipeline = csa_config();
  cfg.pipeline.pca_components = 20;
  cfg.group_components = 15;
  cfg.instruction_components = 15;
  cfg.factory.discriminant.shrinkage = 0.15;
  HierarchicalDisassembler model = HierarchicalDisassembler::train(data, cfg);
  model.calibrate_reject(data);

  // Deployment mode: one program execution, one window per instruction,
  // using only the profiled classes so every window is scoreable.
  const avr::Program program = avr::assemble(
      "SBI 5, 5\n"
      "NOP\n"
      "LDI r16, 7\n"
      "ADD r0, r16\n"
      "EOR r1, r16\n"
      "COM r1\n"
      "LDI r17, 31\n"
      "EOR r0, r17\n"
      "ADD r1, r17\n"
      "COM r0\n"
      "CBI 5, 5").program;

  GoldenRun out;
  std::size_t hits = 0;
  // Several repetitions with distinct register/SRAM contexts keep the stats
  // meaningful while the run stays fully seeded.
  for (int repeat = 0; repeat < 4; ++repeat) {
    const sim::TraceSet windows =
        campaign.capture_program(program, sim::ProgramContext::make(repeat), rng);
    const std::vector<Disassembly> recovered = disassemble(model, windows);
    EXPECT_EQ(recovered.size(), windows.size());
    for (std::size_t i = 0; i < windows.size(); ++i) {
      const avr::Mnemonic truth = windows[i].meta.instr.mnemonic;
      const auto truth_cls = avr::class_index(truth);
      if (!truth_cls.has_value()) continue;  // trigger/NOP scaffolding
      if (std::find(pcfg.classes.begin(), pcfg.classes.end(), *truth_cls) ==
          pcfg.classes.end()) {
        continue;  // unprofiled class: no ground-truth expectation
      }
      ++out.windows;
      if (recovered[i].class_idx == *truth_cls) ++hits;
      if (recovered[i].accepted()) {
        out.accepted_fraction += 1.0;  // finalized below
      }
    }
  }
  out.window_accuracy = static_cast<double>(hits) / static_cast<double>(out.windows);
  out.accepted_fraction /= static_cast<double>(out.windows);
  return out;
}

TEST(GoldenRegression, EndToEndAccuracyStaysInsideTheBand) {
  const GoldenRun run = run_golden_pipeline();
  ASSERT_GE(run.windows, 28u);  // 8 scoreable windows x 4 repeats, minus none
  EXPECT_GE(run.window_accuracy, kMinWindowAccuracy)
      << "end-to-end accuracy regressed: " << run.window_accuracy << " over "
      << run.windows << " windows";
  EXPECT_LE(run.window_accuracy, 1.0);
  EXPECT_GE(run.accepted_fraction, kMinAcceptedFraction)
      << "reject gates fire too eagerly on clean deployment traces: "
      << run.accepted_fraction;
}

TEST(GoldenRegression, FixedSeedRunIsReproducible) {
  // The whole chain is seeded; two runs must agree bit-for-bit on every
  // derived statistic, not merely land in the same band.
  const GoldenRun a = run_golden_pipeline();
  const GoldenRun b = run_golden_pipeline();
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_EQ(a.window_accuracy, b.window_accuracy);
  EXPECT_EQ(a.accepted_fraction, b.accepted_fraction);
}

}  // namespace
}  // namespace sidis::core

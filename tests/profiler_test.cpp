// Tests for the profiling-campaign orchestrator.
#include <gtest/gtest.h>

#include <random>

#include "core/profiler.hpp"

namespace sidis::core {
namespace {

class ProfilerFixture : public ::testing::Test {
 protected:
  sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                    sim::SessionContext::make(0)};
  std::mt19937_64 rng{8};
};

TEST_F(ProfilerFixture, ProfilesRequestedSubset) {
  ProfilerConfig cfg;
  cfg.classes = {*avr::class_index(avr::Mnemonic::kAdd),
                 *avr::class_index(avr::Mnemonic::kLdi)};
  cfg.registers = {3, 19};
  cfg.traces_per_class = 12;
  cfg.traces_per_register = 8;
  cfg.num_programs = 3;
  const ProfilingData data = profile_device(campaign, cfg, rng);
  ASSERT_EQ(data.classes.size(), 2u);
  EXPECT_EQ(data.classes.at(cfg.classes[0]).size(), 12u);
  ASSERT_EQ(data.rd_classes.size(), 2u);
  ASSERT_EQ(data.rr_classes.size(), 2u);
  EXPECT_EQ(data.rd_classes.at(3).size(), 8u);
  for (const sim::Trace& t : data.rr_classes.at(19)) {
    ASSERT_TRUE(t.meta.rr.has_value());
    EXPECT_EQ(*t.meta.rr, 19);
  }
}

TEST_F(ProfilerFixture, SkipsRegistersWhenDisabled) {
  ProfilerConfig cfg;
  cfg.classes = {*avr::class_index(avr::Mnemonic::kAdd),
                 *avr::class_index(avr::Mnemonic::kSub)};
  cfg.traces_per_class = 6;
  cfg.num_programs = 2;
  cfg.profile_registers = false;
  const ProfilingData data = profile_device(campaign, cfg, rng);
  EXPECT_TRUE(data.rd_classes.empty());
  EXPECT_TRUE(data.rr_classes.empty());
}

TEST_F(ProfilerFixture, ProgressCallbackCountsAndCanAbort) {
  ProfilerConfig cfg;
  cfg.classes = {*avr::class_index(avr::Mnemonic::kAdd),
                 *avr::class_index(avr::Mnemonic::kSub),
                 *avr::class_index(avr::Mnemonic::kAnd)};
  cfg.registers = {1};
  cfg.traces_per_class = 4;
  cfg.traces_per_register = 4;
  cfg.num_programs = 2;
  std::size_t calls = 0;
  std::size_t seen_total = 0;
  const ProfilingData data = profile_device(
      campaign, cfg, rng, [&](std::size_t done, std::size_t total, const std::string&) {
        ++calls;
        seen_total = total;
        EXPECT_LE(done, total);
        return true;
      });
  EXPECT_EQ(calls, 5u);  // 3 classes + Rd1 + Rr1
  EXPECT_EQ(seen_total, 5u);
  EXPECT_EQ(data.classes.size(), 3u);

  EXPECT_THROW(profile_device(campaign, cfg, rng,
                              [](std::size_t, std::size_t, const std::string&) {
                                return false;  // abort immediately
                              }),
               std::runtime_error);
}

}  // namespace
}  // namespace sidis::core

// Tests for the profiling-campaign orchestrator.
#include <gtest/gtest.h>

#include <random>

#include "core/profiler.hpp"

namespace sidis::core {
namespace {

class ProfilerFixture : public ::testing::Test {
 protected:
  sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                    sim::SessionContext::make(0)};
  std::mt19937_64 rng{8};
};

TEST_F(ProfilerFixture, ProfilesRequestedSubset) {
  ProfilerConfig cfg;
  cfg.classes = {*avr::class_index(avr::Mnemonic::kAdd),
                 *avr::class_index(avr::Mnemonic::kLdi)};
  cfg.registers = {3, 19};
  cfg.traces_per_class = 12;
  cfg.traces_per_register = 8;
  cfg.num_programs = 3;
  const ProfilingData data = profile_device(campaign, cfg, rng);
  ASSERT_EQ(data.classes.size(), 2u);
  EXPECT_EQ(data.classes.at(cfg.classes[0]).size(), 12u);
  ASSERT_EQ(data.rd_classes.size(), 2u);
  ASSERT_EQ(data.rr_classes.size(), 2u);
  EXPECT_EQ(data.rd_classes.at(3).size(), 8u);
  for (const sim::Trace& t : data.rr_classes.at(19)) {
    ASSERT_TRUE(t.meta.rr.has_value());
    EXPECT_EQ(*t.meta.rr, 19);
  }
}

TEST_F(ProfilerFixture, SkipsRegistersWhenDisabled) {
  ProfilerConfig cfg;
  cfg.classes = {*avr::class_index(avr::Mnemonic::kAdd),
                 *avr::class_index(avr::Mnemonic::kSub)};
  cfg.traces_per_class = 6;
  cfg.num_programs = 2;
  cfg.profile_registers = false;
  const ProfilingData data = profile_device(campaign, cfg, rng);
  EXPECT_TRUE(data.rd_classes.empty());
  EXPECT_TRUE(data.rr_classes.empty());
}

TEST_F(ProfilerFixture, ProgressCallbackCountsAndCanAbort) {
  ProfilerConfig cfg;
  cfg.classes = {*avr::class_index(avr::Mnemonic::kAdd),
                 *avr::class_index(avr::Mnemonic::kSub),
                 *avr::class_index(avr::Mnemonic::kAnd)};
  cfg.registers = {1};
  cfg.traces_per_class = 4;
  cfg.traces_per_register = 4;
  cfg.num_programs = 2;
  std::size_t calls = 0;
  std::size_t seen_total = 0;
  const ProfilingData data = profile_device(
      campaign, cfg, rng, [&](std::size_t done, std::size_t total, const std::string&) {
        ++calls;
        seen_total = total;
        EXPECT_LE(done, total);
        return true;
      });
  EXPECT_EQ(calls, 5u);  // 3 classes + Rd1 + Rr1
  EXPECT_EQ(seen_total, 5u);
  EXPECT_EQ(data.classes.size(), 3u);

  EXPECT_THROW(profile_device(campaign, cfg, rng,
                              [](std::size_t, std::size_t, const std::string&) {
                                return false;  // abort immediately
                              }),
               std::runtime_error);
}

TEST(ProfilerAcquisition, DecimatedCampaignIsWorkerCountInvariant) {
  // The per-item RNG streams that make profiling bit-identical at any worker
  // count must survive a non-nominal acquisition configuration: decimated
  // windows change the trace length, not the stream keying.
  ProfilerConfig cfg;
  cfg.classes = {*avr::class_index(avr::Mnemonic::kAdd),
                 *avr::class_index(avr::Mnemonic::kLdi)};
  cfg.registers = {5};
  cfg.traces_per_class = 8;
  cfg.traces_per_register = 6;
  cfg.num_programs = 2;

  const sim::AcquisitionConfig acq = sim::AcquisitionConfig::half_rate();
  const auto run = [&](std::size_t workers) {
    sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                      sim::SessionContext::make(0), acq};
    std::mt19937_64 rng{8};
    ProfilerConfig local = cfg;
    local.workers = workers;
    return profile_device(campaign, local, rng);
  };
  const ProfilingData inline_run = run(1);
  const ProfilingData pooled_run = run(3);

  const auto expect_identical = [](const sim::TraceSet& a, const sim::TraceSet& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].samples, b[i].samples);
      EXPECT_EQ(a[i].meta.samples_per_cycle, b[i].meta.samples_per_cycle);
      EXPECT_EQ(a[i].meta.adc_bits, b[i].meta.adc_bits);
    }
  };
  ASSERT_EQ(inline_run.classes.size(), pooled_run.classes.size());
  for (const auto& [cls, traces] : inline_run.classes) {
    ASSERT_EQ(traces.front().samples.size(), acq.window_samples());
    EXPECT_EQ(traces.front().meta.samples_per_cycle, acq.samples_per_cycle);
    expect_identical(traces, pooled_run.classes.at(cls));
  }
  for (const auto& [rd, traces] : inline_run.rd_classes) {
    expect_identical(traces, pooled_run.rd_classes.at(rd));
  }
  for (const auto& [rr, traces] : inline_run.rr_classes) {
    expect_identical(traces, pooled_run.rr_classes.at(rr));
  }
}

}  // namespace
}  // namespace sidis::core

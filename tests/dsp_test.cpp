// Unit tests for the DSP layer: FFT, convolution, CWT, signal utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "dsp/fft.hpp"
#include "dsp/signal.hpp"
#include "dsp/wavelet.hpp"

namespace sidis::dsp {
namespace {

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1023), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  ComplexVector x(3);
  EXPECT_THROW(fft(x), std::invalid_argument);
}

TEST(Fft, ForwardInverseRoundTrip) {
  std::mt19937_64 rng(1);
  std::normal_distribution<double> d(0, 1);
  ComplexVector x(64);
  for (auto& c : x) c = Complex(d(rng), d(rng));
  ComplexVector y = x;
  fft(y);
  ifft(y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-10);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-10);
  }
}

TEST(Fft, PureToneLandsInOneBin) {
  const std::size_t n = 128;
  std::vector<double> x(n);
  const std::size_t bin = 5;
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::cos(2.0 * std::numbers::pi * static_cast<double>(bin * i) /
                    static_cast<double>(n));
  }
  const std::vector<double> mag = magnitude_spectrum(x);
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < mag.size(); ++i) {
    if (mag[i] > mag[argmax]) argmax = i;
  }
  EXPECT_EQ(argmax, bin);
  EXPECT_NEAR(mag[bin], static_cast<double>(n) / 2.0, 1e-9);
}

TEST(Fft, ParsevalHolds) {
  std::mt19937_64 rng(2);
  std::normal_distribution<double> d(0, 1);
  std::vector<double> x(256);
  for (double& v : x) v = d(rng);
  double time_energy = 0.0;
  for (double v : x) time_energy += v * v;
  const ComplexVector spec = rfft(x);
  double freq_energy = 0.0;
  for (const Complex& c : spec) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / static_cast<double>(spec.size()), time_energy, 1e-8);
}

TEST(Fft, PropertiesHoldAtRandomPowerOfTwoSizes) {
  std::mt19937_64 rng(11);
  std::normal_distribution<double> d(0, 1);
  std::uniform_int_distribution<int> log_size(1, 12);  // 2 .. 4096
  std::uniform_real_distribution<double> coeff(-2.0, 2.0);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = std::size_t{1} << log_size(rng);
    ComplexVector x(n), y(n);
    for (auto& c : x) c = Complex(d(rng), d(rng));
    for (auto& c : y) c = Complex(d(rng), d(rng));

    // Round trip: ifft(fft(x)) == x.
    ComplexVector rt = x;
    fft(rt);
    ifft(rt);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(rt[i].real(), x[i].real(), 1e-9) << "n=" << n;
      EXPECT_NEAR(rt[i].imag(), x[i].imag(), 1e-9) << "n=" << n;
    }

    // Linearity: fft(a x + b y) == a fft(x) + b fft(y).
    const double a = coeff(rng), b = coeff(rng);
    ComplexVector mix(n);
    for (std::size_t i = 0; i < n; ++i) mix[i] = a * x[i] + b * y[i];
    ComplexVector fx = x, fy = y;
    fft(mix);
    fft(fx);
    fft(fy);
    for (std::size_t i = 0; i < n; ++i) {
      const Complex want = a * fx[i] + b * fy[i];
      EXPECT_NEAR(mix[i].real(), want.real(), 1e-8) << "n=" << n;
      EXPECT_NEAR(mix[i].imag(), want.imag(), 1e-8) << "n=" << n;
    }

    // Parseval: sum |X|^2 == n * sum |x|^2.
    double te = 0.0, fe = 0.0;
    for (const Complex& c : x) te += std::norm(c);
    for (const Complex& c : fx) fe += std::norm(c);
    EXPECT_NEAR(fe / static_cast<double>(n), te, 1e-8 * te + 1e-10) << "n=" << n;
  }
}

TEST(Fft, PlanMatchesFreeFunctionsAndChecksSize) {
  const FftPlan plan(32);
  EXPECT_EQ(plan.size(), 32u);
  std::mt19937_64 rng(12);
  std::normal_distribution<double> d(0, 1);
  ComplexVector x(32);
  for (auto& c : x) c = Complex(d(rng), d(rng));
  ComplexVector via_plan = x, via_free = x;
  plan.forward(via_plan);
  fft(via_free);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(via_plan[i].real(), via_free[i].real());
    EXPECT_DOUBLE_EQ(via_plan[i].imag(), via_free[i].imag());
  }
  ComplexVector wrong(16);
  EXPECT_THROW(plan.forward(wrong), std::invalid_argument);
  EXPECT_THROW(FftPlan(12), std::invalid_argument);
}

TEST(Convolve, MatchesHandComputed) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{1, 1};
  const std::vector<double> c = convolve(a, b);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_NEAR(c[0], 1, 1e-12);
  EXPECT_NEAR(c[1], 3, 1e-12);
  EXPECT_NEAR(c[2], 5, 1e-12);
  EXPECT_NEAR(c[3], 3, 1e-12);
}

TEST(Convolve, FftPathMatchesDirect) {
  std::mt19937_64 rng(3);
  std::normal_distribution<double> d(0, 1);
  std::vector<double> a(200), b(90);  // big enough to take the FFT path
  for (double& v : a) v = d(rng);
  for (double& v : b) v = d(rng);
  const std::vector<double> fast = convolve(a, b);
  std::vector<double> slow(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) slow[i + j] += a[i] * b[j];
  }
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) EXPECT_NEAR(fast[i], slow[i], 1e-8);
}

TEST(Convolve, EmptyInputsYieldEmpty) {
  EXPECT_TRUE(convolve({}, {1, 2}).empty());
  EXPECT_TRUE(convolve({1, 2}, {}).empty());
}

TEST(Wavelet, MorletIsEvenAndPeaksAtZero) {
  EXPECT_DOUBLE_EQ(mother_wavelet(WaveletFamily::kMorlet, 0.5),
                   mother_wavelet(WaveletFamily::kMorlet, -0.5));
  EXPECT_GT(mother_wavelet(WaveletFamily::kMorlet, 0.0),
            std::abs(mother_wavelet(WaveletFamily::kMorlet, 2.0)));
}

TEST(Wavelet, RickerZeroCrossingsAtPlusMinusOne) {
  EXPECT_NEAR(mother_wavelet(WaveletFamily::kRicker, 1.0), 0.0, 1e-12);
  EXPECT_NEAR(mother_wavelet(WaveletFamily::kRicker, -1.0), 0.0, 1e-12);
  EXPECT_GT(mother_wavelet(WaveletFamily::kRicker, 0.0), 0.0);
  EXPECT_LT(mother_wavelet(WaveletFamily::kRicker, 1.5), 0.0);
}

TEST(Cwt, ConfigValidation) {
  CwtConfig bad;
  bad.num_scales = 0;
  EXPECT_THROW(Cwt{bad}, std::invalid_argument);
  bad = {};
  bad.min_scale = 10.0;
  bad.max_scale = 2.0;
  EXPECT_THROW(Cwt{bad}, std::invalid_argument);
}

TEST(Cwt, OutputShapeMatchesConfig) {
  CwtConfig cfg;
  cfg.num_scales = 12;
  const Cwt cwt(cfg);
  const Scalogram s = cwt.transform(std::vector<double>(100, 0.0));
  EXPECT_EQ(s.rows(), 12u);
  EXPECT_EQ(s.cols(), 100u);
}

TEST(Cwt, ZeroSignalGivesZeroCoefficients) {
  const Cwt cwt{CwtConfig{}};
  const Scalogram s = cwt.transform(std::vector<double>(64, 0.0));
  EXPECT_DOUBLE_EQ(s.max_abs(), 0.0);
}

TEST(Cwt, DcIsSuppressedAwayFromEdges) {
  // Zero-mean wavelets kill constant signals in the interior -- the property
  // that makes CWT features robust to DC covariate shift.
  CwtConfig cfg;
  cfg.num_scales = 10;
  cfg.max_scale = 8.0;
  const Cwt cwt(cfg);
  const Scalogram s = cwt.transform(std::vector<double>(400, 1.0));
  for (std::size_t j = 0; j < s.rows(); ++j) {
    for (std::size_t k = 150; k < 250; ++k) {
      // The discretely sampled Morlet has a ~1e-4 residual mean.
      EXPECT_NEAR(s(j, k), 0.0, 1e-3) << "scale " << j << " time " << k;
    }
  }
}

TEST(Cwt, RespondsStrongestAtMatchingScale) {
  // A tone of frequency f should peak at the scale whose pseudo-frequency is
  // closest to f.
  CwtConfig cfg;
  cfg.num_scales = 30;
  cfg.min_scale = 2.0;
  cfg.max_scale = 40.0;
  const Cwt cwt(cfg);
  const double f = 0.05;  // cycles per sample
  std::vector<double> x(600);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(2.0 * std::numbers::pi * f * static_cast<double>(i));
  }
  const Scalogram s = cwt.transform(x);
  // Energy per scale in the interior region.
  std::size_t best_scale = 0;
  double best_energy = -1.0;
  for (std::size_t j = 0; j < s.rows(); ++j) {
    double e = 0.0;
    for (std::size_t k = 200; k < 400; ++k) e += s(j, k) * s(j, k);
    if (e > best_energy) {
      best_energy = e;
      best_scale = j;
    }
  }
  // The matching scale index by pseudo-frequency:
  std::size_t expect_scale = 0;
  double best_df = 1e9;
  for (std::size_t j = 0; j < cwt.num_scales(); ++j) {
    const double df = std::abs(cwt.pseudo_frequency(j) - f);
    if (df < best_df) {
      best_df = df;
      expect_scale = j;
    }
  }
  EXPECT_NEAR(static_cast<double>(best_scale), static_cast<double>(expect_scale), 2.0);
}

TEST(Cwt, SparseCoefficientMatchesFullGrid) {
  std::mt19937_64 rng(4);
  std::normal_distribution<double> d(0, 1);
  std::vector<double> x(315);
  for (double& v : x) v = d(rng);
  const Cwt cwt{CwtConfig{}};
  const Scalogram s = cwt.transform(x);
  for (std::size_t j : {0u, 10u, 25u, 49u}) {
    for (std::size_t k : {0u, 7u, 150u, 314u}) {
      EXPECT_NEAR(cwt.coefficient(x, j, k), s(j, k), 1e-12);
    }
  }
}

TEST(Cwt, SpectralMatchesDirectEverywhere) {
  // The FFT path must reproduce the reference time-domain correlation to
  // ~machine precision across families, scale spacings, and trace lengths
  // (including lengths shorter than the widest kernel).
  std::mt19937_64 rng(13);
  std::normal_distribution<double> d(0, 1);
  for (const WaveletFamily family : {WaveletFamily::kMorlet, WaveletFamily::kRicker}) {
    for (const bool log_spacing : {true, false}) {
      for (const std::size_t len : {std::size_t{100}, std::size_t{315}, std::size_t{500}}) {
        CwtConfig cfg;
        cfg.family = family;
        cfg.log_spacing = log_spacing;
        cfg.backend = CwtBackend::kDirect;
        const Cwt direct(cfg);
        cfg.backend = CwtBackend::kSpectral;
        const Cwt spectral(cfg);
        cfg.backend = CwtBackend::kAuto;
        const Cwt hybrid(cfg);

        std::vector<double> x(len);
        for (double& v : x) v = d(rng);
        const Scalogram want = direct.transform(x);
        const Scalogram got_spectral = spectral.transform(x);
        const Scalogram got_auto = hybrid.transform(x);
        ASSERT_EQ(got_spectral.rows(), want.rows());
        ASSERT_EQ(got_spectral.cols(), want.cols());
        double err = 0.0, err_auto = 0.0;
        for (std::size_t i = 0; i < want.data().size(); ++i) {
          err = std::max(err, std::abs(got_spectral.data()[i] - want.data()[i]));
          err_auto = std::max(err_auto, std::abs(got_auto.data()[i] - want.data()[i]));
        }
        EXPECT_LT(err, 1e-9) << "family=" << static_cast<int>(family)
                             << " log=" << log_spacing << " len=" << len;
        EXPECT_LT(err_auto, 1e-9) << "family=" << static_cast<int>(family)
                                  << " log=" << log_spacing << " len=" << len;
      }
    }
  }
}

TEST(Cwt, WorkspaceReuseAcrossTraceLengthsIsSound) {
  // One workspace serving transforms of different lengths must give the same
  // answers as fresh workspaces (buffers are resized, never trusted stale).
  std::mt19937_64 rng(14);
  std::normal_distribution<double> d(0, 1);
  const Cwt cwt{CwtConfig{}};
  CwtWorkspace shared_ws;
  for (const std::size_t len : {std::size_t{400}, std::size_t{64}, std::size_t{315}}) {
    std::vector<double> x(len);
    for (double& v : x) v = d(rng);
    const Scalogram fresh = cwt.transform(x);
    const Scalogram reused = cwt.transform(x, shared_ws);
    for (std::size_t i = 0; i < fresh.data().size(); ++i) {
      EXPECT_DOUBLE_EQ(reused.data()[i], fresh.data()[i]) << "len=" << len;
    }
  }
}

TEST(Cwt, BatchedCoefficientsMatchPerPointAcrossBackends) {
  std::mt19937_64 rng(15);
  std::normal_distribution<double> d(0, 1);
  std::vector<double> x(315);
  for (double& v : x) v = d(rng);

  // Dense cluster on one scale (forces the spectral-row upgrade) plus
  // scattered single points (stay direct), in shuffled order.
  std::vector<std::size_t> js, ks;
  for (std::size_t k = 0; k < 300; k += 4) {
    js.push_back(42);
    ks.push_back(k);
  }
  for (std::size_t j : {0u, 7u, 21u, 49u}) {
    js.push_back(j);
    ks.push_back(11 * (j + 1) % 315);
  }
  for (const CwtBackend backend :
       {CwtBackend::kAuto, CwtBackend::kDirect, CwtBackend::kSpectral}) {
    CwtConfig cfg;
    cfg.backend = backend;
    const Cwt cwt(cfg);
    CwtWorkspace ws;
    const linalg::Vector got = cwt.coefficients(x, js, ks, ws);
    ASSERT_EQ(got.size(), js.size());
    for (std::size_t i = 0; i < js.size(); ++i) {
      EXPECT_NEAR(got[i], cwt.coefficient(x, js[i], ks[i]), 1e-9)
          << "backend=" << static_cast<int>(backend) << " i=" << i;
    }
  }
}

TEST(Cwt, ScalesAreMonotonic) {
  const Cwt cwt{CwtConfig{}};
  for (std::size_t j = 1; j < cwt.num_scales(); ++j) {
    EXPECT_GT(cwt.scale(j), cwt.scale(j - 1));
    EXPECT_LT(cwt.pseudo_frequency(j), cwt.pseudo_frequency(j - 1));
  }
}

TEST(Signal, MeanVarianceStd) {
  const std::vector<double> x{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(x), 5.0);
  EXPECT_NEAR(variance(x), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(x), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({1.0}), 0.0);
}

TEST(Signal, ZscoreHasZeroMeanUnitStd) {
  std::mt19937_64 rng(5);
  std::normal_distribution<double> d(5, 3);
  std::vector<double> x(500);
  for (double& v : x) v = d(rng);
  const std::vector<double> z = zscore(x);
  EXPECT_NEAR(mean(z), 0.0, 1e-10);
  EXPECT_NEAR(stddev(z), 1.0, 1e-10);
}

TEST(Signal, ZscoreInvariantToAffine) {
  const std::vector<double> x{1, 4, 2, 8, 5};
  std::vector<double> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = 3.0 * x[i] + 10.0;
  const auto zx = zscore(x);
  const auto zy = zscore(y);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(zx[i], zy[i], 1e-10);
}

TEST(Signal, MinMaxNormalize) {
  const auto n = min_max_normalize({2, 4, 6});
  EXPECT_DOUBLE_EQ(n[0], 0.0);
  EXPECT_DOUBLE_EQ(n[1], 0.5);
  EXPECT_DOUBLE_EQ(n[2], 1.0);
  // Constant signals map to zeros, not NaN.
  for (double v : min_max_normalize({3, 3, 3})) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Signal, DetrendRemovesLine) {
  std::vector<double> x(50);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 2.0 + 0.5 * static_cast<double>(i);
  const auto d = detrend_linear(x);
  for (double v : d) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(Signal, MovingAverageSmoothsImpulse) {
  std::vector<double> x(9, 0.0);
  x[4] = 9.0;
  const auto y = moving_average(x, 3);
  EXPECT_NEAR(y[3], 3.0, 1e-12);
  EXPECT_NEAR(y[4], 3.0, 1e-12);
  EXPECT_NEAR(y[5], 3.0, 1e-12);
  EXPECT_NEAR(y[0], 0.0, 1e-12);
  EXPECT_THROW(moving_average(x, 0), std::invalid_argument);
}

TEST(Signal, LowpassAttenuatesHighFrequency) {
  std::vector<double> lo(400), hi(400);
  for (std::size_t i = 0; i < 400; ++i) {
    lo[i] = std::sin(2.0 * std::numbers::pi * 0.01 * static_cast<double>(i));
    hi[i] = std::sin(2.0 * std::numbers::pi * 0.4 * static_cast<double>(i));
  }
  const auto flo = lowpass_single_pole(lo, 0.05);
  const auto fhi = lowpass_single_pole(hi, 0.05);
  EXPECT_GT(stddev(flo), 0.5 * stddev(lo));
  EXPECT_LT(stddev(fhi), 0.2 * stddev(hi));
  EXPECT_THROW(lowpass_single_pole(lo, 0.0), std::invalid_argument);
}

TEST(Signal, QuantizeSnapsToGrid) {
  const auto q = quantize({0.0, 0.3, 0.5, 1.0, 2.0}, 2, 0.0, 1.0);  // 4 levels
  EXPECT_DOUBLE_EQ(q[0], 0.0);
  EXPECT_NEAR(q[1], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(q[2], 2.0 / 3.0, 1e-12);  // 0.5 rounds up at midpoint
  EXPECT_DOUBLE_EQ(q[3], 1.0);
  EXPECT_DOUBLE_EQ(q[4], 1.0);  // clamped
  EXPECT_THROW(quantize({0.0}, 0, 0, 1), std::invalid_argument);
  EXPECT_THROW(quantize({0.0}, 8, 1, 1), std::invalid_argument);
}

TEST(Signal, AlignmentRecoversKnownLag) {
  std::mt19937_64 rng(6);
  std::normal_distribution<double> d(0, 1);
  std::vector<double> ref(200);
  for (double& v : ref) v = d(rng);
  for (int lag : {-3, 0, 4}) {
    const std::vector<double> shifted = shift(ref, lag);
    EXPECT_EQ(best_alignment_lag(ref, shifted, 8), lag);
  }
}

TEST(Signal, ShiftZeroFills) {
  const std::vector<double> x{1, 2, 3};
  const auto right = shift(x, 1);
  EXPECT_DOUBLE_EQ(right[0], 0.0);
  EXPECT_DOUBLE_EQ(right[1], 1.0);
  const auto left = shift(x, -1);
  EXPECT_DOUBLE_EQ(left[2], 0.0);
  EXPECT_DOUBLE_EQ(left[0], 2.0);
}

TEST(Signal, SubtractAndLocalMaxima) {
  EXPECT_EQ(subtract({3, 4}, {1, 1}), (std::vector<double>{2, 3}));
  EXPECT_THROW(subtract({1}, {1, 2}), std::invalid_argument);
  const auto peaks = local_maxima({0, 2, 1, 5, 1, 0.5, 0.8, 0.2}, 0.6);
  EXPECT_EQ(peaks, (std::vector<std::size_t>{1, 3, 6}));
}

}  // namespace
}  // namespace sidis::dsp

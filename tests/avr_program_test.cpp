// Tests for random instruction sampling, the Fig-4 segment template, and the
// text assembler.
#include <gtest/gtest.h>

#include <random>

#include "avr/assembler.hpp"
#include "avr/codec.hpp"
#include "avr/cpu.hpp"
#include "avr/program.hpp"

namespace sidis::avr {
namespace {

class RandomInstanceSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RandomInstanceSweep, AlwaysEncodableAndOfRightClass) {
  std::mt19937_64 rng(0x7e57 + GetParam());
  for (int rep = 0; rep < 40; ++rep) {
    const Instruction in = random_instance(GetParam(), rng);
    EXPECT_EQ(class_of(in), GetParam());
    EXPECT_NO_THROW(encode(in));
  }
}

INSTANTIATE_TEST_SUITE_P(AllClasses, RandomInstanceSweep,
                         ::testing::Range<std::size_t>(0, 112));

TEST(RandomInstance, FixedRegistersAreHonoured) {
  std::mt19937_64 rng(1);
  SampleOptions opts;
  opts.fix_rd = 7;
  opts.fix_rr = 21;
  const std::size_t add = *class_index(Mnemonic::kAdd);
  for (int i = 0; i < 20; ++i) {
    const Instruction in = random_instance(add, rng, opts);
    EXPECT_EQ(in.rd, 7);
    EXPECT_EQ(in.rr, 21);
  }
}

TEST(RandomInstance, FixedRdClampedToLegalRange) {
  std::mt19937_64 rng(2);
  SampleOptions opts;
  opts.fix_rd = 3;  // illegal for immediates
  const std::size_t ldi = *class_index(Mnemonic::kLdi);
  const Instruction in = random_instance(ldi, rng, opts);
  EXPECT_GE(in.rd, 16);
  EXPECT_NO_THROW(encode(in));
}

TEST(RandomInstance, BranchOffsetsPinnedToZeroByDefault) {
  std::mt19937_64 rng(3);
  const std::size_t brne = *class_index(Mnemonic::kBrne);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(random_instance(brne, rng).rel, 0);
  }
  SampleOptions opts;
  opts.max_branch_offset = 5;
  bool nonzero = false;
  for (int i = 0; i < 50; ++i) {
    const Instruction in = random_instance(brne, rng, opts);
    EXPECT_GE(in.rel, 0);
    EXPECT_LE(in.rel, 5);
    nonzero |= in.rel != 0;
  }
  EXPECT_TRUE(nonzero);
}

TEST(RandomInstance, GroupSamplerStaysInGroup) {
  std::mt19937_64 rng(4);
  for (int g = 1; g <= 8; ++g) {
    for (int i = 0; i < 20; ++i) {
      const Instruction in = random_instance_in_group(g, rng);
      const auto cls = class_of(in);
      ASSERT_TRUE(cls.has_value());
      EXPECT_EQ(group_of_class(*cls), g);
    }
  }
}

TEST(RandomInstance, IoBitSamplerAvoidsTriggerPort) {
  std::mt19937_64 rng(5);
  const std::size_t sbi = *class_index(Mnemonic::kSbi);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(random_instance(sbi, rng).io, SegmentTemplate::kTriggerIo);
  }
}

TEST(SegmentTemplate, SequenceLayoutMatchesFig4) {
  std::mt19937_64 rng(6);
  Instruction target;
  target.mnemonic = Mnemonic::kAdd;
  target.rd = 1;
  target.rr = 2;
  const SegmentTemplate seg = SegmentTemplate::make(target, rng);
  const Program p = seg.sequence();
  ASSERT_EQ(p.size(), 7u);
  EXPECT_EQ(p[0].mnemonic, Mnemonic::kSbi);
  EXPECT_EQ(p[1].mnemonic, Mnemonic::kNop);
  EXPECT_EQ(p[3], target);
  EXPECT_EQ(p[5].mnemonic, Mnemonic::kNop);
  EXPECT_EQ(p[6].mnemonic, Mnemonic::kCbi);
  EXPECT_TRUE(is_linear_safe(p[2]));
  EXPECT_TRUE(is_linear_safe(p[4]));
}

TEST(SegmentTemplate, ReferenceSequenceIsFiveNops) {
  const Program r = SegmentTemplate::reference_sequence();
  ASSERT_EQ(r.size(), 7u);
  for (std::size_t i = 1; i <= 5; ++i) EXPECT_EQ(r[i].mnemonic, Mnemonic::kNop);
}

TEST(SegmentTemplate, AlwaysExecutesToCompletion) {
  // Whatever the target and neighbours, the segment must run off the end
  // linearly (records >= 4, CBI executed last or skipped only by target).
  std::mt19937_64 rng(7);
  for (int rep = 0; rep < 200; ++rep) {
    const Instruction target = random_any_instance(rng);
    Program p = SegmentTemplate::make(target, rng).sequence();
    finalize_control_flow(p);
    Cpu cpu;
    cpu.load_program(p);
    const auto records = cpu.run(16);
    EXPECT_TRUE(cpu.halted()) << to_string(target);
    ASSERT_GE(records.size(), 4u) << to_string(target);
    EXPECT_EQ(records[3].pc, encode_program({p.begin(), p.begin() + 3}).size())
        << to_string(target);
  }
}

TEST(FinalizeControlFlow, PatchesJmpToNextInstruction) {
  Program p = assemble("NOP\nJMP 0x0\nNOP").program;
  finalize_control_flow(p);
  EXPECT_EQ(p[1].k22, 3u);  // word address after the 2-word JMP at word 1
  Cpu cpu;
  cpu.load_program(p);
  cpu.run(8);
  EXPECT_TRUE(cpu.halted());
}

TEST(IsLinearSafe, ClassifiesControlFlow) {
  EXPECT_FALSE(is_linear_safe(assemble_line("RJMP .+0")));
  EXPECT_FALSE(is_linear_safe(assemble_line("CPSE r0, r1")));
  EXPECT_FALSE(is_linear_safe(assemble_line("RET")));
  EXPECT_FALSE(is_linear_safe(assemble_line("BREQ .+0")));
  EXPECT_TRUE(is_linear_safe(assemble_line("ADD r0, r1")));
  EXPECT_TRUE(is_linear_safe(assemble_line("LDS r0, 0x100")));
  EXPECT_TRUE(is_linear_safe(assemble_line("SBI 6, 2")));
}

TEST(Assembler, ParsesEveryRenderedInstruction) {
  // to_string -> assemble_line round trip over random instances.
  std::mt19937_64 rng(8);
  for (std::size_t cls = 0; cls < num_instruction_classes(); ++cls) {
    const Instruction in = random_instance(cls, rng);
    const std::string text = to_string(in);
    Instruction back;
    ASSERT_NO_THROW(back = assemble_line(text)) << text;
    EXPECT_EQ(encode(back), encode(in)) << text;
  }
}

TEST(Assembler, HandlesCommentsAndBlankLines) {
  const AssemblyResult r = assemble(
      "; leading comment\n"
      "\n"
      "LDI r16, 1  ; trailing comment\n"
      "ADD r0, r16 // c++ style\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.program.size(), 2u);
  EXPECT_EQ(r.program[0].mnemonic, Mnemonic::kLdi);
}

TEST(Assembler, ReportsErrorsWithLineNumbers) {
  const AssemblyResult r = assemble("NOP\nFROB r1\nLDI r16, 99999\n");
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.errors.size(), 2u);
  EXPECT_EQ(r.errors[0].line, 2u);
  EXPECT_EQ(r.errors[1].line, 3u);
  EXPECT_EQ(r.program.size(), 1u);  // the valid NOP still assembled
}

TEST(Assembler, NumericBasesAndNegatives) {
  EXPECT_EQ(assemble_line("LDI r16, 0x2A").k8, 42);
  EXPECT_EQ(assemble_line("LDI r16, 0b101010").k8, 42);
  EXPECT_EQ(assemble_line("RJMP .-6").rel, -3);
  EXPECT_THROW(assemble_line("RJMP .-5"), std::invalid_argument);  // odd bytes
}

TEST(Assembler, MemoryOperands) {
  const Instruction ld = assemble_line("LD r4, -Y");
  EXPECT_EQ(ld.mode, AddrMode::kYPreDec);
  const Instruction std_ = assemble_line("STD Z+63, r9");
  EXPECT_EQ(std_.mode, AddrMode::kZDisp);
  EXPECT_EQ(std_.q, 63);
  EXPECT_EQ(std_.rr, 9);
  const Instruction lds = assemble_line("LDS r2, 0x1FF");
  EXPECT_EQ(lds.mode, AddrMode::kAbs);
  EXPECT_EQ(lds.k16, 0x1FF);
  EXPECT_THROW(assemble_line("LDD r4, Y+64"), std::invalid_argument);
}

TEST(Assembler, OperandCountValidation) {
  EXPECT_THROW(assemble_line("ADD r1"), std::invalid_argument);
  EXPECT_THROW(assemble_line("NOP r1"), std::invalid_argument);
  EXPECT_THROW(assemble_line("SEC 1"), std::invalid_argument);
}

TEST(Assembler, ImplicitR0Lpm) {
  const Instruction lpm = assemble_line("LPM");
  EXPECT_EQ(lpm.mode, AddrMode::kR0);
  EXPECT_NO_THROW(encode(lpm));
}

TEST(Assembler, ListingRoundTrip) {
  const std::string src = "LDI r16, 10\nADD r0, r16\nST X+, r0\n";
  const AssemblyResult r = assemble(src);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(disassemble_listing(r.program), src);
}

}  // namespace
}  // namespace sidis::avr

// Unit tests for Cholesky / LU factorizations and the Jacobi eigensolver.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/decompositions.hpp"
#include "linalg/eigen.hpp"

namespace sidis::linalg {
namespace {

Matrix random_spd(std::size_t n, std::mt19937_64& rng) {
  std::normal_distribution<double> d(0, 1);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = d(rng);
  }
  Matrix spd = a * a.transposed();
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

TEST(Cholesky, ReconstructsInput) {
  std::mt19937_64 rng(3);
  const Matrix a = random_spd(6, rng);
  const Cholesky chol = Cholesky::compute(a);
  ASSERT_TRUE(chol.valid);
  EXPECT_TRUE(Matrix::approx_equal(chol.l * chol.l.transposed(), a, 1e-9));
}

TEST(Cholesky, RejectsIndefinite) {
  const Matrix a{{1, 2}, {2, 1}};  // eigenvalues 3, -1
  EXPECT_FALSE(Cholesky::compute(a).valid);
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_FALSE(Cholesky::compute(Matrix(2, 3)).valid);
}

TEST(Cholesky, SolveMatchesDirectSolve) {
  std::mt19937_64 rng(4);
  const Matrix a = random_spd(5, rng);
  const Vector b{1, -2, 3, 0.5, 2};
  const Cholesky chol = Cholesky::compute(a);
  ASSERT_TRUE(chol.valid);
  const Vector x = chol.solve(b);
  const Vector ax = a * x;
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

TEST(Cholesky, LogDetMatchesLu) {
  std::mt19937_64 rng(5);
  const Matrix a = random_spd(7, rng);
  const Cholesky chol = Cholesky::compute(a);
  const Lu lu = Lu::compute(a);
  ASSERT_TRUE(chol.valid);
  ASSERT_TRUE(lu.valid);
  EXPECT_NEAR(chol.log_det(), std::log(lu.determinant()), 1e-8);
}

TEST(Cholesky, MahalanobisMatchesExplicitForm) {
  std::mt19937_64 rng(6);
  const Matrix a = random_spd(4, rng);
  const Cholesky chol = Cholesky::compute(a);
  const Vector x{0.3, -1.0, 2.0, 0.7};
  const Vector ainv_x = solve(a, x);
  EXPECT_NEAR(chol.mahalanobis_squared(x), dot(x, ainv_x), 1e-9);
}

TEST(Cholesky, InvalidUseThrows) {
  Cholesky c;  // never computed
  EXPECT_THROW(c.solve({1.0}), std::runtime_error);
  EXPECT_THROW(c.log_det(), std::runtime_error);
}

TEST(Lu, DeterminantOfKnownMatrix) {
  const Matrix a{{4, 3}, {6, 3}};
  const Lu lu = Lu::compute(a);
  ASSERT_TRUE(lu.valid);
  EXPECT_NEAR(lu.determinant(), -6.0, 1e-12);
}

TEST(Lu, DetectsSingular) {
  const Matrix a{{1, 2}, {2, 4}};
  EXPECT_FALSE(Lu::compute(a).valid);
  EXPECT_THROW(inverse(a), std::runtime_error);
}

TEST(Lu, SolveRandomSystems) {
  std::mt19937_64 rng(8);
  std::normal_distribution<double> d(0, 1);
  for (int rep = 0; rep < 5; ++rep) {
    Matrix a(6, 6);
    for (std::size_t i = 0; i < 6; ++i) {
      for (std::size_t j = 0; j < 6; ++j) a(i, j) = d(rng);
    }
    Vector x_true(6);
    for (double& v : x_true) v = d(rng);
    const Vector b = a * x_true;
    const Vector x = solve(a, b);
    for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
  }
}

TEST(Lu, InverseTimesOriginalIsIdentity) {
  std::mt19937_64 rng(9);
  const Matrix a = random_spd(5, rng);
  const Matrix inv = inverse(a);
  EXPECT_TRUE(Matrix::approx_equal(a * inv, Matrix::identity(5), 1e-8));
}

TEST(Regularized, AddsToDiagonalOnly) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix r = regularized(a, 0.5);
  EXPECT_DOUBLE_EQ(r(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(r(1, 1), 4.5);
  EXPECT_DOUBLE_EQ(r(0, 1), 2.0);
}

TEST(Eigen, DiagonalMatrixEigenvaluesSorted) {
  const Matrix a = Matrix::diagonal({1, 5, 3});
  const EigenDecomposition e = eigen_symmetric(a);
  ASSERT_TRUE(e.converged);
  EXPECT_NEAR(e.values[0], 5, 1e-12);
  EXPECT_NEAR(e.values[1], 3, 1e-12);
  EXPECT_NEAR(e.values[2], 1, 1e-12);
}

TEST(Eigen, KnownTwoByTwo) {
  const Matrix a{{2, 1}, {1, 2}};  // eigenvalues 3 and 1
  const EigenDecomposition e = eigen_symmetric(a);
  ASSERT_TRUE(e.converged);
  EXPECT_NEAR(e.values[0], 3.0, 1e-10);
  EXPECT_NEAR(e.values[1], 1.0, 1e-10);
}

TEST(Eigen, ReconstructionAndOrthogonality) {
  std::mt19937_64 rng(10);
  const Matrix a = random_spd(8, rng);
  const EigenDecomposition e = eigen_symmetric(a);
  ASSERT_TRUE(e.converged);
  // V diag(w) V^T == A
  const Matrix recon =
      e.vectors * Matrix::diagonal(e.values) * e.vectors.transposed();
  EXPECT_TRUE(Matrix::approx_equal(recon, a, 1e-8));
  // V^T V == I
  EXPECT_TRUE(
      Matrix::approx_equal(e.vectors.transposed() * e.vectors, Matrix::identity(8), 1e-9));
}

TEST(Eigen, TraceEqualsEigenvalueSum) {
  std::mt19937_64 rng(11);
  const Matrix a = random_spd(6, rng);
  const EigenDecomposition e = eigen_symmetric(a);
  double sum = 0.0;
  for (double v : e.values) sum += v;
  EXPECT_NEAR(sum, a.trace(), 1e-8);
}

TEST(Eigen, NonSquareThrows) {
  EXPECT_THROW(eigen_symmetric(Matrix(2, 3)), std::invalid_argument);
}

TEST(Eigen, EmptyMatrixConverges) {
  const EigenDecomposition e = eigen_symmetric(Matrix{});
  EXPECT_TRUE(e.converged);
  EXPECT_TRUE(e.values.empty());
}

class EigenSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenSizeSweep, EigenpairsSatisfyDefinition) {
  std::mt19937_64 rng(100 + GetParam());
  const Matrix a = random_spd(GetParam(), rng);
  const EigenDecomposition e = eigen_symmetric(a);
  ASSERT_TRUE(e.converged);
  for (std::size_t k = 0; k < GetParam(); ++k) {
    const Vector v = e.vectors.col_vector(k);
    const Vector av = a * v;
    for (std::size_t i = 0; i < v.size(); ++i) {
      EXPECT_NEAR(av[i], e.values[k] * v[i], 1e-7);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenSizeSweep,
                         ::testing::Values<std::size_t>(1, 2, 3, 5, 10, 25, 60));

}  // namespace
}  // namespace sidis::linalg

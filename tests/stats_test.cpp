// Unit tests for the statistics layer: Gaussian models, KL divergence, PCA,
// peak finding, normalization.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "stats/gaussian.hpp"
#include "stats/kl.hpp"
#include "stats/pca.hpp"
#include "stats/peaks.hpp"
#include "stats/standardize.hpp"

namespace sidis::stats {
namespace {

TEST(Gaussian1D, FitRecoversMoments) {
  std::mt19937_64 rng(1);
  std::normal_distribution<double> d(3.0, 2.0);
  std::vector<double> x(20000);
  for (double& v : x) v = d(rng);
  const Gaussian1D g = Gaussian1D::fit(x);
  EXPECT_NEAR(g.mean, 3.0, 0.05);
  EXPECT_NEAR(g.var, 4.0, 0.15);
}

TEST(Gaussian1D, PdfIntegratesToOne) {
  const Gaussian1D g{1.0, 0.25};
  double integral = 0.0;
  for (double x = -5; x <= 7; x += 0.001) integral += g.pdf(x) * 0.001;
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(Gaussian1D, VarianceClampedForConstantData) {
  const std::vector<double> x(10, 2.0);
  const Gaussian1D g = Gaussian1D::fit(x, 1e-6);
  EXPECT_DOUBLE_EQ(g.mean, 2.0);
  EXPECT_DOUBLE_EQ(g.var, 1e-6);
}

TEST(Gaussian1D, FitRejectsEmpty) {
  EXPECT_THROW(Gaussian1D::fit(std::span<const double>{}), std::invalid_argument);
}

TEST(MultivariateGaussian, LogPdfMatchesUnivariate) {
  const auto g = MultivariateGaussian::from_moments({1.5}, linalg::Matrix{{0.49}}, 0.0);
  const Gaussian1D u{1.5, 0.49};
  for (double x : {-1.0, 0.0, 1.5, 3.0}) {
    EXPECT_NEAR(g.log_pdf({x}), u.log_pdf(x), 1e-10);
  }
}

TEST(MultivariateGaussian, FitRecoversDiagonalCovariance) {
  std::mt19937_64 rng(2);
  std::normal_distribution<double> d1(0.0, 1.0), d2(5.0, 3.0);
  std::vector<linalg::Vector> rows;
  for (int i = 0; i < 20000; ++i) rows.push_back({d1(rng), d2(rng)});
  const auto g = MultivariateGaussian::fit(linalg::Matrix::from_rows(rows));
  EXPECT_NEAR(g.mean()[0], 0.0, 0.05);
  EXPECT_NEAR(g.mean()[1], 5.0, 0.1);
  EXPECT_NEAR(g.covariance()(0, 0), 1.0, 0.1);
  EXPECT_NEAR(g.covariance()(1, 1), 9.0, 0.4);
  EXPECT_NEAR(g.covariance()(0, 1), 0.0, 0.1);
}

TEST(MultivariateGaussian, RegularizesSingularCovariance) {
  // Two identical columns: singular covariance must be ridged until SPD.
  std::vector<linalg::Vector> rows;
  std::mt19937_64 rng(3);
  std::normal_distribution<double> d(0, 1);
  for (int i = 0; i < 50; ++i) {
    const double v = d(rng);
    rows.push_back({v, v});
  }
  EXPECT_NO_THROW(MultivariateGaussian::fit(linalg::Matrix::from_rows(rows)));
}

TEST(MultivariateGaussian, MahalanobisOfMeanIsZero) {
  const auto g = MultivariateGaussian::from_moments(
      {1.0, 2.0}, linalg::Matrix{{2.0, 0.3}, {0.3, 1.0}});
  EXPECT_NEAR(g.mahalanobis_squared({1.0, 2.0}), 0.0, 1e-12);
  EXPECT_GT(g.mahalanobis_squared({2.0, 2.0}), 0.0);
}

TEST(Kl, ZeroForIdenticalDistributions) {
  const Gaussian1D p{0.7, 2.0};
  EXPECT_NEAR(kl_gaussian(p, p), 0.0, 1e-12);
}

TEST(Kl, PositiveAndAsymmetric) {
  const Gaussian1D p{0.0, 1.0};
  const Gaussian1D q{1.0, 4.0};
  EXPECT_GT(kl_gaussian(p, q), 0.0);
  EXPECT_GT(kl_gaussian(q, p), 0.0);
  EXPECT_NE(kl_gaussian(p, q), kl_gaussian(q, p));
  EXPECT_NEAR(symmetric_kl_gaussian(p, q),
              kl_gaussian(p, q) + kl_gaussian(q, p), 1e-12);
}

TEST(Kl, MatchesClosedFormHandValue) {
  // KL(N(0,1) || N(1,1)) = 1/2.
  EXPECT_NEAR(kl_gaussian(Gaussian1D{0, 1}, Gaussian1D{1, 1}), 0.5, 1e-12);
  // KL(N(0,1) || N(0,4)) = (ln 4 + 1/4 - 1)/2.
  EXPECT_NEAR(kl_gaussian(Gaussian1D{0, 1}, Gaussian1D{0, 4}),
              0.5 * (std::log(4.0) + 0.25 - 1.0), 1e-12);
}

TEST(Kl, MultivariateMatchesUnivariateInOneDim) {
  const auto p = MultivariateGaussian::from_moments({0.0}, linalg::Matrix{{1.0}}, 0.0);
  const auto q = MultivariateGaussian::from_moments({1.0}, linalg::Matrix{{4.0}}, 0.0);
  EXPECT_NEAR(kl_gaussian(p, q), kl_gaussian(Gaussian1D{0, 1}, Gaussian1D{1, 4}), 1e-9);
}

TEST(Kl, MultivariateZeroForIdentical) {
  const auto p = MultivariateGaussian::from_moments(
      {1.0, -1.0}, linalg::Matrix{{2.0, 0.5}, {0.5, 1.0}}, 0.0);
  EXPECT_NEAR(kl_gaussian(p, p), 0.0, 1e-9);
}

TEST(KlMap, MomentMapsShapeAndValues) {
  std::vector<linalg::Matrix> stack = {linalg::Matrix{{1, 2}, {3, 4}},
                                       linalg::Matrix{{3, 2}, {3, 8}}};
  const MomentMaps m = moment_maps(stack);
  EXPECT_DOUBLE_EQ(m.mean(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.mean(1, 1), 6.0);
  EXPECT_NEAR(m.var(0, 0), 2.0, 1e-12);   // var of {1,3}
  EXPECT_NEAR(m.var(0, 1), 1e-12, 1e-13);  // clamped
}

TEST(KlMap, InconsistentShapesThrow) {
  std::vector<linalg::Matrix> stack = {linalg::Matrix(2, 2), linalg::Matrix(2, 3)};
  EXPECT_THROW(moment_maps(stack), std::invalid_argument);
}

TEST(KlMap, DetectsTheDifferingCell) {
  std::mt19937_64 rng(4);
  std::normal_distribution<double> noise(0.0, 0.1);
  std::vector<linalg::Matrix> a, b;
  for (int i = 0; i < 200; ++i) {
    linalg::Matrix ma(3, 3, 0.0), mb(3, 3, 0.0);
    for (std::size_t r = 0; r < 3; ++r) {
      for (std::size_t c = 0; c < 3; ++c) {
        ma(r, c) = noise(rng);
        mb(r, c) = noise(rng);
      }
    }
    mb(1, 2) += 1.0;  // the only real difference
    a.push_back(std::move(ma));
    b.push_back(std::move(mb));
  }
  const linalg::Matrix map = kl_map(a, b);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      if (r == 1 && c == 2) continue;
      EXPECT_LT(map(r, c), map(1, 2) / 10.0);
    }
  }
  EXPECT_GT(map(1, 2), 10.0);
}

TEST(Pca, RecoversDominantDirection) {
  std::mt19937_64 rng(5);
  std::normal_distribution<double> big(0.0, 5.0), small(0.0, 0.1);
  std::vector<linalg::Vector> rows;
  const double dir[2] = {std::cos(0.6), std::sin(0.6)};
  for (int i = 0; i < 3000; ++i) {
    const double t = big(rng), s = small(rng);
    rows.push_back({t * dir[0] - s * dir[1], t * dir[1] + s * dir[0]});
  }
  const Pca pca = Pca::fit(linalg::Matrix::from_rows(rows));
  ASSERT_EQ(pca.num_components(), 2u);
  // First axis parallel (up to sign) to dir.
  const double d = std::abs(pca.components()(0, 0) * dir[0] +
                            pca.components()(1, 0) * dir[1]);
  EXPECT_NEAR(d, 1.0, 1e-3);
  EXPECT_GT(pca.explained_variance_ratio(1), 0.99);
}

TEST(Pca, TransformInverseRoundTripFullRank) {
  std::mt19937_64 rng(6);
  std::normal_distribution<double> d(0, 1);
  std::vector<linalg::Vector> rows;
  for (int i = 0; i < 100; ++i) rows.push_back({d(rng), d(rng), d(rng)});
  const Pca pca = Pca::fit(linalg::Matrix::from_rows(rows));
  const linalg::Vector x{0.4, -1.0, 2.0};
  const linalg::Vector back = pca.inverse_transform(pca.transform(x));
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(back[i], x[i], 1e-9);
}

TEST(Pca, ComponentsAreDecorrelated) {
  std::mt19937_64 rng(7);
  std::normal_distribution<double> d(0, 1);
  std::vector<linalg::Vector> rows;
  for (int i = 0; i < 500; ++i) {
    const double a = d(rng), b = d(rng);
    rows.push_back({a, 0.8 * a + 0.2 * b, b, a - b});
  }
  const linalg::Matrix x = linalg::Matrix::from_rows(rows);
  const Pca pca = Pca::fit(x);
  const linalg::Matrix z = pca.transform(x);
  const linalg::Matrix cov = linalg::row_covariance(z);
  for (std::size_t i = 0; i < cov.rows(); ++i) {
    for (std::size_t j = 0; j < cov.cols(); ++j) {
      if (i != j) EXPECT_NEAR(cov(i, j), 0.0, 1e-8);
    }
  }
}

TEST(Pca, VarianceRatioMonotonicAndCapped) {
  std::mt19937_64 rng(8);
  std::normal_distribution<double> d(0, 1);
  std::vector<linalg::Vector> rows;
  for (int i = 0; i < 200; ++i) rows.push_back({d(rng), 2 * d(rng), 3 * d(rng)});
  const Pca pca = Pca::fit(linalg::Matrix::from_rows(rows));
  double prev = 0.0;
  for (std::size_t k = 1; k <= 3; ++k) {
    const double r = pca.explained_variance_ratio(k);
    EXPECT_GE(r, prev);
    prev = r;
  }
  EXPECT_NEAR(prev, 1.0, 1e-9);
  EXPECT_EQ(pca.components_for_variance(1.0), 3u);
  EXPECT_GE(pca.components_for_variance(0.5), 1u);
}

TEST(Pca, MaxComponentsTruncates) {
  std::mt19937_64 rng(9);
  std::normal_distribution<double> d(0, 1);
  std::vector<linalg::Vector> rows;
  for (int i = 0; i < 50; ++i) rows.push_back({d(rng), d(rng), d(rng), d(rng)});
  const Pca pca = Pca::fit(linalg::Matrix::from_rows(rows), 2);
  EXPECT_EQ(pca.num_components(), 2u);
  EXPECT_EQ(pca.transform(linalg::Vector{1, 2, 3, 4}).size(), 2u);
}

TEST(Peaks, FindsInteriorAndBorderMaxima) {
  linalg::Matrix m(3, 4, 0.0);
  m(1, 1) = 5.0;  // interior peak
  m(0, 3) = 2.0;  // corner peak
  const auto peaks = local_maxima_2d(m);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(top_k(peaks, 1).front(), (GridPoint{1, 1, 5.0}));
}

TEST(Peaks, PlateauIsNotAPeak) {
  linalg::Matrix m(3, 3, 1.0);  // perfectly flat
  EXPECT_TRUE(local_maxima_2d(m).empty());
}

TEST(Peaks, ThresholdFilters) {
  linalg::Matrix m(3, 3, 0.0);
  m(1, 1) = 0.5;
  EXPECT_EQ(local_maxima_2d(m, 0.4).size(), 1u);
  EXPECT_TRUE(local_maxima_2d(m, 0.6).empty());
}

TEST(Peaks, TopAndBottomKOrdering) {
  std::vector<GridPoint> pts = {{0, 0, 1.0}, {0, 1, 3.0}, {1, 0, 2.0}};
  const auto top = top_k(pts, 2);
  EXPECT_DOUBLE_EQ(top[0].value, 3.0);
  EXPECT_DOUBLE_EQ(top[1].value, 2.0);
  const auto bottom = bottom_k(pts, 2);
  EXPECT_DOUBLE_EQ(bottom[0].value, 1.0);
  EXPECT_DOUBLE_EQ(bottom[1].value, 2.0);
}

TEST(ColumnScaler, TransformsToZeroMeanUnitStd) {
  std::mt19937_64 rng(10);
  std::normal_distribution<double> d(7.0, 3.0);
  std::vector<linalg::Vector> rows;
  for (int i = 0; i < 400; ++i) rows.push_back({d(rng), 2.0 * d(rng)});
  const linalg::Matrix x = linalg::Matrix::from_rows(rows);
  const ColumnScaler s = ColumnScaler::fit(x);
  const linalg::Matrix z = s.transform(x);
  const linalg::Vector m = linalg::row_mean(z);
  EXPECT_NEAR(m[0], 0.0, 1e-10);
  EXPECT_NEAR(m[1], 0.0, 1e-10);
  const linalg::Matrix cov = linalg::row_covariance(z);
  EXPECT_NEAR(cov(0, 0), 1.0, 1e-9);
  EXPECT_NEAR(cov(1, 1), 1.0, 1e-9);
}

TEST(ColumnScaler, InverseTransformRoundTrips) {
  const linalg::Matrix x{{1, 10}, {2, 20}, {3, 30}};
  const ColumnScaler s = ColumnScaler::fit(x);
  const linalg::Vector v{2.5, 15.0};
  const linalg::Vector back = s.inverse_transform(s.transform(v));
  EXPECT_NEAR(back[0], 2.5, 1e-10);
  EXPECT_NEAR(back[1], 15.0, 1e-10);
}

TEST(NormalizeVector, CancelsGainAndOffset) {
  const linalg::Vector x{1, 5, 2, 8, 3};
  linalg::Vector y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = 4.0 * x[i] - 2.0;
  const linalg::Vector zx = normalize_vector(x);
  const linalg::Vector zy = normalize_vector(y);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(zx[i], zy[i], 1e-10);
}

TEST(NormalizeRows, AppliesPerRow) {
  const linalg::Matrix x{{1, 2, 3}, {10, 20, 30}};
  const linalg::Matrix z = normalize_rows(x);
  for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(z(0, c), z(1, c), 1e-10);
}

}  // namespace
}  // namespace sidis::stats

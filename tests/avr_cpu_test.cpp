// Functional-simulator tests: instruction semantics, SREG flags, memory,
// control flow, cycle counts and ExecRecord bookkeeping.
#include <gtest/gtest.h>

#include "avr/assembler.hpp"
#include "avr/cpu.hpp"
#include "avr/program.hpp"

namespace sidis::avr {
namespace {

Cpu run_listing(const std::string& listing, std::size_t steps = 64) {
  const AssemblyResult r = assemble(listing);
  EXPECT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors.front().message);
  Cpu cpu;
  cpu.load_program(r.program);
  cpu.run(steps);
  return cpu;
}

TEST(Cpu, AddSetsCarryAndZero) {
  Cpu cpu = [] {
    Cpu c;
    c.load_program(assemble("ADD r0, r1").program);
    c.set_reg(0, 0xFF);
    c.set_reg(1, 0x01);
    return c;
  }();
  const ExecRecord rec = cpu.step();
  EXPECT_EQ(cpu.reg(0), 0x00);
  EXPECT_TRUE(cpu.flag(kFlagC));
  EXPECT_TRUE(cpu.flag(kFlagZ));
  EXPECT_TRUE(cpu.flag(kFlagH));
  EXPECT_FALSE(cpu.flag(kFlagN));
  EXPECT_EQ(rec.rd_before, 0xFF);
  EXPECT_EQ(rec.rd_after, 0x00);
  EXPECT_EQ(rec.rr_value, 0x01);
  EXPECT_EQ(rec.cycles, 1u);
}

TEST(Cpu, AddSignedOverflowSetsV) {
  Cpu c;
  c.load_program(assemble("ADD r0, r1").program);
  c.set_reg(0, 0x7F);
  c.set_reg(1, 0x01);
  c.step();
  EXPECT_EQ(c.reg(0), 0x80);
  EXPECT_TRUE(c.flag(kFlagV));
  EXPECT_TRUE(c.flag(kFlagN));
  EXPECT_FALSE(c.flag(kFlagS));  // S = N xor V
}

TEST(Cpu, AdcUsesIncomingCarry) {
  Cpu c;
  c.load_program(assemble("ADC r2, r3").program);
  c.set_reg(2, 10);
  c.set_reg(3, 20);
  c.set_flag(kFlagC, true);
  c.step();
  EXPECT_EQ(c.reg(2), 31);
}

TEST(Cpu, SubAndCpFlagsAgree) {
  Cpu a;
  a.load_program(assemble("SUB r0, r1").program);
  a.set_reg(0, 5);
  a.set_reg(1, 7);
  a.step();
  EXPECT_EQ(a.reg(0), 0xFE);
  EXPECT_TRUE(a.flag(kFlagC));  // borrow
  EXPECT_TRUE(a.flag(kFlagN));

  Cpu b;
  b.load_program(assemble("CP r0, r1").program);
  b.set_reg(0, 5);
  b.set_reg(1, 7);
  b.step();
  EXPECT_EQ(b.reg(0), 5);  // compare does not write back
  EXPECT_EQ(b.flag(kFlagC), a.flag(kFlagC));
  EXPECT_EQ(b.flag(kFlagN), a.flag(kFlagN));
  EXPECT_EQ(b.flag(kFlagV), a.flag(kFlagV));
}

TEST(Cpu, SbcChainsZeroFlag) {
  // 16-bit compare idiom: Z only stays set if both bytes are zero.
  Cpu c;
  c.load_program(assemble("SUB r0, r2\nSBC r1, r3").program);
  c.set_reg(0, 0x34);
  c.set_reg(1, 0x12);
  c.set_reg(2, 0x34);
  c.set_reg(3, 0x12);
  c.run(2);
  EXPECT_TRUE(c.flag(kFlagZ));
  EXPECT_FALSE(c.flag(kFlagC));
}

TEST(Cpu, LogicOpsClearV) {
  Cpu c = run_listing("LDI r16, 0xF0\nLDI r17, 0x0F\nAND r16, r17");
  EXPECT_EQ(c.reg(16), 0x00);
  EXPECT_TRUE(c.flag(kFlagZ));
  EXPECT_FALSE(c.flag(kFlagV));

  Cpu d = run_listing("LDI r16, 0xF0\nLDI r17, 0x0F\nOR r16, r17");
  EXPECT_EQ(d.reg(16), 0xFF);
  EXPECT_TRUE(d.flag(kFlagN));

  Cpu e = run_listing("LDI r16, 0xAA\nLDI r17, 0xAA\nEOR r16, r17");
  EXPECT_EQ(e.reg(16), 0x00);
  EXPECT_TRUE(e.flag(kFlagZ));
}

TEST(Cpu, MovAndMovw) {
  Cpu c = run_listing("LDI r16, 0x42\nMOV r0, r16");
  EXPECT_EQ(c.reg(0), 0x42);

  Cpu d;
  d.load_program(assemble("MOVW r2, r30").program);
  d.set_reg(30, 0xCD);
  d.set_reg(31, 0xAB);
  d.step();
  EXPECT_EQ(d.reg(2), 0xCD);
  EXPECT_EQ(d.reg(3), 0xAB);
}

TEST(Cpu, ImmediateOps) {
  Cpu c = run_listing("LDI r20, 100\nSUBI r20, 58");
  EXPECT_EQ(c.reg(20), 42);
  Cpu d = run_listing("LDI r20, 0x0F\nORI r20, 0xF0");
  EXPECT_EQ(d.reg(20), 0xFF);
  Cpu e = run_listing("LDI r20, 0x3C\nANDI r20, 0x0F");
  EXPECT_EQ(e.reg(20), 0x0C);
  Cpu f = run_listing("LDI r20, 7\nCPI r20, 7");
  EXPECT_TRUE(f.flag(kFlagZ));
}

TEST(Cpu, AdiwSbiwWordArithmetic) {
  Cpu c;
  c.load_program(assemble("ADIW r24, 3").program);
  c.set_reg(24, 0xFF);
  c.set_reg(25, 0x00);
  const ExecRecord rec = c.step();
  EXPECT_EQ(c.reg(24), 0x02);
  EXPECT_EQ(c.reg(25), 0x01);
  EXPECT_EQ(rec.cycles, 2u);

  Cpu d;
  d.load_program(assemble("SBIW r26, 1").program);
  d.set_reg(26, 0x00);
  d.set_reg(27, 0x01);
  d.step();
  EXPECT_EQ(d.reg(26), 0xFF);
  EXPECT_EQ(d.reg(27), 0x00);
}

TEST(Cpu, OneOperandAlu) {
  Cpu c = run_listing("LDI r16, 0x0F\nCOM r16");
  EXPECT_EQ(c.reg(16), 0xF0);
  EXPECT_TRUE(c.flag(kFlagC));  // COM always sets carry

  Cpu d = run_listing("LDI r16, 1\nNEG r16");
  EXPECT_EQ(d.reg(16), 0xFF);
  EXPECT_TRUE(d.flag(kFlagC));

  Cpu e = run_listing("LDI r16, 0x7F\nINC r16");
  EXPECT_EQ(e.reg(16), 0x80);
  EXPECT_TRUE(e.flag(kFlagV));

  Cpu f = run_listing("LDI r16, 0x80\nDEC r16");
  EXPECT_EQ(f.reg(16), 0x7F);
  EXPECT_TRUE(f.flag(kFlagV));

  Cpu g = run_listing("LDI r16, 0x81\nLSR r16");
  EXPECT_EQ(g.reg(16), 0x40);
  EXPECT_TRUE(g.flag(kFlagC));

  Cpu h = run_listing("SEC\nLDI r16, 0x02\nROR r16");
  EXPECT_EQ(h.reg(16), 0x81);
  EXPECT_FALSE(h.flag(kFlagC));

  Cpu i = run_listing("LDI r16, 0x82\nASR r16");
  EXPECT_EQ(i.reg(16), 0xC1);

  Cpu j = run_listing("LDI r16, 0xA5\nSWAP r16");
  EXPECT_EQ(j.reg(16), 0x5A);
}

TEST(Cpu, AliasesExecuteCanonically) {
  Cpu c = run_listing("LDI r16, 0x80\nTST r16");
  EXPECT_TRUE(c.flag(kFlagN));
  EXPECT_FALSE(c.flag(kFlagZ));
  Cpu d = run_listing("LDI r16, 0x55\nCLR r16");
  EXPECT_EQ(d.reg(16), 0);
  EXPECT_TRUE(d.flag(kFlagZ));
  Cpu e = run_listing("SER r17");
  EXPECT_EQ(e.reg(17), 0xFF);
  Cpu f = run_listing("LDI r16, 0x81\nLSL r16");
  EXPECT_EQ(f.reg(16), 0x02);
  EXPECT_TRUE(f.flag(kFlagC));
  Cpu g = run_listing("SEC\nLDI r16, 0x40\nROL r16");
  EXPECT_EQ(g.reg(16), 0x81);
}

TEST(Cpu, FlagSetClearShorthands) {
  Cpu c = run_listing("SEC\nSEZ\nSEH\nSET\nSEV\nSES\nSEN\nSEI");
  EXPECT_EQ(c.sreg(), 0xFF);
  Cpu d = run_listing("SEC\nSEZ\nCLC");
  EXPECT_FALSE(d.flag(kFlagC));
  EXPECT_TRUE(d.flag(kFlagZ));
}

TEST(Cpu, BranchTakenAndNotTaken) {
  // BREQ skips the LDI when Z is set.
  Cpu taken = run_listing("SEZ\nBREQ .+2\nLDI r16, 1\nLDI r17, 2");
  EXPECT_EQ(taken.reg(16), 0);
  EXPECT_EQ(taken.reg(17), 2);

  Cpu not_taken = run_listing("CLZ\nBREQ .+2\nLDI r16, 1\nLDI r17, 2");
  EXPECT_EQ(not_taken.reg(16), 1);
  EXPECT_EQ(not_taken.reg(17), 2);
}

TEST(Cpu, BranchCycleCounts) {
  Cpu c;
  c.load_program(assemble("SEZ\nBREQ .+0").program);
  c.step();
  const ExecRecord rec = c.step();
  EXPECT_TRUE(rec.branch_taken);
  EXPECT_EQ(rec.cycles, 2u);

  Cpu d;
  d.load_program(assemble("CLZ\nBREQ .+0").program);
  d.step();
  const ExecRecord rec2 = d.step();
  EXPECT_FALSE(rec2.branch_taken);
  EXPECT_EQ(rec2.cycles, 1u);
}

TEST(Cpu, RjmpAndJmp) {
  Cpu c = run_listing("RJMP .+2\nLDI r16, 1\nLDI r17, 2");
  EXPECT_EQ(c.reg(16), 0);
  EXPECT_EQ(c.reg(17), 2);

  // JMP to byte address 6 = word 3 (skipping the LDI after the 2-word JMP).
  Cpu d = run_listing("JMP 0x6\nLDI r16, 1\nLDI r17, 2");
  EXPECT_EQ(d.reg(16), 0);
  EXPECT_EQ(d.reg(17), 2);
}

TEST(Cpu, SkipInstructions) {
  Cpu c = run_listing("LDI r16, 5\nLDI r17, 5\nCPSE r16, r17\nLDI r18, 1\nLDI r19, 2");
  EXPECT_EQ(c.reg(18), 0);  // skipped
  EXPECT_EQ(c.reg(19), 2);

  Cpu d = run_listing("LDI r16, 1\nSBRC r16, 0\nLDI r18, 1\nLDI r19, 2");
  EXPECT_EQ(d.reg(18), 1);  // bit set, no skip
  Cpu e = run_listing("LDI r16, 0\nSBRC r16, 0\nLDI r18, 1\nLDI r19, 2");
  EXPECT_EQ(e.reg(18), 0);  // bit clear, skipped
}

TEST(Cpu, SkipOverTwoWordInstructionCostsTwo) {
  Cpu c;
  c.load_program(assemble("LDI r16, 5\nLDI r17, 5\nCPSE r16, r17\nJMP 0x0\nLDI r19, 2")
                     .program);
  c.run(3);
  const ExecRecord rec = c.step();  // wait: run(3) executed CPSE already
  // Re-run cleanly to inspect the CPSE record.
  Cpu d;
  d.load_program(assemble("LDI r16, 5\nLDI r17, 5\nCPSE r16, r17\nJMP 0x0\nLDI r19, 2")
                     .program);
  d.step();
  d.step();
  const ExecRecord cpse = d.step();
  EXPECT_TRUE(cpse.skip_taken);
  EXPECT_EQ(cpse.cycles, 3u);  // 1 + 2 skipped words
  (void)rec;
}

TEST(Cpu, SramLoadStoreRoundTrip) {
  Cpu c = run_listing("LDI r16, 0x5A\nSTS 0x200, r16\nLDS r17, 0x200");
  EXPECT_EQ(c.reg(17), 0x5A);
  EXPECT_EQ(c.read_data(0x200), 0x5A);
}

TEST(Cpu, PointerModesWithSideEffects) {
  Cpu c;
  c.load_program(
      assemble("ST X+, r0\nST X+, r1\nLD r2, -X\nLD r3, -X").program);
  c.set_reg(0, 0xAA);
  c.set_reg(1, 0xBB);
  c.set_x(0x300);
  c.run(4);
  EXPECT_EQ(c.read_data(0x300), 0xAA);
  EXPECT_EQ(c.read_data(0x301), 0xBB);
  EXPECT_EQ(c.reg(2), 0xBB);  // -X first hits 0x301
  EXPECT_EQ(c.reg(3), 0xAA);
  EXPECT_EQ(c.x(), 0x300);
}

TEST(Cpu, DisplacementModes) {
  Cpu c;
  c.load_program(assemble("STD Y+5, r4\nLDD r5, Y+5").program);
  c.set_reg(4, 0x77);
  c.set_y(0x400);
  c.run(2);
  EXPECT_EQ(c.reg(5), 0x77);
  EXPECT_EQ(c.y(), 0x400);  // displacement does not move the pointer
}

TEST(Cpu, LpmReadsFlashBytes) {
  // Program: LDI r30, 0; LDI r31, 0; LPM r4, Z  -- reads the low byte of the
  // first instruction word.
  Cpu c;
  const Program p = assemble("LDI r30, 0\nLDI r31, 0\nLPM r4, Z").program;
  c.load_program(p);
  const std::uint16_t first_word = c.flash()[0];
  c.run(3);
  EXPECT_EQ(c.reg(4), static_cast<std::uint8_t>(first_word & 0xFF));
}

TEST(Cpu, LpmZPlusIncrements) {
  Cpu c;
  c.load_program(assemble("LPM r4, Z+\nLPM r5, Z+").program);
  c.set_z(0);
  c.run(2);
  EXPECT_EQ(c.z(), 2);
  const std::uint16_t w0 = c.flash()[0];
  EXPECT_EQ(c.reg(4), static_cast<std::uint8_t>(w0 & 0xFF));
  EXPECT_EQ(c.reg(5), static_cast<std::uint8_t>(w0 >> 8));
}

TEST(Cpu, IoAndBitInstructions) {
  Cpu c = run_listing("SBI 5, 3");
  EXPECT_EQ(c.read_io(5), 0x08);
  Cpu d = run_listing("SBI 5, 3\nCBI 5, 3");
  EXPECT_EQ(d.read_io(5), 0x00);
  Cpu e = run_listing("LDI r16, 0xA5\nOUT 10, r16\nIN r17, 10");
  EXPECT_EQ(e.reg(17), 0xA5);
  Cpu f = run_listing("LDI r16, 0x10\nBST r16, 4\nBLD r17, 0");
  EXPECT_EQ(f.reg(17), 0x01);
}

TEST(Cpu, StackPushPopAndCalls) {
  Cpu c = run_listing("LDI r16, 0x42\nPUSH r16\nPOP r17");
  EXPECT_EQ(c.reg(17), 0x42);
  EXPECT_EQ(c.sp(), Cpu::kRamEnd);

  // RCALL forward, then RET back: r18 set after return, subroutine sets r19.
  Cpu d = run_listing(
      "RCALL .+4\n"   // call subroutine 2 words ahead
      "LDI r18, 1\n"
      "RJMP .+4\n"    // jump over subroutine to end
      "LDI r19, 2\n"  // subroutine body
      "RET\n"
      "LDI r20, 3");
  EXPECT_EQ(d.reg(19), 2);
  EXPECT_EQ(d.reg(18), 1);
  EXPECT_EQ(d.reg(20), 3);
}

TEST(Cpu, MulProducesWordResult) {
  Cpu c;
  c.load_program(assemble("MUL r16, r17").program);
  c.set_reg(16, 200);
  c.set_reg(17, 100);
  const ExecRecord rec = c.step();
  EXPECT_EQ(c.reg(0), (200 * 100) & 0xFF);
  EXPECT_EQ(c.reg(1), (200 * 100) >> 8);
  EXPECT_EQ(rec.cycles, 2u);
  EXPECT_FALSE(c.flag(kFlagZ));
}

TEST(Cpu, HaltsAtProgramEndAndThrowsBeyond) {
  Cpu c;
  c.load_program(assemble("NOP\nNOP").program);
  c.run(10);
  EXPECT_TRUE(c.halted());
  EXPECT_THROW(c.step(), std::runtime_error);
}

TEST(Cpu, CycleCountAccumulates) {
  Cpu c;
  c.load_program(assemble("NOP\nADIW r24, 1\nRJMP .+0").program);
  c.run(3);
  EXPECT_EQ(c.cycle_count(), 1u + 2u + 2u);
}

TEST(Cpu, ExecRecordMemoryBookkeeping) {
  Cpu c;
  c.load_program(assemble("LDI r16, 0x5A\nSTS 0x234, r16").program);
  c.step();
  const ExecRecord rec = c.step();
  EXPECT_TRUE(rec.mem_write);
  EXPECT_FALSE(rec.mem_read);
  EXPECT_EQ(rec.mem_addr, 0x234);
  EXPECT_EQ(rec.mem_value, 0x5A);
  EXPECT_EQ(rec.second_word, 0x234);
}

TEST(Cpu, PowerOnResetClearsState) {
  Cpu c = run_listing("LDI r16, 7\nSTS 0x200, r16");
  c.power_on_reset();
  EXPECT_EQ(c.reg(16), 0);
  EXPECT_EQ(c.read_data(0x200), 0);
  EXPECT_EQ(c.sreg(), 0);
  EXPECT_EQ(c.pc(), 0);
}

TEST(Cpu, ProgramTooLargeRejected) {
  std::vector<std::uint16_t> words(Cpu::kMaxFlashWords + 1, 0);
  Cpu c;
  EXPECT_THROW(c.load_program(words), std::invalid_argument);
}

}  // namespace
}  // namespace sidis::avr

// Statistical battery for the structured inter-device variation model
// (Sec. 5.6 / Table 4): per-opcode process corners, campaign-long thermal
// drift, and the board's decoupling-capacitance pole.  These are the knobs
// the cross-device transfer bench turns, so their distributions and
// determinism guarantees are pinned here.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <set>
#include <vector>

#include "sim/acq_config.hpp"
#include "sim/em_model.hpp"
#include "sim/environment.hpp"
#include "sim/oscilloscope.hpp"

namespace sidis::sim {
namespace {

constexpr double kPi = 3.14159265358979323846;

double rms(const std::vector<double>& x, std::size_t skip) {
  double acc = 0.0;
  for (std::size_t i = skip; i < x.size(); ++i) acc += x[i] * x[i];
  return std::sqrt(acc / static_cast<double>(x.size() - skip));
}

std::vector<double> tone(double freq, std::size_t n) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0 * kPi * freq * static_cast<double>(i));
  }
  return x;
}

/// Scope with every stochastic/shaping stage off: captures reduce to the
/// environment chain, isolating the device's decoupling pole.
ScopeConfig transparent_scope() {
  ScopeConfig cfg;
  cfg.enable_noise = false;
  cfg.enable_quantization = false;
  cfg.enable_bandwidth = false;
  cfg.trigger_jitter = 0;
  return cfg;
}

TEST(DeviceModel, SameSeedIsBitIdentical) {
  for (int id = 0; id <= 6; ++id) {
    const DeviceModel a = DeviceModel::make(id, 0xABCDEF);
    const DeviceModel b = DeviceModel::make(id, 0xABCDEF);
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.signature_seed, b.signature_seed);
    EXPECT_EQ(a.gain, b.gain);
    EXPECT_EQ(a.offset, b.offset);
    EXPECT_EQ(a.noise_factor, b.noise_factor);
    EXPECT_EQ(a.signature_spread, b.signature_spread);
    EXPECT_EQ(a.corner_seed, b.corner_seed);
    EXPECT_EQ(a.opcode_gain_spread, b.opcode_gain_spread);
    EXPECT_EQ(a.opcode_offset_spread, b.opcode_offset_spread);
    EXPECT_EQ(a.thermal_drift, b.thermal_drift);
    EXPECT_EQ(a.decoupling_cutoff, b.decoupling_cutoff);
  }
}

TEST(DeviceModel, DeviceZeroIsNominalByDefinition) {
  const DeviceModel d = DeviceModel::make(0);
  EXPECT_EQ(d.gain, 1.0);
  EXPECT_EQ(d.offset, 0.0);
  EXPECT_EQ(d.opcode_gain_spread, 0.0);
  EXPECT_EQ(d.opcode_offset_spread, 0.0);
  EXPECT_EQ(d.thermal_drift, 0.0);
  EXPECT_EQ(d.decoupling_cutoff, 0.0);
  // The structured stages degenerate to identity on the profiling device.
  EXPECT_EQ(d.opcode_gain(0x1234), 1.0);
  EXPECT_EQ(d.opcode_offset(0x1234), 0.0);
  EXPECT_EQ(d.thermal_gain(0.5), 1.0);
}

TEST(DeviceModel, DistinctIdsAreMeasurablyDistinct) {
  const std::uint64_t seed = 0x5eed;
  for (int a = 1; a <= 5; ++a) {
    for (int b = a + 1; b <= 6; ++b) {
      const DeviceModel da = DeviceModel::make(a, seed);
      const DeviceModel db = DeviceModel::make(b, seed);
      EXPECT_NE(da.corner_seed, db.corner_seed) << a << " vs " << b;
      EXPECT_NE(da.signature_seed, db.signature_seed);
      EXPECT_NE(da.gain, db.gain);
      // Same opcode, different device: the corner is device-conditional.
      EXPECT_NE(da.opcode_gain(0x0C01), db.opcode_gain(0x0C01));
    }
  }
}

TEST(DeviceModel, CornerDrawsStayInsideTheConfiguredSupport) {
  DeviceModel d;
  d.corner_seed = 0xC0FFEE;
  d.opcode_gain_spread = 0.08;
  d.opcode_offset_spread = 0.01;
  for (std::uint64_t key = 0; key < 4096; ++key) {
    const double g = d.opcode_gain(key);
    EXPECT_GE(g, 1.0 - d.opcode_gain_spread);
    EXPECT_LT(g, 1.0 + d.opcode_gain_spread);
    const double o = d.opcode_offset(key);
    EXPECT_GE(o, -d.opcode_offset_spread);
    EXPECT_LT(o, d.opcode_offset_spread);
  }
}

TEST(DeviceModel, CornerMomentsMatchTheConfiguredSpread) {
  // Draws are uniform on [c - s, c + s), so the population moments are
  // mean = c and variance = s^2 / 3.  With N = 4096 keys the standard error
  // of the sample mean is s / sqrt(3 N); we allow 5 sigma.
  DeviceModel d;
  d.corner_seed = 0xDECADE;
  d.opcode_gain_spread = 0.08;
  d.opcode_offset_spread = 0.01;
  constexpr std::size_t kKeys = 4096;
  double gain_sum = 0.0, gain_sq = 0.0, off_sum = 0.0, off_sq = 0.0;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const double g = d.opcode_gain(key) - 1.0;
    gain_sum += g;
    gain_sq += g * g;
    const double o = d.opcode_offset(key);
    off_sum += o;
    off_sq += o * o;
  }
  const double n = static_cast<double>(kKeys);
  const double gain_tol = 5.0 * d.opcode_gain_spread / std::sqrt(3.0 * n);
  EXPECT_NEAR(gain_sum / n, 0.0, gain_tol);
  const double off_tol = 5.0 * d.opcode_offset_spread / std::sqrt(3.0 * n);
  EXPECT_NEAR(off_sum / n, 0.0, off_tol);
  // Sample variance vs s^2/3 within a 10% band (chi-square spread at this N
  // is ~2%, so the band has generous headroom without masking a wrong law).
  const double gain_var = gain_sq / n - (gain_sum / n) * (gain_sum / n);
  EXPECT_NEAR(gain_var, d.opcode_gain_spread * d.opcode_gain_spread / 3.0,
              0.1 * d.opcode_gain_spread * d.opcode_gain_spread / 3.0);
  const double off_var = off_sq / n - (off_sum / n) * (off_sum / n);
  EXPECT_NEAR(off_var, d.opcode_offset_spread * d.opcode_offset_spread / 3.0,
              0.1 * d.opcode_offset_spread * d.opcode_offset_spread / 3.0);
}

TEST(DeviceModel, CornersAreOpcodeConditional) {
  // A *global* gain would be cancelled by per-trace normalization; the whole
  // point of the corner model is that different opcodes draw different
  // scalings on the same device.
  DeviceModel d;
  d.corner_seed = 0xFACADE;
  d.opcode_gain_spread = 0.05;
  double lo = 2.0, hi = 0.0;
  for (std::uint64_t key = 0; key < 64; ++key) {
    lo = std::min(lo, d.opcode_gain(key));
    hi = std::max(hi, d.opcode_gain(key));
  }
  EXPECT_GT(hi - lo, 0.02) << "corner draws are suspiciously concentrated";
}

TEST(DeviceModel, ThermalGainIsAnchoredAtBothCampaignEnds) {
  DeviceModel d;
  d.thermal_drift = 0.03;
  EXPECT_DOUBLE_EQ(d.thermal_gain(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.thermal_gain(1.0), 1.0 + d.thermal_drift);
  // Progress clamps to the campaign.
  EXPECT_DOUBLE_EQ(d.thermal_gain(-0.5), d.thermal_gain(0.0));
  EXPECT_DOUBLE_EQ(d.thermal_gain(1.5), d.thermal_gain(1.0));
}

TEST(DeviceModel, ThermalGainIsMonotoneForEitherDriftSign) {
  for (const double drift : {0.03, -0.02}) {
    DeviceModel d;
    d.thermal_drift = drift;
    double prev = d.thermal_gain(0.0);
    for (int i = 1; i <= 100; ++i) {
      const double g = d.thermal_gain(static_cast<double>(i) / 100.0);
      if (drift > 0.0) {
        EXPECT_GT(g, prev) << "warm-up trend not increasing at step " << i;
      } else {
        EXPECT_LT(g, prev) << "cool-down trend not decreasing at step " << i;
      }
      prev = g;
    }
  }
}

TEST(Environment, TotalGainFollowsTheThermalTrend) {
  Environment env;
  env.device.thermal_drift = 0.04;
  env.campaign_progress = 0.0;
  const double start = env.total_gain();
  env.campaign_progress = 1.0;
  EXPECT_DOUBLE_EQ(env.total_gain(), start * (1.0 + env.device.thermal_drift));
}

TEST(Oscilloscope, DecouplingPoleAttenuatesAHighFrequencyProbeTone) {
  const Oscilloscope scope{transparent_scope()};
  std::mt19937_64 rng{7};
  Environment nominal;  // device 0: no decoupling stage
  Environment filtered;
  filtered.device.decoupling_cutoff = 0.12;

  // High-frequency probe tone, well above the pole: strongly attenuated.
  const std::vector<double> hi = tone(0.35, 512);
  const std::vector<double> hi_nom = scope.capture(hi, nominal, rng, false);
  const std::vector<double> hi_fil = scope.capture(hi, filtered, rng, false);
  // Skip the filter warm-up transient when comparing steady-state power.
  EXPECT_LT(rms(hi_fil, 64), 0.6 * rms(hi_nom, 64))
      << "pole at 0.12 barely touched a 0.35 tone";

  // Low-frequency tone, well below the pole: essentially preserved.
  const std::vector<double> lo = tone(0.01, 512);
  const std::vector<double> lo_nom = scope.capture(lo, nominal, rng, false);
  const std::vector<double> lo_fil = scope.capture(lo, filtered, rng, false);
  EXPECT_GT(rms(lo_fil, 64), 0.85 * rms(lo_nom, 64))
      << "pole distorts the passband";
}

TEST(Oscilloscope, LowerCutoffAttenuatesMore) {
  const Oscilloscope scope{transparent_scope()};
  std::mt19937_64 rng{8};
  const std::vector<double> probe = tone(0.3, 512);
  Environment soft, hard;
  soft.device.decoupling_cutoff = 0.22;
  hard.device.decoupling_cutoff = 0.09;
  const double soft_rms = rms(scope.capture(probe, soft, rng, false), 64);
  const double hard_rms = rms(scope.capture(probe, hard, rng, false), 64);
  EXPECT_LT(hard_rms, soft_rms);
}

TEST(Oscilloscope, CaptureIsBitIdenticalForTheSameSeed) {
  Oscilloscope scope;  // full chain: jitter, noise, quantization
  Environment env;
  env.device = DeviceModel::make(2);
  env.session = SessionContext::make(1);
  std::mt19937_64 rng_a{42}, rng_b{42};
  const std::vector<double> ideal = tone(0.05, 315);
  const std::vector<double> a = scope.capture(ideal, env, rng_a);
  const std::vector<double> b = scope.capture(ideal, env, rng_b);
  EXPECT_EQ(a, b);
}

// -- EM probe coupling field (sim/em_model.hpp) ------------------------------

std::vector<std::uint64_t> probe_okeys() {
  // Opcode signature keys as the power model forms them (mnemonic << 8 |
  // mode); a spread of arithmetic/logic/transfer opcodes.
  std::vector<std::uint64_t> keys;
  for (std::uint64_t m : {3u, 7u, 11u, 19u, 23u, 29u, 31u, 37u, 41u, 47u, 53u, 59u}) {
    keys.push_back((m << 8) | 1u);
  }
  return keys;
}

TEST(EmProbeModel, CouplingIsDeterministicAndOpcodeConditional) {
  EmProbeConfig cfg;
  const auto keys = probe_okeys();
  double lo = 1e9, hi = -1e9;
  for (const std::uint64_t k : keys) {
    const double w = em_opcode_coupling(cfg, k, 0.0);
    EXPECT_EQ(w, em_opcode_coupling(cfg, k, 0.0));  // deterministic
    EXPECT_GE(w, cfg.coupling_lo);
    EXPECT_LE(w, cfg.coupling_hi);
    lo = std::min(lo, w);
    hi = std::max(hi, w);
  }
  EXPECT_GT(hi - lo, 0.1) << "coupling field must be opcode-conditional";
}

TEST(EmProbeModel, SpatialWeightSupportDiffersFromThePowerCorners) {
  // The EM coupling field and the power model's per-opcode process corners
  // live in different seed universes: their per-opcode signatures must not
  // share rank order (a shared ordering would make EM a rescaled power
  // channel and fusion pointless).
  EmProbeConfig cfg;
  DeviceModel device = DeviceModel::make(3);
  device.opcode_gain_spread = 0.2;  // arm the corner draws
  const auto keys = probe_okeys();
  std::size_t inversions = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    for (std::size_t j = i + 1; j < keys.size(); ++j) {
      const bool em_up = em_opcode_coupling(cfg, keys[i], 0.0) <
                         em_opcode_coupling(cfg, keys[j], 0.0);
      const bool pw_up = device.opcode_gain(keys[i]) < device.opcode_gain(keys[j]);
      if (em_up != pw_up) ++inversions;
    }
  }
  EXPECT_GT(inversions, 0u);

  // And two probe positions (seeds) disagree with each other the same way.
  EmProbeConfig moved = cfg;
  moved.probe_seed = 0xBADC0FFEull;
  bool differs = false;
  for (const std::uint64_t k : keys) {
    differs |= em_opcode_coupling(cfg, k, 0.0) != em_opcode_coupling(moved, k, 0.0);
  }
  EXPECT_TRUE(differs);
}

TEST(EmProbeModel, MisalignmentAttenuatesAndIsMonotone) {
  EmProbeConfig cfg;
  cfg.misalignment_drift = 1.5;
  // The realized misalignment ramps monotonically over the campaign...
  EXPECT_EQ(em_misalignment_at(cfg, 0.0), 0.0);
  EXPECT_LT(em_misalignment_at(cfg, 0.25), em_misalignment_at(cfg, 0.75));
  EXPECT_EQ(em_misalignment_at(cfg, 1.0), 1.5);
  // ... attenuation is strictly decreasing in misalignment ...
  EXPECT_GT(em_attenuation(0.0), em_attenuation(0.5));
  EXPECT_GT(em_attenuation(0.5), em_attenuation(2.0));
  // ... and the mean coupling over opcodes shrinks with it (individual
  // weights may wander as the field slides toward the displaced one).
  const auto mean_coupling = [&cfg](double m) {
    double acc = 0.0;
    const auto keys = probe_okeys();
    for (const std::uint64_t k : keys) acc += em_opcode_coupling(cfg, k, m);
    return acc / static_cast<double>(keys.size());
  };
  EXPECT_GT(mean_coupling(0.0), mean_coupling(0.8));
  EXPECT_GT(mean_coupling(0.8), mean_coupling(2.0));
}

TEST(EmProbeModel, ProbeBandwidthPoleAttenuatesHighFrequencies) {
  EmProbeConfig wide, narrow;
  wide.bandwidth_fraction = 0.3;
  narrow.bandwidth_fraction = 0.06;
  ScopeConfig wide_cfg = em_scope_config(wide);
  ScopeConfig narrow_cfg = em_scope_config(narrow);
  // Isolate the pole: freeze every stochastic stage.
  for (ScopeConfig* c : {&wide_cfg, &narrow_cfg}) {
    c->enable_noise = false;
    c->enable_quantization = false;
    c->trigger_jitter = 0;
  }
  std::mt19937_64 rng{4};
  const std::vector<double> probe = tone(0.35, 512);
  const Environment env;
  const double wide_rms =
      rms(Oscilloscope{wide_cfg}.capture(probe, env, rng, false), 64);
  const double narrow_rms =
      rms(Oscilloscope{narrow_cfg}.capture(probe, env, rng, false), 64);
  EXPECT_LT(narrow_rms, 0.8 * wide_rms);
}

// ---------------------------------------------------------------------------
// Statistical footprints of the acquisition-configuration knobs: a reduced
// ADC must leave its wider quantization grid in the samples, and a narrower
// analog front-end must leave its spectral rolloff -- so a mislabeled corpus
// cannot masquerade as another configuration.
// ---------------------------------------------------------------------------

TEST(AcquisitionFootprint, ReducedResolutionWidensTheQuantizationGrid) {
  ScopeConfig base = transparent_scope();
  base.enable_quantization = true;
  const ScopeConfig full = AcquisitionConfig::nominal().applied(base);
  const ScopeConfig coarse = AcquisitionConfig::low_resolution(6).applied(base);
  // A ramp spanning the full-scale range exercises every code.
  std::vector<double> ramp(2048);
  for (std::size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = base.range_lo +
              (base.range_hi - base.range_lo) * static_cast<double>(i) /
                  static_cast<double>(ramp.size() - 1);
  }
  std::mt19937_64 rng{5};
  const Environment env;
  const auto codes = [&](const ScopeConfig& cfg) {
    const std::vector<double> out = Oscilloscope{cfg}.capture(ramp, env, rng, false);
    const double step =
        (cfg.range_hi - cfg.range_lo) / static_cast<double>((1u << cfg.adc_bits) - 1u);
    std::set<long long> distinct;
    for (const double v : out) {
      const double k = (v - cfg.range_lo) / step;
      EXPECT_NEAR(k, std::round(k), 1e-9) << "sample off the " << cfg.adc_bits
                                          << "-bit grid";
      distinct.insert(static_cast<long long>(std::llround(k)));
    }
    return distinct.size();
  };
  const std::size_t full_codes = codes(full);
  const std::size_t coarse_codes = codes(coarse);
  EXPECT_LE(coarse_codes, 64u);
  EXPECT_GT(full_codes, 3u * coarse_codes);
}

TEST(AcquisitionFootprint, NarrowbandConfigRollsOffTheSignatureBand) {
  ScopeConfig base = transparent_scope();
  base.enable_bandwidth = true;
  const ScopeConfig nominal = AcquisitionConfig::nominal().applied(base);
  const ScopeConfig narrow = AcquisitionConfig::narrowband(0.3).applied(base);
  std::mt19937_64 rng{6};
  const Environment env;
  // A tone above the narrowband pole (0.03) but near the nominal one (0.1).
  const std::vector<double> probe = tone(0.12, 512);
  const double nominal_rms = rms(Oscilloscope{nominal}.capture(probe, env, rng, false), 64);
  const double narrow_rms = rms(Oscilloscope{narrow}.capture(probe, env, rng, false), 64);
  EXPECT_LT(narrow_rms, 0.55 * nominal_rms);
  // The passband survives both front-ends.
  const std::vector<double> lo = tone(0.005, 512);
  const double lo_nominal = rms(Oscilloscope{nominal}.capture(lo, env, rng, false), 64);
  const double lo_narrow = rms(Oscilloscope{narrow}.capture(lo, env, rng, false), 64);
  EXPECT_GT(lo_narrow, 0.8 * lo_nominal);
}

}  // namespace
}  // namespace sidis::sim

// Tests for the bigram prior and Viterbi sequence smoothing extension.
#include <gtest/gtest.h>

#include <cmath>

#include "avr/assembler.hpp"
#include "core/sequence.hpp"

namespace sidis::core {
namespace {

TEST(BigramPrior, LaplaceSmoothingGivesUniformStart) {
  const BigramPrior prior(4);
  // No observations: every transition equally likely.
  EXPECT_NEAR(prior.log_prob(0, 1), std::log(0.25), 1e-12);
  EXPECT_NEAR(prior.log_prob(2, 2), std::log(0.25), 1e-12);
}

TEST(BigramPrior, ObservationsShiftTheDistribution) {
  BigramPrior prior(3);
  for (int i = 0; i < 10; ++i) prior.add_transition(0, 1);
  EXPECT_GT(prior.log_prob(0, 1), prior.log_prob(0, 2));
  // Other rows untouched.
  EXPECT_NEAR(prior.log_prob(1, 0), std::log(1.0 / 3.0), 1e-12);
}

TEST(BigramPrior, AddProgramCountsProfiledTransitions) {
  BigramPrior prior(avr::num_instruction_classes());
  const avr::Program p = avr::assemble("LDI r16, 1\nADD r0, r16\nADD r0, r16").program;
  prior.add_program(p);
  const std::size_t ldi = *avr::class_index(avr::Mnemonic::kLdi);
  const std::size_t add = *avr::class_index(avr::Mnemonic::kAdd);
  EXPECT_GT(prior.log_prob(ldi, add), prior.log_prob(ldi, ldi));
  EXPECT_GT(prior.log_prob(add, add), prior.log_prob(add, ldi));
}

TEST(BigramPrior, UnprofiledInstructionsBreakTheChain) {
  BigramPrior prior(avr::num_instruction_classes());
  // LDI -> NOP -> ADD: the NOP is unprofiled, so no LDI->ADD transition.
  const avr::Program p = avr::assemble("LDI r16, 1\nNOP\nADD r0, r16").program;
  prior.add_program(p);
  const std::size_t ldi = *avr::class_index(avr::Mnemonic::kLdi);
  const std::size_t add = *avr::class_index(avr::Mnemonic::kAdd);
  EXPECT_NEAR(prior.log_prob(ldi, add),
              std::log(1.0 / static_cast<double>(avr::num_instruction_classes())), 1e-9);
}

TEST(BigramPrior, InvalidConstruction) {
  EXPECT_THROW(BigramPrior(0), std::invalid_argument);
  EXPECT_THROW(BigramPrior(3, 0.0), std::invalid_argument);
}

TEST(Viterbi, ZeroWeightReducesToArgmax) {
  // 3 windows, 2 classes.
  linalg::Matrix em{{-1.0, -2.0}, {-3.0, -0.5}, {-0.2, -4.0}};
  BigramPrior prior(2);
  const auto path = viterbi_decode(em, prior, 0.0);
  EXPECT_EQ(path, (std::vector<std::size_t>{0, 1, 0}));
}

TEST(Viterbi, PriorRepairsIsolatedError) {
  // The true sequence is 0,0,0 but the middle window's emission slightly
  // prefers class 1.  A prior that has only ever seen 0->0 fixes it.
  linalg::Matrix em{{-0.1, -3.0}, {-1.2, -1.0}, {-0.1, -3.0}};
  BigramPrior prior(2, 0.1);
  for (int i = 0; i < 50; ++i) prior.add_transition(0, 0);
  const auto smoothed = viterbi_decode(em, prior, 1.0);
  EXPECT_EQ(smoothed, (std::vector<std::size_t>{0, 0, 0}));
  // Without the prior the error stays.
  const auto raw = viterbi_decode(em, prior, 0.0);
  EXPECT_EQ(raw[1], 1u);
}

TEST(Viterbi, StrongEmissionsOverrideThePrior) {
  linalg::Matrix em{{-0.1, -30.0}, {-30.0, -0.1}};
  BigramPrior prior(2, 0.1);
  for (int i = 0; i < 100; ++i) prior.add_transition(0, 0);
  const auto path = viterbi_decode(em, prior, 1.0);
  EXPECT_EQ(path, (std::vector<std::size_t>{0, 1}));
}

TEST(Viterbi, EmptyAndMismatchedInputs) {
  const BigramPrior prior(3);
  EXPECT_TRUE(viterbi_decode(linalg::Matrix{}, prior).empty());
  linalg::Matrix wrong(2, 2, 0.0);
  EXPECT_THROW(viterbi_decode(wrong, prior), std::invalid_argument);
}

}  // namespace
}  // namespace sidis::core

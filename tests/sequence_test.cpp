// Tests for the bigram prior and Viterbi sequence smoothing extension, the
// ISA-derived transition prior, and the streaming sequence-decoding battery:
// Viterbi vs brute force, bounded-lag vs offline, and bit-identical smoothed
// verdicts across worker and shard counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <random>

#include "avr/assembler.hpp"
#include "avr/grouping.hpp"
#include "core/csa.hpp"
#include "core/hierarchical.hpp"
#include "core/profiler.hpp"
#include "core/sequence.hpp"
#include "runtime/decoder.hpp"
#include "runtime/fleet.hpp"
#include "runtime/streaming.hpp"
#include "sim/acquisition.hpp"

namespace sidis::core {
namespace {

TEST(BigramPrior, LaplaceSmoothingGivesUniformStart) {
  const BigramPrior prior(4);
  // No observations: every transition equally likely.
  EXPECT_NEAR(prior.log_prob(0, 1), std::log(0.25), 1e-12);
  EXPECT_NEAR(prior.log_prob(2, 2), std::log(0.25), 1e-12);
}

TEST(BigramPrior, ObservationsShiftTheDistribution) {
  BigramPrior prior(3);
  for (int i = 0; i < 10; ++i) prior.add_transition(0, 1);
  EXPECT_GT(prior.log_prob(0, 1), prior.log_prob(0, 2));
  // Other rows untouched.
  EXPECT_NEAR(prior.log_prob(1, 0), std::log(1.0 / 3.0), 1e-12);
}

TEST(BigramPrior, AddProgramCountsProfiledTransitions) {
  BigramPrior prior(avr::num_instruction_classes());
  const avr::Program p = avr::assemble("LDI r16, 1\nADD r0, r16\nADD r0, r16").program;
  prior.add_program(p);
  const std::size_t ldi = *avr::class_index(avr::Mnemonic::kLdi);
  const std::size_t add = *avr::class_index(avr::Mnemonic::kAdd);
  EXPECT_GT(prior.log_prob(ldi, add), prior.log_prob(ldi, ldi));
  EXPECT_GT(prior.log_prob(add, add), prior.log_prob(add, ldi));
}

TEST(BigramPrior, UnprofiledInstructionsBreakTheChain) {
  BigramPrior prior(avr::num_instruction_classes());
  // LDI -> NOP -> ADD: the NOP is unprofiled, so no LDI->ADD transition.
  const avr::Program p = avr::assemble("LDI r16, 1\nNOP\nADD r0, r16").program;
  prior.add_program(p);
  const std::size_t ldi = *avr::class_index(avr::Mnemonic::kLdi);
  const std::size_t add = *avr::class_index(avr::Mnemonic::kAdd);
  EXPECT_NEAR(prior.log_prob(ldi, add),
              std::log(1.0 / static_cast<double>(avr::num_instruction_classes())), 1e-9);
}

TEST(BigramPrior, InvalidConstruction) {
  EXPECT_THROW(BigramPrior(0), std::invalid_argument);
  EXPECT_THROW(BigramPrior(3, 0.0), std::invalid_argument);
}

TEST(Viterbi, ZeroWeightReducesToArgmax) {
  // 3 windows, 2 classes.
  linalg::Matrix em{{-1.0, -2.0}, {-3.0, -0.5}, {-0.2, -4.0}};
  BigramPrior prior(2);
  const auto path = viterbi_decode(em, prior, 0.0);
  EXPECT_EQ(path, (std::vector<std::size_t>{0, 1, 0}));
}

TEST(Viterbi, PriorRepairsIsolatedError) {
  // The true sequence is 0,0,0 but the middle window's emission slightly
  // prefers class 1.  A prior that has only ever seen 0->0 fixes it.
  linalg::Matrix em{{-0.1, -3.0}, {-1.2, -1.0}, {-0.1, -3.0}};
  BigramPrior prior(2, 0.1);
  for (int i = 0; i < 50; ++i) prior.add_transition(0, 0);
  const auto smoothed = viterbi_decode(em, prior, 1.0);
  EXPECT_EQ(smoothed, (std::vector<std::size_t>{0, 0, 0}));
  // Without the prior the error stays.
  const auto raw = viterbi_decode(em, prior, 0.0);
  EXPECT_EQ(raw[1], 1u);
}

TEST(Viterbi, StrongEmissionsOverrideThePrior) {
  linalg::Matrix em{{-0.1, -30.0}, {-30.0, -0.1}};
  BigramPrior prior(2, 0.1);
  for (int i = 0; i < 100; ++i) prior.add_transition(0, 0);
  const auto path = viterbi_decode(em, prior, 1.0);
  EXPECT_EQ(path, (std::vector<std::size_t>{0, 1}));
}

TEST(Viterbi, EmptyAndMismatchedInputs) {
  const BigramPrior prior(3);
  EXPECT_TRUE(viterbi_decode(linalg::Matrix{}, prior).empty());
  linalg::Matrix wrong(2, 2, 0.0);
  EXPECT_THROW(viterbi_decode(wrong, prior), std::invalid_argument);
}

// -- decode equivalence: dynamic programming vs exhaustive search ------------

double path_score(const linalg::Matrix& emissions, const TransitionPrior& prior,
                  const std::vector<std::size_t>& path) {
  double score = 0.0;
  for (std::size_t t = 0; t < path.size(); ++t) {
    score += emissions(t, path[t]);
    if (t > 0) score += prior.log_prob(path[t - 1], path[t]);
  }
  return score;
}

TEST(DecodeEquivalence, ViterbiMatchesBruteForceEnumeration) {
  // Continuous random emissions make ties measure-zero, so the optimum is
  // unique and the paths must agree exactly, trial after trial.
  std::mt19937_64 rng{20260806};
  std::uniform_real_distribution<double> em(-6.0, 0.0);
  std::uniform_int_distribution<int> cnt(0, 6);
  for (int trial = 0; trial < 48; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(trial) % 4;          // 2..5
    const std::size_t len = 2 + (static_cast<std::size_t>(trial) / 4) % 5;  // 2..6
    linalg::Matrix emissions(len, n);
    for (std::size_t t = 0; t < len; ++t) {
      for (std::size_t c = 0; c < n; ++c) emissions(t, c) = em(rng);
    }
    BigramPrior prior(n, 0.5);
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        const int reps = cnt(rng);
        for (int k = 0; k < reps; ++k) prior.add_transition(a, b);
      }
    }

    const std::vector<std::size_t> fast = viterbi_decode(emissions, prior, 1.0);

    std::vector<std::size_t> best;
    double best_score = -std::numeric_limits<double>::infinity();
    std::size_t total = 1;
    for (std::size_t t = 0; t < len; ++t) total *= n;
    for (std::size_t code = 0; code < total; ++code) {
      std::size_t x = code;
      std::vector<std::size_t> path(len);
      for (std::size_t t = 0; t < len; ++t) {
        path[t] = x % n;
        x /= n;
      }
      const double score = path_score(emissions, prior, path);
      if (score > best_score) {
        best_score = score;
        best = path;
      }
    }
    EXPECT_EQ(fast, best) << "trial " << trial;
    EXPECT_NEAR(path_score(emissions, prior, fast), best_score, 1e-9);
  }
}

// -- IsaPrior properties -----------------------------------------------------

TEST(IsaPriorProps, RowsAreProperDistributions) {
  const std::size_t n = avr::num_instruction_classes();
  BigramPrior evidence(n);
  const avr::Program p =
      avr::assemble("LDI r16, 1\nADD r0, r16\nADC r1, r16\nCP r0, r16").program;
  evidence.add_program(p);
  const IsaPrior structural;
  const IsaPrior blended(evidence);
  for (const IsaPrior* prior : {&structural, &blended}) {
    for (std::size_t from = 0; from < n; ++from) {
      double sum = 0.0;
      for (std::size_t to = 0; to < n; ++to) {
        const double lp = prior->log_prob(from, to);
        ASSERT_TRUE(std::isfinite(lp)) << from << "->" << to;
        sum += std::exp(lp);
      }
      EXPECT_NEAR(sum, 1.0, 1e-9) << "row " << from;
    }
  }
  // BigramPrior rows are proper too (the TransitionPrior contract).
  BigramPrior bare(5);
  bare.add_transition(0, 1);
  for (std::size_t from = 0; from < 5; ++from) {
    double sum = 0.0;
    for (std::size_t to = 0; to < 5; ++to) sum += std::exp(bare.log_prob(from, to));
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(IsaPriorProps, PureIsaTierOrdersPlausibleAboveImplausible) {
  // The global strict ordering is an ISA-tier property; silence the evidence
  // and group tiers so it is testable across every row at once.
  IsaPriorConfig cfg;
  cfg.observed_weight = 0.0;
  cfg.group_weight = 0.0;
  cfg.isa_weight = 1.0;
  const IsaPrior prior(cfg);
  const std::size_t n = prior.num_classes();
  for (std::size_t from = 0; from < n; ++from) {
    double min_plausible = std::numeric_limits<double>::infinity();
    double max_implausible = -std::numeric_limits<double>::infinity();
    bool any_plausible = false, any_implausible = false;
    for (std::size_t to = 0; to < n; ++to) {
      const double lp = prior.log_prob(from, to);
      if (prior.structurally_plausible(from, to)) {
        any_plausible = true;
        min_plausible = std::min(min_plausible, lp);
      } else {
        any_implausible = true;
        max_implausible = std::max(max_implausible, lp);
      }
    }
    ASSERT_TRUE(any_plausible) << "row " << from << " has no plausible successor";
    if (any_implausible) {
      EXPECT_GT(min_plausible, max_implausible) << "row " << from;
    }
  }
}

TEST(IsaPriorProps, StructuralJudgmentsMatchTheIsa) {
  const IsaPrior prior;
  const auto cls = [](avr::Mnemonic m) { return *avr::class_index(m); };
  // Carry cascade: ADD writes C, so ADC may follow; AND never writes C.
  EXPECT_TRUE(prior.structurally_plausible(cls(avr::Mnemonic::kAdd),
                                           cls(avr::Mnemonic::kAdc)));
  EXPECT_FALSE(prior.structurally_plausible(cls(avr::Mnemonic::kAnd),
                                            cls(avr::Mnemonic::kAdc)));
  // Branches need a predecessor writing the flag they read: CP writes Z for
  // BREQ; LDI writes no flags at all.
  EXPECT_TRUE(prior.structurally_plausible(cls(avr::Mnemonic::kCp),
                                           cls(avr::Mnemonic::kBreq)));
  EXPECT_FALSE(prior.structurally_plausible(cls(avr::Mnemonic::kLdi),
                                            cls(avr::Mnemonic::kBreq)));
  // BST writes T, BRTS reads it.
  EXPECT_TRUE(prior.structurally_plausible(cls(avr::Mnemonic::kBst),
                                           cls(avr::Mnemonic::kBrts)));
  // Control flow imposes nothing on its successor (the next window may be
  // any branch target) -- even a carry consumer is fine after RJMP.
  EXPECT_TRUE(prior.structurally_plausible(cls(avr::Mnemonic::kRjmp),
                                           cls(avr::Mnemonic::kAdc)));
  EXPECT_TRUE(prior.structurally_plausible(cls(avr::Mnemonic::kSbrc),
                                           cls(avr::Mnemonic::kBreq)));
  // SEC explicitly sets carry.
  EXPECT_TRUE(prior.structurally_plausible(cls(avr::Mnemonic::kSec),
                                           cls(avr::Mnemonic::kAdc)));
}

TEST(IsaPriorProps, EvidenceBoostsObservedTransitions) {
  const auto add = *avr::class_index(avr::Mnemonic::kAdd);
  const auto adc = *avr::class_index(avr::Mnemonic::kAdc);
  BigramPrior evidence(avr::num_instruction_classes());
  for (int i = 0; i < 50; ++i) evidence.add_transition(add, adc);
  const IsaPrior structural;
  const IsaPrior blended(evidence);
  EXPECT_GT(blended.log_prob(add, adc), structural.log_prob(add, adc));
}

TEST(IsaPriorProps, GroupBackoffLendsMassWithinTheTargetGroup) {
  // Only CP -> BRNE is ever observed, but the group tier aggregates it as
  // (group 1, group 4) evidence, so the unobserved CP -> BREQ still ends up
  // far above an unobserved cross-group successor like CP -> LDS.
  const auto cp = *avr::class_index(avr::Mnemonic::kCp);
  const auto brne = *avr::class_index(avr::Mnemonic::kBrne);
  const auto breq = *avr::class_index(avr::Mnemonic::kBreq);
  const auto lds = *avr::class_index(avr::Mnemonic::kLds, avr::AddrMode::kAbs);
  BigramPrior evidence(avr::num_instruction_classes());
  for (int i = 0; i < 50; ++i) evidence.add_transition(cp, brne);
  const IsaPrior blended(evidence);
  EXPECT_GT(blended.log_prob(cp, breq), blended.log_prob(cp, lds));
  EXPECT_GT(blended.log_prob(cp, brne), blended.log_prob(cp, breq));
}

TEST(IsaPriorProps, InvalidConfigurations) {
  EXPECT_THROW(IsaPrior(BigramPrior(3)), std::invalid_argument);  // wrong size
  IsaPriorConfig bad_mass;
  bad_mass.illegal_mass = 1.0;
  EXPECT_THROW(IsaPrior{bad_mass}, std::invalid_argument);
  IsaPriorConfig no_isa;
  no_isa.isa_weight = 0.0;
  EXPECT_THROW(IsaPrior{no_isa}, std::invalid_argument);
}

// -- basic-block recovery ----------------------------------------------------

TEST(BasicBlocks, TerminatorsFollowControlFlowClasses) {
  const auto cls = [](avr::Mnemonic m) { return *avr::class_index(m); };
  EXPECT_TRUE(ends_basic_block(cls(avr::Mnemonic::kRjmp)));
  EXPECT_TRUE(ends_basic_block(cls(avr::Mnemonic::kBreq)));
  EXPECT_TRUE(ends_basic_block(cls(avr::Mnemonic::kBrbs)));
  EXPECT_TRUE(ends_basic_block(cls(avr::Mnemonic::kSbrc)));
  EXPECT_TRUE(ends_basic_block(cls(avr::Mnemonic::kCpse)));
  EXPECT_FALSE(ends_basic_block(cls(avr::Mnemonic::kAdd)));
  EXPECT_FALSE(ends_basic_block(cls(avr::Mnemonic::kLdi)));
  EXPECT_THROW(ends_basic_block(avr::num_instruction_classes()), std::out_of_range);
}

TEST(BasicBlocks, SegmentsAfterEveryTerminator) {
  const auto cls = [](avr::Mnemonic m) { return *avr::class_index(m); };
  const std::vector<std::size_t> stream = {
      cls(avr::Mnemonic::kAdd),  cls(avr::Mnemonic::kRjmp),
      cls(avr::Mnemonic::kLdi),  cls(avr::Mnemonic::kSub),
      cls(avr::Mnemonic::kBreq), cls(avr::Mnemonic::kCom)};
  const std::vector<BasicBlock> blocks = segment_blocks(stream);
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0].begin, 0u);
  EXPECT_EQ(blocks[0].classes.size(), 2u);
  EXPECT_EQ(blocks[1].begin, 2u);
  EXPECT_EQ(blocks[1].classes.size(), 3u);
  EXPECT_EQ(blocks[2].begin, 5u);  // terminator-less tail block
  EXPECT_EQ(blocks[2].classes.size(), 1u);
  EXPECT_TRUE(segment_blocks({}).empty());
}

TEST(BasicBlocks, RecoveryRateCountsExactBlockMatches) {
  const auto cls = [](avr::Mnemonic m) { return *avr::class_index(m); };
  const std::vector<std::size_t> truth = {
      cls(avr::Mnemonic::kAdd),  cls(avr::Mnemonic::kRjmp),
      cls(avr::Mnemonic::kLdi),  cls(avr::Mnemonic::kSub),
      cls(avr::Mnemonic::kBreq), cls(avr::Mnemonic::kCom)};
  EXPECT_EQ(block_recovery_rate(truth, truth), 1.0);
  // One wrong window inside the middle block kills exactly that block.
  std::vector<std::size_t> decoded = truth;
  decoded[3] = cls(avr::Mnemonic::kAdc);
  EXPECT_NEAR(block_recovery_rate(decoded, truth), 2.0 / 3.0, 1e-12);
  // A terminator misread as a non-terminator merges two blocks: both lost.
  decoded = truth;
  decoded[1] = cls(avr::Mnemonic::kAdd);
  EXPECT_NEAR(block_recovery_rate(decoded, truth), 1.0 / 3.0, 1e-12);
  EXPECT_THROW(block_recovery_rate({0}, truth), std::invalid_argument);
  EXPECT_EQ(block_recovery_rate({}, {}), 1.0);
}

}  // namespace
}  // namespace sidis::core

// -- runtime battery: bounded-lag decoder, scored paths, invariance ----------

namespace sidis::runtime {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Synthetic posterior-carrying window over a class support.
core::Disassembly make_window(const linalg::Vector& log_posterior,
                              const std::vector<std::size_t>& support) {
  core::Disassembly w;
  std::size_t best = 0;
  for (std::size_t i = 1; i < log_posterior.size(); ++i) {
    if (log_posterior[i] > log_posterior[best]) best = i;
  }
  w.class_idx = support[best];
  w.group = avr::group_of_class(w.class_idx);
  w.log_posterior = log_posterior;
  return w;
}

TEST(SequenceDecoderTest, InvalidConstruction) {
  auto prior = std::make_shared<core::BigramPrior>(4);
  EXPECT_THROW(SequenceDecoder({}, prior), std::invalid_argument);
  EXPECT_THROW(SequenceDecoder({0, 1}, nullptr), std::invalid_argument);
  EXPECT_THROW(SequenceDecoder({0, 4}, prior), std::invalid_argument);
}

TEST(SequenceDecoderTest, PassThroughWithoutPosterior) {
  auto prior = std::make_shared<core::BigramPrior>(4);
  SequenceDecoder dec({0, 1, 2, 3}, prior);
  core::Disassembly plain;
  plain.class_idx = 2;
  dec.push(plain);  // no log_posterior: immediate unsmoothed delivery
  const auto w = dec.poll();
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->value.class_idx, 2u);
  EXPECT_FALSE(w->smoothed);
  EXPECT_TRUE(w->converged);
  EXPECT_EQ(w->confidence, kInf);
  EXPECT_EQ(dec.pending(), 0u);
}

TEST(SequenceDecoderTest, PriorWeightZeroReproducesPerWindowArgmax) {
  const std::vector<std::size_t> support = {0, 1, 2};
  auto prior = std::make_shared<core::BigramPrior>(3);
  SequenceDecoderConfig cfg;
  cfg.lag = 3;
  cfg.prior_weight = 0.0;
  SequenceDecoder dec(support, prior, cfg);
  std::mt19937_64 rng{11};
  std::uniform_real_distribution<double> em(-5.0, 0.0);
  std::vector<SmoothedWindow> out;
  for (int t = 0; t < 20; ++t) {
    linalg::Vector row(3);
    for (double& x : row) x = em(rng);
    dec.push(make_window(core::log_softmax(row), support));
    while (auto w = dec.poll()) out.push_back(std::move(*w));
  }
  for (auto& w : dec.flush()) out.push_back(std::move(w));
  ASSERT_EQ(out.size(), 20u);
  for (const SmoothedWindow& w : out) {
    EXPECT_EQ(w.value.class_idx, w.raw_class);  // argmax was already the input
    EXPECT_FALSE(w.smoothed);
    EXPECT_GT(w.confidence, 0.0);
  }
  EXPECT_EQ(dec.smoothed_count(), 0u);
}

TEST(SequenceDecoderTest, ConfidenceFeedsTheRejectVocabulary) {
  const std::vector<std::size_t> support = {0, 1};
  auto prior = std::make_shared<core::BigramPrior>(2);
  // An impossible bar: every confident kOk window degrades.
  SequenceDecoderConfig strict;
  strict.lag = 1;
  strict.min_confidence = 1e9;
  SequenceDecoder gate(support, prior, strict);
  linalg::Vector emphatic{-0.01, -6.0};
  gate.push(make_window(emphatic, support));
  gate.push(make_window(emphatic, support));
  auto flushed = gate.flush();
  ASSERT_EQ(flushed.size(), 2u);
  for (const SmoothedWindow& w : flushed) {
    EXPECT_EQ(w.value.verdict, core::Verdict::kDegraded);
  }
  // Repair: a kRejected window the lattice is near-certain about upgrades to
  // kDegraded (never straight to kOk).
  SequenceDecoderConfig repair;
  repair.lag = 1;
  repair.repair_confidence = 0.5;
  SequenceDecoder healer(support, prior, repair);
  core::Disassembly rejected = make_window(emphatic, support);
  rejected.verdict = core::Verdict::kRejected;
  healer.push(rejected);
  healer.push(make_window(emphatic, support));
  flushed = healer.flush();
  ASSERT_EQ(flushed.size(), 2u);
  EXPECT_EQ(flushed[0].value.verdict, core::Verdict::kDegraded);
  EXPECT_EQ(flushed[1].value.verdict, core::Verdict::kOk);
}

TEST(DecodeEquivalence, BoundedLagAgreesWithOfflineViterbi) {
  const std::size_t n = 4;
  const std::size_t len = 32;
  const std::vector<std::size_t> support = {0, 1, 2, 3};
  std::mt19937_64 rng{20260806};
  std::uniform_real_distribution<double> em(-5.0, 0.0);
  std::uniform_int_distribution<int> cnt(0, 5);
  linalg::Matrix emissions(len, n);
  for (std::size_t t = 0; t < len; ++t) {
    for (std::size_t c = 0; c < n; ++c) emissions(t, c) = em(rng);
  }
  auto prior = std::make_shared<core::BigramPrior>(n, 0.5);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      const int reps = cnt(rng);
      for (int k = 0; k < reps; ++k) prior->add_transition(a, b);
    }
  }
  const std::vector<std::size_t> offline =
      core::viterbi_decode(emissions, *prior, 1.0);

  for (const std::size_t lag : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                                std::size_t{8}, len}) {
    SequenceDecoderConfig cfg;
    cfg.lag = lag;
    SequenceDecoder dec(support, prior, cfg);
    std::vector<SmoothedWindow> out;
    for (std::size_t t = 0; t < len; ++t) {
      linalg::Vector row(n);
      for (std::size_t c = 0; c < n; ++c) row[c] = emissions(t, c);
      dec.push(make_window(row, support));
      while (auto w = dec.poll()) out.push_back(std::move(*w));
    }
    for (auto& w : dec.flush()) out.push_back(std::move(w));
    ASSERT_EQ(out.size(), len) << "lag " << lag;

    // Convergence is a certificate *given the emitted prefix*: while every
    // commit so far converged, the emitted prefix provably equals offline
    // Viterbi's.  (After the first forced commit the decoder solves the
    // conditioned problem, so later windows may legitimately differ.)
    std::size_t converged = 0;
    bool prefix_converged = true;
    for (std::size_t t = 0; t < len; ++t) {
      if (!out[t].converged) prefix_converged = false;
      if (out[t].converged) ++converged;
      if (prefix_converged) {
        EXPECT_EQ(out[t].value.class_idx, support[offline[t]])
            << "lag " << lag << " window " << t;
      }
    }
    if (lag >= len) {
      // The whole stream fit inside the lattice: flush() IS offline Viterbi.
      for (std::size_t t = 0; t < len; ++t) {
        EXPECT_EQ(out[t].value.class_idx, support[offline[t]]) << "window " << t;
        EXPECT_TRUE(out[t].converged);
      }
    }
    if (lag >= 3) {
      EXPECT_GT(converged, 0u) << "lag " << lag;
    }
  }
}

TEST(DecodeEquivalence, BeamedDecoderStaysExactWhenBeamCoversTheStates) {
  const std::size_t n = 4;
  const std::vector<std::size_t> support = {0, 1, 2, 3};
  std::mt19937_64 rng{5};
  std::uniform_real_distribution<double> em(-5.0, 0.0);
  auto prior = std::make_shared<core::BigramPrior>(n);
  const auto run = [&](std::size_t beam, const linalg::Matrix& emissions) {
    SequenceDecoderConfig cfg;
    cfg.lag = 4;
    cfg.beam = beam;
    SequenceDecoder dec(support, prior, cfg);
    std::vector<std::size_t> classes;
    std::vector<SmoothedWindow> out;
    for (std::size_t t = 0; t < emissions.rows(); ++t) {
      linalg::Vector row(n);
      for (std::size_t c = 0; c < n; ++c) row[c] = emissions(t, c);
      dec.push(make_window(row, support));
      while (auto w = dec.poll()) out.push_back(std::move(*w));
    }
    for (auto& w : dec.flush()) out.push_back(std::move(w));
    for (const SmoothedWindow& w : out) classes.push_back(w.value.class_idx);
    return classes;
  };
  linalg::Matrix emissions(24, n);
  for (std::size_t t = 0; t < 24; ++t) {
    for (std::size_t c = 0; c < n; ++c) emissions(t, c) = em(rng);
  }
  // beam == n is exhaustive by definition; beam 0 means "all".
  EXPECT_EQ(run(0, emissions), run(n, emissions));
}

// -- model-backed battery ----------------------------------------------------

constexpr std::size_t kSeqSeed = 20260806;

struct DecodeFixture {
  std::shared_ptr<const core::HierarchicalDisassembler> model;
  std::shared_ptr<const core::IsaPrior> prior;
  sim::TraceSet stream;
  std::vector<std::size_t> truth;
};

/// One seeded profile->train + captured stream shared by every model-backed
/// test below (training dominates the battery's runtime).  Same-group ALU
/// classes on purpose: level-2 confusions are what sequence decoding exists
/// to repair.
const DecodeFixture& fixture() {
  static const DecodeFixture f = [] {
    DecodeFixture out;
    const std::vector<std::size_t> classes = {
        *avr::class_index(avr::Mnemonic::kAdd),
        *avr::class_index(avr::Mnemonic::kAdc),
        *avr::class_index(avr::Mnemonic::kSub)};
    sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                      sim::SessionContext::make(0)};
    std::mt19937_64 rng{kSeqSeed};
    core::ProfilingData data;
    for (const std::size_t cls : classes) {
      data.classes[cls] = campaign.capture_class(cls, 40, 3, rng);
    }
    core::HierarchicalConfig cfg;
    cfg.pipeline = core::csa_config();
    cfg.pipeline.pca_components = 10;
    cfg.group_components = 8;
    cfg.instruction_components = 8;
    auto model = core::HierarchicalDisassembler::train(data, cfg);
    model.calibrate_reject(data);
    out.model = std::make_shared<const core::HierarchicalDisassembler>(
        std::move(model));

    // Firmware-shaped truth: a wide-arithmetic cadence (ADD -> ADC, SUB
    // self-runs) with the bigram evidence estimated from that same cadence.
    core::BigramPrior evidence(avr::num_instruction_classes());
    std::mt19937_64 srng{kSeqSeed + 1};
    for (std::size_t i = 0; i < 60; ++i) {
      out.truth.push_back(classes[i % classes.size()]);
      if (i > 0) evidence.add_transition(out.truth[i - 1], out.truth[i]);
      out.stream.push_back(campaign.capture_trace(
          avr::random_instance(out.truth.back(), srng, {}),
          sim::ProgramContext::make(static_cast<int>(i % 3)), srng, 0.0));
    }
    out.prior = std::make_shared<const core::IsaPrior>(evidence);
    return out;
  }();
  return f;
}

TEST(ScoredClassify, MatchesPlainClassifyDecisions) {
  const DecodeFixture& f = fixture();
  const auto& support = f.model->posterior_classes();
  ASSERT_EQ(support.size(), 3u);
  ASSERT_TRUE(std::is_sorted(support.begin(), support.end()));
  for (const sim::Trace& t : f.stream) {
    const core::Disassembly plain = f.model->classify(t);
    const core::Disassembly scored = f.model->classify_scored(t);
    EXPECT_EQ(scored.class_idx, plain.class_idx);
    EXPECT_EQ(scored.group, plain.group);
    EXPECT_EQ(scored.verdict, plain.verdict);
    EXPECT_EQ(scored.rd, plain.rd);
    EXPECT_EQ(scored.rr, plain.rr);
    EXPECT_EQ(scored.margin_headroom, plain.margin_headroom);
    EXPECT_EQ(scored.score_headroom, plain.score_headroom);
    EXPECT_TRUE(plain.log_posterior.empty());
    ASSERT_EQ(scored.log_posterior.size(), support.size());
    double sum = 0.0;
    for (const double lp : scored.log_posterior) sum += std::exp(lp);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(ScoredClassify, BatchIsBitIdenticalToScalar) {
  const DecodeFixture& f = fixture();
  const std::vector<core::Disassembly> batch =
      f.model->classify_batch_scored(f.stream);
  ASSERT_EQ(batch.size(), f.stream.size());
  for (std::size_t i = 0; i < f.stream.size(); ++i) {
    const core::Disassembly scalar = f.model->classify_scored(f.stream[i]);
    EXPECT_EQ(batch[i].class_idx, scalar.class_idx) << "window " << i;
    EXPECT_EQ(batch[i].verdict, scalar.verdict) << "window " << i;
    ASSERT_EQ(batch[i].log_posterior.size(), scalar.log_posterior.size());
    for (std::size_t c = 0; c < scalar.log_posterior.size(); ++c) {
      EXPECT_EQ(batch[i].log_posterior[c], scalar.log_posterior[c])
          << "window " << i << " class " << c;
    }
  }
}

/// Reference smoothing: classify_scored per window, in order, through a bare
/// SequenceDecoder -- what any runtime route must reproduce bit-for-bit.
std::vector<SmoothedWindow> reference_smoothed(const DecodeFixture& f,
                                               const SequenceDecoderConfig& cfg) {
  SequenceDecoder dec(f.model->posterior_classes(), f.prior, cfg);
  std::vector<SmoothedWindow> out;
  for (const sim::Trace& t : f.stream) {
    dec.push(f.model->classify_scored(t));
    while (auto w = dec.poll()) out.push_back(std::move(*w));
  }
  for (auto& w : dec.flush()) out.push_back(std::move(w));
  return out;
}

TEST(DecodeEquivalence, StreamingEngineIsWorkerCountInvariant) {
  const DecodeFixture& f = fixture();
  SequenceDecoderConfig cfg;
  cfg.lag = 4;
  const std::vector<SmoothedWindow> reference = reference_smoothed(f, cfg);
  ASSERT_EQ(reference.size(), f.stream.size());

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    StreamingConfig sc;
    sc.workers = workers;
    StreamingDisassembler engine(StreamingDisassembler::make_scored_stage(f.model),
                                 sc);
    engine.enable_sequence_decoding(f.model->posterior_classes(), f.prior, cfg);
    for (const sim::Trace& t : f.stream) {
      ASSERT_TRUE(engine.submit(t).has_value());
    }
    const std::vector<StreamResult> out = engine.drain();
    ASSERT_EQ(out.size(), f.stream.size()) << "workers " << workers;
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i].sequence, i);
      EXPECT_EQ(out[i].value.class_idx, reference[i].value.class_idx)
          << "workers " << workers << " window " << i;
      EXPECT_EQ(out[i].value.verdict, reference[i].value.verdict);
      EXPECT_EQ(out[i].smoothed, reference[i].smoothed);
      EXPECT_EQ(out[i].sequence_confidence, reference[i].confidence);
    }
    const RuntimeStats stats = engine.stats();
    EXPECT_EQ(stats.windows_decoded, f.stream.size());
    EXPECT_EQ(stats.windows_smoothed,
              static_cast<std::uint64_t>(
                  std::count_if(reference.begin(), reference.end(),
                                [](const SmoothedWindow& w) { return w.smoothed; })));
  }
}

TEST(DecodeEquivalence, FleetIsShardCountInvariant) {
  const DecodeFixture& f = fixture();
  SequenceDecoderConfig cfg;
  cfg.lag = 4;
  const std::vector<SmoothedWindow> reference = reference_smoothed(f, cfg);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    FleetConfig fc;
    fc.shards = shards;
    fc.workers_per_shard = 2;
    FleetFrontend fleet(f.model, fc);
    StreamOptions so;
    so.decode_sequence = true;
    so.decode = cfg;
    so.decode_prior = f.prior;
    const auto id = fleet.open_stream(so);
    std::vector<FleetResult> out;
    for (const sim::Trace& t : f.stream) {
      AdmitResult a = fleet.submit(id, t);
      while (!a.accepted()) {
        while (auto r = fleet.poll(id)) out.push_back(std::move(*r));
        a = fleet.submit(id, t);
      }
      while (auto r = fleet.poll(id)) out.push_back(std::move(*r));
    }
    for (FleetResult& r : fleet.close_stream(id)) out.push_back(std::move(r));
    ASSERT_EQ(out.size(), f.stream.size()) << "shards " << shards;
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i].stream_sequence, i);
      EXPECT_EQ(out[i].value.class_idx, reference[i].value.class_idx)
          << "shards " << shards << " window " << i;
      EXPECT_EQ(out[i].value.verdict, reference[i].value.verdict);
      EXPECT_EQ(out[i].smoothed, reference[i].smoothed);
      EXPECT_EQ(out[i].sequence_confidence, reference[i].confidence);
    }
    const FleetStats stats = fleet.stats();
    EXPECT_EQ(stats.runtime.windows_decoded, f.stream.size());
  }
}

TEST(DecodeEquivalence, EngineRejectsLateDecoderInstall) {
  const DecodeFixture& f = fixture();
  StreamingConfig sc;
  sc.workers = 1;
  StreamingDisassembler engine(StreamingDisassembler::make_scored_stage(f.model),
                               sc);
  ASSERT_TRUE(engine.submit(f.stream.front()).has_value());
  EXPECT_THROW(
      engine.enable_sequence_decoding(f.model->posterior_classes(), f.prior),
      std::logic_error);
  (void)engine.drain();
}

TEST(DecodeEquivalence, PlainStagePassesThroughUndecoded) {
  // A decoder on an engine whose stage produces no posteriors must degrade
  // gracefully: everything passes through unsmoothed.
  const DecodeFixture& f = fixture();
  StreamingConfig sc;
  sc.workers = 1;
  StreamingDisassembler engine(StreamingDisassembler::make_stage(f.model), sc);
  engine.enable_sequence_decoding(f.model->posterior_classes(), f.prior);
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(engine.submit(f.stream[i]).has_value());
  }
  const std::vector<StreamResult> out = engine.drain();
  ASSERT_EQ(out.size(), 8u);
  for (const StreamResult& r : out) {
    EXPECT_FALSE(r.smoothed);
    EXPECT_EQ(r.sequence_confidence, kInf);
    EXPECT_EQ(r.value.class_idx, f.model->classify(f.stream[r.sequence]).class_idx);
  }
}

}  // namespace
}  // namespace sidis::runtime

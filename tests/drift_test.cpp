// Drift-detection + self-scheduled recalibration battery.
//
// Statistical contract tests for runtime::DriftMonitor (bounded false-alarm
// rate on stationary streams, bounded detection latency under injected
// gain/offset/thermal/aging drift, trigger attribution, warmup/cooldown
// discipline) and runtime::RecalibrationScheduler (budget enforcement,
// registry publication with coherent stage stamps, accuracy recovery through
// the hot-swap path), plus bit-determinism of the whole loop across worker
// counts.  Synthetic-stream tests draw iid Gaussian feature vectors straight
// from the model's persisted training moments, so every threshold is
// exercised in the calibrated units it is specified in.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <random>
#include <sstream>
#include <thread>

#include "avr/grouping.hpp"
#include "avr/program.hpp"
#include "core/csa.hpp"
#include "core/serialize.hpp"
#include "runtime/drift.hpp"
#include "runtime/recal.hpp"
#include "runtime/registry.hpp"
#include "runtime/streaming.hpp"
#include "sim/acquisition.hpp"

namespace sidis::runtime {
namespace {

// -- shared model fixture ----------------------------------------------------

core::HierarchicalConfig small_config() {
  core::HierarchicalConfig cfg;
  cfg.pipeline = core::csa_config();
  cfg.pipeline.pca_components = 10;
  cfg.group_components = 8;
  cfg.instruction_components = 8;
  return cfg;
}

const std::vector<std::size_t>& drift_classes() {
  static const std::vector<std::size_t> classes = {
      *avr::class_index(avr::Mnemonic::kAdd), *avr::class_index(avr::Mnemonic::kLdi),
      *avr::class_index(avr::Mnemonic::kCom)};
  return classes;
}

core::ProfilingData profile_clean(std::size_t per_class) {
  sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                    sim::SessionContext::make(0)};
  std::mt19937_64 rng{17};
  core::ProfilingData data;
  for (std::size_t cls : drift_classes()) {
    data.classes[cls] = campaign.capture_class(cls, per_class, 5, rng);
  }
  return data;
}

class DriftFixture : public ::testing::Test {
 protected:
  /// One trained 3-class model with calibrated reject gates, shared across
  /// the suite (training dominates the battery's runtime).
  static std::shared_ptr<const core::HierarchicalDisassembler> model() {
    static const std::shared_ptr<const core::HierarchicalDisassembler> m = [] {
      const core::ProfilingData data = profile_clean(50);
      auto trained = std::make_shared<core::HierarchicalDisassembler>(
          core::HierarchicalDisassembler::train(data, small_config()));
      core::RejectConfig rc;
      rc.margin_quantile = 0.02;
      rc.score_quantile = 0.02;
      trained->calibrate_reject(data, rc);
      return std::static_pointer_cast<const core::HierarchicalDisassembler>(trained);
    }();
    return m;
  }

  static const core::FeatureMoments& moments() { return model()->training_moments(); }

  /// Draws one iid Gaussian feature vector from the training moments, with a
  /// per-feature mean shift of `shift_sigma` training sigmas and the
  /// training stddev scaled by `spread`.
  static linalg::Vector synthetic_vector(std::mt19937_64& rng, double shift_sigma,
                                         double spread) {
    const core::FeatureMoments& m = moments();
    linalg::Vector v(m.mean.size());
    std::normal_distribution<double> unit(0.0, 1.0);
    for (std::size_t i = 0; i < v.size(); ++i) {
      const double sigma = std::sqrt(m.variance[i]);
      v[i] = m.mean[i] + shift_sigma * sigma + spread * sigma * unit(rng);
    }
    return v;
  }
};

// -- training moments & serialization ---------------------------------------

TEST_F(DriftFixture, TrainingMomentsPopulatedWithMonitorDimension) {
  ASSERT_TRUE(model()->has_training_moments());
  const core::FeatureMoments& m = moments();
  EXPECT_EQ(m.mean.size(), m.variance.size());
  EXPECT_EQ(m.count, 150u);  // 3 classes x 50 traces
  // Monitor space = the group level here (3 distinct groups -> non-trivial),
  // truncated to group_components.
  EXPECT_EQ(m.mean.size(), small_config().group_components);
  for (double v : m.variance) EXPECT_GE(v, 0.0);
}

TEST_F(DriftFixture, MonitorFeaturesMatchMomentSpace) {
  sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                    sim::SessionContext::make(0)};
  std::mt19937_64 rng{29};
  const sim::TraceSet probe = campaign.capture_class(drift_classes()[0], 1, 1, rng);
  const linalg::Vector f = model()->monitor_features(probe.front());
  EXPECT_EQ(f.size(), moments().mean.size());
}

TEST_F(DriftFixture, MomentsSurviveSerializeRoundTripBitExactly) {
  std::stringstream ss;
  core::save_disassembler(ss, *model());
  const core::HierarchicalDisassembler loaded = core::load_disassembler(ss);
  ASSERT_TRUE(loaded.has_training_moments());
  const core::FeatureMoments& a = moments();
  const core::FeatureMoments& b = loaded.training_moments();
  EXPECT_EQ(a.count, b.count);
  ASSERT_EQ(a.mean.size(), b.mean.size());
  for (std::size_t i = 0; i < a.mean.size(); ++i) {
    EXPECT_EQ(a.mean[i], b.mean[i]) << "mean[" << i << "] not bit-equal";
    EXPECT_EQ(a.variance[i], b.variance[i]) << "variance[" << i << "] not bit-equal";
  }
}

TEST_F(DriftFixture, V2ArchiveLoadsWithEmptyMoments) {
  std::stringstream ss;
  core::save_disassembler(ss, *model());
  std::string archive = ss.str();
  // Rewrite the header version (dropping the v5 kind line); the v2 reader
  // stops before the moments trailer, which then simply goes unread.
  const std::string current_header = "sidis-template 5\nkind plain\n";
  ASSERT_EQ(archive.rfind(current_header, 0), 0u);
  archive.replace(0, current_header.size(), "sidis-template 2\n");
  std::stringstream old(archive);
  const core::HierarchicalDisassembler loaded = core::load_disassembler(old);
  EXPECT_FALSE(loaded.has_training_moments());
}

TEST_F(DriftFixture, SingleClassModelHasNoMomentsAndMonitorRefusesIt) {
  sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                    sim::SessionContext::make(0)};
  std::mt19937_64 rng{31};
  core::ProfilingData data;
  data.classes[drift_classes()[0]] =
      campaign.capture_class(drift_classes()[0], 12, 2, rng);
  const auto solo = std::make_shared<const core::HierarchicalDisassembler>(
      core::HierarchicalDisassembler::train(data, small_config()));
  // Every level is trivial: no pipeline anywhere, hence no monitor space.
  EXPECT_FALSE(solo->has_training_moments());
  EXPECT_THROW(DriftMonitor{solo}, std::invalid_argument);
}

TEST_F(DriftFixture, SameGroupModelFallsBackToInstructionLevelMoments) {
  // Add/Adc/Sub share one instruction group, so the group level degenerates
  // to a constant; the moments must come from the instruction level instead.
  sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                    sim::SessionContext::make(0)};
  std::mt19937_64 rng{37};
  core::ProfilingData data;
  for (avr::Mnemonic mn :
       {avr::Mnemonic::kAdd, avr::Mnemonic::kAdc, avr::Mnemonic::kSub}) {
    data.classes[*avr::class_index(mn)] =
        campaign.capture_class(*avr::class_index(mn), 20, 3, rng);
  }
  const core::HierarchicalDisassembler same_group =
      core::HierarchicalDisassembler::train(data, small_config());
  ASSERT_TRUE(same_group.has_training_moments());
  EXPECT_EQ(same_group.training_moments().mean.size(),
            small_config().instruction_components);
}

// -- synthetic-stream statistics --------------------------------------------

TEST_F(DriftFixture, StationaryStreamsHoldFalseAlarmBudget) {
  // 50 independent stationary streams drawn straight from the training
  // moments; the battery's false-alarm budget is at most 1 stream raising
  // any event over 300 observations.
  std::size_t streams_with_alarm = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    DriftMonitor monitor(model());
    std::mt19937_64 rng{0xa1a20000 + seed};
    bool alarmed = false;
    for (int i = 0; i < 300; ++i) {
      monitor.observe_features(synthetic_vector(rng, 0.0, 1.0), false);
      if (monitor.poll_event()) alarmed = true;
    }
    streams_with_alarm += alarmed ? 1 : 0;
  }
  EXPECT_LE(streams_with_alarm, 1u)
      << "false-alarm rate above budget on stationary streams";
}

TEST_F(DriftFixture, TwoSigmaMeanShiftDetectedWithinLatencyBudget) {
  DriftMonitor monitor(model());
  std::mt19937_64 rng{0xd41f7};
  const int onset = 100;
  std::optional<DriftEvent> event;
  int detected_at = -1;
  for (int i = 0; i < onset + 80 && !event; ++i) {
    const double shift = i >= onset ? 2.0 : 0.0;
    monitor.observe_features(synthetic_vector(rng, shift, 1.0), false);
    event = monitor.poll_event();
    if (event) detected_at = i;
  }
  ASSERT_TRUE(event.has_value()) << "2-sigma shift never detected";
  EXPECT_EQ(event->trigger, DriftTrigger::kFeatureShift);
  EXPECT_GE(detected_at, onset) << "alarm before the drift even started";
  EXPECT_LE(detected_at - onset, 40) << "detection latency above budget";
  EXPECT_GE(event->z_rms, monitor.config().z_threshold);
}

TEST_F(DriftFixture, VarianceInflationTriggersSpreadStatistic) {
  // Doubling every stddev leaves the means in place: z_rms stays near 2
  // (below the 3.5 gate) while the symmetric KL climbs past 1 nat.
  DriftMonitor monitor(model());
  std::mt19937_64 rng{0x5bead};
  std::optional<DriftEvent> event;
  for (int i = 0; i < 400 && !event; ++i) {
    const double spread = i >= 100 ? 2.0 : 1.0;
    monitor.observe_features(synthetic_vector(rng, 0.0, spread), false);
    event = monitor.poll_event();
  }
  ASSERT_TRUE(event.has_value()) << "variance inflation never detected";
  EXPECT_EQ(event->trigger, DriftTrigger::kFeatureSpread);
  EXPECT_GE(event->symmetric_kl, monitor.config().kl_threshold);
}

TEST_F(DriftFixture, WarmupSuppressesImmediateAlarms) {
  DriftConfig cfg;
  cfg.warmup = 50;
  DriftMonitor monitor(model(), cfg);
  std::mt19937_64 rng{0x3aa3};
  // Grossly shifted from the very first observation: nothing may fire
  // within the warmup window.
  for (std::size_t i = 0; i < cfg.warmup; ++i) {
    monitor.observe_features(synthetic_vector(rng, 10.0, 1.0), false);
    EXPECT_FALSE(monitor.poll_event().has_value())
        << "event fired during warmup at observation " << i;
  }
  for (int i = 0; i < 20; ++i) {
    monitor.observe_features(synthetic_vector(rng, 10.0, 1.0), false);
  }
  EXPECT_TRUE(monitor.poll_event().has_value())
      << "shift not detected once warmup passed";
}

TEST_F(DriftFixture, SingleOutlierWindowDoesNotRaise) {
  // One 4-sigma window nudges the EWMA mean by only alpha * 4 sigma and the
  // EWMA variance by well under the 2x the KL gate corresponds to, so an
  // isolated glitch must not burn a recalibration event.  (A *wild* single
  // window -- tens of sigma -- IS a distribution change worth flagging; the
  // fault layer models those as burst noise.)
  DriftMonitor monitor(model());
  std::mt19937_64 rng{0x0071e4};
  for (int i = 0; i < 100; ++i) {
    monitor.observe_features(synthetic_vector(rng, 0.0, 1.0), false);
  }
  monitor.observe_features(synthetic_vector(rng, 4.0, 1.0), false);
  for (int i = 0; i < 150; ++i) {
    monitor.observe_features(synthetic_vector(rng, 0.0, 1.0), false);
    EXPECT_FALSE(monitor.poll_event().has_value())
        << "a single outlier window raised a drift event";
  }
}

TEST_F(DriftFixture, ConsecutiveRequirementGatesTheAlarm) {
  // The same sustained drift fires with the default streak requirement and
  // must NOT fire when the requirement is unattainable.
  DriftConfig strict;
  strict.consecutive = 1000000;
  DriftMonitor gated(model(), strict);
  DriftMonitor standard(model());
  std::mt19937_64 rng_a{0xc0c0};
  std::mt19937_64 rng_b{0xc0c0};
  bool standard_fired = false;
  for (int i = 0; i < 300; ++i) {
    gated.observe_features(synthetic_vector(rng_a, 3.0, 1.0), false);
    standard.observe_features(synthetic_vector(rng_b, 3.0, 1.0), false);
    EXPECT_FALSE(gated.poll_event().has_value());
    if (standard.poll_event()) standard_fired = true;
  }
  EXPECT_TRUE(standard_fired);
}

TEST_F(DriftFixture, CooldownSpacesRepeatedEvents) {
  DriftConfig cfg;
  cfg.cooldown = 100;
  DriftMonitor monitor(model(), cfg);
  std::mt19937_64 rng{0x9e37};
  std::vector<std::uint64_t> fired_at;
  for (int i = 0; i < 700; ++i) {
    // Sustained, never-recalibrated drift.
    monitor.observe_features(synthetic_vector(rng, 4.0, 1.0), false);
    if (const auto e = monitor.poll_event()) fired_at.push_back(e->observation);
  }
  ASSERT_GE(fired_at.size(), 2u) << "sustained drift should re-alarm";
  for (std::size_t i = 1; i < fired_at.size(); ++i) {
    EXPECT_GE(fired_at[i] - fired_at[i - 1], cfg.cooldown - cfg.warmup)
        << "events " << i - 1 << " and " << i << " closer than the cooldown";
  }
}

TEST_F(DriftFixture, RebaseResetsStatisticsAndQuietsTheMonitor) {
  DriftMonitor monitor(model());
  std::mt19937_64 rng{0xbeba5e};
  std::optional<DriftEvent> event;
  for (int i = 0; i < 300 && !event; ++i) {
    monitor.observe_features(synthetic_vector(rng, 3.0, 1.0), false);
    event = monitor.poll_event();
  }
  ASSERT_TRUE(event.has_value());
  monitor.rebase();
  EXPECT_EQ(monitor.z_rms(), 0.0);
  EXPECT_EQ(monitor.symmetric_kl(), 0.0);
  // Back on-distribution (as after a successful recalibration): quiet.
  for (int i = 0; i < 300; ++i) {
    monitor.observe_features(synthetic_vector(rng, 0.0, 1.0), false);
    EXPECT_FALSE(monitor.poll_event().has_value()) << "alarm after rebase at " << i;
  }
  EXPECT_LT(monitor.z_rms(), monitor.config().z_threshold);
}

TEST_F(DriftFixture, RejectRateTrendTriggersWhenEnabled) {
  DriftConfig cfg;
  cfg.z_threshold = 1e9;  // isolate the reject-rate trigger
  cfg.kl_threshold = 1e9;
  cfg.reject_rate_threshold = 0.5;
  DriftMonitor monitor(model(), cfg);
  std::mt19937_64 rng{0x4e11};
  std::optional<DriftEvent> event;
  int fired_at = -1;
  for (int i = 0; i < 300 && !event; ++i) {
    monitor.observe_features(synthetic_vector(rng, 0.0, 1.0), /*rejected=*/true);
    event = monitor.poll_event();
    if (event) fired_at = i;
  }
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->trigger, DriftTrigger::kRejectRate);
  EXPECT_GE(event->reject_rate, cfg.reject_rate_threshold);
  EXPECT_LE(fired_at, 200);
}

TEST_F(DriftFixture, FeatureDimensionMismatchThrows) {
  DriftMonitor monitor(model());
  linalg::Vector wrong(moments().mean.size() + 1, 0.0);
  EXPECT_THROW(monitor.observe_features(wrong, false), std::invalid_argument);
}

TEST_F(DriftFixture, IdenticalStreamsProduceBitIdenticalStatistics) {
  DriftMonitor a(model());
  DriftMonitor b(model());
  std::mt19937_64 rng_a{0x7e57};
  std::mt19937_64 rng_b{0x7e57};
  for (int i = 0; i < 250; ++i) {
    const double shift = i >= 150 ? 2.5 : 0.0;
    a.observe_features(synthetic_vector(rng_a, shift, 1.0), false);
    b.observe_features(synthetic_vector(rng_b, shift, 1.0), false);
    ASSERT_EQ(a.z_rms(), b.z_rms()) << "z_rms diverged at observation " << i;
    ASSERT_EQ(a.symmetric_kl(), b.symmetric_kl());
    const auto ea = a.poll_event();
    const auto eb = b.poll_event();
    ASSERT_EQ(ea.has_value(), eb.has_value());
    if (ea) {
      EXPECT_EQ(ea->observation, eb->observation);
      EXPECT_EQ(ea->z_rms, eb->z_rms);
    }
  }
}

// -- sim aging hooks ---------------------------------------------------------

TEST(AgingHooks, AnchorsAndLinearRamp) {
  sim::DeviceModel d = sim::DeviceModel::make(0);
  EXPECT_EQ(d.aging_gain(0.7), 1.0);  // defaults off
  EXPECT_EQ(d.aging_offset(0.7), 0.0);
  d.aging_gain_drift = 0.3;
  d.aging_offset_drift = -0.05;
  EXPECT_DOUBLE_EQ(d.aging_gain(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.aging_gain(1.0), 1.3);
  EXPECT_DOUBLE_EQ(d.aging_gain(0.5), 1.15);  // linear, not saturating
  EXPECT_DOUBLE_EQ(d.aging_gain(2.0), 1.3);   // clamped
  EXPECT_DOUBLE_EQ(d.aging_offset(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.aging_offset(1.0), -0.05);
}

TEST(AgingHooks, FlowIntoEnvironmentTotals) {
  sim::DeviceModel d = sim::DeviceModel::make(0);
  d.aging_gain_drift = 0.2;
  d.aging_offset_drift = 0.04;
  sim::Environment env{d, sim::SessionContext::make(0), sim::ProgramContext::make(0),
                       /*campaign_progress=*/1.0};
  sim::Environment fresh = env;
  fresh.campaign_progress = 0.0;
  EXPECT_DOUBLE_EQ(env.total_gain() / fresh.total_gain(), 1.2);
  EXPECT_DOUBLE_EQ(env.total_offset() - fresh.total_offset(), 0.04);
}

TEST(AgingHooks, MakeNeverEnablesAging) {
  for (int id = 0; id < 8; ++id) {
    const sim::DeviceModel d = sim::DeviceModel::make(id);
    EXPECT_EQ(d.aging_gain_drift, 0.0) << "device " << id;
    EXPECT_EQ(d.aging_offset_drift, 0.0) << "device " << id;
  }
}

// -- end-to-end drift loop through the streaming engine ----------------------

struct LoopRecord {
  std::size_t class_idx;
  core::Verdict verdict;
  std::uint64_t model_stamp;
};

struct LoopRun {
  std::vector<LoopRecord> records;
  std::vector<std::uint64_t> event_observations;
  std::vector<RecalOutcome> outcomes;
  std::shared_ptr<const core::HierarchicalDisassembler> final_model;
  RuntimeStats stats;
  double final_z_rms = 0.0;
};

/// Streams `windows` (pre-captured, drift baked into their progress ramp)
/// through the engine in batches, observing every emission in order and
/// recalibrating on drift events -- the canonical deployment loop.  All
/// randomness is pre-seeded, swaps happen only at batch boundaries, and the
/// monitor consumes in emission order, so the run is a pure function of its
/// inputs at any worker count.
LoopRun run_drift_loop(const sim::TraceSet& windows,
                       const sim::AcquisitionCampaign& recal_campaign,
                       std::size_t workers, RecalPolicy policy,
                       ModelRegistry* registry,
                       std::shared_ptr<const core::HierarchicalDisassembler> model,
                       DriftConfig drift_cfg = {}) {
  LoopRun run;
  StreamingConfig scfg;
  scfg.workers = workers;
  scfg.queue_capacity = 16;
  StreamingDisassembler engine(
      [model](const sim::Trace& t) { return model->classify(t); }, scfg);
  DriftMonitor monitor(model, drift_cfg);
  CampaignCalibrationSource source(recal_campaign, drift_classes(), 3, 0xca1b5eed);
  RecalibrationScheduler scheduler(engine, model, source, policy, registry);

  constexpr std::size_t kBatch = 16;
  for (std::size_t base = 0; base < windows.size(); base += kBatch) {
    const std::size_t end = std::min(windows.size(), base + kBatch);
    for (std::size_t i = base; i < end; ++i) {
      if (!engine.submit(windows[i]).has_value()) break;
    }
    std::size_t emitted = base;
    while (emitted < end) {
      std::optional<StreamResult> r = engine.poll();
      if (!r) {
        std::this_thread::yield();
        continue;
      }
      const sim::Trace& trace = windows[r->sequence];
      monitor.observe(trace, r->value);
      run.records.push_back(
          LoopRecord{r->value.class_idx, r->value.verdict, r->model_stamp});
      ++emitted;
    }
    // Drift handling at the batch boundary: the engine is idle here, so the
    // published stage applies to a deterministic window range.
    if (const auto event = monitor.poll_event()) {
      run.event_observations.push_back(event->observation);
      // The recal corpus must reflect the device state "now".
      const double progress =
          windows.empty() ? 0.0
                          : static_cast<double>(end - 1) /
                                static_cast<double>(windows.size() - 1);
      source.set_progress(progress);
      run.outcomes.push_back(scheduler.on_drift(*event, monitor));
    }
  }
  for (StreamResult& r : engine.drain()) {
    run.records.push_back(
        LoopRecord{r.value.class_idx, r.value.verdict, r.model_stamp});
  }
  run.final_model = scheduler.active_model();
  run.stats = engine.stats();
  run.final_z_rms = monitor.z_rms();
  return run;
}

/// Captures `n` windows on `campaign` with classes interleaved round-robin
/// (stable class mixture -- the monitor watches pooled moments) and campaign
/// progress ramping 0 -> 1 across the stream.
sim::TraceSet drifting_stream(const sim::AcquisitionCampaign& campaign, std::size_t n,
                              std::uint64_t seed) {
  std::mt19937_64 rng{seed};
  sim::TraceSet out;
  out.reserve(n);
  const double denom = n > 1 ? static_cast<double>(n - 1) : 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cls = drift_classes()[i % drift_classes().size()];
    const sim::ProgramContext prog = sim::ProgramContext::make(static_cast<int>(i % 4));
    out.push_back(campaign.capture_trace(avr::random_instance(cls, rng, {}), prog, rng,
                                         static_cast<double>(i) / denom));
  }
  return out;
}

double accuracy_against_meta(const core::HierarchicalDisassembler& m,
                             const sim::TraceSet& windows) {
  std::size_t hits = 0;
  for (const sim::Trace& t : windows) {
    if (m.classify(t).class_idx == t.meta.class_idx) ++hits;
  }
  return windows.empty() ? 0.0
                         : static_cast<double>(hits) / static_cast<double>(windows.size());
}

class DriftLoopFixture : public DriftFixture {
 protected:
  static sim::DeviceModel aged_device(double gain_drift, double offset_drift) {
    sim::DeviceModel d = sim::DeviceModel::make(0);
    d.aging_gain_drift = gain_drift;
    d.aging_offset_drift = offset_drift;
    return d;
  }

  static RecalPolicy default_policy() {
    RecalPolicy p;
    p.traces_per_class = 6;
    p.trace_budget = 72;  // four rounds of 6 x 3 classes
    return p;
  }

  /// Drives a persistent synthetic mean shift through monitor + scheduler
  /// until `events` alarms have been consumed; returns the outcomes in
  /// order.  The shift survives every renorm publish (the fed vectors stay
  /// displaced from the training moments no matter what the pipeline scalers
  /// do), so the monitor re-fires as soon as its own cooldown allows -- the
  /// exact situation the escalation policy exists for.
  static std::vector<RecalOutcome> run_escalation_loop(
      RecalPolicy policy, const core::ProfilingData& base, std::size_t events) {
    sim::AcquisitionCampaign clean{sim::DeviceModel::make(0),
                                   sim::SessionContext::make(0)};
    StreamingDisassembler engine(
        [m = model()](const sim::Trace& t) { return m->classify(t); });
    CampaignCalibrationSource source(clean, drift_classes(), 3, 0xe5ca1a7e);
    RecalibrationScheduler scheduler(engine, model(), source, policy, nullptr,
                                     &base);
    DriftMonitor monitor(model());
    std::mt19937_64 rng{0x5ca1e};
    std::vector<RecalOutcome> outcomes;
    for (std::size_t fed = 0; outcomes.size() < events && fed < 4000; ++fed) {
      monitor.observe_features(synthetic_vector(rng, 1.5, 1.0), false);
      if (const auto event = monitor.poll_event()) {
        outcomes.push_back(scheduler.on_drift(*event, monitor));
      }
    }
    return outcomes;
  }
};

TEST_F(DriftLoopFixture, CleanStreamRaisesNoEventsAndSpendsNothing) {
  sim::AcquisitionCampaign clean{sim::DeviceModel::make(0),
                                 sim::SessionContext::make(0)};
  const sim::TraceSet windows = drifting_stream(clean, 240, 0xc1ea0);
  const LoopRun run =
      run_drift_loop(windows, clean, 2, default_policy(), nullptr, model());
  EXPECT_TRUE(run.event_observations.empty())
      << "stationary stream raised " << run.event_observations.size() << " event(s)";
  EXPECT_EQ(run.stats.drift_events, 0u);
  EXPECT_EQ(run.stats.recal_traces_spent, 0u);
  EXPECT_EQ(run.stats.model_swaps, 0u);
  EXPECT_EQ(run.records.size(), windows.size());
}

TEST_F(DriftLoopFixture, AgingGainDriftDetectedRecalibratedAndRecovered) {
  sim::AcquisitionCampaign drifting{aged_device(0.25, 0.0),
                                    sim::SessionContext::make(0)};
  const sim::TraceSet windows = drifting_stream(drifting, 360, 0xa61713);
  const LoopRun run =
      run_drift_loop(windows, drifting, 2, default_policy(), nullptr, model());

  ASSERT_GE(run.event_observations.size(), 1u) << "gain drift never detected";
  // Detection latency: the ramp reaches ~half its magnitude mid-stream; the
  // first alarm must land in the front half, not after the damage is done.
  EXPECT_LE(run.event_observations.front(), windows.size() * 3 / 4);
  ASSERT_GE(run.outcomes.size(), 1u);
  EXPECT_TRUE(run.outcomes.front().performed);
  EXPECT_GT(run.stats.recalibrations, 0u);
  EXPECT_LE(run.stats.recal_traces_spent, default_policy().trace_budget);

  // Recovery: the final published model, on fresh fully-drifted windows,
  // classifies within 2 points of the clean model on clean windows.
  sim::AcquisitionCampaign clean{sim::DeviceModel::make(0),
                                 sim::SessionContext::make(0)};
  sim::TraceSet eval_clean;
  sim::TraceSet eval_drifted;
  {
    std::mt19937_64 rng_a{0xe7a1};
    std::mt19937_64 rng_b{0xe7a1};
    for (std::size_t i = 0; i < 75; ++i) {
      const std::size_t cls = drift_classes()[i % drift_classes().size()];
      const sim::ProgramContext prog =
          sim::ProgramContext::make(static_cast<int>(i % 4));
      eval_clean.push_back(
          clean.capture_trace(avr::random_instance(cls, rng_a, {}), prog, rng_a, 0.0));
      eval_drifted.push_back(drifting.capture_trace(avr::random_instance(cls, rng_b, {}),
                                                    prog, rng_b, 1.0));
    }
  }
  const double clean_acc = accuracy_against_meta(*model(), eval_clean);
  const double drifted_acc_stale = accuracy_against_meta(*model(), eval_drifted);
  const double drifted_acc_recal = accuracy_against_meta(*run.final_model, eval_drifted);
  EXPECT_GE(drifted_acc_recal, clean_acc - 0.02)
      << "post-recalibration accuracy did not recover (clean " << clean_acc
      << ", stale " << drifted_acc_stale << ", recalibrated " << drifted_acc_recal
      << ")";
}

TEST_F(DriftLoopFixture, PureOffsetDriftIsDcBlindAndHarmless) {
  // A constant offset is pure DC, and the CWT feature bank is band-pass: the
  // monitor features barely move AND classification is unharmed.  The right
  // behavior is therefore *no* alarm -- spending labeled traces on a shift
  // the classifier cannot see would be waste.  (Offset combined with gain
  // drift rides along with the gain detection, covered above.)
  sim::AcquisitionCampaign drifting{aged_device(0.0, 0.12),
                                    sim::SessionContext::make(0)};
  const sim::TraceSet windows = drifting_stream(drifting, 360, 0x0ff5e7);
  const LoopRun run =
      run_drift_loop(windows, drifting, 2, default_policy(), nullptr, model());
  EXPECT_TRUE(run.event_observations.empty())
      << "DC-only drift raised an alarm the classifier cannot benefit from";
  // Back the "harmless" claim with accuracy: stale model, fully drifted eval.
  std::mt19937_64 rng{0x0ffe7a};
  sim::TraceSet eval;
  for (std::size_t i = 0; i < 60; ++i) {
    const std::size_t cls = drift_classes()[i % drift_classes().size()];
    eval.push_back(drifting.capture_trace(
        avr::random_instance(cls, rng, {}),
        sim::ProgramContext::make(static_cast<int>(i % 4)), rng, 1.0));
  }
  EXPECT_GE(accuracy_against_meta(*model(), eval), 0.95)
      << "offset drift hurt accuracy after all -- the no-alarm contract is wrong";
}

TEST_F(DriftLoopFixture, ThermalDriftDetected) {
  sim::DeviceModel warm = sim::DeviceModel::make(0);
  warm.thermal_drift = 0.35;  // saturating warm-up instead of linear aging
  sim::AcquisitionCampaign drifting{warm, sim::SessionContext::make(0)};
  const sim::TraceSet windows = drifting_stream(drifting, 360, 0x7e4a1);
  const LoopRun run =
      run_drift_loop(windows, drifting, 2, default_policy(), nullptr, model());
  ASSERT_GE(run.event_observations.size(), 1u) << "thermal drift never detected";
  // The warm-up front-loads the drift, so detection should come early.
  EXPECT_LE(run.event_observations.front(), windows.size() / 2);
}

TEST_F(DriftLoopFixture, SchedulerStopsSpendingAtTheBudget) {
  sim::AcquisitionCampaign drifting{aged_device(0.35, 0.0),
                                    sim::SessionContext::make(0)};
  const sim::TraceSet windows = drifting_stream(drifting, 420, 0xb0d6e7);
  RecalPolicy tight = default_policy();
  tight.traces_per_class = 4;
  tight.trace_budget = 12;  // exactly one 4 x 3 round
  DriftConfig eager;
  eager.cooldown = 40;  // re-alarm quickly so the budget gate is exercised
  const LoopRun run =
      run_drift_loop(windows, drifting, 2, tight, nullptr, model(), eager);

  ASSERT_GE(run.outcomes.size(), 2u)
      << "drift persisted but the monitor re-alarmed fewer than twice";
  EXPECT_TRUE(run.outcomes.front().performed);
  for (std::size_t i = 1; i < run.outcomes.size(); ++i) {
    EXPECT_FALSE(run.outcomes[i].performed) << "budget-exceeding recal " << i;
  }
  EXPECT_EQ(run.stats.recalibrations, 1u);
  EXPECT_EQ(run.stats.recal_traces_spent, 12u);
  EXPECT_EQ(run.stats.drift_events, run.outcomes.size());
}

TEST_F(DriftLoopFixture, RegistryPublicationStampsResultsCoherently) {
  const auto root = std::filesystem::path(::testing::TempDir()) / "sidis_drift_reg";
  std::filesystem::remove_all(root);
  ModelRegistry registry(root);

  sim::AcquisitionCampaign drifting{aged_device(0.3, 0.0),
                                    sim::SessionContext::make(0)};
  const sim::TraceSet windows = drifting_stream(drifting, 360, 0x5e61);
  const LoopRun run =
      run_drift_loop(windows, drifting, 2, default_policy(), &registry, model());

  ASSERT_GE(run.outcomes.size(), 1u);
  const RecalOutcome& first = run.outcomes.front();
  ASSERT_TRUE(first.performed);
  EXPECT_EQ(first.registry_version, 1);
  // The published stamp is the stored artifact's checksum -- verify against
  // the registry's own integrity check.
  const ArtifactInfo info = registry.info(default_policy().registry_name, 1);
  EXPECT_EQ(first.stamp, info.checksum);
  EXPECT_NE(first.stamp, 0u);

  // Every result is stamped with the stage that classified it: stamp 0
  // before the first publication, the artifact checksum afterwards, with a
  // single switch point (batch-boundary swaps -> no interleaving).
  std::size_t switch_count = 0;
  for (std::size_t i = 1; i < run.records.size(); ++i) {
    if (run.records[i].model_stamp != run.records[i - 1].model_stamp) ++switch_count;
  }
  EXPECT_EQ(run.records.front().model_stamp, 0u);
  EXPECT_EQ(switch_count, run.outcomes.size() -
                              static_cast<std::size_t>(std::count_if(
                                  run.outcomes.begin(), run.outcomes.end(),
                                  [](const RecalOutcome& o) { return !o.performed; })));
  // The registry round-trips the published model bit-exactly.
  const core::HierarchicalDisassembler reloaded =
      registry.load(default_policy().registry_name, 1);
  EXPECT_TRUE(reloaded.has_training_moments());
}

TEST_F(DriftLoopFixture, LoopIsBitIdenticalAcrossWorkerCounts) {
  sim::AcquisitionCampaign drifting{aged_device(0.28, 0.0),
                                    sim::SessionContext::make(0)};
  const sim::TraceSet windows = drifting_stream(drifting, 300, 0xd37e6);

  std::vector<LoopRun> runs;
  for (std::size_t workers : {1u, 2u, 8u}) {
    runs.push_back(
        run_drift_loop(windows, drifting, workers, default_policy(), nullptr, model()));
  }
  for (std::size_t w = 1; w < runs.size(); ++w) {
    SCOPED_TRACE("worker variant " + std::to_string(w));
    ASSERT_EQ(runs[w].records.size(), runs[0].records.size());
    for (std::size_t i = 0; i < runs[0].records.size(); ++i) {
      ASSERT_EQ(runs[w].records[i].class_idx, runs[0].records[i].class_idx)
          << "class diverged at window " << i;
      ASSERT_EQ(runs[w].records[i].verdict, runs[0].records[i].verdict);
      ASSERT_EQ(runs[w].records[i].model_stamp, runs[0].records[i].model_stamp);
    }
    EXPECT_EQ(runs[w].event_observations, runs[0].event_observations);
    EXPECT_EQ(runs[w].stats.recal_traces_spent, runs[0].stats.recal_traces_spent);
    EXPECT_EQ(runs[w].final_z_rms, runs[0].final_z_rms) << "z_rms not bit-identical";
  }
}

TEST_F(DriftLoopFixture, RefitModeNeedsABaseCorpusAndThenWorks) {
  sim::AcquisitionCampaign drifting{aged_device(0.3, 0.0),
                                    sim::SessionContext::make(0)};
  StreamingDisassembler engine(
      [m = model()](const sim::Trace& t) { return m->classify(t); });
  CampaignCalibrationSource source(drifting, drift_classes(), 3, 0xf17);
  RecalPolicy refit = default_policy();
  refit.mode = core::RecalMode::kRefit;
  EXPECT_THROW(RecalibrationScheduler(engine, model(), source, refit),
               std::invalid_argument);

  const core::ProfilingData base = profile_clean(20);
  RecalibrationScheduler scheduler(engine, model(), source, refit, nullptr, &base);
  DriftMonitor monitor(model());
  source.set_progress(1.0);
  DriftEvent event;  // contents are telemetry-only; any event drives the path
  const RecalOutcome outcome = scheduler.on_drift(event, monitor);
  ASSERT_TRUE(outcome.performed) << outcome.reason;
  EXPECT_EQ(outcome.traces_spent, refit.traces_per_class * drift_classes().size());
  // The refit model still answers and kept its moments (the monitor rebased
  // onto it without throwing).
  EXPECT_TRUE(scheduler.active_model()->has_training_moments());
  EXPECT_EQ(monitor.observations(), 0u);  // rebased
}

TEST_F(DriftLoopFixture, RenormEscalatesToRefitWhenTheAlarmRefiresBackToBack) {
  const core::ProfilingData base = profile_clean(20);
  RecalPolicy policy = default_policy();
  policy.escalate_to_refit = true;

  // The escalation arm runs refit_classifiers, so the base corpus is as
  // mandatory as for mode == kRefit.
  {
    sim::AcquisitionCampaign clean{sim::DeviceModel::make(0),
                                   sim::SessionContext::make(0)};
    StreamingDisassembler engine(
        [m = model()](const sim::Trace& t) { return m->classify(t); });
    CampaignCalibrationSource source(clean, drift_classes(), 3, 0xe5);
    EXPECT_THROW(RecalibrationScheduler(engine, model(), source, policy),
                 std::invalid_argument);
  }

  const std::vector<RecalOutcome> outcomes = run_escalation_loop(policy, base, 2);
  ASSERT_EQ(outcomes.size(), 2u) << "persistent shift re-alarmed fewer than twice";
  // First event: the cheap arm, as configured.
  EXPECT_TRUE(outcomes[0].performed) << outcomes[0].reason;
  EXPECT_EQ(outcomes[0].mode, core::RecalMode::kRenorm);
  EXPECT_FALSE(outcomes[0].escalated);
  // Second event fires at the rebased monitor's earliest honest moment --
  // inside the default escalation window -- so the scheduler concludes the
  // renorm did not take and runs the refit arm instead.
  EXPECT_TRUE(outcomes[1].performed) << outcomes[1].reason;
  EXPECT_EQ(outcomes[1].mode, core::RecalMode::kRefit);
  EXPECT_TRUE(outcomes[1].escalated);
}

TEST_F(DriftLoopFixture, EscalationWindowBoundsWhatCountsAsBackToBack) {
  const core::ProfilingData base = profile_clean(20);
  RecalPolicy policy = default_policy();
  policy.escalate_to_refit = true;
  // Earliest honest re-fire after a rebase is cooldown (64) observations
  // away; a 10-observation window therefore never classifies it as
  // back-to-back, and the policy's configured arm keeps running.
  policy.escalation_window = 10;

  const std::vector<RecalOutcome> outcomes = run_escalation_loop(policy, base, 2);
  ASSERT_EQ(outcomes.size(), 2u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes[i].performed) << outcomes[i].reason;
    EXPECT_EQ(outcomes[i].mode, core::RecalMode::kRenorm) << "event " << i;
    EXPECT_FALSE(outcomes[i].escalated) << "event " << i;
  }
}

}  // namespace
}  // namespace sidis::runtime

// Fuzz/property tests for the binary codec and the functional simulator:
// the decoder must be total (decode-or-reject, never crash) over the whole
// 16-bit opcode space, decoding must be a projection (decode . encode .
// decode == decode), and execution must be deterministic.
#include <gtest/gtest.h>

#include <random>

#include "avr/codec.hpp"
#include "avr/cpu.hpp"
#include "avr/program.hpp"

namespace sidis::avr {
namespace {

TEST(CodecFuzz, DecoderIsTotalOverTheOpcodeSpace) {
  // Sweep all 65536 first words (with a plausible second word in case the
  // decoder wants one).  Every outcome must be "decoded" or "nullopt" --
  // never a crash, and decoded results must re-encode to the same bits.
  std::size_t decoded_count = 0;
  for (std::uint32_t w = 0; w <= 0xFFFF; ++w) {
    const std::uint16_t code[2] = {static_cast<std::uint16_t>(w), 0x0123};
    const auto d = decode(code, 0);
    if (!d) continue;
    ++decoded_count;
    const auto re = encode(d->instr);
    ASSERT_EQ(re.size(), d->words) << "word " << w;
    EXPECT_EQ(re[0], static_cast<std::uint16_t>(w)) << "word " << w;
    if (d->words == 2) EXPECT_EQ(re[1], 0x0123) << "word " << w;
  }
  // The AVR map is dense: most of the space decodes.
  EXPECT_GT(decoded_count, 50000u);
}

TEST(CodecFuzz, DecodeIsAProjection) {
  std::mt19937_64 rng(0xF022);
  for (int rep = 0; rep < 2000; ++rep) {
    const Instruction in = random_any_instance(rng);
    const auto w1 = encode(in);
    const auto d1 = decode(w1, 0);
    ASSERT_TRUE(d1.has_value()) << to_string(in);
    const auto w2 = encode(d1->instr);
    EXPECT_EQ(w2, w1) << to_string(in);
    const auto d2 = decode(w2, 0);
    ASSERT_TRUE(d2.has_value());
    EXPECT_EQ(d2->instr, d1->instr) << to_string(in);
  }
}

TEST(CodecFuzz, PrettifyPreservesEncoding) {
  std::mt19937_64 rng(0xF055);
  for (int rep = 0; rep < 2000; ++rep) {
    const Instruction in = canonicalize(random_any_instance(rng));
    const Instruction pretty = prettify(in);
    EXPECT_EQ(encode(pretty), encode(in)) << to_string(in);
  }
}

TEST(CpuFuzz, RandomLinearProgramsExecuteDeterministically) {
  std::mt19937_64 rng(0xC9);
  for (int rep = 0; rep < 60; ++rep) {
    // A random linear-safe program of 20 instructions.
    Program p;
    while (p.size() < 20) {
      const Instruction in = random_any_instance(rng);
      if (is_linear_safe(in)) p.push_back(in);
    }
    const auto run_once = [&](Cpu& cpu) {
      cpu.load_program(p);
      for (unsigned r = 0; r < 32; ++r) cpu.set_reg(r, static_cast<std::uint8_t>(r * 7));
      return cpu.run(64);
    };
    Cpu a, b;
    const auto ra = run_once(a);
    const auto rb = run_once(b);
    ASSERT_EQ(ra.size(), rb.size());
    ASSERT_EQ(ra.size(), p.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].opcode, rb[i].opcode);
      EXPECT_EQ(ra[i].rd_after, rb[i].rd_after);
      EXPECT_EQ(ra[i].sreg_after, rb[i].sreg_after);
      EXPECT_EQ(ra[i].cycles, rb[i].cycles);
    }
    EXPECT_EQ(a.cycle_count(), b.cycle_count());
    EXPECT_TRUE(a.halted());
  }
}

TEST(CpuFuzz, CycleCountsMatchDatasheetBaseCosts) {
  // For linear-safe instructions (no skips/branches taken), the consumed
  // cycles must equal the mnemonic's datasheet base cost.
  std::mt19937_64 rng(0xCC);
  for (int rep = 0; rep < 500; ++rep) {
    Instruction in = random_any_instance(rng);
    if (!is_linear_safe(in)) continue;
    Cpu cpu;
    cpu.load_program(std::vector<Instruction>{in});
    const ExecRecord rec = cpu.step();
    EXPECT_EQ(rec.cycles, info(canonicalize(in).mnemonic).base_cycles) << to_string(in);
  }
}

TEST(CpuFuzz, ComparesNeverWriteBack) {
  std::mt19937_64 rng(0xCF);
  for (Mnemonic m : {Mnemonic::kCp, Mnemonic::kCpc, Mnemonic::kCpi}) {
    const auto cls = class_index(m);
    ASSERT_TRUE(cls.has_value());
    for (int rep = 0; rep < 50; ++rep) {
      const Instruction in = random_instance(*cls, rng);
      Cpu cpu;
      cpu.load_program(std::vector<Instruction>{in});
      std::uniform_int_distribution<int> byte(0, 255);
      for (unsigned r = 0; r < 32; ++r) cpu.set_reg(r, static_cast<std::uint8_t>(byte(rng)));
      const std::uint8_t before = cpu.reg(in.rd);
      cpu.step();
      EXPECT_EQ(cpu.reg(in.rd), before) << to_string(in);
    }
  }
}

TEST(CpuFuzz, SregOnlyTouchedByArchitecturalWriters) {
  // MOV/MOVW/SWAP/LDI and all loads/stores leave SREG untouched.
  std::mt19937_64 rng(0x5E);
  for (Mnemonic m : {Mnemonic::kMov, Mnemonic::kMovw, Mnemonic::kSwap, Mnemonic::kLdi,
                     Mnemonic::kSts, Mnemonic::kLds}) {
    const auto cls = m == Mnemonic::kSts
                         ? class_index(m, AddrMode::kAbs)
                         : (m == Mnemonic::kLds ? class_index(m, AddrMode::kAbs)
                                                : class_index(m));
    ASSERT_TRUE(cls.has_value());
    for (int rep = 0; rep < 30; ++rep) {
      const Instruction in = random_instance(*cls, rng);
      Cpu cpu;
      cpu.load_program(std::vector<Instruction>{in});
      cpu.set_sreg(0xA5);
      cpu.step();
      EXPECT_EQ(cpu.sreg(), 0xA5) << to_string(in);
    }
  }
}

TEST(CpuFuzz, PointerWrapWritesSomewhereSafe) {
  Instruction st;
  st.mnemonic = Mnemonic::kSt;
  st.mode = AddrMode::kXPostInc;
  st.rr = 5;
  Cpu cpu;
  cpu.load_program(std::vector<Instruction>{st});
  cpu.set_x(0xFFFF);
  cpu.set_reg(5, 0x77);
  EXPECT_NO_THROW(cpu.step());
  EXPECT_EQ(cpu.x(), 0x0000);  // post-increment wrapped
}

}  // namespace
}  // namespace sidis::avr

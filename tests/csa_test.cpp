// Covariate-shift adaptation battery: the three Table-3 pipeline recipes
// round-trip through the template serializer, and the Sec.-5.6 CSA
// re-normalization (FeaturePipeline::renormalized) demonstrably recovers
// accuracy on a gain-shifted corpus without retraining the classifier.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/csa.hpp"
#include "core/serialize.hpp"
#include "features/pipeline.hpp"
#include "ml/discriminant.hpp"

namespace sidis::core {
namespace {

constexpr int kClasses = 3;

/// Amplitude-ladder microcosm: class c carries a burst of height 0.5 * (c+1)
/// at samples 95..105, so a multiplicative gain slides every class toward
/// its neighbour one rung up -- the cheapest synthetic stand-in for a
/// cross-device gain corner that actually breaks argmax accuracy (a
/// symmetric +-1 coding would survive any positive gain).
sim::Trace ladder_trace(int cls, int program, std::mt19937_64& rng) {
  std::normal_distribution<double> noise(0.0, 0.05);
  sim::Trace t;
  t.samples.assign(315, 0.0);
  for (double& v : t.samples) v = noise(rng);
  const double height = 0.5 * static_cast<double>(cls + 1);
  for (int i = 95; i < 105; ++i) t.samples[static_cast<std::size_t>(i)] += height;
  t.meta.class_idx = static_cast<std::size_t>(cls);
  t.meta.program_id = program;
  return t;
}

sim::TraceSet ladder_set(int cls, int num_programs, std::size_t per_program,
                         std::mt19937_64& rng) {
  sim::TraceSet out;
  for (int p = 0; p < num_programs; ++p) {
    for (std::size_t i = 0; i < per_program; ++i) out.push_back(ladder_trace(cls, p, rng));
  }
  return out;
}

/// The deployment device's gain corner: every sample scaled by `gain`.
sim::TraceSet shifted(const sim::TraceSet& in, double gain) {
  sim::TraceSet out = in;
  for (sim::Trace& t : out) {
    for (double& v : t.samples) v *= gain;
  }
  return out;
}

features::LabeledTraces labeled(const std::vector<sim::TraceSet>& sets) {
  features::LabeledTraces input;
  for (std::size_t c = 0; c < sets.size(); ++c) {
    input.labels.push_back(static_cast<int>(c));
    input.sets.push_back(&sets[c]);
  }
  return input;
}

/// Additive-gap ladder: class c carries a burst of height gain * (0.5 +
/// 0.35 * c).  Unlike the multiplicative ladder above, the rung *spacing*
/// stretches with the device gain, so a profile built at one gain misreads
/// rung identity on a device at another gain -- while a pool spanning the
/// gain range brackets every intermediate device.  This is the microcosm of
/// the multi-device acquisition sweep's zero-shot claim.
sim::Trace rung_trace(int cls, double gain, int program, std::mt19937_64& rng) {
  std::normal_distribution<double> noise(0.0, 0.05);
  sim::Trace t;
  t.samples.assign(315, 0.0);
  for (double& v : t.samples) v = noise(rng);
  const double height = gain * (0.5 + 0.45 * static_cast<double>(cls));
  for (int i = 95; i < 105; ++i) t.samples[static_cast<std::size_t>(i)] += height;
  t.meta.class_idx = static_cast<std::size_t>(cls);
  t.meta.program_id = program;
  return t;
}

sim::TraceSet rung_set(int cls, double gain, int num_programs,
                       std::size_t per_program, std::mt19937_64& rng) {
  sim::TraceSet out;
  for (int p = 0; p < num_programs; ++p) {
    for (std::size_t i = 0; i < per_program; ++i) {
      out.push_back(rung_trace(cls, gain, p, rng));
    }
  }
  return out;
}

TEST(ZeroShotGain, PooledGainProfileBeatsEveryBudgetMatchedSingle) {
  // Two profiling devices at the gain rails, one unseen field device in
  // between.  Budgets are matched: each single-gain profile gets as many
  // traces as the whole pool, so any pooled win is diversity, not volume.
  const std::vector<double> kPoolGains = {0.7, 1.4};
  const double kFieldGain = 1.05;
  constexpr std::size_t kPerGain = 12;

  std::mt19937_64 rng{15};
  std::vector<sim::TraceSet> field_sets;
  for (int c = 0; c < kClasses; ++c) {
    field_sets.push_back(rung_set(c, kFieldGain, 3, 10, rng));
  }

  features::PipelineConfig cfg = csa_without_norm_config();
  cfg.pca_components = 8;
  cfg.workers = 1;
  ml::DiscriminantConfig qcfg;
  qcfg.shrinkage = 0.1;

  const auto field_accuracy = [&](const std::vector<sim::TraceSet>& train) {
    const features::FeaturePipeline pipeline =
        features::FeaturePipeline::fit(labeled(train), cfg);
    ml::Qda qda{qcfg};
    qda.fit(pipeline.transform(labeled(train)));
    return qda.accuracy(pipeline.transform(labeled(field_sets)));
  };

  std::vector<sim::TraceSet> pooled;
  for (int c = 0; c < kClasses; ++c) {
    sim::TraceSet set;
    for (const double gain : kPoolGains) {
      for (sim::Trace& t : rung_set(c, gain, 3, kPerGain, rng)) {
        set.push_back(std::move(t));
      }
    }
    pooled.push_back(std::move(set));
  }
  const double pooled_acc = field_accuracy(pooled);

  double best_single = 0.0;
  for (const double gain : kPoolGains) {
    std::vector<sim::TraceSet> single;
    for (int c = 0; c < kClasses; ++c) {
      single.push_back(rung_set(c, gain, 3, kPerGain * kPoolGains.size(), rng));
    }
    const double acc = field_accuracy(single);
    best_single = std::max(best_single, acc);
  }

  EXPECT_GE(pooled_acc, 0.75)
      << "gain pool spanning the field device failed to generalize "
      << "(pooled " << pooled_acc << ", best single " << best_single << ")";
  EXPECT_GE(pooled_acc, best_single + 0.25)
      << "pooled profile did not clearly beat the best single-gain profile: "
      << pooled_acc << " vs " << best_single;
}

TEST(CsaConfigs, TableThreeRecipesAreWiredAsDocumented) {
  const features::PipelineConfig initial = without_csa_config();
  EXPECT_EQ(initial.kl_threshold, kInitialKlThreshold);
  EXPECT_FALSE(initial.per_trace_normalization);
  EXPECT_FALSE(initial.adaptive_threshold);
  EXPECT_TRUE(initial.allow_fallback_points);

  const features::PipelineConfig no_norm = csa_without_norm_config();
  EXPECT_EQ(no_norm.kl_threshold, kCsaKlThreshold);
  EXPECT_FALSE(no_norm.per_trace_normalization);

  const features::PipelineConfig full = csa_config();
  EXPECT_EQ(full.kl_threshold, kCsaKlThreshold);
  EXPECT_TRUE(full.per_trace_normalization);
  EXPECT_LT(full.kl_threshold, initial.kl_threshold);
}

TEST(CsaConfigs, AllThreeRecipesRoundTripThroughTheSerializer) {
  std::mt19937_64 rng{11};
  std::vector<sim::TraceSet> sets;
  for (int c = 0; c < kClasses; ++c) sets.push_back(ladder_set(c, 3, 20, rng));
  sim::Trace probe = ladder_trace(1, 0, rng);

  for (features::PipelineConfig cfg :
       {without_csa_config(), csa_without_norm_config(), csa_config()}) {
    cfg.pca_components = 8;
    cfg.workers = 1;
    const features::FeaturePipeline fitted =
        features::FeaturePipeline::fit(labeled(sets), cfg);

    std::stringstream stream;
    save_pipeline(stream, fitted);
    const features::FeaturePipeline loaded = load_pipeline(stream);

    // The distinguishing Table-3 settings survive the round trip...
    EXPECT_EQ(loaded.config().kl_threshold, cfg.kl_threshold);
    EXPECT_EQ(loaded.config().per_trace_normalization, cfg.per_trace_normalization);
    EXPECT_EQ(loaded.config().adaptive_threshold, cfg.adaptive_threshold);
    EXPECT_EQ(loaded.config().allow_fallback_points, cfg.allow_fallback_points);
    EXPECT_EQ(loaded.grid_size(), fitted.grid_size());
    ASSERT_EQ(loaded.unified_points().size(), fitted.unified_points().size());
    // ...and so does the fitted transform, bit for bit.
    EXPECT_EQ(loaded.transform(probe), fitted.transform(probe));
  }
}

TEST(Renormalization, RecoversAccuracyOnAGainShiftedCorpus) {
  std::mt19937_64 rng{12};
  std::vector<sim::TraceSet> train_sets, test_sets;
  for (int c = 0; c < kClasses; ++c) {
    train_sets.push_back(ladder_set(c, 3, 20, rng));
    test_sets.push_back(ladder_set(c, 3, 10, rng));
  }

  features::PipelineConfig cfg = csa_without_norm_config();
  cfg.pca_components = 8;
  cfg.workers = 1;
  const features::FeaturePipeline pipeline =
      features::FeaturePipeline::fit(labeled(train_sets), cfg);

  ml::DiscriminantConfig qcfg;
  qcfg.shrinkage = 0.1;
  ml::Qda qda{qcfg};
  qda.fit(pipeline.transform(labeled(train_sets)));

  // Within-session sanity: the ladder separates cleanly.
  std::vector<sim::TraceSet> shifted_tests;
  const double kGain = 1.35;
  sim::TraceSet recal;  // class-balanced, unlabeled recalibration corpus
  for (int c = 0; c < kClasses; ++c) {
    shifted_tests.push_back(shifted(test_sets[static_cast<std::size_t>(c)], kGain));
    for (std::size_t i = 0; i < 8; ++i) {
      recal.push_back(shifted_tests.back()[i]);
    }
  }
  const double clean = qda.accuracy(pipeline.transform(labeled(test_sets)));
  ASSERT_GE(clean, 0.95) << "ladder corpus is not separable to begin with";

  // The gain corner slides every class up the ladder: accuracy collapses.
  const double broken = qda.accuracy(pipeline.transform(labeled(shifted_tests)));
  EXPECT_LT(broken, clean - 0.25)
      << "gain shift did not hurt -- the recovery below proves nothing";

  // CSA re-normalization from the small recal corpus, classifier untouched.
  const features::FeaturePipeline recovered = pipeline.renormalized(recal, true);
  const double after = qda.accuracy(recovered.transform(labeled(shifted_tests)));
  EXPECT_GE(after, clean - 0.05)
      << "re-normalization failed to recover within-session accuracy: "
      << broken << " -> " << after << " (clean " << clean << ")";
}

TEST(Renormalization, SmallBudgetShrinksTowardTheTrainingScaler) {
  // With one recalibration trace the shrinkage weight alpha = n / (n + 4)
  // keeps 80% of the training mean -- the re-centred scaler must land
  // strictly between the training mean and the observed corpus mean.
  std::mt19937_64 rng{13};
  std::vector<sim::TraceSet> sets;
  for (int c = 0; c < kClasses; ++c) sets.push_back(ladder_set(c, 3, 20, rng));
  features::PipelineConfig cfg = csa_without_norm_config();
  cfg.pca_components = 8;
  cfg.workers = 1;
  const features::FeaturePipeline pipeline =
      features::FeaturePipeline::fit(labeled(sets), cfg);

  sim::TraceSet one;
  one.push_back(shifted(sets[2], 1.5)[0]);
  const features::FeaturePipeline small = pipeline.renormalized(one);
  const features::FeaturePipeline big = [&] {
    sim::TraceSet many;
    for (int i = 0; i < 30; ++i) many.push_back(shifted(sets[2], 1.5)[static_cast<std::size_t>(i)]);
    return pipeline.renormalized(many);
  }();
  double moved_small = 0.0, moved_big = 0.0;
  for (std::size_t c = 0; c < pipeline.scaler().dim(); ++c) {
    moved_small += std::abs(small.scaler().mean()[c] - pipeline.scaler().mean()[c]);
    moved_big += std::abs(big.scaler().mean()[c] - pipeline.scaler().mean()[c]);
  }
  EXPECT_GT(moved_small, 0.0) << "a budget of one must still move the scaler";
  EXPECT_GT(moved_big, moved_small)
      << "larger budgets should trust the observed means more";
  // Re-normalization never touches selection or PCA.
  EXPECT_EQ(small.unified_points().size(), pipeline.unified_points().size());
  EXPECT_EQ(small.pca().num_components(), pipeline.pca().num_components());
}

TEST(Renormalization, ErrorPathsAreExplicit) {
  std::mt19937_64 rng{14};
  std::vector<sim::TraceSet> sets;
  for (int c = 0; c < 2; ++c) sets.push_back(ladder_set(c, 3, 15, rng));

  features::PipelineConfig cfg = csa_without_norm_config();
  cfg.pca_components = 6;
  cfg.workers = 1;
  const features::FeaturePipeline fitted =
      features::FeaturePipeline::fit(labeled(sets), cfg);
  EXPECT_THROW((void)fitted.renormalized(sim::TraceSet{}), std::invalid_argument);

  features::PipelineConfig raw = cfg;
  raw.column_standardization = false;
  const features::FeaturePipeline unscaled =
      features::FeaturePipeline::fit(labeled(sets), raw);
  EXPECT_THROW((void)unscaled.renormalized(sets[0]), std::logic_error);

  const features::FeaturePipeline unfitted;
  EXPECT_THROW((void)unfitted.renormalized(sets[0]), std::runtime_error);
}

}  // namespace
}  // namespace sidis::core

// Multimodal fusion battery: the equivalence and degradation contracts of
// core::FusedDisassembler and its runtime wiring.
//
//  * weight corner (1, 0) is bit-identical to the power-only classifier --
//    the guarantee that lets a fused serving tier consume single-channel
//    templates with zero behavioural diff;
//  * fused classify_batch is bit-identical to fused scalar classify across
//    batch sizes, and streaming verdicts are worker- and shard-count
//    invariant (fusion adds no scheduling-dependent arithmetic);
//  * one channel recalibrates while the other keeps serving, and the fused
//    drift monitor attributes drift to the channel that actually moved.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "core/csa.hpp"
#include "core/fusion.hpp"
#include "runtime/drift.hpp"
#include "runtime/fleet.hpp"
#include "runtime/recal.hpp"
#include "runtime/streaming.hpp"
#include "sim/acquisition.hpp"

namespace sidis {
namespace {

using core::Disassembly;
using core::FusedDisassembler;
using core::FusionMode;
using core::HierarchicalDisassembler;
using core::LevelFusion;

sim::AcquisitionOptions paired_options() {
  sim::AcquisitionOptions o;
  o.em.enabled = true;
  return o;
}

/// Shared profiled world: one paired campaign, per-channel models trained
/// once for the whole battery (training dominates the runtime).
struct FusionWorld {
  sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                    sim::SessionContext::make(0),
                                    sim::LeakageConfig{}, sim::ScopeConfig{},
                                    paired_options()};
  std::vector<std::size_t> classes;
  std::map<std::size_t, sim::TraceSet> paired;
  std::shared_ptr<const HierarchicalDisassembler> power;
  std::shared_ptr<const HierarchicalDisassembler> em;
  sim::TraceSet probes;  ///< mixed-class paired evaluation windows

  FusionWorld() {
    std::mt19937_64 rng(41);
    core::ProfilingData power_data, em_data;
    for (avr::Mnemonic m : {avr::Mnemonic::kAdd, avr::Mnemonic::kAnd,
                            avr::Mnemonic::kLdi, avr::Mnemonic::kCom,
                            avr::Mnemonic::kLsr}) {
      const std::size_t c = *avr::class_index(m);
      classes.push_back(c);
      paired[c] = campaign.capture_class(c, 60, 5, rng);
      power_data.classes[c] = sim::channel_views(paired[c], sim::Channel::kPower);
      em_data.classes[c] = sim::channel_views(paired[c], sim::Channel::kEm);
    }
    core::HierarchicalConfig cfg;
    cfg.pipeline = core::csa_config();
    cfg.pipeline.pca_components = 10;
    cfg.group_components = 8;
    cfg.instruction_components = 8;
    auto p = HierarchicalDisassembler::train(power_data, cfg);
    p.calibrate_reject(power_data);
    auto e = HierarchicalDisassembler::train(em_data, cfg);
    e.calibrate_reject(em_data);
    power = std::make_shared<const HierarchicalDisassembler>(std::move(p));
    em = std::make_shared<const HierarchicalDisassembler>(std::move(e));
    for (int i = 0; i < 64; ++i) {
      const std::size_t c = classes[static_cast<std::size_t>(i) % classes.size()];
      probes.push_back(campaign.capture_trace(avr::random_instance(c, rng),
                                              sim::ProgramContext::make(i % 5),
                                              rng));
    }
  }
};

const FusionWorld& world() {
  static FusionWorld w;
  return w;
}

FusedDisassembler balanced_fused() {
  return FusedDisassembler(world().power, world().em,
                           LevelFusion{FusionMode::kScore, 0.5, 0.5},
                           LevelFusion{FusionMode::kScore, 0.5, 0.5});
}

void expect_same(const Disassembly& a, const Disassembly& b) {
  EXPECT_EQ(a.group, b.group);
  EXPECT_EQ(a.class_idx, b.class_idx);
  EXPECT_EQ(a.rd, b.rd);
  EXPECT_EQ(a.rr, b.rr);
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.margin_headroom, b.margin_headroom);  // bit-exact, not NEAR
  EXPECT_EQ(a.score_headroom, b.score_headroom);
  ASSERT_EQ(a.log_posterior.size(), b.log_posterior.size());
  for (std::size_t i = 0; i < a.log_posterior.size(); ++i) {
    EXPECT_EQ(a.log_posterior[i], b.log_posterior[i]);
  }
}

TEST(FusionEquivalence, PowerOnlyWeightsAreBitIdenticalToPowerModel) {
  const FusedDisassembler fused(world().power, world().em,
                                LevelFusion{FusionMode::kScore, 1.0, 0.0},
                                LevelFusion{FusionMode::kScore, 1.0, 0.0});
  ASSERT_TRUE(fused.degenerate_to(sim::Channel::kPower));
  for (const sim::Trace& t : world().probes) {
    const sim::Trace pview = sim::channel_view(t, sim::Channel::kPower);
    expect_same(world().power->classify(pview), fused.classify(t));
    expect_same(world().power->classify_scored(pview), fused.classify_scored(t));
  }
}

TEST(FusionEquivalence, EmOnlyWeightsAreBitIdenticalToEmModel) {
  const FusedDisassembler fused(world().power, world().em,
                                LevelFusion{FusionMode::kScore, 0.0, 1.0},
                                LevelFusion{FusionMode::kScore, 0.0, 1.0});
  ASSERT_TRUE(fused.degenerate_to(sim::Channel::kEm));
  for (const sim::Trace& t : world().probes) {
    const sim::Trace eview = sim::channel_view(t, sim::Channel::kEm);
    expect_same(world().em->classify_scored(eview), fused.classify_scored(t));
  }
}

TEST(FusionEquivalence, FusedBatchMatchesFusedScalarAcrossBatchSizes) {
  const FusedDisassembler fused = balanced_fused();
  std::vector<Disassembly> scalar, scalar_scored;
  for (const sim::Trace& t : world().probes) {
    scalar.push_back(fused.classify(t));
    scalar_scored.push_back(fused.classify_scored(t));
  }
  for (std::size_t batch : {std::size_t{1}, std::size_t{7}, std::size_t{16},
                            std::size_t{64}}) {
    for (std::size_t start = 0; start < world().probes.size(); start += batch) {
      const std::size_t end = std::min(start + batch, world().probes.size());
      sim::TraceSet chunk(world().probes.begin() + static_cast<long>(start),
                          world().probes.begin() + static_cast<long>(end));
      const std::vector<Disassembly> got = fused.classify_batch(chunk);
      const std::vector<Disassembly> got_scored = fused.classify_batch_scored(chunk);
      ASSERT_EQ(got.size(), chunk.size());
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        expect_same(scalar[start + i], got[i]);
        expect_same(scalar_scored[start + i], got_scored[i]);
      }
    }
  }
}

TEST(FusionEquivalence, MixedPresenceBatchMatchesScalar) {
  const FusedDisassembler fused = balanced_fused();
  // Strip the EM half from every third window: the batch path must fuse the
  // paired windows and degrade the bare ones exactly like the scalar path.
  sim::TraceSet mixed = world().probes;
  for (std::size_t i = 0; i < mixed.size(); i += 3) mixed[i].em_samples.clear();
  const std::vector<Disassembly> batch = fused.classify_batch_scored(mixed);
  ASSERT_EQ(batch.size(), mixed.size());
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    expect_same(fused.classify_scored(mixed[i]), batch[i]);
    if (!mixed[i].has_em() && batch[i].verdict == core::Verdict::kOk) {
      ADD_FAILURE() << "bare power window must be flagged degraded";
    }
  }
}

std::vector<Disassembly> stream_all(const FusedDisassembler& fused,
                                    std::size_t workers) {
  auto model = std::make_shared<const FusedDisassembler>(
      FusedDisassembler(fused.power_model(), fused.em_model(),
                        fused.group_fusion(), fused.instruction_fusion()));
  runtime::StreamingConfig cfg;
  cfg.workers = workers;
  runtime::StreamingDisassembler engine(
      runtime::StreamingDisassembler::make_fused_scored_stage(model), cfg);
  for (const sim::Trace& t : world().probes) {
    EXPECT_TRUE(engine.submit(t).has_value());
  }
  std::vector<Disassembly> out;
  for (runtime::StreamResult& r : engine.drain()) out.push_back(std::move(r.value));
  return out;
}

TEST(FusionRuntime, StreamingVerdictsAreWorkerCountInvariant) {
  const FusedDisassembler fused = balanced_fused();
  const std::vector<Disassembly> one = stream_all(fused, 1);
  ASSERT_EQ(one.size(), world().probes.size());
  for (std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    const std::vector<Disassembly> many = stream_all(fused, workers);
    ASSERT_EQ(many.size(), one.size());
    for (std::size_t i = 0; i < one.size(); ++i) expect_same(one[i], many[i]);
  }
}

std::vector<Disassembly> fleet_all(std::size_t shards) {
  auto model = std::make_shared<const FusedDisassembler>(balanced_fused());
  runtime::FleetConfig cfg;
  cfg.shards = shards;
  cfg.workers_per_shard = 2;
  runtime::FleetFrontend fleet(
      runtime::StreamingDisassembler::make_fused_scored_stage(model), cfg);
  const auto id = fleet.open_stream();
  std::vector<Disassembly> out;
  for (const sim::Trace& t : world().probes) {
    while (fleet.submit(id, t).status != runtime::AdmitStatus::kAccepted) {
      while (auto r = fleet.poll(id)) out.push_back(std::move(r->value));
    }
  }
  // poll() pumps the shard engines, so busy-polling drains the in-flight
  // tail; close_stream would discard undelivered results.
  while (out.size() < world().probes.size()) {
    if (auto r = fleet.poll(id)) out.push_back(std::move(r->value));
  }
  fleet.close_stream(id);
  return out;
}

TEST(FusionRuntime, FleetVerdictsAreShardCountInvariant) {
  const std::vector<Disassembly> one = fleet_all(1);
  ASSERT_EQ(one.size(), world().probes.size());
  for (std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    const std::vector<Disassembly> many = fleet_all(shards);
    ASSERT_EQ(many.size(), one.size());
    for (std::size_t i = 0; i < one.size(); ++i) expect_same(one[i], many[i]);
  }
}

TEST(FusionRuntime, OneChannelRecalibratesWhileTheOtherServes) {
  auto current = std::make_shared<FusedDisassembler>(balanced_fused());
  runtime::StreamingDisassembler engine(
      runtime::StreamingDisassembler::make_fused_scored_stage(current));

  runtime::CampaignCalibrationSource inner(world().campaign, world().classes,
                                           /*num_programs=*/5, /*seed=*/99);
  runtime::ChannelCalibrationSource em_source(inner, sim::Channel::kEm);
  runtime::RecalPolicy policy;
  policy.traces_per_class = 4;
  runtime::RecalibrationScheduler scheduler(engine, world().em, em_source,
                                            policy);

  // The publisher rebinds ONLY the EM channel: a fresh fused model keeps the
  // power channel pointer and gets published as the engine's next stage.
  const std::shared_ptr<const HierarchicalDisassembler> old_power =
      current->power_model();
  const std::shared_ptr<const HierarchicalDisassembler> old_em =
      current->em_model();
  std::shared_ptr<const FusedDisassembler> published;
  scheduler.set_publisher(
      [&](std::shared_ptr<const HierarchicalDisassembler> em_model,
          std::uint64_t stamp) {
        auto next = std::make_shared<const FusedDisassembler>(
            FusedDisassembler(current->power_model(), std::move(em_model),
                              current->group_fusion(),
                              current->instruction_fusion()));
        published = next;
        engine.swap_classifier(
            [next](const sim::Trace& t) { return next->classify_scored(t); },
            stamp);
      });

  runtime::FusedDriftMonitor monitor{
      std::shared_ptr<const FusedDisassembler>(current)};
  runtime::DriftEvent event;
  event.trigger = runtime::DriftTrigger::kFeatureShift;
  const runtime::RecalOutcome outcome =
      scheduler.on_drift(event, *monitor.em_monitor());
  ASSERT_TRUE(outcome.performed) << outcome.reason;
  ASSERT_NE(published, nullptr);
  // Power channel untouched, EM channel replaced, and the engine serves on.
  EXPECT_EQ(published->power_model(), old_power);
  EXPECT_NE(published->em_model(), old_em);
  EXPECT_EQ(monitor.em_monitor()->model(), published->em_model());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(engine.submit(world().probes[static_cast<std::size_t>(i)])
                    .has_value());
  }
  const auto results = engine.drain();
  ASSERT_EQ(results.size(), 8u);
  for (const auto& r : results) EXPECT_EQ(r.model_stamp, outcome.stamp);
  EXPECT_EQ(engine.stats().model_swaps, 1u);
  EXPECT_EQ(engine.stats().recalibrations, 1u);
}

TEST(FusionRuntime, DriftMonitorAttributesProbeDriftToTheEmChannel) {
  // A fresh campaign whose only covariate-shift process is EM probe
  // misalignment drift: the power channel is stationary (nominal device and
  // session), so only the EM statistics may move.
  sim::AcquisitionOptions opts = paired_options();
  opts.em.misalignment_drift = 1.6;
  sim::AcquisitionCampaign drifting(sim::DeviceModel::make(0),
                                    sim::SessionContext::make(0),
                                    sim::LeakageConfig{}, sim::ScopeConfig{},
                                    opts);
  auto fused = std::make_shared<const FusedDisassembler>(balanced_fused());
  runtime::DriftConfig cfg;
  cfg.warmup = 8;
  cfg.consecutive = 3;
  cfg.z_threshold = 6.0;
  runtime::FusedDriftMonitor monitor(fused, cfg);
  ASSERT_NE(monitor.em_monitor(), nullptr);

  std::mt19937_64 rng(77);
  for (int i = 0; i < 48; ++i) {
    const std::size_t c =
        world().classes[static_cast<std::size_t>(i) % world().classes.size()];
    // Campaign end state: full misalignment on the probe, nominal power.
    const sim::Trace t = drifting.capture_trace(
        avr::random_instance(c, rng), sim::ProgramContext::make(i % 5), rng,
        /*campaign_progress=*/1.0);
    monitor.observe(t, fused->classify(t));
  }
  EXPECT_GT(monitor.em_monitor()->z_rms(), monitor.power_monitor().z_rms());
  const auto event = monitor.poll_event();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->channel, sim::Channel::kEm);
  EXPECT_EQ(monitor.power_monitor().events_raised(), 0u);
}

}  // namespace
}  // namespace sidis

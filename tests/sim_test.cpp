// Tests for the side-channel substrate: environment models, power synthesis,
// the scope front-end and the acquisition campaign.
#include <gtest/gtest.h>

#include <random>

#include "avr/assembler.hpp"
#include "avr/cpu.hpp"
#include "dsp/signal.hpp"
#include "sim/acquisition.hpp"
#include "sim/hash.hpp"

namespace sidis::sim {
namespace {

TEST(Hash, DeterministicAndSpread) {
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(42), splitmix64(43));
  const double u = hash_unit(splitmix64(7));
  EXPECT_GE(u, 0.0);
  EXPECT_LT(u, 1.0);
  EXPECT_GE(hash_range(splitmix64(9), 2.0, 5.0), 2.0);
  EXPECT_LT(hash_range(splitmix64(9), 2.0, 5.0), 5.0);
}

TEST(Hash, HammingHelpers) {
  EXPECT_EQ(hamming_weight(0x00), 0);
  EXPECT_EQ(hamming_weight(0xFF), 8);
  EXPECT_EQ(hamming_weight(0xA5), 4);
  EXPECT_EQ(hamming_weight16(0xFFFF), 16);
  EXPECT_EQ(hamming_distance(0xF0, 0x0F), 8);
  EXPECT_EQ(hamming_distance(0xAA, 0xAA), 0);
}

TEST(Environment, TrainingDeviceIsNominal) {
  const DeviceModel d0 = DeviceModel::make(0);
  EXPECT_DOUBLE_EQ(d0.gain, 1.0);
  EXPECT_DOUBLE_EQ(d0.offset, 0.0);
  EXPECT_DOUBLE_EQ(d0.signature_spread, 0.0);
}

TEST(Environment, TargetDevicesVaryDeterministically) {
  const DeviceModel a = DeviceModel::make(3);
  const DeviceModel b = DeviceModel::make(3);
  const DeviceModel c = DeviceModel::make(4);
  EXPECT_DOUBLE_EQ(a.gain, b.gain);
  EXPECT_NE(a.gain, c.gain);
  EXPECT_GT(a.signature_spread, 0.0);
  EXPECT_NE(a.gain, 1.0);
}

TEST(Environment, SessionsAndProgramsCompose) {
  Environment env{DeviceModel::make(1), SessionContext::make(1), ProgramContext::make(2)};
  EXPECT_NEAR(env.total_gain(),
              env.device.gain * env.session.gain * env.program.gain, 1e-12);
  EXPECT_NEAR(env.total_offset(),
              env.device.offset + env.session.offset + env.program.offset, 1e-12);
}

TEST(PowerModel, DeterministicForSameInputs) {
  avr::Cpu cpu;
  cpu.load_program(avr::assemble("LDI r16, 3\nADD r0, r16\nNOP").program);
  const auto records = cpu.run(8);
  const PowerSynthesizer synth(DeviceModel::make(0));
  const auto w1 = synth.synthesize(records);
  const auto w2 = synth.synthesize(records);
  EXPECT_EQ(w1, w2);
  EXPECT_EQ(w1.size(),
            static_cast<std::size_t>(std::ceil(3 * synth.config().samples_per_cycle)) + 1);
}

TEST(PowerModel, DifferentOpcodesDifferentWaveforms) {
  const PowerSynthesizer synth(DeviceModel::make(0));
  const auto wave_of = [&](const std::string& listing) {
    avr::Cpu cpu;
    cpu.load_program(avr::assemble(listing).program);
    const auto records = cpu.run(4);
    return synth.synthesize(records);
  };
  const auto add = wave_of("ADD r1, r2");
  const auto and_ = wave_of("AND r1, r2");
  ASSERT_EQ(add.size(), and_.size());
  double diff = 0.0;
  for (std::size_t i = 0; i < add.size(); ++i) diff += std::abs(add[i] - and_[i]);
  EXPECT_GT(diff / static_cast<double>(add.size()), 1e-4);
}

TEST(PowerModel, RegisterAddressChangesWaveform) {
  const PowerSynthesizer synth(DeviceModel::make(0));
  const auto wave_of = [&](std::uint8_t rd) {
    avr::Cpu cpu;
    avr::Instruction in;
    in.mnemonic = avr::Mnemonic::kAdd;
    in.rd = rd;
    in.rr = 2;
    cpu.load_program(std::vector<avr::Instruction>{in});
    // Pin data so only the address differs.
    cpu.set_reg(rd, 0);
    cpu.set_reg(2, 0);
    const auto records = cpu.run(1);
    return synth.synthesize(records);
  };
  const auto r16 = wave_of(16);
  const auto r0 = wave_of(0);
  double diff = 0.0;
  for (std::size_t i = 0; i < r16.size(); ++i) diff += std::abs(r16[i] - r0[i]);
  EXPECT_GT(diff, 0.1);
}

TEST(PowerModel, IssueMapPreservesAliases) {
  const avr::Program p = avr::assemble("TST r5\nNOP").program;
  const IssueMap map = make_issue_map(p);
  ASSERT_TRUE(map.count(0));
  EXPECT_EQ(map.at(0).mnemonic, avr::Mnemonic::kTst);
  // Two-word instructions advance the address correctly.
  const avr::Program q = avr::assemble("LDS r0, 0x100\nNOP").program;
  const IssueMap map2 = make_issue_map(q);
  EXPECT_TRUE(map2.count(2));
  EXPECT_EQ(map2.at(2).mnemonic, avr::Mnemonic::kNop);
}

TEST(Oscilloscope, GainAndOffsetApplied) {
  ScopeConfig cfg;
  cfg.enable_noise = false;
  cfg.enable_quantization = false;
  cfg.trigger_jitter = 0;
  cfg.enable_bandwidth = false;
  const Oscilloscope scope(cfg);
  Environment env{DeviceModel::make(0), SessionContext{}, ProgramContext{}};
  env.session.gain = 2.0;
  env.session.offset = 0.5;
  std::mt19937_64 rng(1);
  const auto out = scope.capture(std::vector<double>(100, 1.0), env, rng, false);
  for (double v : out) EXPECT_NEAR(v, 2.5, 1e-12);
}

TEST(Oscilloscope, NoiseRespectsDeviceFactor) {
  ScopeConfig cfg;
  cfg.enable_quantization = false;
  cfg.trigger_jitter = 0;
  const Oscilloscope scope(cfg);
  std::mt19937_64 rng(2);
  Environment quiet{DeviceModel::make(0), SessionContext{}, ProgramContext{}};
  Environment loud = quiet;
  loud.device.noise_factor = 4.0;
  const std::vector<double> flat(4000, 1.0);
  const double s_quiet = dsp::stddev(scope.capture(flat, quiet, rng));
  const double s_loud = dsp::stddev(scope.capture(flat, loud, rng));
  EXPECT_GT(s_loud, 2.5 * s_quiet);
}

TEST(Oscilloscope, QuantizationSnapsToAdcGrid) {
  ScopeConfig cfg;
  cfg.enable_noise = false;
  cfg.trigger_jitter = 0;
  cfg.enable_bandwidth = false;
  cfg.adc_bits = 8;
  const Oscilloscope scope(cfg);
  Environment env{DeviceModel::make(0), SessionContext{}, ProgramContext{}};
  std::mt19937_64 rng(3);
  const auto out = scope.capture({0.1234567}, env, rng, false);
  const double step = (cfg.range_hi - cfg.range_lo) / 255.0;
  const double snapped = std::round((out[0] - cfg.range_lo) / step) * step + cfg.range_lo;
  EXPECT_NEAR(out[0], snapped, 1e-12);
}

class AcquisitionFixture : public ::testing::Test {
 protected:
  AcquisitionCampaign campaign{DeviceModel::make(0), SessionContext::make(0)};
  std::mt19937_64 rng{42};
};

TEST_F(AcquisitionFixture, TraceHasPaperGeometry) {
  const avr::Instruction target = avr::random_instance(
      *avr::class_index(avr::Mnemonic::kAdd), rng);
  const Trace t = campaign.capture_trace(target, ProgramContext::make(0), rng);
  EXPECT_EQ(t.samples.size(), 315u);
  EXPECT_EQ(t.meta.class_idx, *avr::class_index(avr::Mnemonic::kAdd));
  ASSERT_TRUE(t.meta.rd.has_value());
  ASSERT_TRUE(t.meta.rr.has_value());
  EXPECT_EQ(*t.meta.rd, target.rd);
  EXPECT_GT(t.meta.gain_estimate, 0.0);
}

TEST_F(AcquisitionFixture, ReferenceSubtractionRemovesBaseline) {
  // The subtracted window keeps only instruction-specific content, whereas
  // the raw capture sits on the ~0.35 baseline plus ~1.0 clock spikes.
  const avr::Instruction target = avr::random_instance(
      *avr::class_index(avr::Mnemonic::kMov), rng);
  const Trace t = campaign.capture_trace(target, ProgramContext::make(0), rng);
  EXPECT_LT(std::abs(dsp::mean(t.samples)), 0.25);
}

TEST_F(AcquisitionFixture, CaptureClassSpreadsPrograms) {
  const TraceSet set = campaign.capture_class(
      *avr::class_index(avr::Mnemonic::kAnd), 20, 5, rng);
  ASSERT_EQ(set.size(), 20u);
  std::set<int> programs;
  for (const Trace& t : set) programs.insert(t.meta.program_id);
  EXPECT_EQ(programs.size(), 5u);
  EXPECT_EQ(split_by_program(set).size(), 5u);
  EXPECT_EQ(filter_by_program(set, 0).size(), 4u);
}

TEST_F(AcquisitionFixture, CaptureRegisterPinsRegister) {
  const TraceSet rd_set = campaign.capture_register(true, 13, 15, 3, rng);
  for (const Trace& t : rd_set) {
    ASSERT_TRUE(t.meta.rd.has_value());
    EXPECT_EQ(*t.meta.rd, 13);
    EXPECT_TRUE(avr::class_allows_rd(t.meta.class_idx, 13));
  }
  const TraceSet rr_set = campaign.capture_register(false, 27, 15, 3, rng);
  for (const Trace& t : rr_set) {
    ASSERT_TRUE(t.meta.rr.has_value());
    EXPECT_EQ(*t.meta.rr, 27);
  }
}

TEST_F(AcquisitionFixture, GainEstimateTracksSessionGain) {
  SessionContext hot = SessionContext::make(0);
  hot.id = 9;
  hot.gain = 1.5;
  const AcquisitionCampaign hot_campaign(DeviceModel::make(0), hot);
  const avr::Instruction target = avr::random_instance(
      *avr::class_index(avr::Mnemonic::kAdd), rng);
  double base = 0.0, scaled = 0.0;
  for (int i = 0; i < 20; ++i) {
    base += campaign.capture_trace(target, ProgramContext::make(0), rng).meta.gain_estimate;
    scaled +=
        hot_campaign.capture_trace(target, ProgramContext::make(0), rng).meta.gain_estimate;
  }
  EXPECT_NEAR(scaled / base, 1.5, 0.05);
}

TEST_F(AcquisitionFixture, ExternalReferenceValidated) {
  AcquisitionCampaign other(DeviceModel::make(0), SessionContext::make(0));
  EXPECT_THROW(other.use_reference(std::vector<double>(10, 0.0)), std::invalid_argument);
  EXPECT_NO_THROW(other.use_reference(campaign.reference_window()));
}

TEST_F(AcquisitionFixture, CaptureProgramLabelsEveryWindow) {
  const avr::Program p = avr::assemble(
      "SBI 5, 5\nNOP\nLDI r16, 1\nADD r0, r16\nST X+, r0\nCBI 5, 5").program;
  const TraceSet windows = campaign.capture_program(p, ProgramContext::make(0), rng);
  // First instruction (SBI) has no preceding fetch cycle -> no window.
  ASSERT_EQ(windows.size(), p.size() - 1);
  EXPECT_EQ(windows[1].meta.instr.mnemonic, avr::Mnemonic::kLdi);
  EXPECT_EQ(windows[2].meta.instr.mnemonic, avr::Mnemonic::kAdd);
  for (const Trace& t : windows) {
    EXPECT_EQ(t.samples.size(), 315u);
    EXPECT_GT(t.meta.gain_estimate, 0.0);
  }
}

TEST_F(AcquisitionFixture, SameSeedSameTraces) {
  std::mt19937_64 a(123), b(123);
  const std::size_t cls = *avr::class_index(avr::Mnemonic::kEor);
  const Trace ta = campaign.capture_trace(avr::random_instance(cls, a),
                                          ProgramContext::make(1), a);
  const Trace tb = campaign.capture_trace(avr::random_instance(cls, b),
                                          ProgramContext::make(1), b);
  EXPECT_EQ(ta.samples, tb.samples);
}

/// Paired power+EM acquisition (AcquisitionOptions::em).
class EmAcquisitionFixture : public ::testing::Test {
 protected:
  static AcquisitionOptions em_options(std::uint64_t probe_seed = 0xE11E57ull) {
    AcquisitionOptions o;
    o.em.enabled = true;
    o.em.probe_seed = probe_seed;
    return o;
  }
  AcquisitionCampaign campaign{DeviceModel::make(0), SessionContext::make(0),
                               LeakageConfig{}, ScopeConfig{}, em_options()};
  std::mt19937_64 rng{42};

  Trace capture(std::mt19937_64& r, double progress = 0.0) {
    const std::size_t cls = *avr::class_index(avr::Mnemonic::kAdd);
    return campaign.capture_trace(avr::random_instance(cls, r),
                                  ProgramContext::make(0), r, progress);
  }
};

TEST_F(EmAcquisitionFixture, EmWindowIsAlignedAndDeterministic) {
  std::mt19937_64 a(5), b(5);
  const Trace ta = capture(a);
  const Trace tb = capture(b);
  ASSERT_TRUE(ta.has_em());
  EXPECT_EQ(ta.em_samples.size(), ta.samples.size());
  EXPECT_GT(ta.meta.em_gain_estimate, 0.0);
  // Probe-seed determinism: the whole paired capture replays bit-exactly.
  EXPECT_EQ(ta.samples, tb.samples);
  EXPECT_EQ(ta.em_samples, tb.em_samples);
}

TEST_F(EmAcquisitionFixture, EmCaptureLeavesPowerChannelBitIdentical) {
  // The EM stage draws from its own RNG sub-stream (exactly one draw from
  // the capture stream), so enabling the probe must not perturb the power
  // samples -- existing power-only corpora stay bit-identical.
  AcquisitionCampaign plain(DeviceModel::make(0), SessionContext::make(0));
  std::mt19937_64 a(9), b(9);
  const std::size_t cls = *avr::class_index(avr::Mnemonic::kCom);
  const Trace with_em = campaign.capture_trace(avr::random_instance(cls, a),
                                               ProgramContext::make(2), a);
  const Trace without = plain.capture_trace(avr::random_instance(cls, b),
                                            ProgramContext::make(2), b);
  EXPECT_EQ(with_em.samples, without.samples);
  EXPECT_FALSE(without.has_em());
}

TEST_F(EmAcquisitionFixture, ProbeSeedReshapesOnlyTheEmChannel) {
  AcquisitionCampaign moved(DeviceModel::make(0), SessionContext::make(0),
                            LeakageConfig{}, ScopeConfig{},
                            em_options(0xBADC0FFEull));
  std::mt19937_64 a(11), b(11);
  const std::size_t cls = *avr::class_index(avr::Mnemonic::kLdi);
  const Trace ta = campaign.capture_trace(avr::random_instance(cls, a),
                                          ProgramContext::make(1), a);
  const Trace tb = moved.capture_trace(avr::random_instance(cls, b),
                                       ProgramContext::make(1), b);
  EXPECT_EQ(ta.samples, tb.samples);       // power blind to the probe position
  EXPECT_NE(ta.em_samples, tb.em_samples); // EM mix is probe-specific
}

TEST_F(EmAcquisitionFixture, MisalignmentDriftAttenuatesTheEmGainMonotonically) {
  AcquisitionOptions opts = em_options();
  opts.em.misalignment_drift = 2.0;
  AcquisitionCampaign drifting(DeviceModel::make(0), SessionContext::make(0),
                               LeakageConfig{}, ScopeConfig{}, opts);
  // Average the stochastic gain estimate over captures at fixed progress.
  const auto mean_gain = [&](double progress) {
    std::mt19937_64 r(31);
    const std::size_t cls = *avr::class_index(avr::Mnemonic::kAnd);
    double acc = 0.0;
    for (int i = 0; i < 12; ++i) {
      acc += drifting
                 .capture_trace(avr::random_instance(cls, r),
                                ProgramContext::make(0), r, progress)
                 .meta.em_gain_estimate;
    }
    return acc / 12.0;
  };
  const double start = mean_gain(0.0);
  const double mid = mean_gain(0.5);
  const double end = mean_gain(1.0);
  EXPECT_GT(start, mid);
  EXPECT_GT(mid, end);
}

TEST_F(EmAcquisitionFixture, ChannelViewsSplitThePair) {
  std::mt19937_64 r(3);
  const Trace t = capture(r);
  const Trace p = channel_view(t, Channel::kPower);
  const Trace e = channel_view(t, Channel::kEm);
  EXPECT_EQ(p.samples, t.samples);
  EXPECT_FALSE(p.has_em());
  EXPECT_EQ(e.samples, t.em_samples);
  EXPECT_EQ(e.meta.gain_estimate, t.meta.em_gain_estimate);
  EXPECT_EQ(p.meta.class_idx, t.meta.class_idx);
  EXPECT_EQ(e.meta.class_idx, t.meta.class_idx);
}

TEST_F(EmAcquisitionFixture, CaptureProgramPairsEveryWindow) {
  const avr::Program p = avr::assemble(
      "SBI 5, 5\nNOP\nLDI r16, 1\nADD r0, r16\nST X+, r0\nCBI 5, 5").program;
  const TraceSet windows = campaign.capture_program(p, ProgramContext::make(0), rng);
  ASSERT_EQ(windows.size(), p.size() - 1);
  for (const Trace& t : windows) {
    EXPECT_TRUE(t.has_em());
    EXPECT_EQ(t.em_samples.size(), t.samples.size());
    EXPECT_GT(t.meta.em_gain_estimate, 0.0);
  }
}

}  // namespace
}  // namespace sidis::sim

// Tests for the side-channel substrate: environment models, power synthesis,
// the scope front-end and the acquisition campaign.
#include <gtest/gtest.h>

#include <random>

#include "avr/assembler.hpp"
#include "avr/cpu.hpp"
#include "dsp/signal.hpp"
#include "sim/acquisition.hpp"
#include "sim/hash.hpp"

namespace sidis::sim {
namespace {

TEST(Hash, DeterministicAndSpread) {
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(42), splitmix64(43));
  const double u = hash_unit(splitmix64(7));
  EXPECT_GE(u, 0.0);
  EXPECT_LT(u, 1.0);
  EXPECT_GE(hash_range(splitmix64(9), 2.0, 5.0), 2.0);
  EXPECT_LT(hash_range(splitmix64(9), 2.0, 5.0), 5.0);
}

TEST(Hash, HammingHelpers) {
  EXPECT_EQ(hamming_weight(0x00), 0);
  EXPECT_EQ(hamming_weight(0xFF), 8);
  EXPECT_EQ(hamming_weight(0xA5), 4);
  EXPECT_EQ(hamming_weight16(0xFFFF), 16);
  EXPECT_EQ(hamming_distance(0xF0, 0x0F), 8);
  EXPECT_EQ(hamming_distance(0xAA, 0xAA), 0);
}

TEST(Environment, TrainingDeviceIsNominal) {
  const DeviceModel d0 = DeviceModel::make(0);
  EXPECT_DOUBLE_EQ(d0.gain, 1.0);
  EXPECT_DOUBLE_EQ(d0.offset, 0.0);
  EXPECT_DOUBLE_EQ(d0.signature_spread, 0.0);
}

TEST(Environment, TargetDevicesVaryDeterministically) {
  const DeviceModel a = DeviceModel::make(3);
  const DeviceModel b = DeviceModel::make(3);
  const DeviceModel c = DeviceModel::make(4);
  EXPECT_DOUBLE_EQ(a.gain, b.gain);
  EXPECT_NE(a.gain, c.gain);
  EXPECT_GT(a.signature_spread, 0.0);
  EXPECT_NE(a.gain, 1.0);
}

TEST(Environment, SessionsAndProgramsCompose) {
  Environment env{DeviceModel::make(1), SessionContext::make(1), ProgramContext::make(2)};
  EXPECT_NEAR(env.total_gain(),
              env.device.gain * env.session.gain * env.program.gain, 1e-12);
  EXPECT_NEAR(env.total_offset(),
              env.device.offset + env.session.offset + env.program.offset, 1e-12);
}

TEST(PowerModel, DeterministicForSameInputs) {
  avr::Cpu cpu;
  cpu.load_program(avr::assemble("LDI r16, 3\nADD r0, r16\nNOP").program);
  const auto records = cpu.run(8);
  const PowerSynthesizer synth(DeviceModel::make(0));
  const auto w1 = synth.synthesize(records);
  const auto w2 = synth.synthesize(records);
  EXPECT_EQ(w1, w2);
  EXPECT_EQ(w1.size(),
            static_cast<std::size_t>(std::ceil(3 * synth.config().samples_per_cycle)) + 1);
}

TEST(PowerModel, DifferentOpcodesDifferentWaveforms) {
  const PowerSynthesizer synth(DeviceModel::make(0));
  const auto wave_of = [&](const std::string& listing) {
    avr::Cpu cpu;
    cpu.load_program(avr::assemble(listing).program);
    const auto records = cpu.run(4);
    return synth.synthesize(records);
  };
  const auto add = wave_of("ADD r1, r2");
  const auto and_ = wave_of("AND r1, r2");
  ASSERT_EQ(add.size(), and_.size());
  double diff = 0.0;
  for (std::size_t i = 0; i < add.size(); ++i) diff += std::abs(add[i] - and_[i]);
  EXPECT_GT(diff / static_cast<double>(add.size()), 1e-4);
}

TEST(PowerModel, RegisterAddressChangesWaveform) {
  const PowerSynthesizer synth(DeviceModel::make(0));
  const auto wave_of = [&](std::uint8_t rd) {
    avr::Cpu cpu;
    avr::Instruction in;
    in.mnemonic = avr::Mnemonic::kAdd;
    in.rd = rd;
    in.rr = 2;
    cpu.load_program(std::vector<avr::Instruction>{in});
    // Pin data so only the address differs.
    cpu.set_reg(rd, 0);
    cpu.set_reg(2, 0);
    const auto records = cpu.run(1);
    return synth.synthesize(records);
  };
  const auto r16 = wave_of(16);
  const auto r0 = wave_of(0);
  double diff = 0.0;
  for (std::size_t i = 0; i < r16.size(); ++i) diff += std::abs(r16[i] - r0[i]);
  EXPECT_GT(diff, 0.1);
}

TEST(PowerModel, IssueMapPreservesAliases) {
  const avr::Program p = avr::assemble("TST r5\nNOP").program;
  const IssueMap map = make_issue_map(p);
  ASSERT_TRUE(map.count(0));
  EXPECT_EQ(map.at(0).mnemonic, avr::Mnemonic::kTst);
  // Two-word instructions advance the address correctly.
  const avr::Program q = avr::assemble("LDS r0, 0x100\nNOP").program;
  const IssueMap map2 = make_issue_map(q);
  EXPECT_TRUE(map2.count(2));
  EXPECT_EQ(map2.at(2).mnemonic, avr::Mnemonic::kNop);
}

TEST(Oscilloscope, GainAndOffsetApplied) {
  ScopeConfig cfg;
  cfg.enable_noise = false;
  cfg.enable_quantization = false;
  cfg.trigger_jitter = 0;
  cfg.enable_bandwidth = false;
  const Oscilloscope scope(cfg);
  Environment env{DeviceModel::make(0), SessionContext{}, ProgramContext{}};
  env.session.gain = 2.0;
  env.session.offset = 0.5;
  std::mt19937_64 rng(1);
  const auto out = scope.capture(std::vector<double>(100, 1.0), env, rng, false);
  for (double v : out) EXPECT_NEAR(v, 2.5, 1e-12);
}

TEST(Oscilloscope, NoiseRespectsDeviceFactor) {
  ScopeConfig cfg;
  cfg.enable_quantization = false;
  cfg.trigger_jitter = 0;
  const Oscilloscope scope(cfg);
  std::mt19937_64 rng(2);
  Environment quiet{DeviceModel::make(0), SessionContext{}, ProgramContext{}};
  Environment loud = quiet;
  loud.device.noise_factor = 4.0;
  const std::vector<double> flat(4000, 1.0);
  const double s_quiet = dsp::stddev(scope.capture(flat, quiet, rng));
  const double s_loud = dsp::stddev(scope.capture(flat, loud, rng));
  EXPECT_GT(s_loud, 2.5 * s_quiet);
}

TEST(Oscilloscope, QuantizationSnapsToAdcGrid) {
  ScopeConfig cfg;
  cfg.enable_noise = false;
  cfg.trigger_jitter = 0;
  cfg.enable_bandwidth = false;
  cfg.adc_bits = 8;
  const Oscilloscope scope(cfg);
  Environment env{DeviceModel::make(0), SessionContext{}, ProgramContext{}};
  std::mt19937_64 rng(3);
  const auto out = scope.capture({0.1234567}, env, rng, false);
  const double step = (cfg.range_hi - cfg.range_lo) / 255.0;
  const double snapped = std::round((out[0] - cfg.range_lo) / step) * step + cfg.range_lo;
  EXPECT_NEAR(out[0], snapped, 1e-12);
}

class AcquisitionFixture : public ::testing::Test {
 protected:
  AcquisitionCampaign campaign{DeviceModel::make(0), SessionContext::make(0)};
  std::mt19937_64 rng{42};
};

TEST_F(AcquisitionFixture, TraceHasPaperGeometry) {
  const avr::Instruction target = avr::random_instance(
      *avr::class_index(avr::Mnemonic::kAdd), rng);
  const Trace t = campaign.capture_trace(target, ProgramContext::make(0), rng);
  EXPECT_EQ(t.samples.size(), 315u);
  EXPECT_EQ(t.meta.class_idx, *avr::class_index(avr::Mnemonic::kAdd));
  ASSERT_TRUE(t.meta.rd.has_value());
  ASSERT_TRUE(t.meta.rr.has_value());
  EXPECT_EQ(*t.meta.rd, target.rd);
  EXPECT_GT(t.meta.gain_estimate, 0.0);
}

TEST_F(AcquisitionFixture, ReferenceSubtractionRemovesBaseline) {
  // The subtracted window keeps only instruction-specific content, whereas
  // the raw capture sits on the ~0.35 baseline plus ~1.0 clock spikes.
  const avr::Instruction target = avr::random_instance(
      *avr::class_index(avr::Mnemonic::kMov), rng);
  const Trace t = campaign.capture_trace(target, ProgramContext::make(0), rng);
  EXPECT_LT(std::abs(dsp::mean(t.samples)), 0.25);
}

TEST_F(AcquisitionFixture, CaptureClassSpreadsPrograms) {
  const TraceSet set = campaign.capture_class(
      *avr::class_index(avr::Mnemonic::kAnd), 20, 5, rng);
  ASSERT_EQ(set.size(), 20u);
  std::set<int> programs;
  for (const Trace& t : set) programs.insert(t.meta.program_id);
  EXPECT_EQ(programs.size(), 5u);
  EXPECT_EQ(split_by_program(set).size(), 5u);
  EXPECT_EQ(filter_by_program(set, 0).size(), 4u);
}

TEST_F(AcquisitionFixture, CaptureRegisterPinsRegister) {
  const TraceSet rd_set = campaign.capture_register(true, 13, 15, 3, rng);
  for (const Trace& t : rd_set) {
    ASSERT_TRUE(t.meta.rd.has_value());
    EXPECT_EQ(*t.meta.rd, 13);
    EXPECT_TRUE(avr::class_allows_rd(t.meta.class_idx, 13));
  }
  const TraceSet rr_set = campaign.capture_register(false, 27, 15, 3, rng);
  for (const Trace& t : rr_set) {
    ASSERT_TRUE(t.meta.rr.has_value());
    EXPECT_EQ(*t.meta.rr, 27);
  }
}

TEST_F(AcquisitionFixture, GainEstimateTracksSessionGain) {
  SessionContext hot = SessionContext::make(0);
  hot.id = 9;
  hot.gain = 1.5;
  const AcquisitionCampaign hot_campaign(DeviceModel::make(0), hot);
  const avr::Instruction target = avr::random_instance(
      *avr::class_index(avr::Mnemonic::kAdd), rng);
  double base = 0.0, scaled = 0.0;
  for (int i = 0; i < 20; ++i) {
    base += campaign.capture_trace(target, ProgramContext::make(0), rng).meta.gain_estimate;
    scaled +=
        hot_campaign.capture_trace(target, ProgramContext::make(0), rng).meta.gain_estimate;
  }
  EXPECT_NEAR(scaled / base, 1.5, 0.05);
}

TEST_F(AcquisitionFixture, ExternalReferenceValidated) {
  AcquisitionCampaign other(DeviceModel::make(0), SessionContext::make(0));
  EXPECT_THROW(other.use_reference(std::vector<double>(10, 0.0)), std::invalid_argument);
  EXPECT_NO_THROW(other.use_reference(campaign.reference_window()));
}

TEST_F(AcquisitionFixture, CaptureProgramLabelsEveryWindow) {
  const avr::Program p = avr::assemble(
      "SBI 5, 5\nNOP\nLDI r16, 1\nADD r0, r16\nST X+, r0\nCBI 5, 5").program;
  const TraceSet windows = campaign.capture_program(p, ProgramContext::make(0), rng);
  // First instruction (SBI) has no preceding fetch cycle -> no window.
  ASSERT_EQ(windows.size(), p.size() - 1);
  EXPECT_EQ(windows[1].meta.instr.mnemonic, avr::Mnemonic::kLdi);
  EXPECT_EQ(windows[2].meta.instr.mnemonic, avr::Mnemonic::kAdd);
  for (const Trace& t : windows) {
    EXPECT_EQ(t.samples.size(), 315u);
    EXPECT_GT(t.meta.gain_estimate, 0.0);
  }
}

TEST_F(AcquisitionFixture, SameSeedSameTraces) {
  std::mt19937_64 a(123), b(123);
  const std::size_t cls = *avr::class_index(avr::Mnemonic::kEor);
  const Trace ta = campaign.capture_trace(avr::random_instance(cls, a),
                                          ProgramContext::make(1), a);
  const Trace tb = campaign.capture_trace(avr::random_instance(cls, b),
                                          ProgramContext::make(1), b);
  EXPECT_EQ(ta.samples, tb.samples);
}

/// Paired power+EM acquisition (AcquisitionOptions::em).
class EmAcquisitionFixture : public ::testing::Test {
 protected:
  static AcquisitionOptions em_options(std::uint64_t probe_seed = 0xE11E57ull) {
    AcquisitionOptions o;
    o.em.enabled = true;
    o.em.probe_seed = probe_seed;
    return o;
  }
  AcquisitionCampaign campaign{DeviceModel::make(0), SessionContext::make(0),
                               LeakageConfig{}, ScopeConfig{}, em_options()};
  std::mt19937_64 rng{42};

  Trace capture(std::mt19937_64& r, double progress = 0.0) {
    const std::size_t cls = *avr::class_index(avr::Mnemonic::kAdd);
    return campaign.capture_trace(avr::random_instance(cls, r),
                                  ProgramContext::make(0), r, progress);
  }
};

TEST_F(EmAcquisitionFixture, EmWindowIsAlignedAndDeterministic) {
  std::mt19937_64 a(5), b(5);
  const Trace ta = capture(a);
  const Trace tb = capture(b);
  ASSERT_TRUE(ta.has_em());
  EXPECT_EQ(ta.em_samples.size(), ta.samples.size());
  EXPECT_GT(ta.meta.em_gain_estimate, 0.0);
  // Probe-seed determinism: the whole paired capture replays bit-exactly.
  EXPECT_EQ(ta.samples, tb.samples);
  EXPECT_EQ(ta.em_samples, tb.em_samples);
}

TEST_F(EmAcquisitionFixture, EmCaptureLeavesPowerChannelBitIdentical) {
  // The EM stage draws from its own RNG sub-stream (exactly one draw from
  // the capture stream), so enabling the probe must not perturb the power
  // samples -- existing power-only corpora stay bit-identical.
  AcquisitionCampaign plain(DeviceModel::make(0), SessionContext::make(0));
  std::mt19937_64 a(9), b(9);
  const std::size_t cls = *avr::class_index(avr::Mnemonic::kCom);
  const Trace with_em = campaign.capture_trace(avr::random_instance(cls, a),
                                               ProgramContext::make(2), a);
  const Trace without = plain.capture_trace(avr::random_instance(cls, b),
                                            ProgramContext::make(2), b);
  EXPECT_EQ(with_em.samples, without.samples);
  EXPECT_FALSE(without.has_em());
}

TEST_F(EmAcquisitionFixture, ProbeSeedReshapesOnlyTheEmChannel) {
  AcquisitionCampaign moved(DeviceModel::make(0), SessionContext::make(0),
                            LeakageConfig{}, ScopeConfig{},
                            em_options(0xBADC0FFEull));
  std::mt19937_64 a(11), b(11);
  const std::size_t cls = *avr::class_index(avr::Mnemonic::kLdi);
  const Trace ta = campaign.capture_trace(avr::random_instance(cls, a),
                                          ProgramContext::make(1), a);
  const Trace tb = moved.capture_trace(avr::random_instance(cls, b),
                                       ProgramContext::make(1), b);
  EXPECT_EQ(ta.samples, tb.samples);       // power blind to the probe position
  EXPECT_NE(ta.em_samples, tb.em_samples); // EM mix is probe-specific
}

TEST_F(EmAcquisitionFixture, MisalignmentDriftAttenuatesTheEmGainMonotonically) {
  AcquisitionOptions opts = em_options();
  opts.em.misalignment_drift = 2.0;
  AcquisitionCampaign drifting(DeviceModel::make(0), SessionContext::make(0),
                               LeakageConfig{}, ScopeConfig{}, opts);
  // Average the stochastic gain estimate over captures at fixed progress.
  const auto mean_gain = [&](double progress) {
    std::mt19937_64 r(31);
    const std::size_t cls = *avr::class_index(avr::Mnemonic::kAnd);
    double acc = 0.0;
    for (int i = 0; i < 12; ++i) {
      acc += drifting
                 .capture_trace(avr::random_instance(cls, r),
                                ProgramContext::make(0), r, progress)
                 .meta.em_gain_estimate;
    }
    return acc / 12.0;
  };
  const double start = mean_gain(0.0);
  const double mid = mean_gain(0.5);
  const double end = mean_gain(1.0);
  EXPECT_GT(start, mid);
  EXPECT_GT(mid, end);
}

TEST_F(EmAcquisitionFixture, ChannelViewsSplitThePair) {
  std::mt19937_64 r(3);
  const Trace t = capture(r);
  const Trace p = channel_view(t, Channel::kPower);
  const Trace e = channel_view(t, Channel::kEm);
  EXPECT_EQ(p.samples, t.samples);
  EXPECT_FALSE(p.has_em());
  EXPECT_EQ(e.samples, t.em_samples);
  EXPECT_EQ(e.meta.gain_estimate, t.meta.em_gain_estimate);
  EXPECT_EQ(p.meta.class_idx, t.meta.class_idx);
  EXPECT_EQ(e.meta.class_idx, t.meta.class_idx);
}

TEST_F(EmAcquisitionFixture, CaptureProgramPairsEveryWindow) {
  const avr::Program p = avr::assemble(
      "SBI 5, 5\nNOP\nLDI r16, 1\nADD r0, r16\nST X+, r0\nCBI 5, 5").program;
  const TraceSet windows = campaign.capture_program(p, ProgramContext::make(0), rng);
  ASSERT_EQ(windows.size(), p.size() - 1);
  for (const Trace& t : windows) {
    EXPECT_TRUE(t.has_em());
    EXPECT_EQ(t.em_samples.size(), t.samples.size());
    EXPECT_GT(t.meta.em_gain_estimate, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Acquisition-configuration sweep (sim/acq_config.hpp): window geometry,
// grid conversions, nominal bit-identity, stamps, trigger skew.
// ---------------------------------------------------------------------------

TEST(AcquisitionConfig, WindowGeometryFollowsTheRate) {
  EXPECT_EQ(AcquisitionConfig::nominal().window_samples(), 315u);  // the paper's window
  EXPECT_EQ(AcquisitionConfig::half_rate().window_samples(), 159u);
  EXPECT_EQ(AcquisitionConfig::quarter_rate().window_samples(), 81u);
  // Exactly integral spans must not round up through the epsilon guard.
  AcquisitionConfig integral;
  integral.samples_per_cycle = 150.0;
  EXPECT_EQ(integral.window_samples(), 302u);
  EXPECT_DOUBLE_EQ(AcquisitionConfig::nominal().cost(), 315.0 * 8.0);
  EXPECT_DOUBLE_EQ(AcquisitionConfig::low_resolution(6).cost(), 315.0 * 6.0);
}

TEST(AcquisitionConfig, ValidationRejectsUnusableKnobs) {
  AcquisitionConfig bad;
  bad.samples_per_cycle = 2.0;
  EXPECT_THROW(bad.validated(), std::invalid_argument);
  bad = {};
  bad.adc_bits = 1;
  EXPECT_THROW(bad.validated(), std::invalid_argument);
  bad = {};
  bad.bandwidth_scale = 0.0;
  EXPECT_THROW(bad.validated(), std::invalid_argument);
  bad = {};
  bad.window_offset = -400;
  EXPECT_THROW(bad.validated(), std::invalid_argument);
  EXPECT_NO_THROW(AcquisitionConfig::nominal().validated());
}

TEST(AcquisitionConfig, AppliedIsBitExactIdentityAtNominal) {
  const AcquisitionConfig nominal = AcquisitionConfig::nominal();
  const ScopeConfig scope;
  const ScopeConfig out = nominal.applied(scope);
  EXPECT_EQ(out.bandwidth_fraction, scope.bandwidth_fraction);
  EXPECT_EQ(out.adc_bits, scope.adc_bits);
  const LeakageConfig leak;
  EXPECT_EQ(nominal.applied(leak).samples_per_cycle, leak.samples_per_cycle);
  // The EM probe's scope derivation is an identity too (0.16 base fraction).
  const ScopeConfig em = em_scope_config(EmProbeConfig{});
  EXPECT_EQ(nominal.applied(em).bandwidth_fraction, em.bandwidth_fraction);
}

TEST(AcquisitionConfig, AppliedConvertsAbsoluteBandwidthToTheDecimatedGrid) {
  // The same 250 MHz front-end is a larger fraction of a lower sample rate.
  const ScopeConfig scope;
  EXPECT_NEAR(AcquisitionConfig::half_rate().applied(scope).bandwidth_fraction,
              0.2, 1e-12);
  EXPECT_NEAR(AcquisitionConfig::quarter_rate().applied(scope).bandwidth_fraction,
              0.4, 1e-12);
  EXPECT_NEAR(AcquisitionConfig::narrowband(0.5).applied(scope).bandwidth_fraction,
              0.05, 1e-12);
  // Decimating far enough pushes the pole to Nyquist; the clamp holds it.
  AcquisitionConfig extreme;
  extreme.samples_per_cycle = kNominalSamplesPerCycle / 8.0;
  EXPECT_DOUBLE_EQ(extreme.applied(scope).bandwidth_fraction, 0.49);
}

TEST(AcquisitionConfig, NominalCampaignIsBitIdenticalToPlainCampaign) {
  // The tentpole invariant: threading AcquisitionConfig::nominal() through
  // the campaign reproduces the pre-config pipeline bit for bit, on the
  // power AND EM channels, including the reference windows and meta.
  AcquisitionOptions em_opts;
  em_opts.em.enabled = true;
  const AcquisitionCampaign plain(DeviceModel::make(0), SessionContext::make(0),
                                  LeakageConfig{}, ScopeConfig{}, em_opts);
  const AcquisitionCampaign configured(DeviceModel::make(0), SessionContext::make(0),
                                       AcquisitionConfig::nominal(), LeakageConfig{},
                                       ScopeConfig{}, em_opts);
  EXPECT_EQ(plain.reference_window(), configured.reference_window());
  EXPECT_EQ(plain.em_reference_window(), configured.em_reference_window());
  std::mt19937_64 a(99), b(99);
  const std::size_t cls = *avr::class_index(avr::Mnemonic::kAdd);
  const TraceSet ta = plain.capture_class(cls, 6, 2, a);
  const TraceSet tb = configured.capture_class(cls, 6, 2, b);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].samples, tb[i].samples);
    EXPECT_EQ(ta[i].em_samples, tb[i].em_samples);
    EXPECT_EQ(ta[i].meta.gain_estimate, tb[i].meta.gain_estimate);
    EXPECT_EQ(tb[i].meta.samples_per_cycle, kNominalSamplesPerCycle);
    EXPECT_EQ(tb[i].meta.adc_bits, kNominalAdcBits);
  }
}

TEST(AcquisitionConfig, CampaignStampsTheLiveChainIntoEveryMeta) {
  AcquisitionConfig half_low = AcquisitionConfig::half_rate();
  half_low.adc_bits = 6;
  const AcquisitionCampaign campaign(DeviceModel::make(0), SessionContext::make(0),
                                     half_low);
  EXPECT_EQ(campaign.acquisition_config().label, "half-rate");
  std::mt19937_64 r(7);
  const std::size_t cls = *avr::class_index(avr::Mnemonic::kEor);
  const Trace t = campaign.capture_trace(avr::random_instance(cls, r),
                                         ProgramContext::make(0), r);
  EXPECT_EQ(t.samples.size(), half_low.window_samples());
  EXPECT_EQ(t.meta.samples_per_cycle, half_low.samples_per_cycle);
  EXPECT_EQ(t.meta.adc_bits, 6);
  const avr::Program p =
      avr::assemble("SBI 5, 5\nNOP\nLDI r16, 1\nADD r0, r16\nCBI 5, 5").program;
  for (const Trace& w : campaign.capture_program(p, ProgramContext::make(0), r)) {
    EXPECT_EQ(w.samples.size(), half_low.window_samples());
    EXPECT_EQ(w.meta.samples_per_cycle, half_low.samples_per_cycle);
    EXPECT_EQ(w.meta.adc_bits, 6);
  }
}

TEST(AcquisitionConfig, DecimatedCaptureIsSeedDeterministic) {
  const AcquisitionCampaign campaign(DeviceModel::make(2), SessionContext::make(0),
                                     AcquisitionConfig::half_rate());
  std::mt19937_64 a(11), b(11);
  const std::size_t cls = *avr::class_index(avr::Mnemonic::kSub);
  const TraceSet ta = campaign.capture_class(cls, 8, 3, a);
  const TraceSet tb = campaign.capture_class(cls, 8, 3, b);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].samples, tb[i].samples);
    EXPECT_EQ(ta[i].meta.gain_estimate, tb[i].meta.gain_estimate);
  }
}

TEST(AcquisitionConfig, WindowOffsetShiftsTheCutExactly) {
  // Only the cut position depends on the offset: all RNG draws happen before
  // cutting, so the offset window is the unshifted capture slid by the skew.
  AcquisitionOptions raw;
  raw.subtract_reference = false;
  AcquisitionConfig skewed;
  skewed.window_offset = 3;
  const AcquisitionCampaign base(DeviceModel::make(0), SessionContext::make(0),
                                 AcquisitionConfig::nominal(), LeakageConfig{},
                                 ScopeConfig{}, raw);
  const AcquisitionCampaign shifted(DeviceModel::make(0), SessionContext::make(0),
                                    skewed, LeakageConfig{}, ScopeConfig{}, raw);
  std::mt19937_64 a(21), b(21);
  const std::size_t cls = *avr::class_index(avr::Mnemonic::kAdd);
  const Trace t0 = base.capture_trace(avr::random_instance(cls, a),
                                      ProgramContext::make(0), a);
  const Trace t3 = shifted.capture_trace(avr::random_instance(cls, b),
                                         ProgramContext::make(0), b);
  ASSERT_EQ(t0.samples.size(), t3.samples.size());
  for (std::size_t i = 0; i + 3 < t0.samples.size(); ++i) {
    ASSERT_EQ(t3.samples[i], t0.samples[i + 3]) << "at sample " << i;
  }
}

TEST(PowerModel, WindowMathHoldsAcrossFractionalRates) {
  // The satellite property test for the guarded floor/ceil pair: on any
  // fractional grid, per-cycle window starts advance by floor(spc) or
  // ceil(spc), never drift more than a sample off the exact position, and
  // every cut the campaign can request stays inside the synthesized
  // waveform -- across cycle counts long enough to accumulate rounding.
  for (const double spc : {156.25, 78.125, 52.6, 39.0625, 31.1, 150.0, 17.3, 11.75}) {
    LeakageConfig leak;
    leak.samples_per_cycle = spc;
    const PowerSynthesizer synth(DeviceModel::make(0), leak);
    std::size_t prev = 0;
    for (unsigned c = 1; c <= 96; ++c) {
      const std::size_t s = synth.sample_of_cycle(static_cast<double>(c));
      const std::size_t step = s - prev;
      EXPECT_GE(step, static_cast<std::size_t>(std::floor(spc))) << spc << " @ " << c;
      EXPECT_LE(step, static_cast<std::size_t>(std::ceil(spc))) << spc << " @ " << c;
      EXPECT_LT(std::abs(static_cast<double>(s) - c * spc), 1.0 + 1e-6)
          << spc << " @ " << c;
      prev = s;
    }
    // Waveform sizing matches the same guarded arithmetic end to end.
    std::string sled;
    for (int i = 0; i < 37; ++i) sled += "NOP\n";
    avr::Cpu cpu;
    cpu.load_program(avr::assemble(sled).program);
    const auto records = cpu.run(37);
    unsigned total_cycles = 0;
    for (const auto& rec : records) total_cycles += rec.cycles;
    const auto wave = synth.synthesize(records);
    EXPECT_GE(wave.size(), synth.sample_of_cycle(static_cast<double>(total_cycles)) + 1)
        << spc;
  }
}

TEST(Environment, CornerDeviceSitsOnTheRails) {
  const DeviceModel corner = DeviceModel::make_corner(7);
  const DeviceModel again = DeviceModel::make_corner(7);
  EXPECT_EQ(corner.gain, again.gain);
  EXPECT_EQ(corner.corner_seed, again.corner_seed);
  // Rails, not interior: the magnitudes sit at or beyond make()'s band.
  EXPECT_DOUBLE_EQ(std::abs(corner.gain - 1.0), 0.28);
  EXPECT_DOUBLE_EQ(std::abs(corner.thermal_drift), 0.05);
  EXPECT_GE(corner.opcode_gain_spread, 0.09);
  EXPECT_GE(corner.opcode_offset_spread, 0.012);
  // Heavier decoupling pole than any make() device.
  EXPECT_LT(corner.decoupling_cutoff, 0.09);
  EXPECT_GT(corner.decoupling_cutoff, 0.0);
  // Disjoint seed-space: the corner device is not make(7) in disguise.
  EXPECT_NE(corner.signature_seed, DeviceModel::make(7).signature_seed);
}

}  // namespace
}  // namespace sidis::sim

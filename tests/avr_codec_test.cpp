// Encoder/decoder tests: hand-checked encodings from the AVR instruction-set
// manual, plus a property-style round-trip sweep over all 112 profiled
// classes with random operands.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "avr/codec.hpp"
#include "avr/grouping.hpp"
#include "avr/program.hpp"

namespace sidis::avr {
namespace {

Instruction make(Mnemonic m) {
  Instruction in;
  in.mnemonic = m;
  return in;
}

std::uint16_t encode_one(const Instruction& in) {
  const auto words = encode(in);
  EXPECT_EQ(words.size(), 1u);
  return words.front();
}

TEST(Encode, ManualCheckedOpcodes) {
  // Reference encodings computed by hand from the AVR ISA manual bit layouts.
  Instruction add = make(Mnemonic::kAdd);
  add.rd = 1;
  add.rr = 2;
  EXPECT_EQ(encode_one(add), 0x0C12);

  Instruction adc = make(Mnemonic::kAdc);
  adc.rd = 31;
  adc.rr = 31;
  EXPECT_EQ(encode_one(adc), 0x1FFF);

  Instruction ldi = make(Mnemonic::kLdi);
  ldi.rd = 16;
  ldi.k8 = 0xAB;
  EXPECT_EQ(encode_one(ldi), 0xEA0B);

  Instruction nop = make(Mnemonic::kNop);
  EXPECT_EQ(encode_one(nop), 0x0000);

  Instruction ret = make(Mnemonic::kRet);
  EXPECT_EQ(encode_one(ret), 0x9508);

  Instruction sbi = make(Mnemonic::kSbi);
  sbi.io = 5;
  sbi.bit = 5;
  EXPECT_EQ(encode_one(sbi), 0x9A2D);

  Instruction rjmp = make(Mnemonic::kRjmp);
  rjmp.rel = -1;
  EXPECT_EQ(encode_one(rjmp), 0xCFFF);

  Instruction com = make(Mnemonic::kCom);
  com.rd = 5;
  EXPECT_EQ(encode_one(com), 0x9450);

  Instruction movw = make(Mnemonic::kMovw);
  movw.rd = 2;
  movw.rr = 30;
  EXPECT_EQ(encode_one(movw), 0x011F);

  Instruction adiw = make(Mnemonic::kAdiw);
  adiw.rd = 26;
  adiw.k8 = 63;
  EXPECT_EQ(encode_one(adiw), 0x96DF);

  Instruction ld_x = make(Mnemonic::kLd);
  ld_x.mode = AddrMode::kX;
  ld_x.rd = 7;
  EXPECT_EQ(encode_one(ld_x), 0x907C);

  Instruction breq = make(Mnemonic::kBreq);
  breq.rel = 3;
  EXPECT_EQ(encode_one(breq), 0xF019);
}

TEST(Encode, TwoWordInstructions) {
  Instruction lds = make(Mnemonic::kLds);
  lds.mode = AddrMode::kAbs;
  lds.rd = 9;
  lds.k16 = 0x0123;
  const auto w = encode(lds);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0], 0x9090);
  EXPECT_EQ(w[1], 0x0123);

  Instruction jmp = make(Mnemonic::kJmp);
  jmp.k22 = 0x1234;
  const auto jw = encode(jmp);
  ASSERT_EQ(jw.size(), 2u);
  EXPECT_EQ(jw[0], 0x940C);
  EXPECT_EQ(jw[1], 0x1234);
}

TEST(Encode, OperandRangeChecks) {
  Instruction ldi = make(Mnemonic::kLdi);
  ldi.rd = 5;  // immediates need r16..r31
  EXPECT_THROW(encode(ldi), std::invalid_argument);

  Instruction movw = make(Mnemonic::kMovw);
  movw.rd = 3;  // must be even
  EXPECT_THROW(encode(movw), std::invalid_argument);

  Instruction adiw = make(Mnemonic::kAdiw);
  adiw.rd = 25;
  EXPECT_THROW(encode(adiw), std::invalid_argument);
  adiw.rd = 24;
  adiw.k8 = 64;  // 6-bit immediate
  EXPECT_THROW(encode(adiw), std::invalid_argument);

  Instruction brbs = make(Mnemonic::kBrbs);
  brbs.rel = 64;  // 7-bit signed
  EXPECT_THROW(encode(brbs), std::invalid_argument);

  Instruction sbi = make(Mnemonic::kSbi);
  sbi.io = 32;  // 5-bit I/O space
  EXPECT_THROW(encode(sbi), std::invalid_argument);

  Instruction ldd = make(Mnemonic::kLdd);
  ldd.mode = AddrMode::kYDisp;
  ldd.q = 64;  // 6-bit displacement
  EXPECT_THROW(encode(ldd), std::invalid_argument);

  Instruction ld = make(Mnemonic::kLd);
  ld.mode = AddrMode::kNone;  // missing addressing mode
  EXPECT_THROW(encode(ld), std::invalid_argument);
}

TEST(Encode, AliasesLowerToCanonicalEncodings) {
  Instruction tst = make(Mnemonic::kTst);
  tst.rd = 7;
  Instruction and_self = make(Mnemonic::kAnd);
  and_self.rd = 7;
  and_self.rr = 7;
  EXPECT_EQ(encode(tst), encode(and_self));

  Instruction ser = make(Mnemonic::kSer);
  ser.rd = 18;
  Instruction ldi_ff = make(Mnemonic::kLdi);
  ldi_ff.rd = 18;
  ldi_ff.k8 = 0xFF;
  EXPECT_EQ(encode(ser), encode(ldi_ff));

  Instruction cbr = make(Mnemonic::kCbr);
  cbr.rd = 20;
  cbr.k8 = 0x0F;
  Instruction andi = make(Mnemonic::kAndi);
  andi.rd = 20;
  andi.k8 = 0xF0;
  EXPECT_EQ(encode(cbr), encode(andi));

  Instruction sec = make(Mnemonic::kSec);
  Instruction bset0 = make(Mnemonic::kBset);
  bset0.sflag = kFlagC;
  EXPECT_EQ(encode(sec), encode(bset0));

  Instruction breq = make(Mnemonic::kBreq);
  breq.rel = 5;
  Instruction brbs1 = make(Mnemonic::kBrbs);
  brbs1.sflag = kFlagZ;
  brbs1.rel = 5;
  EXPECT_EQ(encode(breq), encode(brbs1));
}

TEST(Decode, UnknownOpcodeReturnsNullopt) {
  const std::uint16_t bad[] = {0xFFFF};
  // 0xFFFF == SBRS r31,7 actually decodes; use a genuinely reserved pattern.
  const std::uint16_t reserved[] = {0x9F80};  // MUL space is fine; use 0x95B8
  (void)bad;
  (void)reserved;
  const std::uint16_t really_bad[] = {0x95B8};  // reserved between WDR/LPM
  EXPECT_FALSE(decode(really_bad, 0).has_value());
}

TEST(Decode, TruncatedTwoWordFails) {
  Instruction lds = make(Mnemonic::kLds);
  lds.mode = AddrMode::kAbs;
  lds.k16 = 0x200;
  const auto words = encode(lds);
  const std::uint16_t only_first[] = {words[0]};
  EXPECT_FALSE(decode(only_first, 0).has_value());
}

TEST(Decode, PrettifyRestoresShorthands) {
  Instruction bset = make(Mnemonic::kBset);
  bset.sflag = kFlagC;
  EXPECT_EQ(prettify(bset).mnemonic, Mnemonic::kSec);
  Instruction brbc = make(Mnemonic::kBrbc);
  brbc.sflag = kFlagZ;
  brbc.rel = 2;
  const Instruction pretty = prettify(brbc);
  EXPECT_EQ(pretty.mnemonic, Mnemonic::kBrne);
  EXPECT_EQ(pretty.rel, 2);
}

TEST(Decode, LdYZeroDisplacementDecodesAsLd) {
  Instruction ld = make(Mnemonic::kLd);
  ld.mode = AddrMode::kY;
  ld.rd = 4;
  const auto words = encode(ld);
  const auto d = decode(words, 0);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->instr.mnemonic, Mnemonic::kLd);
  EXPECT_EQ(d->instr.mode, AddrMode::kY);
}

// ---- property sweep: encode/decode round-trip over all 112 classes --------

class CodecRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CodecRoundTrip, RandomInstancesSurviveEncodeDecode) {
  std::mt19937_64 rng(0xC0DEC + GetParam());
  const ClassSpec& spec = instruction_classes()[GetParam()];
  for (int rep = 0; rep < 50; ++rep) {
    const Instruction in = random_instance(GetParam(), rng);
    const Instruction canon = canonicalize(in);
    const auto words = encode(in);
    ASSERT_FALSE(words.empty()) << spec.name;
    const auto decoded = decode(words, 0);
    ASSERT_TRUE(decoded.has_value()) << spec.name;
    EXPECT_EQ(decoded->words, words.size());
    EXPECT_EQ(decoded->instr, canon)
        << spec.name << ": " << to_string(canon) << " vs " << to_string(decoded->instr);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, CodecRoundTrip, ::testing::Range<std::size_t>(0, 112),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      std::string n = instruction_classes()[info.param].name;
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

// ---- property sweep: residual (non-profiled) mnemonics ---------------------

TEST(CodecRoundTrip, ResidualMnemonicsSurviveEncodeDecode) {
  // The residual instructions live outside the 112 profiled classes, so the
  // parameterized sweep above never touches them; randomize their operands
  // here.  Fields are drawn uniformly over each mnemonic's legal range.
  std::mt19937_64 rng(0x0E51D);
  std::uniform_int_distribution<int> reg(0, 31);
  std::uniform_int_distribution<int> high_reg(16, 31);
  std::uniform_int_distribution<int> io6(0, 63);
  std::uniform_int_distribution<int> rel12(-2048, 2047);
  std::uniform_int_distribution<std::uint32_t> k22(0, 0x3FFFFF);

  const auto randomized = [&](Mnemonic m) {
    Instruction in = make(m);
    switch (m) {
      case Mnemonic::kIn:
        in.rd = static_cast<std::uint8_t>(reg(rng));
        in.io = static_cast<std::uint8_t>(io6(rng));
        break;
      case Mnemonic::kOut:
        in.rr = static_cast<std::uint8_t>(reg(rng));
        in.io = static_cast<std::uint8_t>(io6(rng));
        break;
      case Mnemonic::kPush:
      case Mnemonic::kPop:
        in.rd = static_cast<std::uint8_t>(reg(rng));
        break;
      case Mnemonic::kMul:
        in.rd = static_cast<std::uint8_t>(reg(rng));
        in.rr = static_cast<std::uint8_t>(reg(rng));
        break;
      case Mnemonic::kMuls:
        in.rd = static_cast<std::uint8_t>(high_reg(rng));
        in.rr = static_cast<std::uint8_t>(high_reg(rng));
        break;
      case Mnemonic::kRcall:
        in.rel = static_cast<std::int16_t>(rel12(rng));
        break;
      case Mnemonic::kCall:
        in.k22 = k22(rng);
        break;
      default:  // NOP, RET, RETI, ICALL, IJMP, SLEEP, WDR, BREAK, CLI
        break;
    }
    return in;
  };

  for (Mnemonic m : {Mnemonic::kNop, Mnemonic::kIn, Mnemonic::kOut, Mnemonic::kPush,
                     Mnemonic::kPop, Mnemonic::kRet, Mnemonic::kReti, Mnemonic::kRcall,
                     Mnemonic::kCall, Mnemonic::kIcall, Mnemonic::kIjmp, Mnemonic::kMul,
                     Mnemonic::kMuls, Mnemonic::kSleep, Mnemonic::kWdr, Mnemonic::kBreak,
                     Mnemonic::kCli}) {
    for (int rep = 0; rep < 25; ++rep) {
      const Instruction in = randomized(m);
      const Instruction canon = canonicalize(in);  // CLI lowers to BCLR I
      const auto words = encode(in);
      ASSERT_FALSE(words.empty()) << name(m);
      const auto decoded = decode(words, 0);
      ASSERT_TRUE(decoded.has_value()) << name(m) << ": " << to_string(in);
      EXPECT_EQ(decoded->words, words.size()) << name(m);
      EXPECT_EQ(decoded->instr, canon)
          << name(m) << ": " << to_string(canon) << " vs " << to_string(decoded->instr);
    }
  }
}

// ---- reserved / invalid opcode words ---------------------------------------

TEST(Decode, ReservedWordsAreRejectedIndependentlyOfContext) {
  // Sweep the full 16-bit space once to harvest the decoder's reject set,
  // then pin down its properties: it is non-empty, rejection does not depend
  // on the trailing word, and decode_program truncates at the first reserved
  // word instead of inventing instructions.
  std::vector<std::uint16_t> reserved;
  for (std::uint32_t w = 0; w <= 0xFFFF; ++w) {
    const std::uint16_t code[2] = {static_cast<std::uint16_t>(w), 0x0000};
    if (!decode(code, 0).has_value()) reserved.push_back(static_cast<std::uint16_t>(w));
  }
  ASSERT_FALSE(reserved.empty());
  // The known hole between WDR (0x95A8) and LPM (0x95C8) must be in it.
  EXPECT_NE(std::find(reserved.begin(), reserved.end(), 0x95B8), reserved.end());

  std::mt19937_64 rng(0xDEAD);
  std::uniform_int_distribution<std::uint32_t> any(0, 0xFFFF);
  for (std::size_t i = 0; i < reserved.size(); i += 97) {  // sampled sweep
    const std::uint16_t w = reserved[i];
    const std::uint16_t code[2] = {w, static_cast<std::uint16_t>(any(rng))};
    EXPECT_FALSE(decode(code, 0).has_value()) << "word " << w;
  }

  const std::uint16_t stream[] = {0x0000 /* NOP */, reserved.front(), 0x9508 /* RET */};
  const auto program = decode_program(stream);
  ASSERT_EQ(program.size(), 1u);  // truncated at the reserved word
  EXPECT_EQ(program[0].mnemonic, Mnemonic::kNop);
}

TEST(EncodeProgram, ConcatenatesWords) {
  Instruction nop = make(Mnemonic::kNop);
  Instruction jmp = make(Mnemonic::kJmp);
  jmp.k22 = 4;
  const Program p{nop, jmp, nop};
  const auto words = encode_program(p);
  EXPECT_EQ(words.size(), 4u);
  const auto back = decode_program(words);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[1].mnemonic, Mnemonic::kJmp);
}

}  // namespace
}  // namespace sidis::avr

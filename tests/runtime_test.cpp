// Tests for the streaming disassembly runtime: queue backpressure, ordered
// output under adversarial completion order, cancellation without loss, the
// model registry's round-trip and corruption rejection, and worker-count
// invariance of the parallel profiler.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <random>
#include <thread>

#include "core/csa.hpp"
#include "core/disassembler.hpp"
#include "core/profiler.hpp"
#include "runtime/bounded_queue.hpp"
#include "runtime/registry.hpp"
#include "runtime/streaming.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/acquisition.hpp"

namespace sidis::runtime {
namespace {

using namespace std::chrono_literals;

// -- BoundedQueue ------------------------------------------------------------

TEST(BoundedQueue, FifoAndHighWater) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.size(), 5u);
  EXPECT_EQ(q.high_water(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop(), i);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.high_water(), 5u);  // sticky
}

TEST(BoundedQueue, BackpressureBlocksProducerAtCapacity) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.push(0));
  ASSERT_TRUE(q.push(1));
  EXPECT_FALSE(q.try_push(2));  // full

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.push(2);  // must block until a pop makes room
    pushed.store(true);
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(pushed.load()) << "push() returned while the queue was full";
  EXPECT_EQ(q.pop(), 0);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
}

TEST(BoundedQueue, CloseDrainsThenSignalsEnd) {
  BoundedQueue<int> q(4);
  q.push(7);
  q.push(8);
  q.close();
  EXPECT_FALSE(q.push(9));          // rejected after close
  EXPECT_EQ(q.pop(), 7);            // backlog still poppable
  EXPECT_EQ(q.pop(), 8);
  EXPECT_EQ(q.pop(), std::nullopt);  // closed + empty
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(2);
  std::thread consumer([&] { EXPECT_EQ(q.pop(), std::nullopt); });
  std::this_thread::sleep_for(20ms);
  q.close();
  consumer.join();
}

// -- ThreadPool --------------------------------------------------------------

TEST(ThreadPool, RunsAllSubmittedJobs) {
  std::atomic<int> sum{0};
  {
    ThreadPool pool(3, 4);
    for (int i = 1; i <= 100; ++i) {
      EXPECT_TRUE(pool.submit([&sum, i] { sum += i; }));
    }
  }  // destructor = shutdown barrier
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(hits.size(), 4, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  EXPECT_THROW(parallel_for(16, 3,
                            [](std::size_t i) {
                              if (i == 7) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

// -- StreamingDisassembler ---------------------------------------------------

/// Classify stage that encodes the sequence into the result and sleeps an
/// adversarial, order-inverting amount (early traces finish last).
StreamingDisassembler::ClassifyFn adversarial_classify(std::atomic<int>* calls) {
  return [calls](const sim::Trace& t) {
    const auto tag = static_cast<std::size_t>(t.meta.program_id);
    std::this_thread::sleep_for(std::chrono::microseconds(500 * ((tag % 7 == 0) ? 20 : (7 - tag % 7))));
    if (calls != nullptr) ++*calls;
    core::Disassembly d;
    d.class_idx = tag;
    return d;
  };
}

sim::Trace tagged_trace(std::size_t tag) {
  sim::Trace t;
  t.samples = {0.0};
  t.meta.program_id = static_cast<int>(tag);
  return t;
}

TEST(Streaming, OrderedOutputUnderAdversarialDelays) {
  StreamingConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 8;
  StreamingDisassembler engine(adversarial_classify(nullptr), cfg);

  constexpr std::size_t kTraces = 64;
  std::vector<StreamResult> got;
  for (std::size_t i = 0; i < kTraces; ++i) {
    const auto seq = engine.submit(tagged_trace(i));
    ASSERT_TRUE(seq.has_value());
    EXPECT_EQ(*seq, i);
    while (auto r = engine.poll()) got.push_back(std::move(*r));  // interleave
  }
  for (auto& r : engine.drain()) got.push_back(std::move(r));

  ASSERT_EQ(got.size(), kTraces);
  for (std::size_t i = 0; i < kTraces; ++i) {
    EXPECT_EQ(got[i].sequence, i) << "results emitted out of submission order";
    EXPECT_EQ(got[i].value.class_idx, i) << "result does not answer its own trace";
  }
  const RuntimeStats stats = engine.stats();
  EXPECT_EQ(stats.traces_submitted, kTraces);
  EXPECT_EQ(stats.traces_completed, kTraces);
  EXPECT_EQ(stats.traces_emitted, kTraces);
  EXPECT_EQ(stats.traces_failed, 0u);
  EXPECT_EQ(stats.end_to_end.count(), kTraces);
}

TEST(Streaming, ExpectedAcquisitionStampIsEnforcedAtSubmit) {
  // A monitor pinned to one acquisition configuration must refuse windows
  // captured under another: rate, resolution and window length are all part
  // of the contract, and a refused submission consumes no sequence number.
  const sim::AcquisitionConfig acq = sim::AcquisitionConfig::half_rate();
  StreamingConfig cfg;
  cfg.workers = 1;
  cfg.expected_acquisition = acq;
  StreamingDisassembler engine(
      [](const sim::Trace&) { return core::Disassembly{}; }, cfg);

  sim::Trace good;
  good.samples.assign(acq.window_samples(), 0.0);
  good.meta.samples_per_cycle = acq.samples_per_cycle;
  good.meta.adc_bits = acq.adc_bits;
  ASSERT_TRUE(engine.submit(good).has_value());

  sim::Trace wrong_rate = good;
  wrong_rate.meta.samples_per_cycle = sim::kNominalSamplesPerCycle;
  EXPECT_THROW((void)engine.submit(wrong_rate), std::invalid_argument);

  sim::Trace wrong_bits = good;
  wrong_bits.meta.adc_bits = 6;
  EXPECT_THROW((void)engine.submit(wrong_bits), std::invalid_argument);

  sim::Trace wrong_window = good;
  wrong_window.samples.push_back(0.0);
  EXPECT_THROW((void)engine.submit(wrong_window), std::invalid_argument);

  // One mismatched window poisons a whole batch before it reserves anything.
  sim::TraceSet batch;
  batch.push_back(good);
  batch.push_back(wrong_bits);
  EXPECT_THROW((void)engine.submit_batch(std::move(batch)), std::invalid_argument);

  (void)engine.drain();
  EXPECT_EQ(engine.stats().traces_submitted, 1u)
      << "rejected submissions must not consume sequence numbers";
}

TEST(Streaming, CampaignStampsSatisfyTheMatchingExpectation) {
  // Traces from an acquisition-configured campaign carry the stamp the
  // runtime validates against, so the contract holds end-to-end by default.
  const sim::AcquisitionConfig acq = sim::AcquisitionConfig::low_resolution(6);
  sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                    sim::SessionContext::make(0), acq};
  std::mt19937_64 rng{29};
  const sim::TraceSet windows = campaign.capture_class(
      *avr::class_index(avr::Mnemonic::kAdd), 3, 2, rng);

  StreamingConfig cfg;
  cfg.workers = 1;
  cfg.expected_acquisition = acq;
  StreamingDisassembler engine(
      [](const sim::Trace&) { return core::Disassembly{}; }, cfg);
  for (const sim::Trace& t : windows) ASSERT_TRUE(engine.submit(t).has_value());
  EXPECT_EQ(engine.drain().size(), windows.size());
}

TEST(Streaming, BackpressureBlocksProducerAtCapacity) {
  StreamingConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 2;
  cfg.max_in_flight = 3;
  std::atomic<bool> release{false};
  StreamingDisassembler engine(
      [&release](const sim::Trace&) {
        while (!release.load()) std::this_thread::sleep_for(1ms);
        return core::Disassembly{};
      },
      cfg);

  std::atomic<std::size_t> accepted{0};
  std::thread producer([&] {
    for (std::size_t i = 0; i < 6; ++i) {
      if (engine.submit(tagged_trace(i))) ++accepted;
    }
  });
  std::this_thread::sleep_for(100ms);
  // Worker holds trace 0; traces 1-2 fill in-flight credit (max 3): the
  // producer must be blocked inside submit() for trace 3.
  EXPECT_EQ(accepted.load(), 3u) << "submit() did not block at max_in_flight";
  release.store(true);
  std::vector<StreamResult> tail;
  // Consume so the producer can finish (it unblocks as results are emitted).
  while (tail.size() < 6) {
    if (auto r = engine.poll()) {
      tail.push_back(std::move(*r));
    } else {
      std::this_thread::sleep_for(1ms);
    }
  }
  producer.join();
  EXPECT_EQ(accepted.load(), 6u);
  for (std::size_t i = 0; i < tail.size(); ++i) EXPECT_EQ(tail[i].sequence, i);
}

TEST(Streaming, DrainAfterCancelLosesAndDuplicatesNothing) {
  StreamingConfig cfg;
  cfg.workers = 3;
  cfg.queue_capacity = 4;
  StreamingDisassembler engine(adversarial_classify(nullptr), cfg);

  std::vector<StreamResult> got;
  std::atomic<std::uint64_t> last_accepted{0};
  std::thread producer([&] {
    for (std::size_t i = 0;; ++i) {
      const auto seq = engine.submit(tagged_trace(i));
      if (!seq) break;  // cancelled
      last_accepted.store(*seq);
    }
  });
  std::this_thread::sleep_for(60ms);
  engine.request_stop();  // cancel mid-stream; producer unblocks and exits
  producer.join();
  EXPECT_FALSE(engine.submit(tagged_trace(9999)).has_value());

  for (auto& r : engine.drain()) got.push_back(std::move(r));
  const std::uint64_t accepted_count = last_accepted.load() + 1;
  ASSERT_EQ(got.size(), accepted_count)
      << "drain() lost or duplicated accepted traces";
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].sequence, i);
    EXPECT_EQ(got[i].value.class_idx, i);
  }
  const RuntimeStats stats = engine.stats();
  EXPECT_EQ(stats.traces_submitted, accepted_count);
  EXPECT_EQ(stats.traces_emitted, accepted_count);
}

TEST(Streaming, StopTokenCancelsSubmission) {
  std::stop_source source;
  StreamingConfig cfg;
  cfg.workers = 1;
  StreamingDisassembler engine([](const sim::Trace&) { return core::Disassembly{}; },
                               cfg, source.get_token());
  ASSERT_TRUE(engine.submit(tagged_trace(0)).has_value());
  source.request_stop();
  EXPECT_TRUE(engine.stopped());
  EXPECT_FALSE(engine.submit(tagged_trace(1)).has_value());
  EXPECT_EQ(engine.drain().size(), 1u);
}

TEST(Streaming, WorkerExceptionEmitsDefaultResultAndCounts) {
  StreamingConfig cfg;
  cfg.workers = 2;
  StreamingDisassembler engine(
      [](const sim::Trace& t) -> core::Disassembly {
        if (t.meta.program_id == 1) throw std::runtime_error("model blew up");
        core::Disassembly d;
        d.class_idx = 42;
        return d;
      },
      cfg);
  for (std::size_t i = 0; i < 3; ++i) ASSERT_TRUE(engine.submit(tagged_trace(i)));
  const std::vector<StreamResult> out = engine.drain();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].value.class_idx, 42u);
  EXPECT_EQ(out[1].value.class_idx, 0u);  // default-constructed placeholder
  EXPECT_EQ(out[2].value.class_idx, 42u);
  EXPECT_EQ(engine.stats().traces_failed, 1u);
}

TEST(Streaming, VerdictAndFaultCountersAggregate) {
  StreamingConfig cfg;
  cfg.workers = 2;
  // Stub model: program_id selects the verdict, so the expected counter
  // values are exact.  Faulted windows are marked by their ground-truth
  // severity stamp, which the engine reads off TraceMeta.
  StreamingDisassembler engine(
      [](const sim::Trace& t) {
        core::Disassembly d;
        if (t.meta.program_id % 3 == 1) d.verdict = core::Verdict::kRejected;
        if (t.meta.program_id % 3 == 2) d.verdict = core::Verdict::kDegraded;
        return d;
      },
      cfg);
  for (std::size_t i = 0; i < 9; ++i) {
    sim::Trace t = tagged_trace(i);
    if (i < 4) t.meta.fault_severity = 0.5 * static_cast<double>(i + 1);
    ASSERT_TRUE(engine.submit(std::move(t)));
  }
  (void)engine.drain();
  const RuntimeStats stats = engine.stats();
  EXPECT_EQ(stats.traces_rejected, 3u);   // ids 1, 4, 7
  EXPECT_EQ(stats.traces_degraded, 3u);   // ids 2, 5, 8
  EXPECT_EQ(stats.traces_faulted, 4u);
  EXPECT_DOUBLE_EQ(stats.fault_severity_sum, 0.5 + 1.0 + 1.5 + 2.0);
  EXPECT_DOUBLE_EQ(stats.max_fault_severity, 2.0);
  const std::string report = stats.report();
  EXPECT_NE(report.find("rejected=3"), std::string::npos);
  EXPECT_NE(report.find("faulted: 4 windows"), std::string::npos);
}

TEST(Streaming, SwapStampStaysCoherentWithItsStageUnderConcurrentSwaps) {
  // Regression test for a checksum/stage race: the result stamp used to be
  // read separately from the stage function, so a result classified by
  // version k could report the stamp of a concurrently published k+1.  The
  // fix pins (function, stamp) as one shared stage record.  Here every stage
  // k tags its results with class_idx = k and is published with stamp = k,
  // so any tearing shows up as a stamp/class mismatch -- and TSan (this test
  // runs in the TSan CI job too) would flag the unsynchronized read.
  StreamingConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 8;
  auto stage_fn = [](std::uint64_t k) {
    return [k](const sim::Trace&) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      core::Disassembly d;
      d.class_idx = static_cast<std::size_t>(k);
      return d;
    };
  };
  StreamingDisassembler engine(stage_fn(0), cfg);

  std::atomic<bool> stop_swapping{false};
  std::thread swapper([&] {
    for (std::uint64_t k = 1; !stop_swapping.load(); ++k) {
      engine.swap_classifier(stage_fn(k), k);
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  constexpr std::size_t kTraces = 300;
  std::size_t checked = 0;
  std::size_t distinct_stamps = 0;
  std::uint64_t last_stamp = 0;
  for (std::size_t i = 0; i < kTraces; ++i) {
    ASSERT_TRUE(engine.submit(tagged_trace(i)).has_value());
    while (auto r = engine.poll()) {
      EXPECT_EQ(r->value.class_idx, r->model_stamp)
          << "result " << r->sequence << " stamped with a different stage";
      if (r->model_stamp != last_stamp) ++distinct_stamps;
      last_stamp = r->model_stamp;
      ++checked;
    }
  }
  for (auto& r : engine.drain()) {
    EXPECT_EQ(r.value.class_idx, r.model_stamp)
        << "result " << r.sequence << " stamped with a different stage";
    if (r.model_stamp != last_stamp) ++distinct_stamps;
    last_stamp = r.model_stamp;
    ++checked;
  }
  stop_swapping.store(true);
  swapper.join();
  EXPECT_EQ(checked, kTraces);
  // The race window only exists when swaps actually interleave with work.
  // (distinct_stamps counts emission-order stamp *changes*, which can exceed
  // the swap count: neighboring jobs may pin stages in either order.)
  EXPECT_GE(distinct_stamps, 2u) << "swaps never interleaved; test proved nothing";
  EXPECT_GE(engine.stats().model_swaps, 2u);
}

// -- end-to-end against the real model --------------------------------------

class RuntimeModelFixture : public ::testing::Test {
 protected:
  static const core::HierarchicalDisassembler& model() {
    static const core::HierarchicalDisassembler m = [] {
      sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                        sim::SessionContext::make(0)};
      std::mt19937_64 rng{17};
      core::ProfilingData data;
      for (avr::Mnemonic mn :
           {avr::Mnemonic::kAdd, avr::Mnemonic::kLdi, avr::Mnemonic::kCom}) {
        data.classes[*avr::class_index(mn)] =
            campaign.capture_class(*avr::class_index(mn), 50, 5, rng);
      }
      core::HierarchicalConfig cfg;
      cfg.pipeline = core::csa_config();
      cfg.pipeline.pca_components = 10;
      cfg.group_components = 8;
      cfg.instruction_components = 8;
      return core::HierarchicalDisassembler::train(data, cfg);
    }();
    return m;
  }

  static sim::TraceSet probes(std::size_t n) {
    sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                      sim::SessionContext::make(0)};
    std::mt19937_64 rng{23};
    sim::TraceSet out;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(campaign.capture_trace(
          avr::random_instance(*avr::class_index(avr::Mnemonic::kAdd), rng),
          sim::ProgramContext::make(static_cast<int>(i % 4)), rng));
    }
    return out;
  }
};

TEST_F(RuntimeModelFixture, StreamingMatchesSerialDisassemblyExactly) {
  const sim::TraceSet windows = probes(40);
  const std::vector<core::Disassembly> serial = core::disassemble(model(), windows);

  StreamingConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 8;
  StreamingDisassembler engine(model(), cfg);
  for (const sim::Trace& t : windows) ASSERT_TRUE(engine.submit(t).has_value());
  const std::vector<StreamResult> streamed = engine.drain();

  ASSERT_EQ(streamed.size(), serial.size());
  std::vector<core::Disassembly> values;
  for (const StreamResult& r : streamed) values.push_back(r.value);
  EXPECT_EQ(core::listing(values), core::listing(serial))
      << "parallel streaming changed the disassembly output";
}

// -- ModelRegistry -----------------------------------------------------------

class RegistryFixture : public RuntimeModelFixture {
 protected:
  std::filesystem::path fresh_root(const std::string& tag) {
    const auto root =
        std::filesystem::path(::testing::TempDir()) / ("sidis_registry_" + tag);
    std::filesystem::remove_all(root);
    return root;
  }
};

TEST_F(RegistryFixture, RoundTripPredictsIdentically) {
  ModelRegistry registry(fresh_root("roundtrip"));
  EXPECT_EQ(registry.latest_version("monitor"), 0);
  EXPECT_EQ(registry.save("monitor", model()), 1);
  EXPECT_EQ(registry.save("monitor", model()), 2);
  EXPECT_EQ(registry.versions("monitor"), (std::vector<int>{1, 2}));
  EXPECT_EQ(registry.names(), std::vector<std::string>{"monitor"});

  const core::HierarchicalDisassembler restored = registry.load("monitor");
  for (const sim::Trace& t : probes(20)) {
    const core::Disassembly a = model().classify(t);
    const core::Disassembly b = restored.classify(t);
    EXPECT_EQ(a.group, b.group);
    EXPECT_EQ(a.class_idx, b.class_idx);
  }

  const ArtifactInfo info = registry.info("monitor", 2);
  EXPECT_EQ(info.name, "monitor");
  EXPECT_EQ(info.version, 2);
  EXPECT_GT(info.payload_bytes, 0u);
}

TEST_F(RegistryFixture, RejectsCorruptedAndTruncatedArtifacts) {
  ModelRegistry registry(fresh_root("corrupt"));
  ASSERT_EQ(registry.save("victim", model()), 1);
  const std::filesystem::path path = registry.info("victim", 1).path;

  // Flip one payload byte: checksum must catch it.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0, std::ios::end);
    const auto size = f.tellp();
    f.seekp(size - std::streamoff(10));
    f.put('!');
  }
  EXPECT_THROW(registry.load("victim", 1), std::runtime_error);

  // Truncate: payload shorter than the header promises.
  ASSERT_EQ(registry.save("victim", model()), 2);
  const std::filesystem::path p2 = registry.info("victim", 2).path;
  std::filesystem::resize_file(p2, std::filesystem::file_size(p2) / 2);
  EXPECT_THROW(registry.load("victim", 2), std::runtime_error);

  // Garbage header.
  ASSERT_EQ(registry.save("victim", model()), 3);
  {
    std::ofstream f(registry.info("victim", 3).path, std::ios::trunc);
    f << "not-a-bundle at all\n";
  }
  EXPECT_THROW(registry.load("victim", 3), std::runtime_error);
}

TEST_F(RegistryFixture, RejectsBadNamesAndMissingModels) {
  ModelRegistry registry(fresh_root("names"));
  EXPECT_THROW(registry.save("", model()), std::invalid_argument);
  EXPECT_THROW(registry.save("../escape", model()), std::invalid_argument);
  EXPECT_THROW(registry.save("a/b", model()), std::invalid_argument);
  EXPECT_THROW(registry.load("never-stored"), std::runtime_error);
  EXPECT_TRUE(registry.versions("never-stored").empty());
}

// -- parallel profiler -------------------------------------------------------

TEST(ParallelProfiler, CorpusIsWorkerCountInvariant) {
  const sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                          sim::SessionContext::make(0)};
  core::ProfilerConfig cfg;
  cfg.classes = {*avr::class_index(avr::Mnemonic::kAdd),
                 *avr::class_index(avr::Mnemonic::kSub),
                 *avr::class_index(avr::Mnemonic::kLdi)};
  cfg.registers = {2, 30};
  cfg.traces_per_class = 10;
  cfg.traces_per_register = 6;
  cfg.num_programs = 2;

  const auto run = [&](std::size_t workers) {
    cfg.workers = workers;
    std::mt19937_64 rng{5};
    return core::profile_device(campaign, cfg, rng);
  };
  const core::ProfilingData serial = run(1);
  const core::ProfilingData parallel = run(4);

  ASSERT_EQ(serial.classes.size(), parallel.classes.size());
  for (const auto& [cls, traces] : serial.classes) {
    const sim::TraceSet& other = parallel.classes.at(cls);
    ASSERT_EQ(traces.size(), other.size());
    for (std::size_t i = 0; i < traces.size(); ++i) {
      EXPECT_EQ(traces[i].samples, other[i].samples)
          << "class " << cls << " trace " << i << " differs with 4 workers";
    }
  }
  for (const auto& [reg, traces] : serial.rd_classes) {
    ASSERT_EQ(traces.size(), parallel.rd_classes.at(reg).size());
    for (std::size_t i = 0; i < traces.size(); ++i) {
      EXPECT_EQ(traces[i].samples, parallel.rd_classes.at(reg)[i].samples);
    }
  }
}

TEST(ParallelProfiler, ProgressSerializedAndAbortStillWorks) {
  const sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                          sim::SessionContext::make(0)};
  core::ProfilerConfig cfg;
  cfg.classes = {*avr::class_index(avr::Mnemonic::kAdd),
                 *avr::class_index(avr::Mnemonic::kSub)};
  cfg.profile_registers = false;
  cfg.traces_per_class = 4;
  cfg.num_programs = 2;
  cfg.workers = 4;

  std::atomic<int> concurrent{0};
  std::size_t calls = 0;
  std::mt19937_64 rng{6};
  core::profile_device(campaign, cfg, rng,
                       [&](std::size_t done, std::size_t total, const std::string&) {
                         EXPECT_EQ(concurrent.fetch_add(1), 0)
                             << "progress callback ran concurrently";
                         std::this_thread::sleep_for(5ms);
                         --concurrent;
                         ++calls;
                         EXPECT_LE(done, total);
                         return true;
                       });
  EXPECT_EQ(calls, 2u);

  std::mt19937_64 rng2{6};
  EXPECT_THROW(core::profile_device(campaign, cfg, rng2,
                                    [](std::size_t, std::size_t, const std::string&) {
                                      return false;
                                    }),
               std::runtime_error);
}

}  // namespace
}  // namespace sidis::runtime

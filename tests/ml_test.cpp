// Unit tests for datasets, classifiers, metrics and cross-validation.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "ml/crossval.hpp"
#include "ml/dataset.hpp"
#include "ml/discriminant.hpp"
#include "ml/factory.hpp"
#include "ml/knn.hpp"
#include "ml/metrics.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/svm.hpp"

namespace sidis::ml {
namespace {

/// Two Gaussian blobs in 2-D, linearly separable when `gap` is large.
Dataset two_blobs(std::size_t per_class, double gap, std::mt19937_64& rng,
                  double sigma = 0.5) {
  std::normal_distribution<double> noise(0.0, sigma);
  std::vector<linalg::Vector> rows;
  std::vector<int> y;
  for (std::size_t i = 0; i < per_class; ++i) {
    rows.push_back({-gap / 2 + noise(rng), noise(rng)});
    y.push_back(0);
    rows.push_back({gap / 2 + noise(rng), noise(rng)});
    y.push_back(1);
  }
  Dataset d;
  d.x = linalg::Matrix::from_rows(rows);
  d.y = std::move(y);
  return d;
}

/// XOR-style dataset: only non-linear classifiers can solve it.
Dataset xor_blobs(std::size_t per_quadrant, std::mt19937_64& rng) {
  std::normal_distribution<double> noise(0.0, 0.2);
  std::vector<linalg::Vector> rows;
  std::vector<int> y;
  for (std::size_t i = 0; i < per_quadrant; ++i) {
    for (int sx = -1; sx <= 1; sx += 2) {
      for (int sy = -1; sy <= 1; sy += 2) {
        rows.push_back({sx + noise(rng), sy + noise(rng)});
        y.push_back(sx * sy > 0 ? 1 : 0);
      }
    }
  }
  Dataset d;
  d.x = linalg::Matrix::from_rows(rows);
  d.y = std::move(y);
  return d;
}

TEST(Dataset, ValidateAndLabels) {
  Dataset d;
  d.x = linalg::Matrix{{1, 2}, {3, 4}, {5, 6}};
  d.y = {2, 0, 2};
  EXPECT_NO_THROW(d.validate());
  EXPECT_EQ(d.labels(), (std::vector<int>{0, 2}));
  d.y.pop_back();
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(Dataset, RowsWithLabel) {
  Dataset d;
  d.x = linalg::Matrix{{1, 1}, {2, 2}, {3, 3}};
  d.y = {0, 1, 0};
  const linalg::Matrix m = d.rows_with_label(0);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3);
}

TEST(Dataset, ConcatAndTruncate) {
  Dataset a, b;
  a.x = linalg::Matrix{{1, 2, 3}};
  a.y = {0};
  b.x = linalg::Matrix{{4, 5, 6}};
  b.y = {1};
  const Dataset c = Dataset::concat(a, b);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.y, (std::vector<int>{0, 1}));
  const Dataset t = c.truncated(2);
  EXPECT_EQ(t.dim(), 2u);
  EXPECT_DOUBLE_EQ(t.x(1, 1), 5);
}

TEST(Dataset, StratifiedSplitPreservesClassBalance) {
  std::mt19937_64 rng(1);
  Dataset d = two_blobs(100, 2.0, rng);
  const Split s = stratified_split(d, 0.8, rng);
  EXPECT_EQ(s.train.size(), 160u);
  EXPECT_EQ(s.test.size(), 40u);
  int train0 = 0;
  for (int y : s.train.y) train0 += y == 0 ? 1 : 0;
  EXPECT_EQ(train0, 80);
}

TEST(Dataset, KFoldsPartitionAll) {
  std::mt19937_64 rng(2);
  Dataset d = two_blobs(30, 2.0, rng);
  const auto folds = k_folds(d, 4, rng);
  std::size_t total = 0;
  for (const Dataset& f : folds) total += f.size();
  EXPECT_EQ(total, d.size());
  EXPECT_THROW(k_folds(d, 1, rng), std::invalid_argument);
}

TEST(Dataset, ShuffleKeepsRowLabelPairs) {
  std::mt19937_64 rng(3);
  Dataset d;
  d.x = linalg::Matrix{{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  d.y = {0, 1, 2, 3};
  shuffle(d, rng);
  for (std::size_t r = 0; r < d.size(); ++r) {
    EXPECT_DOUBLE_EQ(d.x(r, 0), static_cast<double>(d.y[r]));
  }
}

class ClassifierContract
    : public ::testing::TestWithParam<ClassifierKind> {};

TEST_P(ClassifierContract, SeparatesEasyBlobs) {
  std::mt19937_64 rng(4);
  const Dataset train = two_blobs(150, 4.0, rng);
  const Dataset test = two_blobs(50, 4.0, rng);
  auto clf = make_classifier(GetParam());
  clf->fit(train);
  EXPECT_GE(clf->accuracy(test), 0.97) << clf->name();
}

TEST_P(ClassifierContract, RejectsSingleClass) {
  Dataset d;
  d.x = linalg::Matrix{{1, 1}, {2, 2}, {1.5, 1.2}};
  d.y = {5, 5, 5};
  auto clf = make_classifier(GetParam());
  if (GetParam() == ClassifierKind::kKnn) {
    GTEST_SKIP() << "kNN accepts degenerate label sets by design";
  }
  EXPECT_THROW(clf->fit(d), std::invalid_argument) << clf->name();
}

TEST_P(ClassifierContract, PredictBeforeFitThrows) {
  auto clf = make_classifier(GetParam());
  EXPECT_THROW(clf->predict({1.0, 2.0}), std::runtime_error) << clf->name();
}

TEST_P(ClassifierContract, PreservesArbitraryLabelValues) {
  std::mt19937_64 rng(5);
  Dataset train = two_blobs(100, 4.0, rng);
  for (int& y : train.y) y = y == 0 ? -7 : 42;
  auto clf = make_classifier(GetParam());
  clf->fit(train);
  const int left = clf->predict({-2.0, 0.0});
  const int right = clf->predict({2.0, 0.0});
  EXPECT_EQ(left, -7) << clf->name();
  EXPECT_EQ(right, 42) << clf->name();
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ClassifierContract,
                         ::testing::Values(ClassifierKind::kLda, ClassifierKind::kQda,
                                           ClassifierKind::kNaiveBayes,
                                           ClassifierKind::kSvmRbf,
                                           ClassifierKind::kSvmLinear,
                                           ClassifierKind::kKnn),
                         [](const ::testing::TestParamInfo<ClassifierKind>& info) {
                           std::string n = to_string(info.param);
                           for (char& c : n) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return n;
                         });

TEST(Qda, LearnsDifferentCovariances) {
  // Same mean, different covariance: only QDA-style models can separate.
  std::mt19937_64 rng(6);
  std::normal_distribution<double> tight(0.0, 0.2), wide(0.0, 3.0);
  std::vector<linalg::Vector> rows;
  std::vector<int> y;
  for (int i = 0; i < 500; ++i) {
    rows.push_back({tight(rng), tight(rng)});
    y.push_back(0);
    rows.push_back({wide(rng), wide(rng)});
    y.push_back(1);
  }
  Dataset train;
  train.x = linalg::Matrix::from_rows(rows);
  train.y = y;
  Qda qda;
  qda.fit(train);
  EXPECT_EQ(qda.predict({0.05, -0.05}), 0);
  EXPECT_EQ(qda.predict({4.0, 4.0}), 1);
  // LDA with the pooled covariance cannot beat chance here by much.
  Lda lda;
  lda.fit(train);
  EXPECT_GT(qda.accuracy(train), lda.accuracy(train));
}

TEST(Qda, ShrinkageInterpolatesTowardPooled) {
  std::mt19937_64 rng(7);
  const Dataset train = two_blobs(30, 3.0, rng);
  DiscriminantConfig full;
  full.shrinkage = 1.0;
  Qda shrunk(full);
  shrunk.fit(train);
  Lda lda;
  lda.fit(train);
  // With shrinkage = 1 QDA uses the pooled covariance: decisions match LDA.
  std::mt19937_64 rng2(8);
  const Dataset probe = two_blobs(50, 3.0, rng2);
  for (std::size_t r = 0; r < probe.size(); ++r) {
    EXPECT_EQ(shrunk.predict(probe.x.row_vector(r)), lda.predict(probe.x.row_vector(r)));
  }
}

TEST(Lda, ScoresOrderedByDistance) {
  std::mt19937_64 rng(9);
  const Dataset train = two_blobs(100, 4.0, rng);
  Lda lda;
  lda.fit(train);
  const linalg::Vector s = lda.scores({-2.0, 0.0});
  EXPECT_GT(s[0], s[1]);
}

TEST(NaiveBayes, HandlesIndependentFeatures) {
  std::mt19937_64 rng(10);
  const Dataset train = two_blobs(200, 3.0, rng);
  GaussianNaiveBayes nb;
  nb.fit(train);
  EXPECT_GE(nb.accuracy(train), 0.95);
  EXPECT_THROW(nb.predict({1.0}), std::invalid_argument);  // dim mismatch
}

TEST(Knn, OneNearestNeighbourIsExactOnTrain) {
  std::mt19937_64 rng(11);
  const Dataset train = two_blobs(50, 1.0, rng);
  Knn knn(1);
  knn.fit(train);
  EXPECT_DOUBLE_EQ(knn.accuracy(train), 1.0);
}

TEST(Knn, LargerKSmoothsNoise) {
  std::mt19937_64 rng(12);
  Dataset train = two_blobs(200, 3.0, rng);
  // Inject label noise.
  for (std::size_t i = 0; i < train.size(); i += 17) train.y[i] ^= 1;
  const Dataset test = two_blobs(100, 3.0, rng);
  Knn k1(1), k9(9);
  k1.fit(train);
  k9.fit(train);
  EXPECT_GT(k9.accuracy(test), k1.accuracy(test));
  EXPECT_THROW(Knn(0), std::invalid_argument);
}

TEST(Svm, RbfSolvesXor) {
  std::mt19937_64 rng(13);
  const Dataset train = xor_blobs(60, rng);
  const Dataset test = xor_blobs(25, rng);
  Svm rbf;  // auto gamma
  rbf.fit(train);
  EXPECT_GE(rbf.accuracy(test), 0.95);
  // A linear machine cannot get much past chance on XOR.
  SvmConfig lin;
  lin.kernel = KernelType::kLinear;
  Svm linear(lin);
  linear.fit(train);
  EXPECT_LE(linear.accuracy(test), 0.8);
}

TEST(Svm, OneVsOneMachineCount) {
  std::mt19937_64 rng(14);
  std::normal_distribution<double> noise(0.0, 0.2);
  std::vector<linalg::Vector> rows;
  std::vector<int> y;
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 30; ++i) {
      rows.push_back({c * 3.0 + noise(rng), noise(rng)});
      y.push_back(c);
    }
  }
  Dataset train;
  train.x = linalg::Matrix::from_rows(rows);
  train.y = y;
  Svm svm;
  svm.fit(train);
  EXPECT_EQ(svm.num_machines(), 6u);  // C(4,2)
  EXPECT_GE(svm.accuracy(train), 0.99);
}

TEST(BinarySvm, RejectsBadLabels) {
  BinarySvm svm;
  const linalg::Matrix x{{0, 0}, {1, 1}};
  EXPECT_THROW(svm.fit(x, {1, 0}), std::invalid_argument);
  EXPECT_THROW(svm.fit(x, {1}), std::invalid_argument);
}

TEST(Metrics, AccuracyAndConfusion) {
  const std::vector<int> truth{0, 0, 1, 1, 2};
  const std::vector<int> pred{0, 1, 1, 1, 2};
  EXPECT_DOUBLE_EQ(accuracy(truth, pred), 0.8);

  ConfusionMatrix cm({0, 1, 2});
  cm.add_all(truth, pred);
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_EQ(cm.count(1, 1), 2u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.8);
  EXPECT_DOUBLE_EQ(cm.recall(0), 0.5);
  EXPECT_DOUBLE_EQ(cm.recall(1), 1.0);
  EXPECT_THROW(cm.add(9, 0), std::invalid_argument);
  EXPECT_FALSE(cm.to_string().empty());
}

TEST(CrossVal, ScoresNearTestAccuracy) {
  std::mt19937_64 rng(15);
  const Dataset data = two_blobs(120, 4.0, rng);
  const double cv = cross_val_accuracy([] { return std::make_unique<Lda>(); }, data, 4,
                                       rng);
  EXPECT_GE(cv, 0.95);
}

TEST(CrossVal, SvmGridSearchPicksReasonablePoint) {
  std::mt19937_64 rng(16);
  const Dataset data = two_blobs(60, 3.0, rng);
  const GridSearchResult r =
      svm_grid_search(data, rng, {1.0, 10.0}, {0.1, 1.0}, 3);
  EXPECT_EQ(r.all.size(), 4u);
  EXPECT_GE(r.best_accuracy, 0.9);
}

TEST(Factory, NamesMatchKinds) {
  EXPECT_EQ(to_string(ClassifierKind::kQda), "QDA");
  EXPECT_EQ(to_string(ClassifierKind::kSvmRbf), "SVM");
  EXPECT_EQ(make_classifier(ClassifierKind::kLda)->name(), "LDA");
  EXPECT_EQ(make_classifier(ClassifierKind::kKnn)->name(), "kNN(k=1)");
}

}  // namespace
}  // namespace sidis::ml

// Unit tests for the ISA metadata, naming, grouping and class registry.
#include <gtest/gtest.h>

#include <set>

#include "avr/grouping.hpp"
#include "avr/isa.hpp"

namespace sidis::avr {
namespace {

TEST(Isa, EveryMnemonicHasNameAndRoundTrips) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(Mnemonic::kCount); ++i) {
    const auto m = static_cast<Mnemonic>(i);
    const std::string_view n = name(m);
    EXPECT_FALSE(n.empty());
    const auto back = mnemonic_from_name(n);
    ASSERT_TRUE(back.has_value()) << n;
    EXPECT_EQ(*back, m);
  }
}

TEST(Isa, MnemonicLookupIsCaseInsensitive) {
  EXPECT_EQ(mnemonic_from_name("adc"), Mnemonic::kAdc);
  EXPECT_EQ(mnemonic_from_name("Adc"), Mnemonic::kAdc);
  EXPECT_EQ(mnemonic_from_name("bogus"), std::nullopt);
}

TEST(Isa, NamesAreUnique) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < static_cast<std::size_t>(Mnemonic::kCount); ++i) {
    EXPECT_TRUE(names.insert(name(static_cast<Mnemonic>(i))).second);
  }
}

TEST(Isa, TwoWordInstructionsAreExactlyFour) {
  std::set<Mnemonic> two_word;
  for (std::size_t i = 0; i < static_cast<std::size_t>(Mnemonic::kCount); ++i) {
    const auto m = static_cast<Mnemonic>(i);
    if (info(m).words == 2) two_word.insert(m);
  }
  EXPECT_EQ(two_word, (std::set<Mnemonic>{Mnemonic::kJmp, Mnemonic::kCall,
                                          Mnemonic::kLds, Mnemonic::kSts}));
}

TEST(Isa, ToStringFormats) {
  Instruction add;
  add.mnemonic = Mnemonic::kAdd;
  add.rd = 3;
  add.rr = 17;
  EXPECT_EQ(to_string(add), "ADD r3, r17");

  Instruction ldi;
  ldi.mnemonic = Mnemonic::kLdi;
  ldi.rd = 16;
  ldi.k8 = 255;
  EXPECT_EQ(to_string(ldi), "LDI r16, 255");

  Instruction ldd;
  ldd.mnemonic = Mnemonic::kLdd;
  ldd.mode = AddrMode::kYDisp;
  ldd.rd = 12;
  ldd.q = 5;
  EXPECT_EQ(to_string(ldd), "LDD r12, Y+5");

  Instruction st;
  st.mnemonic = Mnemonic::kSt;
  st.mode = AddrMode::kXPostInc;
  st.rr = 9;
  EXPECT_EQ(to_string(st), "ST X+, r9");

  Instruction brne;
  brne.mnemonic = Mnemonic::kBrne;
  brne.rel = -4;
  EXPECT_EQ(to_string(brne), "BRNE .-8");

  Instruction sec;
  sec.mnemonic = Mnemonic::kSec;
  EXPECT_EQ(to_string(sec), "SEC");

  Instruction lpm;
  lpm.mnemonic = Mnemonic::kLpm;
  lpm.mode = AddrMode::kR0;
  EXPECT_EQ(to_string(lpm), "LPM");
}

TEST(Isa, FlagShorthandsCoverAllSixteen) {
  int count = 0;
  for (std::size_t i = 0; i < static_cast<std::size_t>(Mnemonic::kCount); ++i) {
    std::uint8_t s = 0;
    bool set = false;
    if (is_flag_shorthand(static_cast<Mnemonic>(i), &s, &set)) {
      ++count;
      EXPECT_LE(s, 7);
    }
  }
  EXPECT_EQ(count, 16);  // SEx/CLx for all 8 flags (incl. CLI)
  std::uint8_t s = 9;
  bool set = false;
  EXPECT_TRUE(is_flag_shorthand(Mnemonic::kSec, &s, &set));
  EXPECT_EQ(s, kFlagC);
  EXPECT_TRUE(set);
  EXPECT_TRUE(is_flag_shorthand(Mnemonic::kClh, &s, &set));
  EXPECT_EQ(s, kFlagH);
  EXPECT_FALSE(set);
  EXPECT_FALSE(is_flag_shorthand(Mnemonic::kAdd));
}

TEST(Isa, BranchShorthandsCoverEighteen) {
  int count = 0;
  for (std::size_t i = 0; i < static_cast<std::size_t>(Mnemonic::kCount); ++i) {
    if (is_branch_shorthand(static_cast<Mnemonic>(i))) ++count;
  }
  EXPECT_EQ(count, 18);
  std::uint8_t s = 9;
  bool on_set = false;
  EXPECT_TRUE(is_branch_shorthand(Mnemonic::kBreq, &s, &on_set));
  EXPECT_EQ(s, kFlagZ);
  EXPECT_TRUE(on_set);
  EXPECT_TRUE(is_branch_shorthand(Mnemonic::kBrsh, &s, &on_set));
  EXPECT_EQ(s, kFlagC);
  EXPECT_FALSE(on_set);
}

TEST(Grouping, PaperCensusHolds) {
  EXPECT_EQ(num_instruction_classes(), 112u);
  const auto sizes = expected_group_sizes();
  std::size_t total = 0;
  for (int g = 1; g <= 8; ++g) {
    const auto classes = classes_in_group(g);
    EXPECT_EQ(classes.size(), static_cast<std::size_t>(sizes[static_cast<std::size_t>(g - 1)]))
        << "group " << g;
    total += classes.size();
    for (std::size_t c : classes) EXPECT_EQ(group_of_class(c), g);
  }
  EXPECT_EQ(total, 112u);
}

TEST(Grouping, ClassNamesAreUnique) {
  std::set<std::string> names;
  for (const ClassSpec& c : instruction_classes()) {
    EXPECT_TRUE(names.insert(c.name).second) << c.name;
  }
}

TEST(Grouping, ClassIndexLookupRoundTrips) {
  for (std::size_t i = 0; i < num_instruction_classes(); ++i) {
    const ClassSpec& c = instruction_classes()[i];
    EXPECT_EQ(class_index(c.mnemonic, c.mode), i);
  }
}

TEST(Grouping, ResidualMnemonicsHaveNoClass) {
  EXPECT_EQ(class_index(Mnemonic::kNop), std::nullopt);
  EXPECT_EQ(class_index(Mnemonic::kRet), std::nullopt);
  EXPECT_EQ(class_index(Mnemonic::kMul), std::nullopt);
  EXPECT_EQ(class_index(Mnemonic::kIn), std::nullopt);
}

TEST(Grouping, ModeVariantsAreDistinctClasses) {
  const auto ld_x = class_index(Mnemonic::kLd, AddrMode::kX);
  const auto ld_xp = class_index(Mnemonic::kLd, AddrMode::kXPostInc);
  ASSERT_TRUE(ld_x && ld_xp);
  EXPECT_NE(*ld_x, *ld_xp);
  EXPECT_EQ(class_index(Mnemonic::kLd, AddrMode::kNone), std::nullopt);
}

TEST(Grouping, OperandUsageFlags) {
  EXPECT_TRUE(class_uses_rd(*class_index(Mnemonic::kAdd)));
  EXPECT_TRUE(class_uses_rr(*class_index(Mnemonic::kAdd)));
  EXPECT_TRUE(class_uses_rd(*class_index(Mnemonic::kLdi)));
  EXPECT_FALSE(class_uses_rr(*class_index(Mnemonic::kLdi)));
  EXPECT_FALSE(class_uses_rd(*class_index(Mnemonic::kRjmp)));
  EXPECT_FALSE(class_uses_rd(*class_index(Mnemonic::kSec)));
  EXPECT_TRUE(class_uses_rd(*class_index(Mnemonic::kLd, AddrMode::kX)));
  EXPECT_TRUE(class_uses_rr(*class_index(Mnemonic::kSt, AddrMode::kX)));
  EXPECT_FALSE(class_uses_rd(*class_index(Mnemonic::kLpm, AddrMode::kR0)));
  EXPECT_TRUE(class_uses_rd(*class_index(Mnemonic::kLpm, AddrMode::kZ)));
  EXPECT_TRUE(class_uses_rr(*class_index(Mnemonic::kSbrc)));
  EXPECT_TRUE(class_uses_rd(*class_index(Mnemonic::kBld)));
}

TEST(Grouping, RegisterLegality) {
  const auto movw = *class_index(Mnemonic::kMovw);
  EXPECT_TRUE(class_allows_rd(movw, 4));
  EXPECT_FALSE(class_allows_rd(movw, 5));
  const auto adiw = *class_index(Mnemonic::kAdiw);
  EXPECT_TRUE(class_allows_rd(adiw, 24));
  EXPECT_FALSE(class_allows_rd(adiw, 25));
  EXPECT_FALSE(class_allows_rd(adiw, 0));
  const auto ldi = *class_index(Mnemonic::kLdi);
  EXPECT_FALSE(class_allows_rd(ldi, 15));
  EXPECT_TRUE(class_allows_rd(ldi, 16));
  const auto ldx = *class_index(Mnemonic::kLd, AddrMode::kX);
  EXPECT_TRUE(class_allows_rd(ldx, 25));
  EXPECT_FALSE(class_allows_rd(ldx, 26));  // pointer pair excluded
  const auto add = *class_index(Mnemonic::kAdd);
  for (std::uint8_t r = 0; r < 32; ++r) {
    EXPECT_TRUE(class_allows_rd(add, r));
    EXPECT_TRUE(class_allows_rr(add, r));
  }
  EXPECT_FALSE(class_allows_rd(add, 32));
  // Classes without the operand reject everything.
  EXPECT_FALSE(class_allows_rr(ldi, 5));
}

}  // namespace
}  // namespace sidis::avr

// Integration-level tests for the hierarchical disassembler, majority
// voting, malware detection and the baselines, on small simulated corpora.
#include <gtest/gtest.h>

#include <random>

#include <stdexcept>

#include "avr/assembler.hpp"
#include "baseline/baselines.hpp"
#include "core/csa.hpp"
#include "core/disassembler.hpp"
#include "core/hierarchical.hpp"
#include "core/majority_vote.hpp"
#include "core/transfer.hpp"
#include "sim/acquisition.hpp"

namespace sidis::core {
namespace {

class CoreFixture : public ::testing::Test {
 protected:
  sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                    sim::SessionContext::make(0)};
  std::mt19937_64 rng{2024};

  sim::TraceSet capture(avr::Mnemonic m, std::size_t n,
                        avr::AddrMode mode = avr::AddrMode::kNone) {
    return campaign.capture_class(*avr::class_index(m, mode), n, 5, rng);
  }
};

TEST_F(CoreFixture, HierarchicalClassifiesAcrossGroups) {
  ProfilingData data;
  data.classes[*avr::class_index(avr::Mnemonic::kAdd)] = capture(avr::Mnemonic::kAdd, 80);
  data.classes[*avr::class_index(avr::Mnemonic::kEor)] = capture(avr::Mnemonic::kEor, 80);
  data.classes[*avr::class_index(avr::Mnemonic::kLdi)] = capture(avr::Mnemonic::kLdi, 80);
  data.classes[*avr::class_index(avr::Mnemonic::kRjmp)] = capture(avr::Mnemonic::kRjmp, 80);

  HierarchicalConfig cfg;
  cfg.pipeline = csa_config();
  cfg.pipeline.pca_components = 20;
  cfg.group_components = 15;
  cfg.instruction_components = 15;
  cfg.factory.discriminant.shrinkage = 0.15;
  const auto model = HierarchicalDisassembler::train(data, cfg);

  // Fresh traces, unseen programs.
  std::size_t group_hits = 0, class_hits = 0, total = 0;
  for (avr::Mnemonic m : {avr::Mnemonic::kAdd, avr::Mnemonic::kEor, avr::Mnemonic::kLdi,
                          avr::Mnemonic::kRjmp}) {
    const std::size_t cls = *avr::class_index(m);
    for (int i = 0; i < 15; ++i) {
      const sim::Trace t = campaign.capture_trace(
          avr::random_instance(cls, rng), sim::ProgramContext::make(60 + i % 3), rng);
      const Disassembly d = model.classify(t);
      group_hits += d.group == avr::group_of_class(cls) ? 1 : 0;
      class_hits += d.class_idx == cls ? 1 : 0;
      ++total;
    }
  }
  EXPECT_GE(static_cast<double>(group_hits) / static_cast<double>(total), 0.95);
  EXPECT_GE(static_cast<double>(class_hits) / static_cast<double>(total), 0.85);
}

TEST_F(CoreFixture, SingleClassGroupIsTrivialLevel) {
  ProfilingData data;
  data.classes[*avr::class_index(avr::Mnemonic::kAdd)] = capture(avr::Mnemonic::kAdd, 60);
  data.classes[*avr::class_index(avr::Mnemonic::kLds, avr::AddrMode::kAbs)] =
      capture(avr::Mnemonic::kLds, 60, avr::AddrMode::kAbs);
  HierarchicalConfig cfg;
  cfg.pipeline = csa_config();
  cfg.pipeline.pca_components = 10;
  cfg.group_components = 8;
  const auto model = HierarchicalDisassembler::train(data, cfg);
  // Group 5 holds a single profiled class: level 2 must be trivial.
  const sim::Trace t = campaign.capture_trace(
      avr::random_instance(*avr::class_index(avr::Mnemonic::kLds, avr::AddrMode::kAbs), rng),
      sim::ProgramContext::make(0), rng);
  EXPECT_EQ(model.classify_within_group(5, t),
            *avr::class_index(avr::Mnemonic::kLds, avr::AddrMode::kAbs));
}

TEST_F(CoreFixture, RegisterLevelRecoversOperands) {
  ProfilingData data;
  data.classes[*avr::class_index(avr::Mnemonic::kEor)] = capture(avr::Mnemonic::kEor, 60);
  data.classes[*avr::class_index(avr::Mnemonic::kLdi)] = capture(avr::Mnemonic::kLdi, 60);
  for (std::uint8_t r : {4, 20}) {
    data.rd_classes[r] = campaign.capture_register(true, r, 220, 5, rng);
    data.rr_classes[r] = campaign.capture_register(false, r, 220, 5, rng);
  }
  HierarchicalConfig cfg;
  cfg.pipeline = csa_config();
  cfg.pipeline.pca_components = 20;
  cfg.factory.discriminant.shrinkage = 0.15;
  const auto model = HierarchicalDisassembler::train(data, cfg);
  ASSERT_TRUE(model.has_register_level());

  avr::SampleOptions opts;
  opts.fix_rd = 20;
  opts.fix_rr = 4;
  std::size_t rd_hits = 0, rr_hits = 0;
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    const avr::Instruction target =
        avr::random_instance(*avr::class_index(avr::Mnemonic::kEor), rng, opts);
    const sim::Trace t =
        campaign.capture_trace(target, sim::ProgramContext::make(70), rng);
    const Disassembly d = model.classify(t);
    if (d.rd && *d.rd == 20) ++rd_hits;
    if (d.rr && *d.rr == 4) ++rr_hits;
  }
  EXPECT_GE(rd_hits, n * 7 / 10);
  EXPECT_GE(rr_hits, n * 7 / 10);
}

TEST_F(CoreFixture, BatchClassifyIsBitIdenticalToPerWindowClassify) {
  ProfilingData data;
  for (avr::Mnemonic m :
       {avr::Mnemonic::kAdd, avr::Mnemonic::kLdi, avr::Mnemonic::kCom}) {
    data.classes[*avr::class_index(m)] = capture(m, 60);
  }
  HierarchicalConfig cfg;
  cfg.pipeline = csa_config();
  cfg.pipeline.pca_components = 10;
  cfg.group_components = 8;
  cfg.instruction_components = 8;
  auto model = HierarchicalDisassembler::train(data, cfg);
  model.calibrate_reject(data, RejectOperatingPoint::kBalanced);

  sim::TraceSet eval;
  for (int i = 0; i < 30; ++i) {
    const std::size_t cls =
        *avr::class_index(i % 2 == 0 ? avr::Mnemonic::kAdd : avr::Mnemonic::kLdi);
    eval.push_back(campaign.capture_trace(avr::random_instance(cls, rng),
                                          sim::ProgramContext::make(i % 4), rng));
  }
  // The batched entry point shares one workspace and one normalization pass
  // per window across levels -- but runs the identical arithmetic, so every
  // field down to the gate headrooms must be bit-equal to the per-window
  // path.  This is what makes batch *grouping* (a scheduling accident in the
  // fleet runtime) invisible in the results.
  const std::vector<Disassembly> batched = model.classify_batch(eval);
  ASSERT_EQ(batched.size(), eval.size());
  for (std::size_t i = 0; i < eval.size(); ++i) {
    const Disassembly single = model.classify(eval[i]);
    EXPECT_EQ(batched[i].group, single.group) << "window " << i;
    EXPECT_EQ(batched[i].class_idx, single.class_idx) << "window " << i;
    EXPECT_EQ(batched[i].rd, single.rd) << "window " << i;
    EXPECT_EQ(batched[i].rr, single.rr) << "window " << i;
    EXPECT_EQ(batched[i].verdict, single.verdict) << "window " << i;
    EXPECT_EQ(batched[i].margin_headroom, single.margin_headroom) << "window " << i;
    EXPECT_EQ(batched[i].score_headroom, single.score_headroom) << "window " << i;
  }
  EXPECT_TRUE(model.classify_batch({}).empty());
}

TEST_F(CoreFixture, NamedRejectOperatingPointsNestMonotonically) {
  ProfilingData data;
  for (avr::Mnemonic m :
       {avr::Mnemonic::kAdd, avr::Mnemonic::kLdi, avr::Mnemonic::kCom}) {
    data.classes[*avr::class_index(m)] = capture(m, 60);
  }
  HierarchicalConfig cfg;
  cfg.pipeline = csa_config();
  cfg.pipeline.pca_components = 10;
  cfg.group_components = 8;
  cfg.instruction_components = 8;
  auto model = HierarchicalDisassembler::train(data, cfg);

  // Eval mixes clean windows with off-distribution ones (a different process
  // corner and session) so the gates have something to trip on.
  sim::AcquisitionCampaign corner{sim::DeviceModel::make(7),
                                  sim::SessionContext::make(3)};
  sim::TraceSet eval;
  for (int i = 0; i < 30; ++i) {
    const std::size_t cls =
        *avr::class_index(i % 2 == 0 ? avr::Mnemonic::kAdd : avr::Mnemonic::kCom);
    eval.push_back(campaign.capture_trace(avr::random_instance(cls, rng),
                                          sim::ProgramContext::make(i % 4), rng));
    eval.push_back(corner.capture_trace(avr::random_instance(cls, rng),
                                        sim::ProgramContext::make(i % 4), rng));
  }

  // A stricter point places every gate floor at a higher clean quantile with
  // less slack, so its rejection set must CONTAIN every looser point's --
  // rejecting a window at "monitoring" but accepting it at "strict" would
  // make the presets incoherent as an escalation ladder.
  const RejectOperatingPoint ladder[] = {RejectOperatingPoint::kMonitoring,
                                         RejectOperatingPoint::kBalanced,
                                         RejectOperatingPoint::kStrict};
  std::vector<std::vector<bool>> flagged;
  for (const RejectOperatingPoint point : ladder) {
    model.calibrate_reject(data, point);
    EXPECT_EQ(model.reject_operating_point(), point);
    std::vector<bool> f;
    f.reserve(eval.size());
    for (const sim::Trace& t : eval) {
      f.push_back(model.classify(t).verdict != Verdict::kOk);
    }
    flagged.push_back(std::move(f));
  }
  for (std::size_t p = 1; p < flagged.size(); ++p) {
    for (std::size_t i = 0; i < eval.size(); ++i) {
      if (flagged[p - 1][i]) {
        EXPECT_TRUE(flagged[p][i])
            << "window " << i << " flagged at ladder step " << p - 1
            << " but clean at stricter step " << p;
      }
    }
  }
  // kCustom names the absence of a preset -- it has no quantiles to hand out.
  EXPECT_THROW(reject_config_for(RejectOperatingPoint::kCustom),
               std::invalid_argument);
}

TEST_F(CoreFixture, TrainRejectsEmptyCorpus) {
  ProfilingData data;
  EXPECT_THROW(HierarchicalDisassembler::train(data), std::invalid_argument);
  data.classes[0] = {};
  EXPECT_THROW(HierarchicalDisassembler::train(data), std::invalid_argument);
}

TEST(Disassembly, TextAndInstructionReconstruction) {
  Disassembly d;
  d.class_idx = *avr::class_index(avr::Mnemonic::kEor);
  d.group = 1;
  d.rd = 16;
  d.rr = 17;
  EXPECT_EQ(d.text(), "EOR r16, r17");
  const avr::Instruction in = d.to_instruction();
  EXPECT_EQ(in.mnemonic, avr::Mnemonic::kEor);
  EXPECT_EQ(in.rd, 16);
}

Disassembly observation(avr::Mnemonic m, Verdict v, double margin, double score) {
  Disassembly d;
  d.class_idx = *avr::class_index(m);
  d.verdict = v;
  d.margin_headroom = margin;
  d.score_headroom = score;
  return d;
}

TEST(VoteWeight, RejectedWindowsCarryNoWeight) {
  EXPECT_EQ(vote_weight(observation(avr::Mnemonic::kAdd, Verdict::kRejected, 5.0, 5.0)), 0.0);
  // A rejected window's headroom is irrelevant: the recovery is a guess.
  EXPECT_EQ(vote_weight(observation(avr::Mnemonic::kAdd, Verdict::kRejected, -0.3, 1.0)), 0.0);
}

TEST(VoteWeight, UnarmedGatesReproducePlainMajorityVoting) {
  // Before calibrate_reject() every window carries +inf headroom; the weight
  // must collapse to the pre-reject-option behaviour of one vote per window.
  Disassembly d;  // default: kOk, +inf headrooms
  EXPECT_EQ(vote_weight(d), 1.0);
}

TEST(VoteWeight, AcceptedWeightIsWorstHeadroomClampedToTheBand) {
  using M = avr::Mnemonic;
  // Worst of the two signed headrooms drives the vote.
  EXPECT_DOUBLE_EQ(vote_weight(observation(M::kAdd, Verdict::kOk, 0.3, 0.6)), 0.3);
  EXPECT_DOUBLE_EQ(vote_weight(observation(M::kAdd, Verdict::kOk, 0.9, 0.2)), 0.2);
  // Barely-accepted windows floor at kMinAcceptedWeight, never at zero...
  EXPECT_DOUBLE_EQ(vote_weight(observation(M::kAdd, Verdict::kDegraded, 1e-9, 4.0)),
                   kMinAcceptedWeight);
  // ...and confidently-clean windows cap at one full vote.
  EXPECT_DOUBLE_EQ(vote_weight(observation(M::kAdd, Verdict::kOk, 7.0, 3.0)), 1.0);
}

TEST(SlotVote, RejectedBurstCanNoLongerFlipASlotDecision) {
  // The ROADMAP bug: three rejected windows all guessing SUB used to outvote
  // two cleanly accepted ADD windows (3 > 5/2 under the old unweighted count
  // rule).  With signed-headroom weights the rejected burst casts nothing.
  SlotVote slot;
  int rejected_votes = 0, accepted_votes = 0, repeats = 0;
  const auto add = [&](const Disassembly& d) {
    slot.add(d);
    ++repeats;
    (d.accepted() ? accepted_votes : rejected_votes) += 1;
  };
  add(observation(avr::Mnemonic::kAdd, Verdict::kOk, 0.8, 0.9));
  add(observation(avr::Mnemonic::kSub, Verdict::kRejected, 2.0, 2.0));
  add(observation(avr::Mnemonic::kSub, Verdict::kRejected, 2.0, 2.0));
  add(observation(avr::Mnemonic::kAdd, Verdict::kOk, 0.7, 0.6));
  add(observation(avr::Mnemonic::kSub, Verdict::kRejected, 2.0, 2.0));

  // Document the pre-fix failure mode: the count rule picks the reject burst.
  ASSERT_GT(rejected_votes, repeats / 2);
  ASSERT_LT(accepted_votes, repeats / 2 + 1);

  EXPECT_EQ(slot.winner().class_idx, *avr::class_index(avr::Mnemonic::kAdd));
  EXPECT_DOUBLE_EQ(slot.winner_weight(), 0.8 + 0.6);
  EXPECT_DOUBLE_EQ(slot.total_weight(), 0.8 + 0.6);
}

TEST(SlotVote, AllRejectedYieldsAnEmptyWinnerWithZeroWeight) {
  SlotVote slot;
  slot.add(observation(avr::Mnemonic::kSub, Verdict::kRejected, 1.0, 1.0));
  slot.add(observation(avr::Mnemonic::kSub, Verdict::kRejected, 1.0, 1.0));
  EXPECT_EQ(slot.total_weight(), 0.0);
  EXPECT_EQ(slot.winner_weight(), 0.0);
  EXPECT_EQ(slot.winner().text(), Disassembly{}.text());
}

TEST(SlotVote, TiesResolveToTheEarliestSeenCandidate) {
  SlotVote slot;
  slot.add(observation(avr::Mnemonic::kCom, Verdict::kOk, 0.4, 0.9));
  slot.add(observation(avr::Mnemonic::kAdd, Verdict::kOk, 0.4, 0.9));
  EXPECT_EQ(slot.winner().class_idx, *avr::class_index(avr::Mnemonic::kCom));
  slot.add(observation(avr::Mnemonic::kAdd, Verdict::kOk, 0.1, 0.9));
  EXPECT_EQ(slot.winner().class_idx, *avr::class_index(avr::Mnemonic::kAdd));
  EXPECT_DOUBLE_EQ(slot.winner_weight(), 0.5);
}

TEST_F(CoreFixture, MajorityVoteBeatsGeneralAtLowDims) {
  features::LabeledTraces train, test;
  std::vector<sim::TraceSet> train_sets, test_sets;
  const std::vector<avr::Mnemonic> ms = {avr::Mnemonic::kAdd, avr::Mnemonic::kSub,
                                         avr::Mnemonic::kAnd, avr::Mnemonic::kOr};
  for (avr::Mnemonic m : ms) {
    train_sets.push_back(capture(m, 80));
    test_sets.push_back(capture(m, 25));
  }
  for (std::size_t i = 0; i < ms.size(); ++i) {
    const int label = static_cast<int>(*avr::class_index(ms[i]));
    train.labels.push_back(label);
    train.sets.push_back(&train_sets[i]);
    test.labels.push_back(label);
    test.sets.push_back(&test_sets[i]);
  }

  MajorityVoteConfig cfg;
  cfg.pipeline = csa_config();
  cfg.pipeline.pca_components = 2;
  cfg.factory.discriminant.shrinkage = 0.15;
  const auto voter = MajorityVoteClassifier::train(train, cfg);
  EXPECT_EQ(voter.num_pairs(), 6u);

  std::size_t mv_hits = 0, total = 0;
  for (std::size_t i = 0; i < test.sets.size(); ++i) {
    for (const sim::Trace& t : *test.sets[i]) {
      mv_hits += voter.predict(t) == test.labels[i] ? 1 : 0;
      ++total;
    }
  }
  features::PipelineConfig gcfg = csa_config();
  gcfg.pca_components = 2;
  const auto pipe = features::FeaturePipeline::fit(train, gcfg);
  ml::Qda qda;
  qda.fit(pipe.transform(train));
  const double general = qda.accuracy(pipe.transform(test));
  const double mv = static_cast<double>(mv_hits) / static_cast<double>(total);
  EXPECT_GT(mv, general);
}

TEST_F(CoreFixture, MalwareDetectorFlagsRegisterSubstitution) {
  const avr::Program golden =
      avr::assemble("LDI r16, 1\nEOR r16, r17\nMOV r2, r16").program;
  const MalwareDetector detector(golden);

  // Perfect recovery: no findings.
  std::vector<Disassembly> ok(golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    ok[i].class_idx = *avr::class_of(golden[i]);
    ok[i].rd = golden[i].rd;
    ok[i].rr = golden[i].rr;
  }
  EXPECT_TRUE(detector.check(ok).empty());

  // Rr substitution on the EOR.
  std::vector<Disassembly> bad = ok;
  bad[1].rr = 0;
  const auto findings = detector.check(bad);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].rr_mismatch);
  EXPECT_FALSE(findings[0].class_mismatch);
  EXPECT_EQ(findings[0].index, 1u);
  EXPECT_NE(findings[0].describe().find("Rr tampered"), std::string::npos);

  // Opcode substitution.
  std::vector<Disassembly> swapped = ok;
  swapped[1].class_idx = *avr::class_index(avr::Mnemonic::kAnd);
  const auto findings2 = detector.check(swapped);
  ASSERT_EQ(findings2.size(), 1u);
  EXPECT_TRUE(findings2[0].class_mismatch);

  // Truncated stream: missing instructions are reported.
  std::vector<Disassembly> shorter(ok.begin(), ok.end() - 1);
  EXPECT_EQ(detector.check(shorter).size(), 1u);
}

TEST_F(CoreFixture, MalwareDetectorSkipsUnprofiledGolden) {
  const avr::Program golden = avr::assemble("NOP\nEOR r16, r17").program;
  const MalwareDetector detector(golden);
  std::vector<Disassembly> recovered(2);
  recovered[0].class_idx = *avr::class_index(avr::Mnemonic::kAdd);  // garbage for NOP
  recovered[1].class_idx = *avr::class_of(golden[1]);
  recovered[1].rd = 16;
  recovered[1].rr = 17;
  EXPECT_TRUE(detector.check(recovered).empty());
}

TEST_F(CoreFixture, ListingRendersRecoveredStream) {
  std::vector<Disassembly> ds(2);
  ds[0].class_idx = *avr::class_index(avr::Mnemonic::kAdd);
  ds[0].rd = 1;
  ds[0].rr = 2;
  ds[1].class_idx = *avr::class_index(avr::Mnemonic::kRjmp);
  EXPECT_EQ(listing(ds), "ADD r1, r2\nRJMP .0\n");
}

TEST_F(CoreFixture, BaselinesTrainAndClassify) {
  features::LabeledTraces train, test;
  std::vector<sim::TraceSet> train_sets, test_sets;
  for (avr::Mnemonic m : {avr::Mnemonic::kAdd, avr::Mnemonic::kLdi}) {
    train_sets.push_back(capture(m, 60));
    test_sets.push_back(capture(m, 20));
  }
  for (std::size_t i = 0; i < 2; ++i) {
    train.labels.push_back(static_cast<int>(i));
    train.sets.push_back(&train_sets[i]);
    test.labels.push_back(static_cast<int>(i));
    test.sets.push_back(&test_sets[i]);
  }
  baseline::BaselineConfig cfg;
  cfg.pca_components = 10;
  const auto msgna = baseline::train_msgna(train, cfg);
  const auto eisenbarth = baseline::train_eisenbarth(train, cfg);
  // ADD vs LDI cross 2 groups: easy for everyone under matched conditions.
  EXPECT_GE(msgna.accuracy(test), 0.9);
  EXPECT_GE(eisenbarth.accuracy(test), 0.9);
}

// -- multi-device zero-shot protocol ----------------------------------------

TransferConfig small_transfer_base() {
  TransferConfig base;
  base.classes = {*avr::class_index(avr::Mnemonic::kAdd),
                  *avr::class_index(avr::Mnemonic::kAdc),
                  *avr::class_index(avr::Mnemonic::kSub)};
  base.num_programs = 3;
  base.model.pipeline = csa_config();
  base.model.pipeline.pca_components = 18;
  base.model.group_components = 15;
  base.model.instruction_components = 15;
  base.model.factory.discriminant.shrinkage = 0.15;
  base.eval_workers = 2;
  return base;
}

TEST(MultiDevice, PooledZeroShotProtocolIsAccountedAndGated) {
  MultiDeviceConfig md;
  md.train_devices = {0, 1};
  md.holdout_device = 7;
  md.holdout_corner = true;
  md.configs = {sim::AcquisitionConfig::nominal(),
                sim::AcquisitionConfig::low_resolution(6)};
  md.traces_per_class = 18;
  md.test_traces_per_class = 15;

  const MultiDeviceResult result =
      evaluate_multi_device(md, small_transfer_base());

  EXPECT_EQ(result.holdout_device, 7);
  // Pooled corpus accounting: classes x fleet x configs x budget.
  EXPECT_EQ(result.pooled_train_traces, 3u * 2u * 2u * 18u);
  ASSERT_EQ(result.singles.size(), 2u);
  double best = 0.0;
  for (const SingleDeviceBaseline& s : result.singles) {
    EXPECT_GE(s.accuracy, 0.0);
    EXPECT_LE(s.accuracy, 1.0);
    best = std::max(best, s.accuracy);
  }
  EXPECT_EQ(result.best_single_accuracy, best);
  EXPECT_EQ(result.pooled_lift,
            result.pooled_accuracy - result.best_single_accuracy);
  // The zero-shot claim on the corner device: pooling devices and configs
  // never loses to the best budget-matched single profile (the *strict* lift
  // is gated on the full 112-class bench; the smoke corpus pins no-regress).
  EXPECT_GE(result.pooled_lift, 0.0)
      << "pooled " << result.pooled_accuracy << " vs best single "
      << result.best_single_accuracy;
  // Reject gates were calibrated on the pooled profiling corpus only, yet on
  // the unseen corner device they must stay useful: some windows accepted,
  // and at least half of the misclassified windows flagged (!kOk).
  EXPECT_GT(result.pooled_accepted_fraction, 0.0);
  EXPECT_LE(result.pooled_accepted_fraction, 1.0);
  EXPECT_GE(result.pooled_flagged_miss_fraction, 0.5)
      << "gates calibrated on pooled data lost track of holdout misses";
}

TEST(MultiDevice, ValidationRejectsDegenerateProtocols) {
  const TransferConfig base = small_transfer_base();
  {
    MultiDeviceConfig md;
    md.train_devices = {};
    EXPECT_THROW((void)evaluate_multi_device(md, base), std::invalid_argument);
  }
  {
    MultiDeviceConfig md;
    md.train_devices = {0, 1, 7};  // holdout profiled: nothing is zero-shot
    md.holdout_device = 7;
    EXPECT_THROW((void)evaluate_multi_device(md, base), std::invalid_argument);
  }
  {
    MultiDeviceConfig md;
    md.configs = {sim::AcquisitionConfig::nominal(),
                  sim::AcquisitionConfig::half_rate()};  // mixed sample grids
    EXPECT_THROW((void)evaluate_multi_device(md, base), std::invalid_argument);
  }
  {
    TransferConfig degenerate = base;
    degenerate.classes.resize(1);
    EXPECT_THROW((void)evaluate_multi_device(MultiDeviceConfig{}, degenerate),
                 std::invalid_argument);
  }
  {
    TransferConfig non_qda = base;
    non_qda.model.classifier = ml::ClassifierKind::kKnn;
    EXPECT_THROW((void)evaluate_multi_device(MultiDeviceConfig{}, non_qda),
                 std::invalid_argument);
  }
}

}  // namespace
}  // namespace sidis::core

// Fleet frontend battery: multi-tenant stream routing over shared shards.
//
// Contracts pinned here: per-stream in-order delivery under adversarial
// completion order, bit-identical results at any shard worker count (batch
// grouping is a scheduling accident, classification is not), admission
// control accounting (delivered + shed == admitted, both policies),
// per-stream drift-monitor isolation, registry-resolved model sharing with
// coherent result stamps, and actual coalescing through the batched engine
// entry point.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <random>
#include <thread>

#include "avr/grouping.hpp"
#include "core/csa.hpp"
#include "runtime/fleet.hpp"
#include "runtime/registry.hpp"
#include "sim/acquisition.hpp"

namespace sidis::runtime {
namespace {

using namespace std::chrono_literals;

// -- stub-stage helpers ------------------------------------------------------

sim::Trace tagged_trace(int tag) {
  sim::Trace t;
  t.samples = {0.0};
  t.meta.program_id = tag;
  return t;
}

/// Stage that echoes the window's tag into class_idx after an adversarial,
/// order-inverting delay -- late submissions finish first.
StreamingDisassembler::StageRef echo_stage() {
  StreamingDisassembler::ClassifyFn fn = [](const sim::Trace& t) {
    const auto tag = static_cast<std::size_t>(t.meta.program_id);
    std::this_thread::sleep_for(std::chrono::microseconds(100 * (7 - tag % 7)));
    core::Disassembly d;
    d.class_idx = tag;
    return d;
  };
  return std::make_shared<const StreamingDisassembler::Stage>(
      StreamingDisassembler::Stage{std::move(fn), nullptr, 0});
}

/// Stage that blocks every classification until `release` flips -- lets a
/// test wedge the shard engine and exercise admission control on a backlog
/// that cannot drain.
StreamingDisassembler::StageRef gated_stage(std::atomic<bool>* release) {
  StreamingDisassembler::ClassifyFn fn = [release](const sim::Trace& t) {
    while (!release->load()) std::this_thread::sleep_for(1ms);
    core::Disassembly d;
    d.class_idx = static_cast<std::size_t>(t.meta.program_id);
    return d;
  };
  return std::make_shared<const StreamingDisassembler::Stage>(
      StreamingDisassembler::Stage{std::move(fn), nullptr, 0});
}

// -- model fixture -----------------------------------------------------------

class FleetModelFixture : public ::testing::Test {
 protected:
  /// One trained 3-class model with training moments and armed reject
  /// gates, shared across the suite.
  static std::shared_ptr<const core::HierarchicalDisassembler> model() {
    static const std::shared_ptr<const core::HierarchicalDisassembler> m = [] {
      sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                        sim::SessionContext::make(0)};
      std::mt19937_64 rng{41};
      core::ProfilingData data;
      for (avr::Mnemonic mn :
           {avr::Mnemonic::kAdd, avr::Mnemonic::kLdi, avr::Mnemonic::kCom}) {
        data.classes[*avr::class_index(mn)] =
            campaign.capture_class(*avr::class_index(mn), 50, 5, rng);
      }
      core::HierarchicalConfig cfg;
      cfg.pipeline = core::csa_config();
      cfg.pipeline.pca_components = 10;
      cfg.group_components = 8;
      cfg.instruction_components = 8;
      auto trained = std::make_shared<core::HierarchicalDisassembler>(
          core::HierarchicalDisassembler::train(data, cfg));
      trained->calibrate_reject(data, core::RejectOperatingPoint::kMonitoring);
      return std::static_pointer_cast<const core::HierarchicalDisassembler>(trained);
    }();
    return m;
  }

  /// `n` windows with classes rotating over the profiled set, captured on
  /// `campaign` at fixed drift `progress`.
  static sim::TraceSet windows_on(const sim::AcquisitionCampaign& campaign,
                                  std::size_t n, std::uint64_t seed,
                                  double progress) {
    static const std::vector<std::size_t> classes = {
        *avr::class_index(avr::Mnemonic::kAdd),
        *avr::class_index(avr::Mnemonic::kLdi),
        *avr::class_index(avr::Mnemonic::kCom)};
    std::mt19937_64 rng{seed};
    sim::TraceSet out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(campaign.capture_trace(
          avr::random_instance(classes[i % classes.size()], rng, {}),
          sim::ProgramContext::make(static_cast<int>(i % 4)), rng, progress));
    }
    return out;
  }

  static sim::TraceSet clean_windows(std::size_t n, std::uint64_t seed) {
    sim::AcquisitionCampaign clean{sim::DeviceModel::make(0),
                                   sim::SessionContext::make(0)};
    return windows_on(clean, n, seed, 0.0);
  }

  /// Admits `trace`, polling the stream's ready queue to free credit when
  /// the submit is refused -- the well-behaved tenant loop.
  static void submit_pumping(FleetFrontend& fleet, FleetFrontend::StreamId id,
                             const sim::Trace& trace,
                             std::vector<FleetResult>* delivered) {
    for (;;) {
      const AdmitResult r = fleet.submit(id, trace);
      if (r.accepted()) return;
      ASSERT_EQ(r.status, AdmitStatus::kRejected);
      bool drained = false;
      while (auto polled = fleet.poll(id)) {
        if (delivered != nullptr) delivered->push_back(std::move(*polled));
        drained = true;
      }
      if (!drained) std::this_thread::yield();
    }
  }
};

// -- multi-stream ordering ---------------------------------------------------

TEST(Fleet, PerStreamDeliveryIsInOrderUnderAdversarialCompletion) {
  FleetConfig cfg;
  cfg.shards = 2;
  cfg.workers_per_shard = 2;
  cfg.batch_max = 4;
  cfg.stream_credit = 16;
  FleetFrontend fleet(echo_stage(), cfg);

  constexpr std::size_t kStreams = 6;
  constexpr int kWindows = 12;
  std::vector<FleetFrontend::StreamId> ids;
  for (std::size_t s = 0; s < kStreams; ++s) ids.push_back(fleet.open_stream());

  // Interleave submissions across streams so shard queues genuinely mix
  // tenants; every admit must hand out this stream's next sequence.
  for (int i = 0; i < kWindows; ++i) {
    for (std::size_t s = 0; s < kStreams; ++s) {
      const AdmitResult r =
          fleet.submit(ids[s], tagged_trace(static_cast<int>(s) * 100 + i));
      ASSERT_TRUE(r.accepted());
      EXPECT_EQ(r.stream_sequence, static_cast<std::uint64_t>(i));
    }
  }

  for (std::size_t s = 0; s < kStreams; ++s) {
    std::vector<FleetResult> got;
    while (auto r = fleet.poll(ids[s])) got.push_back(std::move(*r));
    for (FleetResult& r : fleet.close_stream(ids[s])) got.push_back(std::move(r));
    ASSERT_EQ(got.size(), static_cast<std::size_t>(kWindows)) << "stream " << s;
    for (int i = 0; i < kWindows; ++i) {
      EXPECT_EQ(got[i].stream_sequence, static_cast<std::uint64_t>(i))
          << "stream " << s << " delivered out of order";
      EXPECT_EQ(got[i].value.class_idx, s * 100 + static_cast<std::size_t>(i))
          << "stream " << s << " got another stream's result";
    }
  }

  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.streams_opened, kStreams);
  EXPECT_EQ(stats.streams_closed, kStreams);
  EXPECT_EQ(stats.streams_live, 0u);
  EXPECT_EQ(stats.windows_admitted, kStreams * kWindows);
  EXPECT_EQ(stats.windows_delivered, kStreams * kWindows);
  EXPECT_EQ(stats.windows_shed, 0u);
  EXPECT_EQ(stats.windows_rejected, 0u);
  EXPECT_EQ(stats.admit_to_deliver.count(), kStreams * kWindows);

  // Closed handles are dead: submits refuse, close is idempotent.
  EXPECT_EQ(fleet.submit(ids[0], tagged_trace(0)).status, AdmitStatus::kClosed);
  EXPECT_TRUE(fleet.close_stream(ids[0]).empty());
  EXPECT_FALSE(fleet.poll(ids[0]).has_value());
}

// -- worker-count invariance -------------------------------------------------

TEST_F(FleetModelFixture, ResultsAreBitIdenticalAcrossShardWorkerCounts) {
  constexpr std::size_t kStreams = 6;
  constexpr std::size_t kWindows = 10;
  std::vector<sim::TraceSet> per_stream;
  for (std::size_t s = 0; s < kStreams; ++s) {
    per_stream.push_back(clean_windows(kWindows, 0x1000 + s));
  }

  for (const std::size_t workers : {1u, 2u, 8u}) {
    SCOPED_TRACE("workers_per_shard=" + std::to_string(workers));
    FleetConfig cfg;
    cfg.shards = 2;
    cfg.workers_per_shard = workers;
    cfg.batch_max = 4;
    cfg.stream_credit = 16;
    FleetFrontend fleet(model(), cfg);

    std::vector<FleetFrontend::StreamId> ids;
    for (std::size_t s = 0; s < kStreams; ++s) ids.push_back(fleet.open_stream());
    for (std::size_t i = 0; i < kWindows; ++i) {
      for (std::size_t s = 0; s < kStreams; ++s) {
        ASSERT_TRUE(fleet.submit(ids[s], per_stream[s][i]).accepted());
      }
    }
    for (std::size_t s = 0; s < kStreams; ++s) {
      std::vector<FleetResult> got;
      while (auto r = fleet.poll(ids[s])) got.push_back(std::move(*r));
      for (FleetResult& r : fleet.close_stream(ids[s])) got.push_back(std::move(r));
      ASSERT_EQ(got.size(), kWindows);
      // Batch grouping depends on worker timing; the results must not.  The
      // reference is the serial per-window classify -- agreeing with it at
      // every worker count proves both correctness and invariance.
      for (std::size_t i = 0; i < kWindows; ++i) {
        const core::Disassembly serial = model()->classify(per_stream[s][i]);
        ASSERT_EQ(got[i].stream_sequence, i);
        EXPECT_EQ(got[i].value.group, serial.group);
        EXPECT_EQ(got[i].value.class_idx, serial.class_idx);
        EXPECT_EQ(got[i].value.verdict, serial.verdict);
        EXPECT_EQ(got[i].value.margin_headroom, serial.margin_headroom);
        EXPECT_EQ(got[i].value.score_headroom, serial.score_headroom);
        EXPECT_EQ(got[i].model_stamp, 0u);  // default stage is unstamped
      }
    }
  }
}

// -- admission control -------------------------------------------------------

TEST(Fleet, ShedOldestReclaimsCreditAndTheLedgerCloses) {
  std::atomic<bool> release{false};
  FleetConfig cfg;
  cfg.shards = 1;
  cfg.workers_per_shard = 1;
  cfg.batch_max = 1;
  cfg.shard_depth = 1;  // one window in the engine, the rest stays pending
  cfg.stream_credit = 4;
  cfg.admission = AdmissionPolicy::kShedOldest;
  FleetFrontend fleet(gated_stage(&release), cfg);
  const auto id = fleet.open_stream();

  constexpr int kSubmits = 20;
  std::size_t accepted = 0, shed_admits = 0;
  for (int i = 0; i < kSubmits; ++i) {
    const AdmitResult r = fleet.submit(id, tagged_trace(i));
    ASSERT_TRUE(r.accepted()) << "shed-oldest refused window " << i;
    ++accepted;
    if (r.status == AdmitStatus::kAcceptedShedOldest) ++shed_admits;
  }
  // Credit 4: the first 4 admits are clean, every later one sheds an older
  // window to make room.
  EXPECT_EQ(accepted, static_cast<std::size_t>(kSubmits));
  EXPECT_EQ(shed_admits, static_cast<std::size_t>(kSubmits) - cfg.stream_credit);

  StreamStats mid = fleet.stream_stats(id);
  EXPECT_EQ(mid.windows_admitted, static_cast<std::uint64_t>(kSubmits));
  EXPECT_EQ(mid.windows_shed, static_cast<std::uint64_t>(kSubmits) - cfg.stream_credit);
  EXPECT_EQ(mid.outstanding, cfg.stream_credit);

  release.store(true);
  std::vector<FleetResult> got;
  while (got.size() < cfg.stream_credit) {
    if (auto r = fleet.poll(id)) {
      got.push_back(std::move(*r));
    } else {
      std::this_thread::sleep_for(1ms);
    }
  }
  // Ledger: every admitted window is exactly one of delivered / shed, and
  // the survivors arrive in (gappy but ascending) sequence order.  The
  // window inside the engine was never sheddable, so sequence 0 survived.
  EXPECT_EQ(got.front().stream_sequence, 0u);
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_GT(got[i].stream_sequence, got[i - 1].stream_sequence);
  }
  const StreamStats fin = fleet.stream_stats(id);
  EXPECT_EQ(fin.windows_delivered + fin.windows_shed, fin.windows_admitted);
  EXPECT_EQ(fin.outstanding, 0u);

  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.windows_shed, fin.windows_shed);
  EXPECT_EQ(stats.runtime.windows_shed, fin.windows_shed)
      << "frontend shed count not mirrored into the runtime record";
}

TEST(Fleet, RejectNewRefusesOverCreditAndPreservesTheBacklog) {
  std::atomic<bool> release{false};
  FleetConfig cfg;
  cfg.shards = 1;
  cfg.workers_per_shard = 1;
  cfg.batch_max = 1;
  cfg.shard_depth = 1;
  cfg.stream_credit = 4;
  cfg.admission = AdmissionPolicy::kRejectNew;
  FleetFrontend fleet(gated_stage(&release), cfg);
  const auto id = fleet.open_stream();

  std::size_t accepted = 0, rejected = 0;
  for (int i = 0; i < 20; ++i) {
    const AdmitResult r = fleet.submit(id, tagged_trace(i));
    if (r.accepted()) {
      ++accepted;
      EXPECT_EQ(r.status, AdmitStatus::kAccepted) << "reject-new must never shed";
    } else {
      ++rejected;
    }
  }
  EXPECT_EQ(accepted, cfg.stream_credit);
  EXPECT_EQ(rejected, 20u - cfg.stream_credit);

  release.store(true);
  const std::vector<FleetResult> tail = fleet.close_stream(id);
  std::size_t delivered = tail.size();
  // The accepted backlog survives intact and in order: sequences 0..3.
  ASSERT_EQ(delivered, accepted);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].stream_sequence, i);
  }
  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.windows_rejected, 20u - cfg.stream_credit);
  EXPECT_EQ(stats.runtime.windows_rejected, stats.windows_rejected);
  EXPECT_EQ(stats.windows_shed, 0u);
}

// -- coalescing --------------------------------------------------------------

TEST(Fleet, BackloggedStreamsCoalesceIntoMultiWindowBatches) {
  std::atomic<bool> release{false};
  FleetConfig cfg;
  cfg.shards = 1;
  cfg.workers_per_shard = 1;
  cfg.batch_max = 8;
  cfg.shard_depth = 8;
  cfg.stream_credit = 32;
  FleetFrontend fleet(gated_stage(&release), cfg);

  constexpr std::size_t kStreams = 8;
  constexpr int kWindows = 20;
  std::vector<FleetFrontend::StreamId> ids;
  for (std::size_t s = 0; s < kStreams; ++s) ids.push_back(fleet.open_stream());
  // Wedge the worker so pending windows pile up behind the first dispatches,
  // then release: the dispatcher must drain the backlog through coalesced
  // submit_batch calls, one window per stream per batch (fairness).
  for (int i = 0; i < kWindows; ++i) {
    for (std::size_t s = 0; s < kStreams; ++s) {
      ASSERT_TRUE(
          fleet.submit(ids[s], tagged_trace(static_cast<int>(s) * 1000 + i))
              .accepted());
    }
  }
  release.store(true);

  std::size_t total = 0;
  for (std::size_t s = 0; s < kStreams; ++s) {
    std::vector<FleetResult> got;
    while (auto r = fleet.poll(ids[s])) got.push_back(std::move(*r));
    for (FleetResult& r : fleet.close_stream(ids[s])) got.push_back(std::move(r));
    ASSERT_EQ(got.size(), static_cast<std::size_t>(kWindows));
    for (int i = 0; i < kWindows; ++i) {
      EXPECT_EQ(got[i].value.class_idx, s * 1000 + static_cast<std::size_t>(i));
    }
    total += got.size();
  }
  EXPECT_EQ(total, kStreams * kWindows);

  const RuntimeStats rt = fleet.stats().runtime;
  EXPECT_EQ(rt.batch_windows, kStreams * kWindows);
  ASSERT_GT(rt.batches_submitted, 0u);
  const double coalescing = static_cast<double>(rt.batch_windows) /
                            static_cast<double>(rt.batches_submitted);
  EXPECT_GT(coalescing, 1.5)
      << "a wedged shard with 8 backlogged streams should produce "
         "multi-window batches, got factor "
      << coalescing;
}

// -- drift isolation ---------------------------------------------------------

TEST_F(FleetModelFixture, DriftMonitorsAreIsolatedPerStream) {
  FleetConfig cfg;
  cfg.shards = 1;
  cfg.workers_per_shard = 2;
  cfg.batch_max = 4;
  cfg.stream_credit = 16;
  FleetFrontend fleet(model(), cfg);

  StreamOptions monitored;
  monitored.monitor_drift = true;
  const auto drifted_id = fleet.open_stream(monitored);
  const auto clean_id = fleet.open_stream(monitored);

  // One tenant's acquisition chain has aged hard; its neighbor is healthy.
  sim::DeviceModel aged = sim::DeviceModel::make(0);
  aged.aging_gain_drift = 0.35;
  sim::AcquisitionCampaign drifting{aged, sim::SessionContext::make(0)};
  constexpr std::size_t kWindows = 140;
  const sim::TraceSet drifted_windows = windows_on(drifting, kWindows, 0xd1f7, 1.0);
  const sim::TraceSet clean = clean_windows(kWindows, 0xc1ea);

  std::vector<FleetResult> sink;
  std::size_t drifted_events = 0, clean_events = 0;
  for (std::size_t i = 0; i < kWindows; ++i) {
    submit_pumping(fleet, drifted_id, drifted_windows[i], &sink);
    submit_pumping(fleet, clean_id, clean[i], &sink);
    while (fleet.poll(drifted_id)) {
    }
    while (fleet.poll(clean_id)) {
    }
    while (fleet.poll_drift_event(drifted_id)) ++drifted_events;
    while (fleet.poll_drift_event(clean_id)) ++clean_events;
  }
  // Wait out the in-flight tail so every window has passed its monitor, then
  // take the final per-stream event counts.
  const auto drain = [&](FleetFrontend::StreamId id) {
    for (;;) {
      while (fleet.poll(id)) {
      }
      const StreamStats ss = fleet.stream_stats(id);
      if (ss.windows_delivered == ss.windows_admitted) return;
      std::this_thread::sleep_for(1ms);
    }
  };
  drain(drifted_id);
  drain(clean_id);
  while (fleet.poll_drift_event(drifted_id)) ++drifted_events;
  while (fleet.poll_drift_event(clean_id)) ++clean_events;
  EXPECT_EQ(fleet.stream_stats(drifted_id).drift_events, drifted_events);
  EXPECT_EQ(fleet.stream_stats(clean_id).drift_events, clean_events);
  fleet.close_stream(drifted_id);
  fleet.close_stream(clean_id);
  const FleetStats stats = fleet.stats();

  EXPECT_GE(drifted_events, 1u)
      << "fully drifted stream never raised a drift event";
  EXPECT_EQ(clean_events, 0u)
      << "clean stream caught its neighbor's drift -- monitors not isolated";
  EXPECT_EQ(stats.drift_events, drifted_events + clean_events);
}

// -- registry resolution -----------------------------------------------------

class FleetRegistryFixture : public FleetModelFixture {
 protected:
  static std::filesystem::path fresh_root(const std::string& tag) {
    const auto root =
        std::filesystem::path(::testing::TempDir()) / ("sidis_fleet_" + tag);
    std::filesystem::remove_all(root);
    return root;
  }
};

TEST_F(FleetRegistryFixture, StreamsShareOneModelPerArtifactAndStampResults) {
  ModelRegistry registry(fresh_root("share"));
  registry.save("tenant-model", *model());  // v1
  registry.save("tenant-model", *model());  // v2 (same content, distinct artifact)
  const std::uint64_t v1_checksum = registry.info("tenant-model", 1).checksum;
  const std::uint64_t v2_checksum = registry.info("tenant-model", 2).checksum;

  FleetConfig cfg;
  cfg.shards = 2;
  cfg.workers_per_shard = 1;
  FleetFrontend fleet(model(), cfg, &registry);

  StreamOptions latest;
  latest.model_name = "tenant-model";
  StreamOptions pinned_v1;
  pinned_v1.model_name = "tenant-model";
  pinned_v1.model_version = 1;

  const auto a = fleet.open_stream(latest);    // resolves latest -> v2
  const auto b = fleet.open_stream(latest);    // shares v2, no second load
  const auto c = fleet.open_stream(pinned_v1); // distinct artifact
  EXPECT_EQ(fleet.stats().models_cached, 2u);

  const sim::TraceSet probes = clean_windows(4, 0x9e9);
  for (const sim::Trace& t : probes) {
    ASSERT_TRUE(fleet.submit(a, t).accepted());
    ASSERT_TRUE(fleet.submit(b, t).accepted());
    ASSERT_TRUE(fleet.submit(c, t).accepted());
  }
  const auto check_stamps = [&](FleetFrontend::StreamId id, std::uint64_t want) {
    const std::vector<FleetResult> got = fleet.close_stream(id);
    ASSERT_EQ(got.size(), probes.size());
    for (const FleetResult& r : got) {
      EXPECT_EQ(r.model_stamp, want)
          << "result not stamped with its serving artifact's checksum";
    }
  };
  check_stamps(a, v2_checksum);
  check_stamps(b, v2_checksum);
  check_stamps(c, v1_checksum);

  // Unresolvable options fail loudly at open time, not at classify time.
  StreamOptions unknown;
  unknown.model_name = "no-such-bundle";
  EXPECT_THROW(fleet.open_stream(unknown), std::runtime_error);
}

TEST(Fleet, OpenStreamRejectsUnresolvableOptions) {
  FleetFrontend fleet(echo_stage(), {});
  // Named model without a registry: nothing to resolve against.
  StreamOptions named;
  named.model_name = "anything";
  EXPECT_THROW(fleet.open_stream(named), std::invalid_argument);
  // Drift monitoring on a stage-backed default stream: no model to project
  // monitor features through.
  StreamOptions monitored;
  monitored.monitor_drift = true;
  EXPECT_THROW(fleet.open_stream(monitored), std::invalid_argument);
}

}  // namespace
}  // namespace sidis::runtime

// Bit-identity battery for the lane-vectorized (struct-of-arrays) batch hot
// path.  Every batch primitive vectorizes ONLY across the window/lane
// dimension and keeps the scalar per-window accumulation order, so its
// output must equal the scalar path's to the last bit -- at every layer:
// FFT, CWT (full transform and sparse extraction), fused feature transform,
// blocked Mahalanobis/QDA scoring, and the full hierarchical classify_batch
// across batch sizes, mixed content, mixed trace lengths, and streaming
// worker counts.
#include <gtest/gtest.h>

#include <cstddef>
#include <random>
#include <vector>

#include "core/csa.hpp"
#include "core/hierarchical.hpp"
#include "dsp/fft.hpp"
#include "dsp/wavelet.hpp"
#include "features/pipeline.hpp"
#include "ml/discriminant.hpp"
#include "runtime/streaming.hpp"
#include "sim/acquisition.hpp"
#include "stats/gaussian.hpp"

namespace sidis {
namespace {

std::vector<double> random_signal(std::size_t n, std::mt19937_64& rng) {
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> out(n);
  for (double& v : out) v = dist(rng);
  return out;
}

// -- FFT ---------------------------------------------------------------------

TEST(FftBatch, ForwardAndInverseMatchScalarLaneForLane) {
  std::mt19937_64 rng(7);
  for (const std::size_t n : {std::size_t{8}, std::size_t{64}, std::size_t{512}}) {
    const dsp::FftPlan plan(n);
    for (const std::size_t lanes :
         {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{16}}) {
      // Independent random complex content per lane.
      std::vector<dsp::ComplexVector> scalar(lanes, dsp::ComplexVector(n));
      dsp::BatchComplex batch;
      batch.assign(n, lanes);
      for (std::size_t l = 0; l < lanes; ++l) {
        for (std::size_t i = 0; i < n; ++i) {
          const auto v = dsp::Complex(random_signal(1, rng)[0], random_signal(1, rng)[0]);
          scalar[l][i] = v;
          batch.re[i * lanes + l] = v.real();
          batch.im[i * lanes + l] = v.imag();
        }
      }
      plan.forward_batch(batch);
      for (std::size_t l = 0; l < lanes; ++l) plan.forward(scalar[l]);
      for (std::size_t l = 0; l < lanes; ++l) {
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(batch.re[i * lanes + l], scalar[l][i].real())
              << "fwd n=" << n << " lane " << l << " bin " << i;
          ASSERT_EQ(batch.im[i * lanes + l], scalar[l][i].imag())
              << "fwd n=" << n << " lane " << l << " bin " << i;
        }
      }
      plan.inverse_batch(batch);
      for (std::size_t l = 0; l < lanes; ++l) plan.inverse(scalar[l]);
      for (std::size_t l = 0; l < lanes; ++l) {
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(batch.re[i * lanes + l], scalar[l][i].real())
              << "inv n=" << n << " lane " << l << " bin " << i;
          ASSERT_EQ(batch.im[i * lanes + l], scalar[l][i].imag())
              << "inv n=" << n << " lane " << l << " bin " << i;
        }
      }
    }
  }
}

// -- CWT ---------------------------------------------------------------------

class CwtBatchTest : public ::testing::TestWithParam<dsp::CwtBackend> {};

TEST_P(CwtBatchTest, TransformBatchMatchesScalarTransforms) {
  std::mt19937_64 rng(11);
  dsp::CwtConfig cfg;
  cfg.num_scales = 12;  // spans both sides of the direct/spectral crossover
  cfg.backend = GetParam();
  const dsp::Cwt cwt(cfg);
  dsp::CwtBatchWorkspace bws;
  for (const std::size_t n : {std::size_t{315}, std::size_t{200}}) {
    for (const std::size_t lanes : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
      std::vector<std::vector<double>> traces;
      for (std::size_t l = 0; l < lanes; ++l) traces.push_back(random_signal(n, rng));
      std::vector<const std::vector<double>*> ptrs;
      for (const auto& t : traces) ptrs.push_back(&t);

      const std::vector<dsp::Scalogram> batch =
          cwt.transform_batch({ptrs.data(), ptrs.size()}, bws);
      ASSERT_EQ(batch.size(), lanes);
      for (std::size_t l = 0; l < lanes; ++l) {
        const dsp::Scalogram ref = cwt.transform(traces[l]);
        ASSERT_EQ(batch[l].rows(), ref.rows());
        ASSERT_EQ(batch[l].cols(), ref.cols());
        for (std::size_t j = 0; j < ref.rows(); ++j) {
          for (std::size_t k = 0; k < ref.cols(); ++k) {
            ASSERT_EQ(batch[l](j, k), ref(j, k))
                << "n=" << n << " lane " << l << " scale " << j << " t " << k;
          }
        }
      }
    }
  }
}

TEST_P(CwtBatchTest, CoefficientsBatchMatchesScalarColumns) {
  std::mt19937_64 rng(13);
  dsp::CwtConfig cfg;
  cfg.num_scales = 12;
  cfg.backend = GetParam();
  const dsp::Cwt cwt(cfg);
  dsp::CwtWorkspace sws;
  dsp::CwtBatchWorkspace bws;
  const std::size_t n = 315;

  // Point pattern mixing a dense scale (enough points to cross into the
  // spectral row path), sparse scales, duplicates, and out-of-order indices.
  std::vector<std::size_t> js, ks;
  for (std::size_t k = 0; k < 40; ++k) {
    js.push_back(3);
    ks.push_back((k * 7) % n);
  }
  for (std::size_t j = 0; j < cfg.num_scales; ++j) {
    js.push_back(j);
    ks.push_back((j * 31) % n);
  }
  js.push_back(3);  // duplicate of a dense-scale point
  ks.push_back(7);

  for (const std::size_t lanes : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
    std::vector<std::vector<double>> traces;
    for (std::size_t l = 0; l < lanes; ++l) traces.push_back(random_signal(n, rng));
    std::vector<const std::vector<double>*> ptrs;
    for (const auto& t : traces) ptrs.push_back(&t);

    const linalg::Matrix batch = cwt.coefficients_batch(
        {ptrs.data(), ptrs.size()}, js, ks, bws);
    ASSERT_EQ(batch.rows(), js.size());
    ASSERT_EQ(batch.cols(), lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      const linalg::Vector ref = cwt.coefficients(traces[l], js, ks, sws);
      for (std::size_t i = 0; i < js.size(); ++i) {
        ASSERT_EQ(batch(i, l), ref[i]) << "lane " << l << " point " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, CwtBatchTest,
                         ::testing::Values(dsp::CwtBackend::kAuto,
                                           dsp::CwtBackend::kDirect,
                                           dsp::CwtBackend::kSpectral));

TEST(CwtBatch, RejectsEmptyAndMixedLengthBatches) {
  const dsp::Cwt cwt;
  dsp::CwtBatchWorkspace ws;
  EXPECT_THROW(cwt.transform_batch({}, ws), std::invalid_argument);
  const std::vector<double> a(100, 0.0), b(101, 0.0);
  const std::vector<const std::vector<double>*> mixed{&a, &b};
  EXPECT_THROW(cwt.transform_batch({mixed.data(), mixed.size()}, ws),
               std::invalid_argument);
}

// -- linalg / stats / ml ------------------------------------------------------

TEST(LinalgBatch, MahalanobisBatchMatchesScalar) {
  std::mt19937_64 rng(17);
  const std::size_t dim = 12;
  // SPD matrix: A^T A + I.
  linalg::Matrix a(dim, dim);
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) a(r, c) = random_signal(1, rng)[0];
  }
  linalg::Matrix spd(dim, dim, 0.0);
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      for (std::size_t k = 0; k < dim; ++k) spd(r, c) += a(k, r) * a(k, c);
    }
    spd(r, r) += 1.0;
  }
  const linalg::Cholesky chol = linalg::Cholesky::compute(spd);
  ASSERT_TRUE(chol.valid);

  const std::size_t lanes = 9;
  linalg::Matrix x_cols(dim, lanes);
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t l = 0; l < lanes; ++l) x_cols(r, l) = random_signal(1, rng)[0];
  }
  std::vector<double> out(lanes);
  linalg::Matrix scratch;
  chol.mahalanobis_squared_batch(x_cols, out, scratch);
  for (std::size_t l = 0; l < lanes; ++l) {
    linalg::Vector x(dim);
    for (std::size_t r = 0; r < dim; ++r) x[r] = x_cols(r, l);
    EXPECT_EQ(out[l], chol.mahalanobis_squared(x)) << "lane " << l;
  }
}

TEST(StatsBatch, GaussianLogPdfBatchMatchesScalar) {
  std::mt19937_64 rng(19);
  const std::size_t dim = 8, samples = 40;
  linalg::Matrix data(samples, dim);
  for (std::size_t r = 0; r < samples; ++r) {
    for (std::size_t c = 0; c < dim; ++c) data(r, c) = random_signal(1, rng)[0];
  }
  const auto g = stats::MultivariateGaussian::fit(data);

  const std::size_t lanes = 6;
  linalg::Matrix x_cols(dim, lanes);
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t l = 0; l < lanes; ++l) x_cols(r, l) = random_signal(1, rng)[0];
  }
  std::vector<double> out(lanes);
  linalg::Matrix centered, solve;
  g.log_pdf_batch(x_cols, out, centered, solve);
  for (std::size_t l = 0; l < lanes; ++l) {
    linalg::Vector x(dim);
    for (std::size_t r = 0; r < dim; ++r) x[r] = x_cols(r, l);
    EXPECT_EQ(out[l], g.log_pdf(x)) << "lane " << l;
  }
}

TEST(MlBatch, QdaPredictScoredBatchMatchesScalar) {
  std::mt19937_64 rng(23);
  const std::size_t dim = 6, per_class = 30;
  ml::Dataset train;
  train.x = linalg::Matrix(3 * per_class, dim);
  for (int cls = 0; cls < 3; ++cls) {
    for (std::size_t i = 0; i < per_class; ++i) {
      const std::size_t r = static_cast<std::size_t>(cls) * per_class + i;
      for (std::size_t c = 0; c < dim; ++c) {
        train.x(r, c) = random_signal(1, rng)[0] + 2.0 * cls;
      }
      train.y.push_back(cls);
    }
  }
  ml::Qda qda;
  qda.fit(train);

  const std::size_t lanes = 11;
  linalg::Matrix x_cols(dim, lanes);
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t l = 0; l < lanes; ++l) {
      x_cols(r, l) = random_signal(1, rng)[0] + 2.0 * (l % 3);
    }
  }
  const std::vector<ml::ScoredPrediction> batch = qda.predict_scored_batch(x_cols);
  const linalg::Matrix scores = qda.scores_batch(x_cols);
  ASSERT_EQ(batch.size(), lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    linalg::Vector x(dim);
    for (std::size_t r = 0; r < dim; ++r) x[r] = x_cols(r, l);
    const ml::ScoredPrediction ref = qda.predict_scored(x);
    EXPECT_EQ(batch[l].label, ref.label) << "lane " << l;
    EXPECT_EQ(batch[l].top_score, ref.top_score) << "lane " << l;
    EXPECT_EQ(batch[l].margin, ref.margin) << "lane " << l;
    const linalg::Vector sref = qda.scores(x);
    for (std::size_t c = 0; c < sref.size(); ++c) {
      EXPECT_EQ(scores(c, l), sref[c]) << "lane " << l << " class " << c;
    }
  }

  // The base-class fallback (classifiers without a vectorized override) must
  // satisfy the same contract.
  ml::Lda lda;
  lda.fit(train);
  const ml::Classifier& base = lda;
  const std::vector<ml::ScoredPrediction> fallback = base.predict_scored_batch(x_cols);
  for (std::size_t l = 0; l < lanes; ++l) {
    linalg::Vector x(dim);
    for (std::size_t r = 0; r < dim; ++r) x[r] = x_cols(r, l);
    const ml::ScoredPrediction ref = lda.predict_scored(x);
    EXPECT_EQ(fallback[l].label, ref.label);
    EXPECT_EQ(fallback[l].top_score, ref.top_score);
    EXPECT_EQ(fallback[l].margin, ref.margin);
  }
}

// -- feature pipeline ---------------------------------------------------------

TEST(FeaturesBatch, TransformPreparedBatchMatchesScalarColumns) {
  sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                    sim::SessionContext::make(0)};
  std::mt19937_64 rng(29);
  features::LabeledTraces input;
  std::vector<sim::TraceSet> sets;
  for (avr::Mnemonic m : {avr::Mnemonic::kAdd, avr::Mnemonic::kLdi}) {
    sets.push_back(campaign.capture_class(*avr::class_index(m), 40, 5, rng));
  }
  input.labels = {0, 1};
  for (const auto& s : sets) input.sets.push_back(&s);
  features::PipelineConfig cfg = core::csa_config();
  cfg.pca_components = 12;
  const auto pipeline = features::FeaturePipeline::fit(input, cfg);

  std::vector<std::vector<double>> prepared;
  for (int i = 0; i < 9; ++i) {
    const sim::Trace t = campaign.capture_trace(
        avr::random_instance(*avr::class_index(avr::Mnemonic::kAdd), rng),
        sim::ProgramContext::make(i % 3), rng);
    prepared.push_back(features::FeaturePipeline::preprocess_window(
        t, cfg.per_trace_normalization));
  }
  std::vector<const std::vector<double>*> ptrs;
  for (const auto& p : prepared) ptrs.push_back(&p);

  dsp::CwtWorkspace sws;
  dsp::CwtBatchWorkspace bws;
  const std::size_t fitted = pipeline.max_components();
  ASSERT_GE(fitted, 2u);
  for (const std::size_t components : {fitted, fitted - 1}) {
    const linalg::Matrix batch = pipeline.transform_prepared_batch(
        {ptrs.data(), ptrs.size()}, components, bws);
    ASSERT_EQ(batch.rows(), components);
    ASSERT_EQ(batch.cols(), prepared.size());
    for (std::size_t w = 0; w < prepared.size(); ++w) {
      const linalg::Vector ref =
          pipeline.transform_prepared(prepared[w], components, sws);
      ASSERT_EQ(ref.size(), components);
      for (std::size_t c = 0; c < components; ++c) {
        ASSERT_EQ(batch(c, w), ref[c]) << "window " << w << " component " << c;
      }
    }
  }
}

// -- hierarchical classify_batch ----------------------------------------------

class BatchModelFixture : public ::testing::Test {
 protected:
  static const core::HierarchicalDisassembler& model() {
    static const core::HierarchicalDisassembler m = [] {
      sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                        sim::SessionContext::make(0)};
      std::mt19937_64 rng{31};
      core::ProfilingData data;
      for (avr::Mnemonic mn : {avr::Mnemonic::kAdd, avr::Mnemonic::kLdi,
                               avr::Mnemonic::kCom, avr::Mnemonic::kRjmp}) {
        data.classes[*avr::class_index(mn)] =
            campaign.capture_class(*avr::class_index(mn), 50, 5, rng);
      }
      for (std::uint8_t r : {4, 20}) {
        data.rd_classes[r] = campaign.capture_register(true, r, 120, 5, rng);
        data.rr_classes[r] = campaign.capture_register(false, r, 120, 5, rng);
      }
      core::HierarchicalConfig cfg;
      cfg.pipeline = core::csa_config();
      cfg.pipeline.pca_components = 10;
      cfg.group_components = 8;
      cfg.instruction_components = 8;
      cfg.register_components = 10;
      cfg.factory.discriminant.shrinkage = 0.15;
      auto model = core::HierarchicalDisassembler::train(data, cfg);
      // Armed gates make verdict/headroom equality a real statement.
      model.calibrate_reject(data, core::RejectOperatingPoint::kBalanced);
      return model;
    }();
    return m;
  }

  /// Mixed-content eval pool: several classes, several programs, plus
  /// off-distribution windows from a different process corner and session so
  /// the reject gates actually trip on some windows.
  static sim::TraceSet mixed_windows(std::size_t n) {
    sim::AcquisitionCampaign clean{sim::DeviceModel::make(0),
                                   sim::SessionContext::make(0)};
    sim::AcquisitionCampaign corner{sim::DeviceModel::make(7),
                                    sim::SessionContext::make(3)};
    std::mt19937_64 rng{37};
    const std::size_t classes[] = {*avr::class_index(avr::Mnemonic::kAdd),
                                   *avr::class_index(avr::Mnemonic::kLdi),
                                   *avr::class_index(avr::Mnemonic::kCom),
                                   *avr::class_index(avr::Mnemonic::kRjmp)};
    sim::TraceSet out;
    for (std::size_t i = 0; i < n; ++i) {
      sim::AcquisitionCampaign& campaign = i % 5 == 4 ? corner : clean;
      out.push_back(campaign.capture_trace(
          avr::random_instance(classes[i % 4], rng),
          sim::ProgramContext::make(static_cast<int>(i % 6)), rng));
    }
    return out;
  }

  static void expect_identical(const core::Disassembly& batch,
                               const core::Disassembly& single,
                               std::size_t window) {
    EXPECT_EQ(batch.group, single.group) << "window " << window;
    EXPECT_EQ(batch.class_idx, single.class_idx) << "window " << window;
    EXPECT_EQ(batch.rd, single.rd) << "window " << window;
    EXPECT_EQ(batch.rr, single.rr) << "window " << window;
    EXPECT_EQ(batch.verdict, single.verdict) << "window " << window;
    EXPECT_EQ(batch.margin_headroom, single.margin_headroom) << "window " << window;
    EXPECT_EQ(batch.score_headroom, single.score_headroom) << "window " << window;
  }
};

TEST_F(BatchModelFixture, BitIdenticalAcrossBatchSizes) {
  const sim::TraceSet pool = mixed_windows(64);
  std::vector<core::Disassembly> reference;
  for (const sim::Trace& t : pool) reference.push_back(model().classify(t));
  // Some mixed-content windows must actually exercise the gates and the
  // operand levels, or the equality checks are vacuous.
  std::size_t gated = 0, with_rd = 0;
  for (const auto& d : reference) {
    if (d.verdict != core::Verdict::kOk) ++gated;
    if (d.rd.has_value()) ++with_rd;
  }
  EXPECT_GT(with_rd, 0u) << "eval pool never reached the register level";

  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                              std::size_t{16}, std::size_t{64}}) {
    const sim::TraceSet windows(pool.begin(), pool.begin() + static_cast<long>(k));
    const std::vector<core::Disassembly> batch = model().classify_batch(windows);
    ASSERT_EQ(batch.size(), k);
    for (std::size_t i = 0; i < k; ++i) expect_identical(batch[i], reference[i], i);
  }
}

TEST_F(BatchModelFixture, BitIdenticalWithMixedTraceLengths) {
  sim::TraceSet pool = mixed_windows(12);
  // Three length buckets: the native window length (>= 2 windows), a
  // truncated length (>= 2 windows), and a singleton that must take the
  // scalar path.
  for (std::size_t i = 0; i < 5; ++i) pool[i].samples.resize(250);
  pool[5].samples.resize(120);

  const std::vector<core::Disassembly> batch = model().classify_batch(pool);
  ASSERT_EQ(batch.size(), pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    expect_identical(batch[i], model().classify(pool[i]), i);
  }
}

TEST_F(BatchModelFixture, StreamingBatchesAreWorkerCountInvariant) {
  const sim::TraceSet pool = mixed_windows(48);
  const std::vector<core::Disassembly> reference = model().classify_batch(pool);

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    runtime::StreamingConfig cfg;
    cfg.workers = workers;
    cfg.queue_capacity = 8;
    runtime::StreamingDisassembler engine(model(), cfg);
    // Submit as batches of 16 so the worker pool takes the batched path.
    for (std::size_t base = 0; base < pool.size(); base += 16) {
      sim::TraceSet chunk(pool.begin() + static_cast<long>(base),
                          pool.begin() + static_cast<long>(base + 16));
      ASSERT_TRUE(engine.submit_batch(std::move(chunk)).has_value());
    }
    const std::vector<runtime::StreamResult> got = engine.drain();
    ASSERT_EQ(got.size(), pool.size()) << "workers=" << workers;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].sequence, i) << "workers=" << workers;
      expect_identical(got[i].value, reference[i], i);
    }

    // The amortization telemetry must reflect the batched passes.
    const runtime::RuntimeStats stats = engine.stats();
    EXPECT_EQ(stats.batch_classified_windows, pool.size()) << "workers=" << workers;
    EXPECT_EQ(stats.scalar_classified_windows, 0u) << "workers=" << workers;
    EXPECT_EQ(stats.windows_per_batch.count(), pool.size() / 16)
        << "workers=" << workers;
    EXPECT_GT(stats.batch_classify_nanos, 0u) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace sidis

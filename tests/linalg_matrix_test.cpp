// Unit tests for the dense matrix/vector substrate.
#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

namespace sidis::linalg {
namespace {

TEST(Matrix, DefaultConstructedIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, FillConstruction) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
}

TEST(Matrix, InitializerListLayout) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1);
  EXPECT_DOUBLE_EQ(m(0, 2), 3);
  EXPECT_DOUBLE_EQ(m(1, 0), 4);
  EXPECT_DOUBLE_EQ(m(1, 2), 6);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, IdentityAndDiagonal) {
  const Matrix i3 = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i3.trace(), 3.0);
  const Matrix d = Matrix::diagonal({2, 5});
  EXPECT_DOUBLE_EQ(d(0, 0), 2);
  EXPECT_DOUBLE_EQ(d(1, 1), 5);
  EXPECT_DOUBLE_EQ(d(0, 1), 0);
}

TEST(Matrix, FromRows) {
  const Matrix m = Matrix::from_rows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6);
}

TEST(Matrix, FromRowsRaggedThrows) {
  EXPECT_THROW(Matrix::from_rows({{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, RowSpanIsMutable) {
  Matrix m(2, 2, 0.0);
  auto row = m.row(1);
  row[0] = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 7.0);
}

TEST(Matrix, TransposeRoundTrip) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.transposed(), m);
}

TEST(Matrix, AdditionSubtraction) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{4, 3}, {2, 1}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 5);
  EXPECT_DOUBLE_EQ(sum(1, 1), 5);
  const Matrix diff = sum - b;
  EXPECT_EQ(diff, a);
}

TEST(Matrix, ShapeMismatchThrows) {
  const Matrix a(2, 2);
  const Matrix b(2, 3);
  EXPECT_THROW(a + b, std::invalid_argument);
  EXPECT_THROW(a - b, std::invalid_argument);
  EXPECT_THROW(b * a, std::invalid_argument);
}

TEST(Matrix, ProductAgainstHandComputed) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix p = a * b;
  EXPECT_DOUBLE_EQ(p(0, 0), 19);
  EXPECT_DOUBLE_EQ(p(0, 1), 22);
  EXPECT_DOUBLE_EQ(p(1, 0), 43);
  EXPECT_DOUBLE_EQ(p(1, 1), 50);
}

TEST(Matrix, ProductWithIdentityIsIdentityOp) {
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> d(-1, 1);
  Matrix m(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) m(i, j) = d(rng);
  }
  EXPECT_TRUE(Matrix::approx_equal(m * Matrix::identity(4), m, 1e-12));
  EXPECT_TRUE(Matrix::approx_equal(Matrix::identity(4) * m, m, 1e-12));
}

TEST(Matrix, MatVecProduct) {
  const Matrix a{{1, 2}, {3, 4}};
  const Vector v = a * Vector{1.0, 1.0};
  EXPECT_DOUBLE_EQ(v[0], 3);
  EXPECT_DOUBLE_EQ(v[1], 7);
}

TEST(Matrix, FrobeniusNormAndMaxAbs) {
  const Matrix m{{3, 4}, {0, 0}};
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(m.max_abs(), 4.0);
}

TEST(Matrix, TraceRequiresSquare) {
  EXPECT_THROW(Matrix(2, 3).trace(), std::invalid_argument);
}

TEST(VectorOps, AddSubScaleDot) {
  const Vector a{1, 2, 3};
  const Vector b{4, 5, 6};
  EXPECT_EQ(add(a, b), (Vector{5, 7, 9}));
  EXPECT_EQ(sub(b, a), (Vector{3, 3, 3}));
  EXPECT_EQ(scale(a, 2.0), (Vector{2, 4, 6}));
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(norm(Vector{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 27.0);
}

TEST(VectorOps, SizeMismatchThrows) {
  EXPECT_THROW(add(Vector{1}, Vector{1, 2}), std::invalid_argument);
  EXPECT_THROW(dot(Vector{1}, Vector{1, 2}), std::invalid_argument);
}

TEST(RowStats, MeanOfRows) {
  const Matrix m{{1, 2}, {3, 4}, {5, 6}};
  const Vector mean = row_mean(m);
  EXPECT_DOUBLE_EQ(mean[0], 3.0);
  EXPECT_DOUBLE_EQ(mean[1], 4.0);
}

TEST(RowStats, CovarianceOfKnownData) {
  // Perfectly correlated columns: cov = [[1,1],[1,1]] * var.
  const Matrix m{{0, 0}, {1, 1}, {2, 2}};
  const Matrix cov = row_covariance(m);
  EXPECT_NEAR(cov(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(cov(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(cov(1, 1), 1.0, 1e-12);
}

TEST(RowStats, CovarianceIsSymmetricPsd) {
  std::mt19937_64 rng(7);
  std::normal_distribution<double> d(0, 1);
  Matrix m(40, 5);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) m(r, c) = d(rng);
  }
  const Matrix cov = row_covariance(m);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_GE(cov(i, i), 0.0);
    for (std::size_t j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(cov(i, j), cov(j, i));
  }
}

TEST(RowStats, CovarianceNeedsTwoRows) {
  EXPECT_THROW(row_covariance(Matrix(1, 3)), std::invalid_argument);
}

TEST(Outer, MatchesManual) {
  const Matrix o = outer(Vector{1, 2}, Vector{3, 4, 5});
  EXPECT_EQ(o.rows(), 2u);
  EXPECT_EQ(o.cols(), 3u);
  EXPECT_DOUBLE_EQ(o(1, 2), 10.0);
}

}  // namespace
}  // namespace sidis::linalg

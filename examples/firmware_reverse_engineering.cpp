// Reverse engineering an unknown firmware routine from its power traces --
// the paper's second motivating application (software IP / piracy analysis,
// Sec. 1): the analyst cannot read the (encrypted) flash but can watch the
// device execute.
//
// The "unknown" routine here is a small checksum/obfuscation loop body.
// We profile a broad instruction dictionary once, then recover the routine's
// assembly listing from captured per-instruction windows and measure how
// much of it (opcode classes + registers) came back correctly.
#include <cstdio>
#include <random>

#include "avr/assembler.hpp"
#include "core/csa.hpp"
#include "core/disassembler.hpp"
#include "sim/acquisition.hpp"

using namespace sidis;

int main() {
  std::mt19937_64 rng(0xF1F3);
  const sim::AcquisitionCampaign campaign(sim::DeviceModel::make(0),
                                          sim::SessionContext::make(0));

  // The secret routine (ground truth -- the disassembler never sees this).
  const avr::Program secret = avr::assemble(
                                  "SBI 5, 5\n"
                                  "NOP\n"
                                  "LDI r16, 0x1B   ; polynomial\n"
                                  "LDI r17, 0xFF   ; accumulator init\n"
                                  "EOR r17, r16\n"
                                  "LSR r17\n"
                                  "MOV r2, r17\n"
                                  "ADD r17, r16\n"
                                  "SWAP r17\n"
                                  "AND r17, r16\n"
                                  "ST X+, r17\n"
                                  "CBI 5, 5\n")
                                  .program;

  // Profile a dictionary wide enough to cover plausible firmware: the whole
  // groups the routine could draw from.  (A production analyst profiles all
  // 112 classes once per target family; we keep the example to the groups
  // that matter for runtime.)
  std::printf("profiling instruction dictionary...\n");
  core::ProfilingData data;
  for (avr::Mnemonic m :
       {avr::Mnemonic::kLdi, avr::Mnemonic::kEor, avr::Mnemonic::kLsr,
        avr::Mnemonic::kMov, avr::Mnemonic::kAdd, avr::Mnemonic::kSwap,
        avr::Mnemonic::kAnd, avr::Mnemonic::kSub, avr::Mnemonic::kOr,
        avr::Mnemonic::kCom, avr::Mnemonic::kSbi, avr::Mnemonic::kCbi}) {
    data.classes[*avr::class_index(m)] =
        campaign.capture_class(*avr::class_index(m), 220, 10, rng);
  }
  data.classes[*avr::class_index(avr::Mnemonic::kSt, avr::AddrMode::kXPostInc)] =
      campaign.capture_class(*avr::class_index(avr::Mnemonic::kSt, avr::AddrMode::kXPostInc),
                             220, 10, rng);
  for (std::uint8_t r : {0, 2, 5, 16, 17, 21}) {
    data.rd_classes[r] = campaign.capture_register(true, r, 220, 10, rng);
    data.rr_classes[r] = campaign.capture_register(false, r, 220, 10, rng);
  }

  core::HierarchicalConfig cfg;
  cfg.pipeline = core::csa_config();
  cfg.factory.discriminant.shrinkage = 0.15;
  const auto model = core::HierarchicalDisassembler::train(data, cfg);

  // Capture one execution of the unknown firmware and disassemble it.
  std::printf("capturing the unknown routine's execution...\n\n");
  const sim::TraceSet windows =
      campaign.capture_program(secret, sim::ProgramContext::make(400), rng);
  const std::vector<core::Disassembly> recovered = core::disassemble(model, windows);

  std::printf("%-24s %-24s %s\n", "ground truth", "recovered", "verdict");
  std::size_t class_hits = 0, reg_hits = 0, reg_total = 0, scored = 0;
  for (std::size_t i = 0; i < recovered.size(); ++i) {
    const avr::Instruction truth = windows[i].meta.instr;
    const auto truth_class = avr::class_of(truth);
    std::string verdict = "-";
    if (truth_class) {
      ++scored;
      const bool class_ok = recovered[i].class_idx == *truth_class;
      bool regs_ok = true;
      if (class_ok) {
        ++class_hits;
        if (avr::class_uses_rd(*truth_class) && recovered[i].rd) {
          ++reg_total;
          if (*recovered[i].rd == truth.rd) ++reg_hits; else regs_ok = false;
        }
        if (avr::class_uses_rr(*truth_class) && recovered[i].rr) {
          ++reg_total;
          if (*recovered[i].rr == truth.rr) ++reg_hits; else regs_ok = false;
        }
      }
      verdict = !class_ok ? "opcode wrong" : (regs_ok ? "ok" : "register wrong");
    }
    std::printf("%-24s %-24s %s\n", avr::to_string(truth).c_str(),
                recovered[i].text().c_str(), verdict.c_str());
  }
  std::printf("\nopcode classes recovered: %zu / %zu\n", class_hits, scored);
  std::printf("operand registers recovered: %zu / %zu\n", reg_hits, reg_total);
  return 0;
}

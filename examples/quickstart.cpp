// Quickstart: profile two instruction classes on the training device, fit
// the CWT -> KL -> PCA pipeline, train a QDA template, and recognize unseen
// traces -- the minimal end-to-end tour of the public API.
#include <cstdio>
#include <random>

#include "avr/grouping.hpp"
#include "core/csa.hpp"
#include "features/pipeline.hpp"
#include "ml/factory.hpp"
#include "ml/metrics.hpp"
#include "sim/acquisition.hpp"

using namespace sidis;

int main() {
  std::mt19937_64 rng(42);

  // 1. The "lab bench": training device (id 0), profiling session (id 0).
  const sim::AcquisitionCampaign campaign(sim::DeviceModel::make(0),
                                          sim::SessionContext::make(0));

  // 2. Profile two classes the paper uses throughout Sec. 4/5: ADC and AND.
  const std::size_t adc = *avr::class_index(avr::Mnemonic::kAdc);
  const std::size_t and_ = *avr::class_index(avr::Mnemonic::kAnd);
  const int kPrograms = 10;
  const std::size_t kTraces = 200;
  std::printf("capturing %zu traces per class over %d program files...\n", kTraces,
              kPrograms);
  const sim::TraceSet adc_traces = campaign.capture_class(adc, kTraces, kPrograms, rng);
  const sim::TraceSet and_traces = campaign.capture_class(and_, kTraces, kPrograms, rng);

  // 3. Split: programs 0..7 train, programs 8..9 test (unseen contexts).
  const auto split = [](const sim::TraceSet& in, sim::TraceSet& train, sim::TraceSet& test) {
    for (const sim::Trace& t : in) (t.meta.program_id < 8 ? train : test).push_back(t);
  };
  sim::TraceSet adc_train, adc_test, and_train, and_test;
  split(adc_traces, adc_train, adc_test);
  split(and_traces, and_train, and_test);

  // 4. Fit the feature pipeline (full covariate-shift adaptation settings)
  //    and train QDA on the reduced features.
  features::LabeledTraces train_input{{0, 1}, {&adc_train, &and_train}};
  features::PipelineConfig cfg = core::csa_config();
  cfg.pca_components = 20;
  const auto pipeline = features::FeaturePipeline::fit(train_input, cfg);
  std::printf("selected %zu feature points out of %zu grid points (%.1f%% reduction)\n",
              pipeline.unified_points().size(), pipeline.grid_size(),
              100.0 * (1.0 - static_cast<double>(pipeline.unified_points().size()) /
                                 static_cast<double>(pipeline.grid_size())));

  const ml::Dataset train = pipeline.transform(train_input);
  auto qda = ml::make_classifier(ml::ClassifierKind::kQda);
  qda->fit(train);

  // 5. Recognize traces from the held-out program files.
  features::LabeledTraces test_input{{0, 1}, {&adc_test, &and_test}};
  const ml::Dataset test = pipeline.transform(test_input);
  std::printf("train SR: %.2f%%\n", 100.0 * qda->accuracy(train));
  std::printf("test  SR: %.2f%% (%zu unseen traces)\n", 100.0 * qda->accuracy(test),
              test.size());

  // 6. Single-trace classification, the real-time monitoring primitive.
  const int predicted = qda->predict(pipeline.transform(adc_test.front()));
  std::printf("single unseen ADC trace classified as: %s\n",
              predicted == 0 ? "ADC" : "AND");
  return 0;
}

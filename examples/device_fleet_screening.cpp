// Screening a fleet of fielded devices with templates trained on a single
// golden unit -- the deployment mode behind the paper's Sec. 5.6 experiment.
//
// A vendor profiles one reference device in the lab; every unit coming back
// from the field is then checked by watching a known self-test routine
// through the power side channel.  Device-to-device process variation plus
// the per-site measurement chain are the covariate shift here; both the
// initial-experiment pipeline and the CSA pipeline are screened so the
// operator can see the margin each one leaves.  (In this mild, own-reference
// regime both stay serviceable -- the hard shifts are the Table-3 kind.)
#include <cstdio>
#include <random>

#include "core/csa.hpp"
#include "features/pipeline.hpp"
#include "ml/factory.hpp"
#include "sim/acquisition.hpp"

using namespace sidis;

namespace {

double screen(const features::FeaturePipeline& pipeline, const ml::Classifier& clf,
              int device_id, std::size_t adc, std::size_t and_,
              const std::vector<double>& golden_reference, std::mt19937_64& rng) {
  // Each fielded unit is measured where it is installed: its own device
  // *and* its own measurement session.
  sim::SessionContext site = sim::SessionContext::make(0);
  site.id = 10 + device_id;
  site.gain = 1.0 + 0.12 * device_id;   // site-to-site probe chains differ
  site.ripple_amp = 0.05;
  site.ripple_phase = 0.9 * device_id;
  sim::AcquisitionCampaign unit(sim::DeviceModel::make(device_id), site);
  // The self-test routine carries its own SBI/CBI trigger segment, so every
  // unit measures its own reference trace; only the *templates* come from
  // the golden unit.
  (void)golden_reference;
  sim::TraceSet adc_t, and_t;
  const sim::ProgramContext prog = sim::ProgramContext::make(500 + device_id);
  for (int i = 0; i < 60; ++i) {
    adc_t.push_back(unit.capture_trace(avr::random_instance(adc, rng), prog, rng));
    and_t.push_back(unit.capture_trace(avr::random_instance(and_, rng), prog, rng));
  }
  return clf.accuracy(pipeline.transform({{0, 1}, {&adc_t, &and_t}}));
}

}  // namespace

int main() {
  std::mt19937_64 rng(9);
  const sim::AcquisitionCampaign golden(sim::DeviceModel::make(0),
                                        sim::SessionContext::make(0));
  const std::size_t adc = *avr::class_index(avr::Mnemonic::kAdc);
  const std::size_t and_ = *avr::class_index(avr::Mnemonic::kAnd);

  std::printf("profiling the golden unit (device 0)...\n");
  const sim::TraceSet adc_train = golden.capture_class(adc, 1900, 19, rng);
  const sim::TraceSet and_train = golden.capture_class(and_, 1900, 19, rng);

  const auto build = [&](const features::PipelineConfig& base,
                         features::FeaturePipeline& pipeline,
                         std::unique_ptr<ml::Classifier>& clf) {
    features::PipelineConfig cfg = base;
    cfg.pca_components = 3;
    pipeline = features::FeaturePipeline::fit({{0, 1}, {&adc_train, &and_train}}, cfg);
    clf = ml::make_classifier(ml::ClassifierKind::kQda);
    clf->fit(pipeline.transform({{0, 1}, {&adc_train, &and_train}}));
  };
  features::FeaturePipeline csa_pipe, naive_pipe;
  std::unique_ptr<ml::Classifier> csa_clf, naive_clf;
  build(core::csa_config(), csa_pipe, csa_clf);
  build(core::without_csa_config(), naive_pipe, naive_clf);

  std::printf("\nscreening 5 field units (ADC-vs-AND recognition SR):\n");
  std::printf("  %-8s  %-12s  %-12s\n", "unit", "naive", "with CSA");
  double worst = 1.0;
  for (int dev = 1; dev <= 5; ++dev) {
    const double naive = screen(naive_pipe, *naive_clf, dev, adc, and_,
                                golden.reference_window(), rng);
    const double csa = screen(csa_pipe, *csa_clf, dev, adc, and_,
                              golden.reference_window(), rng);
    worst = std::min(worst, csa);
    std::printf("  Dev. %-3d  %10.1f%%  %10.1f%%\n", dev, 100.0 * naive, 100.0 * csa);
  }
  std::printf("\nworst-unit SR with CSA: %.1f%% -- every fielded unit stays\n"
              "recognizable without re-profiling it (paper Table 4: 88.9%%..95.6%%).\n",
              100.0 * worst);
  return 0;
}

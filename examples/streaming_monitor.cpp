// Production-shaped deployment tour of the src/runtime serving layer:
//
//   1. profile the training device with the PARALLEL campaign profiler
//      (worker pool, per-item RNG streams -- same corpus at any core count);
//   2. train the hierarchical disassembler and publish it into a versioned
//      ModelRegistry bundle (checksummed, atomically written);
//   3. on the "monitor" side, load the bundle back by name and stream live
//      per-instruction trace windows through StreamingDisassembler --
//      bounded queue, worker pool, in-order results -- as a real-time
//      monitor would;
//   4. print the recovered listing and the engine's latency telemetry.
#include <cstdio>
#include <filesystem>
#include <random>

#include "avr/assembler.hpp"
#include "core/csa.hpp"
#include "core/disassembler.hpp"
#include "core/profiler.hpp"
#include "runtime/registry.hpp"
#include "runtime/streaming.hpp"
#include "sim/acquisition.hpp"

using namespace sidis;

int main() {
  std::mt19937_64 rng(77);
  const sim::AcquisitionCampaign campaign(sim::DeviceModel::make(0),
                                          sim::SessionContext::make(0));

  // -- 1. profiling campaign, parallelized over the worker pool -------------
  const avr::Program firmware = avr::assemble(
                                    "SBI 5, 5     ; sync + gain reference\n"
                                    "NOP\n"
                                    "LDI r16, 0x3A\n"
                                    "LDI r17, 0x5C\n"
                                    "MOV r2, r16\n"
                                    "EOR r16, r17\n"
                                    "ADD r2, r17\n"
                                    "AND r3, r17\n"
                                    "CBI 5, 5\n")
                                    .program;
  core::ProfilerConfig pc;
  pc.classes = {*avr::class_index(avr::Mnemonic::kLdi),
                *avr::class_index(avr::Mnemonic::kMov),
                *avr::class_index(avr::Mnemonic::kEor),
                *avr::class_index(avr::Mnemonic::kAdd),
                *avr::class_index(avr::Mnemonic::kAnd)};
  pc.traces_per_class = 120;
  pc.profile_registers = false;
  pc.workers = 0;  // hardware concurrency
  std::printf("profiling %zu instruction classes in parallel...\n", pc.classes.size());
  const core::ProfilingData data = core::profile_device(
      campaign, pc, rng, [](std::size_t done, std::size_t total, const std::string& item) {
        std::printf("  [%zu/%zu] %s\n", done, total, item.c_str());
        return true;
      });

  core::HierarchicalConfig cfg;
  cfg.pipeline = core::csa_config();
  cfg.pipeline.pca_components = 24;
  cfg.group_components = 16;
  cfg.instruction_components = 24;
  cfg.factory.discriminant.shrinkage = 0.15;
  const auto trained = core::HierarchicalDisassembler::train(data, cfg);

  // -- 2. publish the trained model as a deployable artifact ----------------
  runtime::ModelRegistry registry(std::filesystem::temp_directory_path() /
                                  "sidis_registry_demo");
  const int version = registry.save("firmware-monitor", trained);
  const runtime::ArtifactInfo info = registry.info("firmware-monitor", version);
  std::printf("\npublished bundle 'firmware-monitor' v%d (%llu bytes, fnv1a %016llx)\n",
              version, static_cast<unsigned long long>(info.payload_bytes),
              static_cast<unsigned long long>(info.checksum));

  // -- 3. monitor side: load by name, stream live windows -------------------
  const auto model = registry.load("firmware-monitor");  // latest version
  runtime::StreamingConfig scfg;
  scfg.workers = 0;  // hardware concurrency
  scfg.queue_capacity = 32;
  runtime::StreamingDisassembler engine(model, scfg);

  std::printf("\nstreaming 20 executions of the monitored firmware...\n");
  std::vector<core::Disassembly> recovered;
  for (int rep = 0; rep < 20; ++rep) {
    const sim::TraceSet windows =
        campaign.capture_program(firmware, sim::ProgramContext::make(300), rng);
    for (const sim::Trace& t : windows) engine.submit(t);
    while (auto r = engine.poll()) recovered.push_back(std::move(r->value));
  }
  for (auto& r : engine.drain()) recovered.push_back(std::move(r.value));

  const std::size_t per_exec = recovered.size() / 20;
  std::printf("\nrecovered stream (first execution, %zu windows):\n", per_exec);
  for (std::size_t i = 0; i < per_exec; ++i) {
    std::printf("  %2zu: %s\n", i, recovered[i].text().c_str());
  }

  // -- 4. runtime telemetry -------------------------------------------------
  std::printf("\n%s", engine.stats().report().c_str());
  return 0;
}

// Combining the side channel with static code analysis (the paper's Sec.-6
// future-work direction): when the monitor knows the golden firmware, a
// bigram prior over its instruction classes lets Viterbi decoding repair
// isolated single-trace misclassifications.
//
// To make errors visible, classification runs in a deliberately hostile
// regime: a gain-shifted field session and the *naive* (no-CSA) pipeline.
// The same per-window QDA log-likelihoods are decoded twice -- without and
// with the sequence prior -- and both recoveries are scored.
#include <cstdio>
#include <random>

#include "avr/assembler.hpp"
#include "core/csa.hpp"
#include "core/sequence.hpp"
#include "features/pipeline.hpp"
#include "ml/discriminant.hpp"
#include "sim/acquisition.hpp"

using namespace sidis;

int main() {
  std::mt19937_64 rng(606);
  const sim::AcquisitionCampaign profiling(sim::DeviceModel::make(0),
                                           sim::SessionContext::make(0));
  sim::SessionContext field_session = sim::SessionContext::make(0);
  field_session.id = 4;
  field_session.gain = 1.22;  // hostile: field probe gained 22%
  const sim::AcquisitionCampaign field(sim::DeviceModel::make(0), field_session);

  // The monitored firmware: an unrolled accumulate-and-store loop whose
  // structure (LDI -> ADD -> ADD -> ST) repeats -- exactly what a bigram
  // prior can exploit.
  avr::Program firmware = avr::assemble("SBI 5, 5\nNOP\n").program;
  for (int i = 0; i < 8; ++i) {
    const avr::Program body = avr::assemble(
        "LDI r16, 10\nADD r2, r16\nADD r3, r2\nST X+, r3\n").program;
    firmware.insert(firmware.end(), body.begin(), body.end());
  }
  firmware.push_back(avr::assemble_line("CBI 5, 5"));

  // Dictionary of classes the firmware uses (plus distractors).
  const std::vector<avr::Mnemonic> dict = {avr::Mnemonic::kLdi, avr::Mnemonic::kAdd,
                                           avr::Mnemonic::kSub, avr::Mnemonic::kAnd,
                                           avr::Mnemonic::kSbi, avr::Mnemonic::kCbi};
  std::vector<std::size_t> dict_classes;
  for (avr::Mnemonic m : dict) dict_classes.push_back(*avr::class_index(m));
  dict_classes.push_back(*avr::class_index(avr::Mnemonic::kSt, avr::AddrMode::kXPostInc));

  std::printf("profiling %zu-class dictionary...\n", dict_classes.size());
  std::vector<sim::TraceSet> sets;
  features::LabeledTraces train;
  for (std::size_t cls : dict_classes) sets.push_back(profiling.capture_class(cls, 200, 10, rng));
  for (std::size_t i = 0; i < dict_classes.size(); ++i) {
    train.labels.push_back(static_cast<int>(dict_classes[i]));
    train.sets.push_back(&sets[i]);
  }
  features::PipelineConfig cfg = core::without_csa_config();  // naive on purpose
  cfg.pca_components = 10;
  const auto pipe = features::FeaturePipeline::fit(train, cfg);
  ml::DiscriminantConfig dc;
  dc.shrinkage = 0.15;
  ml::Qda qda(dc);
  qda.fit(pipe.transform(train));

  // The prior comes from *static analysis* of the golden firmware.
  core::BigramPrior prior(avr::num_instruction_classes(), 0.05);
  prior.add_program(firmware);

  std::printf("capturing the firmware in the hostile field session...\n\n");
  int raw_hits = 0, smooth_hits = 0, scored = 0;
  for (int run = 0; run < 10; ++run) {
    const sim::TraceSet windows =
        field.capture_program(firmware, sim::ProgramContext::make(700 + run), rng);
    // Emission matrix over the dictionary labels.
    linalg::Matrix emissions(windows.size(), avr::num_instruction_classes(), -50.0);
    for (std::size_t t = 0; t < windows.size(); ++t) {
      const linalg::Vector s = qda.scores(pipe.transform(windows[t]));
      for (std::size_t c = 0; c < qda.labels().size(); ++c) {
        emissions(t, static_cast<std::size_t>(qda.labels()[c])) = s[c];
      }
    }
    const auto raw = core::viterbi_decode(emissions, prior, 0.0);
    const auto smooth = core::viterbi_decode(emissions, prior, 1.0);
    for (std::size_t t = 0; t < windows.size(); ++t) {
      const auto truth = avr::class_of(windows[t].meta.instr);
      if (!truth) continue;
      ++scored;
      raw_hits += raw[t] == *truth ? 1 : 0;
      smooth_hits += smooth[t] == *truth ? 1 : 0;
    }
  }
  std::printf("per-instruction recovery over %d instructions:\n", scored);
  std::printf("  independent classification: %5.1f%%\n",
              100.0 * raw_hits / static_cast<double>(scored));
  std::printf("  with bigram Viterbi prior:  %5.1f%%\n",
              100.0 * smooth_hits / static_cast<double>(scored));
  std::printf("\nknowing what the code *should* look like repairs isolated\n"
              "side-channel misreads -- the paper's proposed static-analysis synergy.\n");
  return 0;
}

// Combining the side channel with static code analysis (the paper's Sec.-6
// future-work direction): when the monitor knows the golden firmware, a
// transition prior over its instruction classes lets sequence decoding repair
// isolated single-trace misclassifications.
//
// To make errors visible, classification runs in a deliberately hostile
// regime: a gain-shifted field session and the *naive* (no-CSA) pipeline.
// The per-window posteriors come from the hierarchical model's
// classify_scored path; the same posteriors are decoded twice -- once as
// plain per-window argmax, once through the runtime's bounded-lag
// SequenceDecoder under an IsaPrior blended with the firmware's bigram
// statistics -- and both recoveries are scored.
#include <cstdio>
#include <memory>
#include <random>

#include "avr/assembler.hpp"
#include "core/csa.hpp"
#include "core/hierarchical.hpp"
#include "core/sequence.hpp"
#include "runtime/decoder.hpp"
#include "sim/acquisition.hpp"

using namespace sidis;

int main() {
  std::mt19937_64 rng(606);
  const sim::AcquisitionCampaign profiling(sim::DeviceModel::make(0),
                                           sim::SessionContext::make(0));
  sim::SessionContext field_session = sim::SessionContext::make(0);
  field_session.id = 4;
  field_session.gain = 1.22;  // hostile: field probe gained 22%
  const sim::AcquisitionCampaign field(sim::DeviceModel::make(0), field_session);

  // The monitored firmware: an unrolled accumulate-and-store loop whose
  // structure (LDI -> ADD -> ADD -> ST) repeats -- exactly what a transition
  // prior can exploit.
  avr::Program firmware = avr::assemble("SBI 5, 5\nNOP\n").program;
  for (int i = 0; i < 8; ++i) {
    const avr::Program body = avr::assemble(
        "LDI r16, 10\nADD r2, r16\nADD r3, r2\nST X+, r3\n").program;
    firmware.insert(firmware.end(), body.begin(), body.end());
  }
  firmware.push_back(avr::assemble_line("CBI 5, 5"));

  // Dictionary of classes the firmware uses (plus distractors).
  const std::vector<avr::Mnemonic> dict = {avr::Mnemonic::kLdi, avr::Mnemonic::kAdd,
                                           avr::Mnemonic::kSub, avr::Mnemonic::kAnd,
                                           avr::Mnemonic::kSbi, avr::Mnemonic::kCbi};
  std::vector<std::size_t> dict_classes;
  for (avr::Mnemonic m : dict) dict_classes.push_back(*avr::class_index(m));
  dict_classes.push_back(*avr::class_index(avr::Mnemonic::kSt, avr::AddrMode::kXPostInc));

  std::printf("profiling %zu-class dictionary...\n", dict_classes.size());
  core::ProfilingData data;
  for (std::size_t cls : dict_classes) {
    data.classes[cls] = profiling.capture_class(cls, 200, 10, rng);
  }
  core::HierarchicalConfig cfg;
  cfg.pipeline = core::without_csa_config();  // naive on purpose
  cfg.pipeline.pca_components = 10;
  cfg.group_components = 8;
  cfg.instruction_components = 8;
  cfg.factory.discriminant.shrinkage = 0.15;
  const auto model = std::make_shared<const core::HierarchicalDisassembler>(
      core::HierarchicalDisassembler::train(data, cfg));

  // The prior comes from *static analysis* of the golden firmware: its
  // bigram counts, blended with the ISA's structural rules (a carry consumer
  // needs a carry producer, a branch needs its flags written, ...).
  core::BigramPrior evidence(avr::num_instruction_classes(), 0.05);
  evidence.add_program(firmware);
  const auto prior = std::make_shared<const core::IsaPrior>(evidence);

  std::printf("capturing the firmware in the hostile field session...\n\n");
  int raw_hits = 0, smooth_hits = 0, scored_count = 0;
  std::uint64_t smoothed_windows = 0;
  for (int run = 0; run < 10; ++run) {
    const sim::TraceSet windows =
        field.capture_program(firmware, sim::ProgramContext::make(700 + run), rng);

    // One bounded-lag decoder per captured run (each is its own stream).
    runtime::SequenceDecoderConfig dcfg;
    dcfg.lag = 8;
    runtime::SequenceDecoder decoder(model->posterior_classes(), prior, dcfg);
    std::vector<runtime::SmoothedWindow> out;
    for (const sim::Trace& t : windows) {
      decoder.push(model->classify_scored(t));
      while (auto w = decoder.poll()) out.push_back(std::move(*w));
    }
    for (auto& w : decoder.flush()) out.push_back(std::move(w));
    smoothed_windows += decoder.smoothed_count();

    for (std::size_t t = 0; t < out.size(); ++t) {
      const auto truth = avr::class_of(windows[t].meta.instr);
      if (!truth) continue;  // trigger/NOP scaffolding
      ++scored_count;
      raw_hits += out[t].raw_class == *truth ? 1 : 0;
      smooth_hits += out[t].value.class_idx == *truth ? 1 : 0;
    }
  }
  std::printf("per-instruction recovery over %d instructions:\n", scored_count);
  std::printf("  independent classification: %5.1f%%\n",
              100.0 * raw_hits / static_cast<double>(scored_count));
  std::printf("  with ISA+bigram decoding:   %5.1f%%  (%llu windows rewritten)\n",
              100.0 * smooth_hits / static_cast<double>(scored_count),
              static_cast<unsigned long long>(smoothed_windows));
  std::printf("\nknowing what the code *should* look like repairs isolated\n"
              "side-channel misreads -- the paper's proposed static-analysis synergy.\n");
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/bench_full_system.dir/bench_full_system.cpp.o"
  "CMakeFiles/bench_full_system.dir/bench_full_system.cpp.o.d"
  "bench_full_system"
  "bench_full_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_full_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_full_system.
# This may be replaced when dependencies are built.

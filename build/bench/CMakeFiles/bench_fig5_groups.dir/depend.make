# Empty dependencies file for bench_fig5_groups.
# This may be replaced when dependencies are built.

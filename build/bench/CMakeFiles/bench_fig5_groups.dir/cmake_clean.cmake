file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_groups.dir/bench_fig5_groups.cpp.o"
  "CMakeFiles/bench_fig5_groups.dir/bench_fig5_groups.cpp.o.d"
  "bench_fig5_groups"
  "bench_fig5_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

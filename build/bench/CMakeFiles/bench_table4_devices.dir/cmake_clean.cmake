file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_devices.dir/bench_table4_devices.cpp.o"
  "CMakeFiles/bench_table4_devices.dir/bench_table4_devices.cpp.o.d"
  "bench_table4_devices"
  "bench_table4_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table4_devices.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_table2_groups.
# This may be replaced when dependencies are built.

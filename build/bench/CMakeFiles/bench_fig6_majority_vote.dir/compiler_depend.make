# Empty compiler generated dependencies file for bench_fig6_majority_vote.
# This may be replaced when dependencies are built.

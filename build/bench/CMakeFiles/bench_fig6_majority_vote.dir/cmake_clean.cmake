file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_majority_vote.dir/bench_fig6_majority_vote.cpp.o"
  "CMakeFiles/bench_fig6_majority_vote.dir/bench_fig6_majority_vote.cpp.o.d"
  "bench_fig6_majority_vote"
  "bench_fig6_majority_vote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_majority_vote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_featurepoints.dir/bench_fig2_featurepoints.cpp.o"
  "CMakeFiles/bench_fig2_featurepoints.dir/bench_fig2_featurepoints.cpp.o.d"
  "bench_fig2_featurepoints"
  "bench_fig2_featurepoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_featurepoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

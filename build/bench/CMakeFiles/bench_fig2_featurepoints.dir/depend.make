# Empty dependencies file for bench_fig2_featurepoints.
# This may be replaced when dependencies are built.

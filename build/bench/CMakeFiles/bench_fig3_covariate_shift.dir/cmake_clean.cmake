file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_covariate_shift.dir/bench_fig3_covariate_shift.cpp.o"
  "CMakeFiles/bench_fig3_covariate_shift.dir/bench_fig3_covariate_shift.cpp.o.d"
  "bench_fig3_covariate_shift"
  "bench_fig3_covariate_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_covariate_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig3_covariate_shift.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_sec53_registers.dir/bench_sec53_registers.cpp.o"
  "CMakeFiles/bench_sec53_registers.dir/bench_sec53_registers.cpp.o.d"
  "bench_sec53_registers"
  "bench_sec53_registers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec53_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_sec53_registers.
# This may be replaced when dependencies are built.

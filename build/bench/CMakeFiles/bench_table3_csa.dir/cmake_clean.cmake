file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_csa.dir/bench_table3_csa.cpp.o"
  "CMakeFiles/bench_table3_csa.dir/bench_table3_csa.cpp.o.d"
  "bench_table3_csa"
  "bench_table3_csa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_csa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_group1.dir/bench_fig5_group1.cpp.o"
  "CMakeFiles/bench_fig5_group1.dir/bench_fig5_group1.cpp.o.d"
  "bench_fig5_group1"
  "bench_fig5_group1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_group1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

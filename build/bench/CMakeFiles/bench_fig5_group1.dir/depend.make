# Empty dependencies file for bench_fig5_group1.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/device_fleet_screening.dir/device_fleet_screening.cpp.o"
  "CMakeFiles/device_fleet_screening.dir/device_fleet_screening.cpp.o.d"
  "device_fleet_screening"
  "device_fleet_screening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_fleet_screening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

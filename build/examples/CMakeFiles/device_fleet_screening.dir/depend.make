# Empty dependencies file for device_fleet_screening.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/firmware_reverse_engineering.dir/firmware_reverse_engineering.cpp.o"
  "CMakeFiles/firmware_reverse_engineering.dir/firmware_reverse_engineering.cpp.o.d"
  "firmware_reverse_engineering"
  "firmware_reverse_engineering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firmware_reverse_engineering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

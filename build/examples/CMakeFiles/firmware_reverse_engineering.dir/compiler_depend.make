# Empty compiler generated dependencies file for firmware_reverse_engineering.
# This may be replaced when dependencies are built.

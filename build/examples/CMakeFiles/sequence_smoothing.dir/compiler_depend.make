# Empty compiler generated dependencies file for sequence_smoothing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sequence_smoothing.dir/sequence_smoothing.cpp.o"
  "CMakeFiles/sequence_smoothing.dir/sequence_smoothing.cpp.o.d"
  "sequence_smoothing"
  "sequence_smoothing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequence_smoothing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

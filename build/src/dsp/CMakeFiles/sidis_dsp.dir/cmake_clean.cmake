file(REMOVE_RECURSE
  "CMakeFiles/sidis_dsp.dir/fft.cpp.o"
  "CMakeFiles/sidis_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/sidis_dsp.dir/signal.cpp.o"
  "CMakeFiles/sidis_dsp.dir/signal.cpp.o.d"
  "CMakeFiles/sidis_dsp.dir/wavelet.cpp.o"
  "CMakeFiles/sidis_dsp.dir/wavelet.cpp.o.d"
  "libsidis_dsp.a"
  "libsidis_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidis_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/sidis_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/sidis_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/signal.cpp" "src/dsp/CMakeFiles/sidis_dsp.dir/signal.cpp.o" "gcc" "src/dsp/CMakeFiles/sidis_dsp.dir/signal.cpp.o.d"
  "/root/repo/src/dsp/wavelet.cpp" "src/dsp/CMakeFiles/sidis_dsp.dir/wavelet.cpp.o" "gcc" "src/dsp/CMakeFiles/sidis_dsp.dir/wavelet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/sidis_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for sidis_dsp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsidis_dsp.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/avr/assembler.cpp" "src/avr/CMakeFiles/sidis_avr.dir/assembler.cpp.o" "gcc" "src/avr/CMakeFiles/sidis_avr.dir/assembler.cpp.o.d"
  "/root/repo/src/avr/codec.cpp" "src/avr/CMakeFiles/sidis_avr.dir/codec.cpp.o" "gcc" "src/avr/CMakeFiles/sidis_avr.dir/codec.cpp.o.d"
  "/root/repo/src/avr/cpu.cpp" "src/avr/CMakeFiles/sidis_avr.dir/cpu.cpp.o" "gcc" "src/avr/CMakeFiles/sidis_avr.dir/cpu.cpp.o.d"
  "/root/repo/src/avr/grouping.cpp" "src/avr/CMakeFiles/sidis_avr.dir/grouping.cpp.o" "gcc" "src/avr/CMakeFiles/sidis_avr.dir/grouping.cpp.o.d"
  "/root/repo/src/avr/isa.cpp" "src/avr/CMakeFiles/sidis_avr.dir/isa.cpp.o" "gcc" "src/avr/CMakeFiles/sidis_avr.dir/isa.cpp.o.d"
  "/root/repo/src/avr/program.cpp" "src/avr/CMakeFiles/sidis_avr.dir/program.cpp.o" "gcc" "src/avr/CMakeFiles/sidis_avr.dir/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for sidis_avr.
# This may be replaced when dependencies are built.

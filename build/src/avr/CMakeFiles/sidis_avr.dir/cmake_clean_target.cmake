file(REMOVE_RECURSE
  "libsidis_avr.a"
)

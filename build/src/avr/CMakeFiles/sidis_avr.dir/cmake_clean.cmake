file(REMOVE_RECURSE
  "CMakeFiles/sidis_avr.dir/assembler.cpp.o"
  "CMakeFiles/sidis_avr.dir/assembler.cpp.o.d"
  "CMakeFiles/sidis_avr.dir/codec.cpp.o"
  "CMakeFiles/sidis_avr.dir/codec.cpp.o.d"
  "CMakeFiles/sidis_avr.dir/cpu.cpp.o"
  "CMakeFiles/sidis_avr.dir/cpu.cpp.o.d"
  "CMakeFiles/sidis_avr.dir/grouping.cpp.o"
  "CMakeFiles/sidis_avr.dir/grouping.cpp.o.d"
  "CMakeFiles/sidis_avr.dir/isa.cpp.o"
  "CMakeFiles/sidis_avr.dir/isa.cpp.o.d"
  "CMakeFiles/sidis_avr.dir/program.cpp.o"
  "CMakeFiles/sidis_avr.dir/program.cpp.o.d"
  "libsidis_avr.a"
  "libsidis_avr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidis_avr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsidis_core.a"
)

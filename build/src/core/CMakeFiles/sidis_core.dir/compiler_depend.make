# Empty compiler generated dependencies file for sidis_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sidis_core.dir/csa.cpp.o"
  "CMakeFiles/sidis_core.dir/csa.cpp.o.d"
  "CMakeFiles/sidis_core.dir/disassembler.cpp.o"
  "CMakeFiles/sidis_core.dir/disassembler.cpp.o.d"
  "CMakeFiles/sidis_core.dir/hierarchical.cpp.o"
  "CMakeFiles/sidis_core.dir/hierarchical.cpp.o.d"
  "CMakeFiles/sidis_core.dir/majority_vote.cpp.o"
  "CMakeFiles/sidis_core.dir/majority_vote.cpp.o.d"
  "CMakeFiles/sidis_core.dir/profiler.cpp.o"
  "CMakeFiles/sidis_core.dir/profiler.cpp.o.d"
  "CMakeFiles/sidis_core.dir/sequence.cpp.o"
  "CMakeFiles/sidis_core.dir/sequence.cpp.o.d"
  "CMakeFiles/sidis_core.dir/serialize.cpp.o"
  "CMakeFiles/sidis_core.dir/serialize.cpp.o.d"
  "libsidis_core.a"
  "libsidis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sidis_sim.dir/acquisition.cpp.o"
  "CMakeFiles/sidis_sim.dir/acquisition.cpp.o.d"
  "CMakeFiles/sidis_sim.dir/environment.cpp.o"
  "CMakeFiles/sidis_sim.dir/environment.cpp.o.d"
  "CMakeFiles/sidis_sim.dir/oscilloscope.cpp.o"
  "CMakeFiles/sidis_sim.dir/oscilloscope.cpp.o.d"
  "CMakeFiles/sidis_sim.dir/power_model.cpp.o"
  "CMakeFiles/sidis_sim.dir/power_model.cpp.o.d"
  "CMakeFiles/sidis_sim.dir/trace.cpp.o"
  "CMakeFiles/sidis_sim.dir/trace.cpp.o.d"
  "libsidis_sim.a"
  "libsidis_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidis_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/acquisition.cpp" "src/sim/CMakeFiles/sidis_sim.dir/acquisition.cpp.o" "gcc" "src/sim/CMakeFiles/sidis_sim.dir/acquisition.cpp.o.d"
  "/root/repo/src/sim/environment.cpp" "src/sim/CMakeFiles/sidis_sim.dir/environment.cpp.o" "gcc" "src/sim/CMakeFiles/sidis_sim.dir/environment.cpp.o.d"
  "/root/repo/src/sim/oscilloscope.cpp" "src/sim/CMakeFiles/sidis_sim.dir/oscilloscope.cpp.o" "gcc" "src/sim/CMakeFiles/sidis_sim.dir/oscilloscope.cpp.o.d"
  "/root/repo/src/sim/power_model.cpp" "src/sim/CMakeFiles/sidis_sim.dir/power_model.cpp.o" "gcc" "src/sim/CMakeFiles/sidis_sim.dir/power_model.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/sidis_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/sidis_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/avr/CMakeFiles/sidis_avr.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/sidis_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/sidis_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

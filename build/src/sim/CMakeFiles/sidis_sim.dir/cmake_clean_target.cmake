file(REMOVE_RECURSE
  "libsidis_sim.a"
)

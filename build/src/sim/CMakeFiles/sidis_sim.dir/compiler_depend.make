# Empty compiler generated dependencies file for sidis_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sidis_features.dir/pipeline.cpp.o"
  "CMakeFiles/sidis_features.dir/pipeline.cpp.o.d"
  "CMakeFiles/sidis_features.dir/selection.cpp.o"
  "CMakeFiles/sidis_features.dir/selection.cpp.o.d"
  "libsidis_features.a"
  "libsidis_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidis_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sidis_features.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsidis_features.a"
)

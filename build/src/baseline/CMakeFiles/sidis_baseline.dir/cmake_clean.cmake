file(REMOVE_RECURSE
  "CMakeFiles/sidis_baseline.dir/baselines.cpp.o"
  "CMakeFiles/sidis_baseline.dir/baselines.cpp.o.d"
  "libsidis_baseline.a"
  "libsidis_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidis_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

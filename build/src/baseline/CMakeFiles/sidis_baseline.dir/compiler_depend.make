# Empty compiler generated dependencies file for sidis_baseline.
# This may be replaced when dependencies are built.

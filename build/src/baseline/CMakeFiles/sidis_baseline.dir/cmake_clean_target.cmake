file(REMOVE_RECURSE
  "libsidis_baseline.a"
)

# Empty dependencies file for sidis_stats.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sidis_stats.dir/gaussian.cpp.o"
  "CMakeFiles/sidis_stats.dir/gaussian.cpp.o.d"
  "CMakeFiles/sidis_stats.dir/kl.cpp.o"
  "CMakeFiles/sidis_stats.dir/kl.cpp.o.d"
  "CMakeFiles/sidis_stats.dir/pca.cpp.o"
  "CMakeFiles/sidis_stats.dir/pca.cpp.o.d"
  "CMakeFiles/sidis_stats.dir/peaks.cpp.o"
  "CMakeFiles/sidis_stats.dir/peaks.cpp.o.d"
  "CMakeFiles/sidis_stats.dir/standardize.cpp.o"
  "CMakeFiles/sidis_stats.dir/standardize.cpp.o.d"
  "libsidis_stats.a"
  "libsidis_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidis_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

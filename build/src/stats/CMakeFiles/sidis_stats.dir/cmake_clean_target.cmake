file(REMOVE_RECURSE
  "libsidis_stats.a"
)

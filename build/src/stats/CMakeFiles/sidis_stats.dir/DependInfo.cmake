
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/gaussian.cpp" "src/stats/CMakeFiles/sidis_stats.dir/gaussian.cpp.o" "gcc" "src/stats/CMakeFiles/sidis_stats.dir/gaussian.cpp.o.d"
  "/root/repo/src/stats/kl.cpp" "src/stats/CMakeFiles/sidis_stats.dir/kl.cpp.o" "gcc" "src/stats/CMakeFiles/sidis_stats.dir/kl.cpp.o.d"
  "/root/repo/src/stats/pca.cpp" "src/stats/CMakeFiles/sidis_stats.dir/pca.cpp.o" "gcc" "src/stats/CMakeFiles/sidis_stats.dir/pca.cpp.o.d"
  "/root/repo/src/stats/peaks.cpp" "src/stats/CMakeFiles/sidis_stats.dir/peaks.cpp.o" "gcc" "src/stats/CMakeFiles/sidis_stats.dir/peaks.cpp.o.d"
  "/root/repo/src/stats/standardize.cpp" "src/stats/CMakeFiles/sidis_stats.dir/standardize.cpp.o" "gcc" "src/stats/CMakeFiles/sidis_stats.dir/standardize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/sidis_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for sidis_linalg.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsidis_linalg.a"
)

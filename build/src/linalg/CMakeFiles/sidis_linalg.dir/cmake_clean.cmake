file(REMOVE_RECURSE
  "CMakeFiles/sidis_linalg.dir/decompositions.cpp.o"
  "CMakeFiles/sidis_linalg.dir/decompositions.cpp.o.d"
  "CMakeFiles/sidis_linalg.dir/eigen.cpp.o"
  "CMakeFiles/sidis_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/sidis_linalg.dir/matrix.cpp.o"
  "CMakeFiles/sidis_linalg.dir/matrix.cpp.o.d"
  "libsidis_linalg.a"
  "libsidis_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidis_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sidis_ml.
# This may be replaced when dependencies are built.

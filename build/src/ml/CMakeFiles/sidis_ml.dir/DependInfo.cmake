
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/classifier.cpp" "src/ml/CMakeFiles/sidis_ml.dir/classifier.cpp.o" "gcc" "src/ml/CMakeFiles/sidis_ml.dir/classifier.cpp.o.d"
  "/root/repo/src/ml/crossval.cpp" "src/ml/CMakeFiles/sidis_ml.dir/crossval.cpp.o" "gcc" "src/ml/CMakeFiles/sidis_ml.dir/crossval.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/sidis_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/sidis_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/discriminant.cpp" "src/ml/CMakeFiles/sidis_ml.dir/discriminant.cpp.o" "gcc" "src/ml/CMakeFiles/sidis_ml.dir/discriminant.cpp.o.d"
  "/root/repo/src/ml/factory.cpp" "src/ml/CMakeFiles/sidis_ml.dir/factory.cpp.o" "gcc" "src/ml/CMakeFiles/sidis_ml.dir/factory.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/sidis_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/sidis_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/sidis_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/sidis_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/naive_bayes.cpp" "src/ml/CMakeFiles/sidis_ml.dir/naive_bayes.cpp.o" "gcc" "src/ml/CMakeFiles/sidis_ml.dir/naive_bayes.cpp.o.d"
  "/root/repo/src/ml/svm.cpp" "src/ml/CMakeFiles/sidis_ml.dir/svm.cpp.o" "gcc" "src/ml/CMakeFiles/sidis_ml.dir/svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/sidis_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sidis_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

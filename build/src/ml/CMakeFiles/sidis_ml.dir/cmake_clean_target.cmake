file(REMOVE_RECURSE
  "libsidis_ml.a"
)

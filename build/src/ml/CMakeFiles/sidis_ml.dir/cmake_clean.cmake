file(REMOVE_RECURSE
  "CMakeFiles/sidis_ml.dir/classifier.cpp.o"
  "CMakeFiles/sidis_ml.dir/classifier.cpp.o.d"
  "CMakeFiles/sidis_ml.dir/crossval.cpp.o"
  "CMakeFiles/sidis_ml.dir/crossval.cpp.o.d"
  "CMakeFiles/sidis_ml.dir/dataset.cpp.o"
  "CMakeFiles/sidis_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/sidis_ml.dir/discriminant.cpp.o"
  "CMakeFiles/sidis_ml.dir/discriminant.cpp.o.d"
  "CMakeFiles/sidis_ml.dir/factory.cpp.o"
  "CMakeFiles/sidis_ml.dir/factory.cpp.o.d"
  "CMakeFiles/sidis_ml.dir/knn.cpp.o"
  "CMakeFiles/sidis_ml.dir/knn.cpp.o.d"
  "CMakeFiles/sidis_ml.dir/metrics.cpp.o"
  "CMakeFiles/sidis_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/sidis_ml.dir/naive_bayes.cpp.o"
  "CMakeFiles/sidis_ml.dir/naive_bayes.cpp.o.d"
  "CMakeFiles/sidis_ml.dir/svm.cpp.o"
  "CMakeFiles/sidis_ml.dir/svm.cpp.o.d"
  "libsidis_ml.a"
  "libsidis_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidis_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

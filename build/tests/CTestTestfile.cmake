# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/linalg_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_decompositions_test[1]_include.cmake")
include("/root/repo/build/tests/dsp_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/avr_isa_test[1]_include.cmake")
include("/root/repo/build/tests/avr_codec_test[1]_include.cmake")
include("/root/repo/build/tests/avr_cpu_test[1]_include.cmake")
include("/root/repo/build/tests/avr_program_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/sequence_test[1]_include.cmake")
include("/root/repo/build/tests/avr_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/profiler_test[1]_include.cmake")

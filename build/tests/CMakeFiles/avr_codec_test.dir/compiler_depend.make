# Empty compiler generated dependencies file for avr_codec_test.
# This may be replaced when dependencies are built.

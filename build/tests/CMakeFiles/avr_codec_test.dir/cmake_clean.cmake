file(REMOVE_RECURSE
  "CMakeFiles/avr_codec_test.dir/avr_codec_test.cpp.o"
  "CMakeFiles/avr_codec_test.dir/avr_codec_test.cpp.o.d"
  "avr_codec_test"
  "avr_codec_test.pdb"
  "avr_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avr_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/linalg_decompositions_test.dir/linalg_decompositions_test.cpp.o"
  "CMakeFiles/linalg_decompositions_test.dir/linalg_decompositions_test.cpp.o.d"
  "linalg_decompositions_test"
  "linalg_decompositions_test.pdb"
  "linalg_decompositions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_decompositions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

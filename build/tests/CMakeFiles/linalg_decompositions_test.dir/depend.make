# Empty dependencies file for linalg_decompositions_test.
# This may be replaced when dependencies are built.

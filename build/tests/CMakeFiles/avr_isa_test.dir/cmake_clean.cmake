file(REMOVE_RECURSE
  "CMakeFiles/avr_isa_test.dir/avr_isa_test.cpp.o"
  "CMakeFiles/avr_isa_test.dir/avr_isa_test.cpp.o.d"
  "avr_isa_test"
  "avr_isa_test.pdb"
  "avr_isa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avr_isa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

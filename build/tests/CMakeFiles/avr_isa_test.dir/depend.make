# Empty dependencies file for avr_isa_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for dsp_test.
# This may be replaced when dependencies are built.

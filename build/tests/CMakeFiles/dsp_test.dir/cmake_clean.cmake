file(REMOVE_RECURSE
  "CMakeFiles/dsp_test.dir/dsp_test.cpp.o"
  "CMakeFiles/dsp_test.dir/dsp_test.cpp.o.d"
  "dsp_test"
  "dsp_test.pdb"
  "dsp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

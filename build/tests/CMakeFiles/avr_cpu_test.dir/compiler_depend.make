# Empty compiler generated dependencies file for avr_cpu_test.
# This may be replaced when dependencies are built.

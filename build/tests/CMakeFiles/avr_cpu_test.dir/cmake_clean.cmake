file(REMOVE_RECURSE
  "CMakeFiles/avr_cpu_test.dir/avr_cpu_test.cpp.o"
  "CMakeFiles/avr_cpu_test.dir/avr_cpu_test.cpp.o.d"
  "avr_cpu_test"
  "avr_cpu_test.pdb"
  "avr_cpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avr_cpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for avr_fuzz_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/avr_fuzz_test.dir/avr_fuzz_test.cpp.o"
  "CMakeFiles/avr_fuzz_test.dir/avr_fuzz_test.cpp.o.d"
  "avr_fuzz_test"
  "avr_fuzz_test.pdb"
  "avr_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avr_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

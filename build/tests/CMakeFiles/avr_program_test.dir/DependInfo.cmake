
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/avr_program_test.cpp" "tests/CMakeFiles/avr_program_test.dir/avr_program_test.cpp.o" "gcc" "tests/CMakeFiles/avr_program_test.dir/avr_program_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sidis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/sidis_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/sidis_features.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sidis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/avr/CMakeFiles/sidis_avr.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/sidis_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/sidis_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sidis_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/sidis_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for avr_program_test.
# This may be replaced when dependencies are built.

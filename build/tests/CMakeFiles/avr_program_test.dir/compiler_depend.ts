# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for avr_program_test.

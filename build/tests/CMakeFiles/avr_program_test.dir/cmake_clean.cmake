file(REMOVE_RECURSE
  "CMakeFiles/avr_program_test.dir/avr_program_test.cpp.o"
  "CMakeFiles/avr_program_test.dir/avr_program_test.cpp.o.d"
  "avr_program_test"
  "avr_program_test.pdb"
  "avr_program_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avr_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

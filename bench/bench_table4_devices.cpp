// Table 4: SR of ADC-vs-AND classification on 5 *different devices* of the
// same model, with covariate-shift adaptation, using templates trained on
// device 0.
//
// Paper: QDA 88.9-94.5%, SVM 90.4-95.6% across the five target devices.
// Device-to-device variation (process spread, gain, noise) is the same kind
// of shift as program/session variation and is handled by the same recipe.
#include "bench/common.hpp"

using namespace sidis;

int main() {
  bench::print_header("Table 4 -- SR across 5 unseen devices (ADC vs AND, with CSA)");
  std::mt19937_64 rng(static_cast<std::uint64_t>(bench::env_int("SIDIS_SEED", 4)));

  const sim::AcquisitionCampaign profiling(sim::DeviceModel::make(0),
                                           sim::SessionContext::make(0));
  const std::size_t adc = bench::class_id(avr::Mnemonic::kAdc);
  const std::size_t and_ = bench::class_id(avr::Mnemonic::kAnd);

  const std::size_t n_train = bench::traces_per_class(380);
  const std::size_t n_test = std::max<std::size_t>(n_train / 6, 30);
  std::printf("  train: device 0, %zu traces/class over 19 programs;"
              " test: %zu traces/class per device\n\n",
              n_train, n_test);

  const sim::TraceSet adc_train = profiling.capture_class(adc, n_train, 19, rng);
  const sim::TraceSet and_train = profiling.capture_class(and_, n_train, 19, rng);

  features::PipelineConfig cfg = core::csa_config();
  cfg.pca_components = 3;
  const auto pipeline =
      features::FeaturePipeline::fit({{0, 1}, {&adc_train, &and_train}}, cfg);
  const ml::Dataset train = pipeline.transform({{0, 1}, {&adc_train, &and_train}});

  ml::FactoryConfig fc;
  fc.svm.c = 10.0;
    auto qda = ml::make_classifier(ml::ClassifierKind::kQda, fc);
  auto svm = ml::make_classifier(ml::ClassifierKind::kSvmRbf, fc);
  qda->fit(train);
  svm->fit(train);

  const double paper_qda[5] = {89.3, 91.5, 88.9, 92.3, 94.5};
  const double paper_svm[5] = {90.4, 92.8, 90.8, 93.4, 95.6};

  std::printf("  %-8s | %-22s | %-22s\n", "device", "QDA", "SVM");
  double min_qda = 1.0, min_svm = 1.0;
  for (int dev = 1; dev <= 5; ++dev) {
    // Same measurement setup as profiling (Sec. 5.6 swaps chips on one
    // bench); the reference trace still comes from the profiling device, so
    // the device's own gain/offset mismatch survives subtraction.
    sim::AcquisitionCampaign field(sim::DeviceModel::make(dev),
                                   sim::SessionContext::make(0));
    field.use_reference(profiling.reference_window());
    sim::TraceSet adc_test, and_test;
    const sim::ProgramContext prog = sim::ProgramContext::make(100 + dev);
    for (std::size_t i = 0; i < n_test; ++i) {
      adc_test.push_back(field.capture_trace(avr::random_instance(adc, rng), prog, rng));
      and_test.push_back(field.capture_trace(avr::random_instance(and_, rng), prog, rng));
    }
    const ml::Dataset test = pipeline.transform({{0, 1}, {&adc_test, &and_test}});
    const double a = qda->accuracy(test);
    const double s = svm->accuracy(test);
    min_qda = std::min(min_qda, a);
    min_svm = std::min(min_svm, s);
    std::printf("  Dev. %d   | paper %5.1f%% meas %5.1f%% | paper %5.1f%% meas %5.1f%%\n",
                dev, paper_qda[dev - 1], 100.0 * a, paper_svm[dev - 1], 100.0 * s);
  }
  std::printf("\n  shape check: every device stays in the high-80s-to-90s band after\n"
              "  CSA (paper: 88.9%%..95.6%%); worst case meas QDA %.1f%% / SVM %.1f%%.\n",
              100.0 * min_qda, 100.0 * min_svm);
  return 0;
}

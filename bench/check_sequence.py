#!/usr/bin/env python3
"""Diff a bench_sequence run against the checked-in baseline.

Usage: check_sequence.py CANDIDATE.json [BASELINE.json]

Fails (exit 1) when an acceptance criterion flips or the decode stops paying
for itself.  The hard gates are build-flavor independent: sequence-decoded
accuracy must beat per-window argmax and block recovery must not fall below
it -- these hold on any build or the decoder is wrong, full stop.  Accuracy
and block-recovery levels are banded against the baseline with a small
absolute tolerance (the SIDIS_FAST stream is shorter, so per-window rates
quantize coarser).  Decode latency, a pure-CPU lattice cost, is checked as a
wide band because the coverage job runs -O1 + gcov.  Stdlib only, so the CI
job needs nothing beyond python3.
"""
import json
import sys
from pathlib import Path

# Candidate accuracy / block recovery may sit this far below baseline before
# it counts as a regression (short SIDIS_FAST streams quantize coarsely).
LEVEL_TOLERANCE = 0.05
# Decoded-minus-argmax lift must retain this fraction of the baseline lift.
LIFT_FRACTION = 0.3
# Latency band: candidate ns/window may be this many times the baseline
# (instrumented -O1 vs Release; the lattice is scalar code either way).
LATENCY_FACTOR = 20.0


def lookup(doc, section, key):
    node = doc if section is None else doc.get(section, {})
    return node.get(key)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    candidate = json.loads(Path(argv[1]).read_text())
    baseline_path = argv[2] if len(argv) > 2 else str(
        Path(__file__).parent / "BENCH_sequence.json")
    baseline = json.loads(Path(baseline_path).read_text())

    failures = []
    rows = []

    # Hard gates: the decode must beat argmax wherever it runs, and the
    # baseline must have been pinned from a run where it did.
    for doc, who in ((baseline, "baseline"), (candidate, "candidate")):
        for crit in ("criterion_decoded_above_argmax", "criterion_blocks_recovered"):
            got = lookup(doc, "primary", crit)
            if who == "candidate":
                rows.append((crit, lookup(baseline, "primary", crit), got))
            if got is not True:
                failures.append(f"{who} {crit} is {got}")

    # Banded levels: argmax context plus decoded accuracy / block recovery.
    for section, key in (("argmax", "accuracy"), ("argmax", "block_recovery"),
                         ("primary", "accuracy"), ("primary", "block_recovery")):
        name = f"{section}_{key}"
        base, got = lookup(baseline, section, key), lookup(candidate, section, key)
        rows.append((name, base, got))
        if base is None or got is None:
            failures.append(f"metric '{name}' missing (baseline={base}, candidate={got})")
        elif section == "primary" and got < base - LEVEL_TOLERANCE:
            failures.append(f"'{name}' regressed: {base} -> {got} "
                            f"(tolerance {LEVEL_TOLERANCE})")

    # The lift itself: decoded - argmax accuracy, as a fraction of baseline.
    base_lift = (lookup(baseline, "primary", "accuracy") or 0) - \
                (lookup(baseline, "argmax", "accuracy") or 0)
    got_lift = (lookup(candidate, "primary", "accuracy") or 0) - \
               (lookup(candidate, "argmax", "accuracy") or 0)
    rows.append(("accuracy_lift", base_lift, got_lift))
    if got_lift < base_lift * LIFT_FRACTION:
        failures.append(f"decode lift collapsed: {base_lift:.4f} -> {got_lift:.4f} "
                        f"(needs >= {base_lift * LIFT_FRACTION:.4f})")

    # Latency band.
    base_ns = lookup(baseline, "primary", "decode_ns_per_window")
    got_ns = lookup(candidate, "primary", "decode_ns_per_window")
    rows.append(("decode_ns_per_window", base_ns, got_ns))
    if base_ns is None or got_ns is None or got_ns > base_ns * LATENCY_FACTOR:
        failures.append(
            f"decode latency blew up: {base_ns} -> {got_ns} ns/window "
            f"(band {0 if base_ns is None else base_ns * LATENCY_FACTOR:.0f})")

    width = max(len(r[0]) for r in rows)
    print(f"{'metric'.ljust(width)}  baseline  candidate")
    for key, base, got in rows:
        fmt = lambda v: f"{v:.4f}" if isinstance(v, float) else str(v)
        print(f"{key.ljust(width)}  {fmt(base):>8}  {fmt(got):>9}")

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nOK: sequence-decoding metrics within tolerance of the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

// Fig. 3: best vs worst feature selection under covariate shift.
//
// The paper plots AND traces from two different programs in the feature
// space of (a) the 3 *lowest* between-class KL peaks -- one fused cluster --
// and (b) the 3 *highest* peaks -- two separate clusters, i.e. the features
// that discriminate classes best are also the most program-sensitive.
//
// We reproduce the effect quantitatively with a cluster-separation score:
//     d = ||mean(prog A) - mean(prog B)|| / (spread(prog A) + spread(prog B))
// d >> 1 means the two programs form separate clusters (the failure mode);
// d << 1 means they fuse (the desirable case).
#include "bench/common.hpp"

#include <cmath>

#include "features/selection.hpp"

using namespace sidis;

namespace {

double separation_score(const std::vector<linalg::Vector>& a,
                        const std::vector<linalg::Vector>& b) {
  const auto mean_of = [](const std::vector<linalg::Vector>& v) {
    linalg::Vector m(v.front().size(), 0.0);
    for (const auto& x : v) m = linalg::add(m, x);
    return linalg::scale(m, 1.0 / static_cast<double>(v.size()));
  };
  const auto spread_of = [](const std::vector<linalg::Vector>& v, const linalg::Vector& m) {
    double acc = 0.0;
    for (const auto& x : v) acc += linalg::squared_distance(x, m);
    return std::sqrt(acc / static_cast<double>(v.size()));
  };
  const linalg::Vector ma = mean_of(a);
  const linalg::Vector mb = mean_of(b);
  const double denom = spread_of(a, ma) + spread_of(b, mb);
  return std::sqrt(linalg::squared_distance(ma, mb)) / std::max(denom, 1e-12);
}

}  // namespace

int main() {
  bench::print_header("Fig. 3 -- best vs worst KL feature selection under program shift");
  std::mt19937_64 rng(static_cast<std::uint64_t>(bench::env_int("SIDIS_SEED", 3)));

  const auto device = sim::DeviceModel::make(0);
  const sim::AcquisitionCampaign profiling(device, sim::SessionContext::make(0));
  // The second program is captured in a later session whose probe chain
  // gained ~30% (the same mismatch the Table-3 bench uses).  A gain shift
  // moves every coefficient in proportion to its own magnitude -- and the
  // highest between-class KL peaks sit at the highest-amplitude points, so
  // they shift the most.  That is the paper's Fig.-3 observation.
  sim::SessionContext later = sim::SessionContext::make(0);
  later.id = 2;
  later.gain = 1.30;
  const sim::AcquisitionCampaign other(device, later);

  const std::size_t and_cls = bench::class_id(avr::Mnemonic::kAnd);
  const std::size_t adc_cls = bench::class_id(avr::Mnemonic::kAdc);
  const std::size_t n = bench::traces_per_class(200);

  // AND traces from two measurement contexts.
  sim::TraceSet and_a, and_b;
  const sim::ProgramContext prog_a = sim::ProgramContext::make(0);
  const sim::ProgramContext prog_b = sim::ProgramContext::make(57);
  for (std::size_t i = 0; i < n; ++i) {
    and_a.push_back(profiling.capture_trace(avr::random_instance(and_cls, rng), prog_a, rng));
    and_b.push_back(other.capture_trace(avr::random_instance(and_cls, rng), prog_b, rng));
  }
  // ADC profiling traces to build the between-class KL map against.
  const sim::TraceSet adc = profiling.capture_class(adc_cls, n, 10, rng);

  const dsp::Cwt cwt{dsp::CwtConfig{}};
  const auto m_and = features::compute_class_moments(cwt, and_a);
  const auto m_adc = features::compute_class_moments(cwt, adc);
  const linalg::Matrix between = features::between_class_kl_map(m_adc, m_and);
  const auto peaks = stats::local_maxima_2d(between);

  const auto project = [&](const sim::TraceSet& traces,
                           const std::vector<stats::GridPoint>& pts) {
    std::vector<linalg::Vector> out;
    out.reserve(traces.size());
    for (const sim::Trace& t : traces) {
      out.push_back(features::extract_features(cwt, t.samples, pts));
    }
    return out;
  };

  const auto low3 = stats::bottom_k(peaks, 3);
  const auto high3 = stats::top_k(peaks, 3);
  const double d_low = separation_score(project(and_a, low3), project(and_b, low3));
  const double d_high = separation_score(project(and_a, high3), project(and_b, high3));

  std::printf("  cluster-separation score of the two AND programs\n");
  std::printf("    3 lowest KL peaks  (paper: one fused cluster)    d = %6.3f\n", d_low);
  std::printf("    3 highest KL peaks (paper: two separate clusters) d = %6.3f\n", d_high);
  std::printf("  shape check: d(high) / d(low) = %.1fx -- the most discriminative\n"
              "  features are the most program-sensitive, motivating CSA.\n",
              d_high / std::max(d_low, 1e-12));

  // Ablation the DESIGN.md calls out: the same comparison on raw time-domain
  // samples (no CWT), where the DC shift hits every feature.
  std::vector<stats::GridPoint> time_pts;
  for (std::size_t k = 100; k < 103; ++k) time_pts.push_back({0, k, 0.0});
  const auto raw = [&](const sim::TraceSet& ts) {
    std::vector<linalg::Vector> out;
    for (const sim::Trace& t : ts) {
      out.push_back({t.samples[100], t.samples[150], t.samples[200]});
    }
    return out;
  };
  std::printf("  ablation -- raw time-domain samples: d = %.3f\n",
              separation_score(raw(and_a), raw(and_b)));
  return 0;
}

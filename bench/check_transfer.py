#!/usr/bin/env python3
"""Diff a bench_table4_transfer run against the checked-in baseline.

Usage: check_transfer.py CANDIDATE.json [BASELINE.json]

Fails (exit 1) when any acceptance criterion flips to false or a key metric
regresses by more than two accuracy points against the baseline.  Improvements
are reported but never fail the check; re-pin the baseline to lock them in.
Stdlib only, so the CI job needs nothing beyond python3.
"""
import json
import sys
from pathlib import Path

# Accuracy-point tolerance: 0.02 = 2 points.  Fast-mode runs use 24 traces
# per class and 5 classes per cell, so the summary means aggregate 3600
# classifications -- two points is far above their reseeded jitter (zero in
# CI, where the run is bit-deterministic) but far below a real regression.
TOLERANCE = 0.02

CRITERIA = [
    ("summary", "criterion_cross_device_drop"),
    ("summary", "criterion_csa_recovery"),
    (None, "criterion_curve_monotone"),
    (None, "criterion_zero_shot_lift"),
]

METRICS = [
    ("summary", "diag_csa", "higher"),
    ("summary", "offdiag_csa", "higher"),
    ("summary", "diag_without_csa", "higher"),
    ("summary", "cross_device_drop_without_csa", "lower-is-worse"),
    ("summary", "csa_gap_recovered_fraction", "higher"),
]


def lookup(doc, section, key):
    node = doc if section is None else doc.get(section, {})
    return node.get(key)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    candidate = json.loads(Path(argv[1]).read_text())
    baseline_path = argv[2] if len(argv) > 2 else str(Path(__file__).parent / "BENCH_transfer.json")
    baseline = json.loads(Path(baseline_path).read_text())

    failures = []
    rows = []

    for section, key in CRITERIA:
        got = lookup(candidate, section, key)
        rows.append((key, lookup(baseline, section, key), got, "criterion"))
        if got is not True:
            failures.append(f"acceptance criterion '{key}' is {got}, expected true")

    for section, key, sense in METRICS:
        base = lookup(baseline, section, key)
        got = lookup(candidate, section, key)
        rows.append((key, base, got, sense))
        if base is None or got is None:
            failures.append(f"metric '{key}' missing (baseline={base}, candidate={got})")
            continue
        # cross_device_drop measures how hard transfer *without* CSA fails;
        # shrinking it means the variation model stopped biting.
        delta = got - base if sense == "higher" else base - got
        if delta < -TOLERANCE:
            failures.append(f"'{key}' regressed: {base:.4f} -> {got:.4f}")

    base_curve = {p["budget_per_class"]: p for p in baseline.get("budget_curve", [])}
    for point in candidate.get("budget_curve", []):
        k = point["budget_per_class"]
        ref = base_curve.get(k)
        if ref is None:
            continue
        for arm in ("renorm_accuracy", "refit_accuracy"):
            rows.append((f"K={k} {arm}", ref[arm], point[arm], "higher"))
            if point[arm] < ref[arm] - TOLERANCE:
                failures.append(
                    f"budget curve K={k} {arm} regressed: {ref[arm]:.4f} -> {point[arm]:.4f}")

    # Fleet-pooled zero-shot: re-derive the lift gate from the raw singles so
    # a bench that mis-computes its own criterion flag still fails.
    md = candidate.get("multi_device", {})
    base_md = baseline.get("multi_device", {})
    singles = [s["accuracy"] for s in md.get("singles", [])]
    if not singles:
        failures.append("multi_device section missing or has no single baselines")
    else:
        pooled = md.get("pooled_accuracy", 0.0)
        if pooled <= max(singles):
            failures.append(
                f"pooled zero-shot model does not strictly beat the best "
                f"single-device baseline: {pooled:.4f} vs {max(singles):.4f}")
    for key in ("pooled_accuracy", "best_single_accuracy", "pooled_lift"):
        base, got = base_md.get(key), md.get(key)
        rows.append((key, base, got, "higher"))
        if base is not None and got is not None and got < base - TOLERANCE:
            failures.append(f"'{key}' regressed: {base:.4f} -> {got:.4f}")

    swap = candidate.get("hot_swap", {})
    if swap.get("model_swaps", 0) < 1:
        failures.append("hot-swap demo performed no model swap")
    if swap.get("accuracy_after", 0.0) < swap.get("accuracy_before", 0.0) - TOLERANCE:
        failures.append(
            f"hot-swapped model lost accuracy: {swap.get('accuracy_before')} -> "
            f"{swap.get('accuracy_after')}")

    width = max(len(r[0]) for r in rows)
    print(f"{'metric'.ljust(width)}  baseline  candidate")
    for key, base, got, _ in rows:
        fmt = lambda v: f"{v:.4f}" if isinstance(v, float) else str(v)
        print(f"{key.ljust(width)}  {fmt(base):>8}  {fmt(got):>9}")

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s) beyond {TOLERANCE:.2f}:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nOK: transfer metrics within tolerance of the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Diff a bench_fleet run against the checked-in baseline.

Usage: check_fleet.py CANDIDATE.json [BASELINE.json]

Fails (exit 1) when an acceptance criterion flips to false, the fleet's
throughput advantage over the engine-per-device deployment collapses, or the
admission-control ledger stops closing.  Timing on shared CI machines is
noisy, so throughput bands are deliberately wide (the criteria booleans,
which the bench computes from its own run, carry the real signal);
improvements never fail the check -- re-pin the baseline to lock them in.
Stdlib only, so the CI job needs nothing beyond python3.
"""
import json
import sys
from pathlib import Path

# The fleet must beat the dedicated-engine deployment by a real margin, but
# CI boxes share cores: accept anything above 60% of the baseline's measured
# speedup (e.g. baseline 1.6x -> candidate must exceed ~0.96x... clamped to
# >= 1.0 because "faster at all" is the acceptance floor from the issue).
SPEEDUP_FRACTION = 0.6
# Aggregate throughput varies with machine load AND build flavor (the CI
# coverage job runs this under -O1 + gcov instrumentation against a Release
# baseline); a 10x collapse is a real regression, anything inside that band
# is noise or instrumentation.
THROUGHPUT_FRACTION = 0.1
# Coalescing is scheduling, not timing: under a saturating driver the
# dispatcher should keep batches near batch_max regardless of machine speed.
COALESCING_FRACTION = 0.5

CRITERIA = [
    ("fleet", "criterion_delivery_accounting"),
    ("comparison", "criterion_fleet_faster_than_independent"),
    ("shedding", "criterion_shed_bounded_credit"),
]


def lookup(doc, section, key):
    node = doc if section is None else doc.get(section, {})
    return node.get(key)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    candidate = json.loads(Path(argv[1]).read_text())
    baseline_path = argv[2] if len(argv) > 2 else str(Path(__file__).parent / "BENCH_fleet.json")
    baseline = json.loads(Path(baseline_path).read_text())

    failures = []
    rows = []

    for section, key in CRITERIA:
        got = lookup(candidate, section, key)
        rows.append((key, lookup(baseline, section, key), got))
        if got is not True:
            failures.append(f"acceptance criterion '{key}' is {got}, expected true")

    # Banded throughput metrics: candidate vs a fraction of the baseline.
    banded = [
        ("comparison", "speedup_vs_dedicated", SPEEDUP_FRACTION, 1.0),
        ("fleet", "windows_per_sec", THROUGHPUT_FRACTION, 0.0),
        ("fleet", "coalescing", COALESCING_FRACTION, 1.0),
    ]
    for section, key, fraction, floor in banded:
        base = lookup(baseline, section, key)
        got = lookup(candidate, section, key)
        rows.append((key, base, got))
        if base is None or got is None:
            failures.append(f"metric '{key}' missing (baseline={base}, candidate={got})")
            continue
        need = max(base * fraction, floor)
        if got < need:
            failures.append(
                f"'{key}' collapsed: {base} -> {got} (needs >= {need:.2f})")

    # Structural invariants, independent of the baseline.
    cfg = candidate.get("config", {})
    fleet = candidate.get("fleet", {})
    if cfg.get("streams", 0) * cfg.get("windows_per_stream", 0) != fleet.get("delivered"):
        failures.append(
            f"delivery ledger open: {cfg.get('streams')} x "
            f"{cfg.get('windows_per_stream')} submitted, {fleet.get('delivered')} delivered")
    shedding = candidate.get("shedding", {})
    for policy in ("shed_oldest", "reject_new"):
        row = shedding.get(policy, {})
        if row.get("admitted", 0) != row.get("delivered", 0) + row.get("shed", 0):
            failures.append(
                f"{policy} ledger open: admitted {row.get('admitted')} != "
                f"delivered {row.get('delivered')} + shed {row.get('shed')}")
        if row.get("max_outstanding", 0) > shedding.get("stream_credit", 0):
            failures.append(
                f"{policy} exceeded stream credit: outstanding "
                f"{row.get('max_outstanding')} > {shedding.get('stream_credit')}")
    if shedding.get("reject_new", {}).get("shed", 0) != 0:
        failures.append("reject-new policy shed windows; it must only refuse")
    if candidate.get("fleet", {}).get("p99_us", 0) <= 0:
        failures.append("p99 latency missing or zero -- histogram not recording")

    width = max(len(r[0]) for r in rows)
    print(f"{'metric'.ljust(width)}  baseline  candidate")
    for key, base, got in rows:
        fmt = lambda v: f"{v:.2f}" if isinstance(v, float) else str(v)
        print(f"{key.ljust(width)}  {fmt(base):>8}  {fmt(got):>9}")

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nOK: fleet serving metrics within tolerance of the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

// Multimodal power+EM fusion bench: the headline experiment for the
// hierarchical fusion layer.
//
// One paired acquisition campaign profiles every instruction class over both
// channels (supply-current shunt + simulated EM probe), trains one
// single-channel hierarchy per modality, fits the joint feature heads, and
// lets held-out calibration pick the per-level fusion operating point.  The
// bench then measures what the ISSUE gates on:
//
//   * clean-task accuracy of power-only, EM-only and fused disassembly on
//     unseen paired windows over the 112-class task -- the fused point must
//     not fall below the better single channel (calibration may *select*
//     one channel, in which case equality holds);
//   * a compound-degradation sweep -- power gain aging plus EM probe
//     misalignment creep, growing together with severity -- where graceful
//     degradation requires the fused curve to stay at or above the
//     power-only curve at EVERY severity while flagging the windows it had
//     to degrade.
//
// SIDIS_FAST=1 shrinks the task to two classes per group (16 classes) and a
// three-point sweep; results go to BENCH_fusion.json (override with
// SIDIS_BENCH_OUT), gated in CI by check_fusion.py like the other benches.
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/fusion.hpp"
#include "core/hierarchical.hpp"

namespace sidis::bench {
namespace {

constexpr std::uint64_t kSeed = 0xf05edbe9c;

struct DegradationPoint {
  double severity = 0.0;       ///< abstract compound-fault severity
  double aging_gain = 0.0;     ///< power-channel aging gain drift applied
  double misalignment = 0.0;   ///< EM probe misalignment reached at progress 1
  double power_accuracy = 0.0;
  double fused_accuracy = 0.0;
  double degraded_fraction = 0.0;  ///< fused verdicts not kOk
};

struct FusionBenchRun {
  std::size_t classes = 0;
  std::size_t train_per_class = 0;
  std::size_t eval_per_class = 0;
  double power_accuracy = 0.0;
  double em_accuracy = 0.0;
  double fused_accuracy = 0.0;
  double heldout_accuracy = 0.0;  ///< calibrate_fusion's selection score
  core::LevelFusion group_fusion;
  core::LevelFusion instruction_fusion;
  std::vector<DegradationPoint> degradation;
};

std::vector<std::size_t> bench_classes() {
  std::vector<std::size_t> classes;
  for (int g = 1; g <= 8; ++g) {
    const auto cls = avr::classes_in_group(g);
    if (fast_mode()) {
      // Smoke scale: the first and last class of every group keeps all
      // eight groups (and the group-level fusion head) exercised.
      classes.push_back(cls.front());
      classes.push_back(cls.back());
    } else {
      classes.insert(classes.end(), cls.begin(), cls.end());
    }
  }
  return classes;
}

sim::AcquisitionOptions paired_options(double misalignment_drift = 0.0) {
  sim::AcquisitionOptions opts;
  opts.em.enabled = true;
  // A realistic near-field probe is appreciably noisier and narrower-band
  // than the shunt channel, and its per-opcode coupling spread is modest --
  // the EmProbeConfig defaults lean cleaner and wider so the unit tests
  // stay cheap, but a wide coupling spread acts as a per-class amplitude
  // label that makes the probe channel implausibly dominant.  Hardening the
  // probe makes each channel commit its own errors, so held-out calibration
  // has a real mix to find and the fused point has single-channel mistakes
  // to correct.
  opts.em.noise_sigma = 0.05;
  opts.em.bandwidth_fraction = 0.08;
  opts.em.coupling_lo = 0.85;
  opts.em.coupling_hi = 1.15;
  opts.em.misalignment_drift = misalignment_drift;
  return opts;
}

FusionBenchRun run_scenario(const std::vector<std::size_t>& classes,
                            std::size_t per_class, std::size_t heldout_per_class,
                            std::size_t eval_per_class,
                            const std::vector<double>& severities) {
  FusionBenchRun run;
  run.classes = classes.size();
  run.train_per_class = per_class;
  run.eval_per_class = eval_per_class;

  // -- paired profiling + per-channel training -------------------------------
  const sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                          sim::SessionContext::make(0),
                                          sim::LeakageConfig{}, sim::ScopeConfig{},
                                          paired_options()};
  std::mt19937_64 rng{kSeed};
  core::ProfilingData power_data, em_data;
  std::map<std::size_t, sim::TraceSet> paired;
  std::printf("  profiling %zu classes x %zu paired traces...\n", classes.size(),
              per_class);
  std::size_t done = 0;
  for (std::size_t cls : classes) {
    paired[cls] = campaign.capture_class(cls, per_class, 3, rng);
    power_data.classes[cls] = sim::channel_views(paired[cls], sim::Channel::kPower);
    em_data.classes[cls] = sim::channel_views(paired[cls], sim::Channel::kEm);
    if (++done % 25 == 0 || done == classes.size()) {
      std::printf("    %zu / %zu classes\n", done, classes.size());
      std::fflush(stdout);
    }
  }
  core::HierarchicalConfig cfg;
  cfg.pipeline = core::csa_config();
  cfg.factory.discriminant.shrinkage = 0.15;
  std::printf("  training the power-channel hierarchy...\n");
  auto p = core::HierarchicalDisassembler::train(power_data, cfg);
  std::printf("  training the EM-channel hierarchy...\n");
  auto e = core::HierarchicalDisassembler::train(em_data, cfg);

  // Held-out paired windows from programs the channels never trained on
  // (but disjoint from the evaluation programs), so every calibration below
  // sees deployment covariates rather than a saturated in-corpus replay.
  sim::TraceSet heldout;
  core::ProfilingData heldout_power, heldout_em;
  for (std::size_t cls : classes) {
    const sim::TraceSet h = campaign.capture_class(cls, heldout_per_class, 3, rng,
                                                   /*first_program=*/40);
    heldout_power.classes[cls] = sim::channel_views(h, sim::Channel::kPower);
    heldout_em.classes[cls] = sim::channel_views(h, sim::Channel::kEm);
    heldout.insert(heldout.end(), h.begin(), h.end());
  }
  // Monitoring-grade reject gates, calibrated on the HELD-OUT margins.
  // Training-set margins are optimistic: at 112-class scale the per-level
  // posterior gaps are thin enough that thresholds set on in-corpus windows
  // sit inside the margin shift induced by unseen programs, and the gates
  // then silently reject almost every clean field window (worst-verdict
  // folding collapses the fused point onto the power channel).  Calibrating
  // the false-reject budget where it is spent -- on out-of-corpus margins --
  // keeps clean windows flowing while genuinely broken ones still trip the
  // fallback.
  p.calibrate_reject(heldout_power);
  e.calibrate_reject(heldout_em);
  const auto power =
      std::make_shared<const core::HierarchicalDisassembler>(std::move(p));
  const auto em = std::make_shared<const core::HierarchicalDisassembler>(std::move(e));

  // -- fusion: joint heads + held-out operating-point selection --------------
  core::FusedDisassembler fused(power, em);
  std::printf("  fitting joint feature heads...\n");
  fused.train_feature_heads(paired);
  // Deployment policy: keep BOTH channels in the mix.  The clean held-out
  // set would happily select a single-channel corner (the probe is the
  // stronger channel on an aligned bench), but a monitor that throws one
  // modality away has no redundancy left when that modality drifts -- the
  // whole point of paying for a second probe.  The degenerate corners stay
  // covered by the bit-identity tests in fusion_test.
  core::FusionCalibration cal;
  cal.weight_grid = {0.75, 0.5, 0.25};
  run.heldout_accuracy = fused.calibrate_fusion(heldout, cal);
  run.group_fusion = fused.group_fusion();
  run.instruction_fusion = fused.instruction_fusion();

  // -- clean evaluation on unseen programs -----------------------------------
  std::size_t windows = 0, p_hits = 0, e_hits = 0, f_hits = 0;
  for (std::size_t cls : classes) {
    const sim::TraceSet eval =
        campaign.capture_class(cls, eval_per_class, 3, rng, /*first_program=*/50);
    for (const sim::Trace& t : eval) {
      ++windows;
      if (power->classify(sim::channel_view(t, sim::Channel::kPower)).class_idx == cls)
        ++p_hits;
      if (em->classify(sim::channel_view(t, sim::Channel::kEm)).class_idx == cls)
        ++e_hits;
      if (fused.classify(t).class_idx == cls) ++f_hits;
    }
  }
  const double n = static_cast<double>(windows);
  run.power_accuracy = static_cast<double>(p_hits) / n;
  run.em_accuracy = static_cast<double>(e_hits) / n;
  run.fused_accuracy = static_cast<double>(f_hits) / n;

  // -- compound-degradation sweep --------------------------------------------
  // Severity s drives both faults at once: the power channel ages (gain
  // multiplier 1 + 0.3 s reached at campaign progress 1) while the EM probe
  // creeps off its profiling position (misalignment 0.25 s at progress 1).
  // The profile is aging-dominant: electrical aging moves the shunt's
  // class-conditional templates faster than mechanical creep defocuses the
  // probe, which is the deployment regime where a second modality pays --
  // the fused curve must hold at or above power-only the whole way down.
  // The references stay clean -- the monitor keeps classifying field windows
  // against profiling-time templates, the Sec.-4 covariate-shift scenario.
  const std::size_t sweep_per_class = std::max<std::size_t>(3, eval_per_class / 2);
  std::printf("  degradation sweep (%zu severities x %zu classes x %zu windows)...\n",
              severities.size(), classes.size(), sweep_per_class);
  for (double s : severities) {
    DegradationPoint point;
    point.severity = s;
    point.aging_gain = 0.3 * s;
    point.misalignment = 0.25 * s;
    sim::DeviceModel device = sim::DeviceModel::make(0);
    device.aging_gain_drift = point.aging_gain;
    const sim::AcquisitionCampaign degraded{device, sim::SessionContext::make(0),
                                            sim::LeakageConfig{}, sim::ScopeConfig{},
                                            paired_options(point.misalignment)};
    std::mt19937_64 sweep_rng{kSeed + 17};
    std::size_t total = 0, power_hits = 0, fused_hits = 0, flagged = 0;
    for (std::size_t cls : classes) {
      for (std::size_t i = 0; i < sweep_per_class; ++i) {
        const sim::Trace t = degraded.capture_trace(
            avr::random_instance(cls, sweep_rng),
            sim::ProgramContext::make(50 + static_cast<int>(i) % 3), sweep_rng,
            /*campaign_progress=*/1.0);
        ++total;
        if (power->classify(sim::channel_view(t, sim::Channel::kPower)).class_idx ==
            cls) {
          ++power_hits;
        }
        const core::Disassembly d = fused.classify(t);
        if (d.class_idx == cls) ++fused_hits;
        if (d.verdict != core::Verdict::kOk) ++flagged;
      }
    }
    point.power_accuracy =
        static_cast<double>(power_hits) / static_cast<double>(total);
    point.fused_accuracy =
        static_cast<double>(fused_hits) / static_cast<double>(total);
    point.degraded_fraction =
        static_cast<double>(flagged) / static_cast<double>(total);
    run.degradation.push_back(point);
    std::printf("    severity %.2f: power %.1f%%  fused %.1f%%  flagged %.1f%%\n",
                s, 100.0 * point.power_accuracy, 100.0 * point.fused_accuracy,
                100.0 * point.degraded_fraction);
    std::fflush(stdout);
  }
  return run;
}

bool fusion_beats_singles(const FusionBenchRun& r) {
  return r.fused_accuracy >=
         std::max(r.power_accuracy, r.em_accuracy) - 1e-12;
}

bool degradation_holds(const FusionBenchRun& r) {
  for (const DegradationPoint& p : r.degradation) {
    if (p.fused_accuracy < p.power_accuracy - 1e-12) return false;
  }
  return !r.degradation.empty();
}

void write_json(const FusionBenchRun& r, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"fusion\",\n");
  std::fprintf(f,
               "  \"config\": {\"classes\": %zu, \"train_per_class\": %zu, "
               "\"eval_per_class\": %zu},\n",
               r.classes, r.train_per_class, r.eval_per_class);
  std::fprintf(f,
               "  \"selected\": {\"group_mode\": \"%s\", \"group_power_weight\": "
               "%.2f, \"instruction_mode\": \"%s\", "
               "\"instruction_power_weight\": %.2f},\n",
               core::to_string(r.group_fusion.mode).c_str(),
               r.group_fusion.power_weight,
               core::to_string(r.instruction_fusion.mode).c_str(),
               r.instruction_fusion.power_weight);
  std::fprintf(f,
               "  \"clean\": {\"power\": %.4f, \"em\": %.4f, \"fused\": %.4f, "
               "\"heldout\": %.4f},\n",
               r.power_accuracy, r.em_accuracy, r.fused_accuracy,
               r.heldout_accuracy);
  std::fprintf(f, "  \"degradation\": [\n");
  for (std::size_t i = 0; i < r.degradation.size(); ++i) {
    const DegradationPoint& p = r.degradation[i];
    std::fprintf(f,
                 "    {\"severity\": %.2f, \"aging_gain\": %.2f, "
                 "\"misalignment\": %.2f, \"power\": %.4f, \"fused\": %.4f, "
                 "\"degraded_fraction\": %.4f}%s\n",
                 p.severity, p.aging_gain, p.misalignment, p.power_accuracy,
                 p.fused_accuracy, p.degraded_fraction,
                 i + 1 < r.degradation.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"criterion_fusion_beats_singles\": %s,\n"
               "  \"criterion_degradation_holds\": %s\n}\n",
               fusion_beats_singles(r) ? "true" : "false",
               degradation_holds(r) ? "true" : "false");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace
}  // namespace sidis::bench

int main() {
  using namespace sidis;
  using namespace sidis::bench;

  print_header("Multimodal power+EM fusion -- clean accuracy and degradation");

  const std::vector<std::size_t> classes = bench_classes();
  const std::size_t per_class = traces_per_class(60);
  const std::size_t heldout_per_class =
      static_cast<std::size_t>(env_int("SIDIS_HELDOUT_PER_CLASS", fast_mode() ? 6 : 8));
  const std::size_t eval_per_class =
      static_cast<std::size_t>(env_int("SIDIS_EVAL_PER_CLASS", fast_mode() ? 5 : 10));
  const std::vector<double> severities =
      fast_mode() ? std::vector<double>{0.0, 1.0, 2.0}
                  : std::vector<double>{0.0, 0.5, 1.0, 1.5, 2.0};

  const FusionBenchRun run =
      run_scenario(classes, per_class, heldout_per_class, eval_per_class, severities);

  std::printf("\n  clean task (%zu classes, %zu unseen windows/class):\n",
              run.classes, run.eval_per_class);
  bench::print_row("power only", 99.53, 100.0 * run.power_accuracy);
  bench::print_row("EM only", 99.53, 100.0 * run.em_accuracy);
  bench::print_row("fused", 99.53, 100.0 * run.fused_accuracy);
  std::printf("  selected: group %s (w_p %.2f), instruction %s (w_p %.2f), "
              "held-out %.1f%%\n",
              core::to_string(run.group_fusion.mode).c_str(),
              run.group_fusion.power_weight,
              core::to_string(run.instruction_fusion.mode).c_str(),
              run.instruction_fusion.power_weight, 100.0 * run.heldout_accuracy);

  std::printf("\n  %-9s %10s %10s %10s\n", "severity", "power", "fused", "flagged");
  for (const auto& p : run.degradation) {
    std::printf("  %-9.2f %9.1f%% %9.1f%% %9.1f%%\n", p.severity,
                100.0 * p.power_accuracy, 100.0 * p.fused_accuracy,
                100.0 * p.degraded_fraction);
  }
  std::printf("\n  criteria: fused >= best single channel: %s; fused >= power-only "
              "at every severity: %s\n",
              fusion_beats_singles(run) ? "PASS" : "FAIL",
              degradation_holds(run) ? "PASS" : "FAIL");

  const char* out = std::getenv("SIDIS_BENCH_OUT");
  write_json(run, out != nullptr && *out != '\0' ? out : "BENCH_fusion.json");
  return 0;
}

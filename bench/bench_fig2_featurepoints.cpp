// Fig. 2: KL-divergence feature-point extraction for ADC vs AND in the
// time-frequency domain -- the paper's worked example of Definition 3.1.
//
// Reproduces, numerically, each panel of the figure:
//   (a)/(c) not-varying point masks of ADC and AND (within-class KL < 0.005
//           across 10 program files);
//   (b)     local maxima of the between-class KL map;
//   (d)     the 5 highest distinct & not-varying points (DNVP^(5)).
// Also reports the paper's headline reduction statistic: unified points for
// the full group 1 vs the 15750-point grid (paper: 205 points, 98.7%).
#include "bench/common.hpp"

#include "core/csa.hpp"
#include "features/pipeline.hpp"
#include "features/selection.hpp"

using namespace sidis;

int main() {
  bench::print_header("Fig. 2 -- KL feature extraction in the time-frequency domain");
  std::mt19937_64 rng(static_cast<std::uint64_t>(bench::env_int("SIDIS_SEED", 2)));

  const sim::AcquisitionCampaign campaign(sim::DeviceModel::make(0),
                                          sim::SessionContext::make(0));
  const std::size_t n = bench::traces_per_class(250);
  const sim::TraceSet adc =
      campaign.capture_class(bench::class_id(avr::Mnemonic::kAdc), n, 10, rng);
  const sim::TraceSet and_ =
      campaign.capture_class(bench::class_id(avr::Mnemonic::kAnd), n, 10, rng);

  const dsp::Cwt cwt{dsp::CwtConfig{}};
  const auto m_adc = features::compute_class_moments(cwt, adc);
  const auto m_and = features::compute_class_moments(cwt, and_);

  const linalg::Matrix w_adc = features::within_class_kl_map(m_adc);
  const linalg::Matrix w_and = features::within_class_kl_map(m_and);
  const double kl_th = 0.005;
  const auto mask_adc = features::nvp_mask(w_adc, kl_th);
  const auto mask_and = features::nvp_mask(w_and, kl_th);
  const auto count = [](const std::vector<std::uint8_t>& m) {
    std::size_t c = 0;
    for (std::uint8_t v : m) c += v;
    return c;
  };
  const std::size_t grid = w_adc.data().size();
  std::printf("  grid: %zu scales x %zu samples = %zu points (paper: 50 x 315 = 15750)\n",
              w_adc.rows(), w_adc.cols(), grid);
  std::printf("  (a) ADC not-varying points (KL_th=%.3f): %zu of %zu (%.1f%%)\n", kl_th,
              count(mask_adc), grid, 100.0 * count(mask_adc) / static_cast<double>(grid));
  std::printf("  (c) AND not-varying points (KL_th=%.3f): %zu of %zu (%.1f%%)\n", kl_th,
              count(mask_and), grid, 100.0 * count(mask_and) / static_cast<double>(grid));

  const linalg::Matrix between = features::between_class_kl_map(m_adc, m_and);
  const auto peaks = stats::local_maxima_2d(between);
  std::printf("  (b) local maxima of D_KL^B(ADC||AND): %zu peaks, max KL = %.3f\n",
              peaks.size(), stats::top_k(peaks, 1).front().value);

  const auto dnvp5 = features::dnvp(between, mask_adc, mask_and, 5);
  std::printf("  (d) DNVP^(5) -- distinct & not-varying points (scale j, time k, KL):\n");
  for (const auto& p : dnvp5) {
    std::printf("        j=%2zu (scale %5.1f samples)  k=%3zu  KL=%.3f\n", p.j,
                cwt.scale(p.j), p.k, p.value);
  }

  // Headline reduction statistic over the full group 1.
  std::printf("\n  unified DNVP over all of group 1 (66 pairs):\n");
  const auto g1 = avr::classes_in_group(1);
  features::LabeledTraces input;
  std::vector<sim::TraceSet> sets;
  sets.reserve(g1.size());
  const std::size_t n_small = std::max<std::size_t>(n / 2, 60);
  for (std::size_t cls : g1) sets.push_back(campaign.capture_class(cls, n_small, 10, rng));
  for (std::size_t i = 0; i < g1.size(); ++i) {
    input.labels.push_back(static_cast<int>(g1[i]));
    input.sets.push_back(&sets[i]);
  }
  features::PipelineConfig cfg = core::csa_config();
  cfg.kl_threshold = kl_th;
  const auto pipeline = features::FeaturePipeline::fit(input, cfg);
  std::printf("  unified points: %zu of %zu -> %.1f%% reduction (paper: 205, 98.7%%)\n",
              pipeline.unified_points().size(), pipeline.grid_size(),
              100.0 * (1.0 - static_cast<double>(pipeline.unified_points().size()) /
                                 static_cast<double>(pipeline.grid_size())));
  return 0;
}

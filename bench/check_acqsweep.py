#!/usr/bin/env python3
"""Diff a bench_acqsweep run against the checked-in baseline.

Usage: check_acqsweep.py CANDIDATE.json [BASELINE.json]

Hard gates (checked on the candidate's own data, not just its criterion
flags, so a bench that mis-derives its booleans still fails):

  * the accuracy-vs-cost frontier spans >= 4 configurations and is monotone
    within noise along descending cost (a cheaper corner may tie, never win
    by more than the band);
  * the nominal configuration is a bit-exact identity against the legacy
    acquisition path;
  * config-augmented zero-shot transfer: the pooled multi-device model
    strictly beats every budget-matched single-device baseline on the
    held-out corner device.

Per-config accuracies and the zero-shot metrics must also stay within
tolerance of the baseline.  Improvements never fail; re-pin to lock them in.
Stdlib only, so the CI job needs nothing beyond python3.
"""
import json
import sys
from pathlib import Path

# Fast-mode frontier points aggregate 240 classifications each and the
# zero-shot field 100 per model; CI runs are bit-deterministic, so two
# points of slack is pure cross-platform headroom, not noise budget.
TOLERANCE = 0.02
# A cheaper config may beat a richer one by at most this much (sampling
# jitter) before the frontier stops being credibly monotone.
MONOTONE_SLACK = 0.03
MIN_FRONTIER_CONFIGS = 4

CRITERIA = [
    "criterion_frontier_monotone",
    "criterion_nominal_identity",
    "criterion_zero_shot_lift",
]


def derive_failures(doc):
    """Re-derive every gate from the candidate's raw data."""
    failures = []
    frontier = doc.get("frontier", [])
    if len(frontier) < MIN_FRONTIER_CONFIGS:
        failures.append(
            f"frontier has {len(frontier)} configs, need >= {MIN_FRONTIER_CONFIGS}")
    costs = [p["cost"] for p in frontier]
    if costs != sorted(costs, reverse=True):
        failures.append("frontier is not ordered by descending cost")
    for prev, cur in zip(frontier, frontier[1:]):
        if cur["accuracy"] > prev["accuracy"] + MONOTONE_SLACK:
            failures.append(
                f"cheaper config '{cur['label']}' beats '{prev['label']}' "
                f"beyond noise: {prev['accuracy']:.4f} -> {cur['accuracy']:.4f}")
    if frontier and frontier[0]["label"] != "nominal":
        failures.append("frontier does not lead with the nominal config")

    md = doc.get("multi_device", {})
    singles = [s["accuracy"] for s in md.get("singles", [])]
    if not singles:
        failures.append("multi_device section has no single-device baselines")
    else:
        best = max(singles)
        if abs(md.get("best_single_accuracy", -1.0) - best) > 1e-6:
            failures.append("best_single_accuracy does not match the singles list")
        pooled = md.get("pooled_accuracy", 0.0)
        if pooled <= best:
            failures.append(
                f"pooled model does not strictly beat the best single-device "
                f"baseline: {pooled:.4f} vs {best:.4f}")
        if abs(md.get("pooled_lift", -1.0) - (pooled - best)) > 1e-6:
            failures.append("pooled_lift does not equal pooled - best_single")
    if not 0.0 < md.get("pooled_accepted_fraction", 0.0) <= 1.0:
        failures.append("pooled model accepted no field windows on the holdout")
    return failures


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    candidate = json.loads(Path(argv[1]).read_text())
    baseline_path = argv[2] if len(argv) > 2 else str(
        Path(__file__).parent / "BENCH_acqsweep.json")
    baseline = json.loads(Path(baseline_path).read_text())

    failures = []
    rows = []

    for key in CRITERIA:
        got = candidate.get(key)
        rows.append((key, baseline.get(key), got))
        if got is not True:
            failures.append(f"acceptance criterion '{key}' is {got}, expected true")

    failures += derive_failures(candidate)
    for msg in derive_failures(baseline):
        failures.append(f"baseline is self-inconsistent: {msg}")

    base_frontier = {p["label"]: p for p in baseline.get("frontier", [])}
    for point in candidate.get("frontier", []):
        ref = base_frontier.get(point["label"])
        if ref is None:
            continue
        rows.append((f"frontier[{point['label']}]", ref["accuracy"], point["accuracy"]))
        if point["accuracy"] < ref["accuracy"] - TOLERANCE:
            failures.append(
                f"config '{point['label']}' regressed: "
                f"{ref['accuracy']:.4f} -> {point['accuracy']:.4f}")

    base_md = baseline.get("multi_device", {})
    cand_md = candidate.get("multi_device", {})
    for key in ("pooled_accuracy", "best_single_accuracy", "pooled_lift",
                "pooled_flagged_miss_fraction"):
        base, got = base_md.get(key), cand_md.get(key)
        rows.append((key, base, got))
        if base is None or got is None:
            failures.append(f"metric '{key}' missing (baseline={base}, candidate={got})")
        elif got < base - TOLERANCE:
            failures.append(f"'{key}' regressed: {base:.4f} -> {got:.4f}")

    width = max(len(r[0]) for r in rows)
    print(f"{'metric'.ljust(width)}  baseline  candidate")
    for key, base, got in rows:
        fmt = lambda v: f"{v:.4f}" if isinstance(v, float) else str(v)
        print(f"{key.ljust(width)}  {fmt(base):>8}  {fmt(got):>9}")

    if failures:
        print(f"\nFAIL: {len(failures)} problem(s):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nOK: acquisition sweep within tolerance of the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

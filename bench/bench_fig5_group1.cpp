// Fig. 5(b): SR of the 12 first-group instructions (ADD, ADC, SUB, SBC, AND,
// OR, EOR, CPSE, CP, CPC, MOV, MOVW) vs number of principal components.
//
// Paper shape: saturates at 99.7% (SVM); other groups saturate > 99.5% with
// >= 50 variables.  This is the hard level of the hierarchy: all 12 classes
// share the two-register ALU datapath, so only small signature deviations
// and operand statistics separate them.
#include "bench/common.hpp"

using namespace sidis;

int main() {
  bench::print_header("Fig. 5(b) -- SR of 1st-group instructions vs number of components");
  std::mt19937_64 rng(static_cast<std::uint64_t>(bench::env_int("SIDIS_SEED", 5)));

  const sim::AcquisitionCampaign campaign(sim::DeviceModel::make(0),
                                          sim::SessionContext::make(0));

  const std::size_t n_train = bench::traces_per_class(220);
  const std::size_t n_test = std::max<std::size_t>(n_train / 5, 20);
  const auto g1 = avr::classes_in_group(1);

  std::vector<sim::TraceSet> train_sets, test_sets;
  train_sets.reserve(g1.size());
  test_sets.reserve(g1.size());
  for (std::size_t cls : g1) {
    train_sets.push_back(campaign.capture_class(cls, n_train, 10, rng));
    test_sets.push_back(campaign.capture_class(cls, n_test, 10, rng));
  }
  features::LabeledTraces train_input, test_input;
  for (std::size_t i = 0; i < g1.size(); ++i) {
    train_input.labels.push_back(static_cast<int>(g1[i]));
    train_input.sets.push_back(&train_sets[i]);
    test_input.labels.push_back(static_cast<int>(g1[i]));
    test_input.sets.push_back(&test_sets[i]);
  }
  std::printf("  12 classes, %zu train + %zu test traces per class\n\n", n_train, n_test);

  const std::vector<std::size_t> ks = bench::fast_mode()
                                          ? std::vector<std::size_t>{3, 10, 50}
                                          : std::vector<std::size_t>{3, 5, 10, 20, 30, 43, 50};
  const auto sr = bench::sweep_components(train_input, test_input, core::csa_config(), ks);

  std::printf("\n");
  bench::print_row("SVM @ saturation", 99.7, 100.0 * sr[2].back());
  bench::print_row("QDA @ saturation", 99.6, 100.0 * sr[1].back());
  std::printf("  shape check: within-group SR saturates slightly below the group-level\n"
              "  SR of Fig. 5(a); curves rise with the component count.\n");
  std::printf("  note: exact encoding aliases (CPSE/CP vs SUB-family operand statistics,\n"
              "  MOV vs register copies) are the residual confusions at small corpora.\n");
  return 0;
}

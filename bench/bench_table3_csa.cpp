// Table 3: SR of ADC-vs-AND classification under covariate shift, with and
// without covariate-shift adaptation (CSA), with and without per-trace
// normalization.
//
// Scenario (Sec. 4 / 5.5): templates are trained on traces from the
// profiling session's program files; test traces come from a *new* program
// file captured in a *different* measurement session -- the "real program"
// situation where the naive pipeline collapses (paper: QDA 18.5%).
//
// Paper reference values:
//   Classifier | Without CSA | CSA w/o Norm. | CSA with Norm.
//   QDA        |   18.5%     |    54.3%      |    92.0%
//   SVM        |   19.2%     |    57.8%      |    93.2%
#include "bench/common.hpp"

#include "core/csa.hpp"
#include "features/pipeline.hpp"
#include "ml/factory.hpp"

using namespace sidis;

namespace {

struct Scenario {
  features::PipelineConfig pipeline;
  int num_programs = 0;
};

double run_scenario(const Scenario& scenario, ml::ClassifierKind kind,
                    const sim::TraceSet& adc_train, const sim::TraceSet& and_train,
                    const sim::TraceSet& adc_test, const sim::TraceSet& and_test) {
  features::PipelineConfig cfg = scenario.pipeline;
  cfg.pca_components = 3;  // the paper selects 3 principal components here
  const auto pipeline =
      features::FeaturePipeline::fit({{0, 1}, {&adc_train, &and_train}}, cfg);

  ml::FactoryConfig fc;
  fc.svm.c = 10.0;
    auto clf = ml::make_classifier(kind, fc);
  clf->fit(pipeline.transform({{0, 1}, {&adc_train, &and_train}}));
  return clf->accuracy(pipeline.transform({{0, 1}, {&adc_test, &and_test}}));
}

}  // namespace

int main() {
  bench::print_header(
      "Table 3 -- covariate-shift adaptation (ADC vs AND, unseen program + session)");

  std::mt19937_64 rng(static_cast<std::uint64_t>(bench::env_int("SIDIS_SEED", 7)));
  const auto device = sim::DeviceModel::make(0);

  // Profiling happens in session 0; the "real program" is measured later, in
  // session 1, from a program file never seen in profiling.
  const sim::AcquisitionCampaign profiling(device, sim::SessionContext::make(0));
  // The field measurement happens weeks later on a re-assembled bench: the
  // probe chain gains ~15%, the baseline sits higher and wanders with the
  // supply.  The deployed monitor reuses the profiling-time reference trace
  // along with the templates (a real program offers no SBI/CBI trigger
  // segment to re-measure one), so this mismatch survives the reference
  // subtraction -- the covariate shift under test.
  sim::SessionContext field_session = sim::SessionContext::make(0);
  field_session.id = 1;
  field_session.gain = 1.30;
  field_session.offset = 0.10;
  field_session.ripple_amp = 0.02;
  field_session.ripple_freq = 1.0 / 620.0;
  field_session.ripple_phase = 2.0;
  field_session.temperature_drift = 0.01;
  const sim::AcquisitionCampaign field(device, field_session);

  const std::size_t adc = bench::class_id(avr::Mnemonic::kAdc);
  const std::size_t and_ = bench::class_id(avr::Mnemonic::kAnd);

  // The KL thresholds of Definition 3.1 only resolve with paper-scale
  // per-program trace counts (the estimator noise scales like 1/n), so this
  // bench defaults to ~120 traces per program file.
  const std::size_t n_train = bench::traces_per_class(1080);
  const std::size_t n_test = std::max<std::size_t>(n_train / 12, 30);
  const int kRealProgram = 100;

  // Without CSA: 9 profiling programs (the paper's initial experiment).
  const sim::TraceSet adc_train9 = profiling.capture_class(adc, n_train, 9, rng);
  const sim::TraceSet and_train9 = profiling.capture_class(and_, n_train, 9, rng);
  // With CSA: the training corpus is expanded to 19 programs (Sec. 5.5).
  const sim::TraceSet adc_train19 = profiling.capture_class(adc, n_train * 2, 19, rng);
  const sim::TraceSet and_train19 = profiling.capture_class(and_, n_train * 2, 19, rng);

  sim::TraceSet adc_test, and_test;
  {
    const sim::ProgramContext real = sim::ProgramContext::make(kRealProgram);
    for (std::size_t i = 0; i < n_test; ++i) {
      adc_test.push_back(
          field.capture_trace(avr::random_instance(adc, rng), real, rng));
      and_test.push_back(
          field.capture_trace(avr::random_instance(and_, rng), real, rng));
    }
  }

  const Scenario without_csa{core::without_csa_config(), 9};
  const Scenario csa_no_norm{core::csa_without_norm_config(), 19};
  const Scenario csa_norm{core::csa_config(), 19};

  struct Row {
    ml::ClassifierKind kind;
    double paper_without, paper_no_norm, paper_norm;
  };
  const Row rows[] = {
      {ml::ClassifierKind::kQda, 18.5, 54.3, 92.0},
      {ml::ClassifierKind::kSvmRbf, 19.2, 57.8, 93.2},
  };

  std::printf("  traces/class: train=%zu (9 prog) / %zu (19 prog), test=%zu\n\n",
              n_train, n_train * 2, n_test * 2);
  std::printf("  %-6s | %-26s | %-26s | %-26s\n", "clf", "Without CSA",
              "CSA without Norm.", "CSA with Norm.");
  for (const Row& row : rows) {
    const double a = run_scenario(without_csa, row.kind, adc_train9, and_train9,
                                  adc_test, and_test);
    const double b = run_scenario(csa_no_norm, row.kind, adc_train19, and_train19,
                                  adc_test, and_test);
    const double c = run_scenario(csa_norm, row.kind, adc_train19, and_train19,
                                  adc_test, and_test);
    std::printf("  %-6s | paper %5.1f%% meas %6.2f%% | paper %5.1f%% meas %6.2f%% | "
                "paper %5.1f%% meas %6.2f%%\n",
                ml::to_string(row.kind).c_str(), row.paper_without, 100.0 * a,
                row.paper_no_norm, 100.0 * b, row.paper_norm, 100.0 * c);
  }
  std::printf("\n  shape check: Without CSA collapses; normalization recovers >90%%.\n");
  return 0;
}

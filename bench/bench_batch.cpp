// Scalar-vs-batch classification throughput -- the acceptance gate of the
// batch-vectorized hot path.  The same eval windows run through classify()
// one at a time and through classify_batch() at batch sizes 1/16/64; before
// any timing is trusted, every batched result is checked bit-identical to
// the scalar path (labels, operands, verdicts, and both gate headrooms).
//
// The batch path wins three ways, all of which this bench exercises: the
// FFT plan / kernel taps / Cholesky rows / PCA axes load once per batch
// instead of once per window, the struct-of-arrays inner loops vectorize
// across lanes, and per-window allocations disappear into grow-once
// workspaces.  Batch 1 measures the bucketing overhead (it takes the scalar
// fallback inside classify_batch, so it should track the scalar path).
//
// Results go to BENCH_batch.json (override with SIDIS_BENCH_OUT); CI diffs
// a SIDIS_FAST run against the checked-in baseline via check_batch.py.
// Record baselines from an optimized build only -- the 2x criterion is a
// statement about the Release hot path, not about -O1 coverage builds.
#include "bench/common.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iterator>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "core/csa.hpp"
#include "core/hierarchical.hpp"
#include "sim/acquisition.hpp"

namespace {

using namespace sidis;
using Clock = std::chrono::steady_clock;
constexpr double kInf = std::numeric_limits<double>::infinity();

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct SizeRun {
  std::size_t batch = 0;
  double windows_per_sec = 0.0;
  double speedup = 0.0;  ///< vs the scalar classify() loop
};

bool identical(const core::Disassembly& a, const core::Disassembly& b) {
  return a.group == b.group && a.class_idx == b.class_idx && a.rd == b.rd &&
         a.rr == b.rr && a.verdict == b.verdict &&
         a.margin_headroom == b.margin_headroom &&
         a.score_headroom == b.score_headroom;
}

void write_json(const std::string& path, std::size_t n_classes, std::size_t pool,
                std::size_t passes, double scalar_wps,
                const std::vector<SizeRun>& runs, std::size_t checked,
                bool all_identical) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  double speedup16 = 0.0;
  for (const SizeRun& r : runs) {
    if (r.batch == 16) speedup16 = r.speedup;
  }
  std::fprintf(f, "{\n  \"bench\": \"batch\",\n");
  std::fprintf(f,
               "  \"config\": {\"classes\": %zu, \"pool\": %zu, \"passes\": %zu},\n",
               n_classes, pool, passes);
  std::fprintf(f, "  \"scalar\": {\"windows_per_sec\": %.1f},\n", scalar_wps);
  std::fprintf(f, "  \"batch\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::fprintf(f,
                 "    {\"batch\": %zu, \"windows_per_sec\": %.1f, "
                 "\"speedup_vs_scalar\": %.2f}%s\n",
                 runs[i].batch, runs[i].windows_per_sec, runs[i].speedup,
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"identity\": {\"windows_checked\": %zu, "
               "\"criterion_identical\": %s},\n",
               checked, all_identical ? "true" : "false");
  std::fprintf(f,
               "  \"comparison\": {\"speedup_batch16\": %.2f, "
               "\"criterion_batch16_2x\": %s}\n}\n",
               speedup16, speedup16 >= 2.0 ? "true" : "false");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main() {
  bench::print_header("Batch-vectorized hot path -- classify_batch vs classify");
  std::mt19937_64 rng(static_cast<std::uint64_t>(bench::env_int("SIDIS_SEED", 61)));
  const sim::AcquisitionCampaign campaign(sim::DeviceModel::make(0),
                                          sim::SessionContext::make(0));

  // Model scale mirrors bench_fleet / bench_runtime_throughput: realistic
  // per-window cost, armed reject gates so the identity check covers the
  // verdict machinery, and a register level so the level-3 sub-batching runs.
  const auto g1 = avr::classes_in_group(1);
  const std::size_t n_classes = bench::fast_mode() ? 3 : 6;
  core::ProfilingData data;
  for (std::size_t i = 0; i < n_classes; ++i) {
    data.classes[g1[i]] =
        campaign.capture_class(g1[i], bench::fast_mode() ? 40 : 80, 10, rng);
  }
  for (std::uint8_t r : {4, 20}) {
    data.rd_classes[r] =
        campaign.capture_register(true, r, bench::fast_mode() ? 80 : 150, 5, rng);
    data.rr_classes[r] =
        campaign.capture_register(false, r, bench::fast_mode() ? 80 : 150, 5, rng);
  }
  core::HierarchicalConfig cfg;
  cfg.pipeline = core::csa_config();
  cfg.pipeline.pca_components = 40;
  cfg.group_components = 20;
  cfg.instruction_components = 40;
  cfg.register_components = 20;
  cfg.factory.discriminant.shrinkage = 0.15;
  std::printf("  training a %zu-class hierarchical model (with rd/rr levels)...\n",
              n_classes);
  auto model = core::HierarchicalDisassembler::train(data, cfg);
  model.calibrate_reject(data, core::RejectOperatingPoint::kBalanced);

  // Eval pool: mixed classes and programs, captured once and reused.
  const std::size_t pool_size = 64;
  sim::TraceSet pool;
  for (std::size_t i = 0; i < pool_size; ++i) {
    pool.push_back(campaign.capture_trace(
        avr::random_instance(g1[i % n_classes], rng),
        sim::ProgramContext::make(static_cast<int>(i % 10)), rng));
  }

  // Bit-identity first; a fast wrong answer is not a speedup.
  std::printf("  verifying batch results are bit-identical to classify()...\n");
  std::vector<core::Disassembly> reference;
  reference.reserve(pool.size());
  for (const sim::Trace& t : pool) reference.push_back(model.classify(t));
  const std::size_t sizes[] = {1, 16, 64};
  std::size_t checked = 0;
  bool all_identical = true;
  for (const std::size_t k : sizes) {
    for (std::size_t base = 0; base + k <= pool.size(); base += k) {
      const sim::TraceSet chunk(pool.begin() + static_cast<long>(base),
                                pool.begin() + static_cast<long>(base + k));
      const std::vector<core::Disassembly> got = model.classify_batch(chunk);
      for (std::size_t i = 0; i < k; ++i, ++checked) {
        if (!identical(got[i], reference[base + i])) {
          all_identical = false;
          std::printf("  MISMATCH at window %zu, batch %zu\n", base + i, k);
        }
      }
    }
  }
  std::printf("  %zu batched windows checked: %s\n", checked,
              all_identical ? "all bit-identical" : "MISMATCHES FOUND");

  // Throughput.  Each round times every configuration back to back over the
  // same passes * pool_size windows, and each configuration keeps its best
  // round: a background-load spike then dents one round of one
  // configuration, not the whole scalar-vs-batch ratio (timing the scalar
  // loop start-to-finish and the batch loops minutes later bakes machine
  // drift straight into the speedup).
  const std::size_t passes = static_cast<std::size_t>(
      bench::env_int("SIDIS_BATCH_PASSES", bench::fast_mode() ? 8 : 60));
  const std::size_t rounds = static_cast<std::size_t>(
      bench::env_int("SIDIS_BATCH_ROUNDS", bench::fast_mode() ? 3 : 7));
  const std::size_t total = passes * pool_size;

  std::vector<std::vector<sim::TraceSet>> chunked;  // pre-chunk, untimed
  for (const std::size_t k : sizes) {
    std::vector<sim::TraceSet> chunks;
    for (std::size_t base = 0; base + k <= pool.size(); base += k) {
      chunks.emplace_back(pool.begin() + static_cast<long>(base),
                          pool.begin() + static_cast<long>(base + k));
    }
    chunked.push_back(std::move(chunks));
  }

  double scalar_best = kInf;
  std::vector<double> batch_best(std::size(sizes), kInf);
  for (std::size_t r = 0; r < rounds; ++r) {
    const Clock::time_point s0 = Clock::now();
    for (std::size_t p = 0; p < passes; ++p) {
      for (const sim::Trace& t : pool) {
        const core::Disassembly d = model.classify(t);
        if (d.group < 0) std::abort();  // keep the result observable
      }
    }
    scalar_best = std::min(scalar_best, seconds_since(s0));
    for (std::size_t s = 0; s < std::size(sizes); ++s) {
      const Clock::time_point t0 = Clock::now();
      for (std::size_t p = 0; p < passes; ++p) {
        for (const sim::TraceSet& chunk : chunked[s]) {
          const std::vector<core::Disassembly> got = model.classify_batch(chunk);
          if (got.empty()) std::abort();
        }
      }
      batch_best[s] = std::min(batch_best[s], seconds_since(t0));
    }
  }

  const double scalar_wps = static_cast<double>(total) / scalar_best;
  std::printf("\n  scalar classify():    %10.1f windows/sec  (best of %zu "
              "rounds, %.2fs each)\n",
              scalar_wps, rounds, scalar_best);
  std::vector<SizeRun> runs;
  for (std::size_t s = 0; s < std::size(sizes); ++s) {
    SizeRun run;
    run.batch = sizes[s];
    run.windows_per_sec = static_cast<double>(total) / batch_best[s];
    run.speedup = run.windows_per_sec / scalar_wps;
    runs.push_back(run);
    std::printf("  classify_batch(%2zu):   %10.1f windows/sec  (%.2fx vs "
                "scalar)\n",
                run.batch, run.windows_per_sec, run.speedup);
  }

  double speedup16 = 0.0;
  for (const SizeRun& r : runs) {
    if (r.batch == 16) speedup16 = r.speedup;
  }
  std::printf("\n  acceptance: batch-16 speedup %.2fx (gate: >= 2x), "
              "identity %s\n",
              speedup16, all_identical ? "PASS" : "FAIL");

  const char* out = std::getenv("SIDIS_BENCH_OUT");
  write_json(out != nullptr && *out != '\0' ? out : "BENCH_batch.json", n_classes,
             pool_size, passes, scalar_wps, runs, checked, all_identical);
  return all_identical ? 0 : 1;
}

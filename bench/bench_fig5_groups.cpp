// Fig. 5(a): successful recognition rate of the 8 instruction *groups* as a
// function of the number of principal components, for LDA, QDA, SVM-RBF and
// naive Bayes.
//
// Paper shape: all classifiers climb quickly with the component count; SVM
// saturates at 99.85% and QDA reaches 99.93% at 43 variables; below ~43
// variables QDA trails SVM.
//
// Scenario matches Sec. 5.2's initial experiment: train and test traces come
// from the same profiling campaign (random split), so no covariate shift is
// in play here.
#include "bench/common.hpp"

using namespace sidis;

int main() {
  bench::print_header("Fig. 5(a) -- SR of instruction groups vs number of components");
  std::mt19937_64 rng(static_cast<std::uint64_t>(bench::env_int("SIDIS_SEED", 5)));

  const sim::AcquisitionCampaign campaign(sim::DeviceModel::make(0),
                                          sim::SessionContext::make(0));

  // A spread of classes per group keeps runtime sane while still exposing
  // each group's within-group diversity to the group-level templates.
  const int classes_per_group = bench::fast_mode() ? 2 : 3;
  const std::size_t n_train = bench::traces_per_class(150);
  const std::size_t n_test = std::max<std::size_t>(n_train / 5, 20);

  std::vector<sim::TraceSet> train_sets(8), test_sets(8);
  for (int g = 1; g <= 8; ++g) {
    const auto classes = avr::classes_in_group(g);
    for (int i = 0; i < classes_per_group; ++i) {
      const std::size_t cls = classes[static_cast<std::size_t>(i) * classes.size() /
                                      static_cast<std::size_t>(classes_per_group)];
      const sim::TraceSet tr = campaign.capture_class(cls, n_train, 10, rng);
      const sim::TraceSet te = campaign.capture_class(cls, n_test, 10, rng);
      auto& dst_tr = train_sets[static_cast<std::size_t>(g - 1)];
      auto& dst_te = test_sets[static_cast<std::size_t>(g - 1)];
      dst_tr.insert(dst_tr.end(), tr.begin(), tr.end());
      dst_te.insert(dst_te.end(), te.begin(), te.end());
    }
  }
  features::LabeledTraces train_input, test_input;
  for (int g = 1; g <= 8; ++g) {
    train_input.labels.push_back(g);
    train_input.sets.push_back(&train_sets[static_cast<std::size_t>(g - 1)]);
    test_input.labels.push_back(g);
    test_input.sets.push_back(&test_sets[static_cast<std::size_t>(g - 1)]);
  }
  std::printf("  %d classes/group, %zu train + %zu test traces per class\n\n",
              classes_per_group, n_train, n_test);

  const std::vector<std::size_t> ks = bench::fast_mode()
                                          ? std::vector<std::size_t>{3, 10, 43}
                                          : std::vector<std::size_t>{3, 5, 10, 20, 30, 43};
  const auto sr = bench::sweep_components(train_input, test_input, core::csa_config(), ks);

  std::printf("\n");
  bench::print_row("SVM @ saturation", 99.85, 100.0 * sr[2].back());
  bench::print_row("QDA @ 43 components", 99.93, 100.0 * sr[1].back());
  std::printf("  shape check: every classifier saturates near 100%%; the curves rise\n"
              "  monotonically with the component count.\n");
  return 0;
}

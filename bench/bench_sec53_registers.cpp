// Sec. 5.3: training and classification for registers, and the paper's
// headline number.
//
// For each register class, traces are captured with the register pinned and
// the instruction (and the other register) drawn at random -- the third
// level of the hierarchy must recognize the register *through* arbitrary
// opcodes.  Paper: QDA reaches 99.9% (Rd) / 99.6% (Rr) with 45 variables,
// giving an instruction-plus-registers SR of at most
// 99.03% = 99.53% x 99.9% x 99.6%.
#include "bench/common.hpp"

using namespace sidis;

namespace {

double register_sr(const sim::AcquisitionCampaign& campaign, bool dest,
                   const std::vector<std::uint8_t>& regs, std::size_t n_train,
                   std::size_t n_test, std::mt19937_64& rng) {
  std::vector<sim::TraceSet> train_sets, test_sets;
  features::LabeledTraces train_input, test_input;
  for (std::uint8_t r : regs) {
    train_sets.push_back(campaign.capture_register(dest, r, n_train, 10, rng));
    test_sets.push_back(campaign.capture_register(dest, r, n_test, 10, rng));
  }
  for (std::size_t i = 0; i < regs.size(); ++i) {
    train_input.labels.push_back(regs[i]);
    train_input.sets.push_back(&train_sets[i]);
    test_input.labels.push_back(regs[i]);
    test_input.sets.push_back(&test_sets[i]);
  }
  features::PipelineConfig cfg = core::csa_config();
  cfg.pca_components = 45;  // the paper's register-level operating point
  const auto pipeline = features::FeaturePipeline::fit(train_input, cfg);
  ml::FactoryConfig fc;
  fc.discriminant.shrinkage = 0.15;
  auto qda = ml::make_classifier(ml::ClassifierKind::kQda, fc);
  qda->fit(pipeline.transform(train_input));
  return qda->accuracy(pipeline.transform(test_input));
}

}  // namespace

int main() {
  bench::print_header("Sec. 5.3 -- register recognition (Rd / Rr) and overall SR");
  std::mt19937_64 rng(static_cast<std::uint64_t>(bench::env_int("SIDIS_SEED", 53)));

  const sim::AcquisitionCampaign campaign(sim::DeviceModel::make(0),
                                          sim::SessionContext::make(0));

  // All 32 registers at paper scale is a long soak; default profiles a
  // representative spread and SIDIS_ALL_REGISTERS=1 runs the full set.
  std::vector<std::uint8_t> regs;
  if (bench::env_int("SIDIS_ALL_REGISTERS", 0) != 0) {
    for (int r = 0; r < 32; ++r) regs.push_back(static_cast<std::uint8_t>(r));
  } else {
    regs = {0, 1, 3, 7, 12, 16, 21, 25, 28, 31};
  }
  const std::size_t n_train = bench::traces_per_class(300);
  const std::size_t n_test = std::max<std::size_t>(n_train / 6, 25);
  std::printf("  %zu register classes, %zu train + %zu test traces per class\n\n",
              regs.size(), n_train, n_test);

  const double sr_rd = register_sr(campaign, /*dest=*/true, regs, n_train, n_test, rng);
  const double sr_rr = register_sr(campaign, /*dest=*/false, regs, n_train, n_test, rng);
  bench::print_row("Rd recognition (QDA, 45 vars)", 99.9, 100.0 * sr_rd);
  bench::print_row("Rr recognition (QDA, 45 vars)", 99.6, 100.0 * sr_rr);

  // The paper's composition: opcode SR x Rd SR x Rr SR.
  const double opcode_sr = 0.9953;  // paper's QDA opcode bound, for reference
  std::printf("\n  composed instruction+register SR (using the paper's %.2f%% opcode SR):\n",
              100.0 * opcode_sr);
  bench::print_row("opcode x Rd x Rr", 99.03, 100.0 * opcode_sr * sr_rd * sr_rr);
  std::printf("  shape check: register recognition lands near the high-90s and the\n"
              "  composed SR stays within a point or two of the opcode-only SR.\n");
  return 0;
}

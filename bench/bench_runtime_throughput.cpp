// Streaming-runtime scaling: traces/sec through runtime::StreamingDisassembler
// at 1/2/4/8 workers vs. the serial core::disassemble baseline on the same
// trace set -- the serving-layer counterpart of bench_throughput's per-stage
// microbenchmarks (Sec. 5.4's real-time argument).
//
// Besides throughput, the bench asserts the property that makes parallel
// serving legitimate at all: the streamed listing is byte-identical to the
// serial one at every worker count.  SIDIS_RUNTIME_TRACES overrides the
// stream length, SIDIS_FAST=1 shrinks everything.
#include "bench/common.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "core/disassembler.hpp"
#include "core/hierarchical.hpp"
#include "runtime/streaming.hpp"

using namespace sidis;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  bench::print_header("Runtime scaling -- streaming disassembly throughput");
  std::printf("  host reports %u hardware thread(s)\n",
              std::thread::hardware_concurrency());
  std::mt19937_64 rng(static_cast<std::uint64_t>(bench::env_int("SIDIS_SEED", 54)));
  const sim::AcquisitionCampaign campaign(sim::DeviceModel::make(0),
                                          sim::SessionContext::make(0));

  // Model scale mirrors bench_throughput's fixture: six group-1 classes.
  const auto g1 = avr::classes_in_group(1);
  const std::size_t n_classes = bench::fast_mode() ? 3 : 6;
  core::ProfilingData data;
  for (std::size_t i = 0; i < n_classes; ++i) {
    data.classes[g1[i]] =
        campaign.capture_class(g1[i], bench::fast_mode() ? 40 : 80, 10, rng);
  }
  core::HierarchicalConfig cfg;
  cfg.pipeline = core::csa_config();
  cfg.pipeline.pca_components = 40;
  cfg.group_components = 20;
  cfg.instruction_components = 40;
  cfg.factory.discriminant.shrinkage = 0.15;
  std::printf("  training a %zu-class hierarchical model...\n", n_classes);
  const auto model = core::HierarchicalDisassembler::train(data, cfg);

  // The stream under test: unseen windows of the profiled classes.
  const std::size_t n_traces = static_cast<std::size_t>(
      bench::env_int("SIDIS_RUNTIME_TRACES", bench::fast_mode() ? 200 : 1000));
  sim::TraceSet windows;
  for (std::size_t i = 0; i < n_traces; ++i) {
    windows.push_back(campaign.capture_trace(
        avr::random_instance(g1[i % n_classes], rng),
        sim::ProgramContext::make(static_cast<int>(i % 10)), rng));
  }

  // Serial baseline (and the golden listing for the identity check).
  const Clock::time_point t0 = Clock::now();
  const std::vector<core::Disassembly> serial = core::disassemble(model, windows);
  const double serial_secs = seconds_since(t0);
  const std::string golden = core::listing(serial);
  const double serial_rate = static_cast<double>(n_traces) / serial_secs;
  std::printf("\n  %zu traces, serial core::disassemble: %8.1f traces/sec\n", n_traces,
              serial_rate);

  std::printf("\n  %-9s %-14s %-10s %-12s %s\n", "workers", "traces/sec", "speedup",
              "vs serial", "output");
  double rate1 = 0.0;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    runtime::StreamingConfig scfg;
    scfg.workers = workers;
    scfg.queue_capacity = 64;
    runtime::StreamingDisassembler engine(model, scfg);

    const Clock::time_point ts = Clock::now();
    std::vector<core::Disassembly> streamed;
    streamed.reserve(n_traces);
    for (const sim::Trace& t : windows) {
      engine.submit(t);
      while (auto r = engine.poll()) streamed.push_back(std::move(r->value));
    }
    for (auto& r : engine.drain()) streamed.push_back(std::move(r.value));
    const double secs = seconds_since(ts);

    const double rate = static_cast<double>(n_traces) / secs;
    if (workers == 1) rate1 = rate;
    const bool identical = core::listing(streamed) == golden;
    std::printf("  %-9zu %10.1f %8.2fx %10.2fx   %s\n", workers, rate, rate / rate1,
                rate / serial_rate, identical ? "byte-identical" : "MISMATCH");
    if (workers == 4) {
      const runtime::RuntimeStats stats = engine.stats();
      std::printf("\n  stats @ 4 workers:\n%s\n", stats.report().c_str());
    }
  }
  std::printf(
      "  (speedup is relative to the 1-worker engine; 'vs serial' includes the\n"
      "   queue/reorder overhead.  Scaling requires physical cores: on a\n"
      "   single-core host every configuration collapses to ~1x.)\n");

  // Batched submission: the same stream coalesced into submit_batch calls at
  // fixed worker count.  One worker runs each batch through classify_batch
  // (one feature-extraction workspace amortized over the whole batch), so
  // per-window overhead drops even before parallelism enters -- this is the
  // amortization the fleet frontend's shard dispatcher rides on.
  std::printf("\n  batched submission @ 4 workers (vs per-window submit):\n");
  std::printf("  %-12s %-14s %-10s %s\n", "batch size", "traces/sec", "speedup",
              "output");
  double per_window_rate = 0.0;
  for (const std::size_t batch : {1u, 4u, 16u, 64u}) {
    runtime::StreamingConfig scfg;
    scfg.workers = 4;
    scfg.queue_capacity = 64;
    runtime::StreamingDisassembler engine(model, scfg);

    const Clock::time_point ts = Clock::now();
    std::vector<core::Disassembly> streamed;
    streamed.reserve(n_traces);
    for (std::size_t i = 0; i < n_traces; i += batch) {
      const std::size_t n = std::min(batch, n_traces - i);
      if (batch == 1) {
        engine.submit(windows[i]);
      } else {
        engine.submit_batch(
            sim::TraceSet(windows.begin() + static_cast<std::ptrdiff_t>(i),
                          windows.begin() + static_cast<std::ptrdiff_t>(i + n)));
      }
      while (auto r = engine.poll()) streamed.push_back(std::move(r->value));
    }
    for (auto& r : engine.drain()) streamed.push_back(std::move(r.value));
    const double secs = seconds_since(ts);

    const double rate = static_cast<double>(n_traces) / secs;
    if (batch == 1) per_window_rate = rate;
    const bool identical = core::listing(streamed) == golden;
    std::printf("  %-12zu %10.1f %8.2fx   %s\n", batch, rate, rate / per_window_rate,
                identical ? "byte-identical" : "MISMATCH");
  }
  std::printf(
      "  (classify_batch is bit-identical to per-window classify, so the\n"
      "   batched listing must match byte-for-byte at every batch size.)\n");
  return 0;
}

// Drift detection + self-scheduled recalibration recovery bench.
//
// One seeded deployment scenario, end to end: a model profiled on the healthy
// device serves a live stream; partway in, the device starts aging (linear
// gain ramp).  A runtime::DriftMonitor watches the emissions, a
// runtime::RecalibrationScheduler answers its events with budgeted labeled
// captures and hot-swaps the recalibrated model into the running engine via
// the ModelRegistry.  The bench measures what the ISSUE asks for:
//
//   * the drift magnitude in calibrated units (feature-mean shift in
//     training sigmas at full drift -- must be >= 2 sigma),
//   * detection latency in windows from drift onset,
//   * the accuracy-dip depth while the stale model served drifted windows,
//   * post-recovery accuracy (final published model on fully drifted
//     captures) against the clean baseline -- must land within 2 points,
//   * the labeled-trace spend against its budget.
//
// A per-batch timeline (accuracy, z_rms, active model stamp) shows the whole
// arc.  Results go to BENCH_drift.json (override with SIDIS_BENCH_OUT),
// diffed in CI by check_drift.py exactly like the transfer bench.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "avr/program.hpp"
#include "bench/common.hpp"
#include "core/csa.hpp"
#include "runtime/drift.hpp"
#include "runtime/recal.hpp"
#include "runtime/registry.hpp"
#include "runtime/streaming.hpp"

namespace sidis::bench {
namespace {

constexpr std::uint64_t kSeed = 0xd21f75eed;

/// Aging gain ramp at full campaign progress; override (in percent) with
/// SIDIS_GAIN_DRIFT_PCT to sweep detection latency vs drift magnitude.
double aging_gain_drift() {
  return env_int("SIDIS_GAIN_DRIFT_PCT", 70) / 100.0;
}

struct BatchPoint {
  std::size_t first_window = 0;
  double accuracy = 0.0;
  double z_rms = 0.0;
  std::uint64_t model_stamp = 0;
};

struct DriftBenchRun {
  // drift geometry
  std::size_t stream_windows = 0;
  std::size_t onset_window = 0;
  double feature_shift_sigma = 0.0;
  // detection
  bool detected = false;
  std::size_t detected_window = 0;
  std::size_t latency_windows = 0;
  std::size_t window_budget = 0;
  std::string trigger;
  std::size_t events = 0;
  // recovery
  double clean_accuracy = 0.0;
  double dip_accuracy = 1.0;
  double stale_final_accuracy = 0.0;
  double recovered_final_accuracy = 0.0;
  // spend
  std::uint64_t recalibrations = 0;
  std::uint64_t traces_spent = 0;
  std::size_t trace_budget = 0;
  std::uint64_t model_swaps = 0;
  int registry_versions = 0;
  std::vector<BatchPoint> timeline;
};

const std::vector<std::size_t>& drift_classes() {
  // Same-group ALU classes: level-2 fine discrimination is where a gain ramp
  // costs accuracy (cross-group sets shrug off far larger shifts).
  static const std::vector<std::size_t> classes = {class_id(avr::Mnemonic::kAdd),
                                                   class_id(avr::Mnemonic::kAdc),
                                                   class_id(avr::Mnemonic::kSub)};
  return classes;
}

double accuracy_on(const core::HierarchicalDisassembler& model,
                   const sim::TraceSet& set) {
  std::size_t hits = 0;
  for (const sim::Trace& t : set) {
    if (model.classify(t).class_idx == t.meta.class_idx) ++hits;
  }
  return set.empty() ? 0.0 : static_cast<double>(hits) / static_cast<double>(set.size());
}

sim::TraceSet eval_corpus(const sim::AcquisitionCampaign& campaign, std::size_t n,
                          double progress, std::uint64_t seed) {
  std::mt19937_64 rng{seed};
  sim::TraceSet out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(campaign.capture_trace(
        avr::random_instance(drift_classes()[i % drift_classes().size()], rng, {}),
        sim::ProgramContext::make(static_cast<int>(i % 3)), rng, progress));
  }
  return out;
}

DriftBenchRun run_scenario(std::size_t stream_windows, std::size_t per_class_train,
                           const std::filesystem::path& registry_root) {
  DriftBenchRun run;
  run.stream_windows = stream_windows;
  run.onset_window = stream_windows / 5;          // clean plateau, then ramp
  run.window_budget = stream_windows / 2;          // detection latency budget

  // -- profile + train on the healthy device ---------------------------------
  sim::AcquisitionCampaign clean{sim::DeviceModel::make(0),
                                 sim::SessionContext::make(0)};
  std::mt19937_64 rng{kSeed};
  core::ProfilingData data;
  for (std::size_t cls : drift_classes()) {
    data.classes[cls] = clean.capture_class(cls, per_class_train, 3, rng);
  }
  core::HierarchicalConfig cfg;
  cfg.pipeline = core::csa_config();
  cfg.pipeline.pca_components = 10;
  cfg.group_components = 8;
  cfg.instruction_components = 8;
  const auto model = std::make_shared<const core::HierarchicalDisassembler>(
      core::HierarchicalDisassembler::train(data, cfg));

  // -- the aging device and its stream ---------------------------------------
  sim::DeviceModel aged = sim::DeviceModel::make(0);
  aged.aging_gain_drift = aging_gain_drift();
  const sim::AcquisitionCampaign drifting{aged, sim::SessionContext::make(0)};

  const auto progress_at = [&](std::size_t i) {
    if (i <= run.onset_window) return 0.0;
    return static_cast<double>(i - run.onset_window) /
           static_cast<double>(stream_windows - 1 - run.onset_window);
  };
  sim::TraceSet windows;
  std::mt19937_64 stream_rng{kSeed + 1};
  for (std::size_t i = 0; i < stream_windows; ++i) {
    windows.push_back(drifting.capture_trace(
        avr::random_instance(drift_classes()[i % drift_classes().size()], stream_rng, {}),
        sim::ProgramContext::make(static_cast<int>(i % 3)), stream_rng, progress_at(i)));
  }

  // Drift magnitude in calibrated units: feature-mean displacement of fully
  // drifted captures, in training sigmas (RMS over monitor features).
  {
    const sim::TraceSet probe = eval_corpus(drifting, 45, 1.0, kSeed + 7);
    const core::FeatureMoments& m = model->training_moments();
    linalg::Vector mean(m.mean.size(), 0.0);
    for (const sim::Trace& t : probe) {
      const linalg::Vector f = model->monitor_features(t);
      for (std::size_t c = 0; c < mean.size(); ++c) mean[c] += f[c];
    }
    double z_sq = 0.0;
    for (std::size_t c = 0; c < mean.size(); ++c) {
      mean[c] /= static_cast<double>(probe.size());
      const double sigma = std::sqrt(std::max(m.variance[c], 1e-12));
      const double z = (mean[c] - m.mean[c]) / sigma;
      z_sq += z * z;
    }
    run.feature_shift_sigma = std::sqrt(z_sq / static_cast<double>(mean.size()));
  }

  // -- the serving loop: engine + monitor + scheduler + registry -------------
  std::filesystem::remove_all(registry_root);
  runtime::ModelRegistry registry(registry_root);
  runtime::StreamingConfig scfg;
  scfg.workers = 2;
  runtime::StreamingDisassembler engine(
      [model](const sim::Trace& t) { return model->classify(t); }, scfg);
  runtime::DriftConfig dcfg;
  dcfg.z_threshold = 2.5;  // monitoring-grade sensitivity (see regression_test)
  dcfg.cooldown = 40;
  runtime::DriftMonitor monitor(model, dcfg);
  runtime::CampaignCalibrationSource source(drifting, drift_classes(), 3, kSeed + 2);
  runtime::RecalPolicy policy;
  policy.traces_per_class = 8;
  policy.trace_budget = 72;  // three rounds of 8 x 3 classes
  policy.rescale = true;     // a gain ramp moves stddevs, not just means
  run.trace_budget = policy.trace_budget;
  runtime::RecalibrationScheduler scheduler(engine, model, source, policy, &registry);

  const std::size_t batch = std::max<std::size_t>(10, stream_windows / 20);
  for (std::size_t base = 0; base < windows.size(); base += batch) {
    const std::size_t end = std::min(windows.size(), base + batch);
    BatchPoint point;
    point.first_window = base;
    std::size_t hits = 0;
    for (std::size_t i = base; i < end; ++i) (void)engine.submit(windows[i]);
    std::size_t emitted = base;
    while (emitted < end) {
      if (auto r = engine.poll()) {
        monitor.observe(windows[r->sequence], r->value);
        if (r->value.class_idx == windows[r->sequence].meta.class_idx) ++hits;
        point.model_stamp = r->model_stamp;
        ++emitted;
      }
    }
    point.accuracy = static_cast<double>(hits) / static_cast<double>(end - base);
    point.z_rms = monitor.z_rms();
    run.timeline.push_back(point);
    if (base >= run.onset_window) {
      run.dip_accuracy = std::min(run.dip_accuracy, point.accuracy);
    }
    if (const auto event = monitor.poll_event()) {
      if (!run.detected) {
        run.detected = true;
        run.detected_window = static_cast<std::size_t>(event->observation);
        run.latency_windows = run.detected_window > run.onset_window
                                  ? run.detected_window - run.onset_window
                                  : 0;
        run.trigger = runtime::to_string(event->trigger);
      }
      ++run.events;
      source.set_progress(progress_at(end - 1));
      (void)scheduler.on_drift(*event, monitor);
    }
  }
  (void)engine.drain();
  const runtime::RuntimeStats stats = engine.stats();
  run.recalibrations = stats.recalibrations;
  run.traces_spent = stats.recal_traces_spent;
  run.model_swaps = stats.model_swaps;
  run.registry_versions =
      registry.names().empty() ? 0 : registry.latest_version(policy.registry_name);

  // -- paired final evaluation ----------------------------------------------
  const sim::TraceSet eval_clean = eval_corpus(clean, 75, 0.0, kSeed + 3);
  const sim::TraceSet eval_aged = eval_corpus(drifting, 75, 1.0, kSeed + 3);
  run.clean_accuracy = accuracy_on(*model, eval_clean);
  run.stale_final_accuracy = accuracy_on(*model, eval_aged);
  run.recovered_final_accuracy = accuracy_on(*scheduler.active_model(), eval_aged);
  return run;
}

void write_json(const DriftBenchRun& r, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  const bool shift_ok = r.feature_shift_sigma >= 2.0;
  const bool detect_ok = r.detected && r.latency_windows <= r.window_budget;
  const bool recover_ok = r.recovered_final_accuracy >= r.clean_accuracy - 0.02;
  const bool budget_ok = r.traces_spent <= r.trace_budget;
  const bool swap_ok = r.model_swaps >= 1 && r.registry_versions >= 1;
  std::fprintf(f, "{\n  \"bench\": \"drift_recovery\",\n");
  std::fprintf(f,
               "  \"config\": {\"classes\": %zu, \"stream_windows\": %zu, "
               "\"aging_gain_drift\": %.2f},\n",
               drift_classes().size(), r.stream_windows, aging_gain_drift());
  std::fprintf(f,
               "  \"drift\": {\"onset_window\": %zu, \"feature_shift_sigma\": %.3f, "
               "\"criterion_shift_at_least_2sigma\": %s},\n",
               r.onset_window, r.feature_shift_sigma, shift_ok ? "true" : "false");
  std::fprintf(f,
               "  \"detection\": {\"detected_window\": %zu, \"latency_windows\": %zu, "
               "\"window_budget\": %zu, \"trigger\": \"%s\", \"events\": %zu,\n"
               "                \"criterion_detected_within_budget\": %s},\n",
               r.detected_window, r.latency_windows, r.window_budget, r.trigger.c_str(),
               r.events, detect_ok ? "true" : "false");
  std::fprintf(f,
               "  \"recovery\": {\"clean_accuracy\": %.4f, \"dip_accuracy\": %.4f, "
               "\"dip_depth\": %.4f,\n               \"stale_final_accuracy\": %.4f, "
               "\"recovered_final_accuracy\": %.4f,\n"
               "               \"criterion_recovered_within_2pts\": %s},\n",
               r.clean_accuracy, r.dip_accuracy, r.clean_accuracy - r.dip_accuracy,
               r.stale_final_accuracy, r.recovered_final_accuracy,
               recover_ok ? "true" : "false");
  std::fprintf(f,
               "  \"recal\": {\"recalibrations\": %llu, \"traces_spent\": %llu, "
               "\"trace_budget\": %zu, \"model_swaps\": %llu, "
               "\"registry_versions\": %d,\n            "
               "\"criterion_budget_respected\": %s, \"criterion_hot_swapped\": %s},\n",
               static_cast<unsigned long long>(r.recalibrations),
               static_cast<unsigned long long>(r.traces_spent), r.trace_budget,
               static_cast<unsigned long long>(r.model_swaps), r.registry_versions,
               budget_ok ? "true" : "false", swap_ok ? "true" : "false");
  std::fprintf(f, "  \"timeline\": [\n");
  for (std::size_t i = 0; i < r.timeline.size(); ++i) {
    const BatchPoint& p = r.timeline[i];
    std::fprintf(f,
                 "    {\"window\": %zu, \"accuracy\": %.4f, \"z_rms\": %.3f, "
                 "\"model_stamp\": %llu}%s\n",
                 p.first_window, p.accuracy, p.z_rms,
                 static_cast<unsigned long long>(p.model_stamp),
                 i + 1 < r.timeline.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace
}  // namespace sidis::bench

int main() {
  using namespace sidis;
  using namespace sidis::bench;

  print_header("Drift detection + self-scheduled recalibration recovery");
  const std::size_t stream_windows =
      static_cast<std::size_t>(env_int("SIDIS_STREAM_WINDOWS", fast_mode() ? 300 : 400));
  const std::size_t per_class = traces_per_class(60);
  const auto registry_root =
      std::filesystem::temp_directory_path() / "sidis_bench_drift_registry";

  const DriftBenchRun run = run_scenario(stream_windows, per_class, registry_root);

  std::printf("\nscenario: %zu windows, aging gain ramp +%.0f%% from window %zu\n",
              run.stream_windows, 100.0 * aging_gain_drift(), run.onset_window);
  std::printf("feature-mean shift at full drift: %.2f training sigmas (>= 2 required)\n",
              run.feature_shift_sigma);
  if (run.detected) {
    std::printf("detected at window %zu (latency %zu, budget %zu, trigger %s), "
                "%zu event(s)\n",
                run.detected_window, run.latency_windows, run.window_budget,
                run.trigger.c_str(), run.events);
  } else {
    std::printf("NOT DETECTED within the stream\n");
  }
  std::printf("recalibrations: %llu, labeled traces spent %llu / %zu, "
              "model swaps %llu, registry versions %d\n",
              static_cast<unsigned long long>(run.recalibrations),
              static_cast<unsigned long long>(run.traces_spent), run.trace_budget,
              static_cast<unsigned long long>(run.model_swaps), run.registry_versions);
  std::printf("accuracy: clean %.1f%%, dip %.1f%% (depth %.1f pts), stale-final %.1f%%, "
              "recovered %.1f%%\n",
              100.0 * run.clean_accuracy, 100.0 * run.dip_accuracy,
              100.0 * (run.clean_accuracy - run.dip_accuracy),
              100.0 * run.stale_final_accuracy, 100.0 * run.recovered_final_accuracy);

  std::printf("\n  %-8s %9s %7s %12s\n", "window", "accuracy", "z_rms", "model-stamp");
  for (const BatchPoint& p : run.timeline) {
    std::printf("  %-8zu %8.1f%% %7.2f %12llu\n", p.first_window, 100.0 * p.accuracy,
                p.z_rms, static_cast<unsigned long long>(p.model_stamp));
  }

  const char* out = std::getenv("SIDIS_BENCH_OUT");
  write_json(run, out != nullptr && *out != '\0' ? out : "BENCH_drift.json");
  return 0;
}

// Ablation bench for the design choices DESIGN.md calls out.
//
// Each variant classifies the same 6 group-1 instruction classes, evaluated
// twice: on held-out traces from the profiling session (matched) and on
// traces from a gain-shifted later session (shifted).  Variants:
//
//   full            CWT + KL-DNVP selection + per-trace norm + PCA + QDA
//   no-norm         same, per-trace normalization off
//   random-points   CWT + *random* grid points instead of KL selection
//   ricker          full pipeline with the Ricker wavelet instead of Morlet
//   raw-trace       no CWT at all: PCA + QDA on the time-domain window
//   dnvp-1          KL selection with 1 point per pair instead of 5
#include "bench/common.hpp"

#include "baseline/baselines.hpp"
#include "features/selection.hpp"

using namespace sidis;

namespace {

struct Eval {
  double matched = 0.0;
  double shifted = 0.0;
};

Eval eval_pipeline(const features::PipelineConfig& cfg,
                   const features::LabeledTraces& train,
                   const features::LabeledTraces& matched,
                   const features::LabeledTraces& shifted) {
  const auto pipe = features::FeaturePipeline::fit(train, cfg);
  ml::FactoryConfig fc;
  fc.discriminant.shrinkage = 0.15;
  auto qda = ml::make_classifier(ml::ClassifierKind::kQda, fc);
  qda->fit(pipe.transform(train));
  return {qda->accuracy(pipe.transform(matched)), qda->accuracy(pipe.transform(shifted))};
}

/// Random-point variant: same CWT + scalers + PCA + QDA machinery, but the
/// grid points are drawn uniformly instead of by KL divergence.
Eval eval_random_points(const features::LabeledTraces& train,
                        const features::LabeledTraces& matched,
                        const features::LabeledTraces& shifted, std::size_t num_points,
                        std::mt19937_64& rng) {
  const dsp::Cwt cwt{dsp::CwtConfig{}};
  std::vector<stats::GridPoint> points(num_points);
  std::uniform_int_distribution<std::size_t> pj(0, cwt.num_scales() - 1);
  std::uniform_int_distribution<std::size_t> pk(0, 314);
  for (auto& p : points) p = {pj(rng), pk(rng), 0.0};

  const auto project = [&](const features::LabeledTraces& in) {
    ml::Dataset out;
    std::vector<linalg::Vector> rows;
    for (std::size_t c = 0; c < in.sets.size(); ++c) {
      for (const sim::Trace& t : *in.sets[c]) {
        rows.push_back(features::extract_features(cwt, t.samples, points));
        out.y.push_back(in.labels[c]);
      }
    }
    out.x = linalg::Matrix::from_rows(rows);
    return out;
  };
  ml::Dataset train_ds = project(train);
  const auto scaler = stats::ColumnScaler::fit(train_ds.x);
  train_ds.x = scaler.transform(train_ds.x);
  const auto pca = stats::Pca::fit(train_ds.x, 20);
  train_ds.x = pca.transform(train_ds.x);
  ml::FactoryConfig fc;
  fc.discriminant.shrinkage = 0.15;
  auto qda = ml::make_classifier(ml::ClassifierKind::kQda, fc);
  qda->fit(train_ds);
  const auto score = [&](const features::LabeledTraces& in) {
    ml::Dataset d = project(in);
    d.x = pca.transform(scaler.transform(d.x));
    return qda->accuracy(d);
  };
  return {score(matched), score(shifted)};
}

}  // namespace

int main() {
  bench::print_header("Ablations -- what each pipeline ingredient buys");
  std::mt19937_64 rng(static_cast<std::uint64_t>(bench::env_int("SIDIS_SEED", 77)));

  const auto device = sim::DeviceModel::make(0);
  const sim::AcquisitionCampaign profiling(device, sim::SessionContext::make(0));
  sim::SessionContext later = sim::SessionContext::make(0);
  later.id = 3;
  later.gain = 1.25;
  const sim::AcquisitionCampaign field(device, later);

  auto g1 = avr::classes_in_group(1);
  g1.resize(bench::fast_mode() ? 4 : 6);
  const std::size_t n_train = bench::traces_per_class(200);
  const std::size_t n_test = std::max<std::size_t>(n_train / 5, 20);

  std::vector<sim::TraceSet> train_sets, matched_sets, shifted_sets;
  features::LabeledTraces train, matched, shifted;
  for (std::size_t cls : g1) {
    train_sets.push_back(profiling.capture_class(cls, n_train, 10, rng));
    matched_sets.push_back(profiling.capture_class(cls, n_test, 10, rng));
    sim::TraceSet sh;
    for (std::size_t i = 0; i < n_test; ++i) {
      sh.push_back(field.capture_trace(avr::random_instance(cls, rng),
                                       sim::ProgramContext::make(100), rng));
    }
    shifted_sets.push_back(std::move(sh));
  }
  for (std::size_t i = 0; i < g1.size(); ++i) {
    const int label = static_cast<int>(g1[i]);
    train.labels.push_back(label);
    train.sets.push_back(&train_sets[i]);
    matched.labels.push_back(label);
    matched.sets.push_back(&matched_sets[i]);
    shifted.labels.push_back(label);
    shifted.sets.push_back(&shifted_sets[i]);
  }
  std::printf("  %zu classes, %zu train traces each; shifted session: +25%% gain\n\n",
              g1.size(), n_train);
  std::printf("  %-16s %10s %10s\n", "variant", "matched", "shifted");

  const auto row = [](const char* name, const Eval& e) {
    std::printf("  %-16s %9.1f%% %9.1f%%\n", name, 100.0 * e.matched, 100.0 * e.shifted);
  };

  features::PipelineConfig full = core::csa_config();
  full.pca_components = 20;
  row("full", eval_pipeline(full, train, matched, shifted));

  features::PipelineConfig no_norm = full;
  no_norm.per_trace_normalization = false;
  row("no-norm", eval_pipeline(no_norm, train, matched, shifted));

  row("random-points", eval_random_points(train, matched, shifted, 60, rng));

  features::PipelineConfig ricker = full;
  ricker.cwt.family = dsp::WaveletFamily::kRicker;
  row("ricker", eval_pipeline(ricker, train, matched, shifted));

  {
    baseline::BaselineConfig bc;
    bc.pca_components = 20;
    const auto raw = baseline::train_eisenbarth(train, bc);
    Eval e;
    e.matched = raw.accuracy(matched);
    e.shifted = raw.accuracy(shifted);
    row("raw-trace", e);
  }

  features::PipelineConfig dnvp1 = full;
  dnvp1.points_per_pair = 1;
  row("dnvp-1", eval_pipeline(dnvp1, train, matched, shifted));

  std::printf("\n  reading guide: 'full' should lead under shift; random points and\n"
              "  raw traces give up either matched accuracy, shift robustness, or both.\n");
  return 0;
}

// Table 1: comparison with prior side-channel disassemblers, re-run on our
// common substrate.
//
// The paper's table is a literature survey; to make it executable we
// re-implement the two reproducible prior pipelines ([18] Msgna et al.:
// PCA + 1-NN on raw traces; [9] Eisenbarth et al.: PCA + multivariate
// Gaussian templates) and score everything on identical simulated traces,
// in two regimes:
//   (1) matched conditions (same campaign) -- where prior work shines;
//   (2) covariate shift (new program + session) -- where only the
//       CSA-equipped pipeline survives, the row the paper's "CSA: Yes/No"
//       column is really about.
#include "bench/common.hpp"

#include "baseline/baselines.hpp"

using namespace sidis;

namespace {

struct Scores {
  double ours = 0.0;
  double msgna = 0.0;
  double eisenbarth = 0.0;
};

Scores score(const features::LabeledTraces& train, const features::LabeledTraces& test,
             std::size_t components) {
  Scores s;
  // Ours: CWT -> KL -> PCA -> QDA with CSA.
  features::PipelineConfig cfg = core::csa_config();
  cfg.pca_components = components;
  const auto pipeline = features::FeaturePipeline::fit(train, cfg);
  ml::FactoryConfig fc;
  fc.discriminant.shrinkage = 0.15;
  auto qda = ml::make_classifier(ml::ClassifierKind::kQda, fc);
  qda->fit(pipeline.transform(train));
  s.ours = qda->accuracy(pipeline.transform(test));

  baseline::BaselineConfig bc;
  bc.pca_components = components;
  s.msgna = baseline::train_msgna(train, bc).accuracy(test);
  s.eisenbarth = baseline::train_eisenbarth(train, bc).accuracy(test);
  return s;
}

}  // namespace

int main() {
  bench::print_header("Table 1 -- prior-art comparison on a common substrate");
  std::mt19937_64 rng(static_cast<std::uint64_t>(bench::env_int("SIDIS_SEED", 1)));

  const auto device = sim::DeviceModel::make(0);
  const sim::AcquisitionCampaign profiling(device, sim::SessionContext::make(0));
  const sim::AcquisitionCampaign field(device, sim::SessionContext::make(1));

  // Regime 1: multi-class recognition under matched conditions (a 8-class
  // sample across groups, echoing the 33-39-class scopes of [9]/[18]).
  const std::vector<std::size_t> classes = {
      bench::class_id(avr::Mnemonic::kAdd),  bench::class_id(avr::Mnemonic::kAnd),
      bench::class_id(avr::Mnemonic::kSubi), bench::class_id(avr::Mnemonic::kCom),
      bench::class_id(avr::Mnemonic::kRjmp), bench::class_id(avr::Mnemonic::kLd, avr::AddrMode::kX),
      bench::class_id(avr::Mnemonic::kSec),  bench::class_id(avr::Mnemonic::kSbi)};
  const std::size_t n_train = bench::traces_per_class(180);
  const std::size_t n_test = std::max<std::size_t>(n_train / 5, 20);

  std::vector<sim::TraceSet> tr_sets, te_sets;
  features::LabeledTraces train, test;
  for (std::size_t cls : classes) {
    tr_sets.push_back(profiling.capture_class(cls, n_train, 10, rng));
    te_sets.push_back(profiling.capture_class(cls, n_test, 10, rng));
  }
  for (std::size_t i = 0; i < classes.size(); ++i) {
    train.labels.push_back(static_cast<int>(classes[i]));
    train.sets.push_back(&tr_sets[i]);
    test.labels.push_back(static_cast<int>(classes[i]));
    test.sets.push_back(&te_sets[i]);
  }
  const Scores matched = score(train, test, 25);
  std::printf("  regime 1: 8 classes, matched conditions (paper analogues: [18] 100%%,"
              " [23] 96.2%%)\n");
  std::printf("    ours (CWT+KL+PCA+QDA, CSA) : %6.2f%%\n", 100.0 * matched.ours);
  std::printf("    Msgna et al.  (PCA + 1-NN)  : %6.2f%%\n", 100.0 * matched.msgna);
  std::printf("    Eisenbarth et al. (PCA+Gauss): %6.2f%%\n", 100.0 * matched.eisenbarth);

  // Regime 2: the same two-class problem as Table 3, under covariate shift.
  const std::size_t adc = bench::class_id(avr::Mnemonic::kAdc);
  const std::size_t and_ = bench::class_id(avr::Mnemonic::kAnd);
  const std::size_t n2 = std::max<std::size_t>(n_train * 2, 19 * 80);
  sim::TraceSet adc_tr = profiling.capture_class(adc, n2, 19, rng);
  sim::TraceSet and_tr = profiling.capture_class(and_, n2, 19, rng);
  sim::TraceSet adc_te, and_te;
  const sim::ProgramContext real = sim::ProgramContext::make(100);
  for (std::size_t i = 0; i < n_test * 2; ++i) {
    adc_te.push_back(field.capture_trace(avr::random_instance(adc, rng), real, rng));
    and_te.push_back(field.capture_trace(avr::random_instance(and_, rng), real, rng));
  }
  const Scores shifted = score({{0, 1}, {&adc_tr, &and_tr}}, {{0, 1}, {&adc_te, &and_te}}, 3);
  std::printf("\n  regime 2: ADC vs AND under program+session shift (no prior work"
              " adapts)\n");
  std::printf("    ours (with CSA)             : %6.2f%%\n", 100.0 * shifted.ours);
  std::printf("    Msgna et al.  (PCA + 1-NN)  : %6.2f%%\n", 100.0 * shifted.msgna);
  std::printf("    Eisenbarth et al. (PCA+Gauss): %6.2f%%\n", 100.0 * shifted.eisenbarth);

  std::printf("\n  shape check: all three are competitive under matched conditions;\n"
              "  under shift only the CSA pipeline stays near 90%% -- the paper's\n"
              "  Table-1 'CSA' column in executable form.\n");
  return 0;
}

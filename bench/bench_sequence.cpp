// Streaming probabilistic sequence decoding bench: basic-block recovery.
//
// One seeded firmware-shaped scenario, end to end: a same-group-heavy model
// (group-1 ALU plus group-4 control flow) serves a stream whose ground truth
// is a repeating three-block loop body, the per-window posteriors come from
// classify_batch_scored, and a bounded-lag SequenceDecoder smooths the stream
// under an IsaPrior blended with the firmware's own bigram statistics.  The
// bench measures what the ISSUE asks for:
//
//   * per-window argmax accuracy vs sequence-decoded accuracy (the decode
//     must pay for itself),
//   * basic-block recovery rate (exact block matches against the ground
//     truth CFG segmentation) for both streams -- the structural metric the
//     Sec.-5.7 malware scenario extends to,
//   * smoothed-window count and converged-commit fraction per lag,
//   * decode-only latency (the lattice cost rides on top of classification,
//     so it must stay microscopic next to a classify call).
//
// A lag sweep shows the latency/exactness trade; the primary row (lag 6)
// carries the acceptance criteria.  Results go to BENCH_sequence.json
// (override with SIDIS_BENCH_OUT), diffed in CI by check_sequence.py exactly
// like the drift and batch benches.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/hierarchical.hpp"
#include "core/sequence.hpp"
#include "runtime/decoder.hpp"

namespace sidis::bench {
namespace {

constexpr std::uint64_t kSeed = 0x5e9dec0de;

struct LagPoint {
  std::size_t lag = 0;
  double accuracy = 0.0;
  double block_recovery = 0.0;
  double converged_fraction = 0.0;
  std::uint64_t smoothed = 0;
  double decode_ns_per_window = 0.0;
};

struct SequenceBenchRun {
  std::size_t windows = 0;
  std::size_t blocks = 0;
  double argmax_accuracy = 0.0;
  double argmax_block_recovery = 0.0;
  std::vector<LagPoint> lags;
  std::size_t primary_lag = 6;
};

const std::vector<std::size_t>& decode_classes() {
  // Group-1 ALU neighbours (ADD/ADC/CP confuse each other) plus group-4
  // control flow (BRNE/RJMP terminate basic blocks and confuse each other).
  static const std::vector<std::size_t> classes = {
      class_id(avr::Mnemonic::kAdd), class_id(avr::Mnemonic::kAdc),
      class_id(avr::Mnemonic::kCp), class_id(avr::Mnemonic::kBrne),
      class_id(avr::Mnemonic::kRjmp)};
  return classes;
}

/// The firmware-shaped ground truth: three basic blocks in a loop --
///   B1: ADD ADC CP BRNE   (wide add, compare, conditional exit)
///   B2: ADD CP  BRNE      (short iteration guard)
///   B3: ADC ADC RJMP      (carry mop-up, back edge)
std::vector<std::size_t> firmware_truth(std::size_t cycles) {
  const auto cl = [](avr::Mnemonic m) { return class_id(m); };
  const std::vector<std::size_t> cycle = {
      cl(avr::Mnemonic::kAdd), cl(avr::Mnemonic::kAdc), cl(avr::Mnemonic::kCp),
      cl(avr::Mnemonic::kBrne),
      cl(avr::Mnemonic::kAdd), cl(avr::Mnemonic::kCp), cl(avr::Mnemonic::kBrne),
      cl(avr::Mnemonic::kAdc), cl(avr::Mnemonic::kAdc), cl(avr::Mnemonic::kRjmp)};
  std::vector<std::size_t> truth;
  truth.reserve(cycles * cycle.size());
  for (std::size_t i = 0; i < cycles; ++i) {
    truth.insert(truth.end(), cycle.begin(), cycle.end());
  }
  return truth;
}

SequenceBenchRun run_scenario(std::size_t cycles, std::size_t per_class_train) {
  SequenceBenchRun run;

  // -- profile + train -------------------------------------------------------
  sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                    sim::SessionContext::make(0)};
  std::mt19937_64 rng{kSeed};
  core::ProfilingData data;
  for (std::size_t cls : decode_classes()) {
    data.classes[cls] = campaign.capture_class(cls, per_class_train, 3, rng);
  }
  core::HierarchicalConfig cfg;
  cfg.pipeline = core::csa_config();
  cfg.pipeline.pca_components = 10;
  cfg.group_components = 8;
  cfg.instruction_components = 8;
  const auto model = std::make_shared<const core::HierarchicalDisassembler>(
      core::HierarchicalDisassembler::train(data, cfg));

  // -- the firmware stream and the prior its image implies -------------------
  const std::vector<std::size_t> truth = firmware_truth(cycles);
  run.windows = truth.size();
  run.blocks = core::segment_blocks(truth).size();
  core::BigramPrior evidence(avr::num_instruction_classes());
  for (std::size_t i = 1; i < truth.size(); ++i) {
    evidence.add_transition(truth[i - 1], truth[i]);
  }
  const auto prior = std::make_shared<const core::IsaPrior>(evidence);

  sim::TraceSet windows;
  std::mt19937_64 stream_rng{kSeed + 1};
  for (std::size_t i = 0; i < truth.size(); ++i) {
    windows.push_back(campaign.capture_trace(
        avr::random_instance(truth[i], stream_rng, {}),
        sim::ProgramContext::make(static_cast<int>(i % 3)), stream_rng, 0.0));
  }

  // Emissions once (the batch path), decode many times (the lag sweep).
  const std::vector<core::Disassembly> scored =
      model->classify_batch_scored(windows);
  std::vector<std::size_t> argmax_path;
  std::size_t argmax_hits = 0;
  for (std::size_t i = 0; i < scored.size(); ++i) {
    argmax_path.push_back(scored[i].class_idx);
    if (scored[i].class_idx == truth[i]) ++argmax_hits;
  }
  run.argmax_accuracy =
      static_cast<double>(argmax_hits) / static_cast<double>(truth.size());
  run.argmax_block_recovery = core::block_recovery_rate(argmax_path, truth);

  for (const std::size_t lag : {std::size_t{0}, std::size_t{2}, std::size_t{6},
                                std::size_t{16}}) {
    runtime::SequenceDecoderConfig dcfg;
    dcfg.lag = lag;
    runtime::SequenceDecoder decoder(model->posterior_classes(), prior, dcfg);

    std::vector<runtime::SmoothedWindow> out;
    out.reserve(scored.size());
    const auto t0 = std::chrono::steady_clock::now();
    for (const core::Disassembly& w : scored) {
      decoder.push(w);
      while (auto s = decoder.poll()) out.push_back(std::move(*s));
    }
    for (auto& s : decoder.flush()) out.push_back(std::move(s));
    const auto t1 = std::chrono::steady_clock::now();

    LagPoint point;
    point.lag = lag;
    point.smoothed = decoder.smoothed_count();
    point.decode_ns_per_window =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(out.size());
    std::vector<std::size_t> decoded_path;
    std::size_t hits = 0, converged = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      decoded_path.push_back(out[i].value.class_idx);
      if (out[i].value.class_idx == truth[i]) ++hits;
      if (out[i].converged) ++converged;
    }
    point.accuracy = static_cast<double>(hits) / static_cast<double>(out.size());
    point.converged_fraction =
        static_cast<double>(converged) / static_cast<double>(out.size());
    point.block_recovery = core::block_recovery_rate(decoded_path, truth);
    run.lags.push_back(point);
  }
  return run;
}

const LagPoint& primary(const SequenceBenchRun& r) {
  for (const LagPoint& p : r.lags) {
    if (p.lag == r.primary_lag) return p;
  }
  return r.lags.back();
}

void write_json(const SequenceBenchRun& r, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  const LagPoint& p = primary(r);
  const bool decode_ok = p.accuracy > r.argmax_accuracy;
  const bool blocks_ok = p.block_recovery >= r.argmax_block_recovery;
  std::fprintf(f, "{\n  \"bench\": \"sequence_decode\",\n");
  std::fprintf(f,
               "  \"config\": {\"classes\": %zu, \"windows\": %zu, "
               "\"blocks\": %zu, \"primary_lag\": %zu},\n",
               decode_classes().size(), r.windows, r.blocks, r.primary_lag);
  std::fprintf(f,
               "  \"argmax\": {\"accuracy\": %.4f, \"block_recovery\": %.4f},\n",
               r.argmax_accuracy, r.argmax_block_recovery);
  std::fprintf(f, "  \"lags\": [\n");
  for (std::size_t i = 0; i < r.lags.size(); ++i) {
    const LagPoint& q = r.lags[i];
    std::fprintf(f,
                 "    {\"lag\": %zu, \"accuracy\": %.4f, \"block_recovery\": "
                 "%.4f, \"converged_fraction\": %.4f, \"smoothed\": %llu, "
                 "\"decode_ns_per_window\": %.1f}%s\n",
                 q.lag, q.accuracy, q.block_recovery, q.converged_fraction,
                 static_cast<unsigned long long>(q.smoothed),
                 q.decode_ns_per_window, i + 1 < r.lags.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"primary\": {\"lag\": %zu, \"accuracy\": %.4f, "
               "\"block_recovery\": %.4f, \"decode_ns_per_window\": %.1f,\n"
               "              \"criterion_decoded_above_argmax\": %s, "
               "\"criterion_blocks_recovered\": %s}\n}\n",
               p.lag, p.accuracy, p.block_recovery, p.decode_ns_per_window,
               decode_ok ? "true" : "false", blocks_ok ? "true" : "false");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace
}  // namespace sidis::bench

int main() {
  using namespace sidis;
  using namespace sidis::bench;

  print_header("Streaming sequence decoding: basic-block recovery");
  const std::size_t cycles =
      static_cast<std::size_t>(env_int("SIDIS_SEQ_CYCLES", fast_mode() ? 12 : 24));
  const std::size_t per_class = traces_per_class(60);

  const SequenceBenchRun run = run_scenario(cycles, per_class);

  std::printf("\nfirmware: %zu windows in %zu basic blocks (3-block loop body)\n",
              run.windows, run.blocks);
  std::printf("per-window argmax: accuracy %.1f%%, block recovery %.1f%%\n",
              100.0 * run.argmax_accuracy, 100.0 * run.argmax_block_recovery);
  std::printf("\n  %-5s %9s %8s %10s %9s %14s\n", "lag", "accuracy", "blocks",
              "converged", "smoothed", "ns/window");
  for (const LagPoint& p : run.lags) {
    std::printf("  %-5zu %8.1f%% %7.1f%% %9.1f%% %9llu %14.0f\n", p.lag,
                100.0 * p.accuracy, 100.0 * p.block_recovery,
                100.0 * p.converged_fraction,
                static_cast<unsigned long long>(p.smoothed),
                p.decode_ns_per_window);
  }
  const LagPoint& p = primary(run);
  std::printf("\nprimary (lag %zu): accuracy %.1f%% vs argmax %.1f%%, "
              "block recovery %.1f%% vs %.1f%%\n",
              p.lag, 100.0 * p.accuracy, 100.0 * run.argmax_accuracy,
              100.0 * p.block_recovery, 100.0 * run.argmax_block_recovery);

  const char* out = std::getenv("SIDIS_BENCH_OUT");
  write_json(run, out != nullptr && *out != '\0' ? out : "BENCH_sequence.json");
  return 0;
}

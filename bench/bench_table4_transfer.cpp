// Table-4-style cross-device transfer matrix with recalibration budgets.
//
// Every device in a 6-device pool takes a turn as the profiling device; its
// templates then classify field traces from all 6 devices (the diagonal is
// the within-device control).  Two template recipes run side by side:
//
//   * without CSA (Sec. 4 pipeline): loose KL threshold, no per-trace
//     normalization -- collapses off-diagonal;
//   * with CSA (Table 3 "With Norm."): tight threshold + per-trace
//     normalization -- recovers the gain/offset part of the device shift.
//
// What CSA cannot cancel (per-opcode process corners, the decoupling-pole
// spectrum reshape) is attacked with a recalibration budget: K traces/class
// from the deployment device spent on scaler re-centring ("renorm") or on
// re-centring plus a classifier refit over profiling + budget ("refit"),
// sweeping K in {0, 1, 5, 10, 25} -- the accuracy-vs-K curve a field team
// uses to decide how many captures a new device is worth.
//
// The matrix's natural endgame is the multi_device section: instead of one
// profiling device, the whole fleet {dev0..dev4} is profiled -- at the
// nominal acquisition configuration AND a 6-bit variant (config
// augmentation) -- pooled into one template set, and evaluated with NO
// recalibration budget on a corner-sampled device the pool never saw.  The
// pooled model must strictly beat the best budget-matched single-device
// baseline (the zero-shot lift CI gates); its reject gates, calibrated on
// pooled data only, are measured on the same field corpus.
//
// The last act wires the result through the serving stack: the baseline and
// recalibrated template sets are published to a runtime::ModelRegistry, and
// a StreamingDisassembler hot-swaps to the recalibrated version mid-stream
// (RuntimeStats::model_swaps counts the publication).
//
// Results are printed and written to BENCH_transfer.json (override with
// SIDIS_BENCH_OUT); CI diffs the key metrics against a checked-in baseline.
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/transfer.hpp"
#include "runtime/registry.hpp"
#include "runtime/streaming.hpp"

namespace sidis::bench {
namespace {

constexpr int kDevices = 6;

/// Same-group ALU classes (Table 2 group 1): the fine-grained discrimination
/// the hierarchy's level 2 does, where inter-device corners actually bite --
/// a cross-group set (ADD vs LDI vs RJMP) stays separable on any device and
/// would hide the transfer gap.
const std::vector<std::size_t>& eval_classes() {
  static const std::vector<std::size_t> classes = {
      class_id(avr::Mnemonic::kAdd), class_id(avr::Mnemonic::kAdc),
      class_id(avr::Mnemonic::kSub), class_id(avr::Mnemonic::kAnd),
      class_id(avr::Mnemonic::kEor)};
  return classes;
}

core::TransferConfig make_config(bool csa) {
  core::TransferConfig cfg;
  cfg.classes = eval_classes();
  cfg.train_traces_per_class = traces_per_class(100);
  cfg.test_traces_per_class = static_cast<std::size_t>(fast_mode() ? 24 : 40);
  cfg.num_programs = 4;
  cfg.budgets = {0, 1, 5, 10, 25};
  cfg.model.pipeline = csa ? core::csa_config() : core::without_csa_config();
  cfg.model.pipeline.pca_components = 20;
  cfg.model.group_components = 18;
  cfg.model.instruction_components = 18;
  cfg.model.factory.discriminant.shrinkage = 0.15;
  return cfg;
}

struct MatrixStats {
  double diag_mean = 0.0;
  double offdiag_mean = 0.0;
};

MatrixStats matrix_stats(const std::vector<std::vector<double>>& m) {
  MatrixStats s;
  double diag = 0.0, off = 0.0;
  std::size_t n_off = 0;
  for (std::size_t a = 0; a < m.size(); ++a) {
    for (std::size_t b = 0; b < m[a].size(); ++b) {
      if (a == b) {
        diag += m[a][b];
      } else {
        off += m[a][b];
        ++n_off;
      }
    }
  }
  s.diag_mean = diag / static_cast<double>(m.size());
  s.offdiag_mean = n_off == 0 ? 0.0 : off / static_cast<double>(n_off);
  return s;
}

void print_matrix(const char* title, const std::vector<std::vector<double>>& m) {
  std::printf("\n  %s (rows: train device, cols: test device)\n      ", title);
  for (int e = 0; e < kDevices; ++e) std::printf("  dev%-3d", e);
  std::printf("\n");
  for (int d = 0; d < kDevices; ++d) {
    std::printf("  dev%d ", d);
    for (int e = 0; e < kDevices; ++e) std::printf(" %5.1f%%", 100.0 * m[d][e]);
    std::printf("\n");
  }
}

struct HotSwapResult {
  double accuracy_before = 0.0;
  double accuracy_after = 0.0;
  std::uint64_t model_swaps = 0;
  int registry_versions = 0;
};

/// Publishes baseline + recalibrated templates through the model registry
/// and hot-swaps a live streaming engine between them mid-corpus.
HotSwapResult hot_swap_demo(const core::TransferEvaluator& evaluator,
                            int test_device) {
  const core::TransferEvaluator::FieldData fd = evaluator.capture_field(test_device);
  const std::size_t max_budget = evaluator.config().budgets.back();
  core::HierarchicalDisassembler recal = evaluator.recalibrated(
      evaluator.budget_slice(fd.recal_pool, max_budget), core::RecalMode::kRefit);

  const std::filesystem::path root =
      std::filesystem::temp_directory_path() / "sidis-transfer-registry";
  std::filesystem::remove_all(root);
  runtime::ModelRegistry registry(root);
  registry.save("transfer-monitor", evaluator.model());
  registry.save("transfer-monitor", recal);

  // The monitor starts on the profiling templates (v1), then a recalibrated
  // artifact lands in the registry and gets swapped in without stopping the
  // stream.  Loaded models must outlive the engine.
  const core::HierarchicalDisassembler v1 = registry.load("transfer-monitor", 1);
  const core::HierarchicalDisassembler v2 = registry.load("transfer-monitor", 2);

  HotSwapResult out;
  out.registry_versions = registry.latest_version("transfer-monitor");
  runtime::StreamingConfig scfg;
  scfg.workers = 2;
  runtime::StreamingDisassembler engine(v1, scfg);
  const std::size_t half = fd.field.size() / 2;
  std::size_t hits_before = 0, hits_after = 0;

  std::size_t emitted = 0;
  const auto score = [&](const runtime::StreamResult& r) {
    const bool hit =
        r.value.class_idx == fd.field[r.sequence].meta.class_idx;
    if (r.sequence < half) {
      hits_before += hit ? 1 : 0;
    } else {
      hits_after += hit ? 1 : 0;
    }
    ++emitted;
  };
  for (std::size_t i = 0; i < half; ++i) engine.submit(fd.field[i]);
  while (emitted < half) {
    if (const auto r = engine.poll()) {
      score(*r);
    } else {
      std::this_thread::yield();
    }
  }
  engine.swap_model(v2);
  for (std::size_t i = half; i < fd.field.size(); ++i) engine.submit(fd.field[i]);
  for (const runtime::StreamResult& r : engine.drain()) score(r);

  out.accuracy_before = static_cast<double>(hits_before) / static_cast<double>(half);
  out.accuracy_after = static_cast<double>(hits_after) /
                       static_cast<double>(fd.field.size() - half);
  out.model_swaps = engine.stats().model_swaps;
  std::filesystem::remove_all(root);
  return out;
}

/// Fleet-pooled zero-shot transfer: devices {0..4} profiled at nominal +
/// 6-bit acquisition, evaluated on corner-sampled device 7 with no budget.
core::MultiDeviceResult run_multi_device(const core::TransferConfig& cfg_csa,
                                         core::MultiDeviceConfig& md) {
  md.train_devices = {0, 1, 2, 3, 4};
  md.holdout_device = 7;
  md.holdout_corner = true;
  md.configs = {sim::AcquisitionConfig::nominal(),
                sim::AcquisitionConfig::low_resolution(6)};
  md.traces_per_class = static_cast<std::size_t>(fast_mode() ? 24 : 40);
  md.test_traces_per_class = cfg_csa.test_traces_per_class;
  return core::evaluate_multi_device(md, cfg_csa);
}

void write_json(const std::string& path,
                const std::vector<std::vector<double>>& csa,
                const std::vector<std::vector<double>>& nocsa,
                const std::vector<core::BudgetPoint>& curve,
                const HotSwapResult& swap, std::size_t test_per_class,
                const core::MultiDeviceConfig& md,
                const core::MultiDeviceResult& zs) {
  const MatrixStats s_csa = matrix_stats(csa);
  const MatrixStats s_nocsa = matrix_stats(nocsa);
  const double drop_nocsa = s_nocsa.diag_mean - s_nocsa.offdiag_mean;
  const double recovered =
      drop_nocsa <= 0.0
          ? 1.0
          : (s_csa.offdiag_mean - s_nocsa.offdiag_mean) / drop_nocsa;
  bool monotone = true;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    // "Monotone within noise": each budget step may lose at most 3 points
    // to sampling noise, and the full budget must beat no adaptation.
    if (curve[i].renorm_accuracy < curve[i - 1].renorm_accuracy - 0.03) monotone = false;
  }
  if (!curve.empty() &&
      curve.back().renorm_accuracy < curve.front().renorm_accuracy) {
    monotone = false;
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"table4_transfer\",\n");
  std::fprintf(f,
               "  \"config\": {\"devices\": %d, \"classes\": %zu, "
               "\"test_traces_per_class\": %zu},\n",
               kDevices, eval_classes().size(), test_per_class);
  const auto write_matrix = [&](const char* key,
                                const std::vector<std::vector<double>>& m,
                                const char* tail) {
    std::fprintf(f, "  \"%s\": [\n", key);
    for (int d = 0; d < kDevices; ++d) {
      std::fprintf(f, "    [");
      for (int e = 0; e < kDevices; ++e) {
        std::fprintf(f, "%.4f%s", m[d][e], e + 1 < kDevices ? ", " : "");
      }
      std::fprintf(f, "]%s\n", d + 1 < kDevices ? "," : "");
    }
    std::fprintf(f, "  ]%s\n", tail);
  };
  write_matrix("matrix_csa", csa, ",");
  write_matrix("matrix_without_csa", nocsa, ",");
  std::fprintf(f, "  \"summary\": {\n");
  std::fprintf(f, "    \"diag_csa\": %.4f, \"offdiag_csa\": %.4f,\n", s_csa.diag_mean,
               s_csa.offdiag_mean);
  std::fprintf(f, "    \"diag_without_csa\": %.4f, \"offdiag_without_csa\": %.4f,\n",
               s_nocsa.diag_mean, s_nocsa.offdiag_mean);
  std::fprintf(f, "    \"cross_device_drop_without_csa\": %.4f,\n", drop_nocsa);
  std::fprintf(f, "    \"csa_gap_recovered_fraction\": %.4f,\n", recovered);
  std::fprintf(f, "    \"criterion_cross_device_drop\": %s,\n",
               drop_nocsa >= 0.20 ? "true" : "false");
  std::fprintf(f, "    \"criterion_csa_recovery\": %s\n",
               recovered >= 0.5 ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"budget_curve\": [\n");
  for (std::size_t i = 0; i < curve.size(); ++i) {
    std::fprintf(f,
                 "    {\"budget_per_class\": %zu, \"renorm_accuracy\": %.4f, "
                 "\"refit_accuracy\": %.4f}%s\n",
                 curve[i].budget_per_class, curve[i].renorm_accuracy,
                 curve[i].refit_accuracy, i + 1 < curve.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"criterion_curve_monotone\": %s,\n", monotone ? "true" : "false");
  std::fprintf(f, "  \"multi_device\": {\n");
  std::fprintf(f,
               "    \"train_devices\": %zu, \"configs\": %zu, "
               "\"holdout_device\": %d, \"holdout_corner\": true,\n",
               md.train_devices.size(), md.configs.size(), zs.holdout_device);
  std::fprintf(f, "    \"pooled_train_traces\": %zu,\n", zs.pooled_train_traces);
  std::fprintf(f, "    \"pooled_accuracy\": %.4f,\n", zs.pooled_accuracy);
  std::fprintf(f, "    \"pooled_accepted_fraction\": %.4f,\n",
               zs.pooled_accepted_fraction);
  std::fprintf(f, "    \"pooled_flagged_miss_fraction\": %.4f,\n",
               zs.pooled_flagged_miss_fraction);
  std::fprintf(f, "    \"singles\": [\n");
  for (std::size_t i = 0; i < zs.singles.size(); ++i) {
    std::fprintf(f, "      {\"train_device\": %d, \"accuracy\": %.4f}%s\n",
                 zs.singles[i].train_device, zs.singles[i].accuracy,
                 i + 1 < zs.singles.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n");
  std::fprintf(f, "    \"best_single_accuracy\": %.4f,\n", zs.best_single_accuracy);
  std::fprintf(f, "    \"pooled_lift\": %.4f\n", zs.pooled_lift);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"criterion_zero_shot_lift\": %s,\n",
               zs.pooled_lift > 0.0 ? "true" : "false");
  std::fprintf(f,
               "  \"hot_swap\": {\"accuracy_before\": %.4f, \"accuracy_after\": "
               "%.4f, \"model_swaps\": %llu, \"registry_versions\": %d}\n",
               swap.accuracy_before, swap.accuracy_after,
               static_cast<unsigned long long>(swap.model_swaps),
               swap.registry_versions);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace
}  // namespace sidis::bench

int main() {
  using namespace sidis;
  using namespace sidis::bench;

  print_header("Table 4 -- cross-device transfer matrix + recalibration budgets");
  const core::TransferConfig cfg_csa = make_config(/*csa=*/true);
  const core::TransferConfig cfg_nocsa = make_config(/*csa=*/false);
  std::printf("  %d devices, %zu classes, train %zu / test %zu traces per class\n",
              kDevices, cfg_csa.classes.size(), cfg_csa.train_traces_per_class,
              cfg_csa.test_traces_per_class);

  std::vector<std::vector<double>> m_csa(kDevices, std::vector<double>(kDevices, 0.0));
  std::vector<std::vector<double>> m_nocsa(kDevices, std::vector<double>(kDevices, 0.0));
  std::vector<core::BudgetPoint> curve(cfg_csa.budgets.size());
  for (std::size_t i = 0; i < curve.size(); ++i) {
    curve[i].budget_per_class = cfg_csa.budgets[i];
  }
  std::size_t curve_cells = 0;

  HotSwapResult swap;
  for (int train = 0; train < kDevices; ++train) {
    const core::TransferEvaluator eval_csa(train, cfg_csa);
    const core::TransferEvaluator eval_nocsa(train, cfg_nocsa);
    for (int test = 0; test < kDevices; ++test) {
      if (train == 0 && test != 0) {
        // Row 0 doubles as the recalibration-budget sweep (the paper's
        // protocol: one profiling device, many deployment devices).
        const core::TransferCell cell = eval_csa.evaluate(test);
        m_csa[train][test] = cell.baseline_accuracy;
        for (std::size_t i = 0; i < cell.curve.size() && i < curve.size(); ++i) {
          curve[i].renorm_accuracy += cell.curve[i].renorm_accuracy;
          curve[i].refit_accuracy += cell.curve[i].refit_accuracy;
        }
        ++curve_cells;
      } else {
        const auto fd = eval_csa.capture_field(test);
        m_csa[train][test] = eval_csa.accuracy(eval_csa.model(), fd.field);
      }
      const auto fd = eval_nocsa.capture_field(test);
      m_nocsa[train][test] = eval_nocsa.accuracy(eval_nocsa.model(), fd.field);
      std::printf("  train dev%d -> test dev%d: csa %5.1f%%, without %5.1f%%\n",
                  train, test, 100.0 * m_csa[train][test],
                  100.0 * m_nocsa[train][test]);
      std::fflush(stdout);
    }
    if (train == 0) swap = hot_swap_demo(eval_csa, /*test_device=*/1);
  }
  for (core::BudgetPoint& p : curve) {
    p.renorm_accuracy /= static_cast<double>(curve_cells);
    p.refit_accuracy /= static_cast<double>(curve_cells);
  }

  print_matrix("with CSA", m_csa);
  print_matrix("without CSA", m_nocsa);

  const MatrixStats s_csa = matrix_stats(m_csa);
  const MatrixStats s_nocsa = matrix_stats(m_nocsa);
  std::printf("\n  diagonal mean:      csa %5.1f%%, without %5.1f%%\n",
              100.0 * s_csa.diag_mean, 100.0 * s_nocsa.diag_mean);
  std::printf("  off-diagonal mean:  csa %5.1f%%, without %5.1f%%\n",
              100.0 * s_csa.offdiag_mean, 100.0 * s_nocsa.offdiag_mean);

  std::printf("\n  recalibration budget curve (train dev0, mean over dev1..%d):\n",
              kDevices - 1);
  std::printf("  %-18s %10s %10s\n", "budget/class", "renorm", "refit");
  for (const core::BudgetPoint& p : curve) {
    std::printf("  K = %-14zu %9.1f%% %9.1f%%\n", p.budget_per_class,
                100.0 * p.renorm_accuracy, 100.0 * p.refit_accuracy);
  }

  std::printf("\n  registry hot-swap on dev1: %5.1f%% -> %5.1f%% "
              "(swaps: %llu, versions: %d)\n",
              100.0 * swap.accuracy_before, 100.0 * swap.accuracy_after,
              static_cast<unsigned long long>(swap.model_swaps),
              swap.registry_versions);

  std::printf("\n  fleet-pooled zero-shot on corner device (no recal budget):\n");
  core::MultiDeviceConfig md;
  const core::MultiDeviceResult zs = run_multi_device(cfg_csa, md);
  for (const core::SingleDeviceBaseline& s : zs.singles) {
    std::printf("    single dev%-2d             %8.1f%%\n", s.train_device,
                100.0 * s.accuracy);
  }
  std::printf("    pooled (%zu devs x %zu cfgs) %7.1f%%  (lift %+.1f pts, "
              "accepted %.0f%%, flagged-miss %.0f%%)\n",
              md.train_devices.size(), md.configs.size(), 100.0 * zs.pooled_accuracy,
              100.0 * zs.pooled_lift, 100.0 * zs.pooled_accepted_fraction,
              100.0 * zs.pooled_flagged_miss_fraction);

  const char* out = std::getenv("SIDIS_BENCH_OUT");
  write_json(out != nullptr && *out != '\0' ? out : "BENCH_transfer.json", m_csa,
             m_nocsa, curve, swap, cfg_csa.test_traces_per_class, md, zs);
  return 0;
}

// Robustness sweep: accuracy-vs-severity curves per fault kind, with the
// reject option armed.
//
// For every fault kind the bench replays one paired evaluation corpus (same
// per-capture seeds, clean vs faulted) across a severity ladder and reports
//
//   * instruction-level accuracy,
//   * reject / degraded rates,
//   * the fraction of misclassified windows the gates flagged, and
//   * the PR acceptance criterion at severity 1.0: accuracy within 5 points
//     of the paired clean baseline OR >= 90% of misses flagged.
//
// Results are printed as a table and written to BENCH_robustness.json
// (override the path with SIDIS_BENCH_OUT) so the sweep is diffable in CI.
#include <array>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/profiler.hpp"
#include "sim/fault.hpp"

namespace sidis::bench {
namespace {

struct CellResult {
  std::string fault;
  double severity = 0.0;
  double accuracy = 0.0;
  double reject_rate = 0.0;
  double degraded_rate = 0.0;
  double flagged_miss_fraction = 1.0;
  std::size_t windows = 0;
};

struct Sweep {
  double clean_accuracy = 0.0;
  double clean_reject_rate = 0.0;
  std::vector<CellResult> cells;
};

const std::vector<std::size_t>& eval_classes() {
  static const std::vector<std::size_t> classes = {
      class_id(avr::Mnemonic::kAdd), class_id(avr::Mnemonic::kSub),
      class_id(avr::Mnemonic::kLdi), class_id(avr::Mnemonic::kCom),
      class_id(avr::Mnemonic::kRjmp)};
  return classes;
}

core::HierarchicalDisassembler train_model() {
  sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                    sim::SessionContext::make(0)};
  std::mt19937_64 rng{0x0b0b};
  core::ProfilerConfig pcfg;
  pcfg.classes = eval_classes();
  pcfg.traces_per_class = traces_per_class(100);
  pcfg.num_programs = 4;
  pcfg.profile_registers = false;
  const core::ProfilingData data = core::profile_device(campaign, pcfg, rng);

  core::HierarchicalConfig cfg;
  cfg.pipeline = core::csa_config();
  cfg.pipeline.pca_components = 20;
  cfg.group_components = 18;
  cfg.instruction_components = 18;
  cfg.factory.discriminant.shrinkage = 0.15;
  core::HierarchicalDisassembler model = core::HierarchicalDisassembler::train(data, cfg);

  // Monitoring-grade gates (see tests/fault_test.cpp): margin floor at the
  // clean 10% quantile so boundary-straddling windows get flagged.
  core::RejectConfig reject;
  reject.margin_quantile = 0.10;
  reject.score_quantile = 0.06;
  reject.score_slack = 0.25;
  model.calibrate_reject(data, reject);
  return model;
}

/// Classifies one paired evaluation corpus; `profile` empty = clean pass.
CellResult evaluate(const core::HierarchicalDisassembler& model,
                    const sim::FaultProfile& profile, int per_class) {
  const sim::AcquisitionCampaign clean{sim::DeviceModel::make(0),
                                       sim::SessionContext::make(0)};
  sim::AcquisitionCampaign faulted{sim::DeviceModel::make(0),
                                   sim::SessionContext::make(0)};
  if (!profile.empty()) faulted.inject_faults(profile);
  const sim::AcquisitionCampaign& campaign = profile.empty() ? clean : faulted;

  CellResult out;
  out.fault = profile.empty()
                  ? "clean"
                  : (profile.label.empty() ? to_string(profile.faults.front().kind)
                                           : profile.label);
  out.severity = profile.empty() ? 0.0 : profile.severity;
  std::size_t hits = 0, rejected = 0, degraded = 0, misses = 0, miss_flagged = 0;
  for (std::size_t cls : eval_classes()) {
    for (int i = 0; i < per_class; ++i) {
      // Per-capture seed: the same instruction instance and measurement
      // stream at every severity -- the curves differ by the fault alone.
      std::mt19937_64 rng{0xeba1u + cls * 977 + static_cast<std::size_t>(i)};
      const avr::Instruction target = avr::random_instance(cls, rng);
      const sim::Trace t =
          campaign.capture_trace(target, sim::ProgramContext::make(80 + i % 4), rng);
      const core::Disassembly d = model.classify(t);
      ++out.windows;
      if (d.verdict == core::Verdict::kRejected) ++rejected;
      if (d.verdict == core::Verdict::kDegraded) ++degraded;
      if (d.class_idx == cls) {
        ++hits;
      } else {
        ++misses;
        if (d.verdict != core::Verdict::kOk) ++miss_flagged;
      }
    }
  }
  const auto frac = [&](std::size_t n) {
    return static_cast<double>(n) / static_cast<double>(out.windows);
  };
  out.accuracy = frac(hits);
  out.reject_rate = frac(rejected);
  out.degraded_rate = frac(degraded);
  out.flagged_miss_fraction =
      misses == 0 ? 1.0 : static_cast<double>(miss_flagged) / static_cast<double>(misses);
  return out;
}

/// Severity-*schedule* sweep: one corpus whose fault severity ramps linearly
/// from 0 to `max_severity` across the capture index (the drift scenario the
/// runtime monitor is built for), re-arming the injector with scaled(s) per
/// capture.  Results are aggregated per quartile of the ramp so the curve
/// shows degradation tracking the schedule, not one pooled number.
std::vector<CellResult> evaluate_schedule(const core::HierarchicalDisassembler& model,
                                          const sim::FaultProfile& base,
                                          int per_class, double max_severity) {
  sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                    sim::SessionContext::make(0)};
  const std::size_t total = eval_classes().size() * static_cast<std::size_t>(per_class);
  struct Acc {
    std::size_t windows = 0, hits = 0, rejected = 0, degraded = 0, misses = 0,
                miss_flagged = 0;
    double severity_sum = 0.0;
  };
  std::array<Acc, 4> quartiles;
  std::size_t idx = 0;
  for (std::size_t cls : eval_classes()) {
    for (int i = 0; i < per_class; ++i, ++idx) {
      const double s = max_severity * static_cast<double>(idx) /
                       static_cast<double>(total - 1);
      const sim::FaultProfile armed = base.scaled(s);
      if (armed.empty()) {
        campaign.clear_faults();
      } else {
        campaign.inject_faults(armed);
      }
      std::mt19937_64 rng{0xeba1u + cls * 977 + static_cast<std::size_t>(i)};
      const avr::Instruction target = avr::random_instance(cls, rng);
      const sim::Trace t =
          campaign.capture_trace(target, sim::ProgramContext::make(80 + i % 4), rng);
      const core::Disassembly d = model.classify(t);
      Acc& q = quartiles[std::min<std::size_t>(3, idx * 4 / total)];
      ++q.windows;
      q.severity_sum += s;
      if (d.verdict == core::Verdict::kRejected) ++q.rejected;
      if (d.verdict == core::Verdict::kDegraded) ++q.degraded;
      if (d.class_idx == cls) {
        ++q.hits;
      } else {
        ++q.misses;
        if (d.verdict != core::Verdict::kOk) ++q.miss_flagged;
      }
    }
  }
  std::vector<CellResult> out;
  for (const Acc& q : quartiles) {
    CellResult c;
    c.fault = base.label.empty() ? "schedule" : base.label;
    c.severity = q.windows == 0 ? 0.0 : q.severity_sum / static_cast<double>(q.windows);
    c.windows = q.windows;
    const auto frac = [&](std::size_t n) {
      return q.windows == 0 ? 0.0 : static_cast<double>(n) / static_cast<double>(q.windows);
    };
    c.accuracy = frac(q.hits);
    c.reject_rate = frac(q.rejected);
    c.degraded_rate = frac(q.degraded);
    c.flagged_miss_fraction = q.misses == 0 ? 1.0
                                            : static_cast<double>(q.miss_flagged) /
                                                  static_cast<double>(q.misses);
    out.push_back(c);
  }
  return out;
}

void write_json(const Sweep& sweep, const std::vector<CellResult>& compounds,
                const std::vector<std::vector<CellResult>>& schedules,
                const std::string& path, int per_class) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"robustness\",\n");
  std::fprintf(f, "  \"config\": {\"classes\": %zu, \"windows_per_cell\": %zu,\n",
               eval_classes().size(), eval_classes().size() * static_cast<std::size_t>(per_class));
  std::fprintf(f,
               "             \"reject\": {\"margin_quantile\": 0.10, "
               "\"score_quantile\": 0.06, \"score_slack\": 0.25}},\n");
  std::fprintf(f, "  \"clean\": {\"accuracy\": %.4f, \"reject_rate\": %.4f},\n",
               sweep.clean_accuracy, sweep.clean_reject_rate);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
    const CellResult& c = sweep.cells[i];
    const bool pass = c.severity != 1.0 || c.accuracy >= sweep.clean_accuracy - 0.05 ||
                      c.flagged_miss_fraction >= 0.9;
    std::fprintf(f,
                 "    {\"fault\": \"%s\", \"severity\": %.2f, \"accuracy\": %.4f, "
                 "\"reject_rate\": %.4f, \"degraded_rate\": %.4f, "
                 "\"flagged_miss_fraction\": %.4f, \"criterion_pass\": %s}%s\n",
                 c.fault.c_str(), c.severity, c.accuracy, c.reject_rate, c.degraded_rate,
                 c.flagged_miss_fraction, pass ? "true" : "false",
                 i + 1 < sweep.cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"compounds\": [\n");
  for (std::size_t i = 0; i < compounds.size(); ++i) {
    const CellResult& c = compounds[i];
    // Compound criterion is stricter: silent wrong answers are unacceptable
    // under co-occurring faults, so >= 90% of misses must carry a flag.
    const bool pass = c.severity != 1.0 || c.flagged_miss_fraction >= 0.9;
    std::fprintf(f,
                 "    {\"scenario\": \"%s\", \"severity\": %.2f, \"accuracy\": %.4f, "
                 "\"reject_rate\": %.4f, \"degraded_rate\": %.4f, "
                 "\"flagged_miss_fraction\": %.4f, \"criterion_pass\": %s}%s\n",
                 c.fault.c_str(), c.severity, c.accuracy, c.reject_rate, c.degraded_rate,
                 c.flagged_miss_fraction, pass ? "true" : "false",
                 i + 1 < compounds.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"schedules\": [\n");
  for (std::size_t s = 0; s < schedules.size(); ++s) {
    std::fprintf(f, "    {\"scenario\": \"%s\", \"quartiles\": [\n",
                 schedules[s].empty() ? "?" : schedules[s].front().fault.c_str());
    for (std::size_t q = 0; q < schedules[s].size(); ++q) {
      const CellResult& c = schedules[s][q];
      std::fprintf(f,
                   "      {\"mean_severity\": %.3f, \"accuracy\": %.4f, "
                   "\"reject_rate\": %.4f, \"flagged_miss_fraction\": %.4f}%s\n",
                   c.severity, c.accuracy, c.reject_rate, c.flagged_miss_fraction,
                   q + 1 < schedules[s].size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", s + 1 < schedules.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace
}  // namespace sidis::bench

int main() {
  using namespace sidis;
  using namespace sidis::bench;

  print_header("Robustness sweep: accuracy vs fault severity (reject option armed)");
  const int per_class = fast_mode() ? 6 : env_int("SIDIS_EVAL_PER_CLASS", 15);
  const std::vector<double> severities = {0.25, 0.5, 1.0, 1.5, 2.0};

  const core::HierarchicalDisassembler model = train_model();

  Sweep sweep;
  const CellResult clean = evaluate(model, sim::FaultProfile{}, per_class);
  sweep.clean_accuracy = clean.accuracy;
  sweep.clean_reject_rate = clean.reject_rate;
  std::printf("\nclean baseline: accuracy %.1f%%, reject rate %.1f%% (%zu windows)\n",
              100.0 * clean.accuracy, 100.0 * clean.reject_rate, clean.windows);
  std::printf("\n  %-16s %9s %9s %9s %9s %14s\n", "fault", "severity", "accuracy",
              "rejected", "degraded", "flagged-misses");

  for (sim::FaultKind kind : sim::all_fault_kinds()) {
    for (double severity : severities) {
      const CellResult c =
          evaluate(model, sim::FaultProfile::single(kind, severity), per_class);
      sweep.cells.push_back(c);
      std::printf("  %-16s %8.2fx %8.1f%% %8.1f%% %8.1f%% %13.1f%%\n", c.fault.c_str(),
                  c.severity, 100.0 * c.accuracy, 100.0 * c.reject_rate,
                  100.0 * c.degraded_rate, 100.0 * c.flagged_miss_fraction);
    }
  }

  // Compound ladder: the three named co-occurring failure clusters.
  std::printf("\ncompound scenarios:\n");
  std::printf("  %-20s %9s %9s %9s %9s %14s\n", "scenario", "severity", "accuracy",
              "rejected", "degraded", "flagged-misses");
  std::vector<CellResult> compounds;
  for (double severity : severities) {
    for (const sim::FaultProfile& profile : sim::FaultProfile::named_compounds(severity)) {
      const CellResult c = evaluate(model, profile, per_class);
      compounds.push_back(c);
      std::printf("  %-20s %8.2fx %8.1f%% %8.1f%% %8.1f%% %13.1f%%\n", c.fault.c_str(),
                  c.severity, 100.0 * c.accuracy, 100.0 * c.reject_rate,
                  100.0 * c.degraded_rate, 100.0 * c.flagged_miss_fraction);
    }
  }

  // Severity schedules: each compound ramped 0 -> 2x across one corpus.
  std::printf("\nseverity schedules (0 -> 2.0 ramp, per-quartile):\n");
  std::printf("  %-20s %12s %9s %9s %14s\n", "scenario", "mean-severity", "accuracy",
              "rejected", "flagged-misses");
  std::vector<std::vector<CellResult>> schedules;
  for (const sim::FaultProfile& profile : sim::FaultProfile::named_compounds(1.0)) {
    schedules.push_back(evaluate_schedule(model, profile, per_class, 2.0));
    for (const CellResult& c : schedules.back()) {
      std::printf("  %-20s %11.2fx %8.1f%% %8.1f%% %13.1f%%\n", c.fault.c_str(),
                  c.severity, 100.0 * c.accuracy, 100.0 * c.reject_rate,
                  100.0 * c.flagged_miss_fraction);
    }
  }

  // Acceptance-criterion summary at default severity.
  std::printf("\ncriterion at severity 1.0 (accuracy within 5 points of clean %.1f%% "
              "or >= 90%% of misses flagged):\n",
              100.0 * sweep.clean_accuracy);
  for (const CellResult& c : sweep.cells) {
    if (c.severity != 1.0) continue;
    const bool pass =
        c.accuracy >= sweep.clean_accuracy - 0.05 || c.flagged_miss_fraction >= 0.9;
    std::printf("  %-16s %s (accuracy %.1f%%, flagged %.1f%%)\n", c.fault.c_str(),
                pass ? "PASS" : "FAIL", 100.0 * c.accuracy,
                100.0 * c.flagged_miss_fraction);
  }
  std::printf("\ncompound criterion at severity 1.0 (>= 90%% of misses flagged):\n");
  for (const CellResult& c : compounds) {
    if (c.severity != 1.0) continue;
    std::printf("  %-20s %s (flagged %.1f%%)\n", c.fault.c_str(),
                c.flagged_miss_fraction >= 0.9 ? "PASS" : "FAIL",
                100.0 * c.flagged_miss_fraction);
  }

  const char* out = std::getenv("SIDIS_BENCH_OUT");
  write_json(sweep, compounds, schedules,
             out != nullptr && *out != '\0' ? out : "BENCH_robustness.json", per_class);
  return 0;
}

#!/usr/bin/env bash
# Runs the CWT/pipeline throughput benchmarks in JSON mode and compares the
# result against the checked-in baseline (bench/BENCH_cwt.json), so every PR
# leaves a perf trajectory behind.
#
# Usage:
#   bench/run_benchmarks.sh                  # run + print ratio vs. baseline
#   bench/run_benchmarks.sh --update         # run + overwrite the baseline
#   bench/run_benchmarks.sh fusion           # SIDIS_FAST fusion run, diffed
#                                            # against bench/BENCH_fusion.json
#   bench/run_benchmarks.sh fusion --update  # full-scale fusion run, then
#                                            # overwrite the fusion baseline
#
# Environment:
#   BUILD_DIR   build tree holding bench/bench_throughput (default: ./build)
#   FILTER      --benchmark_filter regex (default: the CWT/feature cases)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
BIN="$BUILD/bench/bench_throughput"
BASELINE="$ROOT/bench/BENCH_cwt.json"
FILTER="${FILTER:-Cwt|FeatureExtraction|PipelineTransform}"

# -- fusion workload ----------------------------------------------------------
# The multimodal power+EM accuracy workload: a reduced run gated against the
# checked-in baseline, or (--update) a full-scale Release run that becomes
# the new baseline the CI coverage job diffs against.
if [[ "${1:-}" == "fusion" ]]; then
  FBIN="$BUILD/bench/bench_fusion"
  FBASE="$ROOT/bench/BENCH_fusion.json"
  if [[ ! -x "$FBIN" ]]; then
    echo "error: $FBIN not found -- build it first:" >&2
    echo "  cmake -B $BUILD && cmake --build $BUILD -j --target bench_fusion" >&2
    exit 1
  fi
  if [[ "${2:-}" == "--update" ]]; then
    BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:STRING=//p' "$BUILD/CMakeCache.txt")"
    case "$BUILD_TYPE" in
      Release|RelWithDebInfo|MinSizeRel) ;;
      *)
        echo "error: refusing --update from a '$BUILD_TYPE' build." >&2
        echo "  rebuild with -DCMAKE_BUILD_TYPE=Release and re-run." >&2
        exit 1
        ;;
    esac
    SIDIS_BENCH_OUT="$FBASE" "$FBIN"
    echo "baseline updated: $FBASE (build type: $BUILD_TYPE)"
    exit 0
  fi
  FOUT="$(mktemp /tmp/bench_fusion.XXXXXX.json)"
  trap 'rm -f "$FOUT"' EXIT
  SIDIS_FAST=1 SIDIS_BENCH_OUT="$FOUT" "$FBIN"
  python3 "$ROOT/bench/check_fusion.py" "$FOUT" "$FBASE"
  exit $?
fi

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found -- build it first:" >&2
  echo "  cmake -B $BUILD && cmake --build $BUILD -j --target bench_throughput" >&2
  exit 1
fi

OUT="$(mktemp /tmp/bench_cwt.XXXXXX.json)"
trap 'rm -f "$OUT"' EXIT

"$BIN" --benchmark_filter="$FILTER" \
       --benchmark_format=json \
       --benchmark_out="$OUT" \
       --benchmark_out_format=json >/dev/null

if [[ "${1:-}" == "--update" ]]; then
  # Refuse to record a baseline from an unoptimized binary: a debug-build
  # baseline makes every later optimized run look like a huge win and hides
  # real regressions.  bench_throughput stamps its own compile-time build
  # type into the JSON context (the libbenchmark `build_type` field reports
  # how the LIBRARY was built, which is useless here).
  BUILD_TYPE="$(python3 -c 'import json,sys
print(json.load(open(sys.argv[1])).get("context", {}).get("sidis_build_type", "unknown"))' "$OUT")"
  case "$BUILD_TYPE" in
    Release|RelWithDebInfo|MinSizeRel) ;;
    *)
      echo "error: refusing --update from a '$BUILD_TYPE' build." >&2
      echo "  rebuild with -DCMAKE_BUILD_TYPE=Release and re-run." >&2
      exit 1
      ;;
  esac
  cp "$OUT" "$BASELINE"
  echo "baseline updated: $BASELINE (build type: $BUILD_TYPE)"
  exit 0
fi

if [[ ! -f "$BASELINE" ]]; then
  echo "no baseline at $BASELINE -- run with --update to create it" >&2
  exit 1
fi

python3 - "$BASELINE" "$OUT" <<'EOF'
import json, sys

def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {b["name"]: b["cpu_time"] for b in doc["benchmarks"]
            if b.get("run_type", "iteration") == "iteration"}

base, cur = load(sys.argv[1]), load(sys.argv[2])
width = max(len(n) for n in cur) if cur else 10
print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
regressed = []
for name, t in cur.items():
    b = base.get(name)
    if b is None:
        print(f"{name:<{width}}  {'--':>12}  {t:>10.0f}ns   new")
        continue
    ratio = t / b
    print(f"{name:<{width}}  {b:>10.0f}ns  {t:>10.0f}ns  {ratio:5.2f}x")
    # Single-run microbenchmarks on a shared box jitter by tens of percent;
    # only flag clear regressions.
    if ratio > 1.5:
        regressed.append(name)
if regressed:
    print("\npossible regressions (>1.5x baseline): " + ", ".join(regressed))
    sys.exit(1)
EOF

// Acquisition-configuration sweep: what does a cheaper scope actually cost?
//
// The paper profiles at one nominal configuration (2.5 GS/s, 8-bit, full
// analog front end).  This bench sweeps the acquisition bundle -- sample
// rate, ADC resolution -- over sim::AcquisitionConfig::standard_sweep(),
// re-profiles and re-trains the hierarchical disassembler at every corner,
// and records the accuracy-vs-cost frontier, where cost = samples per
// window x ADC bits, the byte budget a capture card spends per window.
//
// Three things are gated in CI (check_acqsweep.py):
//
//   * the frontier is monotone within noise: paying more never buys less
//     accuracy (a cheaper corner may tie -- the sweep's classes stay
//     separable well below nominal -- but must never *win* materially);
//   * the nominal sweep entry is a bit-exact identity: traces captured
//     through the acquisition-configured constructor equal the legacy
//     campaign's sample for sample, so the whole sweep machinery is proven
//     not to perturb the paper's baseline numbers;
//   * config-augmented zero-shot transfer: a corpus pooled over devices AND
//     acquisition configs, evaluated on an unseen corner-sampled device with
//     no recalibration budget, must strictly beat the best budget-matched
//     single-device baseline (the multi_device section; the full fleet-scale
//     variant lives in bench_table4_transfer).
//
// SIDIS_FAST=1 shrinks the task to two classes per group (16 classes) and a
// four-device pool; results go to BENCH_acqsweep.json (override with
// SIDIS_BENCH_OUT).
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/csa.hpp"
#include "core/hierarchical.hpp"
#include "core/transfer.hpp"
#include "features/pipeline.hpp"
#include "sim/acq_config.hpp"

namespace sidis::bench {
namespace {

constexpr std::uint64_t kSeed = 0xacc59e7;

std::vector<std::size_t> bench_classes() {
  std::vector<std::size_t> classes;
  for (int g = 1; g <= 8; ++g) {
    const auto cls = avr::classes_in_group(g);
    if (fast_mode()) {
      classes.push_back(cls.front());
      classes.push_back(cls.back());
    } else {
      classes.insert(classes.end(), cls.begin(), cls.end());
    }
  }
  return classes;
}

core::HierarchicalConfig model_recipe(double samples_per_cycle) {
  core::HierarchicalConfig cfg;
  cfg.pipeline = features::configured_for(core::csa_config(), samples_per_cycle);
  cfg.pipeline.pca_components = 20;
  cfg.group_components = 18;
  cfg.instruction_components = 18;
  cfg.factory.discriminant.shrinkage = 0.15;
  return cfg;
}

struct FrontierPoint {
  sim::AcquisitionConfig acq;
  double accuracy = 0.0;
};

/// Profile -> train -> evaluate the full class set at one acquisition
/// corner.  Each corner reseeds identically, so corners differ only by the
/// acquisition chain, never by draw order.
FrontierPoint run_corner(const sim::AcquisitionConfig& acq,
                         const std::vector<std::size_t>& classes,
                         std::size_t train_per_class, std::size_t eval_per_class) {
  const sim::AcquisitionCampaign campaign{sim::DeviceModel::make(0),
                                          sim::SessionContext::make(0), acq};
  std::mt19937_64 rng{kSeed};
  core::ProfilingData data;
  for (std::size_t cls : classes) {
    data.classes[cls] = campaign.capture_class(cls, train_per_class, 3, rng);
  }
  const core::HierarchicalDisassembler model = core::HierarchicalDisassembler::train(
      data, model_recipe(acq.samples_per_cycle));

  FrontierPoint point;
  point.acq = acq;
  std::size_t windows = 0, hits = 0;
  for (std::size_t cls : classes) {
    for (const sim::Trace& t : campaign.capture_class(cls, eval_per_class, 3, rng)) {
      ++windows;
      if (model.classify(t).class_idx == cls) ++hits;
    }
  }
  point.accuracy = static_cast<double>(hits) / static_cast<double>(windows);
  return point;
}

/// The nominal entry's identity proof: the acquisition-configured campaign
/// must reproduce the legacy constructor's captures bit for bit.
bool nominal_is_bit_identical(const std::vector<std::size_t>& classes) {
  const sim::AcquisitionCampaign legacy{sim::DeviceModel::make(0),
                                        sim::SessionContext::make(0)};
  const sim::AcquisitionCampaign configured{sim::DeviceModel::make(0),
                                            sim::SessionContext::make(0),
                                            sim::AcquisitionConfig::nominal()};
  std::mt19937_64 rng_a{kSeed + 1}, rng_b{kSeed + 1};
  for (std::size_t i = 0; i < 3 && i < classes.size(); ++i) {
    const sim::TraceSet a = legacy.capture_class(classes[i], 4, 2, rng_a);
    const sim::TraceSet b = configured.capture_class(classes[i], 4, 2, rng_b);
    if (a.size() != b.size()) return false;
    for (std::size_t t = 0; t < a.size(); ++t) {
      if (a[t].samples != b[t].samples) return false;
    }
  }
  return true;
}

core::MultiDeviceResult run_zero_shot(core::MultiDeviceConfig& md) {
  md.train_devices = fast_mode() ? std::vector<int>{0, 1, 2, 3}
                                 : std::vector<int>{0, 1, 2, 3, 4};
  md.holdout_device = 7;
  md.holdout_corner = true;
  // Config augmentation on one sample grid: resolution variants teach the
  // templates which fine-amplitude detail is device furniture.  Rate sweeps
  // change the grid and train per-rate models (the frontier above).
  md.configs = {sim::AcquisitionConfig::nominal(),
                sim::AcquisitionConfig::low_resolution(6)};
  md.traces_per_class = static_cast<std::size_t>(fast_mode() ? 24 : 40);
  md.test_traces_per_class = static_cast<std::size_t>(fast_mode() ? 20 : 40);

  core::TransferConfig base;
  // Same-group ALU classes: fine-grained level-2 discrimination is where
  // device corners bite; a cross-group set would hide the single-device gap.
  base.classes = {class_id(avr::Mnemonic::kAdd), class_id(avr::Mnemonic::kAdc),
                  class_id(avr::Mnemonic::kSub), class_id(avr::Mnemonic::kAnd),
                  class_id(avr::Mnemonic::kEor)};
  base.num_programs = 4;
  base.model = model_recipe(md.configs.front().samples_per_cycle);
  base.seed = kSeed + 2;
  return core::evaluate_multi_device(md, base);
}

void write_json(const std::string& path, const std::vector<FrontierPoint>& frontier,
                bool frontier_monotone, bool nominal_identity,
                const core::MultiDeviceConfig& md, const core::MultiDeviceResult& zs,
                std::size_t num_classes, std::size_t train_per_class,
                std::size_t eval_per_class) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"acqsweep\",\n");
  std::fprintf(f,
               "  \"config\": {\"classes\": %zu, \"train_per_class\": %zu, "
               "\"eval_per_class\": %zu},\n",
               num_classes, train_per_class, eval_per_class);
  std::fprintf(f, "  \"frontier\": [\n");
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const sim::AcquisitionConfig& acq = frontier[i].acq;
    std::fprintf(f,
                 "    {\"label\": \"%s\", \"samples_per_cycle\": %.4f, "
                 "\"adc_bits\": %d, \"window_samples\": %zu, \"cost\": %.0f, "
                 "\"accuracy\": %.4f}%s\n",
                 acq.label.c_str(), acq.samples_per_cycle, acq.adc_bits,
                 acq.window_samples(), acq.cost(), frontier[i].accuracy,
                 i + 1 < frontier.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"criterion_frontier_monotone\": %s,\n",
               frontier_monotone ? "true" : "false");
  std::fprintf(f, "  \"criterion_nominal_identity\": %s,\n",
               nominal_identity ? "true" : "false");
  std::fprintf(f, "  \"multi_device\": {\n");
  std::fprintf(f,
               "    \"train_devices\": %zu, \"configs\": %zu, "
               "\"holdout_device\": %d, \"holdout_corner\": true,\n",
               md.train_devices.size(), md.configs.size(), zs.holdout_device);
  std::fprintf(f, "    \"pooled_train_traces\": %zu,\n", zs.pooled_train_traces);
  std::fprintf(f, "    \"pooled_accuracy\": %.4f,\n", zs.pooled_accuracy);
  std::fprintf(f, "    \"pooled_accepted_fraction\": %.4f,\n",
               zs.pooled_accepted_fraction);
  std::fprintf(f, "    \"pooled_flagged_miss_fraction\": %.4f,\n",
               zs.pooled_flagged_miss_fraction);
  std::fprintf(f, "    \"singles\": [\n");
  for (std::size_t i = 0; i < zs.singles.size(); ++i) {
    std::fprintf(f, "      {\"train_device\": %d, \"accuracy\": %.4f}%s\n",
                 zs.singles[i].train_device, zs.singles[i].accuracy,
                 i + 1 < zs.singles.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n");
  std::fprintf(f, "    \"best_single_accuracy\": %.4f,\n", zs.best_single_accuracy);
  std::fprintf(f, "    \"pooled_lift\": %.4f\n", zs.pooled_lift);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"criterion_zero_shot_lift\": %s\n",
               zs.pooled_lift > 0.0 ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace
}  // namespace sidis::bench

int main() {
  using namespace sidis;
  using namespace sidis::bench;

  print_header("Acquisition-configuration sweep -- accuracy vs capture cost");
  const std::vector<std::size_t> classes = bench_classes();
  const std::size_t train_per_class = traces_per_class(120);
  const std::size_t eval_per_class = static_cast<std::size_t>(fast_mode() ? 15 : 30);
  std::printf("  %zu classes, train %zu / eval %zu traces per class\n",
              classes.size(), train_per_class, eval_per_class);

  const bool nominal_identity = nominal_is_bit_identical(classes);
  std::printf("  nominal config bit-identity vs legacy campaign: %s\n",
              nominal_identity ? "EXACT" : "BROKEN");

  std::vector<FrontierPoint> frontier;
  std::printf("\n  %-18s %8s %6s %8s %9s\n", "config", "spc", "bits", "cost",
              "accuracy");
  for (const sim::AcquisitionConfig& acq : sim::AcquisitionConfig::standard_sweep()) {
    frontier.push_back(run_corner(acq, classes, train_per_class, eval_per_class));
    std::printf("  %-18s %8.2f %6d %8.0f %8.1f%%\n", acq.label.c_str(),
                acq.samples_per_cycle, acq.adc_bits, acq.cost(),
                100.0 * frontier.back().accuracy);
    std::fflush(stdout);
  }
  // Monotone within noise along descending cost: a cheaper corner may tie
  // but must not beat a richer one by more than sampling jitter.
  bool frontier_monotone = true;
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    if (frontier[i].accuracy > frontier[i - 1].accuracy + 0.03) {
      frontier_monotone = false;
    }
  }
  std::printf("  frontier monotone within noise: %s\n",
              frontier_monotone ? "yes" : "NO");

  std::printf("\n  config-augmented zero-shot transfer to an unseen corner device\n");
  core::MultiDeviceConfig md;
  const core::MultiDeviceResult zs = run_zero_shot(md);
  for (const core::SingleDeviceBaseline& s : zs.singles) {
    std::printf("    single dev%-2d             %8.1f%%\n", s.train_device,
                100.0 * s.accuracy);
  }
  std::printf("    pooled (%zu devs x %zu cfgs) %7.1f%%  (lift %+.1f pts, "
              "accepted %.0f%%, flagged-miss %.0f%%)\n",
              md.train_devices.size(), md.configs.size(), 100.0 * zs.pooled_accuracy,
              100.0 * zs.pooled_lift, 100.0 * zs.pooled_accepted_fraction,
              100.0 * zs.pooled_flagged_miss_fraction);

  const char* out = std::getenv("SIDIS_BENCH_OUT");
  write_json(out != nullptr && *out != '\0' ? out : "BENCH_acqsweep.json", frontier,
             frontier_monotone, nominal_identity, md, zs, classes.size(),
             train_per_class, eval_per_class);
  return 0;
}

// Shared helpers for the experiment benches: environment-variable scaling,
// table formatting, and canned acquisition setups.
//
// Every bench prints the paper row/series it reproduces next to the measured
// value.  Absolute numbers differ from the paper (our substrate is a
// simulator, not the authors' bench); the *shape* -- who wins, where curves
// saturate, how hard the no-CSA case fails -- is the reproduction target.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "avr/grouping.hpp"
#include "sim/acquisition.hpp"

namespace sidis::bench {

/// Integer environment override with default (e.g. SIDIS_TRACES_PER_CLASS).
inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

/// SIDIS_FAST=1 shrinks every bench to a smoke-test scale.
inline bool fast_mode() { return env_int("SIDIS_FAST", 0) != 0; }

/// Default traces per class, scaled down from the paper's 3000 so the whole
/// harness runs in minutes; override with SIDIS_TRACES_PER_CLASS.
inline std::size_t traces_per_class(int fallback = 200) {
  const int v = env_int("SIDIS_TRACES_PER_CLASS", fast_mode() ? 60 : fallback);
  return static_cast<std::size_t>(v < 10 ? 10 : v);
}

/// Prints a separator + centred title.
inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Prints one "paper vs measured" line.
inline void print_row(const std::string& label, double paper_pct, double measured_pct) {
  std::printf("  %-28s paper: %6.2f%%   measured: %6.2f%%\n", label.c_str(), paper_pct,
              measured_pct);
}

/// Class index of a mnemonic (profiled classes only).
inline std::size_t class_id(avr::Mnemonic m, avr::AddrMode mode = avr::AddrMode::kNone) {
  return *avr::class_index(m, mode);
}

}  // namespace sidis::bench

#include "core/csa.hpp"
#include "features/pipeline.hpp"
#include "ml/factory.hpp"

namespace sidis::bench {

/// Runs the Fig.-5-style sweep: fit the feature pipeline once at the maximum
/// component count, then for each (classifier, #components) point truncate
/// the projected datasets and refit the classifier.  Prints one row per
/// classifier.  Returns the SR matrix [classifier][component point].
inline std::vector<std::vector<double>> sweep_components(
    const features::LabeledTraces& train_input, const features::LabeledTraces& test_input,
    features::PipelineConfig cfg, const std::vector<std::size_t>& components,
    double svm_gamma = 0.0) {
  cfg.pca_components = components.back();
  const auto pipeline = features::FeaturePipeline::fit(train_input, cfg);
  const ml::Dataset train_full = pipeline.transform(train_input);
  const ml::Dataset test_full = pipeline.transform(test_input);
  const std::size_t max_k = pipeline.max_components();

  std::printf("  selected %zu feature points; PCA yields %zu usable components\n",
              pipeline.unified_points().size(), max_k);
  std::printf("  %-12s", "classifier");
  for (std::size_t k : components) std::printf("  k=%-4zu", std::min(k, max_k));
  std::printf("\n");

  std::vector<std::vector<double>> sr;
  for (ml::ClassifierKind kind : ml::kPaperSweep) {
    std::printf("  %-12s", ml::to_string(kind).c_str());
    std::vector<double> row;
    for (std::size_t k : components) {
      const std::size_t kk = std::min(k, max_k);
      ml::FactoryConfig fc;
      fc.discriminant.shrinkage = 0.15;  // small-corpus stabilization
      fc.svm.gamma = svm_gamma;
      fc.svm.c = 10.0;
      auto clf = ml::make_classifier(kind, fc);
      clf->fit(train_full.truncated(kk));
      row.push_back(clf->accuracy(test_full.truncated(kk)));
      std::printf("  %5.1f%%", 100.0 * row.back());
      std::fflush(stdout);
    }
    std::printf("\n");
    sr.push_back(std::move(row));
  }
  return sr;
}

}  // namespace sidis::bench

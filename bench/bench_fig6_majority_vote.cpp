// Fig. 6: SR of the 1st-group instructions, majority-voting method vs the
// general method, as a function of the number of variables.
//
// Paper: with only 3 variables, majority voting reaches 82.25% (LDA),
// 83.22% (QDA), 85% (SVM) and 82.02% (NB) while the general method is far
// lower; SVM with 9 variables reaches 95.2%.  The point (Sec. 5.4): per-pair
// feature spaces let the variable count -- and hence the required scope
// sampling rate -- shrink drastically.
#include "bench/common.hpp"

#include "core/majority_vote.hpp"

using namespace sidis;

int main() {
  bench::print_header("Fig. 6 -- majority voting vs general method (group 1)");
  std::mt19937_64 rng(static_cast<std::uint64_t>(bench::env_int("SIDIS_SEED", 6)));

  const sim::AcquisitionCampaign campaign(sim::DeviceModel::make(0),
                                          sim::SessionContext::make(0));

  auto g1 = avr::classes_in_group(1);
  if (bench::fast_mode()) g1.resize(6);
  const std::size_t n_train = bench::traces_per_class(200);
  const std::size_t n_test = std::max<std::size_t>(n_train / 5, 20);

  std::vector<sim::TraceSet> train_sets, test_sets;
  features::LabeledTraces train_input, test_input;
  for (std::size_t cls : g1) {
    train_sets.push_back(campaign.capture_class(cls, n_train, 10, rng));
    test_sets.push_back(campaign.capture_class(cls, n_test, 10, rng));
  }
  for (std::size_t i = 0; i < g1.size(); ++i) {
    train_input.labels.push_back(static_cast<int>(g1[i]));
    train_input.sets.push_back(&train_sets[i]);
    test_input.labels.push_back(static_cast<int>(g1[i]));
    test_input.sets.push_back(&test_sets[i]);
  }
  std::printf("  %zu classes, %zu train + %zu test traces per class\n\n", g1.size(),
              n_train, n_test);

  const std::vector<std::size_t> vars = bench::fast_mode()
                                            ? std::vector<std::size_t>{3, 9}
                                            : std::vector<std::size_t>{3, 5, 7, 9, 11};

  // --- general method: unified-DNVP pipeline truncated to few components ---
  std::printf("  general method (unified DNVP -> PCA):\n");
  bench::sweep_components(train_input, test_input, core::csa_config(), vars);

  // --- majority voting: per-pair pipelines, per-pair PCA ---
  std::printf("\n  majority-voting method (per-pair DNVP -> per-pair PCA):\n");
  std::printf("  %-12s", "classifier");
  for (std::size_t v : vars) std::printf("  k=%-4zu", v);
  std::printf("\n");
  for (ml::ClassifierKind kind : ml::kPaperSweep) {
    std::printf("  %-12s", ml::to_string(kind).c_str());
    for (std::size_t v : vars) {
      core::MajorityVoteConfig cfg;
      cfg.pipeline = core::csa_config();
      cfg.pipeline.points_per_pair = std::max<std::size_t>(v, 5);
      cfg.pipeline.pca_components = v;
      cfg.classifier = kind;
      cfg.factory.discriminant.shrinkage = 0.15;
      cfg.factory.svm.gamma = 0.5;
      cfg.factory.svm.c = 10.0;
      const auto voter = core::MajorityVoteClassifier::train(train_input, cfg);
      std::size_t hits = 0, total = 0;
      for (std::size_t i = 0; i < test_input.sets.size(); ++i) {
        for (const sim::Trace& t : *test_input.sets[i]) {
          hits += voter.predict(t) == test_input.labels[i] ? 1 : 0;
          ++total;
        }
      }
      std::printf("  %5.1f%%", 100.0 * static_cast<double>(hits) /
                                   static_cast<double>(total));
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\n  paper @3 vars: LDA 82.25%%  QDA 83.22%%  SVM 85%%  NB 82.02%%;"
              " SVM @9 vars: 95.2%%\n");
  std::printf("  shape check: at small variable counts majority voting beats the\n"
              "  general method by a wide margin; the gap closes as variables grow.\n");
  return 0;
}

// The integrated headline experiment: train the complete three-level
// hierarchical disassembler over ALL 112 instruction classes (plus the
// register levels) and measure the end-to-end successful recognition rate on
// unseen traces -- the paper's 99.03% figure as one run instead of a product
// of per-level estimates.
//
// This is the heaviest bench (roughly 112 x traces captures plus a
// 6216-pair KL selection at level 1); defaults are sized to finish in a few
// minutes.  SIDIS_TRACES_PER_CLASS scales it toward paper fidelity,
// SIDIS_FAST=1 shrinks it to a smoke test, and SIDIS_REGISTERS=0 skips the
// register levels.
#include "bench/common.hpp"

#include "core/hierarchical.hpp"
#include "core/profiler.hpp"
#include "ml/metrics.hpp"

using namespace sidis;

int main() {
  bench::print_header(
      "Full system -- 112-class hierarchical disassembly, end to end");
  std::mt19937_64 rng(static_cast<std::uint64_t>(bench::env_int("SIDIS_SEED", 112)));

  const sim::AcquisitionCampaign campaign(sim::DeviceModel::make(0),
                                          sim::SessionContext::make(0));

  core::ProfilerConfig pc;
  pc.traces_per_class =
      static_cast<std::size_t>(bench::env_int("SIDIS_TRACES_PER_CLASS",
                                              bench::fast_mode() ? 30 : 80));
  pc.traces_per_register = pc.traces_per_class * 3;
  pc.num_programs = 10;
  pc.profile_registers = bench::env_int("SIDIS_REGISTERS", 1) != 0;
  if (pc.profile_registers) {
    // A spread of the register file keeps the default runtime sane;
    // SIDIS_ALL_REGISTERS=1 profiles r0..r31.
    if (bench::env_int("SIDIS_ALL_REGISTERS", 0) == 0) {
      pc.registers = {0, 2, 5, 9, 13, 16, 20, 24, 28, 31};
    }
  }
  if (bench::fast_mode()) {
    // Smoke scale: two classes per group.
    for (int g = 1; g <= 8; ++g) {
      const auto cls = avr::classes_in_group(g);
      pc.classes.push_back(cls.front());
      pc.classes.push_back(cls.back());
    }
    pc.registers = {0, 16};
  }

  std::printf("  profiling %s classes, %zu traces each",
              pc.classes.empty() ? "all 112" : std::to_string(pc.classes.size()).c_str(),
              pc.traces_per_class);
  if (pc.profile_registers) {
    std::printf(", %zu registers x %zu traces",
                pc.registers.empty() ? 32 : pc.registers.size(), pc.traces_per_register);
  }
  std::printf("...\n");
  const core::ProfilingData data = core::profile_device(
      campaign, pc, rng, [](std::size_t done, std::size_t total, const std::string&) {
        if (done % 25 == 0 || done == total) {
          std::printf("    %zu / %zu campaign items\n", done, total);
          std::fflush(stdout);
        }
        return true;
      });

  std::printf("  training the hierarchy...\n");
  core::HierarchicalConfig cfg;
  cfg.pipeline = core::csa_config();
  cfg.factory.discriminant.shrinkage = 0.15;
  const auto model = core::HierarchicalDisassembler::train(data, cfg);

  // Unseen-trace evaluation: fresh operands, unseen program files.
  const std::size_t per_class = bench::fast_mode() ? 5 : 10;
  std::size_t group_hits = 0, class_hits = 0, full_hits = 0, reg_checked = 0,
              reg_hits = 0, total = 0;
  for (const auto& [cls, unused] : data.classes) {
    (void)unused;
    for (std::size_t i = 0; i < per_class; ++i) {
      avr::SampleOptions opts;
      // Keep evaluated registers within the profiled subset so the register
      // levels are scored on labels they know.
      if (!pc.registers.empty() && pc.profile_registers) {
        const auto pick = pc.registers[i % pc.registers.size()];
        if (avr::class_allows_rd(cls, pick)) opts.fix_rd = pick;
        if (avr::class_allows_rr(cls, pick)) opts.fix_rr = pick;
      }
      const avr::Instruction target = avr::random_instance(cls, rng, opts);
      const sim::Trace t = campaign.capture_trace(
          target, sim::ProgramContext::make(50 + static_cast<int>(i) % 3), rng);
      const core::Disassembly d = model.classify(t);
      ++total;
      group_hits += d.group == avr::group_of_class(cls) ? 1 : 0;
      if (d.class_idx != cls) continue;
      ++class_hits;
      bool ok = true;
      if (pc.profile_registers) {
        if (avr::class_uses_rd(cls) && d.rd) {
          ++reg_checked;
          if (*d.rd == target.rd) ++reg_hits; else ok = false;
        }
        if (avr::class_uses_rr(cls) && d.rr) {
          ++reg_checked;
          if (*d.rr == target.rr) ++reg_hits; else ok = false;
        }
      }
      full_hits += ok ? 1 : 0;
    }
  }

  const auto pct = [&](std::size_t n) {
    return 100.0 * static_cast<double>(n) / static_cast<double>(total);
  };
  std::printf("\n  unseen traces evaluated: %zu (%zu per class)\n", total, per_class);
  bench::print_row("group level (level 1)", 99.85, pct(group_hits));
  bench::print_row("instruction class (1+2)", 99.53, pct(class_hits));
  if (pc.profile_registers && reg_checked > 0) {
    std::printf("  %-28s paper: %6.2f%%   measured: %6.2f%% (%zu checks)\n",
                "register operands (level 3)", 99.75,
                100.0 * static_cast<double>(reg_hits) / static_cast<double>(reg_checked),
                reg_checked);
    bench::print_row("full instruction + registers", 99.03, pct(full_hits));
  }
  std::printf("\n  shape check: the hierarchy holds its per-level accuracy when run\n"
              "  end-to-end over the whole ISA -- the paper's headline claim.\n");
  return 0;
}

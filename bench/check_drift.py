#!/usr/bin/env python3
"""Diff a bench_drift_recovery run against the checked-in baseline.

Usage: check_drift.py CANDIDATE.json [BASELINE.json]

Fails (exit 1) when any acceptance criterion flips to false, an accuracy
metric regresses by more than two points, or detection latency grows by more
than LATENCY_TOLERANCE windows against the baseline.  Improvements are
reported but never fail the check; re-pin the baseline to lock them in.
Stdlib only, so the CI job needs nothing beyond python3.
"""
import json
import sys
from pathlib import Path

# Accuracy-point tolerance: 0.02 = 2 points.  The CI run is bit-deterministic
# (fixed seeds, SIDIS_FAST=1), so any delta at all means the pipeline changed;
# two points separates refactor-level noise from a real regression.
TOLERANCE = 0.02
# Detection-latency tolerance in stream windows.  The monitor's streak +
# cooldown logic quantizes latency to a few windows per threshold crossing;
# one extra consecutive-requirement cycle is fine, a doubled latency is not.
LATENCY_TOLERANCE = 20

CRITERIA = [
    ("drift", "criterion_shift_at_least_2sigma"),
    ("detection", "criterion_detected_within_budget"),
    ("recovery", "criterion_recovered_within_2pts"),
    ("recal", "criterion_budget_respected"),
    ("recal", "criterion_hot_swapped"),
]

# (section, key, sense, tolerance)
METRICS = [
    ("drift", "feature_shift_sigma", "higher", 0.25),
    ("detection", "latency_windows", "lower", LATENCY_TOLERANCE),
    ("recovery", "clean_accuracy", "higher", TOLERANCE),
    ("recovery", "recovered_final_accuracy", "higher", TOLERANCE),
    # dip_depth growing means the stale model bled longer/harder before the
    # scheduler caught it -- a latency or recal-quality regression in disguise.
    ("recovery", "dip_depth", "lower", TOLERANCE + 0.05),
]


def lookup(doc, section, key):
    node = doc if section is None else doc.get(section, {})
    return node.get(key)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    candidate = json.loads(Path(argv[1]).read_text())
    baseline_path = argv[2] if len(argv) > 2 else str(Path(__file__).parent / "BENCH_drift.json")
    baseline = json.loads(Path(baseline_path).read_text())

    failures = []
    rows = []

    for section, key in CRITERIA:
        got = lookup(candidate, section, key)
        rows.append((key, lookup(baseline, section, key), got))
        if got is not True:
            failures.append(f"acceptance criterion '{key}' is {got}, expected true")

    for section, key, sense, tol in METRICS:
        base = lookup(baseline, section, key)
        got = lookup(candidate, section, key)
        rows.append((key, base, got))
        if base is None or got is None:
            failures.append(f"metric '{key}' missing (baseline={base}, candidate={got})")
            continue
        delta = got - base if sense == "higher" else base - got
        if delta < -tol:
            failures.append(f"'{key}' regressed: {base} -> {got} (tolerance {tol})")

    # Structural invariants, independent of the baseline.
    recal = candidate.get("recal", {})
    if recal.get("traces_spent", 0) > recal.get("trace_budget", 0):
        failures.append(
            f"labeled-trace budget overrun: spent {recal.get('traces_spent')} of "
            f"{recal.get('trace_budget')}")
    if recal.get("model_swaps", 0) < 1:
        failures.append("recovery happened without a hot swap (or not at all)")
    if recal.get("registry_versions", 0) < 1:
        failures.append("no recalibrated model was published to the registry")
    timeline = candidate.get("timeline", [])
    if len(timeline) < 10:
        failures.append(f"timeline has {len(timeline)} batches, expected >= 10")
    elif timeline[0].get("model_stamp") != 0:
        failures.append("first timeline batch not served by the construction-time model")

    width = max(len(r[0]) for r in rows)
    print(f"{'metric'.ljust(width)}  baseline  candidate")
    for key, base, got in rows:
        fmt = lambda v: f"{v:.4f}" if isinstance(v, float) else str(v)
        print(f"{key.ljust(width)}  {fmt(base):>8}  {fmt(got):>9}")

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nOK: drift-recovery metrics within tolerance of the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

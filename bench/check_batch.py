#!/usr/bin/env python3
"""Diff a bench_batch run against the checked-in baseline.

Usage: check_batch.py CANDIDATE.json [BASELINE.json]

Fails (exit 1) when bit-identity breaks or the batch path's speedup over the
scalar classify() loop collapses.  Bit-identity is the hard gate: it holds on
every build flavor or the batch pipeline is wrong, full stop.  The 2x-at-
batch-16 acceptance criterion, by contrast, is a statement about optimized
builds -- the CI coverage job runs -O1 + gcov where auto-vectorization is
off -- so the speedup is checked as a wide band against the baseline (which
IS recorded from a Release build and must carry criterion_batch16_2x=true),
clamped to "batching must never be slower than scalar".  Stdlib only, so the
CI job needs nothing beyond python3.
"""
import json
import sys
from pathlib import Path

# Candidate speedup must reach this fraction of the baseline's recorded
# speedup.  0.4 is deliberately loose: the baseline is a Release number and
# the coverage job measures an instrumented -O1 build where the SIMD share
# of the win is gone and only the amortization share remains.
SPEEDUP_FRACTION = 0.4
# ...but never below parity: if classify_batch is SLOWER than the scalar
# loop, the hot path has regressed no matter the build flavor.
SPEEDUP_FLOOR = 1.0
# Absolute throughput band, same rationale as check_fleet.py.
THROUGHPUT_FRACTION = 0.1


def lookup(doc, section, key):
    node = doc if section is None else doc.get(section, {})
    return node.get(key)


def batch_row(doc, batch):
    for row in doc.get("batch", []):
        if row.get("batch") == batch:
            return row
    return {}


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    candidate = json.loads(Path(argv[1]).read_text())
    baseline_path = argv[2] if len(argv) > 2 else str(Path(__file__).parent / "BENCH_batch.json")
    baseline = json.loads(Path(baseline_path).read_text())

    failures = []
    rows = []

    # Hard gates.  Identity must hold everywhere; the 2x criterion must hold
    # in the BASELINE (the recorded Release evidence) -- a baseline without
    # it should never have been pinned.
    got_ident = lookup(candidate, "identity", "criterion_identical")
    rows.append(("criterion_identical", lookup(baseline, "identity", "criterion_identical"), got_ident))
    if got_ident is not True:
        failures.append(f"bit-identity broke: criterion_identical is {got_ident}")
    if lookup(baseline, "comparison", "criterion_batch16_2x") is not True:
        failures.append("baseline does not carry criterion_batch16_2x=true; "
                        "re-record it from a Release build")
    if lookup(candidate, "identity", "windows_checked") in (None, 0):
        failures.append("identity check ran over zero windows")

    # Banded speedups: candidate vs a fraction of the baseline, floored at
    # parity with the scalar loop.
    for batch in (16, 64):
        key = f"speedup_batch{batch}"
        base = batch_row(baseline, batch).get("speedup_vs_scalar")
        got = batch_row(candidate, batch).get("speedup_vs_scalar")
        rows.append((key, base, got))
        if base is None or got is None:
            failures.append(f"metric '{key}' missing (baseline={base}, candidate={got})")
            continue
        need = max(base * SPEEDUP_FRACTION, SPEEDUP_FLOOR)
        if got < need:
            failures.append(f"'{key}' collapsed: {base} -> {got} (needs >= {need:.2f})")

    # Batch 1 takes the scalar fallback inside classify_batch; it should
    # track the scalar loop, not fall off a cliff (dispatch overhead bound).
    b1 = batch_row(candidate, 1).get("speedup_vs_scalar")
    rows.append(("speedup_batch1", batch_row(baseline, 1).get("speedup_vs_scalar"), b1))
    if b1 is None or b1 < 0.5:
        failures.append(f"batch-1 dispatch overhead blew up: {b1} (needs >= 0.5x scalar)")

    base_wps = lookup(baseline, "scalar", "windows_per_sec")
    got_wps = lookup(candidate, "scalar", "windows_per_sec")
    rows.append(("scalar_windows_per_sec", base_wps, got_wps))
    if base_wps is None or got_wps is None or got_wps < base_wps * THROUGHPUT_FRACTION:
        failures.append(
            f"scalar throughput collapsed: {base_wps} -> {got_wps} "
            f"(needs >= {0 if base_wps is None else base_wps * THROUGHPUT_FRACTION:.1f})")

    width = max(len(r[0]) for r in rows)
    print(f"{'metric'.ljust(width)}  baseline  candidate")
    for key, base, got in rows:
        fmt = lambda v: f"{v:.2f}" if isinstance(v, float) else str(v)
        print(f"{key.ljust(width)}  {fmt(base):>8}  {fmt(got):>9}")

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nOK: batch hot-path metrics within tolerance of the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

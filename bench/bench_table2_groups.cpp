// Table 2: the 8-group organization of the 112 profiled AVR instruction
// classes, plus the Sec. 2.1 classifier-count arithmetic that motivates the
// hierarchy (6216 flat one-vs-one machines vs at most 218 hierarchical ones
// when the trace lands in group 4).
#include "bench/common.hpp"

#include <map>

using namespace sidis;

int main() {
  bench::print_header("Table 2 -- grouping AVR instructions");

  const auto sizes = avr::expected_group_sizes();
  std::size_t total = 0;
  for (int g = 1; g <= 8; ++g) {
    const auto classes = avr::classes_in_group(g);
    total += classes.size();
    std::printf("  Group %d (%2zu classes, paper says %2d): ", g, classes.size(),
                sizes[static_cast<std::size_t>(g - 1)]);
    std::size_t shown = 0;
    for (std::size_t c : classes) {
      if (shown++ == 8) {
        std::printf("...");
        break;
      }
      std::printf("%s ", avr::instruction_classes()[c].name.c_str());
    }
    std::printf("\n");
    if (classes.size() != static_cast<std::size_t>(sizes[static_cast<std::size_t>(g - 1)])) {
      std::printf("  !! MISMATCH against the paper's census\n");
    }
  }
  std::printf("  total profiled classes: %zu (paper: 112)\n\n", total);

  // Operand census per group (which levels of the hierarchy fire).
  for (int g = 1; g <= 8; ++g) {
    std::size_t with_rd = 0, with_rr = 0;
    const auto classes = avr::classes_in_group(g);
    for (std::size_t c : classes) {
      with_rd += avr::class_uses_rd(c) ? 1 : 0;
      with_rr += avr::class_uses_rr(c) ? 1 : 0;
    }
    std::printf("  Group %d: %2zu classes need Rd recovery, %2zu need Rr\n", g, with_rd,
                with_rr);
  }

  // Sec. 2.1 arithmetic.
  const auto c2 = [](std::size_t n) { return n * (n - 1) / 2; };
  std::printf("\n  flat one-vs-one machines for 112 classes: %zu (paper: 6216)\n",
              c2(112));
  std::size_t worst = 0;
  for (int g = 1; g <= 8; ++g) {
    worst = std::max(worst, c2(8) + c2(avr::classes_in_group(g).size()));
  }
  std::printf("  hierarchical worst case (group 4): %zu (paper: 218 = C(8,2)+C(20,2))\n",
              c2(8) + c2(20));
  std::printf("  hierarchical worst case over all groups (group 5): %zu\n", worst);
  return 0;
}

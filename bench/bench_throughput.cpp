// Classifier-throughput microbenchmarks (google-benchmark).
//
// Sec. 5.4 argues the variable count gates real-time disassembly: a 1 GHz
// 4-wide core leaves ~0.25 ns per instruction, and every feature point costs
// one kernel correlation at classification time.  These benchmarks measure
// the actual per-trace latency of each pipeline stage and classifier, plus
// the sparse-vs-full CWT ablation that justifies per-point extraction.
#include <benchmark/benchmark.h>

#include <random>

#include "core/csa.hpp"
#include "features/pipeline.hpp"
#include "ml/factory.hpp"
#include "sim/acquisition.hpp"

using namespace sidis;

namespace {

struct Fixture {
  features::FeaturePipeline pipeline;
  std::unique_ptr<ml::Classifier> qda;
  std::unique_ptr<ml::Classifier> lda;
  std::unique_ptr<ml::Classifier> svm;
  std::unique_ptr<ml::Classifier> nb;
  sim::TraceSet probes;
  dsp::Cwt cwt{dsp::CwtConfig{}};

  static const Fixture& instance() {
    static const Fixture f = [] {
      Fixture fx;
      std::mt19937_64 rng(99);
      const sim::AcquisitionCampaign campaign(sim::DeviceModel::make(0),
                                              sim::SessionContext::make(0));
      const auto g1 = avr::classes_in_group(1);
      std::vector<sim::TraceSet> sets;
      features::LabeledTraces input;
      for (std::size_t i = 0; i < 6; ++i) {
        sets.push_back(campaign.capture_class(g1[i], 80, 10, rng));
      }
      for (std::size_t i = 0; i < sets.size(); ++i) {
        input.labels.push_back(static_cast<int>(g1[i]));
        input.sets.push_back(&sets[i]);
      }
      features::PipelineConfig cfg = core::csa_config();
      cfg.pca_components = 40;
      fx.pipeline = features::FeaturePipeline::fit(input, cfg);
      const ml::Dataset train = fx.pipeline.transform(input);
      ml::FactoryConfig fc;
      fc.discriminant.shrinkage = 0.15;
      fx.qda = ml::make_classifier(ml::ClassifierKind::kQda, fc);
      fx.lda = ml::make_classifier(ml::ClassifierKind::kLda, fc);
      fx.svm = ml::make_classifier(ml::ClassifierKind::kSvmRbf, fc);
      fx.nb = ml::make_classifier(ml::ClassifierKind::kNaiveBayes, fc);
      fx.qda->fit(train);
      fx.lda->fit(train);
      fx.svm->fit(train);
      fx.nb->fit(train);
      fx.probes = sets.front();
      return fx;
    }();
    return f;
  }
};

void BM_CwtFullGrid(benchmark::State& state) {
  const Fixture& fx = Fixture::instance();
  dsp::CwtWorkspace ws;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.cwt.transform(fx.probes[i++ % fx.probes.size()].samples, ws));
  }
}
BENCHMARK(BM_CwtFullGrid);

// Backend ablation over (trace length, scale count): the forced-direct case
// is the pre-spectral baseline the EXPERIMENTS.md speedup table compares
// against.  (315, 50) is the paper's default grid.
template <dsp::CwtBackend Backend>
void BM_CwtBackend(benchmark::State& state) {
  const Fixture& fx = Fixture::instance();
  dsp::CwtConfig cfg;
  cfg.backend = Backend;
  cfg.num_scales = static_cast<std::size_t>(state.range(1));
  const dsp::Cwt cwt(cfg);
  dsp::CwtWorkspace ws;
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  std::vector<double> trace(fx.probes.front().samples);
  trace.resize(len, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cwt.transform(trace, ws));
  }
}
#define CWT_BACKEND_ARGS       \
  Args({100, 50})              \
      ->Args({315, 50})        \
      ->Args({1000, 50})       \
      ->Args({315, 10})        \
      ->Args({315, 100})
BENCHMARK(BM_CwtBackend<dsp::CwtBackend::kDirect>)->Name("BM_CwtDirect")->CWT_BACKEND_ARGS;
BENCHMARK(BM_CwtBackend<dsp::CwtBackend::kSpectral>)->Name("BM_CwtSpectral")->CWT_BACKEND_ARGS;
BENCHMARK(BM_CwtBackend<dsp::CwtBackend::kAuto>)->Name("BM_CwtAuto")->CWT_BACKEND_ARGS;
#undef CWT_BACKEND_ARGS

void BM_FeatureExtractionSparse(benchmark::State& state) {
  const Fixture& fx = Fixture::instance();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::extract_features(
        fx.cwt, fx.probes[i++ % fx.probes.size()].samples, fx.pipeline.unified_points()));
  }
}
BENCHMARK(BM_FeatureExtractionSparse);

void BM_PipelineTransform(benchmark::State& state) {
  const Fixture& fx = Fixture::instance();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.pipeline.transform(fx.probes[i++ % fx.probes.size()]));
  }
}
BENCHMARK(BM_PipelineTransform);

template <const std::unique_ptr<ml::Classifier> Fixture::* Member>
void BM_Classify(benchmark::State& state) {
  const Fixture& fx = Fixture::instance();
  const linalg::Vector z = fx.pipeline.transform(fx.probes.front());
  for (auto _ : state) {
    benchmark::DoNotOptimize((fx.*Member)->predict(z));
  }
}
BENCHMARK(BM_Classify<&Fixture::qda>)->Name("BM_ClassifyQda");
BENCHMARK(BM_Classify<&Fixture::lda>)->Name("BM_ClassifyLda");
BENCHMARK(BM_Classify<&Fixture::svm>)->Name("BM_ClassifySvmRbf");
BENCHMARK(BM_Classify<&Fixture::nb>)->Name("BM_ClassifyNaiveBayes");

void BM_EndToEndClassifyTrace(benchmark::State& state) {
  const Fixture& fx = Fixture::instance();
  std::size_t i = 0;
  for (auto _ : state) {
    const sim::Trace& t = fx.probes[i++ % fx.probes.size()];
    benchmark::DoNotOptimize(fx.qda->predict(fx.pipeline.transform(t)));
  }
}
BENCHMARK(BM_EndToEndClassifyTrace);

}  // namespace

#ifndef SIDIS_BUILD_TYPE
#define SIDIS_BUILD_TYPE "unknown"
#endif

// Expanded BENCHMARK_MAIN so the JSON context carries OUR build type: the
// system-packaged libbenchmark stamps `build_type` with how IT was compiled,
// which says nothing about the optimization level of this binary.
// run_benchmarks.sh keys its refuse-to-record guard on this field.
int main(int argc, char** argv) {
  benchmark::AddCustomContext("sidis_build_type", SIDIS_BUILD_TYPE);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

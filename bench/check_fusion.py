#!/usr/bin/env python3
"""Diff a bench_fusion run against the checked-in baseline.

Usage: check_fusion.py CANDIDATE.json [BASELINE.json]

Fails (exit 1) when a fusion acceptance criterion flips or the fused
operating point collapses.  The hard gates are build-flavor independent:
the calibrated fused point must not fall below the better single channel on
the clean task, and under the compound-degradation sweep (power aging + EM
probe misalignment) the fused curve must stay at or above the power-only
curve at every severity -- these hold on any build or the fusion layer is
wrong, full stop.  Accuracy levels are banded against the baseline with a
small absolute tolerance (the SIDIS_FAST task is 16 classes with few eval
windows, so rates quantize coarsely).  Stdlib only, so the CI job needs
nothing beyond python3.
"""
import json
import sys
from pathlib import Path

# Candidate accuracies may sit this far below baseline before counting as a
# regression (SIDIS_FAST evaluates few windows per class).
LEVEL_TOLERANCE = 0.06
# The fused-over-power margin at the top degradation severity must retain
# this much: fused may never dip below power-only by more than quantization.
DEGRADATION_SLACK = 1e-9


def lookup(doc, section, key):
    node = doc if section is None else doc.get(section, {})
    return node.get(key)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    candidate = json.loads(Path(argv[1]).read_text())
    baseline_path = argv[2] if len(argv) > 2 else str(
        Path(__file__).parent / "BENCH_fusion.json")
    baseline = json.loads(Path(baseline_path).read_text())

    failures = []
    rows = []

    # Hard gates: both criteria must hold wherever the bench runs, and the
    # baseline must have been pinned from a run where they did.
    for doc, who in ((baseline, "baseline"), (candidate, "candidate")):
        for crit in ("criterion_fusion_beats_singles",
                     "criterion_degradation_holds"):
            got = lookup(doc, None, crit)
            if who == "candidate":
                rows.append((crit, lookup(baseline, None, crit), got))
            if got is not True:
                failures.append(f"{who} {crit} is {got}")

    # Re-derive the degradation gate from the candidate's own sweep so a
    # bench that mis-reports its boolean still fails loudly.
    sweep = candidate.get("degradation", [])
    if not sweep:
        failures.append("candidate degradation sweep is empty")
    for point in sweep:
        if point.get("fused", 0.0) < point.get("power", 1.0) - DEGRADATION_SLACK:
            failures.append(
                f"fused fell below power-only at severity {point.get('severity')}: "
                f"{point.get('power')} -> {point.get('fused')}")

    # Banded clean-task levels.
    for key in ("power", "em", "fused", "heldout"):
        name = f"clean_{key}"
        base, got = lookup(baseline, "clean", key), lookup(candidate, "clean", key)
        rows.append((name, base, got))
        if base is None or got is None:
            failures.append(f"metric '{name}' missing (baseline={base}, candidate={got})")
        elif key == "fused" and got < base - LEVEL_TOLERANCE:
            failures.append(f"'{name}' regressed: {base} -> {got} "
                            f"(tolerance {LEVEL_TOLERANCE})")

    # Degraded windows must be flagged: the top-severity point has to mark a
    # visible fraction of its windows as not-kOk, or graceful degradation is
    # silently lying about its confidence.
    if sweep:
        top = max(sweep, key=lambda p: p.get("severity", 0.0))
        rows.append(("top_severity_flagged", None, top.get("degraded_fraction")))
        if (top.get("degraded_fraction") or 0.0) < 0.25:
            failures.append(
                f"top severity flags only {top.get('degraded_fraction')} of "
                f"windows (needs >= 0.25)")

    width = max(len(r[0]) for r in rows)
    print(f"{'metric'.ljust(width)}  baseline  candidate")
    for key, base, got in rows:
        fmt = lambda v: f"{v:.4f}" if isinstance(v, float) else str(v)
        print(f"{key.ljust(width)}  {fmt(base):>8}  {fmt(got):>9}")

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nOK: fusion metrics within tolerance of the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

// Fleet-scale serving: thousands of logical device streams multiplexed onto
// a handful of shared worker shards (runtime::FleetFrontend) versus the
// naive deployment -- one dedicated single-stream StreamingDisassembler per
// device -- at EQUAL total worker count.
//
// The fleet wins two ways: batched classification amortizes one
// feature-extraction workspace across up to batch_max windows per worker
// pass, and shared long-lived shards amortize engine/thread setup that the
// per-device deployment pays per stream.  The bench measures both
// deployments on the same window load, reports aggregate windows/sec and
// admit->deliver latency quantiles, and exercises the admission-control
// ledger under deliberate over-admission.
//
// Results go to BENCH_fleet.json (override with SIDIS_BENCH_OUT); CI diffs
// the criteria against the checked-in baseline with bench/check_fleet.py.
// SIDIS_FAST=1 shrinks the fleet to smoke scale; SIDIS_FLEET_STREAMS /
// SIDIS_FLEET_WINDOWS override the load.
#include "bench/common.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/hierarchical.hpp"
#include "runtime/fleet.hpp"
#include "runtime/streaming.hpp"

using namespace sidis;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct FleetRun {
  double wall_secs = 0.0;
  double windows_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double coalescing = 0.0;
  std::uint64_t batches = 0;
  std::uint64_t delivered = 0;
  bool in_order = true;
  /// Batch-amortization counters from RuntimeStats: realized windows/batch
  /// histogram plus the classify wall-time split between the lane-vectorized
  /// batch path and the scalar path.
  std::string windows_per_batch;
  std::uint64_t batch_win = 0;
  std::uint64_t scalar_win = 0;
  double batch_ns_per_win = 0.0;
  double scalar_ns_per_win = 0.0;
};

struct BaselineRun {
  double wall_secs = 0.0;
  double windows_per_sec = 0.0;
};

struct ShedRun {
  std::size_t credit = 0;
  std::uint64_t admitted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t max_outstanding = 0;
};

/// Drives `streams` logical streams of `windows_per_stream` windows each
/// through one shared FleetFrontend, submit/poll interleaved round-robin --
/// the well-behaved multi-tenant driver loop.
FleetRun run_fleet(const std::shared_ptr<const core::HierarchicalDisassembler>& model,
                   const sim::TraceSet& pool, std::size_t streams,
                   std::size_t windows_per_stream, const runtime::FleetConfig& cfg) {
  runtime::FleetFrontend fleet(model, cfg);
  std::vector<runtime::FleetFrontend::StreamId> ids;
  ids.reserve(streams);
  for (std::size_t s = 0; s < streams; ++s) ids.push_back(fleet.open_stream());

  FleetRun run;
  std::vector<std::uint64_t> next_seq(streams, 0);
  const auto account = [&](std::size_t s, const runtime::FleetResult& r) {
    if (r.stream_sequence != next_seq[s]) run.in_order = false;
    ++next_seq[s];
    ++run.delivered;
  };

  const Clock::time_point t0 = Clock::now();
  for (std::size_t w = 0; w < windows_per_stream; ++w) {
    for (std::size_t s = 0; s < streams; ++s) {
      const sim::Trace& trace = pool[(s * 7 + w) % pool.size()];
      for (;;) {
        if (fleet.submit(ids[s], trace).accepted()) break;
        // Credit exhausted: free it by taking delivery on this stream.
        while (auto r = fleet.poll(ids[s])) account(s, *r);
        std::this_thread::yield();
      }
      if (auto r = fleet.poll(ids[s])) account(s, *r);
    }
  }
  for (std::size_t s = 0; s < streams; ++s) {
    for (runtime::FleetResult& r : fleet.close_stream(ids[s])) account(s, r);
  }
  run.wall_secs = seconds_since(t0);

  const std::size_t total = streams * windows_per_stream;
  run.windows_per_sec = static_cast<double>(total) / run.wall_secs;
  const runtime::FleetStats stats = fleet.stats();
  run.p50_us =
      static_cast<double>(stats.admit_to_deliver.quantile_upper_nanos(0.50)) / 1e3;
  run.p99_us =
      static_cast<double>(stats.admit_to_deliver.quantile_upper_nanos(0.99)) / 1e3;
  run.batches = stats.runtime.batches_submitted;
  run.coalescing = run.batches == 0
                       ? 0.0
                       : static_cast<double>(stats.runtime.batch_windows) /
                             static_cast<double>(run.batches);
  if (stats.windows_shed != 0 || stats.windows_rejected != 0) run.in_order = false;
  run.windows_per_batch = stats.runtime.windows_per_batch.summary_counts();
  run.batch_win = stats.runtime.batch_classified_windows;
  run.scalar_win = stats.runtime.scalar_classified_windows;
  run.batch_ns_per_win =
      run.batch_win == 0 ? 0.0
                         : static_cast<double>(stats.runtime.batch_classify_nanos) /
                               static_cast<double>(run.batch_win);
  run.scalar_ns_per_win =
      run.scalar_win == 0 ? 0.0
                          : static_cast<double>(stats.runtime.scalar_classify_nanos) /
                                static_cast<double>(run.scalar_win);
  return run;
}

/// The deployment the fleet replaces: one dedicated single-worker
/// StreamingDisassembler per device, all alive at once, fed the same
/// interleaved window arrivals the fleet sees.  Every stream's worker thread
/// wakes for its own windows -- with a thousand devices that is a thousand
/// mostly-idle threads and a context switch per few windows, which is
/// exactly the overhead shard sharing exists to remove.
BaselineRun run_dedicated(const core::HierarchicalDisassembler& model,
                          const sim::TraceSet& pool, std::size_t streams,
                          std::size_t windows_per_stream) {
  BaselineRun run;
  const Clock::time_point t0 = Clock::now();
  runtime::StreamingConfig scfg;
  scfg.workers = 1;
  scfg.queue_capacity = 32;
  std::vector<std::unique_ptr<runtime::StreamingDisassembler>> engines;
  engines.reserve(streams);
  for (std::size_t s = 0; s < streams; ++s) {
    engines.push_back(
        std::make_unique<runtime::StreamingDisassembler>(model, scfg));
  }
  for (std::size_t w = 0; w < windows_per_stream; ++w) {
    for (std::size_t s = 0; s < streams; ++s) {
      engines[s]->submit(pool[(s * 7 + w) % pool.size()]);
      while (engines[s]->poll()) {
      }
    }
  }
  for (auto& engine : engines) engine->drain();
  run.wall_secs = seconds_since(t0);
  run.windows_per_sec =
      static_cast<double>(streams * windows_per_stream) / run.wall_secs;
  return run;
}

/// Offline reference: `driver_threads` pooled engines, each running its
/// share of streams SEQUENTIALLY to completion.  No real deployment can do
/// this -- live windows arrive interleaved across devices, not one device at
/// a time -- so this is a work-conserving upper bound on the same worker
/// count, not a serving alternative.
BaselineRun run_pooled(const core::HierarchicalDisassembler& model,
                       const sim::TraceSet& pool, std::size_t streams,
                       std::size_t windows_per_stream,
                       std::size_t driver_threads) {
  BaselineRun run;
  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> drivers;
  drivers.reserve(driver_threads);
  for (std::size_t d = 0; d < driver_threads; ++d) {
    drivers.emplace_back([&, d] {
      runtime::StreamingConfig scfg;
      scfg.workers = 1;
      scfg.queue_capacity = 32;
      runtime::StreamingDisassembler engine(model, scfg);
      for (std::size_t s = d; s < streams; s += driver_threads) {
        for (std::size_t w = 0; w < windows_per_stream; ++w) {
          engine.submit(pool[(s * 7 + w) % pool.size()]);
          while (engine.poll()) {
          }
        }
      }
      engine.drain();
    });
  }
  for (std::thread& t : drivers) t.join();
  run.wall_secs = seconds_since(t0);
  run.windows_per_sec =
      static_cast<double>(streams * windows_per_stream) / run.wall_secs;
  return run;
}

/// Over-admission scenario: a burst of `burst` windows into one stream with
/// tiny credit and a wedged-slow shard, under `policy`.  Returns the ledger.
ShedRun run_shed(const std::shared_ptr<const core::HierarchicalDisassembler>& model,
                 const sim::TraceSet& pool, runtime::AdmissionPolicy policy,
                 std::size_t burst) {
  runtime::FleetConfig cfg;
  cfg.shards = 1;
  cfg.workers_per_shard = 1;
  cfg.batch_max = 2;
  cfg.shard_depth = 2;
  cfg.stream_credit = 8;
  cfg.admission = policy;
  runtime::FleetFrontend fleet(model, cfg);
  const auto id = fleet.open_stream();

  ShedRun run;
  run.credit = cfg.stream_credit;
  for (std::size_t i = 0; i < burst; ++i) {
    fleet.submit(id, pool[i % pool.size()]);
    const runtime::StreamStats ss = fleet.stream_stats(id);
    run.max_outstanding = std::max(run.max_outstanding, ss.outstanding);
  }
  run.delivered = fleet.close_stream(id).size();
  const runtime::FleetStats stats = fleet.stats();
  run.admitted = stats.windows_admitted;
  run.shed = stats.windows_shed;
  run.rejected = stats.windows_rejected;
  return run;
}

void write_json(const std::string& path, std::size_t streams,
                std::size_t windows_per_stream, const runtime::FleetConfig& cfg,
                const FleetRun& fleet, const BaselineRun& dedicated,
                const BaselineRun& pooled, const ShedRun& shed,
                const ShedRun& reject) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  const double speedup = fleet.windows_per_sec / dedicated.windows_per_sec;
  const bool faster = fleet.windows_per_sec > dedicated.windows_per_sec;
  const bool accounting =
      fleet.in_order && fleet.delivered == streams * windows_per_stream;
  const bool shed_bounded = shed.max_outstanding <= shed.credit &&
                            shed.admitted == shed.delivered + shed.shed &&
                            reject.max_outstanding <= reject.credit &&
                            reject.shed == 0 &&
                            reject.admitted == reject.delivered;
  std::fprintf(f, "{\n  \"bench\": \"fleet\",\n");
  std::fprintf(f,
               "  \"config\": {\"streams\": %zu, \"windows_per_stream\": %zu, "
               "\"shards\": %zu, \"workers_per_shard\": %zu, \"batch_max\": %zu, "
               "\"stream_credit\": %zu},\n",
               streams, windows_per_stream, cfg.shards, cfg.workers_per_shard,
               cfg.batch_max, cfg.stream_credit);
  std::fprintf(f,
               "  \"fleet\": {\"windows_per_sec\": %.1f, \"wall_secs\": %.3f, "
               "\"p50_us\": %.1f, \"p99_us\": %.1f,\n            \"batches\": %llu, "
               "\"coalescing\": %.2f, \"delivered\": %llu,\n            "
               "\"batch_windows_classified\": %llu, \"batch_ns_per_window\": %.0f,\n"
               "            \"scalar_windows_classified\": %llu, "
               "\"scalar_ns_per_window\": %.0f,\n            "
               "\"criterion_delivery_accounting\": %s},\n",
               fleet.windows_per_sec, fleet.wall_secs, fleet.p50_us, fleet.p99_us,
               static_cast<unsigned long long>(fleet.batches), fleet.coalescing,
               static_cast<unsigned long long>(fleet.delivered),
               static_cast<unsigned long long>(fleet.batch_win),
               fleet.batch_ns_per_win,
               static_cast<unsigned long long>(fleet.scalar_win),
               fleet.scalar_ns_per_win,
               accounting ? "true" : "false");
  std::fprintf(f,
               "  \"dedicated\": {\"windows_per_sec\": %.1f, \"wall_secs\": %.3f},\n",
               dedicated.windows_per_sec, dedicated.wall_secs);
  std::fprintf(f,
               "  \"pooled_reference\": {\"windows_per_sec\": %.1f, "
               "\"wall_secs\": %.3f},\n",
               pooled.windows_per_sec, pooled.wall_secs);
  std::fprintf(f,
               "  \"comparison\": {\"speedup_vs_dedicated\": %.2f, "
               "\"criterion_fleet_faster_than_independent\": %s},\n",
               speedup, faster ? "true" : "false");
  std::fprintf(
      f,
      "  \"shedding\": {\"shed_oldest\": {\"admitted\": %llu, \"delivered\": %llu, "
      "\"shed\": %llu, \"rejected\": %llu, \"max_outstanding\": %llu},\n"
      "               \"reject_new\": {\"admitted\": %llu, \"delivered\": %llu, "
      "\"shed\": %llu, \"rejected\": %llu, \"max_outstanding\": %llu},\n"
      "               \"stream_credit\": %zu, \"criterion_shed_bounded_credit\": %s}\n",
      static_cast<unsigned long long>(shed.admitted),
      static_cast<unsigned long long>(shed.delivered),
      static_cast<unsigned long long>(shed.shed),
      static_cast<unsigned long long>(shed.rejected),
      static_cast<unsigned long long>(shed.max_outstanding),
      static_cast<unsigned long long>(reject.admitted),
      static_cast<unsigned long long>(reject.delivered),
      static_cast<unsigned long long>(reject.shed),
      static_cast<unsigned long long>(reject.rejected),
      static_cast<unsigned long long>(reject.max_outstanding), shed.credit,
      shed_bounded ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main() {
  bench::print_header("Fleet serving -- shared shards vs dedicated engines");
  std::printf("  host reports %u hardware thread(s)\n",
              std::thread::hardware_concurrency());
  std::mt19937_64 rng(static_cast<std::uint64_t>(bench::env_int("SIDIS_SEED", 54)));
  const sim::AcquisitionCampaign campaign(sim::DeviceModel::make(0),
                                          sim::SessionContext::make(0));

  // Model scale mirrors bench_runtime_throughput: per-window classify cost
  // has to be realistic for the batching amortization to mean anything (a
  // toy model costs less than the bookkeeping either deployment adds).
  const auto g1 = avr::classes_in_group(1);
  const std::size_t n_classes = bench::fast_mode() ? 3 : 6;
  core::ProfilingData data;
  for (std::size_t i = 0; i < n_classes; ++i) {
    data.classes[g1[i]] =
        campaign.capture_class(g1[i], bench::fast_mode() ? 40 : 80, 10, rng);
  }
  core::HierarchicalConfig cfg;
  cfg.pipeline = core::csa_config();
  cfg.pipeline.pca_components = 40;
  cfg.group_components = 20;
  cfg.instruction_components = 40;
  cfg.factory.discriminant.shrinkage = 0.15;
  std::printf("  training a %zu-class hierarchical model...\n", n_classes);
  const auto model = std::make_shared<const core::HierarchicalDisassembler>(
      core::HierarchicalDisassembler::train(data, cfg));

  // Window pool the streams draw from (capture once, serve many).
  const std::size_t pool_size = bench::fast_mode() ? 32 : 64;
  sim::TraceSet pool;
  for (std::size_t i = 0; i < pool_size; ++i) {
    pool.push_back(campaign.capture_trace(
        avr::random_instance(g1[i % n_classes], rng),
        sim::ProgramContext::make(static_cast<int>(i % 10)), rng));
  }

  const std::size_t streams = static_cast<std::size_t>(
      bench::env_int("SIDIS_FLEET_STREAMS", bench::fast_mode() ? 200 : 1200));
  const std::size_t windows_per_stream = static_cast<std::size_t>(
      bench::env_int("SIDIS_FLEET_WINDOWS", bench::fast_mode() ? 6 : 20));

  runtime::FleetConfig fcfg;
  fcfg.shards = 4;
  fcfg.workers_per_shard = 2;
  fcfg.batch_max = 16;
  fcfg.stream_credit = 32;
  const std::size_t total_workers = fcfg.shards * fcfg.workers_per_shard;

  std::printf("\n  load: %zu streams x %zu windows = %zu classifications\n", streams,
              windows_per_stream, streams * windows_per_stream);
  std::printf("  fleet: %zu shards x %zu workers, batch_max %zu, credit %zu\n",
              fcfg.shards, fcfg.workers_per_shard, fcfg.batch_max, fcfg.stream_credit);

  const FleetRun fleet = run_fleet(model, pool, streams, windows_per_stream, fcfg);
  std::printf(
      "\n  fleet frontend:      %10.1f windows/sec  (wall %.2fs, p50 %.0fus, "
      "p99 %.0fus)\n",
      fleet.windows_per_sec, fleet.wall_secs, fleet.p50_us, fleet.p99_us);
  std::printf("    %llu batches, coalescing factor %.2f windows/batch, "
              "delivery %s\n",
              static_cast<unsigned long long>(fleet.batches), fleet.coalescing,
              fleet.in_order ? "complete and in order" : "BROKEN");
  std::printf("    amortization: batch path %llu windows @ %.0fns/win, "
              "scalar path %llu windows @ %.0fns/win\n",
              static_cast<unsigned long long>(fleet.batch_win),
              fleet.batch_ns_per_win,
              static_cast<unsigned long long>(fleet.scalar_win),
              fleet.scalar_ns_per_win);
  std::printf("    windows/batch: %s\n", fleet.windows_per_batch.c_str());

  const BaselineRun dedicated =
      run_dedicated(*model, pool, streams, windows_per_stream);
  std::printf("  dedicated engines:   %10.1f windows/sec  (wall %.2fs, %zu "
              "single-worker engines live at once)\n",
              dedicated.windows_per_sec, dedicated.wall_secs, streams);
  std::printf("  fleet speedup: %.2fx over engine-per-device, with %zu workers "
              "instead of %zu\n",
              fleet.windows_per_sec / dedicated.windows_per_sec, total_workers,
              streams);

  const BaselineRun pooled =
      run_pooled(*model, pool, streams, windows_per_stream, total_workers);
  std::printf("  pooled reference:    %10.1f windows/sec  (offline upper "
              "bound: %zu engines, streams run sequentially)\n",
              pooled.windows_per_sec, total_workers);

  const ShedRun shed = run_shed(model, pool, runtime::AdmissionPolicy::kShedOldest,
                                bench::fast_mode() ? 64 : 256);
  const ShedRun reject = run_shed(model, pool, runtime::AdmissionPolicy::kRejectNew,
                                  bench::fast_mode() ? 64 : 256);
  std::printf("\n  over-admission burst (credit 8):\n");
  std::printf("    shed-oldest: admitted %llu, delivered %llu, shed %llu, "
              "max outstanding %llu\n",
              static_cast<unsigned long long>(shed.admitted),
              static_cast<unsigned long long>(shed.delivered),
              static_cast<unsigned long long>(shed.shed),
              static_cast<unsigned long long>(shed.max_outstanding));
  std::printf("    reject-new:  admitted %llu, delivered %llu, rejected %llu, "
              "max outstanding %llu\n",
              static_cast<unsigned long long>(reject.admitted),
              static_cast<unsigned long long>(reject.delivered),
              static_cast<unsigned long long>(reject.rejected),
              static_cast<unsigned long long>(reject.max_outstanding));

  const char* out = std::getenv("SIDIS_BENCH_OUT");
  write_json(out != nullptr && *out != '\0' ? out : "BENCH_fleet.json", streams,
             windows_per_stream, fcfg, fleet, dedicated, pooled, shed, reject);
  return 0;
}

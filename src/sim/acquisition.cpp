#include "sim/acquisition.hpp"

#include <stdexcept>

#include "avr/cpu.hpp"
#include "dsp/signal.hpp"

namespace sidis::sim {

namespace {

AcquisitionOptions apply_acq(const AcquisitionConfig& acq, AcquisitionOptions options) {
  options.window_samples = acq.window_samples();
  options.window_offset = acq.window_offset;
  return options;
}

}  // namespace

AcquisitionCampaign::AcquisitionCampaign(DeviceModel device, SessionContext session,
                                         LeakageConfig leakage, ScopeConfig scope,
                                         AcquisitionOptions options)
    : session_(session),
      acq_(),
      synth_(device, leakage),
      scope_(scope),
      em_scope_(em_scope_config(options.em)),
      options_(options),
      reference_window_(compute_reference_window()),
      em_reference_window_(options_.em.enabled ? compute_em_reference_window()
                                               : std::vector<double>{}) {}

AcquisitionCampaign::AcquisitionCampaign(DeviceModel device, SessionContext session,
                                         const AcquisitionConfig& acq,
                                         LeakageConfig leakage, ScopeConfig scope,
                                         AcquisitionOptions options)
    : session_(session),
      acq_(acq.validated()),
      synth_(device, acq.applied(leakage)),
      scope_(acq.applied(scope)),
      em_scope_(acq.applied(em_scope_config(options.em))),
      options_(apply_acq(acq, options)),
      reference_window_(compute_reference_window()),
      em_reference_window_(options_.em.enabled ? compute_em_reference_window()
                                               : std::vector<double>{}) {}

std::size_t AcquisitionCampaign::shifted(std::size_t base) const {
  const long long start = static_cast<long long>(base) + options_.window_offset;
  return start > 0 ? static_cast<std::size_t>(start) : 0u;
}

void AcquisitionCampaign::stamp_acquisition(TraceMeta& meta) const {
  meta.samples_per_cycle = synth_.config().samples_per_cycle;
  meta.adc_bits = scope_.config().adc_bits;
}

std::vector<double> AcquisitionCampaign::compute_reference_window() const {
  // The paper averages many captures of SBI, NOP x5, CBI; averaging kills the
  // zero-mean nondeterminism, so capturing without it is equivalent.
  avr::Program ref = avr::SegmentTemplate::reference_sequence();
  avr::Cpu cpu;
  cpu.load_program(ref);
  const std::vector<avr::ExecRecord> records = cpu.run(ref.size());
  const IssueMap issue = make_issue_map(ref);
  const std::vector<double> wave = synth_.synthesize(records, &issue);

  Environment env{synth_.device(), session_, ProgramContext{}};
  std::mt19937_64 rng(0);  // unused: nondeterminism disabled
  const std::vector<double> captured =
      scope_.capture(wave, env, rng, /*add_nondeterminism=*/false);

  // SBI takes 2 cycles; the reference window starts one cycle before the
  // third NOP, i.e. at cycle 3, mirroring the target window's position for a
  // one-cycle neighbour.
  const std::size_t start = shifted(synth_.sample_of_cycle(3.0));
  if (start + options_.window_samples > captured.size()) {
    throw std::logic_error("reference window exceeds captured trace");
  }
  return {captured.begin() + static_cast<std::ptrdiff_t>(start),
          captured.begin() + static_cast<std::ptrdiff_t>(start + options_.window_samples)};
}

std::vector<double> AcquisitionCampaign::compute_em_reference_window() const {
  // The EM reference mirrors the power one: averaged SBI/NOPx5/CBI pickup at
  // the probe's *base* misalignment in a neutral environment, nondeterminism
  // off.  Drift away from that position later survives subtraction.
  avr::Program ref = avr::SegmentTemplate::reference_sequence();
  avr::Cpu cpu;
  cpu.load_program(ref);
  const std::vector<avr::ExecRecord> records = cpu.run(ref.size());
  const IssueMap issue = make_issue_map(ref);
  const std::vector<double> wave =
      synth_.synthesize_em(records, &issue, options_.em, options_.em.misalignment);

  Environment env{};
  std::mt19937_64 rng(0);  // unused: nondeterminism disabled
  const std::vector<double> captured =
      em_scope_.capture(wave, env, rng, /*add_nondeterminism=*/false);

  const std::size_t start = shifted(synth_.sample_of_cycle(3.0));
  if (start + options_.window_samples > captured.size()) {
    throw std::logic_error("EM reference window exceeds captured trace");
  }
  return {captured.begin() + static_cast<std::ptrdiff_t>(start),
          captured.begin() + static_cast<std::ptrdiff_t>(start + options_.window_samples)};
}

void AcquisitionCampaign::inject_faults(FaultProfile profile) {
  injector_.emplace(std::move(profile));
}

void AcquisitionCampaign::inject_em_faults(FaultProfile profile) {
  em_injector_.emplace(std::move(profile));
}

void AcquisitionCampaign::capture_em_window(
    const std::vector<avr::ExecRecord>& records, const IssueMap& issue,
    std::size_t start, double campaign_progress, std::mt19937_64& em_rng,
    Trace& trace) const {
  const double mis = em_misalignment_at(options_.em, campaign_progress);
  std::vector<double> wave = synth_.synthesize_em(records, &issue, options_.em, mis);
  double severity = 0.0;
  if (em_injector_ && !em_injector_->profile().empty()) {
    wave = em_injector_->apply(wave, em_rng());
    severity = em_injector_->profile().severity;
  }
  // The probe channel is deliberately decoupled from the power channel's
  // environment drift: a neutral environment (gain 1, no thermal trend)
  // means the only covariate shift the EM channel sees is its own
  // misalignment process.
  Environment env{};
  const std::vector<double> captured = em_scope_.capture(wave, env, em_rng);
  if (start + options_.window_samples > captured.size()) {
    throw std::logic_error("EM window exceeds captured trace");
  }
  trace.em_samples.assign(
      captured.begin() + static_cast<std::ptrdiff_t>(start),
      captured.begin() + static_cast<std::ptrdiff_t>(start + options_.window_samples));
  {
    const std::size_t prefix_end =
        std::min(synth_.sample_of_cycle(3.0), captured.size());
    const std::vector<double> prefix(
        captured.begin(), captured.begin() + static_cast<std::ptrdiff_t>(prefix_end));
    trace.meta.em_gain_estimate = std::max(dsp::stddev(prefix), 1e-9);
  }
  trace.meta.em_fault_severity = severity;
  if (options_.subtract_reference) {
    for (std::size_t i = 0; i < trace.em_samples.size(); ++i) {
      trace.em_samples[i] -= em_reference_window_[i];
    }
  }
}

double AcquisitionCampaign::maybe_inject(std::vector<double>& wave,
                                         std::mt19937_64& rng) const {
  if (!injector_ || injector_->profile().empty()) return 0.0;
  // One draw keys this capture's fault stream; per-capture RNG streams are
  // already worker-count-invariant, so faulted corpora replay bit-identically.
  wave = injector_->apply(wave, rng());
  return injector_->profile().severity;
}

void AcquisitionCampaign::use_reference(std::vector<double> reference) {
  if (reference.size() != options_.window_samples) {
    throw std::invalid_argument("use_reference: window length mismatch");
  }
  reference_window_ = std::move(reference);
}

Trace AcquisitionCampaign::capture_trace(const avr::Instruction& target,
                                         const ProgramContext& prog,
                                         std::mt19937_64& rng,
                                         double campaign_progress) const {
  const avr::SegmentTemplate seg = avr::SegmentTemplate::make(target, rng);
  avr::Program program = seg.sequence();
  avr::finalize_control_flow(program);

  avr::Cpu cpu;
  cpu.load_program(program);
  // The paper randomizes operand *values* as well as operand registers:
  // the whole register file and data memory start out random.
  std::uniform_int_distribution<int> byte(0, 255);
  for (unsigned r = 0; r < 32; ++r) {
    cpu.set_reg(r, static_cast<std::uint8_t>(byte(rng)));
  }
  for (std::uint16_t a = avr::Cpu::kSramStart; a < avr::Cpu::kDataSize; ++a) {
    cpu.write_data(a, static_cast<std::uint8_t>(byte(rng)));
  }

  const std::vector<avr::ExecRecord> records = cpu.run(program.size() + 2);
  if (records.size() < 4) throw std::logic_error("segment executed too few instructions");

  // Record layout: [0]=SBI, [1]=NOP, [2]=before, [3]=target.
  const unsigned before_cycles = records[0].cycles + records[1].cycles + records[2].cycles;
  const double target_start_cycle = static_cast<double>(before_cycles);

  const IssueMap issue = make_issue_map(program);
  std::vector<double> wave = synth_.synthesize(records, &issue);
  const double fault_severity = maybe_inject(wave, rng);
  Environment env{synth_.device(), session_, prog, campaign_progress};
  const std::vector<double> captured = scope_.capture(wave, env, rng);

  // Window: the fetch/decode cycle (one before execution starts) plus the
  // first execution cycle -- the paper's 315-sample view of an instruction.
  const std::size_t start = shifted(synth_.sample_of_cycle(target_start_cycle - 1.0));
  if (start + options_.window_samples > captured.size()) {
    throw std::logic_error("target window exceeds captured trace");
  }
  Trace trace;
  trace.samples.assign(
      captured.begin() + static_cast<std::ptrdiff_t>(start),
      captured.begin() + static_cast<std::ptrdiff_t>(start + options_.window_samples));
  // Gain reference from the fixed SBI+NOP prefix (cycles 0..3): its content
  // never depends on the profiled instruction, so its standard deviation
  // tracks the capture chain's gain and nothing else.
  {
    const std::size_t prefix_end = synth_.sample_of_cycle(3.0);
    const std::vector<double> prefix(captured.begin(),
                                     captured.begin() + static_cast<std::ptrdiff_t>(
                                                            prefix_end));
    trace.meta.gain_estimate = std::max(dsp::stddev(prefix), 1e-9);
  }
  if (options_.subtract_reference) {
    for (std::size_t i = 0; i < trace.samples.size(); ++i) {
      trace.samples[i] -= reference_window_[i];
    }
  }

  const auto cls = avr::class_of(target);
  stamp_acquisition(trace.meta);
  trace.meta.class_idx = cls.value_or(0);
  trace.meta.instr = target;
  trace.meta.program_id = prog.id;
  trace.meta.device_id = synth_.device().id;
  trace.meta.session_id = session_.id;
  trace.meta.fault_severity = fault_severity;
  if (cls && avr::class_uses_rd(*cls)) trace.meta.rd = target.rd;
  if (cls && avr::class_uses_rr(*cls)) trace.meta.rr = target.rr;

  if (options_.em.enabled) {
    // One draw from the capture stream keys the whole EM sub-stream, so the
    // power samples above are bit-identical with the probe on or off, and
    // paired corpora replay at any worker count.
    std::mt19937_64 em_rng(rng());
    capture_em_window(records, issue, start, campaign_progress, em_rng, trace);
  }
  return trace;
}

TraceSet AcquisitionCampaign::capture_class(std::size_t class_idx, std::size_t n,
                                            int num_programs, std::mt19937_64& rng,
                                            int first_program,
                                            const avr::SampleOptions& sample_opts) const {
  if (num_programs < 1) throw std::invalid_argument("capture_class: num_programs >= 1");
  TraceSet out;
  out.reserve(n);
  const double denom = n > 1 ? static_cast<double>(n - 1) : 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const int pid = first_program + static_cast<int>(i % static_cast<std::size_t>(num_programs));
    const ProgramContext prog = ProgramContext::make(pid);
    const avr::Instruction target = avr::random_instance(class_idx, rng, sample_opts);
    out.push_back(capture_trace(target, prog, rng, static_cast<double>(i) / denom));
  }
  return out;
}

TraceSet AcquisitionCampaign::capture_program(const avr::Program& program,
                                              const ProgramContext& prog,
                                              std::mt19937_64& rng,
                                              std::size_t max_steps) const {
  avr::Cpu cpu;
  cpu.load_program(program);
  std::uniform_int_distribution<int> byte(0, 255);
  for (unsigned r = 0; r < 32; ++r) {
    cpu.set_reg(r, static_cast<std::uint8_t>(byte(rng)));
  }
  for (std::uint16_t a = avr::Cpu::kSramStart; a < avr::Cpu::kDataSize; ++a) {
    cpu.write_data(a, static_cast<std::uint8_t>(byte(rng)));
  }
  const std::vector<avr::ExecRecord> records = cpu.run(max_steps);
  if (records.empty()) return {};

  const IssueMap issue = make_issue_map(program);
  std::vector<double> wave = synth_.synthesize(records, &issue);
  const double fault_severity = maybe_inject(wave, rng);
  Environment env{synth_.device(), session_, prog};
  const std::vector<double> captured = scope_.capture(wave, env, rng);

  // Gain reference: first three cycles (the monitored preamble).
  double gain_estimate = 1.0;
  {
    const std::size_t prefix_end =
        std::min(synth_.sample_of_cycle(3.0), captured.size());
    const std::vector<double> prefix(
        captured.begin(), captured.begin() + static_cast<std::ptrdiff_t>(prefix_end));
    gain_estimate = std::max(dsp::stddev(prefix), 1e-9);
  }

  // The paired EM capture of the whole run: one waveform, one scope pass,
  // windows cut at the same offsets as the power windows below.
  std::vector<double> em_captured;
  double em_gain_estimate = 1.0;
  double em_fault_severity = 0.0;
  if (options_.em.enabled) {
    std::mt19937_64 em_rng(rng());
    const double mis = em_misalignment_at(options_.em, 0.0);
    std::vector<double> em_wave =
        synth_.synthesize_em(records, &issue, options_.em, mis);
    if (em_injector_ && !em_injector_->profile().empty()) {
      em_wave = em_injector_->apply(em_wave, em_rng());
      em_fault_severity = em_injector_->profile().severity;
    }
    Environment em_env{};
    em_captured = em_scope_.capture(em_wave, em_env, em_rng);
    const std::size_t prefix_end =
        std::min(synth_.sample_of_cycle(3.0), em_captured.size());
    const std::vector<double> prefix(
        em_captured.begin(),
        em_captured.begin() + static_cast<std::ptrdiff_t>(prefix_end));
    em_gain_estimate = std::max(dsp::stddev(prefix), 1e-9);
  }

  TraceSet out;
  double cycle = 0.0;
  for (const avr::ExecRecord& rec : records) {
    const double start_cycle = cycle;
    cycle += rec.cycles;
    if (start_cycle < 1.0) continue;  // no observable fetch cycle yet
    const std::size_t start = shifted(synth_.sample_of_cycle(start_cycle - 1.0));
    if (start + options_.window_samples > captured.size()) break;
    Trace t;
    t.samples.assign(
        captured.begin() + static_cast<std::ptrdiff_t>(start),
        captured.begin() + static_cast<std::ptrdiff_t>(start + options_.window_samples));
    if (options_.subtract_reference) {
      for (std::size_t i = 0; i < t.samples.size(); ++i) {
        t.samples[i] -= reference_window_[i];
      }
    }
    if (options_.em.enabled && start + options_.window_samples <= em_captured.size()) {
      t.em_samples.assign(
          em_captured.begin() + static_cast<std::ptrdiff_t>(start),
          em_captured.begin() + static_cast<std::ptrdiff_t>(start + options_.window_samples));
      if (options_.subtract_reference) {
        for (std::size_t i = 0; i < t.em_samples.size(); ++i) {
          t.em_samples[i] -= em_reference_window_[i];
        }
      }
      t.meta.em_gain_estimate = em_gain_estimate;
      t.meta.em_fault_severity = em_fault_severity;
    }
    const auto it = issue.find(rec.pc);
    const avr::Instruction& issued = it != issue.end() ? it->second : rec.instr;
    const auto cls = avr::class_of(issued);
    stamp_acquisition(t.meta);
    t.meta.class_idx = cls.value_or(0);
    t.meta.instr = issued;
    t.meta.program_id = prog.id;
    t.meta.device_id = synth_.device().id;
    t.meta.session_id = session_.id;
    t.meta.gain_estimate = gain_estimate;
    t.meta.fault_severity = fault_severity;
    if (cls && avr::class_uses_rd(*cls)) t.meta.rd = issued.rd;
    if (cls && avr::class_uses_rr(*cls)) t.meta.rr = issued.rr;
    out.push_back(std::move(t));
  }
  return out;
}

TraceSet AcquisitionCampaign::capture_register(bool dest, std::uint8_t reg,
                                               std::size_t n, int num_programs,
                                               std::mt19937_64& rng,
                                               int first_program) const {
  std::vector<std::size_t> candidates;
  for (std::size_t c = 0; c < avr::num_instruction_classes(); ++c) {
    if (dest ? avr::class_allows_rd(c, reg) : avr::class_allows_rr(c, reg)) {
      candidates.push_back(c);
    }
  }
  if (candidates.empty()) {
    throw std::invalid_argument("capture_register: no class accepts this register");
  }
  TraceSet out;
  out.reserve(n);
  std::uniform_int_distribution<std::size_t> pick(0, candidates.size() - 1);
  const double denom = n > 1 ? static_cast<double>(n - 1) : 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const int pid = first_program + static_cast<int>(i % static_cast<std::size_t>(num_programs));
    const ProgramContext prog = ProgramContext::make(pid);
    avr::SampleOptions opts;
    if (dest) {
      opts.fix_rd = reg;
    } else {
      opts.fix_rr = reg;
    }
    const avr::Instruction target = avr::random_instance(candidates[pick(rng)], rng, opts);
    Trace t = capture_trace(target, prog, rng, static_cast<double>(i) / denom);
    // Force the label to the pinned register (sampling clamps never fire for
    // legal candidates, but belt and braces).
    if (dest) {
      t.meta.rd = reg;
    } else {
      t.meta.rr = reg;
    }
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace sidis::sim

// Deterministic fault injection for the acquisition chain.
//
// The paper's accuracy claims rest on clean, well-aligned traces; its own CSA
// section concedes that acquisition drift is the dominant failure mode in the
// field.  This module makes that failure mode *testable*: composable,
// seed-reproducible `TraceFault` transforms model the collection
// perturbations that break side-channel disassembly in practice -- additive
// Gaussian and burst noise, DC/amplitude drift, clipping, clock jitter
// (fractional resampling), dropped-sample gaps, and trigger misalignment.
//
// Faults sit between the power model and the oscilloscope: they corrupt the
// *ideal current waveform* before the scope front-end sees it, exactly where
// supply disturbance, probe motion, and clock drift enter a real bench.  A
// `FaultProfile` scales severity and composes faults; every random draw comes
// from a splitmix64 stream derived from (profile seed, trace key), so a
// faulted corpus replays bit-identically at any worker count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace sidis::sim {

enum class FaultKind : std::uint8_t {
  kGaussianNoise,   ///< additive white noise at a configured SNR
  kBurstNoise,      ///< short high-amplitude interference bursts
  kDcDrift,         ///< baseline offset ramping across the capture
  kAmplitudeDrift,  ///< multiplicative gain ramping across the capture
  kClipping,        ///< symmetric saturation of the capture chain
  kClockJitter,     ///< sampling-clock wander (fractional resampling)
  kDroppedSamples,  ///< acquisition gaps, filled by sample-and-hold
  kTriggerShift,    ///< trigger misalignment (sub-sample window shift)
};

/// All injectable kinds, in declaration order (sweeps iterate this).
const std::vector<FaultKind>& all_fault_kinds();

std::string to_string(FaultKind kind);

/// One fault transform.  `magnitude` is the strength at profile severity 1.0
/// (meaning depends on the kind; see the factories), `param` a secondary
/// shape knob.  Use the factories -- they document the units.
struct TraceFault {
  FaultKind kind = FaultKind::kGaussianNoise;
  double magnitude = 1.0;
  double param = 0.0;

  /// Additive white Gaussian noise.  `snr_db` is the signal-to-injected-noise
  /// ratio at severity 1; each severity doubling costs ~6 dB.
  static TraceFault gaussian_noise(double snr_db = 14.0);
  /// `bursts_per_window` rectangular bursts (count scales with severity) of
  /// `burst_len` samples, each at ~4x the signal RMS with random sign.
  static TraceFault burst_noise(double bursts_per_window = 2.0,
                                double burst_len = 12.0);
  /// Baseline offset ramping linearly from 0 to `delta_rms` x signal-RMS
  /// (random sign) over the capture.
  static TraceFault dc_drift(double delta_rms = 1.0);
  /// Gain ramping linearly from 1 to 1 +/- `relative` over the capture.
  static TraceFault amplitude_drift(double relative = 0.35);
  /// Symmetric clip at (1 - `depth` x severity) of the peak deviation from
  /// the mean, i.e. depth 0.3 at severity 1 shaves the top 30% of the swing.
  static TraceFault clipping(double depth = 0.35);
  /// Sinusoidal sampling-time wander of up to `max_deviation` samples
  /// (`wander_cycles` periods per window, random phase), applied by linear
  /// fractional resampling.
  static TraceFault clock_jitter(double max_deviation = 2.0,
                                 double wander_cycles = 3.0);
  /// `gaps_per_window` gaps (count scales with severity) of `gap_len`
  /// samples, filled by holding the last good sample.
  static TraceFault dropped_samples(double gaps_per_window = 2.0,
                                    double gap_len = 10.0);
  /// Uniform trigger error in [-`max_shift`, +`max_shift`] samples,
  /// including the fractional part (linear interpolation).
  static TraceFault trigger_shift(double max_shift = 3.0);

  /// The default fault of a kind (the factory with default arguments).
  static TraceFault of_kind(FaultKind kind);
};

/// A reproducible fault scenario: which faults, how hard, which seed.
struct FaultProfile {
  std::uint64_t seed = 0x5eedfa17ull;
  /// Global severity multiplier applied to every fault's magnitude-like
  /// knobs; 0 disables all faults, 1 is the kind's nominal strength.
  double severity = 1.0;
  std::vector<TraceFault> faults;
  /// Optional scenario label (used by name() when set); the named compound
  /// factories fill it so sweep tables stay readable.
  std::string label;

  /// One default-strength fault of `kind` at the given severity.
  static FaultProfile single(FaultKind kind, double severity = 1.0,
                             std::uint64_t seed = 0x5eedfa17ull);
  /// Every fault kind composed, each at the given severity.
  static FaultProfile compound(double severity = 1.0,
                               std::uint64_t seed = 0x5eedfa17ull);

  /// Named compound scenarios, each a plausible co-occurring failure cluster
  /// rather than the everything-at-once compound():
  ///  * drift_jitter_burst: a warming bench -- baseline and gain drift plus
  ///    clock wander plus intermittent interference bursts.
  ///  * gain_noise_clip: a failing front-end -- amplitude drift into the rail
  ///    (clipping) with a degraded noise floor.
  ///  * dropout_misalign: a flaky digitizer -- acquisition gaps, trigger
  ///    misalignment, and the baseline wander that loose probes bring.
  static FaultProfile drift_jitter_burst(double severity = 1.0,
                                         std::uint64_t seed = 0x5eedfa17ull);
  static FaultProfile gain_noise_clip(double severity = 1.0,
                                      std::uint64_t seed = 0x5eedfa17ull);
  static FaultProfile dropout_misalign(double severity = 1.0,
                                       std::uint64_t seed = 0x5eedfa17ull);
  /// The three named compound scenarios above at the given severity, in the
  /// order listed (sweeps iterate this).
  static std::vector<FaultProfile> named_compounds(double severity = 1.0,
                                                   std::uint64_t seed = 0x5eedfa17ull);

  /// A copy of this profile with its severity rescaled -- severity-schedule
  /// sweeps re-arm the injector with scaled(s) per capture step.
  FaultProfile scaled(double new_severity) const;

  bool empty() const { return faults.empty() || severity <= 0.0; }
  /// "clean", "gaussian_noise@1.0", "compound(n=8)@0.5", or, when `label`
  /// is set, "drift_jitter_burst@1.5".
  std::string name() const;
};

/// Clean-vs-faulted comparison, used by the determinism tests and the
/// robustness bench to verify each fault's statistical footprint.
struct FaultMetrics {
  double snr_db = 0.0;          ///< 10 log10(clean power / delta power)
  double mean_delta = 0.0;      ///< mean(faulted - clean)
  double max_abs_delta = 0.0;   ///< worst single-sample deviation
  std::size_t changed_samples = 0;  ///< samples that differ at all
  double clip_fraction = 0.0;   ///< fraction pinned at the faulted extremes
};

FaultMetrics measure_fault(const std::vector<double>& clean,
                           const std::vector<double>& faulted);

/// Applies a FaultProfile to waveforms.  Stateless and const: the output is
/// a pure function of (profile, key, input), so concurrent use is safe and
/// corpora replay bit-identically regardless of scheduling.
class FaultInjector {
 public:
  explicit FaultInjector(FaultProfile profile);

  /// Corrupts one waveform.  `key` individualizes the random draws per
  /// capture; the same (profile, key, samples) triple always produces the
  /// same output.
  std::vector<double> apply(const std::vector<double>& samples,
                            std::uint64_t key) const;

  /// Trace overload: faults the samples and stamps
  /// `meta.fault_severity = profile().severity`.
  Trace apply(const Trace& trace, std::uint64_t key) const;

  /// Faults a whole set with per-index keys derived from `base_key`
  /// (element i uses hash_combine(base_key, i)).
  TraceSet apply_all(const TraceSet& traces, std::uint64_t base_key = 0) const;

  const FaultProfile& profile() const { return profile_; }

 private:
  FaultProfile profile_;
};

}  // namespace sidis::sim

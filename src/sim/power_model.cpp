#include "sim/power_model.hpp"

#include <algorithm>
#include <cmath>

#include "avr/codec.hpp"
#include "sim/em_model.hpp"

namespace sidis::sim {

IssueMap make_issue_map(const avr::Program& program, std::uint16_t origin) {
  IssueMap map;
  std::uint16_t addr = origin;
  for (const avr::Instruction& in : program) {
    map[addr] = in;
    addr = static_cast<std::uint16_t>(
        addr + avr::info(avr::canonicalize(in).mnemonic).words);
  }
  return map;
}

PowerSynthesizer::PowerSynthesizer(DeviceModel device, LeakageConfig config)
    : device_(device), config_(config) {}

std::size_t PowerSynthesizer::sample_of_cycle(double cycle) const {
  // Guarded floor: on decimated grids `cycle * samples_per_cycle` is inexact,
  // and a product that lands 1 ulp *below* a mathematically integral sample
  // index would truncate one sample early -- drifting window cuts against
  // synthesize()'s ceil-sized waveform over a long campaign.  The relative
  // epsilon snaps such products up without moving genuinely fractional
  // positions (nominal products are exact binary fractions, ending in
  // .0/.25/.5/.75, so this is bit-identical at 156.25).
  const double pos = cycle * config_.samples_per_cycle;
  return static_cast<std::size_t>(std::floor(pos + 1e-9 * std::max(1.0, pos)));
}

void PowerSynthesizer::opcode_signature(const avr::Instruction& issued,
                                        unsigned cycle, std::vector<Bump>& out) const {
  const auto cls = avr::class_of(issued);
  const int group = cls ? avr::group_of_class(*cls) : 0;

  const std::uint64_t mn_key =
      hash_combine(static_cast<std::uint64_t>(issued.mnemonic) << 8 |
                       static_cast<std::uint64_t>(issued.mode),
                   0xC0DEull + cycle);
  const auto perturb = [&](std::uint64_t h, double amp) {
    // Device process variation perturbs every bump amplitude slightly.
    if (device_.signature_spread > 0.0) {
      amp *= 1.0 + device_.signature_spread *
                       hash_sym(hash_combine(device_.signature_seed, h), 1.0);
    }
    return amp;
  };

  // Shared per-group component (which architectural blocks switch), with the
  // per-mnemonic strength modulation of each block.
  const std::uint64_t grp_key =
      hash_combine(static_cast<std::uint64_t>(group), 0x9409ull + cycle);
  for (int b = 0; b < config_.group_bumps; ++b) {
    const std::uint64_t h = hash_combine(grp_key, static_cast<std::uint64_t>(b));
    Bump bump;
    bump.center = hash_range(hash_combine(h, 1), 0.06, 0.95);
    bump.width = hash_range(hash_combine(h, 2), 0.015, 0.050);
    bump.amp = hash_sym(hash_combine(h, 3), config_.group_amp);
    bump.amp *= 1.0 + config_.intra_modulation *
                          hash_sym(hash_combine(mn_key, static_cast<std::uint64_t>(b)), 1.0);
    bump.amp = perturb(h, bump.amp);
    out.push_back(bump);
  }
  // Plus the mnemonic's own control-logic micro-bumps.
  for (int b = 0; b < config_.intra_bumps; ++b) {
    const std::uint64_t h = hash_combine(mn_key, 0x1000ull + static_cast<std::uint64_t>(b));
    Bump bump;
    bump.center = hash_range(hash_combine(h, 1), 0.06, 0.95);
    bump.width = hash_range(hash_combine(h, 2), 0.015, 0.050);
    bump.amp = perturb(h, hash_sym(hash_combine(h, 3), config_.intra_amp));
    out.push_back(bump);
  }
}

void PowerSynthesizer::fetch_signature(std::uint16_t opcode_word,
                                       std::vector<Bump>& out) const {
  // The program bus drives all 16 lines *simultaneously* at the end of the
  // cycle, so individual bits are not separable in time -- only the
  // aggregate switching activity (Hamming weight of the word) leaks, plus a
  // word-dependent decode pre-charge pattern (which varies with operand bits
  // and therefore acts as within-class variance, not as a clean channel).
  const std::uint64_t key = hash_combine(0xFE7C, opcode_word);
  for (int b = 0; b < 3; ++b) {
    const std::uint64_t h = hash_combine(key, static_cast<std::uint64_t>(b));
    out.push_back({hash_range(hash_combine(h, 1), 0.70, 0.97),
                   hash_range(hash_combine(h, 2), 0.010, 0.030),
                   hash_sym(hash_combine(h, 3), config_.fetch_amp)});
  }
  out.push_back(
      {0.82, 0.015, config_.fetch_bit_amp * (hamming_weight16(opcode_word) - 8)});
}

void PowerSynthesizer::register_leakage(const avr::ExecRecord& rec,
                                        std::vector<Bump>& out) const {
  const avr::OperandSignature sig = avr::info(rec.instr.mnemonic).signature;
  const bool uses_rd =
      sig == avr::OperandSignature::kRdRr || sig == avr::OperandSignature::kRdK ||
      sig == avr::OperandSignature::kRd || sig == avr::OperandSignature::kRdIo ||
      (sig == avr::OperandSignature::kRdMem && rec.instr.mode != avr::AddrMode::kR0) ||
      rec.instr.mnemonic == avr::Mnemonic::kBst || rec.instr.mnemonic == avr::Mnemonic::kBld;
  const bool uses_rr =
      sig == avr::OperandSignature::kRdRr || sig == avr::OperandSignature::kRrMem ||
      sig == avr::OperandSignature::kRrIo ||
      rec.instr.mnemonic == avr::Mnemonic::kSbrc || rec.instr.mnemonic == avr::Mnemonic::kSbrs;

  // Phase plan within the execute cycle: Rr decode (operand fetch) early,
  // data-path terms mid-cycle, Rd write-back decode late but clear of the
  // [0.70, 0.97] band where the *next* instruction's fetch-bus lines live --
  // otherwise a fixed instruction sequence imprints a systematic bias on the
  // register bits (random profiling neighbours would never reveal it).
  if (uses_rd) {
    // Row-decoder bits: one bump per address bit, polarity = bit value.
    for (int b = 0; b < 5; ++b) {
      const double polarity = ((rec.instr.rd >> b) & 1) ? 1.0 : -1.0;
      out.push_back({0.45 + 0.050 * b, 0.012, polarity * config_.reg_bit_amp});
    }
    out.push_back({0.42, 0.016,
                   config_.reg_row_amp *
                       hash_sym(hash_combine(0xD00D, rec.instr.rd), 1.0)});
  }
  if (uses_rr) {
    for (int b = 0; b < 5; ++b) {
      const double polarity = ((rec.instr.rr >> b) & 1) ? 1.0 : -1.0;
      out.push_back({0.08 + 0.050 * b, 0.012, polarity * config_.reg_bit_amp});
    }
    out.push_back({0.05, 0.016,
                   config_.reg_row_amp *
                       hash_sym(hash_combine(0xF00D, rec.instr.rr), 1.0)});
  }
}

void PowerSynthesizer::data_leakage(const avr::ExecRecord& rec,
                                    std::vector<Bump>& out) const {
  const double a = config_.data_amp;
  out.push_back({0.32, 0.015, a * (hamming_weight(rec.rd_before) - 4)});
  out.push_back({0.36, 0.015, a * (hamming_weight(rec.rr_value) - 4)});
  out.push_back({0.40, 0.015, a * hamming_distance(rec.rd_before, rec.rd_after)});
}

void PowerSynthesizer::memory_leakage(const avr::ExecRecord& rec,
                                      std::vector<Bump>& out) const {
  if (!rec.mem_read && !rec.mem_write) return;
  // Wide "bus busy" bump, slightly different phase for reads vs writes
  // (precharge vs drive), plus value/address HW terms.
  out.push_back({rec.mem_read ? 0.30 : 0.36, 0.10, config_.mem_active_amp});
  out.push_back({0.44, 0.020,
                 config_.mem_bus_amp * (hamming_weight(rec.mem_value) - 4) * 0.5});
  out.push_back({0.26, 0.020,
                 config_.mem_bus_amp * (hamming_weight16(rec.mem_addr) - 8) * 0.25});
}

void PowerSynthesizer::render_cycle(std::vector<double>& wave, double cycle_start,
                                    const std::vector<Bump>& bumps) const {
  const double spc = config_.samples_per_cycle;
  const auto n = static_cast<std::ptrdiff_t>(wave.size());
  for (const Bump& b : bumps) {
    const double pos = (cycle_start + b.center) * spc;
    const double w = std::max(b.width * spc, 0.5);
    const auto lo = std::max<std::ptrdiff_t>(0, static_cast<std::ptrdiff_t>(pos - 4.0 * w));
    const auto hi = std::min<std::ptrdiff_t>(n - 1, static_cast<std::ptrdiff_t>(pos + 4.0 * w));
    for (std::ptrdiff_t i = lo; i <= hi; ++i) {
      const double d = (static_cast<double>(i) - pos) / w;
      wave[static_cast<std::size_t>(i)] += b.amp * std::exp(-0.5 * d * d);
    }
  }
}

std::vector<double> PowerSynthesizer::synthesize(
    const std::vector<avr::ExecRecord>& records, const IssueMap* issued) const {
  return synthesize_impl(records, issued, nullptr, 0.0);
}

std::vector<double> PowerSynthesizer::synthesize_em(
    const std::vector<avr::ExecRecord>& records, const IssueMap* issued,
    const EmProbeConfig& em, double misalignment) const {
  return synthesize_impl(records, issued, &em, misalignment);
}

std::vector<double> PowerSynthesizer::synthesize_impl(
    const std::vector<avr::ExecRecord>& records, const IssueMap* issued,
    const EmProbeConfig* em, double misalignment) const {
  unsigned total_cycles = 0;
  for (const auto& rec : records) total_cycles += rec.cycles;
  // Guarded ceil, the dual of sample_of_cycle's guarded floor: a span 1 ulp
  // *above* an integral sample count must not gain a phantom sample on
  // decimated grids (exact at nominal, where all spans are binary fractions).
  const double span = total_cycles * config_.samples_per_cycle;
  const auto total_samples =
      static_cast<std::size_t>(std::ceil(span - 1e-9 * std::max(1.0, span))) + 1;
  std::vector<double> wave(total_samples,
                           em != nullptr ? em->baseline : config_.baseline);

  std::vector<Bump> bumps;
  bumps.reserve(64);
  double cycle_cursor = 0.0;
  for (std::size_t idx = 0; idx < records.size(); ++idx) {
    const avr::ExecRecord& rec = records[idx];
    const avr::Instruction* issue = nullptr;
    if (issued != nullptr) {
      const auto it = issued->find(rec.pc);
      if (it != issued->end()) issue = &it->second;
    }
    const avr::Instruction& key = issue != nullptr ? *issue : rec.instr;

    // Per-opcode process corner of this device (Sec. 5.6): the opcode's
    // switching blocks draw corner_gain x their nominal current, and its
    // quiescent draw differs by corner_offset while the opcode executes.
    // Class-conditional by construction, so unlike the global device gain it
    // survives per-trace normalization -- this is what moves templates
    // between chips.
    const std::uint64_t okey = static_cast<std::uint64_t>(key.mnemonic) << 8 |
                               static_cast<std::uint64_t>(key.mode);
    const double corner_gain = device_.opcode_gain(okey);
    const double corner_offset = device_.opcode_offset(okey);

    for (unsigned c = 0; c < rec.cycles; ++c) {
      bumps.clear();
      bumps.push_back({0.03, config_.clock_spike_width, config_.clock_spike_amp});
      opcode_signature(key, c, bumps);
      if (c == 0) {
        register_leakage(rec, bumps);
        data_leakage(rec, bumps);
      }
      if (c == rec.cycles - 1) {
        memory_leakage(rec, bumps);
        if (idx + 1 < records.size()) fetch_signature(records[idx + 1].opcode, bumps);
      }
      if (corner_gain != 1.0) {
        for (Bump& b : bumps) b.amp *= corner_gain;
      }
      if (em != nullptr) {
        // Spatial re-weighting: the opcode's blocks couple into the probe
        // loop with one overall weight, and each bump (block) with its own
        // micro-coupling -- a re-shaped waveform, not a rescaled one.
        const double w = em_opcode_coupling(*em, okey, misalignment);
        const std::uint64_t cyc_key = hash_combine(okey, c);
        for (std::size_t b = 0; b < bumps.size(); ++b) {
          bumps[b].amp *= w * em_bump_coupling(*em, cyc_key, b, misalignment);
        }
      }
      render_cycle(wave, cycle_cursor, bumps);
      if (em == nullptr && corner_offset != 0.0) {
        const std::size_t lo = sample_of_cycle(cycle_cursor);
        const std::size_t hi = std::min(sample_of_cycle(cycle_cursor + 1.0), wave.size());
        for (std::size_t i = lo; i < hi; ++i) wave[i] += corner_offset;
      }
      cycle_cursor += 1.0;
    }
  }
  return wave;
}

}  // namespace sidis::sim

// Acquisition configuration: the scope front-end as a sweepable first-class
// parameter.
//
// The paper pins one collection setup (Tektronix MDO3102: 2.5 GS/s, 250 MHz,
// 8-bit), hardcoded across the simulator as `samples_per_cycle = 156.25` and
// the ScopeConfig defaults.  Gwinn/Matties/Rubin ("Configuration and
// Collection Factors", arXiv 2204.04766) show those collection parameters
// dominate side-channel model quality, so this bundle exposes the four knobs
// a bench operator actually turns -- sample rate, analog bandwidth, ADC
// resolution, trigger alignment -- and threads them through the synthesizer,
// the scope model and the campaign in one coherent unit:
//
//  * sample rate is expressed as a decimation of the nominal 2.5 GS/s grid
//    (samples_per_cycle of the 16 MHz clock); the 2-cycle window length
//    follows from it, so every config cuts a complete fetch+execute view;
//  * analog bandwidth is an absolute quantity: decimating the grid makes the
//    same 250 MHz front-end a *larger* fraction of the (lower) sample rate,
//    and applied() performs that conversion (clamped below Nyquist);
//  * ADC resolution drives dsp::quantize in the scope;
//  * window_offset shifts every window cut (including the reference windows,
//    so subtraction stays aligned) by a fixed sample count -- deliberate
//    trigger skew for alignment-sensitivity studies.
//
// The nominal config is an exact identity: a campaign built with
// AcquisitionConfig::nominal() is bit-identical to one built without any
// config (sim_test pins this for the power and EM channels).  The session /
// device analog poles (probe_cutoff, decoupling_cutoff) are properties of
// the bench, not of the scope setting, and stay expressed relative to the
// actual sample grid.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/oscilloscope.hpp"
#include "sim/power_model.hpp"

namespace sidis::sim {

/// The paper's collection setup, the identity element of every conversion.
inline constexpr double kNominalSamplesPerCycle = 156.25;  ///< 2.5 GS/s @ 16 MHz
inline constexpr int kNominalAdcBits = 8;

struct AcquisitionConfig {
  /// Human-readable tag carried into bench JSON ("nominal", "half-rate"...).
  std::string label = "nominal";
  /// Sample rate as samples per 16 MHz clock cycle (156.25 = 2.5 GS/s).
  double samples_per_cycle = kNominalSamplesPerCycle;
  /// Analog bandwidth as a multiple of the nominal 250 MHz front-end
  /// (0.5 = a 125 MHz scope).  Absolute, not grid-relative: applied()
  /// converts to the grid's bandwidth fraction.
  double bandwidth_scale = 1.0;
  /// ADC resolution in bits.
  int adc_bits = kNominalAdcBits;
  /// Fixed trigger skew in samples, applied to every window cut (signed).
  int window_offset = 0;

  /// Window length at this rate: 2 cycles plus 2 guard samples, i.e.
  /// ceil(2 * samples_per_cycle) + 2 with an epsilon guard so exactly
  /// integral spans don't round up (315 at nominal, 159 at half rate).
  std::size_t window_samples() const;

  /// Configuration cost in ADC bits per window (window_samples * adc_bits):
  /// the storage/transfer budget one captured window costs the bench, the
  /// x-axis of the accuracy-vs-cost frontier.
  double cost() const { return static_cast<double>(window_samples()) * adc_bits; }

  /// `base` re-pointed at this config's sample grid.
  LeakageConfig applied(LeakageConfig base) const;
  /// `base` with this config's ADC resolution and its bandwidth fraction
  /// converted to the decimated grid (base fraction x bandwidth_scale x
  /// nominal_rate / rate, clamped below Nyquist).  Exact identity for the
  /// nominal config.  Serves both the power scope and the EM probe's scope
  /// (each keeps its own base fraction / noise floor).
  ScopeConfig applied(ScopeConfig base) const;

  /// Throws std::invalid_argument on unusable knobs (rate too low for a
  /// meaningful window, bits outside dsp::quantize's range, non-positive
  /// bandwidth); returns *this for init-list chaining.
  const AcquisitionConfig& validated() const;

  // -- catalogue -------------------------------------------------------------
  static AcquisitionConfig nominal();
  /// 1.25 GS/s: the same scope at half the sample rate (159-sample windows).
  static AcquisitionConfig half_rate();
  /// 625 MS/s (81-sample windows).
  static AcquisitionConfig quarter_rate();
  /// Nominal grid, cheaper ADC (default 6 bits).
  static AcquisitionConfig low_resolution(int bits = 6);
  /// Nominal grid, narrower analog front-end (default a 125 MHz scope).
  static AcquisitionConfig narrowband(double scale = 0.5);
  /// The bench_acqsweep ladder, ordered by descending cost(): nominal,
  /// 6-bit, half-rate, half-rate 6-bit, quarter-rate.
  static std::vector<AcquisitionConfig> standard_sweep();
};

}  // namespace sidis::sim

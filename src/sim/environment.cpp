#include "sim/environment.hpp"

#include <algorithm>
#include <cmath>

namespace sidis::sim {

double DeviceModel::opcode_gain(std::uint64_t opcode_key) const {
  if (opcode_gain_spread <= 0.0) return 1.0;
  return 1.0 + hash_sym(hash_combine(corner_seed, hash_combine(0x6A17, opcode_key)),
                        opcode_gain_spread);
}

double DeviceModel::opcode_offset(std::uint64_t opcode_key) const {
  if (opcode_offset_spread <= 0.0) return 0.0;
  return hash_sym(hash_combine(corner_seed, hash_combine(0x0FF5, opcode_key)),
                  opcode_offset_spread);
}

double DeviceModel::thermal_gain(double campaign_progress) const {
  if (thermal_drift == 0.0) return 1.0;
  const double p = std::clamp(campaign_progress, 0.0, 1.0);
  // Saturating warm-up: fast early drift that levels off, normalized so a
  // full campaign spans exactly [1, 1 + thermal_drift].
  constexpr double kRate = 3.0;
  const double warmup = (1.0 - std::exp(-kRate * p)) / (1.0 - std::exp(-kRate));
  return 1.0 + thermal_drift * warmup;
}

double DeviceModel::aging_gain(double campaign_progress) const {
  if (aging_gain_drift == 0.0) return 1.0;
  return 1.0 + aging_gain_drift * std::clamp(campaign_progress, 0.0, 1.0);
}

double DeviceModel::aging_offset(double campaign_progress) const {
  if (aging_offset_drift == 0.0) return 0.0;
  return aging_offset_drift * std::clamp(campaign_progress, 0.0, 1.0);
}

DeviceModel DeviceModel::make(int device_id, std::uint64_t base_seed) {
  DeviceModel d;
  d.id = device_id;
  if (device_id == 0) {
    // Profiling device: nominal by definition (it *defines* the templates).
    d.signature_seed = 0;
    return d;
  }
  const std::uint64_t h = hash_combine(base_seed, static_cast<std::uint64_t>(device_id));
  d.signature_seed = splitmix64(h);
  // Shunt-resistor tolerance + silicon corner: the dominant, purely
  // multiplicative part of inter-device variation (what per-trace
  // normalization cancels).  A real 5% shunt on two boards plus supply
  // spread lands in the +-15% range.
  d.gain = 1.0 + hash_sym(hash_combine(h, 1), 0.20);
  d.offset = hash_sym(hash_combine(h, 2), 0.08);
  d.noise_factor = hash_range(hash_combine(h, 3), 0.9, 1.25);
  d.signature_spread = hash_range(hash_combine(h, 4), 0.005, 0.025);
  // Structured inter-device variation (Sec. 5.6): per-opcode process
  // corners, campaign-long thermal drift, and the board's decoupling pole.
  d.corner_seed = splitmix64(hash_combine(h, 5));
  d.opcode_gain_spread = hash_range(hash_combine(h, 6), 0.03, 0.09);
  d.opcode_offset_spread = hash_range(hash_combine(h, 7), 0.004, 0.012);
  d.thermal_drift = hash_sym(hash_combine(h, 8), 0.03);
  d.decoupling_cutoff = hash_range(hash_combine(h, 9), 0.09, 0.22);
  return d;
}

DeviceModel DeviceModel::make_corner(int device_id, std::uint64_t base_seed) {
  DeviceModel d;
  d.id = device_id;
  const std::uint64_t h = splitmix64(hash_combine(
      hash_combine(base_seed, 0xC02Dull), static_cast<std::uint64_t>(device_id)));
  d.signature_seed = splitmix64(h);
  // Sign-only rail draws: +-magnitude, never the benign middle of the band.
  const auto rail = [&](std::uint64_t k, double mag) {
    return (splitmix64(hash_combine(h, k)) & 1ull) != 0 ? mag : -mag;
  };
  d.gain = 1.0 + rail(1, 0.28);
  d.offset = rail(2, 0.12);
  d.noise_factor = hash_range(hash_combine(h, 3), 1.15, 1.35);
  d.signature_spread = hash_range(hash_combine(h, 4), 0.020, 0.035);
  d.corner_seed = splitmix64(hash_combine(h, 5));
  d.opcode_gain_spread = hash_range(hash_combine(h, 6), 0.09, 0.13);
  d.opcode_offset_spread = hash_range(hash_combine(h, 7), 0.012, 0.018);
  d.thermal_drift = rail(8, 0.05);
  // Below make()'s [0.09, 0.22] band: a slower pole filters *more* of the
  // signature band, the harshest spectral reshaping a board can impose.
  d.decoupling_cutoff = hash_range(hash_combine(h, 9), 0.055, 0.085);
  return d;
}

SessionContext SessionContext::make(int session_id, std::uint64_t base_seed) {
  SessionContext s;
  s.id = session_id;
  if (session_id == 0) {
    // Session 0 is the profiling session; everything else is relative to it,
    // but it still has a (nominal) ripple so features are realistic.
    s.ripple_amp = 0.010;
    s.ripple_freq = 1.0 / 700.0;
    s.probe_cutoff = 0.11;
    return s;
  }
  const std::uint64_t h = hash_combine(base_seed, static_cast<std::uint64_t>(session_id));
  // Session-to-session variation is dominated by the baseline ("DC") offset
  // -- supply level, probe coupling, scope vertical position -- with a small
  // gain component on top.  This is the paper's Sec. 4 observation: traces
  // of the same instruction captured later have "the similar shape but
  // different DC offsets".
  s.gain = 1.0 + hash_sym(hash_combine(h, 1), 0.22);
  s.offset = hash_sym(hash_combine(h, 2), 0.10);
  // Non-profiling sessions carry a noticeably stronger baseline wander --
  // the "different DC offsets" of Sec. 4: a slow, setup-systematic
  // fluctuation that loads the coarse-scale CWT coefficients.
  s.ripple_amp = hash_range(hash_combine(h, 3), 0.03, 0.08);
  s.ripple_freq = 1.0 / hash_range(hash_combine(h, 4), 500.0, 900.0);
  s.ripple_phase = hash_range(hash_combine(h, 6), 0.0, 6.283185307179586);
  s.temperature_drift = hash_sym(hash_combine(h, 5), 0.01);
  // The probe bandwidth is treated as a fixed property of the measurement
  // chain: a session-dependent tilt would distort high-amplitude signature
  // points in a way neither the within-class KL filter (it only sees
  // program-level variation) nor per-trace gain normalization can remove,
  // i.e. it would defeat the paper's own CSA recipe.  Sessions therefore
  // differ in gain/offset/ripple/drift only.
  s.probe_cutoff = 0.11;
  return s;
}

ProgramContext ProgramContext::make(int program_id, std::uint64_t base_seed) {
  ProgramContext p;
  p.id = program_id;
  const std::uint64_t h = hash_combine(base_seed, static_cast<std::uint64_t>(program_id));
  // Program-file-to-program-file variation within one profiling session is
  // small (same bench, same day): a fraction of a percent of gain.  It is
  // what the within-class KL maps estimate, so its scale straddles the
  // paper's two thresholds (0.0005 loose-pass / 0.005 tight-cut).
  p.gain = 1.0 + hash_sym(hash_combine(h, 1), 0.0010);
  p.offset = hash_sym(hash_combine(h, 2), 0.02);
  p.ripple_phase = hash_range(hash_combine(h, 3), 0.0, 6.283185307179586);
  return p;
}

}  // namespace sidis::sim

// Simulated near-field EM probe channel.
//
// A small magnetic probe over the die does not see the summed supply current
// the shunt resistor sees: it picks up a *spatially weighted* mix of the same
// switching events, weighted by how strongly each micro-architectural block
// couples into the loop at the probe's position.  This module models that
// position as a hash-derived coupling field keyed on `probe_seed`: each
// opcode's switching blocks get a per-opcode coupling weight (distinct from
// the power model's per-opcode process corner -- different seed universe,
// different support), and each bump within a cycle gets its own micro
// coupling, so the EM waveform is a re-weighted -- not rescaled -- sibling of
// the power waveform.  The probe has its own noise floor and its own
// bandwidth pole (loop + preamp), and its own covariate-shift process:
// *misalignment*.  Moving the probe off its profiling position both
// attenuates the pickup and slides the coupling field toward a second,
// displaced field -- a class-conditional shift that per-trace normalization
// cannot cancel, independent of the power channel's gain/thermal drift.
#pragma once

#include <cstdint>

#include "sim/hash.hpp"
#include "sim/oscilloscope.hpp"

namespace sidis::sim {

/// Configuration of the simulated EM probe.  Default-constructed = disabled:
/// campaigns capture power-only traces and consume exactly the same RNG
/// stream as before the channel existed.
struct EmProbeConfig {
  bool enabled = false;
  /// Seeds the spatial coupling field (the probe's position over the die).
  /// Distinct seeds = distinct probe placements with distinct per-opcode
  /// weight supports.
  std::uint64_t probe_seed = 0xE11E57ull;
  /// Per-opcode coupling weight support [coupling_lo, coupling_hi]: how
  /// strongly an opcode's switching blocks couple into the probe loop at the
  /// profiling position.
  double coupling_lo = 0.45;
  double coupling_hi = 1.35;
  /// Relative per-bump micro-coupling spread on top of the opcode weight
  /// (individual blocks sit at different distances from the loop).
  double bump_coupling_spread = 0.50;
  /// Static pickup floor (capacitive feed-through of the clock rails).
  double baseline = 0.12;
  /// Probe front-end noise floor -- noisier than the shunt channel.
  double noise_sigma = 0.016;
  /// Loop + preamp low-pass pole as a fraction of the sample rate (the EM
  /// scope's bandwidth limit; distinct from the power scope's 0.1).
  double bandwidth_fraction = 0.16;
  /// Static probe misalignment in arbitrary displacement units (0 = the
  /// profiling position).  Attenuates pickup and morphs the coupling field.
  double misalignment = 0.0;
  /// Additional misalignment accumulated across a campaign (reached at
  /// campaign_progress 1) -- the probe creeping on its mount, the EM
  /// channel's counterpart of the power channel's thermal gain drift.
  double misalignment_drift = 0.0;
};

/// Misalignment seen by a capture at `campaign_progress` in [0, 1].
double em_misalignment_at(const EmProbeConfig& em, double campaign_progress);

/// Monotone-decreasing pickup attenuation at misalignment `m` (1 at m = 0).
double em_attenuation(double misalignment);

/// Per-opcode spatial coupling weight at the given misalignment.  At m = 0
/// this is a hash_range draw in [coupling_lo, coupling_hi] keyed on
/// (probe_seed, okey); misalignment blends it toward a second displaced
/// field and applies em_attenuation.  `okey` is the power model's opcode key
/// (mnemonic << 8 | mode).
double em_opcode_coupling(const EmProbeConfig& em, std::uint64_t okey,
                          double misalignment);

/// Per-bump relative micro-coupling (mean ~1) for bump `ordinal` of the
/// cycle waveform keyed by `key` -- distinct blocks, distinct distances.
double em_bump_coupling(const EmProbeConfig& em, std::uint64_t key,
                        std::uint64_t ordinal, double misalignment);

/// The EM acquisition front-end: the shared scope model parameterized with
/// the probe's own noise floor and bandwidth pole.
ScopeConfig em_scope_config(const EmProbeConfig& em);

}  // namespace sidis::sim

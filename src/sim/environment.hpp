// Measurement environment: device process variation, measurement-session
// drift, and per-program-file context.  Together these generate the
// covariate shift phenomenon of Sec. 4 / Sec. 5.6 of the paper: traces of
// the *same* instruction captured from a different program file, at a
// different time, or from a different device, land in shifted feature-space
// positions.
//
// The dominant shift mechanism is a multiplicative gain (supply voltage,
// shunt tolerance, temperature, amplifier chain), plus an additive DC offset
// and a slow supply ripple.  A gain shift matters most exactly at
// high-amplitude CWT coefficients -- which is why the paper's Fig. 3 finds
// the *highest* KL peaks to be the most program-sensitive features.
#pragma once

#include <cstdint>

#include "sim/hash.hpp"

namespace sidis::sim {

/// Per-device process variation, derived deterministically from an id.
///
/// Beyond the global gain/offset pair, three structured inter-device effects
/// model why templates trained on one chip collapse on another (Sec. 5.6 /
/// Table 4):
///
///  * per-opcode process corners: each opcode's switching blocks sit on
///    different dies in different corners of the process distribution, so
///    its current signature is scaled (and its quiescent draw shifted) by an
///    opcode-specific amount.  A *global* gain is cancelled by per-trace
///    normalization; a class-conditional one is not -- it moves templates.
///  * thermal drift: a chip warms up over a capture campaign, so its
///    effective gain follows a slow multiplicative trend in campaign time.
///  * decoupling capacitance: each board's decoupling network forms a
///    different low-pass pole on the shunt path, reshaping the trace
///    spectrum per device (clusters rotate, they don't just translate).
struct DeviceModel {
  int id = 0;
  std::uint64_t signature_seed = 0;  ///< perturbs opcode waveform shapes
  double gain = 1.0;                 ///< device gain (shunt + silicon)
  double offset = 0.0;               ///< static current offset
  double noise_factor = 1.0;         ///< relative thermal-noise level
  double signature_spread = 0.0;     ///< relative perturbation of bump amplitudes
  std::uint64_t corner_seed = 0;     ///< keys the per-opcode corner streams
  double opcode_gain_spread = 0.0;   ///< per-opcode multiplicative corner, +-spread
  double opcode_offset_spread = 0.0; ///< per-opcode additive baseline corner
  double thermal_drift = 0.0;        ///< campaign-long multiplicative trend amplitude
  /// Decoupling-network low-pass pole (fraction of the sample rate; 0
  /// disables the stage -- the profiling device's decoupling is absorbed in
  /// the scope's own bandwidth limit, which defines "nominal").
  double decoupling_cutoff = 0.0;
  /// Aging drift: slow, *linear* gain/offset trends across a deployment
  /// (electromigration, shunt-solder creep, regulator reference sag).
  /// Unlike thermal_drift's saturating warm-up these never level off, so a
  /// long-running monitor keeps drifting until recalibrated.  Both default
  /// to 0 -- DeviceModel::make never sets them; drift scenarios opt in.
  double aging_gain_drift = 0.0;   ///< gain multiplier reaches 1 + drift at progress 1
  double aging_offset_drift = 0.0; ///< additive offset reaches this value at progress 1

  /// Multiplicative process corner of one opcode's current signature.
  /// `opcode_key` is the power model's signature key (mnemonic << 8 | mode);
  /// draws are uniform in [1 - spread, 1 + spread), independent per opcode
  /// and per device via the corner seed.
  double opcode_gain(std::uint64_t opcode_key) const;
  /// Additive quiescent-current corner of one opcode, uniform in
  /// [-spread, spread).
  double opcode_offset(std::uint64_t opcode_key) const;
  /// Warm-up gain at `campaign_progress` in [0, 1]: a saturating exponential
  /// trend from exactly 1.0 (campaign start) towards 1 + thermal_drift.
  /// Monotone in progress for either drift sign.
  double thermal_gain(double campaign_progress) const;
  /// Aging gain at `campaign_progress` in [0, 1]: linear from exactly 1.0 to
  /// 1 + aging_gain_drift (no saturation -- aging does not equilibrate).
  double aging_gain(double campaign_progress) const;
  /// Aging offset at `campaign_progress`: linear from 0 to aging_offset_drift.
  double aging_offset(double campaign_progress) const;

  /// Device 0 is the training/profiling device with nominal parameters;
  /// devices 1..N are targets with hash-derived variation.
  static DeviceModel make(int device_id, std::uint64_t base_seed = 0x5eed);

  /// A corner-sampled deployment device: every structured variation knob is
  /// drawn from the *edges* of (or beyond) make()'s distribution -- gain at
  /// the tolerance rails, wider per-opcode corners, stronger thermal drift,
  /// a heavier decoupling pole below make()'s band.  This is the held-out
  /// device F of the zero-shot generalization protocol: a fleet profiled on
  /// make() devices {A..E} never sees anything this far out, so accuracy
  /// here measures extrapolation, not interpolation.  Ids live in their own
  /// seed-space (make(id) and make_corner(id) never collide).
  static DeviceModel make_corner(int device_id, std::uint64_t base_seed = 0x5eed);
};

/// A measurement session: one oscilloscope setup at one time.
struct SessionContext {
  int id = 0;
  double gain = 1.0;        ///< amplifier/probe gain this session
  double offset = 0.0;      ///< baseline offset this session
  double ripple_amp = 0.0;  ///< supply-ripple amplitude
  double ripple_freq = 0.0; ///< ripple frequency, cycles per *sample*
  double ripple_phase = 0.0;///< baseline-wander phase of this setup
  double temperature_drift = 0.0;  ///< slow linear drift over a capture
  /// Session-dependent analog bandwidth (probe position, cable, coupling):
  /// a single-pole low-pass whose cutoff (fraction of sample rate) differs
  /// per setup.  0 disables the stage.  This is what makes the shift more
  /// than a pure gain -- clusters rotate, not just translate (Fig. 3).
  double probe_cutoff = 0.0;

  static SessionContext make(int session_id, std::uint64_t base_seed = 0xca11);
};

/// One profiling program file (the paper distributes each class's traces
/// over 10..19 generated .ino files; each file lands in a slightly different
/// electrical context).
struct ProgramContext {
  int id = 0;
  double gain = 1.0;
  double offset = 0.0;
  double ripple_phase = 0.0;

  static ProgramContext make(int program_id, std::uint64_t base_seed = 0x90a7);
};

/// The combined multiplicative/additive environment applied to a capture.
struct Environment {
  DeviceModel device;
  SessionContext session;
  ProgramContext program;
  /// Position of this capture within its campaign, in [0, 1]; drives the
  /// device's thermal warm-up trend.  Keyed by capture index (not wall
  /// time), so campaigns replay bit-identically at any worker count.
  double campaign_progress = 0.0;

  double total_gain() const {
    return device.gain * device.thermal_gain(campaign_progress) *
           device.aging_gain(campaign_progress) * session.gain * program.gain;
  }
  double total_offset() const {
    return device.offset + device.aging_offset(campaign_progress) +
           session.offset + program.offset;
  }
};

}  // namespace sidis::sim

// Measurement environment: device process variation, measurement-session
// drift, and per-program-file context.  Together these generate the
// covariate shift phenomenon of Sec. 4 / Sec. 5.6 of the paper: traces of
// the *same* instruction captured from a different program file, at a
// different time, or from a different device, land in shifted feature-space
// positions.
//
// The dominant shift mechanism is a multiplicative gain (supply voltage,
// shunt tolerance, temperature, amplifier chain), plus an additive DC offset
// and a slow supply ripple.  A gain shift matters most exactly at
// high-amplitude CWT coefficients -- which is why the paper's Fig. 3 finds
// the *highest* KL peaks to be the most program-sensitive features.
#pragma once

#include <cstdint>

#include "sim/hash.hpp"

namespace sidis::sim {

/// Per-device process variation, derived deterministically from an id.
struct DeviceModel {
  int id = 0;
  std::uint64_t signature_seed = 0;  ///< perturbs opcode waveform shapes
  double gain = 1.0;                 ///< device gain (shunt + silicon)
  double offset = 0.0;               ///< static current offset
  double noise_factor = 1.0;         ///< relative thermal-noise level
  double signature_spread = 0.0;     ///< relative perturbation of bump amplitudes

  /// Device 0 is the training/profiling device with nominal parameters;
  /// devices 1..N are targets with hash-derived variation.
  static DeviceModel make(int device_id, std::uint64_t base_seed = 0x5eed);
};

/// A measurement session: one oscilloscope setup at one time.
struct SessionContext {
  int id = 0;
  double gain = 1.0;        ///< amplifier/probe gain this session
  double offset = 0.0;      ///< baseline offset this session
  double ripple_amp = 0.0;  ///< supply-ripple amplitude
  double ripple_freq = 0.0; ///< ripple frequency, cycles per *sample*
  double ripple_phase = 0.0;///< baseline-wander phase of this setup
  double temperature_drift = 0.0;  ///< slow linear drift over a capture
  /// Session-dependent analog bandwidth (probe position, cable, coupling):
  /// a single-pole low-pass whose cutoff (fraction of sample rate) differs
  /// per setup.  0 disables the stage.  This is what makes the shift more
  /// than a pure gain -- clusters rotate, not just translate (Fig. 3).
  double probe_cutoff = 0.0;

  static SessionContext make(int session_id, std::uint64_t base_seed = 0xca11);
};

/// One profiling program file (the paper distributes each class's traces
/// over 10..19 generated .ino files; each file lands in a slightly different
/// electrical context).
struct ProgramContext {
  int id = 0;
  double gain = 1.0;
  double offset = 0.0;
  double ripple_phase = 0.0;

  static ProgramContext make(int program_id, std::uint64_t base_seed = 0x90a7);
};

/// The combined multiplicative/additive environment applied to a capture.
struct Environment {
  DeviceModel device;
  SessionContext session;
  ProgramContext program;

  double total_gain() const { return device.gain * session.gain * program.gain; }
  double total_offset() const { return device.offset + session.offset + program.offset; }
};

}  // namespace sidis::sim

#include "sim/acq_config.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sidis::sim {

namespace {

/// Relative epsilon guard shared with the synthesizer's window math: keeps
/// exactly-representable spans (all nominal products are exact binary
/// fractions) on the integer they already sit on, while absorbing the 1-ulp
/// wobble of decimated grids whose products are inexact.
double guard(double x) { return 1e-9 * std::max(1.0, x); }

}  // namespace

std::size_t AcquisitionConfig::window_samples() const {
  const double span = 2.0 * samples_per_cycle;
  return static_cast<std::size_t>(std::ceil(span - guard(span))) + 2;
}

LeakageConfig AcquisitionConfig::applied(LeakageConfig base) const {
  base.samples_per_cycle = samples_per_cycle;
  return base;
}

ScopeConfig AcquisitionConfig::applied(ScopeConfig base) const {
  // The base fraction is the front-end's bandwidth on the *nominal* grid;
  // scale it (different scope) then re-express on this grid (same absolute
  // frequency, lower sample rate => larger fraction).  Both factors are
  // exactly 1.0 at nominal, so the multiply is bit-exact there.
  const double rate_ratio = kNominalSamplesPerCycle / samples_per_cycle;
  base.bandwidth_fraction =
      std::min(base.bandwidth_fraction * bandwidth_scale * rate_ratio, 0.49);
  base.adc_bits = adc_bits;
  return base;
}

const AcquisitionConfig& AcquisitionConfig::validated() const {
  if (!(samples_per_cycle >= 4.0)) {
    throw std::invalid_argument(
        "AcquisitionConfig: samples_per_cycle < 4 cannot resolve a cycle");
  }
  if (adc_bits < 2 || adc_bits > 24) {
    throw std::invalid_argument("AcquisitionConfig: adc_bits out of [2, 24]");
  }
  if (!(bandwidth_scale > 0.0)) {
    throw std::invalid_argument("AcquisitionConfig: bandwidth_scale must be > 0");
  }
  const auto window = static_cast<long long>(window_samples());
  if (window + window_offset < 4) {
    throw std::invalid_argument(
        "AcquisitionConfig: window_offset pushes the window before the capture");
  }
  return *this;
}

AcquisitionConfig AcquisitionConfig::nominal() { return {}; }

AcquisitionConfig AcquisitionConfig::half_rate() {
  AcquisitionConfig c;
  c.label = "half-rate";
  c.samples_per_cycle = kNominalSamplesPerCycle / 2.0;
  return c;
}

AcquisitionConfig AcquisitionConfig::quarter_rate() {
  AcquisitionConfig c;
  c.label = "quarter-rate";
  c.samples_per_cycle = kNominalSamplesPerCycle / 4.0;
  return c;
}

AcquisitionConfig AcquisitionConfig::low_resolution(int bits) {
  AcquisitionConfig c;
  c.label = std::to_string(bits) + "-bit";
  c.adc_bits = bits;
  return c;
}

AcquisitionConfig AcquisitionConfig::narrowband(double scale) {
  AcquisitionConfig c;
  c.label = "narrowband";
  c.bandwidth_scale = scale;
  return c;
}

std::vector<AcquisitionConfig> AcquisitionConfig::standard_sweep() {
  AcquisitionConfig half_low = half_rate();
  half_low.label = "half-rate-6-bit";
  half_low.adc_bits = 6;
  return {nominal(), low_resolution(6), half_rate(), half_low, quarter_rate()};
}

}  // namespace sidis::sim

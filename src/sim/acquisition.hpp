// Trace-acquisition campaign: the simulated counterpart of the paper's
// PC + oscilloscope + Arduino framework (Sec. 5.1).
//
// For each requested trace, a Fig-4 segment template is generated around the
// target instruction, executed on the functional simulator with a randomized
// register file and SRAM, synthesized into a current waveform, captured by
// the scope model, cut to the paper's 315-sample fetch+execute window, and
// cleaned by subtracting the averaged SBI/NOPx5/CBI reference trace.
#pragma once

#include <optional>
#include <random>

#include "avr/program.hpp"
#include "sim/acq_config.hpp"
#include "sim/em_model.hpp"
#include "sim/fault.hpp"
#include "sim/oscilloscope.hpp"
#include "sim/power_model.hpp"
#include "sim/trace.hpp"

namespace sidis::sim {

struct AcquisitionOptions {
  /// Window length: 2 cycles at 156.25 samples each, plus 2 guard samples
  /// (the paper's 315 = floor(2.5 G / 16 M * 2) + 2).
  std::size_t window_samples = 315;
  bool subtract_reference = true;
  /// Optional paired EM probe (disabled by default).  When enabled, every
  /// capture also records the aligned EM window into Trace::em_samples; the
  /// EM chain has its own scope model, reference window, gain estimate and
  /// fault injector, and all its random draws come from a sub-stream keyed
  /// off one draw of the capture's RNG -- power samples within a capture are
  /// bit-identical with the probe on or off.
  EmProbeConfig em;
  /// Signed trigger skew in samples, applied to every window cut *including*
  /// both reference windows (so subtraction stays aligned with the shifted
  /// target windows).  The AcquisitionConfig constructor fills it from
  /// AcquisitionConfig::window_offset.
  int window_offset = 0;
};

/// One acquisition campaign against one device in one measurement session.
class AcquisitionCampaign {
 public:
  AcquisitionCampaign(DeviceModel device, SessionContext session,
                      LeakageConfig leakage = {}, ScopeConfig scope = {},
                      AcquisitionOptions options = {});

  /// Campaign at an explicit acquisition configuration: `acq` re-points the
  /// leakage model at its sample grid, applies its ADC resolution and
  /// (grid-converted) bandwidth to the power *and* EM scope front-ends, and
  /// overrides the options' window length/offset with its own.  The nominal
  /// config reproduces the plain constructor bit-identically.  Throws
  /// std::invalid_argument on an unusable config (validated()).
  AcquisitionCampaign(DeviceModel device, SessionContext session,
                      const AcquisitionConfig& acq, LeakageConfig leakage = {},
                      ScopeConfig scope = {}, AcquisitionOptions options = {});

  /// Captures a single trace of `target` inside program context `prog`.
  /// `campaign_progress` in [0, 1] positions the capture on the device's
  /// thermal warm-up trend (0 = campaign start); capture_class fills it from
  /// the capture index, so corpora stay worker-count-invariant.
  Trace capture_trace(const avr::Instruction& target, const ProgramContext& prog,
                      std::mt19937_64& rng, double campaign_progress = 0.0) const;

  /// Captures `n` traces of one instruction class, operands freshly
  /// randomized per trace, spread round-robin over program files
  /// [first_program, first_program + num_programs).
  TraceSet capture_class(std::size_t class_idx, std::size_t n, int num_programs,
                         std::mt19937_64& rng, int first_program = 0,
                         const avr::SampleOptions& sample_opts = {}) const;

  /// Captures one full program execution and cuts one 315-sample window per
  /// executed instruction -- the deployment mode of the disassembler
  /// (Sec. 5.7 / the paper's future-work "real code" scenario).
  ///
  /// Windows start one cycle before each instruction's execute cycle, so the
  /// first executed instruction (with no preceding fetch cycle to observe)
  /// yields no window; real monitored programs start with a known preamble
  /// (e.g. SBI + NOP), whose first three cycles also serve as the per-capture
  /// gain reference.  Each window's meta carries the ground-truth instruction
  /// for scoring.
  TraceSet capture_program(const avr::Program& program, const ProgramContext& prog,
                           std::mt19937_64& rng, std::size_t max_steps = 4096) const;

  /// Register-profiling captures (Sec. 5.3): `n` traces with the given Rd
  /// (dest = true) or Rr (dest = false) pinned and the instruction class
  /// drawn uniformly from the classes that can legally use that register.
  TraceSet capture_register(bool dest, std::uint8_t reg, std::size_t n,
                            int num_programs, std::mt19937_64& rng,
                            int first_program = 0) const;

  const DeviceModel& device() const { return synth_.device(); }
  const SessionContext& session() const { return session_; }
  const AcquisitionOptions& options() const { return options_; }
  const PowerSynthesizer& synthesizer() const { return synth_; }
  /// The configuration this campaign was built with (nominal for the plain
  /// constructor).  Every captured trace's meta carries the truthful
  /// rate/resolution stamp regardless, taken from the live chain.
  const AcquisitionConfig& acquisition_config() const { return acq_; }

  /// The averaged reference window that gets subtracted (exposed for tests
  /// and for the paper's Fig-4 discussion).
  const std::vector<double>& reference_window() const { return reference_window_; }

  /// The EM channel's own averaged reference window (empty when the probe is
  /// disabled).  Recorded at the probe's *base* misalignment, so drift away
  /// from the profiling position survives subtraction -- same logic as
  /// use_reference() on the power channel.
  const std::vector<double>& em_reference_window() const {
    return em_reference_window_;
  }

  /// Arms fault injection for subsequent captures.  Faults corrupt the ideal
  /// current waveform after the power model and before the scope front-end
  /// (where supply disturbance, probe motion and clock drift enter a real
  /// bench); the reference window stays clean, mirroring a monitor whose
  /// averaged reference was recorded on a healthy setup.  Each capture's
  /// fault stream is keyed off one draw from its RNG stream, so campaigns
  /// stay bit-identical for a fixed seed at any worker count.
  void inject_faults(FaultProfile profile);
  /// Disarms fault injection.
  void clear_faults() { injector_.reset(); }
  const FaultInjector* injector() const {
    return injector_ ? &*injector_ : nullptr;
  }

  /// Arms fault injection on the EM channel only -- probe knocks, loop
  /// interference, preamp saturation.  Independent of inject_faults(), so a
  /// sweep can degrade one modality while the other stays clean.
  void inject_em_faults(FaultProfile profile);
  void clear_em_faults() { em_injector_.reset(); }
  const FaultInjector* em_injector() const {
    return em_injector_ ? &*em_injector_ : nullptr;
  }

  /// Replaces the campaign's own reference with an externally supplied one.
  ///
  /// This models the practical covariate-shift scenario of Sec. 4: a deployed
  /// monitor classifies field traces against templates (and the reference
  /// trace) recorded during *profiling*.  The gain/offset difference between
  /// the profiling session and the field session then survives subtraction as
  /// a structured residual -- the "similar shape but different DC offsets"
  /// the paper observes.
  void use_reference(std::vector<double> reference);

 private:
  std::vector<double> compute_reference_window() const;
  std::vector<double> compute_em_reference_window() const;
  /// Window-cut start with the configured trigger skew applied (floored at
  /// sample 0 -- validated() bounds how negative the skew can go).
  std::size_t shifted(std::size_t base) const;
  /// Fills the trace's acquisition stamp from the live capture chain.
  void stamp_acquisition(TraceMeta& meta) const;
  /// Applies the armed fault profile (if any) to an ideal waveform, keyed by
  /// one draw from `rng`; returns the profile severity (0 when clean).
  double maybe_inject(std::vector<double>& wave, std::mt19937_64& rng) const;
  /// Captures the EM window paired with a power capture: renders the EM
  /// waveform for the same records, faults/captures it through the EM chain
  /// (all draws from `em_rng`), cuts [start, start + window), and fills the
  /// trace's em fields.
  void capture_em_window(const std::vector<avr::ExecRecord>& records,
                         const IssueMap& issue, std::size_t start,
                         double campaign_progress, std::mt19937_64& em_rng,
                         Trace& trace) const;

  SessionContext session_;
  AcquisitionConfig acq_;
  PowerSynthesizer synth_;
  Oscilloscope scope_;
  Oscilloscope em_scope_;
  AcquisitionOptions options_;
  std::vector<double> reference_window_;
  std::vector<double> em_reference_window_;
  std::optional<FaultInjector> injector_;
  std::optional<FaultInjector> em_injector_;
};

}  // namespace sidis::sim

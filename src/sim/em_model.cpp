#include "sim/em_model.hpp"

#include <algorithm>
#include <cmath>

namespace sidis::sim {

namespace {
// Second seed universe for the displaced coupling field misalignment slides
// toward; fixed so misaligned corpora replay bit-identically.
constexpr std::uint64_t kDisplacedField = 0x5ca77e12ull;
}  // namespace

double em_misalignment_at(const EmProbeConfig& em, double campaign_progress) {
  const double p = std::clamp(campaign_progress, 0.0, 1.0);
  return std::max(0.0, em.misalignment + em.misalignment_drift * p);
}

double em_attenuation(double misalignment) {
  const double m = std::max(0.0, misalignment);
  return 1.0 / (1.0 + 0.45 * m);
}

namespace {
/// Blend fraction toward the displaced field: 0 at m = 0, -> 1 as m grows.
double field_blend(double misalignment) {
  const double m = std::max(0.0, misalignment);
  return m / (1.0 + m);
}
}  // namespace

double em_opcode_coupling(const EmProbeConfig& em, std::uint64_t okey,
                          double misalignment) {
  const double w0 = hash_range(hash_combine(em.probe_seed, okey),
                               em.coupling_lo, em.coupling_hi);
  const double w1 =
      hash_range(hash_combine(em.probe_seed ^ kDisplacedField, okey),
                 em.coupling_lo, em.coupling_hi);
  const double t = field_blend(misalignment);
  return ((1.0 - t) * w0 + t * w1) * em_attenuation(misalignment);
}

double em_bump_coupling(const EmProbeConfig& em, std::uint64_t key,
                        std::uint64_t ordinal, double misalignment) {
  const std::uint64_t h = hash_combine(hash_combine(em.probe_seed, key), ordinal);
  const std::uint64_t hd = hash_combine(
      hash_combine(em.probe_seed ^ kDisplacedField, key), ordinal);
  const double c0 = 1.0 + em.bump_coupling_spread * hash_sym(h, 1.0);
  const double c1 = 1.0 + em.bump_coupling_spread * hash_sym(hd, 1.0);
  const double t = field_blend(misalignment);
  return std::max(0.05, (1.0 - t) * c0 + t * c1);
}

ScopeConfig em_scope_config(const EmProbeConfig& em) {
  ScopeConfig scope;
  scope.noise_sigma = em.noise_sigma;
  scope.bandwidth_fraction = em.bandwidth_fraction;
  return scope;
}

}  // namespace sidis::sim

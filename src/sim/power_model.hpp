// Physics-inspired power-trace synthesizer.
//
// Replaces the paper's shunt-resistor measurement (Sec. 5.1) with a
// first-order CMOS leakage model evaluated per clock cycle of the functional
// simulator's ExecRecord stream:
//
//   * a clock edge spike common to every cycle (the dominant feature real
//     AVR traces show at 16 MHz);
//   * a deterministic per-opcode waveform -- a small set of Gaussian bumps
//     whose positions/amplitudes are hash-derived from the instruction class
//     -- modelling which micro-architectural blocks (ALU, address generator,
//     SRAM sense amps...) switch in that cycle;
//   * register-address leakage: each of the 5 address bits of Rd and Rr
//     drives a bump of fixed phase and bit-dependent polarity (the register
//     file row decoders), enabling the paper's third classification level;
//   * data-dependent Hamming-weight / Hamming-distance terms (the classic
//     DPA leakage), which act as within-class nuisance variance here;
//   * fetch-bus leakage of the *next* instruction word during each
//     instruction's final cycle -- the AVR's 2-stage pipeline overlap that
//     motivates the paper's Fig. 4 segment template;
//   * memory-bus terms for loads/stores.
//
// Opcode signatures are keyed on the *issued* mnemonic (before alias
// canonicalization).  On silicon, exact encoding aliases (SBR==ORI, CBR==ANDI)
// are indistinguishable; the paper nevertheless treats all 112 classes as
// separable, so the substrate gives alias classes their own micro-signature.
// This is the one deliberate departure from strict physics and is called out
// in DESIGN.md.
#pragma once

#include <random>
#include <unordered_map>
#include <vector>

#include "avr/cpu.hpp"
#include "avr/program.hpp"
#include "sim/environment.hpp"

namespace sidis::sim {

struct EmProbeConfig;  // sim/em_model.hpp

/// All leakage amplitudes in one tunable bag (ablation benches tweak these).
struct LeakageConfig {
  double samples_per_cycle = 156.25;  ///< 2.5 GS/s scope @ 16 MHz clock
  double baseline = 0.35;             ///< static supply current
  double clock_spike_amp = 1.0;
  double clock_spike_width = 0.012;   ///< as a fraction of a cycle
  /// Group-level signature: which micro-architectural blocks switch (ALU,
  /// address generator, SRAM, SREG logic...).  Large, because different
  /// groups drive different hardware -- the paper's Sec. 2.1 observation
  /// that inter-group signatures are the most distinguishable.
  int group_bumps = 8;
  double group_amp = 0.50;
  /// Mnemonic-level deviation within a group: the same blocks switch, but
  /// each mnemonic drives them with slightly different strength, so the
  /// deviation is a relative *modulation* of the group bumps rather than an
  /// independent waveform.  This is what puts the class-discriminating
  /// information at the high-amplitude points -- exactly where gain-type
  /// covariate shift bites hardest (the paper's Fig. 3 observation).
  double intra_modulation = 0.18;
  /// A couple of small mnemonic-specific micro-bumps on top (control-logic
  /// differences), keeping classes distinguishable even where their
  /// modulation draws happen to coincide.
  int intra_bumps = 6;
  double intra_amp = 0.08;
  double fetch_amp = 0.10;            ///< next-opcode fetch-bus signature
  double fetch_bit_amp = 0.020;       ///< per fetch-bus bit line
  double reg_bit_amp = 0.060;         ///< per Rd/Rr address bit
  double reg_row_amp = 0.045;         ///< register-specific row-driver bump
  double data_amp = 0.008;            ///< per Hamming-weight unit
  double mem_bus_amp = 0.030;         ///< per memory data/address HW unit
  double mem_active_amp = 0.22;       ///< wide bump when the data bus is busy
};

/// Maps word addresses to the instructions *as issued* (aliases preserved),
/// so the synthesizer can key signatures on them.  Built once per program.
using IssueMap = std::unordered_map<std::uint16_t, avr::Instruction>;

/// Builds the issue map for a program placed at `origin`.
IssueMap make_issue_map(const avr::Program& program, std::uint16_t origin = 0);

/// Synthesizes ideal (noise-free, environment-free) supply-current waveforms
/// from executed-instruction records.  Environment and noise are applied by
/// the Oscilloscope; splitting the two mirrors the physical chain
/// (silicon -> shunt -> probe -> scope front-end).
class PowerSynthesizer {
 public:
  PowerSynthesizer(DeviceModel device, LeakageConfig config = {});

  /// Renders the current waveform for a record stream.  `issued` (optional)
  /// recovers alias mnemonics by fetch address.  The waveform length is
  /// ceil(total_cycles * samples_per_cycle).
  std::vector<double> synthesize(const std::vector<avr::ExecRecord>& records,
                                 const IssueMap* issued = nullptr) const;

  /// Renders the EM-probe waveform for the same record stream: the identical
  /// switching events, re-weighted by the probe's spatial coupling field at
  /// the given `misalignment` (see sim/em_model.hpp).  Sample-aligned with
  /// synthesize() so window cuts pair up.  The per-opcode process corner
  /// still applies (the probe sees the same currents); the corner's
  /// quiescent offset does not (a magnetic loop is blind to DC).
  std::vector<double> synthesize_em(const std::vector<avr::ExecRecord>& records,
                                    const IssueMap* issued,
                                    const EmProbeConfig& em,
                                    double misalignment) const;

  /// First output-sample index of a given cycle offset (for window cutting).
  std::size_t sample_of_cycle(double cycle) const;

  const LeakageConfig& config() const { return config_; }
  const DeviceModel& device() const { return device_; }

 private:
  struct Bump {
    double center = 0.0;  ///< phase within the cycle, [0,1)
    double width = 0.02;  ///< std-dev as a fraction of a cycle
    double amp = 0.0;
  };

  void opcode_signature(const avr::Instruction& issued, unsigned cycle,
                        std::vector<Bump>& out) const;
  void fetch_signature(std::uint16_t opcode_word, std::vector<Bump>& out) const;
  void register_leakage(const avr::ExecRecord& rec, std::vector<Bump>& out) const;
  void data_leakage(const avr::ExecRecord& rec, std::vector<Bump>& out) const;
  void memory_leakage(const avr::ExecRecord& rec, std::vector<Bump>& out) const;
  void render_cycle(std::vector<double>& wave, double cycle_start,
                    const std::vector<Bump>& bumps) const;
  /// Shared renderer behind synthesize / synthesize_em; `em` selects the
  /// channel (nullptr = power).
  std::vector<double> synthesize_impl(const std::vector<avr::ExecRecord>& records,
                                      const IssueMap* issued,
                                      const EmProbeConfig* em,
                                      double misalignment) const;

  DeviceModel device_;
  LeakageConfig config_;
};

}  // namespace sidis::sim

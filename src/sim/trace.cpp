#include "sim/trace.hpp"

#include <algorithm>

namespace sidis::sim {

std::vector<TraceSet> split_by_program(const TraceSet& traces) {
  std::vector<int> ids;
  std::vector<TraceSet> out;
  for (const Trace& t : traces) {
    const auto it = std::find(ids.begin(), ids.end(), t.meta.program_id);
    std::size_t idx;
    if (it == ids.end()) {
      ids.push_back(t.meta.program_id);
      out.emplace_back();
      idx = out.size() - 1;
    } else {
      idx = static_cast<std::size_t>(it - ids.begin());
    }
    out[idx].push_back(t);
  }
  return out;
}

Trace channel_view(const Trace& trace, Channel channel) {
  Trace out;
  out.meta = trace.meta;
  out.meta.em_gain_estimate = 1.0;
  out.meta.em_fault_severity = 0.0;
  if (channel == Channel::kPower) {
    out.samples = trace.samples;
  } else {
    out.samples = trace.em_samples;
    out.meta.gain_estimate = trace.meta.em_gain_estimate;
    out.meta.fault_severity = trace.meta.em_fault_severity;
  }
  return out;
}

TraceSet channel_views(const TraceSet& traces, Channel channel) {
  TraceSet out;
  out.reserve(traces.size());
  for (const Trace& t : traces) out.push_back(channel_view(t, channel));
  return out;
}

TraceSet filter_by_program(const TraceSet& traces, int id) {
  TraceSet out;
  for (const Trace& t : traces) {
    if (t.meta.program_id == id) out.push_back(t);
  }
  return out;
}

}  // namespace sidis::sim

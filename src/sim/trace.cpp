#include "sim/trace.hpp"

#include <algorithm>

namespace sidis::sim {

std::vector<TraceSet> split_by_program(const TraceSet& traces) {
  std::vector<int> ids;
  std::vector<TraceSet> out;
  for (const Trace& t : traces) {
    const auto it = std::find(ids.begin(), ids.end(), t.meta.program_id);
    std::size_t idx;
    if (it == ids.end()) {
      ids.push_back(t.meta.program_id);
      out.emplace_back();
      idx = out.size() - 1;
    } else {
      idx = static_cast<std::size_t>(it - ids.begin());
    }
    out[idx].push_back(t);
  }
  return out;
}

TraceSet filter_by_program(const TraceSet& traces, int id) {
  TraceSet out;
  for (const Trace& t : traces) {
    if (t.meta.program_id == id) out.push_back(t);
  }
  return out;
}

}  // namespace sidis::sim

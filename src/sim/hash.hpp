// Deterministic hashing helpers for the leakage substrate.
//
// Every "physical" characteristic in the simulator (opcode waveform shapes,
// device process variation, per-program covariate shift) is derived from
// seeds through splitmix64, so experiments are reproducible bit-for-bit and
// no global state exists.
#pragma once

#include <cstdint>

namespace sidis::sim {

/// splitmix64 finalizer: high-quality 64-bit mixing, the standard choice for
/// turning structured keys into independent streams.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Combines two keys into one stream id.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return splitmix64(a ^ splitmix64(b));
}

/// Maps a hash to a uniform double in [0, 1).
constexpr double hash_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Maps a hash to a uniform double in [lo, hi).
constexpr double hash_range(std::uint64_t h, double lo, double hi) {
  return lo + (hi - lo) * hash_unit(h);
}

/// Maps a hash to a uniform double in [-a, a).
constexpr double hash_sym(std::uint64_t h, double a) {
  return hash_range(h, -a, a);
}

/// Population count of a byte (Hamming weight of a data value).
constexpr int hamming_weight(std::uint8_t v) {
  int c = 0;
  for (int i = 0; i < 8; ++i) c += (v >> i) & 1;
  return c;
}

/// Population count of a 16-bit word (bus values).
constexpr int hamming_weight16(std::uint16_t v) {
  return hamming_weight(static_cast<std::uint8_t>(v & 0xFF)) +
         hamming_weight(static_cast<std::uint8_t>(v >> 8));
}

/// Hamming distance between two bytes (switching activity of a register
/// update, the first-order CMOS leakage term).
constexpr int hamming_distance(std::uint8_t a, std::uint8_t b) {
  return hamming_weight(static_cast<std::uint8_t>(a ^ b));
}

}  // namespace sidis::sim

// Power traces and labeled trace collections.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "avr/isa.hpp"

namespace sidis::sim {

/// Labels attached to one captured trace.  `class_idx` indexes the 112-entry
/// avr::instruction_classes() table; register fields are present when the
/// class uses them.
struct TraceMeta {
  std::size_t class_idx = 0;
  std::optional<std::uint8_t> rd;
  std::optional<std::uint8_t> rr;
  int program_id = 0;   ///< which profiling program file produced it
  int device_id = 0;    ///< which physical device it was captured from
  int session_id = 0;   ///< measurement session (time / setup)
  avr::Instruction instr;  ///< full ground-truth instruction
  /// Per-capture gain reference, estimated from the content-free SBI+NOP
  /// trigger prefix of the raw capture (std-dev in scope units).  The
  /// covariate-shift-adaptation normalization divides by it, cancelling the
  /// session/device/program gain without touching the instruction-dependent
  /// part of the window.
  double gain_estimate = 1.0;
  /// Severity of the FaultProfile that corrupted this capture (0 = clean).
  /// Ground-truth bookkeeping for robustness sweeps and runtime telemetry;
  /// the classifier never reads it.
  double fault_severity = 0.0;
};

/// One captured power trace: the paper's 315-sample window plus its labels.
struct Trace {
  std::vector<double> samples;
  TraceMeta meta;
};

/// A set of traces, usually one class or one experiment's worth.
using TraceSet = std::vector<Trace>;

/// Splits a trace set by `program_id`; returned vector is indexed by the
/// order program ids first appear.
std::vector<TraceSet> split_by_program(const TraceSet& traces);

/// Returns the subset with meta.program_id == id.
TraceSet filter_by_program(const TraceSet& traces, int id);

}  // namespace sidis::sim

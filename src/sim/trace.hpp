// Power traces and labeled trace collections.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "avr/isa.hpp"

namespace sidis::sim {

/// Acquisition modality of a capture.  kPower is the paper's shunt-resistor
/// supply-current channel; kEm is the simulated near-field probe channel
/// (see sim/em_model.hpp).  A paired Trace carries both, aligned sample for
/// sample; channel_view() projects either one out as a plain single-channel
/// trace for the per-channel classifier stack.
enum class Channel : std::uint8_t { kPower = 0, kEm = 1 };

/// Labels attached to one captured trace.  `class_idx` indexes the 112-entry
/// avr::instruction_classes() table; register fields are present when the
/// class uses them.
struct TraceMeta {
  std::size_t class_idx = 0;
  std::optional<std::uint8_t> rd;
  std::optional<std::uint8_t> rr;
  int program_id = 0;   ///< which profiling program file produced it
  int device_id = 0;    ///< which physical device it was captured from
  int session_id = 0;   ///< measurement session (time / setup)
  avr::Instruction instr;  ///< full ground-truth instruction
  /// Per-capture gain reference, estimated from the content-free SBI+NOP
  /// trigger prefix of the raw capture (std-dev in scope units).  The
  /// covariate-shift-adaptation normalization divides by it, cancelling the
  /// session/device/program gain without touching the instruction-dependent
  /// part of the window.
  double gain_estimate = 1.0;
  /// Severity of the FaultProfile that corrupted this capture (0 = clean).
  /// Ground-truth bookkeeping for robustness sweeps and runtime telemetry;
  /// the classifier never reads it.
  double fault_severity = 0.0;
  /// EM-channel counterparts of gain_estimate / fault_severity, filled only
  /// when the campaign captured a paired EM window.  The EM probe has its own
  /// front-end gain (and its own fault injector), so the channels carry
  /// independent references.
  double em_gain_estimate = 1.0;
  double em_fault_severity = 0.0;
  /// Acquisition-configuration stamp (sim/acq_config.hpp): the sample rate
  /// and ADC resolution the capture chain ran at.  The streaming runtime can
  /// validate these at submit so a fleet never mixes corpora captured at
  /// different front-end configurations behind one model.  Defaults are the
  /// nominal scope, so hand-built test traces pass nominal validation.
  double samples_per_cycle = 156.25;
  int adc_bits = 8;
};

/// One captured trace: the paper's 315-sample power window plus its labels,
/// and -- when the campaign's EM probe is enabled -- the aligned EM window of
/// the same instruction (same start sample, same length).
struct Trace {
  std::vector<double> samples;
  TraceMeta meta;
  /// Aligned EM-probe window; empty when the capture was power-only.
  /// Declared after `meta` so a braced {samples, labels} pair keeps
  /// aggregate-initializing {samples, meta} exactly as before the channel
  /// existed (a second vector member in slot 2 would make such braces
  /// ambiguous against the vector iterator-pair constructor).
  std::vector<double> em_samples;

  bool has_em() const { return !em_samples.empty(); }
};

/// A set of traces, usually one class or one experiment's worth.
using TraceSet = std::vector<Trace>;

/// Projects one channel of a (possibly paired) trace as a plain
/// single-channel trace: `samples` holds the requested channel,
/// `em_samples` is empty, and `gain_estimate`/`fault_severity` are the
/// requested channel's values.  The power view of a power-only trace is the
/// trace itself; the EM view of a power-only trace has empty samples.
Trace channel_view(const Trace& trace, Channel channel);

/// channel_view over a whole set.
TraceSet channel_views(const TraceSet& traces, Channel channel);

/// Splits a trace set by `program_id`; returned vector is indexed by the
/// order program ids first appear.
std::vector<TraceSet> split_by_program(const TraceSet& traces);

/// Returns the subset with meta.program_id == id.
TraceSet filter_by_program(const TraceSet& traces, int id);

}  // namespace sidis::sim

#include "sim/oscilloscope.hpp"

#include <cmath>

#include "dsp/signal.hpp"

namespace sidis::sim {

Oscilloscope::Oscilloscope(ScopeConfig config) : config_(config) {}

std::vector<double> Oscilloscope::capture(const std::vector<double>& ideal,
                                          const Environment& env,
                                          std::mt19937_64& rng,
                                          bool add_nondeterminism) const {
  const double gain = env.total_gain();
  const double offset = env.total_offset();
  const std::size_t n = ideal.size();
  std::vector<double> x(n);

  // The baseline wander is *systematic* per setup and program (each .ino
  // file's capture loop locks to a repeatable supply-cycle position); only a
  // modest trigger-to-supply jitter varies capture to capture.
  double ripple_phase = env.program.ripple_phase + env.session.ripple_phase;
  if (add_nondeterminism && env.session.ripple_amp > 0.0) {
    std::uniform_real_distribution<double> d(-0.5, 0.5);
    ripple_phase += d(rng);
  }
  const double drift_per_sample =
      n > 1 ? env.session.temperature_drift / static_cast<double>(n - 1) : 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double v = gain * ideal[i] + offset;
    if (env.session.ripple_amp > 0.0) {
      v += env.session.ripple_amp *
           std::sin(2.0 * 3.14159265358979323846 * env.session.ripple_freq *
                        static_cast<double>(i) +
                    ripple_phase);
    }
    v += drift_per_sample * static_cast<double>(i);
    x[i] = v;
  }

  // The board's decoupling network forms a device-specific low-pass pole on
  // the shunt path -- it reshapes the trace *spectrum* per device, which no
  // amplitude normalization can undo (the Sec. 5.6 cross-device shift is
  // more than a gain).  Physically it sits before the probe.
  if (env.device.decoupling_cutoff > 0.0) {
    x = dsp::lowpass_single_pole(x, env.device.decoupling_cutoff);
  }
  if (env.session.probe_cutoff > 0.0) {
    x = dsp::lowpass_single_pole(x, env.session.probe_cutoff);
  }
  if (config_.enable_bandwidth) {
    x = dsp::lowpass_single_pole(x, config_.bandwidth_fraction);
  }

  if (add_nondeterminism && config_.trigger_jitter > 0) {
    std::uniform_int_distribution<int> d(-config_.trigger_jitter, config_.trigger_jitter);
    const int lag = d(rng);
    if (lag != 0) x = dsp::shift(x, lag);
  }

  if (add_nondeterminism && config_.enable_noise && config_.noise_sigma > 0.0) {
    std::normal_distribution<double> noise(0.0, config_.noise_sigma * env.device.noise_factor);
    for (double& v : x) v += noise(rng);
  }

  if (config_.enable_quantization) {
    x = dsp::quantize(x, config_.adc_bits, config_.range_lo, config_.range_hi);
  }
  return x;
}

}  // namespace sidis::sim

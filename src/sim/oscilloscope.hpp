// Oscilloscope front-end model (Tektronix MDO3102 in the paper: 2.5 GS/s,
// 250 MHz bandwidth, 8-bit ADC, measuring a 330-ohm shunt on the GND pin).
//
// Applies, in physical order: environment gain/offset/ripple/drift ->
// analog bandwidth limit -> trigger jitter -> additive noise -> ADC
// quantization.
#pragma once

#include <random>
#include <vector>

#include "sim/environment.hpp"

namespace sidis::sim {

struct ScopeConfig {
  /// Analog -3 dB bandwidth as a fraction of the sample rate
  /// (250 MHz / 2.5 GS/s = 0.1).
  double bandwidth_fraction = 0.1;
  /// RMS of additive white noise referred to the input (volts, arbitrary
  /// units consistent with the leakage model's ~1.0 clock spike).
  double noise_sigma = 0.009;
  /// ADC resolution.
  int adc_bits = 8;
  /// Full-scale input range.
  double range_lo = -1.0;
  double range_hi = 3.0;
  /// Maximum trigger jitter in samples (uniform integer in [-j, +j]).
  int trigger_jitter = 1;
  /// Master switches for ablation experiments.
  bool enable_noise = true;
  bool enable_quantization = true;
  bool enable_bandwidth = true;
};

/// Captures ideal current waveforms into sampled, noisy, quantized records.
class Oscilloscope {
 public:
  explicit Oscilloscope(ScopeConfig config = {});

  /// One acquisition: environment applied, then the analog/ADC chain.
  /// `add_nondeterminism=false` freezes ripple phase, jitter and noise
  /// (used for averaged reference traces).
  std::vector<double> capture(const std::vector<double>& ideal,
                              const Environment& env, std::mt19937_64& rng,
                              bool add_nondeterminism = true) const;

  const ScopeConfig& config() const { return config_; }

 private:
  ScopeConfig config_;
};

}  // namespace sidis::sim

#include "sim/fault.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numbers>
#include <random>

#include "sim/hash.hpp"

namespace sidis::sim {

namespace {

/// Root-mean-square of the mean-removed signal -- the scale reference every
/// relative fault magnitude is expressed against.  Computed on the *input* of
/// each fault so composed faults stack on the running waveform.
double signal_rms(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  double acc = 0.0;
  for (double v : x) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(x.size()));
}

/// Linear-interpolated read at fractional index, clamped at the edges.
double sample_at(const std::vector<double>& x, double t) {
  if (x.empty()) return 0.0;
  if (t <= 0.0) return x.front();
  const double last = static_cast<double>(x.size() - 1);
  if (t >= last) return x.back();
  const std::size_t i = static_cast<std::size_t>(t);
  const double frac = t - static_cast<double>(i);
  return x[i] + frac * (x[i + 1] - x[i]);
}

void apply_gaussian_noise(std::vector<double>& x, const TraceFault& f,
                          double severity, std::mt19937_64& rng) {
  const double rms = signal_rms(x);
  if (rms <= 0.0) return;
  // severity scales the noise amplitude linearly: each doubling costs ~6 dB.
  const double sigma = rms * std::pow(10.0, -f.magnitude / 20.0) * severity;
  std::normal_distribution<double> noise(0.0, sigma);
  for (double& v : x) v += noise(rng);
}

void apply_burst_noise(std::vector<double>& x, const TraceFault& f,
                       double severity, std::mt19937_64& rng) {
  if (x.empty()) return;
  const double rms = signal_rms(x);
  const auto bursts = static_cast<std::size_t>(
      std::lround(std::max(0.0, f.magnitude * severity)));
  const auto len = static_cast<std::size_t>(std::max(1.0, f.param));
  std::uniform_int_distribution<std::size_t> pos(0, x.size() - 1);
  std::uniform_real_distribution<double> amp(2.0, 4.0);
  std::bernoulli_distribution sign(0.5);
  for (std::size_t b = 0; b < bursts; ++b) {
    const std::size_t start = pos(rng);
    const double a = (sign(rng) ? 1.0 : -1.0) * amp(rng) * rms;
    for (std::size_t i = start; i < std::min(start + len, x.size()); ++i) {
      x[i] += a;
    }
  }
}

void apply_dc_drift(std::vector<double>& x, const TraceFault& f,
                    double severity, std::mt19937_64& rng) {
  if (x.size() < 2) return;
  const double rms = signal_rms(x);
  std::bernoulli_distribution sign(0.5);
  const double delta = (sign(rng) ? 1.0 : -1.0) * f.magnitude * severity * rms;
  const double denom = static_cast<double>(x.size() - 1);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] += delta * static_cast<double>(i) / denom;
  }
}

void apply_amplitude_drift(std::vector<double>& x, const TraceFault& f,
                           double severity, std::mt19937_64& rng) {
  if (x.size() < 2) return;
  std::bernoulli_distribution sign(0.5);
  const double delta = (sign(rng) ? 1.0 : -1.0) * f.magnitude * severity;
  const double denom = static_cast<double>(x.size() - 1);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] *= 1.0 + delta * static_cast<double>(i) / denom;
  }
}

void apply_clipping(std::vector<double>& x, const TraceFault& f,
                    double severity, std::mt19937_64& /*rng*/) {
  if (x.empty()) return;
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  double peak = 0.0;
  for (double v : x) peak = std::max(peak, std::abs(v - mean));
  if (peak <= 0.0) return;
  // Keep at least 5% of the swing so the trace never collapses to DC.
  const double keep = std::clamp(1.0 - f.magnitude * severity, 0.05, 1.0);
  const double rail = peak * keep;
  for (double& v : x) v = mean + std::clamp(v - mean, -rail, rail);
}

void apply_clock_jitter(std::vector<double>& x, const TraceFault& f,
                        double severity, std::mt19937_64& rng) {
  if (x.size() < 2) return;
  std::uniform_real_distribution<double> phase(0.0, 2.0 * std::numbers::pi);
  const double phi = phase(rng);
  const double dev = f.magnitude * severity;
  const double omega =
      2.0 * std::numbers::pi * f.param / static_cast<double>(x.size());
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t =
        static_cast<double>(i) + dev * std::sin(omega * static_cast<double>(i) + phi);
    out[i] = sample_at(x, t);
  }
  x = std::move(out);
}

void apply_dropped_samples(std::vector<double>& x, const TraceFault& f,
                           double severity, std::mt19937_64& rng) {
  if (x.empty()) return;
  const auto gaps = static_cast<std::size_t>(
      std::lround(std::max(0.0, f.magnitude * severity)));
  const auto len = static_cast<std::size_t>(std::max(1.0, f.param));
  std::uniform_int_distribution<std::size_t> pos(0, x.size() - 1);
  for (std::size_t g = 0; g < gaps; ++g) {
    const std::size_t start = pos(rng);
    const double hold = start > 0 ? x[start - 1] : x[start];
    for (std::size_t i = start; i < std::min(start + len, x.size()); ++i) {
      x[i] = hold;
    }
  }
}

void apply_trigger_shift(std::vector<double>& x, const TraceFault& f,
                         double severity, std::mt19937_64& rng) {
  if (x.size() < 2) return;
  const double max_shift = f.magnitude * severity;
  std::uniform_real_distribution<double> d(-max_shift, max_shift);
  const double shift = d(rng);
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = sample_at(x, static_cast<double>(i) - shift);
  }
  x = std::move(out);
}

}  // namespace

const std::vector<FaultKind>& all_fault_kinds() {
  static const std::vector<FaultKind> kinds = {
      FaultKind::kGaussianNoise, FaultKind::kBurstNoise,
      FaultKind::kDcDrift,       FaultKind::kAmplitudeDrift,
      FaultKind::kClipping,      FaultKind::kClockJitter,
      FaultKind::kDroppedSamples, FaultKind::kTriggerShift};
  return kinds;
}

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kGaussianNoise: return "gaussian_noise";
    case FaultKind::kBurstNoise: return "burst_noise";
    case FaultKind::kDcDrift: return "dc_drift";
    case FaultKind::kAmplitudeDrift: return "amplitude_drift";
    case FaultKind::kClipping: return "clipping";
    case FaultKind::kClockJitter: return "clock_jitter";
    case FaultKind::kDroppedSamples: return "dropped_samples";
    case FaultKind::kTriggerShift: return "trigger_shift";
  }
  return "unknown";
}

TraceFault TraceFault::gaussian_noise(double snr_db) {
  return {FaultKind::kGaussianNoise, snr_db, 0.0};
}
TraceFault TraceFault::burst_noise(double bursts_per_window, double burst_len) {
  return {FaultKind::kBurstNoise, bursts_per_window, burst_len};
}
TraceFault TraceFault::dc_drift(double delta_rms) {
  return {FaultKind::kDcDrift, delta_rms, 0.0};
}
TraceFault TraceFault::amplitude_drift(double relative) {
  return {FaultKind::kAmplitudeDrift, relative, 0.0};
}
TraceFault TraceFault::clipping(double depth) {
  return {FaultKind::kClipping, depth, 0.0};
}
TraceFault TraceFault::clock_jitter(double max_deviation, double wander_cycles) {
  return {FaultKind::kClockJitter, max_deviation, wander_cycles};
}
TraceFault TraceFault::dropped_samples(double gaps_per_window, double gap_len) {
  return {FaultKind::kDroppedSamples, gaps_per_window, gap_len};
}
TraceFault TraceFault::trigger_shift(double max_shift) {
  return {FaultKind::kTriggerShift, max_shift, 0.0};
}

TraceFault TraceFault::of_kind(FaultKind kind) {
  switch (kind) {
    case FaultKind::kGaussianNoise: return gaussian_noise();
    case FaultKind::kBurstNoise: return burst_noise();
    case FaultKind::kDcDrift: return dc_drift();
    case FaultKind::kAmplitudeDrift: return amplitude_drift();
    case FaultKind::kClipping: return clipping();
    case FaultKind::kClockJitter: return clock_jitter();
    case FaultKind::kDroppedSamples: return dropped_samples();
    case FaultKind::kTriggerShift: return trigger_shift();
  }
  return gaussian_noise();
}

FaultProfile FaultProfile::single(FaultKind kind, double severity,
                                  std::uint64_t seed) {
  FaultProfile p;
  p.seed = seed;
  p.severity = severity;
  p.faults = {TraceFault::of_kind(kind)};
  return p;
}

FaultProfile FaultProfile::compound(double severity, std::uint64_t seed) {
  FaultProfile p;
  p.seed = seed;
  p.severity = severity;
  for (FaultKind kind : all_fault_kinds()) p.faults.push_back(TraceFault::of_kind(kind));
  return p;
}

FaultProfile FaultProfile::drift_jitter_burst(double severity, std::uint64_t seed) {
  FaultProfile p;
  p.seed = seed;
  p.severity = severity;
  p.label = "drift_jitter_burst";
  p.faults = {TraceFault::dc_drift(), TraceFault::amplitude_drift(),
              TraceFault::clock_jitter(), TraceFault::burst_noise()};
  return p;
}

FaultProfile FaultProfile::gain_noise_clip(double severity, std::uint64_t seed) {
  FaultProfile p;
  p.seed = seed;
  p.severity = severity;
  p.label = "gain_noise_clip";
  p.faults = {TraceFault::amplitude_drift(), TraceFault::gaussian_noise(),
              TraceFault::clipping()};
  return p;
}

FaultProfile FaultProfile::dropout_misalign(double severity, std::uint64_t seed) {
  FaultProfile p;
  p.seed = seed;
  p.severity = severity;
  p.label = "dropout_misalign";
  p.faults = {TraceFault::dropped_samples(), TraceFault::trigger_shift(),
              TraceFault::dc_drift()};
  return p;
}

std::vector<FaultProfile> FaultProfile::named_compounds(double severity,
                                                        std::uint64_t seed) {
  return {drift_jitter_burst(severity, seed), gain_noise_clip(severity, seed),
          dropout_misalign(severity, seed)};
}

FaultProfile FaultProfile::scaled(double new_severity) const {
  FaultProfile p = *this;
  p.severity = new_severity;
  return p;
}

std::string FaultProfile::name() const {
  if (empty()) return "clean";
  char sev[32];
  std::snprintf(sev, sizeof sev, "@%g", severity);
  if (!label.empty()) return label + sev;
  if (faults.size() == 1) return to_string(faults.front().kind) + sev;
  return "compound(n=" + std::to_string(faults.size()) + ")" + sev;
}

FaultMetrics measure_fault(const std::vector<double>& clean,
                           const std::vector<double>& faulted) {
  FaultMetrics m;
  const std::size_t n = std::min(clean.size(), faulted.size());
  if (n == 0) return m;
  double clean_power = 0.0;
  double delta_power = 0.0;
  const double clean_rms = signal_rms(clean);
  double lo = faulted[0];
  double hi = faulted[0];
  for (std::size_t i = 0; i < n; ++i) {
    const double d = faulted[i] - clean[i];
    m.mean_delta += d;
    m.max_abs_delta = std::max(m.max_abs_delta, std::abs(d));
    if (d != 0.0) ++m.changed_samples;
    delta_power += d * d;
    clean_power += clean_rms * clean_rms;
    lo = std::min(lo, faulted[i]);
    hi = std::max(hi, faulted[i]);
  }
  m.mean_delta /= static_cast<double>(n);
  m.snr_db = delta_power > 0.0
                 ? 10.0 * std::log10(clean_power / delta_power)
                 : std::numeric_limits<double>::infinity();
  // Samples pinned at either extreme value (saturation rails).  A healthy
  // trace touches its min/max once or twice; a clipped one dwells there.
  std::size_t at_rail = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (faulted[i] == lo || faulted[i] == hi) ++at_rail;
  }
  m.clip_fraction = static_cast<double>(at_rail) / static_cast<double>(n);
  return m;
}

FaultInjector::FaultInjector(FaultProfile profile) : profile_(std::move(profile)) {}

std::vector<double> FaultInjector::apply(const std::vector<double>& samples,
                                         std::uint64_t key) const {
  std::vector<double> x = samples;
  if (profile_.empty()) return x;
  // One stream per (profile, capture); faults consume it in list order, so
  // the whole transform is a pure function of (profile, key, input).
  std::mt19937_64 rng(hash_combine(profile_.seed, key));
  for (const TraceFault& f : profile_.faults) {
    switch (f.kind) {
      case FaultKind::kGaussianNoise:
        apply_gaussian_noise(x, f, profile_.severity, rng);
        break;
      case FaultKind::kBurstNoise:
        apply_burst_noise(x, f, profile_.severity, rng);
        break;
      case FaultKind::kDcDrift:
        apply_dc_drift(x, f, profile_.severity, rng);
        break;
      case FaultKind::kAmplitudeDrift:
        apply_amplitude_drift(x, f, profile_.severity, rng);
        break;
      case FaultKind::kClipping:
        apply_clipping(x, f, profile_.severity, rng);
        break;
      case FaultKind::kClockJitter:
        apply_clock_jitter(x, f, profile_.severity, rng);
        break;
      case FaultKind::kDroppedSamples:
        apply_dropped_samples(x, f, profile_.severity, rng);
        break;
      case FaultKind::kTriggerShift:
        apply_trigger_shift(x, f, profile_.severity, rng);
        break;
    }
  }
  return x;
}

Trace FaultInjector::apply(const Trace& trace, std::uint64_t key) const {
  Trace out = trace;
  out.samples = apply(trace.samples, key);
  if (!profile_.empty()) out.meta.fault_severity = profile_.severity;
  return out;
}

TraceSet FaultInjector::apply_all(const TraceSet& traces,
                                  std::uint64_t base_key) const {
  TraceSet out;
  out.reserve(traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    out.push_back(apply(traces[i], hash_combine(base_key, i)));
  }
  return out;
}

}  // namespace sidis::sim

// The paper's Table-2 instruction-class registry.
//
// The disassembler recognizes 112 instruction classes, organized into 8
// groups by operand structure (which in turn tracks which micro-architectural
// components the instruction exercises).  Addressing-mode variants of the
// load/store and program-memory instructions count as distinct classes, which
// is how 6 mnemonics yield 24 classes in group 5 and 2 mnemonics yield 6
// classes in group 8.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "avr/isa.hpp"

namespace sidis::avr {

/// One of the 112 profiled instruction classes.
struct ClassSpec {
  Mnemonic mnemonic = Mnemonic::kNop;
  AddrMode mode = AddrMode::kNone;
  int group = 0;        ///< Table-2 group, 1..8
  std::string name;     ///< display name, e.g. "LD X+", "LDD Y+q"
};

/// The full 112-entry class table, fixed order (group-major, stable across
/// runs -- classifier labels index into this table).
const std::vector<ClassSpec>& instruction_classes();

/// Number of classes (== 112).
std::size_t num_instruction_classes();

/// Index of the class with the given mnemonic/mode; nullopt when the
/// mnemonic is not one of the profiled 112 (e.g. NOP, MUL, RET).
std::optional<std::size_t> class_index(Mnemonic m, AddrMode mode = AddrMode::kNone);

/// Class of a concrete instruction (alias mnemonics like TST or BREQ are
/// classes of their own, exactly as the paper profiles them).
std::optional<std::size_t> class_of(const Instruction& instr);

/// Indices of all classes in Table-2 group `g` (1..8).
std::vector<std::size_t> classes_in_group(int g);

/// Group (1..8) of a class index.
int group_of_class(std::size_t class_idx);

/// Expected per-group class counts from Table 2: {12,10,13,20,24,15,12,6}.
std::span<const int> expected_group_sizes();

/// Whether the class takes a destination register Rd that the third
/// classification level must recover.
bool class_uses_rd(std::size_t class_idx);

/// Whether the class takes a source register Rr.
bool class_uses_rr(std::size_t class_idx);

/// Whether a specific register index is architecturally legal as the Rd of
/// this class (immediates need r16..r31, MOVW even pairs, ADIW one of
/// r24/26/28/30, pointer-indirect loads avoid the pointer pair itself).
bool class_allows_rd(std::size_t class_idx, std::uint8_t rd);

/// Same for the Rr operand.
bool class_allows_rr(std::size_t class_idx, std::uint8_t rr);

}  // namespace sidis::avr

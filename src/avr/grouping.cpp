#include "avr/grouping.hpp"

#include <array>
#include <map>
#include <stdexcept>

namespace sidis::avr {

namespace {

std::string mode_suffix(AddrMode mode) {
  switch (mode) {
    case AddrMode::kNone: return "";
    case AddrMode::kAbs: return " k";
    case AddrMode::kX: return " X";
    case AddrMode::kXPostInc: return " X+";
    case AddrMode::kXPreDec: return " -X";
    case AddrMode::kY: return " Y";
    case AddrMode::kYPostInc: return " Y+";
    case AddrMode::kYPreDec: return " -Y";
    case AddrMode::kYDisp: return " Y+q";
    case AddrMode::kZ: return " Z";
    case AddrMode::kZPostInc: return " Z+";
    case AddrMode::kZPreDec: return " -Z";
    case AddrMode::kZDisp: return " Z+q";
    case AddrMode::kR0: return " R0";
  }
  return "";
}

std::vector<ClassSpec> build_table() {
  std::vector<ClassSpec> t;
  t.reserve(112);
  const auto add = [&t](Mnemonic m, AddrMode mode, int group) {
    t.push_back({m, mode, group, std::string(name(m)) + mode_suffix(mode)});
  };
  const auto add_plain = [&](std::initializer_list<Mnemonic> ms, int group) {
    for (Mnemonic m : ms) add(m, AddrMode::kNone, group);
  };

  // Group 1: two-register ALU (12)
  add_plain({Mnemonic::kAdd, Mnemonic::kAdc, Mnemonic::kSub, Mnemonic::kSbc,
             Mnemonic::kAnd, Mnemonic::kOr, Mnemonic::kEor, Mnemonic::kCpse,
             Mnemonic::kCp, Mnemonic::kCpc, Mnemonic::kMov, Mnemonic::kMovw},
            1);
  // Group 2: register-immediate ALU (10)
  add_plain({Mnemonic::kAdiw, Mnemonic::kSubi, Mnemonic::kSbci, Mnemonic::kSbiw,
             Mnemonic::kAndi, Mnemonic::kOri, Mnemonic::kSbr, Mnemonic::kCbr,
             Mnemonic::kCpi, Mnemonic::kLdi},
            2);
  // Group 3: single-register ALU (13)
  add_plain({Mnemonic::kCom, Mnemonic::kNeg, Mnemonic::kInc, Mnemonic::kDec,
             Mnemonic::kTst, Mnemonic::kClr, Mnemonic::kSer, Mnemonic::kLsl,
             Mnemonic::kLsr, Mnemonic::kRol, Mnemonic::kRor, Mnemonic::kAsr,
             Mnemonic::kSwap},
            3);
  // Group 4: jumps and conditional branches (20)
  add_plain({Mnemonic::kRjmp, Mnemonic::kJmp, Mnemonic::kBreq, Mnemonic::kBrne,
             Mnemonic::kBrcs, Mnemonic::kBrcc, Mnemonic::kBrsh, Mnemonic::kBrlo,
             Mnemonic::kBrmi, Mnemonic::kBrpl, Mnemonic::kBrge, Mnemonic::kBrlt,
             Mnemonic::kBrhs, Mnemonic::kBrhc, Mnemonic::kBrts, Mnemonic::kBrtc,
             Mnemonic::kBrvs, Mnemonic::kBrvc, Mnemonic::kBrie, Mnemonic::kBrid},
            4);
  // Group 5: data loads/stores (24 = LDS + 9 LD + 2 LDD + STS + 9 ST + 2 STD)
  add(Mnemonic::kLds, AddrMode::kAbs, 5);
  for (AddrMode m : {AddrMode::kX, AddrMode::kXPostInc, AddrMode::kXPreDec,
                     AddrMode::kY, AddrMode::kYPostInc, AddrMode::kYPreDec,
                     AddrMode::kZ, AddrMode::kZPostInc, AddrMode::kZPreDec}) {
    add(Mnemonic::kLd, m, 5);
  }
  add(Mnemonic::kLdd, AddrMode::kYDisp, 5);
  add(Mnemonic::kLdd, AddrMode::kZDisp, 5);
  add(Mnemonic::kSts, AddrMode::kAbs, 5);
  for (AddrMode m : {AddrMode::kX, AddrMode::kXPostInc, AddrMode::kXPreDec,
                     AddrMode::kY, AddrMode::kYPostInc, AddrMode::kYPreDec,
                     AddrMode::kZ, AddrMode::kZPostInc, AddrMode::kZPreDec}) {
    add(Mnemonic::kSt, m, 5);
  }
  add(Mnemonic::kStd, AddrMode::kYDisp, 5);
  add(Mnemonic::kStd, AddrMode::kZDisp, 5);
  // Group 6: SREG set/clear (15)
  add_plain({Mnemonic::kSec, Mnemonic::kClc, Mnemonic::kSen, Mnemonic::kCln,
             Mnemonic::kSez, Mnemonic::kClz, Mnemonic::kSei, Mnemonic::kSes,
             Mnemonic::kCls, Mnemonic::kSev, Mnemonic::kClv, Mnemonic::kSet,
             Mnemonic::kClt, Mnemonic::kSeh, Mnemonic::kClh},
            6);
  // Group 7: bit and bit-test (12)
  add_plain({Mnemonic::kSbrc, Mnemonic::kSbrs, Mnemonic::kSbic, Mnemonic::kSbis,
             Mnemonic::kBrbs, Mnemonic::kBrbc, Mnemonic::kSbi, Mnemonic::kCbi,
             Mnemonic::kBst, Mnemonic::kBld, Mnemonic::kBset, Mnemonic::kBclr},
            7);
  // Group 8: program-memory loads (6)
  for (AddrMode m : {AddrMode::kR0, AddrMode::kZ, AddrMode::kZPostInc}) {
    add(Mnemonic::kLpm, m, 8);
  }
  for (AddrMode m : {AddrMode::kR0, AddrMode::kZ, AddrMode::kZPostInc}) {
    add(Mnemonic::kElpm, m, 8);
  }
  return t;
}

const std::map<std::pair<Mnemonic, AddrMode>, std::size_t>& index_map() {
  static const auto map = [] {
    std::map<std::pair<Mnemonic, AddrMode>, std::size_t> m;
    const auto& t = instruction_classes();
    for (std::size_t i = 0; i < t.size(); ++i) m[{t[i].mnemonic, t[i].mode}] = i;
    return m;
  }();
  return map;
}

}  // namespace

const std::vector<ClassSpec>& instruction_classes() {
  static const std::vector<ClassSpec> table = build_table();
  return table;
}

std::size_t num_instruction_classes() { return instruction_classes().size(); }

std::optional<std::size_t> class_index(Mnemonic m, AddrMode mode) {
  const auto it = index_map().find({m, mode});
  if (it == index_map().end()) return std::nullopt;
  return it->second;
}

std::optional<std::size_t> class_of(const Instruction& instr) {
  return class_index(instr.mnemonic, instr.mode);
}

std::vector<std::size_t> classes_in_group(int g) {
  std::vector<std::size_t> out;
  const auto& t = instruction_classes();
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].group == g) out.push_back(i);
  }
  return out;
}

int group_of_class(std::size_t class_idx) {
  return instruction_classes().at(class_idx).group;
}

std::span<const int> expected_group_sizes() {
  static constexpr std::array<int, 8> kSizes = {12, 10, 13, 20, 24, 15, 12, 6};
  return kSizes;
}

bool class_uses_rd(std::size_t class_idx) {
  const ClassSpec& c = instruction_classes().at(class_idx);
  switch (info(c.mnemonic).signature) {
    case OperandSignature::kRdRr:
    case OperandSignature::kRdK:
    case OperandSignature::kRd:
    case OperandSignature::kRdIo:
      return true;
    case OperandSignature::kRdMem:
      return c.mode != AddrMode::kR0;
    case OperandSignature::kRegBit:
      return c.mnemonic == Mnemonic::kBst || c.mnemonic == Mnemonic::kBld;
    default:
      return false;
  }
}

bool class_uses_rr(std::size_t class_idx) {
  const ClassSpec& c = instruction_classes().at(class_idx);
  switch (info(c.mnemonic).signature) {
    case OperandSignature::kRdRr:
    case OperandSignature::kRrMem:
    case OperandSignature::kRrIo:
      return true;
    case OperandSignature::kRegBit:
      return c.mnemonic == Mnemonic::kSbrc || c.mnemonic == Mnemonic::kSbrs;
    default:
      return false;
  }
}

bool class_allows_rd(std::size_t class_idx, std::uint8_t rd) {
  if (!class_uses_rd(class_idx) || rd > 31) return false;
  const ClassSpec& c = instruction_classes().at(class_idx);
  switch (c.mnemonic) {
    case Mnemonic::kMovw: return rd % 2 == 0;
    case Mnemonic::kMuls: return rd >= 16;
    case Mnemonic::kAdiw:
    case Mnemonic::kSbiw: return rd == 24 || rd == 26 || rd == 28 || rd == 30;
    case Mnemonic::kSer: return rd >= 16;
    default: break;
  }
  if (info(c.mnemonic).signature == OperandSignature::kRdK) return rd >= 16;
  if (info(c.mnemonic).signature == OperandSignature::kRdMem &&
      c.mode != AddrMode::kAbs) {
    return rd <= 25;  // keep clear of the pointer pair
  }
  return true;
}

bool class_allows_rr(std::size_t class_idx, std::uint8_t rr) {
  if (!class_uses_rr(class_idx) || rr > 31) return false;
  const ClassSpec& c = instruction_classes().at(class_idx);
  switch (c.mnemonic) {
    case Mnemonic::kMovw: return rr % 2 == 0;
    case Mnemonic::kMuls: return rr >= 16;
    default: break;
  }
  if (info(c.mnemonic).signature == OperandSignature::kRrMem &&
      c.mode != AddrMode::kAbs) {
    return rr <= 25;
  }
  return true;
}

}  // namespace sidis::avr

#include "avr/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <sstream>
#include <stdexcept>

namespace sidis::avr {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

std::string_view strip_comment(std::string_view s) {
  const std::size_t semi = s.find(';');
  if (semi != std::string_view::npos) s = s.substr(0, semi);
  const std::size_t slashes = s.find("//");
  if (slashes != std::string_view::npos) s = s.substr(0, slashes);
  return s;
}

[[noreturn]] void fail(const std::string& msg) { throw std::invalid_argument(msg); }

long parse_int(std::string_view tok) {
  tok = trim(tok);
  if (tok.empty()) fail("expected a number");
  bool neg = false;
  if (tok.front() == '+' || tok.front() == '-') {
    neg = tok.front() == '-';
    tok.remove_prefix(1);
  }
  int base = 10;
  if (tok.size() > 2 && tok[0] == '0' && (tok[1] == 'x' || tok[1] == 'X')) {
    base = 16;
    tok.remove_prefix(2);
  } else if (tok.size() > 2 && tok[0] == '0' && (tok[1] == 'b' || tok[1] == 'B')) {
    base = 2;
    tok.remove_prefix(2);
  }
  long value = 0;
  const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), value, base);
  if (res.ec != std::errc{} || res.ptr != tok.data() + tok.size()) {
    fail("malformed number '" + std::string(tok) + "'");
  }
  return neg ? -value : value;
}

std::uint8_t parse_reg(std::string_view tok) {
  tok = trim(tok);
  if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'R')) {
    fail("expected register, got '" + std::string(tok) + "'");
  }
  const long n = parse_int(tok.substr(1));
  if (n < 0 || n > 31) fail("register index out of range");
  return static_cast<std::uint8_t>(n);
}

std::int16_t parse_rel(std::string_view tok) {
  tok = trim(tok);
  // GNU syntax: ".<byte offset>" relative to the *next* instruction.
  if (!tok.empty() && tok.front() == '.') tok.remove_prefix(1);
  const long bytes = parse_int(tok);
  if (bytes % 2 != 0) fail("relative offset must be even (bytes)");
  return static_cast<std::int16_t>(bytes / 2);
}

struct MemOperand {
  AddrMode mode = AddrMode::kNone;
  std::uint8_t q = 0;
  std::uint16_t abs = 0;
};

MemOperand parse_mem(std::string_view tok) {
  tok = trim(tok);
  MemOperand m;
  if (tok.empty()) fail("expected memory operand");
  auto upper = std::string(tok);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  if (upper == "X") { m.mode = AddrMode::kX; return m; }
  if (upper == "X+") { m.mode = AddrMode::kXPostInc; return m; }
  if (upper == "-X") { m.mode = AddrMode::kXPreDec; return m; }
  if (upper == "Y") { m.mode = AddrMode::kY; return m; }
  if (upper == "Y+") { m.mode = AddrMode::kYPostInc; return m; }
  if (upper == "-Y") { m.mode = AddrMode::kYPreDec; return m; }
  if (upper == "Z") { m.mode = AddrMode::kZ; return m; }
  if (upper == "Z+") { m.mode = AddrMode::kZPostInc; return m; }
  if (upper == "-Z") { m.mode = AddrMode::kZPreDec; return m; }
  if (upper.size() > 2 && (upper[0] == 'Y' || upper[0] == 'Z') && upper[1] == '+') {
    const long q = parse_int(std::string_view(upper).substr(2));
    if (q < 0 || q > 63) fail("displacement out of range");
    m.mode = upper[0] == 'Y' ? AddrMode::kYDisp : AddrMode::kZDisp;
    m.q = static_cast<std::uint8_t>(q);
    return m;
  }
  // Otherwise an absolute data address.
  const long a = parse_int(tok);
  if (a < 0 || a > 0xFFFF) fail("absolute address out of range");
  m.mode = AddrMode::kAbs;
  m.abs = static_cast<std::uint16_t>(a);
  return m;
}

std::vector<std::string_view> split_operands(std::string_view rest) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= rest.size()) {
    const std::size_t comma = rest.find(',', start);
    if (comma == std::string_view::npos) {
      const std::string_view tok = trim(rest.substr(start));
      if (!tok.empty()) out.push_back(tok);
      break;
    }
    out.push_back(trim(rest.substr(start, comma - start)));
    start = comma + 1;
  }
  return out;
}

}  // namespace

Instruction assemble_line(std::string_view raw) {
  const std::string_view line = trim(strip_comment(raw));
  if (line.empty()) fail("empty statement");

  const std::size_t sp = line.find_first_of(" \t");
  const std::string_view mn_text = sp == std::string_view::npos ? line : line.substr(0, sp);
  const std::string_view rest = sp == std::string_view::npos ? std::string_view{} : trim(line.substr(sp));

  const auto mn = mnemonic_from_name(mn_text);
  if (!mn) fail("unknown mnemonic '" + std::string(mn_text) + "'");

  Instruction in;
  in.mnemonic = *mn;
  const auto ops = split_operands(rest);
  const auto need = [&](std::size_t n) {
    if (ops.size() != n) {
      fail(std::string(mn_text) + ": expected " + std::to_string(n) + " operand(s), got " +
           std::to_string(ops.size()));
    }
  };

  switch (info(*mn).signature) {
    case OperandSignature::kNone:
      need(0);
      if (*mn == Mnemonic::kLpm || *mn == Mnemonic::kElpm) in.mode = AddrMode::kR0;
      break;
    case OperandSignature::kRdRr:
      need(2);
      in.rd = parse_reg(ops[0]);
      in.rr = parse_reg(ops[1]);
      break;
    case OperandSignature::kRdK: {
      need(2);
      in.rd = parse_reg(ops[0]);
      const long k = parse_int(ops[1]);
      if (k < 0 || k > 255) fail("immediate out of range");
      in.k8 = static_cast<std::uint8_t>(k);
      break;
    }
    case OperandSignature::kRd:
      need(1);
      in.rd = parse_reg(ops[0]);
      break;
    case OperandSignature::kRelK:
      need(1);
      in.rel = parse_rel(ops[0]);
      break;
    case OperandSignature::kAbsK: {
      need(1);
      const long a = parse_int(ops[0]);
      if (a < 0 || a % 2 != 0) fail("absolute byte address must be even and >= 0");
      in.k22 = static_cast<std::uint32_t>(a / 2);
      break;
    }
    case OperandSignature::kRdMem: {
      // Plain "LPM" (implicit R0) handled above; here LPM/ELPM/LD/LDD/LDS.
      if ((*mn == Mnemonic::kLpm || *mn == Mnemonic::kElpm) && ops.empty()) {
        in.mode = AddrMode::kR0;
        break;
      }
      need(2);
      in.rd = parse_reg(ops[0]);
      const MemOperand m = parse_mem(ops[1]);
      in.mode = m.mode;
      in.q = m.q;
      in.k16 = m.abs;
      break;
    }
    case OperandSignature::kRrMem: {
      need(2);
      const MemOperand m = parse_mem(ops[0]);
      in.rr = parse_reg(ops[1]);
      in.mode = m.mode;
      in.q = m.q;
      in.k16 = m.abs;
      break;
    }
    case OperandSignature::kRegBit: {
      need(2);
      const std::uint8_t r = parse_reg(ops[0]);
      if (*mn == Mnemonic::kSbrc || *mn == Mnemonic::kSbrs) {
        in.rr = r;
      } else {
        in.rd = r;
      }
      const long b = parse_int(ops[1]);
      if (b < 0 || b > 7) fail("bit index out of range");
      in.bit = static_cast<std::uint8_t>(b);
      break;
    }
    case OperandSignature::kIoBit: {
      need(2);
      const long a = parse_int(ops[0]);
      const long b = parse_int(ops[1]);
      if (a < 0 || a > 31) fail("I/O address out of range");
      if (b < 0 || b > 7) fail("bit index out of range");
      in.io = static_cast<std::uint8_t>(a);
      in.bit = static_cast<std::uint8_t>(b);
      break;
    }
    case OperandSignature::kSflagRel: {
      need(2);
      const long s = parse_int(ops[0]);
      if (s < 0 || s > 7) fail("flag index out of range");
      in.sflag = static_cast<std::uint8_t>(s);
      in.rel = parse_rel(ops[1]);
      break;
    }
    case OperandSignature::kSflag: {
      need(1);
      const long s = parse_int(ops[0]);
      if (s < 0 || s > 7) fail("flag index out of range");
      in.sflag = static_cast<std::uint8_t>(s);
      break;
    }
    case OperandSignature::kRdIo: {
      need(2);
      in.rd = parse_reg(ops[0]);
      const long a = parse_int(ops[1]);
      if (a < 0 || a > 63) fail("I/O address out of range");
      in.io = static_cast<std::uint8_t>(a);
      break;
    }
    case OperandSignature::kRrIo: {
      need(2);
      const long a = parse_int(ops[0]);
      if (a < 0 || a > 63) fail("I/O address out of range");
      in.io = static_cast<std::uint8_t>(a);
      in.rr = parse_reg(ops[1]);
      break;
    }
  }
  return in;
}

AssemblyResult assemble(std::string_view source) {
  AssemblyResult result;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= source.size()) {
    ++line_no;
    const std::size_t nl = source.find('\n', start);
    const std::string_view raw =
        nl == std::string_view::npos ? source.substr(start) : source.substr(start, nl - start);
    const std::string_view stmt = trim(strip_comment(raw));
    if (!stmt.empty()) {
      try {
        result.program.push_back(assemble_line(stmt));
      } catch (const std::invalid_argument& e) {
        result.errors.push_back({line_no, e.what()});
      }
    }
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  return result;
}

std::string disassemble_listing(const std::vector<Instruction>& program) {
  std::ostringstream os;
  for (const Instruction& in : program) os << to_string(in) << '\n';
  return os.str();
}

}  // namespace sidis::avr

#include "avr/isa.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace sidis::avr {

namespace {

using OS = OperandSignature;

// Indexed by Mnemonic; order must match the enum exactly (verified by a
// static_assert on the count and by unit tests that round-trip every name).
constexpr std::array<MnemonicInfo, static_cast<std::size_t>(Mnemonic::kCount)> kInfo = {{
    // group 1
    {"ADD", OS::kRdRr, 1, 1, 1, "Add without carry"},
    {"ADC", OS::kRdRr, 1, 1, 1, "Add with carry"},
    {"SUB", OS::kRdRr, 1, 1, 1, "Subtract without carry"},
    {"SBC", OS::kRdRr, 1, 1, 1, "Subtract with carry"},
    {"AND", OS::kRdRr, 1, 1, 1, "Logical AND"},
    {"OR", OS::kRdRr, 1, 1, 1, "Logical OR"},
    {"EOR", OS::kRdRr, 1, 1, 1, "Exclusive OR"},
    {"CPSE", OS::kRdRr, 1, 1, 1, "Compare, skip if equal"},
    {"CP", OS::kRdRr, 1, 1, 1, "Compare"},
    {"CPC", OS::kRdRr, 1, 1, 1, "Compare with carry"},
    {"MOV", OS::kRdRr, 1, 1, 1, "Copy register"},
    {"MOVW", OS::kRdRr, 1, 1, 1, "Copy register word"},
    // group 2
    {"ADIW", OS::kRdK, 2, 2, 1, "Add immediate to word"},
    {"SUBI", OS::kRdK, 2, 1, 1, "Subtract immediate"},
    {"SBCI", OS::kRdK, 2, 1, 1, "Subtract immediate with carry"},
    {"SBIW", OS::kRdK, 2, 2, 1, "Subtract immediate from word"},
    {"ANDI", OS::kRdK, 2, 1, 1, "Logical AND with immediate"},
    {"ORI", OS::kRdK, 2, 1, 1, "Logical OR with immediate"},
    {"SBR", OS::kRdK, 2, 1, 1, "Set bits in register (ORI alias)"},
    {"CBR", OS::kRdK, 2, 1, 1, "Clear bits in register (ANDI alias)"},
    {"CPI", OS::kRdK, 2, 1, 1, "Compare with immediate"},
    {"LDI", OS::kRdK, 2, 1, 1, "Load immediate"},
    // group 3
    {"COM", OS::kRd, 3, 1, 1, "One's complement"},
    {"NEG", OS::kRd, 3, 1, 1, "Two's complement"},
    {"INC", OS::kRd, 3, 1, 1, "Increment"},
    {"DEC", OS::kRd, 3, 1, 1, "Decrement"},
    {"TST", OS::kRd, 3, 1, 1, "Test for zero or minus (AND alias)"},
    {"CLR", OS::kRd, 3, 1, 1, "Clear register (EOR alias)"},
    {"SER", OS::kRd, 3, 1, 1, "Set all bits (LDI 0xFF alias)"},
    {"LSL", OS::kRd, 3, 1, 1, "Logical shift left (ADD alias)"},
    {"LSR", OS::kRd, 3, 1, 1, "Logical shift right"},
    {"ROL", OS::kRd, 3, 1, 1, "Rotate left through carry (ADC alias)"},
    {"ROR", OS::kRd, 3, 1, 1, "Rotate right through carry"},
    {"ASR", OS::kRd, 3, 1, 1, "Arithmetic shift right"},
    {"SWAP", OS::kRd, 3, 1, 1, "Swap nibbles"},
    // group 4
    {"RJMP", OS::kRelK, 4, 2, 1, "Relative jump"},
    {"JMP", OS::kAbsK, 4, 3, 2, "Absolute jump"},
    {"BREQ", OS::kRelK, 4, 1, 1, "Branch if equal (Z set)"},
    {"BRNE", OS::kRelK, 4, 1, 1, "Branch if not equal (Z clear)"},
    {"BRCS", OS::kRelK, 4, 1, 1, "Branch if carry set"},
    {"BRCC", OS::kRelK, 4, 1, 1, "Branch if carry clear"},
    {"BRSH", OS::kRelK, 4, 1, 1, "Branch if same or higher (C clear)"},
    {"BRLO", OS::kRelK, 4, 1, 1, "Branch if lower (C set)"},
    {"BRMI", OS::kRelK, 4, 1, 1, "Branch if minus (N set)"},
    {"BRPL", OS::kRelK, 4, 1, 1, "Branch if plus (N clear)"},
    {"BRGE", OS::kRelK, 4, 1, 1, "Branch if greater or equal, signed (S clear)"},
    {"BRLT", OS::kRelK, 4, 1, 1, "Branch if less than, signed (S set)"},
    {"BRHS", OS::kRelK, 4, 1, 1, "Branch if half-carry set"},
    {"BRHC", OS::kRelK, 4, 1, 1, "Branch if half-carry clear"},
    {"BRTS", OS::kRelK, 4, 1, 1, "Branch if T set"},
    {"BRTC", OS::kRelK, 4, 1, 1, "Branch if T clear"},
    {"BRVS", OS::kRelK, 4, 1, 1, "Branch if overflow set"},
    {"BRVC", OS::kRelK, 4, 1, 1, "Branch if overflow clear"},
    {"BRIE", OS::kRelK, 4, 1, 1, "Branch if interrupts enabled"},
    {"BRID", OS::kRelK, 4, 1, 1, "Branch if interrupts disabled"},
    // group 5
    {"LDS", OS::kRdMem, 5, 2, 2, "Load direct from data space"},
    {"LD", OS::kRdMem, 5, 2, 1, "Load indirect"},
    {"LDD", OS::kRdMem, 5, 2, 1, "Load indirect with displacement"},
    {"STS", OS::kRrMem, 5, 2, 2, "Store direct to data space"},
    {"ST", OS::kRrMem, 5, 2, 1, "Store indirect"},
    {"STD", OS::kRrMem, 5, 2, 1, "Store indirect with displacement"},
    // group 6
    {"SEC", OS::kNone, 6, 1, 1, "Set carry flag"},
    {"CLC", OS::kNone, 6, 1, 1, "Clear carry flag"},
    {"SEN", OS::kNone, 6, 1, 1, "Set negative flag"},
    {"CLN", OS::kNone, 6, 1, 1, "Clear negative flag"},
    {"SEZ", OS::kNone, 6, 1, 1, "Set zero flag"},
    {"CLZ", OS::kNone, 6, 1, 1, "Clear zero flag"},
    {"SEI", OS::kNone, 6, 1, 1, "Set interrupt enable"},
    {"SES", OS::kNone, 6, 1, 1, "Set signed flag"},
    {"CLS", OS::kNone, 6, 1, 1, "Clear signed flag"},
    {"SEV", OS::kNone, 6, 1, 1, "Set overflow flag"},
    {"CLV", OS::kNone, 6, 1, 1, "Clear overflow flag"},
    {"SET", OS::kNone, 6, 1, 1, "Set T flag"},
    {"CLT", OS::kNone, 6, 1, 1, "Clear T flag"},
    {"SEH", OS::kNone, 6, 1, 1, "Set half-carry flag"},
    {"CLH", OS::kNone, 6, 1, 1, "Clear half-carry flag"},
    // group 7
    {"SBRC", OS::kRegBit, 7, 1, 1, "Skip if bit in register cleared"},
    {"SBRS", OS::kRegBit, 7, 1, 1, "Skip if bit in register set"},
    {"SBIC", OS::kIoBit, 7, 1, 1, "Skip if bit in I/O cleared"},
    {"SBIS", OS::kIoBit, 7, 1, 1, "Skip if bit in I/O set"},
    {"BRBS", OS::kSflagRel, 7, 1, 1, "Branch if SREG bit set"},
    {"BRBC", OS::kSflagRel, 7, 1, 1, "Branch if SREG bit cleared"},
    {"SBI", OS::kIoBit, 7, 2, 1, "Set bit in I/O register"},
    {"CBI", OS::kIoBit, 7, 2, 1, "Clear bit in I/O register"},
    {"BST", OS::kRegBit, 7, 1, 1, "Bit store from register to T"},
    {"BLD", OS::kRegBit, 7, 1, 1, "Bit load from T to register"},
    {"BSET", OS::kSflag, 7, 1, 1, "Set SREG bit"},
    {"BCLR", OS::kSflag, 7, 1, 1, "Clear SREG bit"},
    // group 8
    {"LPM", OS::kRdMem, 8, 3, 1, "Load from program memory"},
    {"ELPM", OS::kRdMem, 8, 3, 1, "Extended load from program memory"},
    // residual
    {"NOP", OS::kNone, 0, 1, 1, "No operation"},
    {"IN", OS::kRdIo, 0, 1, 1, "Read I/O register"},
    {"OUT", OS::kRrIo, 0, 1, 1, "Write I/O register"},
    {"PUSH", OS::kRd, 0, 2, 1, "Push register on stack"},
    {"POP", OS::kRd, 0, 2, 1, "Pop register from stack"},
    {"RET", OS::kNone, 0, 4, 1, "Return from subroutine"},
    {"RETI", OS::kNone, 0, 4, 1, "Return from interrupt"},
    {"RCALL", OS::kRelK, 0, 3, 1, "Relative call"},
    {"CALL", OS::kAbsK, 0, 4, 2, "Absolute call"},
    {"ICALL", OS::kNone, 0, 3, 1, "Indirect call via Z"},
    {"IJMP", OS::kNone, 0, 2, 1, "Indirect jump via Z"},
    {"MUL", OS::kRdRr, 0, 2, 1, "Multiply unsigned"},
    {"MULS", OS::kRdRr, 0, 2, 1, "Multiply signed"},
    {"SLEEP", OS::kNone, 0, 1, 1, "Enter sleep mode"},
    {"WDR", OS::kNone, 0, 1, 1, "Watchdog reset"},
    {"BREAK", OS::kNone, 0, 1, 1, "Debugger break"},
    {"CLI", OS::kNone, 0, 1, 1, "Clear interrupt enable"},
}};

}  // namespace

const MnemonicInfo& info(Mnemonic m) {
  const auto idx = static_cast<std::size_t>(m);
  if (idx >= kInfo.size()) throw std::invalid_argument("info: bad mnemonic");
  return kInfo[idx];
}

std::string_view name(Mnemonic m) { return info(m).name; }

std::optional<Mnemonic> mnemonic_from_name(std::string_view text) {
  std::string upper(text);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  for (std::size_t i = 0; i < kInfo.size(); ++i) {
    if (kInfo[i].name == upper) return static_cast<Mnemonic>(i);
  }
  return std::nullopt;
}

namespace {

std::string mem_operand(const Instruction& in) {
  switch (in.mode) {
    case AddrMode::kAbs: return "0x" + [&] {
      std::ostringstream os;
      os << std::hex << in.k16;
      return os.str();
    }();
    case AddrMode::kX: return "X";
    case AddrMode::kXPostInc: return "X+";
    case AddrMode::kXPreDec: return "-X";
    case AddrMode::kY: return "Y";
    case AddrMode::kYPostInc: return "Y+";
    case AddrMode::kYPreDec: return "-Y";
    case AddrMode::kYDisp: return "Y+" + std::to_string(in.q);
    case AddrMode::kZ: return "Z";
    case AddrMode::kZPostInc: return "Z+";
    case AddrMode::kZPreDec: return "-Z";
    case AddrMode::kZDisp: return "Z+" + std::to_string(in.q);
    case AddrMode::kR0: return "";  // implicit-R0 LPM has no operands
    case AddrMode::kNone: break;
  }
  return "?";
}

std::string reg(std::uint8_t r) { return "r" + std::to_string(r); }

}  // namespace

std::string to_string(const Instruction& in) {
  const MnemonicInfo& mi = info(in.mnemonic);
  std::string out{mi.name};
  const auto append = [&out](const std::string& s) {
    out += out.find(' ') == std::string::npos ? " " : ", ";
    out += s;
  };
  switch (mi.signature) {
    case OS::kNone:
      break;
    case OS::kRdRr:
      append(reg(in.rd));
      append(reg(in.rr));
      break;
    case OS::kRdK:
      append(reg(in.rd));
      append(std::to_string(in.k8));
      break;
    case OS::kRd:
      append(reg(in.rd));
      break;
    case OS::kRelK:
      append("." + std::to_string(in.rel * 2));  // byte offset, GNU style
      break;
    case OS::kAbsK:
      append("0x" + [&] {
        std::ostringstream os;
        os << std::hex << in.k22 * 2;
        return os.str();
      }());
      break;
    case OS::kRdMem: {
      if (in.mode != AddrMode::kR0) append(reg(in.rd));
      const std::string m = mem_operand(in);
      if (!m.empty()) append(m);
      break;
    }
    case OS::kRrMem:
      append(mem_operand(in));
      append(reg(in.rr));
      break;
    case OS::kRegBit:
      append(reg(in.mnemonic == Mnemonic::kSbrc || in.mnemonic == Mnemonic::kSbrs
                     ? in.rr
                     : in.rd));
      append(std::to_string(in.bit));
      break;
    case OS::kIoBit:
      append(std::to_string(in.io));
      append(std::to_string(in.bit));
      break;
    case OS::kSflagRel:
      append(std::to_string(in.sflag));
      append("." + std::to_string(in.rel * 2));
      break;
    case OS::kSflag:
      append(std::to_string(in.sflag));
      break;
    case OS::kRdIo:
      append(reg(in.rd));
      append(std::to_string(in.io));
      break;
    case OS::kRrIo:
      append(std::to_string(in.io));
      append(reg(in.rr));
      break;
  }
  return out;
}

bool is_two_word(const Instruction& in) { return info(in.mnemonic).words == 2; }

bool is_flag_shorthand(Mnemonic m, std::uint8_t* s, bool* set) {
  std::uint8_t flag = 0;
  bool polarity = true;
  switch (m) {
    case Mnemonic::kSec: flag = kFlagC; polarity = true; break;
    case Mnemonic::kClc: flag = kFlagC; polarity = false; break;
    case Mnemonic::kSen: flag = kFlagN; polarity = true; break;
    case Mnemonic::kCln: flag = kFlagN; polarity = false; break;
    case Mnemonic::kSez: flag = kFlagZ; polarity = true; break;
    case Mnemonic::kClz: flag = kFlagZ; polarity = false; break;
    case Mnemonic::kSei: flag = kFlagI; polarity = true; break;
    case Mnemonic::kCli: flag = kFlagI; polarity = false; break;
    case Mnemonic::kSes: flag = kFlagS; polarity = true; break;
    case Mnemonic::kCls: flag = kFlagS; polarity = false; break;
    case Mnemonic::kSev: flag = kFlagV; polarity = true; break;
    case Mnemonic::kClv: flag = kFlagV; polarity = false; break;
    case Mnemonic::kSet: flag = kFlagT; polarity = true; break;
    case Mnemonic::kClt: flag = kFlagT; polarity = false; break;
    case Mnemonic::kSeh: flag = kFlagH; polarity = true; break;
    case Mnemonic::kClh: flag = kFlagH; polarity = false; break;
    default: return false;
  }
  if (s != nullptr) *s = flag;
  if (set != nullptr) *set = polarity;
  return true;
}

bool is_branch_shorthand(Mnemonic m, std::uint8_t* s, bool* on_set) {
  std::uint8_t flag = 0;
  bool polarity = true;
  switch (m) {
    case Mnemonic::kBreq: flag = kFlagZ; polarity = true; break;
    case Mnemonic::kBrne: flag = kFlagZ; polarity = false; break;
    case Mnemonic::kBrcs: flag = kFlagC; polarity = true; break;
    case Mnemonic::kBrcc: flag = kFlagC; polarity = false; break;
    case Mnemonic::kBrlo: flag = kFlagC; polarity = true; break;
    case Mnemonic::kBrsh: flag = kFlagC; polarity = false; break;
    case Mnemonic::kBrmi: flag = kFlagN; polarity = true; break;
    case Mnemonic::kBrpl: flag = kFlagN; polarity = false; break;
    case Mnemonic::kBrlt: flag = kFlagS; polarity = true; break;
    case Mnemonic::kBrge: flag = kFlagS; polarity = false; break;
    case Mnemonic::kBrhs: flag = kFlagH; polarity = true; break;
    case Mnemonic::kBrhc: flag = kFlagH; polarity = false; break;
    case Mnemonic::kBrts: flag = kFlagT; polarity = true; break;
    case Mnemonic::kBrtc: flag = kFlagT; polarity = false; break;
    case Mnemonic::kBrvs: flag = kFlagV; polarity = true; break;
    case Mnemonic::kBrvc: flag = kFlagV; polarity = false; break;
    case Mnemonic::kBrie: flag = kFlagI; polarity = true; break;
    case Mnemonic::kBrid: flag = kFlagI; polarity = false; break;
    default: return false;
  }
  if (s != nullptr) *s = flag;
  if (on_set != nullptr) *on_set = polarity;
  return true;
}

}  // namespace sidis::avr

// Binary encoder/decoder for the AVR instruction set (ATmega328P subset).
//
// Encodings follow the AVR Instruction Set Manual [12].  The encoder accepts
// alias mnemonics (TST, CLR, LSL, ROL, SER, SBR, CBR, the SEx/CLx flag
// shorthands and the BRxx branch shorthands) and emits their canonical
// encodings; the decoder always returns canonical instructions (AND, EOR,
// ADD, ADC, LDI, ORI, ANDI, BSET/BCLR, BRBS/BRBC).  `prettify` restores the
// unambiguous shorthands for display.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "avr/isa.hpp"

namespace sidis::avr {

/// Encodes one instruction into one or two 16-bit words.
/// Throws std::invalid_argument on malformed operands (register ranges,
/// immediate widths, displacement widths are all checked).
std::vector<std::uint16_t> encode(const Instruction& instr);

/// Encodes a whole instruction sequence into a flat word stream.
std::vector<std::uint16_t> encode_program(std::span<const Instruction> program);

/// A decoded instruction plus its encoded length.
struct Decoded {
  Instruction instr;
  unsigned words = 1;
};

/// Decodes the instruction starting at `code[pc]`.  Returns nullopt on an
/// unknown opcode or a truncated two-word instruction.
std::optional<Decoded> decode(std::span<const std::uint16_t> code, std::size_t pc);

/// Decodes an entire word stream; stops and truncates at the first
/// undecodable word (returned instructions are always valid).
std::vector<Instruction> decode_program(std::span<const std::uint16_t> code);

/// Maps canonical forms back to the conventional shorthands where that is
/// unambiguous: BSET/BCLR -> SEC/CLZ/..., BRBS/BRBC -> BREQ/BRNE/....
/// Register aliases (AND r,r -> TST r) are ambiguous and left canonical.
Instruction prettify(const Instruction& instr);

/// Rewrites alias mnemonics into their canonical instruction (identity for
/// canonical input).  The encoder applies this internally.
Instruction canonicalize(const Instruction& instr);

}  // namespace sidis::avr

#include "avr/codec.hpp"

#include <stdexcept>
#include <string>

namespace sidis::avr {

namespace {

[[noreturn]] void bad(const Instruction& in, const char* why) {
  throw std::invalid_argument("encode " + std::string(name(in.mnemonic)) + ": " + why);
}

void check_reg(const Instruction& in, std::uint8_t r) {
  if (r > 31) bad(in, "register index out of range");
}

void check_high_reg(const Instruction& in, std::uint8_t r) {
  if (r < 16 || r > 31) bad(in, "register must be r16..r31");
}

std::uint16_t two_reg(std::uint16_t base, std::uint8_t d, std::uint8_t r) {
  return static_cast<std::uint16_t>(base | ((r & 0x10u) << 5) | ((d & 0x1Fu) << 4) |
                                    (r & 0x0Fu));
}

std::uint16_t imm_reg(std::uint16_t base, std::uint8_t d, std::uint8_t k) {
  return static_cast<std::uint16_t>(base | ((k & 0xF0u) << 4) |
                                    (static_cast<unsigned>(d - 16) << 4) | (k & 0x0Fu));
}

std::uint16_t one_reg(std::uint16_t suffix, std::uint8_t d) {
  return static_cast<std::uint16_t>(0x9400u | (static_cast<unsigned>(d) << 4) | suffix);
}

// q bits of LDD/STD: ..q.qq......qqq -> bit13=q5, bits11..10=q4..q3, bits2..0=q2..q0
std::uint16_t disp_bits(std::uint8_t q) {
  return static_cast<std::uint16_t>(((q & 0x20u) << 8) | ((q & 0x18u) << 7) | (q & 0x07u));
}

}  // namespace

Instruction canonicalize(const Instruction& in) {
  Instruction out = in;
  std::uint8_t s = 0;
  bool set = false;
  if (is_flag_shorthand(in.mnemonic, &s, &set)) {
    out.mnemonic = set ? Mnemonic::kBset : Mnemonic::kBclr;
    out.sflag = s;
    return out;
  }
  if (is_branch_shorthand(in.mnemonic, &s, &set)) {
    out.mnemonic = set ? Mnemonic::kBrbs : Mnemonic::kBrbc;
    out.sflag = s;
    return out;
  }
  switch (in.mnemonic) {
    case Mnemonic::kTst: out.mnemonic = Mnemonic::kAnd; out.rr = in.rd; break;
    case Mnemonic::kClr: out.mnemonic = Mnemonic::kEor; out.rr = in.rd; break;
    case Mnemonic::kLsl: out.mnemonic = Mnemonic::kAdd; out.rr = in.rd; break;
    case Mnemonic::kRol: out.mnemonic = Mnemonic::kAdc; out.rr = in.rd; break;
    case Mnemonic::kSer: out.mnemonic = Mnemonic::kLdi; out.k8 = 0xFF; break;
    case Mnemonic::kSbr: out.mnemonic = Mnemonic::kOri; break;
    case Mnemonic::kLdd:
      if (in.q == 0) {
        out.mnemonic = Mnemonic::kLd;
        out.mode = in.mode == AddrMode::kYDisp ? AddrMode::kY : AddrMode::kZ;
      }
      break;
    case Mnemonic::kStd:
      if (in.q == 0) {
        out.mnemonic = Mnemonic::kSt;
        out.mode = in.mode == AddrMode::kYDisp ? AddrMode::kY : AddrMode::kZ;
      }
      break;
    case Mnemonic::kCbr:
      out.mnemonic = Mnemonic::kAndi;
      out.k8 = static_cast<std::uint8_t>(~in.k8);
      break;
    default: break;
  }
  return out;
}

Instruction prettify(const Instruction& in) {
  Instruction out = in;
  if (in.mnemonic == Mnemonic::kBset || in.mnemonic == Mnemonic::kBclr) {
    const bool set = in.mnemonic == Mnemonic::kBset;
    static constexpr Mnemonic kSetNames[8] = {
        Mnemonic::kSec, Mnemonic::kSez, Mnemonic::kSen, Mnemonic::kSev,
        Mnemonic::kSes, Mnemonic::kSeh, Mnemonic::kSet, Mnemonic::kSei};
    static constexpr Mnemonic kClrNames[8] = {
        Mnemonic::kClc, Mnemonic::kClz, Mnemonic::kCln, Mnemonic::kClv,
        Mnemonic::kCls, Mnemonic::kClh, Mnemonic::kClt, Mnemonic::kCli};
    out.mnemonic = set ? kSetNames[in.sflag & 7] : kClrNames[in.sflag & 7];
    out.sflag = 0;
    return out;
  }
  if (in.mnemonic == Mnemonic::kBrbs || in.mnemonic == Mnemonic::kBrbc) {
    const bool set = in.mnemonic == Mnemonic::kBrbs;
    static constexpr Mnemonic kOnSet[8] = {
        Mnemonic::kBrcs, Mnemonic::kBreq, Mnemonic::kBrmi, Mnemonic::kBrvs,
        Mnemonic::kBrlt, Mnemonic::kBrhs, Mnemonic::kBrts, Mnemonic::kBrie};
    static constexpr Mnemonic kOnClr[8] = {
        Mnemonic::kBrcc, Mnemonic::kBrne, Mnemonic::kBrpl, Mnemonic::kBrvc,
        Mnemonic::kBrge, Mnemonic::kBrhc, Mnemonic::kBrtc, Mnemonic::kBrid};
    out.mnemonic = set ? kOnSet[in.sflag & 7] : kOnClr[in.sflag & 7];
    out.sflag = 0;
    return out;
  }
  return out;
}

std::vector<std::uint16_t> encode(const Instruction& raw) {
  const Instruction in = canonicalize(raw);
  const auto word = [](std::uint16_t w) { return std::vector<std::uint16_t>{w}; };

  switch (in.mnemonic) {
    case Mnemonic::kCpc:  check_reg(in, in.rd); check_reg(in, in.rr); return word(two_reg(0x0400, in.rd, in.rr));
    case Mnemonic::kSbc:  check_reg(in, in.rd); check_reg(in, in.rr); return word(two_reg(0x0800, in.rd, in.rr));
    case Mnemonic::kAdd:  check_reg(in, in.rd); check_reg(in, in.rr); return word(two_reg(0x0C00, in.rd, in.rr));
    case Mnemonic::kCpse: check_reg(in, in.rd); check_reg(in, in.rr); return word(two_reg(0x1000, in.rd, in.rr));
    case Mnemonic::kCp:   check_reg(in, in.rd); check_reg(in, in.rr); return word(two_reg(0x1400, in.rd, in.rr));
    case Mnemonic::kSub:  check_reg(in, in.rd); check_reg(in, in.rr); return word(two_reg(0x1800, in.rd, in.rr));
    case Mnemonic::kAdc:  check_reg(in, in.rd); check_reg(in, in.rr); return word(two_reg(0x1C00, in.rd, in.rr));
    case Mnemonic::kAnd:  check_reg(in, in.rd); check_reg(in, in.rr); return word(two_reg(0x2000, in.rd, in.rr));
    case Mnemonic::kEor:  check_reg(in, in.rd); check_reg(in, in.rr); return word(two_reg(0x2400, in.rd, in.rr));
    case Mnemonic::kOr:   check_reg(in, in.rd); check_reg(in, in.rr); return word(two_reg(0x2800, in.rd, in.rr));
    case Mnemonic::kMov:  check_reg(in, in.rd); check_reg(in, in.rr); return word(two_reg(0x2C00, in.rd, in.rr));
    case Mnemonic::kMul:  check_reg(in, in.rd); check_reg(in, in.rr); return word(two_reg(0x9C00, in.rd, in.rr));

    case Mnemonic::kMovw:
      if ((in.rd | in.rr) & 1) bad(in, "MOVW needs even register pairs");
      check_reg(in, in.rd); check_reg(in, in.rr);
      return word(static_cast<std::uint16_t>(0x0100u | ((in.rd / 2u) << 4) | (in.rr / 2u)));
    case Mnemonic::kMuls:
      check_high_reg(in, in.rd); check_high_reg(in, in.rr);
      return word(static_cast<std::uint16_t>(0x0200u | (static_cast<unsigned>(in.rd - 16) << 4) |
                                             static_cast<unsigned>(in.rr - 16)));

    case Mnemonic::kCpi:  check_high_reg(in, in.rd); return word(imm_reg(0x3000, in.rd, in.k8));
    case Mnemonic::kSbci: check_high_reg(in, in.rd); return word(imm_reg(0x4000, in.rd, in.k8));
    case Mnemonic::kSubi: check_high_reg(in, in.rd); return word(imm_reg(0x5000, in.rd, in.k8));
    case Mnemonic::kOri:  check_high_reg(in, in.rd); return word(imm_reg(0x6000, in.rd, in.k8));
    case Mnemonic::kAndi: check_high_reg(in, in.rd); return word(imm_reg(0x7000, in.rd, in.k8));
    case Mnemonic::kLdi:  check_high_reg(in, in.rd); return word(imm_reg(0xE000, in.rd, in.k8));

    case Mnemonic::kAdiw:
    case Mnemonic::kSbiw: {
      if (in.rd != 24 && in.rd != 26 && in.rd != 28 && in.rd != 30) {
        bad(in, "register must be r24/r26/r28/r30");
      }
      if (in.k8 > 63) bad(in, "immediate must be 0..63");
      const std::uint16_t base = in.mnemonic == Mnemonic::kAdiw ? 0x9600 : 0x9700;
      return word(static_cast<std::uint16_t>(
          base | ((in.k8 & 0x30u) << 2) | ((static_cast<unsigned>(in.rd - 24) / 2u) << 4) |
          (in.k8 & 0x0Fu)));
    }

    case Mnemonic::kCom:  check_reg(in, in.rd); return word(one_reg(0x0, in.rd));
    case Mnemonic::kNeg:  check_reg(in, in.rd); return word(one_reg(0x1, in.rd));
    case Mnemonic::kSwap: check_reg(in, in.rd); return word(one_reg(0x2, in.rd));
    case Mnemonic::kInc:  check_reg(in, in.rd); return word(one_reg(0x3, in.rd));
    case Mnemonic::kAsr:  check_reg(in, in.rd); return word(one_reg(0x5, in.rd));
    case Mnemonic::kLsr:  check_reg(in, in.rd); return word(one_reg(0x6, in.rd));
    case Mnemonic::kRor:  check_reg(in, in.rd); return word(one_reg(0x7, in.rd));
    case Mnemonic::kDec:  check_reg(in, in.rd); return word(one_reg(0xA, in.rd));

    case Mnemonic::kBset:
      if (in.sflag > 7) bad(in, "flag index must be 0..7");
      return word(static_cast<std::uint16_t>(0x9408u | (static_cast<unsigned>(in.sflag) << 4)));
    case Mnemonic::kBclr:
      if (in.sflag > 7) bad(in, "flag index must be 0..7");
      return word(static_cast<std::uint16_t>(0x9488u | (static_cast<unsigned>(in.sflag) << 4)));

    case Mnemonic::kBrbs:
    case Mnemonic::kBrbc: {
      if (in.sflag > 7) bad(in, "flag index must be 0..7");
      if (in.rel < -64 || in.rel > 63) bad(in, "branch offset must be -64..63 words");
      const std::uint16_t base = in.mnemonic == Mnemonic::kBrbs ? 0xF000 : 0xF400;
      return word(static_cast<std::uint16_t>(base | ((static_cast<unsigned>(in.rel) & 0x7Fu) << 3) |
                                             in.sflag));
    }

    case Mnemonic::kRjmp:
    case Mnemonic::kRcall: {
      if (in.rel < -2048 || in.rel > 2047) bad(in, "offset must be -2048..2047 words");
      const std::uint16_t base = in.mnemonic == Mnemonic::kRjmp ? 0xC000 : 0xD000;
      return word(static_cast<std::uint16_t>(base | (static_cast<unsigned>(in.rel) & 0xFFFu)));
    }

    case Mnemonic::kJmp:
    case Mnemonic::kCall: {
      if (in.k22 > 0x3FFFFF) bad(in, "address exceeds 22 bits");
      const std::uint16_t suffix = in.mnemonic == Mnemonic::kJmp ? 0xC : 0xE;
      const std::uint32_t hi = in.k22 >> 16;
      const auto w0 = static_cast<std::uint16_t>(0x9400u | ((hi >> 1) << 4) | (hi & 1u) | suffix);
      return {w0, static_cast<std::uint16_t>(in.k22 & 0xFFFFu)};
    }

    case Mnemonic::kLds:
      check_reg(in, in.rd);
      return {static_cast<std::uint16_t>(0x9000u | (static_cast<unsigned>(in.rd) << 4)), in.k16};
    case Mnemonic::kSts:
      check_reg(in, in.rr);
      return {static_cast<std::uint16_t>(0x9200u | (static_cast<unsigned>(in.rr) << 4)), in.k16};

    case Mnemonic::kLd: {
      check_reg(in, in.rd);
      std::uint16_t base = 0;
      switch (in.mode) {
        case AddrMode::kX: base = 0x900C; break;
        case AddrMode::kXPostInc: base = 0x900D; break;
        case AddrMode::kXPreDec: base = 0x900E; break;
        case AddrMode::kY: base = 0x8008; break;
        case AddrMode::kYPostInc: base = 0x9009; break;
        case AddrMode::kYPreDec: base = 0x900A; break;
        case AddrMode::kZ: base = 0x8000; break;
        case AddrMode::kZPostInc: base = 0x9001; break;
        case AddrMode::kZPreDec: base = 0x9002; break;
        default: bad(in, "invalid LD addressing mode");
      }
      return word(static_cast<std::uint16_t>(base | (static_cast<unsigned>(in.rd) << 4)));
    }
    case Mnemonic::kLdd: {
      check_reg(in, in.rd);
      if (in.q > 63) bad(in, "displacement must be 0..63");
      std::uint16_t base = 0;
      switch (in.mode) {
        case AddrMode::kYDisp: base = 0x8008; break;
        case AddrMode::kZDisp: base = 0x8000; break;
        default: bad(in, "invalid LDD addressing mode");
      }
      return word(static_cast<std::uint16_t>(base | disp_bits(in.q) |
                                             (static_cast<unsigned>(in.rd) << 4)));
    }
    case Mnemonic::kSt: {
      check_reg(in, in.rr);
      std::uint16_t base = 0;
      switch (in.mode) {
        case AddrMode::kX: base = 0x920C; break;
        case AddrMode::kXPostInc: base = 0x920D; break;
        case AddrMode::kXPreDec: base = 0x920E; break;
        case AddrMode::kY: base = 0x8208; break;
        case AddrMode::kYPostInc: base = 0x9209; break;
        case AddrMode::kYPreDec: base = 0x920A; break;
        case AddrMode::kZ: base = 0x8200; break;
        case AddrMode::kZPostInc: base = 0x9201; break;
        case AddrMode::kZPreDec: base = 0x9202; break;
        default: bad(in, "invalid ST addressing mode");
      }
      return word(static_cast<std::uint16_t>(base | (static_cast<unsigned>(in.rr) << 4)));
    }
    case Mnemonic::kStd: {
      check_reg(in, in.rr);
      if (in.q > 63) bad(in, "displacement must be 0..63");
      std::uint16_t base = 0;
      switch (in.mode) {
        case AddrMode::kYDisp: base = 0x8208; break;
        case AddrMode::kZDisp: base = 0x8200; break;
        default: bad(in, "invalid STD addressing mode");
      }
      return word(static_cast<std::uint16_t>(base | disp_bits(in.q) |
                                             (static_cast<unsigned>(in.rr) << 4)));
    }

    case Mnemonic::kLpm:
      switch (in.mode) {
        case AddrMode::kR0: return word(0x95C8);
        case AddrMode::kZ:
          check_reg(in, in.rd);
          return word(static_cast<std::uint16_t>(0x9004u | (static_cast<unsigned>(in.rd) << 4)));
        case AddrMode::kZPostInc:
          check_reg(in, in.rd);
          return word(static_cast<std::uint16_t>(0x9005u | (static_cast<unsigned>(in.rd) << 4)));
        default: bad(in, "invalid LPM addressing mode");
      }
    case Mnemonic::kElpm:
      switch (in.mode) {
        case AddrMode::kR0: return word(0x95D8);
        case AddrMode::kZ:
          check_reg(in, in.rd);
          return word(static_cast<std::uint16_t>(0x9006u | (static_cast<unsigned>(in.rd) << 4)));
        case AddrMode::kZPostInc:
          check_reg(in, in.rd);
          return word(static_cast<std::uint16_t>(0x9007u | (static_cast<unsigned>(in.rd) << 4)));
        default: bad(in, "invalid ELPM addressing mode");
      }

    case Mnemonic::kSbi:
    case Mnemonic::kCbi:
    case Mnemonic::kSbic:
    case Mnemonic::kSbis: {
      if (in.io > 31) bad(in, "I/O address must be 0..31");
      if (in.bit > 7) bad(in, "bit index must be 0..7");
      std::uint16_t base = 0;
      switch (in.mnemonic) {
        case Mnemonic::kCbi: base = 0x9800; break;
        case Mnemonic::kSbic: base = 0x9900; break;
        case Mnemonic::kSbi: base = 0x9A00; break;
        default: base = 0x9B00; break;
      }
      return word(static_cast<std::uint16_t>(base | (static_cast<unsigned>(in.io) << 3) | in.bit));
    }

    case Mnemonic::kSbrc:
    case Mnemonic::kSbrs: {
      check_reg(in, in.rr);
      if (in.bit > 7) bad(in, "bit index must be 0..7");
      const std::uint16_t base = in.mnemonic == Mnemonic::kSbrc ? 0xFC00 : 0xFE00;
      return word(static_cast<std::uint16_t>(base | (static_cast<unsigned>(in.rr) << 4) | in.bit));
    }
    case Mnemonic::kBst:
    case Mnemonic::kBld: {
      check_reg(in, in.rd);
      if (in.bit > 7) bad(in, "bit index must be 0..7");
      const std::uint16_t base = in.mnemonic == Mnemonic::kBst ? 0xFA00 : 0xF800;
      return word(static_cast<std::uint16_t>(base | (static_cast<unsigned>(in.rd) << 4) | in.bit));
    }

    case Mnemonic::kIn:
      check_reg(in, in.rd);
      if (in.io > 63) bad(in, "I/O address must be 0..63");
      return word(static_cast<std::uint16_t>(0xB000u | ((in.io & 0x30u) << 5) |
                                             (static_cast<unsigned>(in.rd) << 4) |
                                             (in.io & 0x0Fu)));
    case Mnemonic::kOut:
      check_reg(in, in.rr);
      if (in.io > 63) bad(in, "I/O address must be 0..63");
      return word(static_cast<std::uint16_t>(0xB800u | ((in.io & 0x30u) << 5) |
                                             (static_cast<unsigned>(in.rr) << 4) |
                                             (in.io & 0x0Fu)));

    case Mnemonic::kPush:
      check_reg(in, in.rd);
      return word(static_cast<std::uint16_t>(0x920Fu | (static_cast<unsigned>(in.rd) << 4)));
    case Mnemonic::kPop:
      check_reg(in, in.rd);
      return word(static_cast<std::uint16_t>(0x900Fu | (static_cast<unsigned>(in.rd) << 4)));

    case Mnemonic::kNop: return word(0x0000);
    case Mnemonic::kRet: return word(0x9508);
    case Mnemonic::kReti: return word(0x9518);
    case Mnemonic::kIcall: return word(0x9509);
    case Mnemonic::kIjmp: return word(0x9409);
    case Mnemonic::kSleep: return word(0x9588);
    case Mnemonic::kWdr: return word(0x95A8);
    case Mnemonic::kBreak: return word(0x9598);

    default: break;
  }
  bad(in, "unencodable mnemonic");
}

std::vector<std::uint16_t> encode_program(std::span<const Instruction> program) {
  std::vector<std::uint16_t> out;
  out.reserve(program.size());
  for (const Instruction& in : program) {
    const auto words = encode(in);
    out.insert(out.end(), words.begin(), words.end());
  }
  return out;
}

namespace {

Instruction make(Mnemonic m) {
  Instruction in;
  in.mnemonic = m;
  return in;
}

std::uint8_t field_d5(std::uint16_t w) { return static_cast<std::uint8_t>((w >> 4) & 0x1F); }
std::uint8_t field_r5(std::uint16_t w) {
  return static_cast<std::uint8_t>(((w >> 5) & 0x10) | (w & 0x0F));
}

std::optional<Decoded> decode_9xxx(std::span<const std::uint16_t> code, std::size_t pc) {
  const std::uint16_t w = code[pc];
  Instruction in;
  // 1001 00xd dddd ....: LDS/LD/LPM/ELPM/POP (x=0) and STS/ST/PUSH (x=1)
  if ((w & 0xFC00) == 0x9000) {
    const bool store = (w & 0x0200) != 0;
    const std::uint8_t d = field_d5(w);
    const std::uint16_t low = w & 0xF;
    if (store) {
      in.rr = d;
      switch (low) {
        case 0x0:
          if (pc + 1 >= code.size()) return std::nullopt;
          in.mnemonic = Mnemonic::kSts; in.mode = AddrMode::kAbs; in.k16 = code[pc + 1];
          return Decoded{in, 2};
        case 0x1: in.mnemonic = Mnemonic::kSt; in.mode = AddrMode::kZPostInc; break;
        case 0x2: in.mnemonic = Mnemonic::kSt; in.mode = AddrMode::kZPreDec; break;
        case 0x9: in.mnemonic = Mnemonic::kSt; in.mode = AddrMode::kYPostInc; break;
        case 0xA: in.mnemonic = Mnemonic::kSt; in.mode = AddrMode::kYPreDec; break;
        case 0xC: in.mnemonic = Mnemonic::kSt; in.mode = AddrMode::kX; break;
        case 0xD: in.mnemonic = Mnemonic::kSt; in.mode = AddrMode::kXPostInc; break;
        case 0xE: in.mnemonic = Mnemonic::kSt; in.mode = AddrMode::kXPreDec; break;
        case 0xF: in.mnemonic = Mnemonic::kPush; in.rd = d; in.rr = 0; break;
        default: return std::nullopt;
      }
      return Decoded{in, 1};
    }
    in.rd = d;
    switch (low) {
      case 0x0:
        if (pc + 1 >= code.size()) return std::nullopt;
        in.mnemonic = Mnemonic::kLds; in.mode = AddrMode::kAbs; in.k16 = code[pc + 1];
        return Decoded{in, 2};
      case 0x1: in.mnemonic = Mnemonic::kLd; in.mode = AddrMode::kZPostInc; break;
      case 0x2: in.mnemonic = Mnemonic::kLd; in.mode = AddrMode::kZPreDec; break;
      case 0x4: in.mnemonic = Mnemonic::kLpm; in.mode = AddrMode::kZ; break;
      case 0x5: in.mnemonic = Mnemonic::kLpm; in.mode = AddrMode::kZPostInc; break;
      case 0x6: in.mnemonic = Mnemonic::kElpm; in.mode = AddrMode::kZ; break;
      case 0x7: in.mnemonic = Mnemonic::kElpm; in.mode = AddrMode::kZPostInc; break;
      case 0x9: in.mnemonic = Mnemonic::kLd; in.mode = AddrMode::kYPostInc; break;
      case 0xA: in.mnemonic = Mnemonic::kLd; in.mode = AddrMode::kYPreDec; break;
      case 0xC: in.mnemonic = Mnemonic::kLd; in.mode = AddrMode::kX; break;
      case 0xD: in.mnemonic = Mnemonic::kLd; in.mode = AddrMode::kXPostInc; break;
      case 0xE: in.mnemonic = Mnemonic::kLd; in.mode = AddrMode::kXPreDec; break;
      case 0xF: in.mnemonic = Mnemonic::kPop; break;
      default: return std::nullopt;
    }
    return Decoded{in, 1};
  }

  // 1001 010d dddd xxxx: one-operand ALU, BSET/BCLR, JMP/CALL, misc.
  if ((w & 0xFE00) == 0x9400) {
    const std::uint8_t d = field_d5(w);
    const std::uint16_t low = w & 0xF;
    switch (low) {
      case 0x0: in = make(Mnemonic::kCom); in.rd = d; return Decoded{in, 1};
      case 0x1: in = make(Mnemonic::kNeg); in.rd = d; return Decoded{in, 1};
      case 0x2: in = make(Mnemonic::kSwap); in.rd = d; return Decoded{in, 1};
      case 0x3: in = make(Mnemonic::kInc); in.rd = d; return Decoded{in, 1};
      case 0x5: in = make(Mnemonic::kAsr); in.rd = d; return Decoded{in, 1};
      case 0x6: in = make(Mnemonic::kLsr); in.rd = d; return Decoded{in, 1};
      case 0x7: in = make(Mnemonic::kRor); in.rd = d; return Decoded{in, 1};
      case 0xA: in = make(Mnemonic::kDec); in.rd = d; return Decoded{in, 1};
      case 0x8: {
        // BSET 1001 0100 0sss 1000 / BCLR 1001 0100 1sss 1000: bit 7 of the
        // low byte distinguishes them, so it must survive the mask.
        if ((w & 0xFF8F) == 0x9408) {
          in = make(Mnemonic::kBset);
          in.sflag = static_cast<std::uint8_t>((w >> 4) & 7);
          return Decoded{in, 1};
        }
        if ((w & 0xFF8F) == 0x9488) {
          in = make(Mnemonic::kBclr);
          in.sflag = static_cast<std::uint8_t>((w >> 4) & 7);
          return Decoded{in, 1};
        }
        switch (w) {
          case 0x9508: return Decoded{make(Mnemonic::kRet), 1};
          case 0x9518: return Decoded{make(Mnemonic::kReti), 1};
          case 0x9588: return Decoded{make(Mnemonic::kSleep), 1};
          case 0x9598: return Decoded{make(Mnemonic::kBreak), 1};
          case 0x95A8: return Decoded{make(Mnemonic::kWdr), 1};
          case 0x95C8: in = make(Mnemonic::kLpm); in.mode = AddrMode::kR0; return Decoded{in, 1};
          case 0x95D8: in = make(Mnemonic::kElpm); in.mode = AddrMode::kR0; return Decoded{in, 1};
          default: return std::nullopt;
        }
      }
      case 0x9:
        if (w == 0x9409) return Decoded{make(Mnemonic::kIjmp), 1};
        if (w == 0x9509) return Decoded{make(Mnemonic::kIcall), 1};
        return std::nullopt;
      case 0xC:
      case 0xD:
      case 0xE:
      case 0xF: {
        if (pc + 1 >= code.size()) return std::nullopt;
        in = make(low <= 0xD ? Mnemonic::kJmp : Mnemonic::kCall);
        const std::uint32_t hi =
            (static_cast<std::uint32_t>((w >> 4) & 0x1F) << 1) | (w & 1u);
        in.k22 = (hi << 16) | code[pc + 1];
        return Decoded{in, 2};
      }
      default: return std::nullopt;
    }
  }

  // ADIW / SBIW: 1001 0110/0111 KKdd KKKK
  if ((w & 0xFE00) == 0x9600) {
    in = make((w & 0x0100) ? Mnemonic::kSbiw : Mnemonic::kAdiw);
    in.rd = static_cast<std::uint8_t>(24 + 2 * ((w >> 4) & 3));
    in.k8 = static_cast<std::uint8_t>(((w >> 2) & 0x30) | (w & 0x0F));
    return Decoded{in, 1};
  }

  // CBI/SBIC/SBI/SBIS: 1001 10xx AAAA Abbb
  if ((w & 0xFC00) == 0x9800) {
    switch ((w >> 8) & 3) {
      case 0: in = make(Mnemonic::kCbi); break;
      case 1: in = make(Mnemonic::kSbic); break;
      case 2: in = make(Mnemonic::kSbi); break;
      default: in = make(Mnemonic::kSbis); break;
    }
    in.io = static_cast<std::uint8_t>((w >> 3) & 0x1F);
    in.bit = static_cast<std::uint8_t>(w & 7);
    return Decoded{in, 1};
  }

  // MUL: 1001 11rd dddd rrrr
  if ((w & 0xFC00) == 0x9C00) {
    in = make(Mnemonic::kMul);
    in.rd = field_d5(w);
    in.rr = field_r5(w);
    return Decoded{in, 1};
  }
  return std::nullopt;
}

}  // namespace

std::optional<Decoded> decode(std::span<const std::uint16_t> code, std::size_t pc) {
  if (pc >= code.size()) return std::nullopt;
  const std::uint16_t w = code[pc];
  Instruction in;

  switch (w >> 12) {
    case 0x0: {
      if (w == 0x0000) return Decoded{make(Mnemonic::kNop), 1};
      if ((w & 0xFF00) == 0x0100) {
        in = make(Mnemonic::kMovw);
        in.rd = static_cast<std::uint8_t>(((w >> 4) & 0xF) * 2);
        in.rr = static_cast<std::uint8_t>((w & 0xF) * 2);
        return Decoded{in, 1};
      }
      if ((w & 0xFF00) == 0x0200) {
        in = make(Mnemonic::kMuls);
        in.rd = static_cast<std::uint8_t>(16 + ((w >> 4) & 0xF));
        in.rr = static_cast<std::uint8_t>(16 + (w & 0xF));
        return Decoded{in, 1};
      }
      if ((w & 0xFC00) == 0x0400) { in = make(Mnemonic::kCpc); break; }
      if ((w & 0xFC00) == 0x0800) { in = make(Mnemonic::kSbc); break; }
      if ((w & 0xFC00) == 0x0C00) { in = make(Mnemonic::kAdd); break; }
      return std::nullopt;
    }
    case 0x1:
      if ((w & 0xFC00) == 0x1000) { in = make(Mnemonic::kCpse); break; }
      if ((w & 0xFC00) == 0x1400) { in = make(Mnemonic::kCp); break; }
      if ((w & 0xFC00) == 0x1800) { in = make(Mnemonic::kSub); break; }
      in = make(Mnemonic::kAdc);
      break;
    case 0x2:
      if ((w & 0xFC00) == 0x2000) { in = make(Mnemonic::kAnd); break; }
      if ((w & 0xFC00) == 0x2400) { in = make(Mnemonic::kEor); break; }
      if ((w & 0xFC00) == 0x2800) { in = make(Mnemonic::kOr); break; }
      in = make(Mnemonic::kMov);
      break;
    case 0x3: in = make(Mnemonic::kCpi); break;
    case 0x4: in = make(Mnemonic::kSbci); break;
    case 0x5: in = make(Mnemonic::kSubi); break;
    case 0x6: in = make(Mnemonic::kOri); break;
    case 0x7: in = make(Mnemonic::kAndi); break;
    case 0x8:
    case 0xA: {
      // LDD/STD with displacement (also plain LD/ST Y/Z as q = 0).
      const std::uint8_t q = static_cast<std::uint8_t>(((w >> 8) & 0x20) |
                                                       ((w >> 7) & 0x18) | (w & 0x07));
      const bool store = (w & 0x0200) != 0;
      const bool y = (w & 0x0008) != 0;
      const std::uint8_t d = field_d5(w);
      if (q == 0) {
        in = make(store ? Mnemonic::kSt : Mnemonic::kLd);
        in.mode = y ? AddrMode::kY : AddrMode::kZ;
      } else {
        in = make(store ? Mnemonic::kStd : Mnemonic::kLdd);
        in.mode = y ? AddrMode::kYDisp : AddrMode::kZDisp;
        in.q = q;
      }
      if (store) in.rr = d; else in.rd = d;
      return Decoded{in, 1};
    }
    case 0x9: return decode_9xxx(code, pc);
    case 0xB: {
      const std::uint8_t a = static_cast<std::uint8_t>(((w >> 5) & 0x30) | (w & 0x0F));
      const std::uint8_t d = field_d5(w);
      if (w & 0x0800) {
        in = make(Mnemonic::kOut);
        in.rr = d;
      } else {
        in = make(Mnemonic::kIn);
        in.rd = d;
      }
      in.io = a;
      return Decoded{in, 1};
    }
    case 0xC:
    case 0xD: {
      in = make((w >> 12) == 0xC ? Mnemonic::kRjmp : Mnemonic::kRcall);
      std::int16_t rel = static_cast<std::int16_t>(w & 0x0FFF);
      if (rel & 0x0800) rel = static_cast<std::int16_t>(rel - 0x1000);
      in.rel = rel;
      return Decoded{in, 1};
    }
    case 0xE: in = make(Mnemonic::kLdi); break;
    case 0xF: {
      if ((w & 0xF800) == 0xF000 || (w & 0xF800) == 0xF400) {
        in = make((w & 0x0400) ? Mnemonic::kBrbc : Mnemonic::kBrbs);
        in.sflag = static_cast<std::uint8_t>(w & 7);
        std::int16_t rel = static_cast<std::int16_t>((w >> 3) & 0x7F);
        if (rel & 0x40) rel = static_cast<std::int16_t>(rel - 0x80);
        in.rel = rel;
        return Decoded{in, 1};
      }
      if ((w & 0xFE08) == 0xF800) { in = make(Mnemonic::kBld); in.rd = field_d5(w); in.bit = static_cast<std::uint8_t>(w & 7); return Decoded{in, 1}; }
      if ((w & 0xFE08) == 0xFA00) { in = make(Mnemonic::kBst); in.rd = field_d5(w); in.bit = static_cast<std::uint8_t>(w & 7); return Decoded{in, 1}; }
      if ((w & 0xFE08) == 0xFC00) { in = make(Mnemonic::kSbrc); in.rr = field_d5(w); in.bit = static_cast<std::uint8_t>(w & 7); return Decoded{in, 1}; }
      if ((w & 0xFE08) == 0xFE00) { in = make(Mnemonic::kSbrs); in.rr = field_d5(w); in.bit = static_cast<std::uint8_t>(w & 7); return Decoded{in, 1}; }
      return std::nullopt;
    }
    default: return std::nullopt;
  }

  // Shared tails: two-register ALU and register-immediate formats.
  const OperandSignature sig = info(in.mnemonic).signature;
  if (sig == OperandSignature::kRdRr) {
    in.rd = field_d5(w);
    in.rr = field_r5(w);
    return Decoded{in, 1};
  }
  if (sig == OperandSignature::kRdK) {
    in.rd = static_cast<std::uint8_t>(16 + ((w >> 4) & 0xF));
    in.k8 = static_cast<std::uint8_t>(((w >> 4) & 0xF0) | (w & 0x0F));
    return Decoded{in, 1};
  }
  return std::nullopt;
}

std::vector<Instruction> decode_program(std::span<const std::uint16_t> code) {
  std::vector<Instruction> out;
  std::size_t pc = 0;
  while (pc < code.size()) {
    const auto d = decode(code, pc);
    if (!d) break;
    out.push_back(d->instr);
    pc += d->words;
  }
  return out;
}

}  // namespace sidis::avr

// Text assembler for the AVR subset.
//
// Accepts the same syntax `to_string` emits (GNU-style ".<bytes>" relative
// offsets, "r<N>" registers, X/Y+/−Z/Y+q memory operands, decimal or 0x hex
// immediates) plus comments (';' or '//') and blank lines.  Used by the
// examples and by tests that round-trip assembly -> binary -> assembly.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "avr/isa.hpp"

namespace sidis::avr {

/// Error describing the first line that failed to assemble.
struct AssemblyError {
  std::size_t line = 0;     ///< 1-based source line
  std::string message;
};

/// Result of assembling a source listing.
struct AssemblyResult {
  std::vector<Instruction> program;
  std::vector<AssemblyError> errors;  ///< empty on success
  bool ok() const { return errors.empty(); }
};

/// Assembles a full listing (newline-separated).
AssemblyResult assemble(std::string_view source);

/// Assembles a single statement; throws std::invalid_argument on failure.
Instruction assemble_line(std::string_view line);

/// Renders a program listing, one instruction per line.
std::string disassemble_listing(const std::vector<Instruction>& program);

}  // namespace sidis::avr

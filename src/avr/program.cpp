#include "avr/program.hpp"

#include <stdexcept>

#include "avr/codec.hpp"

namespace sidis::avr {

namespace {

std::uint8_t pick_reg(std::mt19937_64& rng, std::uint8_t lo, std::uint8_t hi) {
  std::uniform_int_distribution<int> d(lo, hi);
  return static_cast<std::uint8_t>(d(rng));
}

std::uint8_t pick_byte(std::mt19937_64& rng, int hi = 255) {
  std::uniform_int_distribution<int> d(0, hi);
  return static_cast<std::uint8_t>(d(rng));
}

std::uint8_t clamp_reg(std::uint8_t r, std::uint8_t lo, std::uint8_t hi) {
  if (r < lo) return lo;
  if (r > hi) return hi;
  return r;
}

}  // namespace

Instruction random_instance(std::size_t class_idx, std::mt19937_64& rng,
                            const SampleOptions& opts) {
  const ClassSpec& spec = instruction_classes().at(class_idx);
  Instruction in;
  in.mnemonic = spec.mnemonic;
  in.mode = spec.mode;

  const OperandSignature sig = info(spec.mnemonic).signature;
  switch (sig) {
    case OperandSignature::kRdRr: {
      if (spec.mnemonic == Mnemonic::kMovw) {
        in.rd = static_cast<std::uint8_t>(pick_reg(rng, 0, 15) * 2);
        in.rr = static_cast<std::uint8_t>(pick_reg(rng, 0, 15) * 2);
        if (opts.fix_rd) in.rd = static_cast<std::uint8_t>(*opts.fix_rd & 0x1E);
        if (opts.fix_rr) in.rr = static_cast<std::uint8_t>(*opts.fix_rr & 0x1E);
      } else if (spec.mnemonic == Mnemonic::kMuls) {
        in.rd = pick_reg(rng, 16, 31);
        in.rr = pick_reg(rng, 16, 31);
        if (opts.fix_rd) in.rd = clamp_reg(*opts.fix_rd, 16, 31);
        if (opts.fix_rr) in.rr = clamp_reg(*opts.fix_rr, 16, 31);
      } else {
        in.rd = opts.fix_rd ? *opts.fix_rd : pick_reg(rng, 0, 31);
        in.rr = opts.fix_rr ? *opts.fix_rr : pick_reg(rng, 0, 31);
      }
      break;
    }
    case OperandSignature::kRdK: {
      if (spec.mnemonic == Mnemonic::kAdiw || spec.mnemonic == Mnemonic::kSbiw) {
        static constexpr std::uint8_t kPairs[4] = {24, 26, 28, 30};
        in.rd = kPairs[pick_byte(rng, 3)];
        if (opts.fix_rd) {
          in.rd = kPairs[(*opts.fix_rd / 2) & 3];
        }
        in.k8 = pick_byte(rng, 63);
      } else {
        in.rd = opts.fix_rd ? clamp_reg(*opts.fix_rd, 16, 31) : pick_reg(rng, 16, 31);
        in.k8 = pick_byte(rng);
      }
      break;
    }
    case OperandSignature::kRd:
      in.rd = opts.fix_rd ? *opts.fix_rd : pick_reg(rng, 0, 31);
      if (spec.mnemonic == Mnemonic::kSer) in.rd = clamp_reg(in.rd, 16, 31);
      break;
    case OperandSignature::kRelK: {
      if (opts.max_branch_offset > 0) {
        std::uniform_int_distribution<int> d(0, opts.max_branch_offset);
        in.rel = static_cast<std::int16_t>(d(rng));
      } else {
        in.rel = 0;
      }
      break;
    }
    case OperandSignature::kAbsK:
      in.k22 = 0;  // patched by finalize_control_flow
      break;
    case OperandSignature::kRdMem: {
      if (spec.mode == AddrMode::kAbs) {
        in.rd = opts.fix_rd ? *opts.fix_rd : pick_reg(rng, 0, 31);
        std::uniform_int_distribution<int> d(0x0100, 0x08FF);
        in.k16 = static_cast<std::uint16_t>(d(rng));
      } else if (spec.mode == AddrMode::kR0) {
        // implicit R0, no operands
      } else {
        // Avoid the pointer register pair itself as the data register
        // (undefined behaviour on silicon for LD Rd,X+ with Rd in {26,27}).
        in.rd = opts.fix_rd ? *opts.fix_rd : pick_reg(rng, 0, 25);
        if (spec.mode == AddrMode::kYDisp || spec.mode == AddrMode::kZDisp) {
          // q = 0 is architecturally the plain LD class; displacement classes
          // draw 1..63.
          in.q = static_cast<std::uint8_t>(1 + pick_byte(rng, 62));
        }
      }
      break;
    }
    case OperandSignature::kRrMem: {
      if (spec.mode == AddrMode::kAbs) {
        in.rr = opts.fix_rr ? *opts.fix_rr : pick_reg(rng, 0, 31);
        std::uniform_int_distribution<int> d(0x0100, 0x08FF);
        in.k16 = static_cast<std::uint16_t>(d(rng));
      } else {
        in.rr = opts.fix_rr ? *opts.fix_rr : pick_reg(rng, 0, 25);
        if (spec.mode == AddrMode::kYDisp || spec.mode == AddrMode::kZDisp) {
          in.q = static_cast<std::uint8_t>(1 + pick_byte(rng, 62));
        }
      }
      break;
    }
    case OperandSignature::kRegBit:
      if (spec.mnemonic == Mnemonic::kSbrc || spec.mnemonic == Mnemonic::kSbrs) {
        in.rr = opts.fix_rr ? *opts.fix_rr : pick_reg(rng, 0, 31);
      } else {
        in.rd = opts.fix_rd ? *opts.fix_rd : pick_reg(rng, 0, 31);
      }
      in.bit = pick_byte(rng, 7);
      break;
    case OperandSignature::kIoBit:
      // Stay away from the trigger port (0x05) so profiling segments never
      // fight the trigger signal.
      do {
        in.io = pick_byte(rng, 31);
      } while (in.io == SegmentTemplate::kTriggerIo);
      in.bit = pick_byte(rng, 7);
      break;
    case OperandSignature::kSflagRel:
      in.sflag = pick_byte(rng, 7);
      in.rel = 0;
      break;
    case OperandSignature::kSflag:
      in.sflag = pick_byte(rng, 7);
      break;
    case OperandSignature::kRdIo:
      in.rd = opts.fix_rd ? *opts.fix_rd : pick_reg(rng, 0, 31);
      in.io = pick_byte(rng, 63);
      break;
    case OperandSignature::kRrIo:
      in.rr = opts.fix_rr ? *opts.fix_rr : pick_reg(rng, 0, 31);
      in.io = pick_byte(rng, 63);
      break;
    case OperandSignature::kNone:
      break;
  }
  return in;
}

Instruction random_instance_in_group(int g, std::mt19937_64& rng,
                                     const SampleOptions& opts) {
  const std::vector<std::size_t> classes = classes_in_group(g);
  if (classes.empty()) throw std::invalid_argument("random_instance_in_group: empty group");
  std::uniform_int_distribution<std::size_t> d(0, classes.size() - 1);
  return random_instance(classes[d(rng)], rng, opts);
}

Instruction random_any_instance(std::mt19937_64& rng, const SampleOptions& opts) {
  std::uniform_int_distribution<std::size_t> d(0, num_instruction_classes() - 1);
  return random_instance(d(rng), rng, opts);
}

bool is_linear_safe(const Instruction& in) {
  switch (canonicalize(in).mnemonic) {
    case Mnemonic::kCpse:
    case Mnemonic::kSbrc:
    case Mnemonic::kSbrs:
    case Mnemonic::kSbic:
    case Mnemonic::kSbis:
    case Mnemonic::kRjmp:
    case Mnemonic::kJmp:
    case Mnemonic::kIjmp:
    case Mnemonic::kBrbs:
    case Mnemonic::kBrbc:
    case Mnemonic::kRcall:
    case Mnemonic::kCall:
    case Mnemonic::kIcall:
    case Mnemonic::kRet:
    case Mnemonic::kReti:
    case Mnemonic::kSleep:
    case Mnemonic::kBreak:
      return false;
    default:
      return true;
  }
}

Program SegmentTemplate::sequence() const {
  Instruction sbi;
  sbi.mnemonic = Mnemonic::kSbi;
  sbi.io = kTriggerIo;
  sbi.bit = kTriggerBit;
  Instruction cbi;
  cbi.mnemonic = Mnemonic::kCbi;
  cbi.io = kTriggerIo;
  cbi.bit = kTriggerBit;
  Instruction nop;
  nop.mnemonic = Mnemonic::kNop;
  return {sbi, nop, before, target, after, nop, cbi};
}

Program SegmentTemplate::reference_sequence() {
  Instruction sbi;
  sbi.mnemonic = Mnemonic::kSbi;
  sbi.io = kTriggerIo;
  sbi.bit = kTriggerBit;
  Instruction cbi;
  cbi.mnemonic = Mnemonic::kCbi;
  cbi.io = kTriggerIo;
  cbi.bit = kTriggerBit;
  Instruction nop;
  nop.mnemonic = Mnemonic::kNop;
  return {sbi, nop, nop, nop, nop, nop, cbi};
}

SegmentTemplate SegmentTemplate::make(const Instruction& target, std::mt19937_64& rng) {
  SegmentTemplate seg;
  seg.target = target;
  // Neighbours come from the full profiled set (the paper draws them
  // uniformly) but must keep the window aligned, so control transfers are
  // re-drawn.
  do {
    seg.before = random_any_instance(rng);
  } while (!is_linear_safe(seg.before));
  do {
    seg.after = random_any_instance(rng);
  } while (!is_linear_safe(seg.after));
  return seg;
}

void finalize_control_flow(Program& program, std::uint16_t origin) {
  std::uint32_t addr = origin;
  for (Instruction& in : program) {
    const unsigned words = info(canonicalize(in).mnemonic).words;
    if (in.mnemonic == Mnemonic::kJmp || in.mnemonic == Mnemonic::kCall) {
      in.k22 = addr + words;  // land on the following instruction
    }
    addr += words;
  }
}

}  // namespace sidis::avr

// Program construction utilities: random instruction sampling for profiling,
// the Fig-4 measurement segment template, and control-flow finalization so
// generated programs execute linearly on the functional simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include "avr/grouping.hpp"
#include "avr/isa.hpp"

namespace sidis::avr {

/// A program is simply an instruction sequence; the encoder lays it out.
using Program = std::vector<Instruction>;

/// Options controlling random operand generation.
struct SampleOptions {
  std::optional<std::uint8_t> fix_rd;  ///< pin the destination register
  std::optional<std::uint8_t> fix_rr;  ///< pin the source register
  /// Branch/RJMP relative offsets are pinned to 0 ("branch to next
  /// instruction") so profiling programs stay linear; widen for codegen tests.
  std::int16_t max_branch_offset = 0;
};

/// Draws a random, encodable instance of class `class_idx` (operand registers,
/// immediates, displacements and I/O addresses uniformly random within their
/// legal ranges; architectural constraints such as r16..r31 for immediates or
/// even pairs for MOVW/ADIW are respected, and `fix_rd`/`fix_rr` are clamped
/// into the legal range for the class).
Instruction random_instance(std::size_t class_idx, std::mt19937_64& rng,
                            const SampleOptions& opts = {});

/// Random instance of a uniformly random class within group `g` (1..8).
Instruction random_instance_in_group(int g, std::mt19937_64& rng,
                                     const SampleOptions& opts = {});

/// Random instance of a uniformly random class out of all 112.
Instruction random_any_instance(std::mt19937_64& rng, const SampleOptions& opts = {});

/// The paper's Fig-4 measurement segment:
///   SBI, NOP, <random>, <target>, <random>, NOP, CBI
/// SBI/CBI toggle the trigger pin (PORTB5 by convention); the NOPs isolate
/// the window; the random neighbours exercise the 2-stage pipeline overlap.
struct SegmentTemplate {
  Instruction before;  ///< randomly selected leading neighbour
  Instruction target;  ///< the instruction being profiled
  Instruction after;   ///< randomly selected trailing neighbour

  /// I/O address and bit of the trigger pin (PORTB = 0x05, bit 5).
  static constexpr std::uint8_t kTriggerIo = 0x05;
  static constexpr std::uint8_t kTriggerBit = 5;

  /// Materializes the 7-instruction sequence.
  Program sequence() const;

  /// The reference sequence SBI, NOP x5, CBI whose trace is subtracted to
  /// remove trigger power and ambient noise (Sec. 5.1).
  static Program reference_sequence();

  /// Builds a segment for `target` with random neighbours (neighbours are
  /// drawn from all 112 classes but never skip/jump so the window stays
  /// aligned).
  static SegmentTemplate make(const Instruction& target, std::mt19937_64& rng);
};

/// Patches absolute control-flow targets (JMP/CALL) so each one lands on the
/// instruction that follows it when the program is placed at word address
/// `origin`.  Generated profiling programs call this once before execution.
void finalize_control_flow(Program& program, std::uint16_t origin = 0);

/// True when `in` can serve as a segment neighbour without breaking linear
/// execution (no skips, no jumps, no stack control transfer).
bool is_linear_safe(const Instruction& in);

}  // namespace sidis::avr

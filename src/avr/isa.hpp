// AVR (ATmega328P) instruction-set model.
//
// The paper profiles 112 instruction classes of the ATmega328P (Table 2 of
// the paper; AVR Instruction Set Manual [12]).  This header defines the
// instruction representation shared by the assembler, binary encoder/decoder,
// functional simulator and the power-trace substrate.  Addressing-mode
// variants of the load/store/program-memory instructions count as separate
// classes, exactly as the paper counts them (e.g. LD X, LD X+, LD -X are
// three classes).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sidis::avr {

/// Base mnemonics.  This includes the paper's 112 profiled classes plus the
/// residual control/arithmetic instructions (NOP, MUL, CALL/RET, stack and
/// I/O ops) needed to run realistic firmware in the simulator.
enum class Mnemonic : std::uint8_t {
  // -- group 1: two-register ALU (Rd, Rr)
  kAdd, kAdc, kSub, kSbc, kAnd, kOr, kEor, kCpse, kCp, kCpc, kMov, kMovw,
  // -- group 2: register-immediate ALU (Rd, K)
  kAdiw, kSubi, kSbci, kSbiw, kAndi, kOri, kSbr, kCbr, kCpi, kLdi,
  // -- group 3: one-register ALU (Rd)
  kCom, kNeg, kInc, kDec, kTst, kClr, kSer, kLsl, kLsr, kRol, kRor, kAsr, kSwap,
  // -- group 4: relative jumps & conditional branches (k)
  kRjmp, kJmp, kBreq, kBrne, kBrcs, kBrcc, kBrsh, kBrlo, kBrmi, kBrpl,
  kBrge, kBrlt, kBrhs, kBrhc, kBrts, kBrtc, kBrvs, kBrvc, kBrie, kBrid,
  // -- group 5: data loads/stores (modes distinguish classes)
  kLds, kLd, kLdd, kSts, kSt, kStd,
  // -- group 6: SREG flag set/clear (no operands)
  kSec, kClc, kSen, kCln, kSez, kClz, kSei, kSes, kCls, kSev, kClv,
  kSet, kClt, kSeh, kClh,
  // -- group 7: bit / bit-test and skip
  kSbrc, kSbrs, kSbic, kSbis, kBrbs, kBrbc, kSbi, kCbi, kBst, kBld,
  kBset, kBclr,
  // -- group 8: program-memory loads (modes distinguish classes)
  kLpm, kElpm,
  // -- residual instructions (outside the 112 profiled classes)
  kNop, kIn, kOut, kPush, kPop, kRet, kReti, kRcall, kCall, kIcall, kIjmp,
  kMul, kMuls, kSleep, kWdr, kBreak, kCli,
  kCount,
};

/// Data-memory / program-memory addressing modes for groups 5 and 8.
enum class AddrMode : std::uint8_t {
  kNone,      ///< not a memory instruction
  kAbs,       ///< LDS/STS absolute 16-bit address
  kX,         ///< (X)
  kXPostInc,  ///< (X+)
  kXPreDec,   ///< (-X)
  kY,         ///< (Y)
  kYPostInc,  ///< (Y+)
  kYPreDec,   ///< (-Y)
  kYDisp,     ///< (Y+q), LDD/STD only
  kZ,         ///< (Z)
  kZPostInc,  ///< (Z+)
  kZPreDec,   ///< (-Z)
  kZDisp,     ///< (Z+q), LDD/STD only
  kR0,        ///< implicit R0 destination (plain LPM/ELPM)
};

/// A decoded AVR instruction.  Fields not used by a mnemonic stay zero, so
/// value comparison gives structural equality.
struct Instruction {
  Mnemonic mnemonic = Mnemonic::kNop;
  AddrMode mode = AddrMode::kNone;
  std::uint8_t rd = 0;    ///< destination register index 0..31
  std::uint8_t rr = 0;    ///< source register index 0..31
  std::uint8_t k8 = 0;    ///< 8-bit immediate (group 2) / 6-bit for ADIW/SBIW
  std::uint16_t k16 = 0;  ///< absolute data address (LDS/STS)
  std::uint32_t k22 = 0;  ///< absolute word address (JMP/CALL)
  std::int16_t rel = 0;   ///< signed relative offset in words (branches, RJMP, RCALL)
  std::uint8_t bit = 0;   ///< bit index b (0..7)
  std::uint8_t sflag = 0; ///< SREG flag index s (0..7) for BRBS/BRBC/BSET/BCLR
  std::uint8_t q = 0;     ///< displacement 0..63 (LDD/STD)
  std::uint8_t io = 0;    ///< I/O address A (SBI/CBI 0..31, IN/OUT 0..63)

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// Operand signature categories used by Table 2's "Operands" row.
enum class OperandSignature : std::uint8_t {
  kNone,       ///< group 6 flag ops, NOP, RET...
  kRdRr,       ///< group 1
  kRdK,        ///< group 2
  kRd,         ///< group 3, POP, PUSH(rr)
  kRelK,       ///< group 4 branches / RJMP / RCALL
  kAbsK,       ///< JMP / CALL
  kRdMem,      ///< group 5 loads, group 8
  kRrMem,      ///< group 5 stores
  kRegBit,     ///< SBRC/SBRS/BST/BLD
  kIoBit,      ///< SBI/CBI/SBIC/SBIS
  kSflagRel,   ///< BRBS/BRBC
  kSflag,      ///< BSET/BCLR
  kRdIo,       ///< IN
  kRrIo,       ///< OUT
};

/// Static metadata for one mnemonic.
struct MnemonicInfo {
  std::string_view name;        ///< upper-case assembly mnemonic
  OperandSignature signature = OperandSignature::kNone;
  int group = 0;                ///< Table-2 group 1..8; 0 = residual
  unsigned base_cycles = 1;     ///< cycles when not taken / no wait states
  unsigned words = 1;           ///< encoding length in 16-bit words
  std::string_view description;
};

/// Metadata lookup; total function over the enum.
const MnemonicInfo& info(Mnemonic m);

/// Upper-case mnemonic text ("ADC", "BRNE", ...).
std::string_view name(Mnemonic m);

/// Parses an upper/lower-case mnemonic; nullopt when unknown.
std::optional<Mnemonic> mnemonic_from_name(std::string_view text);

/// Renders an instruction as assembly text, e.g. "LDD r12, Y+5".
std::string to_string(const Instruction& instr);

/// True for the two-word encodings (LDS/STS/JMP/CALL).
bool is_two_word(const Instruction& instr);

/// True when `m` is one of the 15 SREG set/clear shorthands of group 6;
/// `*s`/`*set` receive the flag index and polarity when non-null.
bool is_flag_shorthand(Mnemonic m, std::uint8_t* s = nullptr, bool* set = nullptr);

/// True when `m` is a conditional-branch shorthand (BREQ..BRID); `*s`/`*on_set`
/// receive the SREG flag index and the branch polarity when non-null.
bool is_branch_shorthand(Mnemonic m, std::uint8_t* s = nullptr, bool* on_set = nullptr);

/// SREG flag bit positions.
enum SregBit : std::uint8_t {
  kFlagC = 0, kFlagZ = 1, kFlagN = 2, kFlagV = 3,
  kFlagS = 4, kFlagH = 5, kFlagT = 6, kFlagI = 7,
};

}  // namespace sidis::avr

#include "avr/cpu.hpp"

#include <stdexcept>
#include <string>

namespace sidis::avr {

namespace {

constexpr std::uint8_t bit7(std::uint8_t v) { return (v >> 7) & 1; }
constexpr std::uint8_t bit3(std::uint8_t v) { return (v >> 3) & 1; }

}  // namespace

Cpu::Cpu() = default;

void Cpu::load_program(std::vector<std::uint16_t> words) {
  if (words.size() > kMaxFlashWords) {
    throw std::invalid_argument("Cpu::load_program: program exceeds flash size");
  }
  flash_.fill(0);
  std::copy(words.begin(), words.end(), flash_.begin());
  flash_words_ = words.size();
  reset();
}

void Cpu::load_program(std::span<const Instruction> program) {
  load_program(encode_program(program));
}

void Cpu::reset() {
  pc_ = 0;
  sp_ = kRamEnd;
  cycles_ = 0;
}

void Cpu::power_on_reset() {
  data_.fill(0);
  sreg_ = 0;
  reset();
}

void Cpu::set_flag(SregBit b, bool v) {
  if (v) {
    sreg_ = static_cast<std::uint8_t>(sreg_ | (1u << b));
  } else {
    sreg_ = static_cast<std::uint8_t>(sreg_ & ~(1u << b));
  }
}

std::uint8_t Cpu::read_data(std::uint16_t addr) const {
  return data_[addr % kDataSize];
}

void Cpu::write_data(std::uint16_t addr, std::uint8_t value) {
  data_[addr % kDataSize] = value;
}

std::uint8_t Cpu::read_io(std::uint8_t a) const {
  return data_[0x20u + (a & 0x3Fu)];
}

void Cpu::write_io(std::uint8_t a, std::uint8_t value) {
  data_[0x20u + (a & 0x3Fu)] = value;
}

void Cpu::push_byte(std::uint8_t v) {
  data_[sp_ % kDataSize] = v;
  --sp_;
}

std::uint8_t Cpu::pop_byte() {
  ++sp_;
  return data_[sp_ % kDataSize];
}

std::uint8_t Cpu::flash_byte(std::uint32_t byte_addr) const {
  const std::uint32_t w = (byte_addr / 2) % kMaxFlashWords;
  const std::uint16_t v = flash_[w];
  return static_cast<std::uint8_t>((byte_addr & 1) ? (v >> 8) : (v & 0xFF));
}

std::uint16_t Cpu::effective_address(const Instruction& in, ExecRecord& rec) {
  std::uint16_t addr = 0;
  switch (in.mode) {
    case AddrMode::kAbs:
      addr = in.k16;
      break;
    case AddrMode::kX: addr = x(); break;
    case AddrMode::kXPostInc: addr = x(); set_x(static_cast<std::uint16_t>(addr + 1)); break;
    case AddrMode::kXPreDec: set_x(static_cast<std::uint16_t>(x() - 1)); addr = x(); break;
    case AddrMode::kY: addr = y(); break;
    case AddrMode::kYPostInc: addr = y(); set_y(static_cast<std::uint16_t>(addr + 1)); break;
    case AddrMode::kYPreDec: set_y(static_cast<std::uint16_t>(y() - 1)); addr = y(); break;
    case AddrMode::kYDisp: addr = static_cast<std::uint16_t>(y() + in.q); break;
    case AddrMode::kZ:
    case AddrMode::kR0: addr = z(); break;
    case AddrMode::kZPostInc: addr = z(); set_z(static_cast<std::uint16_t>(addr + 1)); break;
    case AddrMode::kZPreDec: set_z(static_cast<std::uint16_t>(z() - 1)); addr = z(); break;
    case AddrMode::kZDisp: addr = static_cast<std::uint16_t>(z() + in.q); break;
    case AddrMode::kNone: break;
  }
  rec.mem_addr = addr;
  return addr;
}

ExecRecord Cpu::step() {
  if (halted()) throw std::runtime_error("Cpu::step: halted (PC past end of program)");
  const std::span<const std::uint16_t> code{flash_.data(), flash_words_};
  const auto decoded = decode(code, pc_);
  if (!decoded) {
    throw std::runtime_error("Cpu::step: undecodable opcode at PC " + std::to_string(pc_));
  }

  ExecRecord rec;
  rec.instr = decoded->instr;
  rec.opcode = flash_[pc_];
  rec.second_word = decoded->words == 2 ? flash_[pc_ + 1] : 0;
  rec.pc = pc_;
  rec.cycles = info(decoded->instr.mnemonic).base_cycles;
  rec.sreg_before = sreg_;

  pc_ = static_cast<std::uint16_t>(pc_ + decoded->words);
  execute(decoded->instr, rec);

  rec.sreg_after = sreg_;
  cycles_ += rec.cycles;
  return rec;
}

std::vector<ExecRecord> Cpu::run(std::size_t max_steps) {
  std::vector<ExecRecord> out;
  out.reserve(max_steps);
  while (!halted() && out.size() < max_steps) out.push_back(step());
  return out;
}

void Cpu::execute(const Instruction& in, ExecRecord& rec) {
  const auto rd = [&]() -> std::uint8_t { return data_[in.rd]; };
  const auto rr = [&]() -> std::uint8_t { return data_[in.rr]; };

  const auto set_zns = [&](std::uint8_t r) {
    set_flag(kFlagZ, r == 0);
    set_flag(kFlagN, bit7(r) != 0);
    set_flag(kFlagS, flag(kFlagN) != flag(kFlagV));
  };
  const auto add_flags = [&](std::uint8_t a, std::uint8_t b, std::uint8_t r) {
    set_flag(kFlagC, ((a & b) | (a & static_cast<std::uint8_t>(~r)) |
                      (b & static_cast<std::uint8_t>(~r))) >> 7 & 1);
    set_flag(kFlagH, ((a & b) | (a & static_cast<std::uint8_t>(~r)) |
                      (b & static_cast<std::uint8_t>(~r))) >> 3 & 1);
    set_flag(kFlagV, (((a & b & static_cast<std::uint8_t>(~r)) |
                       (static_cast<std::uint8_t>(~a) & static_cast<std::uint8_t>(~b) & r)) >> 7) & 1);
    set_zns(r);
  };
  const auto sub_flags = [&](std::uint8_t a, std::uint8_t b, std::uint8_t r, bool keep_z) {
    set_flag(kFlagC, ((static_cast<std::uint8_t>(~a) & b) | (b & r) |
                      (r & static_cast<std::uint8_t>(~a))) >> 7 & 1);
    set_flag(kFlagH, ((static_cast<std::uint8_t>(~a) & b) | (b & r) |
                      (r & static_cast<std::uint8_t>(~a))) >> 3 & 1);
    set_flag(kFlagV, (((a & static_cast<std::uint8_t>(~b) & static_cast<std::uint8_t>(~r)) |
                       (static_cast<std::uint8_t>(~a) & b & r)) >> 7) & 1);
    set_flag(kFlagN, bit7(r) != 0);
    if (keep_z) {
      set_flag(kFlagZ, (r == 0) && flag(kFlagZ));
    } else {
      set_flag(kFlagZ, r == 0);
    }
    set_flag(kFlagS, flag(kFlagN) != flag(kFlagV));
  };
  const auto logic_flags = [&](std::uint8_t r) {
    set_flag(kFlagV, false);
    set_zns(r);
  };
  const auto do_branch = [&](bool cond) {
    rec.branch_taken = cond;
    if (cond) {
      pc_ = static_cast<std::uint16_t>(static_cast<std::int32_t>(pc_) + in.rel);
      rec.cycles = 2;
    }
  };
  const auto do_skip = [&](bool cond) {
    rec.skip_taken = cond;
    if (!cond) return;
    const std::span<const std::uint16_t> code{flash_.data(), flash_words_};
    const auto next = decode(code, pc_);
    const unsigned skip_words = next ? next->words : 1;
    pc_ = static_cast<std::uint16_t>(pc_ + skip_words);
    rec.cycles += skip_words;  // 1 extra cycle per skipped word
  };

  rec.rd_before = data_[in.rd];
  rec.rr_value = data_[in.rr];

  switch (in.mnemonic) {
    case Mnemonic::kAdd: {
      const std::uint8_t a = rd(), b = rr();
      const auto r = static_cast<std::uint8_t>(a + b);
      data_[in.rd] = r;
      add_flags(a, b, r);
      break;
    }
    case Mnemonic::kAdc: {
      const std::uint8_t a = rd(), b = rr();
      const auto r = static_cast<std::uint8_t>(a + b + (flag(kFlagC) ? 1 : 0));
      data_[in.rd] = r;
      add_flags(a, b, r);
      break;
    }
    case Mnemonic::kSub: {
      const std::uint8_t a = rd(), b = rr();
      const auto r = static_cast<std::uint8_t>(a - b);
      data_[in.rd] = r;
      sub_flags(a, b, r, /*keep_z=*/false);
      break;
    }
    case Mnemonic::kSbc: {
      const std::uint8_t a = rd(), b = rr();
      const auto r = static_cast<std::uint8_t>(a - b - (flag(kFlagC) ? 1 : 0));
      data_[in.rd] = r;
      sub_flags(a, b, r, /*keep_z=*/true);
      break;
    }
    case Mnemonic::kAnd: {
      const auto r = static_cast<std::uint8_t>(rd() & rr());
      data_[in.rd] = r;
      logic_flags(r);
      break;
    }
    case Mnemonic::kOr: {
      const auto r = static_cast<std::uint8_t>(rd() | rr());
      data_[in.rd] = r;
      logic_flags(r);
      break;
    }
    case Mnemonic::kEor: {
      const auto r = static_cast<std::uint8_t>(rd() ^ rr());
      data_[in.rd] = r;
      logic_flags(r);
      break;
    }
    case Mnemonic::kCp: {
      const std::uint8_t a = rd(), b = rr();
      sub_flags(a, b, static_cast<std::uint8_t>(a - b), /*keep_z=*/false);
      break;
    }
    case Mnemonic::kCpc: {
      const std::uint8_t a = rd(), b = rr();
      const auto r = static_cast<std::uint8_t>(a - b - (flag(kFlagC) ? 1 : 0));
      sub_flags(a, b, r, /*keep_z=*/true);
      break;
    }
    case Mnemonic::kCpse:
      do_skip(rd() == rr());
      break;
    case Mnemonic::kMov:
      data_[in.rd] = rr();
      break;
    case Mnemonic::kMovw:
      data_[in.rd] = data_[in.rr];
      data_[in.rd + 1] = data_[in.rr + 1];
      break;
    case Mnemonic::kMul: {
      const std::uint16_t p = static_cast<std::uint16_t>(rd()) * rr();
      data_[0] = static_cast<std::uint8_t>(p & 0xFF);
      data_[1] = static_cast<std::uint8_t>(p >> 8);
      set_flag(kFlagC, (p >> 15) & 1);
      set_flag(kFlagZ, p == 0);
      break;
    }
    case Mnemonic::kMuls: {
      const auto a = static_cast<std::int8_t>(rd());
      const auto b = static_cast<std::int8_t>(rr());
      const auto p = static_cast<std::int16_t>(a * b);
      const auto up = static_cast<std::uint16_t>(p);
      data_[0] = static_cast<std::uint8_t>(up & 0xFF);
      data_[1] = static_cast<std::uint8_t>(up >> 8);
      set_flag(kFlagC, (up >> 15) & 1);
      set_flag(kFlagZ, up == 0);
      break;
    }

    case Mnemonic::kSubi: {
      const std::uint8_t a = rd();
      const auto r = static_cast<std::uint8_t>(a - in.k8);
      data_[in.rd] = r;
      rec.rr_value = in.k8;
      sub_flags(a, in.k8, r, /*keep_z=*/false);
      break;
    }
    case Mnemonic::kSbci: {
      const std::uint8_t a = rd();
      const auto r = static_cast<std::uint8_t>(a - in.k8 - (flag(kFlagC) ? 1 : 0));
      data_[in.rd] = r;
      rec.rr_value = in.k8;
      sub_flags(a, in.k8, r, /*keep_z=*/true);
      break;
    }
    case Mnemonic::kAndi: {
      const auto r = static_cast<std::uint8_t>(rd() & in.k8);
      data_[in.rd] = r;
      rec.rr_value = in.k8;
      logic_flags(r);
      break;
    }
    case Mnemonic::kOri: {
      const auto r = static_cast<std::uint8_t>(rd() | in.k8);
      data_[in.rd] = r;
      rec.rr_value = in.k8;
      logic_flags(r);
      break;
    }
    case Mnemonic::kCpi: {
      const std::uint8_t a = rd();
      rec.rr_value = in.k8;
      sub_flags(a, in.k8, static_cast<std::uint8_t>(a - in.k8), /*keep_z=*/false);
      break;
    }
    case Mnemonic::kLdi:
      data_[in.rd] = in.k8;
      rec.rr_value = in.k8;
      break;
    case Mnemonic::kAdiw: {
      const std::uint16_t a = word_reg(in.rd);
      const auto r = static_cast<std::uint16_t>(a + in.k8);
      set_word_reg(in.rd, r);
      rec.rr_value = in.k8;
      set_flag(kFlagC, ((~r >> 15) & (a >> 15)) & 1);
      set_flag(kFlagV, (((r >> 15) & (~a >> 15)) & 1) != 0);
      set_flag(kFlagN, ((r >> 15) & 1) != 0);
      set_flag(kFlagZ, r == 0);
      set_flag(kFlagS, flag(kFlagN) != flag(kFlagV));
      break;
    }
    case Mnemonic::kSbiw: {
      const std::uint16_t a = word_reg(in.rd);
      const auto r = static_cast<std::uint16_t>(a - in.k8);
      set_word_reg(in.rd, r);
      rec.rr_value = in.k8;
      set_flag(kFlagC, ((r >> 15) & (~a >> 15)) & 1);
      set_flag(kFlagV, (((~r >> 15) & (a >> 15)) & 1) != 0);
      set_flag(kFlagN, ((r >> 15) & 1) != 0);
      set_flag(kFlagZ, r == 0);
      set_flag(kFlagS, flag(kFlagN) != flag(kFlagV));
      break;
    }

    case Mnemonic::kCom: {
      const auto r = static_cast<std::uint8_t>(~rd());
      data_[in.rd] = r;
      set_flag(kFlagC, true);
      set_flag(kFlagV, false);
      set_zns(r);
      break;
    }
    case Mnemonic::kNeg: {
      const std::uint8_t a = rd();
      const auto r = static_cast<std::uint8_t>(0 - a);
      data_[in.rd] = r;
      set_flag(kFlagC, r != 0);
      set_flag(kFlagV, r == 0x80);
      set_flag(kFlagH, (bit3(r) | bit3(a)) != 0);
      set_zns(r);
      break;
    }
    case Mnemonic::kInc: {
      const auto r = static_cast<std::uint8_t>(rd() + 1);
      data_[in.rd] = r;
      set_flag(kFlagV, r == 0x80);
      set_zns(r);
      break;
    }
    case Mnemonic::kDec: {
      const auto r = static_cast<std::uint8_t>(rd() - 1);
      data_[in.rd] = r;
      set_flag(kFlagV, r == 0x7F);
      set_zns(r);
      break;
    }
    case Mnemonic::kLsr: {
      const std::uint8_t a = rd();
      const auto r = static_cast<std::uint8_t>(a >> 1);
      data_[in.rd] = r;
      set_flag(kFlagC, a & 1);
      set_flag(kFlagN, false);
      set_flag(kFlagV, flag(kFlagN) != flag(kFlagC));
      set_flag(kFlagZ, r == 0);
      set_flag(kFlagS, flag(kFlagN) != flag(kFlagV));
      break;
    }
    case Mnemonic::kRor: {
      const std::uint8_t a = rd();
      const auto r = static_cast<std::uint8_t>((a >> 1) | (flag(kFlagC) ? 0x80 : 0));
      data_[in.rd] = r;
      set_flag(kFlagC, a & 1);
      set_flag(kFlagN, bit7(r) != 0);
      set_flag(kFlagV, flag(kFlagN) != flag(kFlagC));
      set_flag(kFlagZ, r == 0);
      set_flag(kFlagS, flag(kFlagN) != flag(kFlagV));
      break;
    }
    case Mnemonic::kAsr: {
      const std::uint8_t a = rd();
      const auto r = static_cast<std::uint8_t>((a >> 1) | (a & 0x80));
      data_[in.rd] = r;
      set_flag(kFlagC, a & 1);
      set_flag(kFlagN, bit7(r) != 0);
      set_flag(kFlagV, flag(kFlagN) != flag(kFlagC));
      set_flag(kFlagZ, r == 0);
      set_flag(kFlagS, flag(kFlagN) != flag(kFlagV));
      break;
    }
    case Mnemonic::kSwap: {
      const std::uint8_t a = rd();
      data_[in.rd] = static_cast<std::uint8_t>((a << 4) | (a >> 4));
      break;
    }

    case Mnemonic::kRjmp:
      pc_ = static_cast<std::uint16_t>(static_cast<std::int32_t>(pc_) + in.rel);
      rec.branch_taken = true;
      break;
    case Mnemonic::kJmp:
      pc_ = static_cast<std::uint16_t>(in.k22);
      rec.branch_taken = true;
      break;
    case Mnemonic::kIjmp:
      pc_ = z();
      rec.branch_taken = true;
      break;
    case Mnemonic::kBrbs:
      do_branch(((sreg_ >> in.sflag) & 1) != 0);
      break;
    case Mnemonic::kBrbc:
      do_branch(((sreg_ >> in.sflag) & 1) == 0);
      break;

    case Mnemonic::kLds:
    case Mnemonic::kLd:
    case Mnemonic::kLdd: {
      const std::uint16_t addr = effective_address(in, rec);
      const std::uint8_t v = read_data(addr);
      data_[in.rd] = v;
      rec.mem_value = v;
      rec.mem_read = true;
      break;
    }
    case Mnemonic::kSts:
    case Mnemonic::kSt:
    case Mnemonic::kStd: {
      const std::uint16_t addr = effective_address(in, rec);
      const std::uint8_t v = rr();
      write_data(addr, v);
      rec.mem_value = v;
      rec.mem_write = true;
      break;
    }

    case Mnemonic::kLpm:
    case Mnemonic::kElpm: {
      const std::uint16_t addr = effective_address(in, rec);
      const std::uint8_t v = flash_byte(addr);
      data_[in.mode == AddrMode::kR0 ? 0 : in.rd] = v;
      rec.mem_value = v;
      rec.mem_read = true;
      break;
    }

    case Mnemonic::kBset:
      set_flag(static_cast<SregBit>(in.sflag), true);
      break;
    case Mnemonic::kBclr:
      set_flag(static_cast<SregBit>(in.sflag), false);
      break;
    case Mnemonic::kSbi: {
      const auto v = static_cast<std::uint8_t>(read_io(in.io) | (1u << in.bit));
      write_io(in.io, v);
      rec.mem_value = v;
      rec.mem_write = true;
      rec.mem_addr = static_cast<std::uint16_t>(0x20 + in.io);
      break;
    }
    case Mnemonic::kCbi: {
      const auto v = static_cast<std::uint8_t>(read_io(in.io) & ~(1u << in.bit));
      write_io(in.io, v);
      rec.mem_value = v;
      rec.mem_write = true;
      rec.mem_addr = static_cast<std::uint16_t>(0x20 + in.io);
      break;
    }
    case Mnemonic::kSbic:
      do_skip(((read_io(in.io) >> in.bit) & 1) == 0);
      break;
    case Mnemonic::kSbis:
      do_skip(((read_io(in.io) >> in.bit) & 1) != 0);
      break;
    case Mnemonic::kSbrc:
      do_skip(((rr() >> in.bit) & 1) == 0);
      break;
    case Mnemonic::kSbrs:
      do_skip(((rr() >> in.bit) & 1) != 0);
      break;
    case Mnemonic::kBst:
      set_flag(kFlagT, ((rd() >> in.bit) & 1) != 0);
      break;
    case Mnemonic::kBld: {
      std::uint8_t v = rd();
      if (flag(kFlagT)) {
        v = static_cast<std::uint8_t>(v | (1u << in.bit));
      } else {
        v = static_cast<std::uint8_t>(v & ~(1u << in.bit));
      }
      data_[in.rd] = v;
      break;
    }

    case Mnemonic::kIn:
      data_[in.rd] = read_io(in.io);
      rec.mem_read = true;
      rec.mem_value = data_[in.rd];
      rec.mem_addr = static_cast<std::uint16_t>(0x20 + in.io);
      break;
    case Mnemonic::kOut:
      write_io(in.io, rr());
      rec.mem_write = true;
      rec.mem_value = rr();
      rec.mem_addr = static_cast<std::uint16_t>(0x20 + in.io);
      break;
    case Mnemonic::kPush:
      push_byte(rd());
      rec.mem_write = true;
      rec.mem_value = rec.rd_before;
      rec.mem_addr = static_cast<std::uint16_t>(sp_ + 1);
      break;
    case Mnemonic::kPop: {
      const std::uint8_t v = pop_byte();
      data_[in.rd] = v;
      rec.mem_read = true;
      rec.mem_value = v;
      rec.mem_addr = sp_;
      break;
    }
    case Mnemonic::kRcall: {
      const std::uint16_t ret = pc_;
      push_byte(static_cast<std::uint8_t>(ret & 0xFF));
      push_byte(static_cast<std::uint8_t>(ret >> 8));
      pc_ = static_cast<std::uint16_t>(static_cast<std::int32_t>(pc_) + in.rel);
      rec.branch_taken = true;
      break;
    }
    case Mnemonic::kCall: {
      const std::uint16_t ret = pc_;
      push_byte(static_cast<std::uint8_t>(ret & 0xFF));
      push_byte(static_cast<std::uint8_t>(ret >> 8));
      pc_ = static_cast<std::uint16_t>(in.k22);
      rec.branch_taken = true;
      break;
    }
    case Mnemonic::kIcall: {
      const std::uint16_t ret = pc_;
      push_byte(static_cast<std::uint8_t>(ret & 0xFF));
      push_byte(static_cast<std::uint8_t>(ret >> 8));
      pc_ = z();
      rec.branch_taken = true;
      break;
    }
    case Mnemonic::kRet:
    case Mnemonic::kReti: {
      const std::uint8_t hi = pop_byte();
      const std::uint8_t lo = pop_byte();
      pc_ = static_cast<std::uint16_t>((hi << 8) | lo);
      if (in.mnemonic == Mnemonic::kReti) set_flag(kFlagI, true);
      rec.branch_taken = true;
      break;
    }

    case Mnemonic::kNop:
    case Mnemonic::kSleep:
    case Mnemonic::kWdr:
    case Mnemonic::kBreak:
      break;

    default:
      // Alias mnemonics never reach here: the decoder emits canonical forms.
      throw std::runtime_error("Cpu::execute: unexpected mnemonic " +
                               std::string(name(in.mnemonic)));
  }
  rec.rd_after = data_[in.rd];
}

}  // namespace sidis::avr

// Functional simulator for the ATmega328P core.
//
// Executes decoded instructions with cycle-accurate counts and full SREG
// semantics.  Every `step()` returns an ExecRecord describing exactly what
// the data path did -- fetched opcode, operand values, result, memory
// activity, branch outcome -- which is the ground truth the power-trace
// substrate turns into side-channel leakage and the disassembler tries to
// recover.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "avr/codec.hpp"
#include "avr/isa.hpp"

namespace sidis::avr {

/// Everything observable about one executed instruction.
struct ExecRecord {
  Instruction instr;              ///< canonical decoded instruction
  std::uint16_t opcode = 0;       ///< first encoded word (fetch-bus value)
  std::uint16_t second_word = 0;  ///< second word for LDS/STS/JMP/CALL
  std::uint16_t pc = 0;           ///< word address the instruction was fetched from
  unsigned cycles = 1;            ///< actual cycles consumed (incl. taken branches)
  std::uint8_t rd_before = 0;     ///< destination register before execution
  std::uint8_t rd_after = 0;      ///< destination register after execution
  std::uint8_t rr_value = 0;      ///< source register / immediate value consumed
  std::uint16_t mem_addr = 0;     ///< effective data/program address (if any)
  std::uint8_t mem_value = 0;     ///< byte moved over the memory bus
  bool mem_read = false;
  bool mem_write = false;
  bool branch_taken = false;
  bool skip_taken = false;        ///< CPSE/SBRC/SBRS/SBIC/SBIS skipped the next op
  std::uint8_t sreg_before = 0;
  std::uint8_t sreg_after = 0;
};

/// ATmega328P functional model: 32 registers, SREG, 2 KiB SRAM with the
/// standard data-space layout, up to 16 K words of flash.
class Cpu {
 public:
  static constexpr std::uint16_t kDataSize = 0x0900;  ///< regs + I/O + 2 KiB SRAM
  static constexpr std::uint16_t kSramStart = 0x0100;
  static constexpr std::uint16_t kRamEnd = kDataSize - 1;
  static constexpr std::size_t kMaxFlashWords = 16 * 1024;

  Cpu();

  /// Loads raw machine words; resets PC/SP/cycle counter (memory persists).
  void load_program(std::vector<std::uint16_t> words);

  /// Assembles and loads an instruction sequence.
  void load_program(std::span<const Instruction> program);

  /// PC := 0, SP := top of RAM, cycle counter := 0; registers/SRAM keep
  /// their values (matching a hardware reset without power cycling).
  void reset();

  /// Clears registers, SREG and data memory as well.
  void power_on_reset();

  /// Fetch-decode-execute one instruction.  Throws std::runtime_error when
  /// halted or when the word at PC does not decode.
  ExecRecord step();

  /// Runs until `halted()` or `max_steps`, collecting records.
  std::vector<ExecRecord> run(std::size_t max_steps);

  /// True once PC has run off the end of the loaded program.
  bool halted() const { return pc_ >= flash_words_; }

  // -- architectural state ---------------------------------------------------
  std::uint8_t reg(unsigned i) const { return data_.at(i); }
  void set_reg(unsigned i, std::uint8_t v) { data_.at(i) = v; }
  std::uint8_t sreg() const { return sreg_; }
  void set_sreg(std::uint8_t v) { sreg_ = v; }
  bool flag(SregBit b) const { return (sreg_ >> b) & 1; }
  void set_flag(SregBit b, bool v);
  std::uint16_t pc() const { return pc_; }
  void set_pc(std::uint16_t p) { pc_ = p; }
  std::uint16_t sp() const { return sp_; }
  void set_sp(std::uint16_t s) { sp_ = s; }
  std::uint64_t cycle_count() const { return cycles_; }

  /// Data-space access (addresses wrap into the 0x900-byte space; the first
  /// 32 bytes alias the register file, as on real silicon).
  std::uint8_t read_data(std::uint16_t addr) const;
  void write_data(std::uint16_t addr, std::uint8_t value);

  /// I/O-space access (0..63, offset 0x20 in data space).
  std::uint8_t read_io(std::uint8_t a) const;
  void write_io(std::uint8_t a, std::uint8_t value);

  /// 16-bit pointer registers.
  std::uint16_t x() const { return word_reg(26); }
  std::uint16_t y() const { return word_reg(28); }
  std::uint16_t z() const { return word_reg(30); }
  void set_x(std::uint16_t v) { set_word_reg(26, v); }
  void set_y(std::uint16_t v) { set_word_reg(28, v); }
  void set_z(std::uint16_t v) { set_word_reg(30, v); }

  std::span<const std::uint16_t> flash() const {
    return {flash_.data(), flash_words_};
  }

 private:
  std::uint16_t word_reg(unsigned lo) const {
    return static_cast<std::uint16_t>(data_[lo] | (data_[lo + 1] << 8));
  }
  void set_word_reg(unsigned lo, std::uint16_t v) {
    data_[lo] = static_cast<std::uint8_t>(v & 0xFF);
    data_[lo + 1] = static_cast<std::uint8_t>(v >> 8);
  }

  std::uint16_t effective_address(const Instruction& in, ExecRecord& rec);
  void push_byte(std::uint8_t v);
  std::uint8_t pop_byte();
  std::uint8_t flash_byte(std::uint32_t byte_addr) const;
  void execute(const Instruction& in, ExecRecord& rec);

  std::array<std::uint8_t, kDataSize> data_{};  ///< regs + I/O + SRAM
  std::uint8_t sreg_ = 0;
  std::uint16_t pc_ = 0;   ///< word address
  std::uint16_t sp_ = kRamEnd;
  std::uint64_t cycles_ = 0;
  std::array<std::uint16_t, kMaxFlashWords> flash_{};
  std::size_t flash_words_ = 0;
};

}  // namespace sidis::avr

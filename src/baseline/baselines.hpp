// Prior-art side-channel disassemblers re-implemented as baselines for the
// Table-1 comparison:
//
//  * Msgna et al. [18]: PCA on raw time-domain power traces followed by
//    k(=1)-nearest-neighbours;
//  * Eisenbarth et al. [9]: dimensionality reduction (PCA / Fisher LDA)
//    followed by multivariate-Gaussian templates with a maximum-likelihood
//    decision (their hidden-Markov control-flow smoothing is out of scope --
//    this repo evaluates on single instruction windows, where the HMM prior
//    has no sequence to exploit).
//
// Neither baseline uses the time-frequency domain, KL feature selection or
// covariate-shift adaptation; the Table-1 bench shows how much of the
// paper's margin comes from exactly those pieces.
#pragma once

#include <memory>

#include "features/pipeline.hpp"
#include "ml/classifier.hpp"
#include "stats/pca.hpp"
#include "stats/standardize.hpp"

namespace sidis::baseline {

struct BaselineConfig {
  std::size_t pca_components = 25;
  std::size_t knn_k = 1;
  /// Mean-centre each raw trace before PCA (both prior works align and
  /// normalize traces; this is the minimal equivalent).
  bool center_traces = true;
};

/// Shared substrate: raw trace -> (centering) -> PCA -> classifier.
class RawTraceClassifier {
 public:
  RawTraceClassifier() = default;

  static RawTraceClassifier train(const features::LabeledTraces& input,
                                  std::unique_ptr<ml::Classifier> classifier,
                                  BaselineConfig config);

  int predict(const std::vector<double>& samples) const;
  double accuracy(const features::LabeledTraces& test) const;

 private:
  linalg::Vector project(const std::vector<double>& samples) const;

  BaselineConfig config_;
  stats::Pca pca_;
  std::unique_ptr<ml::Classifier> classifier_;
};

/// Msgna et al.: PCA + 1-NN.
RawTraceClassifier train_msgna(const features::LabeledTraces& input,
                               BaselineConfig config = {});

/// Eisenbarth et al.: PCA + multivariate-Gaussian (QDA) templates.
RawTraceClassifier train_eisenbarth(const features::LabeledTraces& input,
                                    BaselineConfig config = {});

}  // namespace sidis::baseline

#include "baseline/baselines.hpp"

#include <stdexcept>

#include "dsp/signal.hpp"
#include "ml/discriminant.hpp"
#include "ml/knn.hpp"

namespace sidis::baseline {

RawTraceClassifier RawTraceClassifier::train(const features::LabeledTraces& input,
                                             std::unique_ptr<ml::Classifier> classifier,
                                             BaselineConfig config) {
  if (input.labels.size() != input.sets.size() || input.labels.size() < 2) {
    throw std::invalid_argument("RawTraceClassifier: need >= 2 labeled sets");
  }
  RawTraceClassifier out;
  out.config_ = config;

  std::vector<linalg::Vector> rows;
  std::vector<int> y;
  for (std::size_t c = 0; c < input.sets.size(); ++c) {
    for (const sim::Trace& t : *input.sets[c]) {
      std::vector<double> s = t.samples;
      if (config.center_traces) {
        const double m = dsp::mean(s);
        for (double& v : s) v -= m;
      }
      rows.emplace_back(s.begin(), s.end());
      y.push_back(input.labels[c]);
    }
  }
  const linalg::Matrix x = linalg::Matrix::from_rows(rows);
  out.pca_ = stats::Pca::fit(x, config.pca_components);

  ml::Dataset train;
  train.x = out.pca_.transform(x);
  train.y = std::move(y);
  out.classifier_ = std::move(classifier);
  out.classifier_->fit(train);
  return out;
}

linalg::Vector RawTraceClassifier::project(const std::vector<double>& samples) const {
  std::vector<double> s = samples;
  if (config_.center_traces) {
    const double m = dsp::mean(s);
    for (double& v : s) v -= m;
  }
  return pca_.transform(linalg::Vector(s.begin(), s.end()));
}

int RawTraceClassifier::predict(const std::vector<double>& samples) const {
  if (classifier_ == nullptr) throw std::runtime_error("RawTraceClassifier: not trained");
  return classifier_->predict(project(samples));
}

double RawTraceClassifier::accuracy(const features::LabeledTraces& test) const {
  std::size_t hits = 0;
  std::size_t total = 0;
  for (std::size_t c = 0; c < test.sets.size(); ++c) {
    for (const sim::Trace& t : *test.sets[c]) {
      hits += predict(t.samples) == test.labels[c] ? 1 : 0;
      ++total;
    }
  }
  if (total == 0) throw std::invalid_argument("RawTraceClassifier: empty test set");
  return static_cast<double>(hits) / static_cast<double>(total);
}

RawTraceClassifier train_msgna(const features::LabeledTraces& input,
                               BaselineConfig config) {
  return RawTraceClassifier::train(input, std::make_unique<ml::Knn>(config.knn_k),
                                   config);
}

RawTraceClassifier train_eisenbarth(const features::LabeledTraces& input,
                                    BaselineConfig config) {
  return RawTraceClassifier::train(input, std::make_unique<ml::Qda>(), config);
}

}  // namespace sidis::baseline

// Linear and quadratic discriminant analysis (the paper's fitcdiscr):
// Gaussian class-conditional models with shared (LDA) or per-class (QDA)
// covariance, maximum-a-posteriori decision rule with empirical priors.
#pragma once

#include <vector>

#include "ml/classifier.hpp"
#include "stats/gaussian.hpp"

namespace sidis::ml {

struct DiscriminantConfig {
  /// Diagonal ridge added to covariances; automatically escalated when a
  /// class covariance is singular (common when traces ~ features).
  double ridge = 1e-8;
  /// Blend each class covariance toward the pooled one:
  /// sigma_c' = (1-s) sigma_c + s sigma_pooled.  0 = pure QDA.
  double shrinkage = 0.0;
};

/// Quadratic discriminant analysis: per-class mean and covariance.
class Qda : public Classifier {
 public:
  explicit Qda(DiscriminantConfig config = {});

  void fit(const Dataset& train) override;
  int predict(const linalg::Vector& x) const override;
  ScoredPrediction predict_scored(const linalg::Vector& x) const override;

  /// Lane-vectorized override: per class, one blocked triangular solve sweeps
  /// the whole batch (each row of the Cholesky factor loads once per batch),
  /// then the argmax/runner-up scan runs per column.  Bit-identical to
  /// predict_scored per column.
  std::vector<ScoredPrediction> predict_scored_batch(
      const linalg::Matrix& x_cols) const override;

  std::string name() const override { return "QDA"; }

  /// Score surface for sequence decoding: log p(x|c) + log prior per class,
  /// so a log-softmax over class_scores IS the per-window log-posterior.
  linalg::Vector class_scores(const linalg::Vector& x) const override {
    return scores(x);
  }
  const std::vector<int>& score_labels() const override { return labels_; }
  linalg::Matrix class_scores_batch(const linalg::Matrix& x_cols) const override {
    return scores_batch(x_cols);
  }

  /// Per-class posterior log-likelihoods (unnormalized), label order matches
  /// `labels()`.
  linalg::Vector scores(const linalg::Vector& x) const;

  /// Batched scores: `x_cols` is (dim x lanes), columns as samples; returns
  /// (classes x lanes), column l bit-identical to scores(column l).
  linalg::Matrix scores_batch(const linalg::Matrix& x_cols) const;
  const std::vector<int>& labels() const { return labels_; }
  const std::vector<stats::MultivariateGaussian>& models() const { return models_; }
  const std::vector<double>& log_priors() const { return log_priors_; }

  /// Rebuilds a fitted model from stored parts (template persistence).
  static Qda from_parts(std::vector<int> labels,
                        std::vector<stats::MultivariateGaussian> models,
                        std::vector<double> log_priors);

 private:
  DiscriminantConfig config_;
  std::vector<int> labels_;
  std::vector<stats::MultivariateGaussian> models_;
  std::vector<double> log_priors_;
};

/// Linear discriminant analysis: class means with one pooled covariance.
class Lda : public Classifier {
 public:
  explicit Lda(DiscriminantConfig config = {});

  void fit(const Dataset& train) override;
  int predict(const linalg::Vector& x) const override;
  ScoredPrediction predict_scored(const linalg::Vector& x) const override;
  std::string name() const override { return "LDA"; }

  /// Discriminant scores share one pooled-covariance constant across classes,
  /// so the log-softmax posterior is exact up to that cancelled constant.
  linalg::Vector class_scores(const linalg::Vector& x) const override {
    return scores(x);
  }
  const std::vector<int>& score_labels() const override { return labels_; }

  linalg::Vector scores(const linalg::Vector& x) const;
  const std::vector<int>& labels() const { return labels_; }

 private:
  DiscriminantConfig config_;
  std::vector<int> labels_;
  std::vector<linalg::Vector> means_;
  stats::MultivariateGaussian pooled_;  ///< zero-mean pooled covariance model
  std::vector<double> log_priors_;
};

}  // namespace sidis::ml

#include "ml/classifier.hpp"

#include <limits>

namespace sidis::ml {

ScoredPrediction Classifier::predict_scored(const linalg::Vector& x) const {
  return {predict(x), std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::infinity()};
}

linalg::Vector Classifier::class_scores(const linalg::Vector&) const {
  return {};
}

const std::vector<int>& Classifier::score_labels() const {
  static const std::vector<int> kEmpty;
  return kEmpty;
}

linalg::Matrix Classifier::class_scores_batch(
    const linalg::Matrix& x_cols) const {
  linalg::Matrix out;
  linalg::Vector x(x_cols.rows());
  for (std::size_t l = 0; l < x_cols.cols(); ++l) {
    for (std::size_t i = 0; i < x_cols.rows(); ++i) x[i] = x_cols(i, l);
    const linalg::Vector s = class_scores(x);
    if (s.empty()) return {};  // hard-decision classifier: no score surface
    if (out.rows() == 0) out = linalg::Matrix(s.size(), x_cols.cols());
    for (std::size_t c = 0; c < s.size(); ++c) out(c, l) = s[c];
  }
  return out;
}

std::vector<ScoredPrediction> Classifier::predict_scored_batch(
    const linalg::Matrix& x_cols) const {
  std::vector<ScoredPrediction> out(x_cols.cols());
  linalg::Vector x(x_cols.rows());
  for (std::size_t l = 0; l < x_cols.cols(); ++l) {
    for (std::size_t i = 0; i < x_cols.rows(); ++i) x[i] = x_cols(i, l);
    out[l] = predict_scored(x);
  }
  return out;
}

ScoredPrediction scored_from_scores(const linalg::Vector& s,
                                    const std::vector<int>& labels) {
  ScoredPrediction out;
  std::size_t best = 0;
  double top = -std::numeric_limits<double>::infinity();
  double second = -std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < s.size(); ++c) {
    if (s[c] > top) {
      second = top;
      top = s[c];
      best = c;
    } else if (s[c] > second) {
      second = s[c];
    }
  }
  out.label = labels[best];
  out.top_score = top;
  out.margin = s.size() > 1 ? top - second
                            : std::numeric_limits<double>::infinity();
  return out;
}

std::vector<int> Classifier::predict_all(const linalg::Matrix& x) const {
  std::vector<int> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict(x.row_vector(r));
  return out;
}

double Classifier::accuracy(const Dataset& test) const {
  test.validate();
  if (test.size() == 0) return 0.0;
  std::size_t hits = 0;
  for (std::size_t r = 0; r < test.size(); ++r) {
    if (predict(test.x.row_vector(r)) == test.y[r]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(test.size());
}

}  // namespace sidis::ml

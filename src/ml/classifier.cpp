#include "ml/classifier.hpp"

namespace sidis::ml {

std::vector<int> Classifier::predict_all(const linalg::Matrix& x) const {
  std::vector<int> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict(x.row_vector(r));
  return out;
}

double Classifier::accuracy(const Dataset& test) const {
  test.validate();
  if (test.size() == 0) return 0.0;
  std::size_t hits = 0;
  for (std::size_t r = 0; r < test.size(); ++r) {
    if (predict(test.x.row_vector(r)) == test.y[r]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(test.size());
}

}  // namespace sidis::ml

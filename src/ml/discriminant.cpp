#include "ml/discriminant.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sidis::ml {

namespace {

/// Per-class moments plus the pooled covariance in one pass.
struct ClassMoments {
  std::vector<int> labels;
  std::vector<linalg::Vector> means;
  std::vector<linalg::Matrix> covs;
  std::vector<double> log_priors;
  linalg::Matrix pooled;
};

ClassMoments compute_moments(const Dataset& train) {
  train.validate();
  ClassMoments m;
  m.labels = train.labels();
  if (m.labels.size() < 2) {
    throw std::invalid_argument("discriminant fit: need at least 2 classes");
  }
  const std::size_t p = train.dim();
  m.pooled = linalg::Matrix(p, p, 0.0);
  double pooled_weight = 0.0;
  for (int label : m.labels) {
    const linalg::Matrix rows = train.rows_with_label(label);
    if (rows.rows() < 2) {
      throw std::invalid_argument("discriminant fit: class needs >= 2 samples");
    }
    m.means.push_back(linalg::row_mean(rows));
    m.covs.push_back(linalg::row_covariance(rows));
    m.log_priors.push_back(std::log(static_cast<double>(rows.rows()) /
                                    static_cast<double>(train.size())));
    const double w = static_cast<double>(rows.rows() - 1);
    m.pooled += m.covs.back() * w;
    pooled_weight += w;
  }
  m.pooled *= 1.0 / pooled_weight;
  return m;
}

}  // namespace

Qda::Qda(DiscriminantConfig config) : config_(config) {}

void Qda::fit(const Dataset& train) {
  const ClassMoments m = compute_moments(train);
  labels_ = m.labels;
  log_priors_ = m.log_priors;
  models_.clear();
  for (std::size_t c = 0; c < labels_.size(); ++c) {
    linalg::Matrix cov = m.covs[c];
    if (config_.shrinkage > 0.0) {
      cov = cov * (1.0 - config_.shrinkage) + m.pooled * config_.shrinkage;
    }
    models_.push_back(
        stats::MultivariateGaussian::from_moments(m.means[c], cov, config_.ridge));
  }
}

Qda Qda::from_parts(std::vector<int> labels,
                    std::vector<stats::MultivariateGaussian> models,
                    std::vector<double> log_priors) {
  if (labels.size() != models.size() || labels.size() != log_priors.size() ||
      labels.size() < 2) {
    throw std::invalid_argument("Qda::from_parts: inconsistent parts");
  }
  Qda qda;
  qda.labels_ = std::move(labels);
  qda.models_ = std::move(models);
  qda.log_priors_ = std::move(log_priors);
  return qda;
}

linalg::Vector Qda::scores(const linalg::Vector& x) const {
  if (models_.empty()) throw std::runtime_error("Qda: not fitted");
  linalg::Vector s(models_.size());
  for (std::size_t c = 0; c < models_.size(); ++c) {
    s[c] = models_[c].log_pdf(x) + log_priors_[c];
  }
  return s;
}

linalg::Matrix Qda::scores_batch(const linalg::Matrix& x_cols) const {
  if (models_.empty()) throw std::runtime_error("Qda: not fitted");
  const std::size_t lanes = x_cols.cols();
  linalg::Matrix s(models_.size(), lanes);
  linalg::Matrix centered, solve;  // grow-once scratch shared across classes
  for (std::size_t c = 0; c < models_.size(); ++c) {
    double* __restrict srow = s.row(c).data();
    models_[c].log_pdf_batch(x_cols, {srow, lanes}, centered, solve);
    const double lp = log_priors_[c];
    for (std::size_t l = 0; l < lanes; ++l) srow[l] += lp;
  }
  return s;
}

std::vector<ScoredPrediction> Qda::predict_scored_batch(
    const linalg::Matrix& x_cols) const {
  const linalg::Matrix s = scores_batch(x_cols);
  std::vector<ScoredPrediction> out(x_cols.cols());
  linalg::Vector col(s.rows());
  for (std::size_t l = 0; l < x_cols.cols(); ++l) {
    for (std::size_t c = 0; c < s.rows(); ++c) col[c] = s(c, l);
    out[l] = scored_from_scores(col, labels_);
  }
  return out;
}

int Qda::predict(const linalg::Vector& x) const {
  const linalg::Vector s = scores(x);
  const auto best = std::max_element(s.begin(), s.end());
  return labels_[static_cast<std::size_t>(best - s.begin())];
}

ScoredPrediction Qda::predict_scored(const linalg::Vector& x) const {
  return scored_from_scores(scores(x), labels_);
}

Lda::Lda(DiscriminantConfig config) : config_(config) {}

void Lda::fit(const Dataset& train) {
  const ClassMoments m = compute_moments(train);
  labels_ = m.labels;
  log_priors_ = m.log_priors;
  means_ = m.means;
  pooled_ = stats::MultivariateGaussian::from_moments(
      linalg::Vector(train.dim(), 0.0), m.pooled, config_.ridge);
}

linalg::Vector Lda::scores(const linalg::Vector& x) const {
  if (means_.empty()) throw std::runtime_error("Lda: not fitted");
  linalg::Vector s(means_.size());
  for (std::size_t c = 0; c < means_.size(); ++c) {
    // Shared covariance: the quadratic term is common, so the discriminant
    // reduces to -1/2 Mahalanobis distance to the class mean + prior.
    s[c] = -0.5 * pooled_.cholesky().mahalanobis_squared(linalg::sub(x, means_[c])) +
           log_priors_[c];
  }
  return s;
}

int Lda::predict(const linalg::Vector& x) const {
  const linalg::Vector s = scores(x);
  const auto best = std::max_element(s.begin(), s.end());
  return labels_[static_cast<std::size_t>(best - s.begin())];
}

ScoredPrediction Lda::predict_scored(const linalg::Vector& x) const {
  return scored_from_scores(scores(x), labels_);
}

}  // namespace sidis::ml

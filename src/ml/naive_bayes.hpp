// Gaussian naive Bayes (the paper's fitcnb): per-class, per-feature
// univariate Gaussians with an independence assumption.
#pragma once

#include <vector>

#include "ml/classifier.hpp"
#include "stats/gaussian.hpp"

namespace sidis::ml {

class GaussianNaiveBayes : public Classifier {
 public:
  /// `min_var` floors feature variances so constant features stay usable.
  explicit GaussianNaiveBayes(double min_var = 1e-9);

  void fit(const Dataset& train) override;
  int predict(const linalg::Vector& x) const override;
  ScoredPrediction predict_scored(const linalg::Vector& x) const override;
  std::string name() const override { return "NaiveBayes"; }

  linalg::Vector scores(const linalg::Vector& x) const;
  const std::vector<int>& labels() const { return labels_; }

 private:
  double min_var_;
  std::vector<int> labels_;
  std::vector<std::vector<stats::Gaussian1D>> feature_models_;  ///< [class][feature]
  std::vector<double> log_priors_;
};

}  // namespace sidis::ml

// Support vector machine with RBF / linear kernel, trained by SMO.
//
// Stands in for the paper's LIBSVM usage (Sec. 5.2: "SVM classifier with RBF
// kernel ... best C and gamma selected by grid search with 3-fold
// cross-validation").  Multiclass classification uses one-vs-one voting,
// matching both LIBSVM's internal strategy and the paper's Sec. 2.1
// complexity analysis.
#pragma once

#include <memory>
#include <vector>

#include "ml/classifier.hpp"

namespace sidis::ml {

enum class KernelType { kRbf, kLinear };

struct SvmConfig {
  KernelType kernel = KernelType::kRbf;
  double c = 10.0;        ///< penalty parameter C
  /// RBF gamma = 1/sigma^2.  <= 0 selects LIBSVM's default of 1/num_features
  /// at fit time -- without this scaling a fixed gamma starves the kernel as
  /// the PCA component count grows.
  double gamma = 0.0;
  double tol = 1e-3;      ///< KKT violation tolerance
  double eps = 1e-8;      ///< minimum alpha step
  int max_passes = 5;     ///< SMO passes without change before stopping
  std::size_t max_iter = 200000;  ///< hard iteration cap
};

/// Binary soft-margin SVM; labels are +1 / -1 internally.
class BinarySvm {
 public:
  explicit BinarySvm(SvmConfig config = {});

  /// `y[i]` must be +1 or -1.
  void fit(const linalg::Matrix& x, const std::vector<int>& y,
           std::uint64_t seed = 0x5337);

  /// Signed decision value; >= 0 classifies as +1.
  double decision(const linalg::Vector& x) const;
  int predict(const linalg::Vector& x) const { return decision(x) >= 0.0 ? 1 : -1; }

  std::size_t num_support_vectors() const { return support_.rows(); }
  const SvmConfig& config() const { return config_; }

 private:
  double kernel(const linalg::Vector& a, const linalg::Vector& b) const;

  SvmConfig config_;
  double effective_gamma_ = 1.0;
  linalg::Matrix support_;          ///< support vectors (rows)
  std::vector<double> coeffs_;      ///< alpha_i * y_i per support vector
  double bias_ = 0.0;
};

/// Multiclass SVM via one-vs-one voting over binary machines.
class Svm : public Classifier {
 public:
  explicit Svm(SvmConfig config = {});

  void fit(const Dataset& train) override;
  int predict(const linalg::Vector& x) const override;
  /// Scores are one-vs-one votes: the margin is the paper's majority-vote
  /// margin (Eq. (3) winner vs runner-up vote gap).
  ScoredPrediction predict_scored(const linalg::Vector& x) const override;
  std::string name() const override {
    return config_.kernel == KernelType::kRbf ? "SVM-RBF" : "SVM-linear";
  }

  const std::vector<int>& labels() const { return labels_; }
  std::size_t num_machines() const { return machines_.size(); }

 private:
  SvmConfig config_;
  std::vector<int> labels_;
  struct Pair {
    std::size_t a = 0;  ///< index into labels_ voted on +1
    std::size_t b = 0;  ///< index voted on -1
    BinarySvm machine;
  };
  std::vector<Pair> machines_;
};

}  // namespace sidis::ml

#include "ml/naive_bayes.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sidis::ml {

GaussianNaiveBayes::GaussianNaiveBayes(double min_var) : min_var_(min_var) {}

void GaussianNaiveBayes::fit(const Dataset& train) {
  train.validate();
  labels_ = train.labels();
  if (labels_.size() < 2) {
    throw std::invalid_argument("GaussianNaiveBayes: need at least 2 classes");
  }
  feature_models_.clear();
  log_priors_.clear();
  for (int label : labels_) {
    const linalg::Matrix rows = train.rows_with_label(label);
    if (rows.rows() < 2) {
      throw std::invalid_argument("GaussianNaiveBayes: class needs >= 2 samples");
    }
    std::vector<stats::Gaussian1D> feats(train.dim());
    for (std::size_t f = 0; f < train.dim(); ++f) {
      const linalg::Vector col = rows.col_vector(f);
      feats[f] = stats::Gaussian1D::fit({col.data(), col.size()}, min_var_);
    }
    feature_models_.push_back(std::move(feats));
    log_priors_.push_back(std::log(static_cast<double>(rows.rows()) /
                                   static_cast<double>(train.size())));
  }
}

linalg::Vector GaussianNaiveBayes::scores(const linalg::Vector& x) const {
  if (feature_models_.empty()) throw std::runtime_error("GaussianNaiveBayes: not fitted");
  if (x.size() != feature_models_.front().size()) {
    throw std::invalid_argument("GaussianNaiveBayes: dim mismatch");
  }
  linalg::Vector s(labels_.size());
  for (std::size_t c = 0; c < labels_.size(); ++c) {
    double acc = log_priors_[c];
    for (std::size_t f = 0; f < x.size(); ++f) {
      acc += feature_models_[c][f].log_pdf(x[f]);
    }
    s[c] = acc;
  }
  return s;
}

int GaussianNaiveBayes::predict(const linalg::Vector& x) const {
  const linalg::Vector s = scores(x);
  const auto best = std::max_element(s.begin(), s.end());
  return labels_[static_cast<std::size_t>(best - s.begin())];
}

ScoredPrediction GaussianNaiveBayes::predict_scored(const linalg::Vector& x) const {
  return scored_from_scores(scores(x), labels_);
}

}  // namespace sidis::ml

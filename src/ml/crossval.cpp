#include "ml/crossval.hpp"

#include <stdexcept>

namespace sidis::ml {

double cross_val_accuracy(const ClassifierBuilder& builder, const Dataset& data,
                          std::size_t k, std::mt19937_64& rng) {
  const std::vector<Dataset> folds = k_folds(data, k, rng);
  double acc = 0.0;
  for (std::size_t held = 0; held < folds.size(); ++held) {
    Dataset train;
    for (std::size_t f = 0; f < folds.size(); ++f) {
      if (f != held) train = Dataset::concat(train, folds[f]);
    }
    auto clf = builder();
    clf->fit(train);
    acc += clf->accuracy(folds[held]);
  }
  return acc / static_cast<double>(folds.size());
}

GridSearchResult svm_grid_search(const Dataset& data, std::mt19937_64& rng,
                                 std::vector<double> c_grid,
                                 std::vector<double> gamma_grid, std::size_t folds) {
  if (c_grid.empty()) c_grid = {0.1, 1.0, 10.0, 100.0};
  if (gamma_grid.empty()) gamma_grid = {0.01, 0.1, 0.5, 2.0};

  GridSearchResult result;
  result.best_accuracy = -1.0;
  for (double c : c_grid) {
    for (double gamma : gamma_grid) {
      SvmConfig cfg;
      cfg.c = c;
      cfg.gamma = gamma;
      const double acc = cross_val_accuracy(
          [&cfg] { return std::make_unique<Svm>(cfg); }, data, folds, rng);
      result.all.emplace_back(cfg, acc);
      if (acc > result.best_accuracy) {
        result.best_accuracy = acc;
        result.best = cfg;
      }
    }
  }
  return result;
}

}  // namespace sidis::ml

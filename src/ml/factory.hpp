// Named construction of the classifier family the paper sweeps.
#pragma once

#include <memory>
#include <string>

#include "ml/classifier.hpp"
#include "ml/discriminant.hpp"
#include "ml/knn.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/svm.hpp"

namespace sidis::ml {

enum class ClassifierKind { kLda, kQda, kNaiveBayes, kSvmRbf, kSvmLinear, kKnn };

/// Human-readable name for tables ("LDA", "QDA", "SVM", "Naive Bayes", "kNN").
std::string to_string(ClassifierKind kind);

struct FactoryConfig {
  DiscriminantConfig discriminant;
  SvmConfig svm;
  std::size_t knn_k = 1;
};

/// Builds a fresh, unfitted classifier of the requested kind.
std::unique_ptr<Classifier> make_classifier(ClassifierKind kind,
                                            const FactoryConfig& config = {});

/// The four classifiers of the paper's Fig. 5 / Fig. 6 sweeps.
inline constexpr ClassifierKind kPaperSweep[] = {
    ClassifierKind::kLda, ClassifierKind::kQda, ClassifierKind::kSvmRbf,
    ClassifierKind::kNaiveBayes};

}  // namespace sidis::ml

#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace sidis::ml {

Knn::Knn(std::size_t k) : k_(k) {
  if (k_ == 0) throw std::invalid_argument("Knn: k must be >= 1");
}

void Knn::fit(const Dataset& train) {
  train.validate();
  if (train.size() < k_) throw std::invalid_argument("Knn: fewer samples than k");
  train_ = train;
}

int Knn::predict(const linalg::Vector& x) const { return predict_scored(x).label; }

ScoredPrediction Knn::predict_scored(const linalg::Vector& x) const {
  if (train_.size() == 0) throw std::runtime_error("Knn: not fitted");
  if (x.size() != train_.dim()) throw std::invalid_argument("Knn: dim mismatch");

  // Partial selection of the k smallest distances.
  std::vector<std::pair<double, int>> dist;
  dist.reserve(train_.size());
  for (std::size_t r = 0; r < train_.size(); ++r) {
    dist.emplace_back(linalg::squared_distance(x, train_.x.row_vector(r)), train_.y[r]);
  }
  std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k_),
                    dist.end());

  std::map<int, std::size_t> votes;
  for (std::size_t i = 0; i < k_; ++i) ++votes[dist[i].second];
  // Majority vote; ties broken by the nearest member of the tied labels.
  std::size_t best_count = 0;
  std::size_t second_count = 0;
  for (const auto& [label, count] : votes) {
    if (count > best_count) {
      second_count = best_count;
      best_count = count;
    } else if (count > second_count) {
      second_count = count;
    }
  }
  ScoredPrediction out;
  out.label = dist.front().second;
  for (std::size_t i = 0; i < k_; ++i) {
    if (votes[dist[i].second] == best_count) {
      out.label = dist[i].second;
      // Off-distribution gate: distance to the winning label's nearest
      // neighbour, negated so that larger = more confident.
      out.top_score = -std::sqrt(dist[i].first);
      break;
    }
  }
  out.margin = static_cast<double>(best_count) - static_cast<double>(second_count);
  return out;
}

std::string Knn::name() const { return "kNN(k=" + std::to_string(k_) + ")"; }

}  // namespace sidis::ml

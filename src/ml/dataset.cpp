#include "ml/dataset.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace sidis::ml {

void Dataset::validate() const {
  if (x.rows() != y.size()) {
    throw std::invalid_argument("Dataset: row/label count mismatch");
  }
}

Dataset Dataset::concat(const Dataset& a, const Dataset& b) {
  if (a.size() == 0) return b;
  if (b.size() == 0) return a;
  if (a.dim() != b.dim()) throw std::invalid_argument("Dataset::concat: dim mismatch");
  Dataset out;
  out.x = linalg::Matrix(a.size() + b.size(), a.dim());
  for (std::size_t r = 0; r < a.size(); ++r) {
    std::copy(a.x.row(r).begin(), a.x.row(r).end(), out.x.row(r).begin());
  }
  for (std::size_t r = 0; r < b.size(); ++r) {
    std::copy(b.x.row(r).begin(), b.x.row(r).end(), out.x.row(a.size() + r).begin());
  }
  out.y = a.y;
  out.y.insert(out.y.end(), b.y.begin(), b.y.end());
  return out;
}

linalg::Matrix Dataset::rows_with_label(int label) const {
  std::vector<linalg::Vector> rows;
  for (std::size_t r = 0; r < size(); ++r) {
    if (y[r] == label) rows.push_back(x.row_vector(r));
  }
  return linalg::Matrix::from_rows(rows);
}

std::vector<int> Dataset::labels() const {
  std::vector<int> out = y;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Dataset Dataset::truncated(std::size_t k) const {
  k = std::min(k, dim());
  Dataset out;
  out.y = y;
  out.x = linalg::Matrix(size(), k);
  for (std::size_t r = 0; r < size(); ++r) {
    auto src = x.row(r);
    std::copy(src.begin(), src.begin() + static_cast<std::ptrdiff_t>(k),
              out.x.row(r).begin());
  }
  return out;
}

void shuffle(Dataset& d, std::mt19937_64& rng) {
  d.validate();
  for (std::size_t i = d.size(); i > 1; --i) {
    std::uniform_int_distribution<std::size_t> pick(0, i - 1);
    const std::size_t j = pick(rng);
    if (j == i - 1) continue;
    for (std::size_t c = 0; c < d.dim(); ++c) std::swap(d.x(i - 1, c), d.x(j, c));
    std::swap(d.y[i - 1], d.y[j]);
  }
}

Split stratified_split(const Dataset& d, double train_fraction, std::mt19937_64& rng) {
  d.validate();
  if (!(train_fraction > 0.0) || !(train_fraction < 1.0)) {
    throw std::invalid_argument("stratified_split: fraction must be in (0,1)");
  }
  std::map<int, std::vector<std::size_t>> by_label;
  for (std::size_t i = 0; i < d.size(); ++i) by_label[d.y[i]].push_back(i);

  std::vector<std::size_t> train_idx, test_idx;
  for (auto& [label, idx] : by_label) {
    std::shuffle(idx.begin(), idx.end(), rng);
    const auto n_train = static_cast<std::size_t>(
        train_fraction * static_cast<double>(idx.size()) + 0.5);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      (i < n_train ? train_idx : test_idx).push_back(idx[i]);
    }
  }

  const auto build = [&](const std::vector<std::size_t>& idx) {
    Dataset out;
    out.x = linalg::Matrix(idx.size(), d.dim());
    out.y.resize(idx.size());
    for (std::size_t i = 0; i < idx.size(); ++i) {
      std::copy(d.x.row(idx[i]).begin(), d.x.row(idx[i]).end(), out.x.row(i).begin());
      out.y[i] = d.y[idx[i]];
    }
    return out;
  };
  return {build(train_idx), build(test_idx)};
}

std::vector<Dataset> k_folds(const Dataset& d, std::size_t k, std::mt19937_64& rng) {
  d.validate();
  if (k < 2 || k > d.size()) throw std::invalid_argument("k_folds: bad k");
  Dataset shuffled = d;
  shuffle(shuffled, rng);
  std::vector<Dataset> folds(k);
  const std::size_t base = shuffled.size() / k;
  const std::size_t extra = shuffled.size() % k;
  std::size_t row = 0;
  for (std::size_t f = 0; f < k; ++f) {
    const std::size_t n = base + (f < extra ? 1 : 0);
    folds[f].x = linalg::Matrix(n, shuffled.dim());
    folds[f].y.resize(n);
    for (std::size_t i = 0; i < n; ++i, ++row) {
      std::copy(shuffled.x.row(row).begin(), shuffled.x.row(row).end(),
                folds[f].x.row(i).begin());
      folds[f].y[i] = shuffled.y[row];
    }
  }
  return folds;
}

}  // namespace sidis::ml

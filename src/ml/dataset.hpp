// Labeled datasets for the classifier layer.
#pragma once

#include <cstddef>
#include <random>
#include <vector>

#include "linalg/matrix.hpp"

namespace sidis::ml {

/// Rows of `x` are samples; `y[i]` is the integer class label of row i.
/// Labels are arbitrary ints (classifiers discover the label set on fit).
struct Dataset {
  linalg::Matrix x;
  std::vector<int> y;

  std::size_t size() const { return x.rows(); }
  std::size_t dim() const { return x.cols(); }

  /// Throws std::invalid_argument when rows and labels disagree.
  void validate() const;

  /// Concatenates two datasets (dims must match).
  static Dataset concat(const Dataset& a, const Dataset& b);

  /// Rows whose label equals `label`.
  linalg::Matrix rows_with_label(int label) const;

  /// Sorted unique labels.
  std::vector<int> labels() const;

  /// Keeps only the first k columns of every sample (PCA sweeps use this to
  /// re-evaluate with fewer components without re-projecting).
  Dataset truncated(std::size_t k) const;
};

/// In-place Fisher-Yates shuffle of sample order.
void shuffle(Dataset& d, std::mt19937_64& rng);

/// Splits into train/test with `train_fraction` of each class in train
/// (stratified, preserving class balance).
struct Split {
  Dataset train;
  Dataset test;
};
Split stratified_split(const Dataset& d, double train_fraction, std::mt19937_64& rng);

/// K contiguous folds after an internal shuffle (for cross-validation).
std::vector<Dataset> k_folds(const Dataset& d, std::size_t k, std::mt19937_64& rng);

}  // namespace sidis::ml

#include "ml/metrics.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace sidis::ml {

double accuracy(const std::vector<int>& truth, const std::vector<int>& predicted) {
  if (truth.size() != predicted.size() || truth.empty()) {
    throw std::invalid_argument("accuracy: size mismatch or empty");
  }
  std::size_t hits = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == predicted[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

ConfusionMatrix::ConfusionMatrix(std::vector<int> labels)
    : labels_(std::move(labels)), counts_(labels_.size() * labels_.size(), 0) {
  if (labels_.empty()) throw std::invalid_argument("ConfusionMatrix: no labels");
}

std::size_t ConfusionMatrix::index_of(int label) const {
  const auto it = std::find(labels_.begin(), labels_.end(), label);
  if (it == labels_.end()) throw std::invalid_argument("ConfusionMatrix: unknown label");
  return static_cast<std::size_t>(it - labels_.begin());
}

void ConfusionMatrix::add(int truth, int predicted) {
  ++counts_[index_of(truth) * labels_.size() + index_of(predicted)];
  ++total_;
}

void ConfusionMatrix::add_all(const std::vector<int>& truth,
                              const std::vector<int>& predicted) {
  if (truth.size() != predicted.size()) {
    throw std::invalid_argument("ConfusionMatrix::add_all: size mismatch");
  }
  for (std::size_t i = 0; i < truth.size(); ++i) add(truth[i], predicted[i]);
}

std::size_t ConfusionMatrix::count(int truth, int predicted) const {
  return counts_[index_of(truth) * labels_.size() + index_of(predicted)];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t diag = 0;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    diag += counts_[i * labels_.size() + i];
  }
  return static_cast<double>(diag) / static_cast<double>(total_);
}

double ConfusionMatrix::recall(int label) const {
  const std::size_t r = index_of(label);
  std::size_t row = 0;
  for (std::size_t c = 0; c < labels_.size(); ++c) row += counts_[r * labels_.size() + c];
  if (row == 0) return 0.0;
  return static_cast<double>(counts_[r * labels_.size() + r]) / static_cast<double>(row);
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  os << "truth\\pred";
  for (int l : labels_) os << std::setw(8) << l;
  os << '\n';
  for (std::size_t r = 0; r < labels_.size(); ++r) {
    os << std::setw(10) << labels_[r];
    std::size_t row = 0;
    for (std::size_t c = 0; c < labels_.size(); ++c) row += counts_[r * labels_.size() + c];
    for (std::size_t c = 0; c < labels_.size(); ++c) {
      const double frac = row == 0 ? 0.0
                                   : static_cast<double>(counts_[r * labels_.size() + c]) /
                                         static_cast<double>(row);
      os << std::setw(8) << frac;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace sidis::ml

#include "ml/svm.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace sidis::ml {

BinarySvm::BinarySvm(SvmConfig config) : config_(config) {}

double BinarySvm::kernel(const linalg::Vector& a, const linalg::Vector& b) const {
  switch (config_.kernel) {
    case KernelType::kLinear:
      return linalg::dot(a, b);
    case KernelType::kRbf:
      return std::exp(-effective_gamma_ * linalg::squared_distance(a, b));
  }
  throw std::logic_error("BinarySvm: unknown kernel");
}

void BinarySvm::fit(const linalg::Matrix& x, const std::vector<int>& y,
                    std::uint64_t seed) {
  const std::size_t n = x.rows();
  if (n != y.size() || n < 2) throw std::invalid_argument("BinarySvm::fit: bad shapes");
  for (int v : y) {
    if (v != 1 && v != -1) throw std::invalid_argument("BinarySvm::fit: labels must be +/-1");
  }
  effective_gamma_ = config_.gamma > 0.0
                         ? config_.gamma
                         : 1.0 / static_cast<double>(std::max<std::size_t>(x.cols(), 1));

  // Precompute the kernel matrix (n is a few hundred to ~2k in this
  // pipeline, so the O(n^2) cache is the right trade).
  std::vector<double> k(n * n);
  std::vector<linalg::Vector> rows(n);
  for (std::size_t i = 0; i < n; ++i) rows[i] = x.row_vector(i);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = kernel(rows[i], rows[j]);
      k[i * n + j] = v;
      k[j * n + i] = v;
    }
  }

  std::vector<double> alpha(n, 0.0);
  double b = 0.0;
  const double c = config_.c;
  std::mt19937_64 rng(seed);

  const auto f = [&](std::size_t i) {
    double acc = b;
    for (std::size_t j = 0; j < n; ++j) {
      if (alpha[j] != 0.0) acc += alpha[j] * y[j] * k[j * n + i];
    }
    return acc;
  };

  // Simplified SMO (Platt): sweep for KKT violators, pair with a random
  // second index, solve the 2-variable subproblem analytically.
  int passes = 0;
  std::size_t iter = 0;
  while (passes < config_.max_passes && iter < config_.max_iter) {
    int changed = 0;
    for (std::size_t i = 0; i < n && iter < config_.max_iter; ++i, ++iter) {
      const double ei = f(i) - y[i];
      const bool violates = (y[i] * ei < -config_.tol && alpha[i] < c) ||
                            (y[i] * ei > config_.tol && alpha[i] > 0.0);
      if (!violates) continue;

      std::uniform_int_distribution<std::size_t> pick(0, n - 2);
      std::size_t j = pick(rng);
      if (j >= i) ++j;
      const double ej = f(j) - y[j];

      const double ai_old = alpha[i];
      const double aj_old = alpha[j];
      double lo, hi;
      if (y[i] != y[j]) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(c, c + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - c);
        hi = std::min(c, ai_old + aj_old);
      }
      if (lo >= hi) continue;

      const double eta = 2.0 * k[i * n + j] - k[i * n + i] - k[j * n + j];
      if (eta >= 0.0) continue;

      double aj = aj_old - y[j] * (ei - ej) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::abs(aj - aj_old) < config_.eps) continue;
      const double ai = ai_old + y[i] * y[j] * (aj_old - aj);

      alpha[i] = ai;
      alpha[j] = aj;

      const double b1 = b - ei - y[i] * (ai - ai_old) * k[i * n + i] -
                        y[j] * (aj - aj_old) * k[i * n + j];
      const double b2 = b - ej - y[i] * (ai - ai_old) * k[i * n + j] -
                        y[j] * (aj - aj_old) * k[j * n + j];
      if (ai > 0.0 && ai < c) {
        b = b1;
      } else if (aj > 0.0 && aj < c) {
        b = b2;
      } else {
        b = 0.5 * (b1 + b2);
      }
      ++changed;
    }
    passes = changed == 0 ? passes + 1 : 0;
  }

  // Keep only the support vectors.
  std::vector<linalg::Vector> sv;
  coeffs_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha[i] > 0.0) {
      sv.push_back(rows[i]);
      coeffs_.push_back(alpha[i] * y[i]);
    }
  }
  support_ = linalg::Matrix::from_rows(sv);
  bias_ = b;
}

double BinarySvm::decision(const linalg::Vector& x) const {
  if (coeffs_.empty()) throw std::runtime_error("BinarySvm: not fitted");
  double acc = bias_;
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    acc += coeffs_[i] * kernel(support_.row_vector(i), x);
  }
  return acc;
}

Svm::Svm(SvmConfig config) : config_(config) {}

void Svm::fit(const Dataset& train) {
  train.validate();
  labels_ = train.labels();
  if (labels_.size() < 2) throw std::invalid_argument("Svm::fit: need >= 2 classes");
  machines_.clear();
  for (std::size_t a = 0; a < labels_.size(); ++a) {
    for (std::size_t b2 = a + 1; b2 < labels_.size(); ++b2) {
      // Build the pairwise sub-dataset.
      std::vector<linalg::Vector> rows;
      std::vector<int> y;
      for (std::size_t r = 0; r < train.size(); ++r) {
        if (train.y[r] == labels_[a]) {
          rows.push_back(train.x.row_vector(r));
          y.push_back(1);
        } else if (train.y[r] == labels_[b2]) {
          rows.push_back(train.x.row_vector(r));
          y.push_back(-1);
        }
      }
      Pair p;
      p.a = a;
      p.b = b2;
      p.machine = BinarySvm(config_);
      p.machine.fit(linalg::Matrix::from_rows(rows), y,
                    0x5337 + a * 131 + b2);
      machines_.push_back(std::move(p));
    }
  }
}

int Svm::predict(const linalg::Vector& x) const {
  if (machines_.empty()) throw std::runtime_error("Svm: not fitted");
  std::vector<int> votes(labels_.size(), 0);
  for (const Pair& p : machines_) {
    ++votes[p.machine.decision(x) >= 0.0 ? p.a : p.b];
  }
  const auto best = std::max_element(votes.begin(), votes.end());
  return labels_[static_cast<std::size_t>(best - votes.begin())];
}

ScoredPrediction Svm::predict_scored(const linalg::Vector& x) const {
  if (machines_.empty()) throw std::runtime_error("Svm: not fitted");
  linalg::Vector votes(labels_.size(), 0.0);
  for (const Pair& p : machines_) {
    votes[p.machine.decision(x) >= 0.0 ? p.a : p.b] += 1.0;
  }
  return scored_from_scores(votes, labels_);
}

}  // namespace sidis::ml

// k-nearest-neighbours classifier.  Used by the Msgna et al. baseline
// (PCA + 1-NN, Table 1) and available for sweeps.
#pragma once

#include <vector>

#include "ml/classifier.hpp"

namespace sidis::ml {

class Knn : public Classifier {
 public:
  explicit Knn(std::size_t k = 1);

  void fit(const Dataset& train) override;
  int predict(const linalg::Vector& x) const override;
  std::string name() const override;

  std::size_t k() const { return k_; }

 private:
  std::size_t k_;
  Dataset train_;
};

}  // namespace sidis::ml

// k-nearest-neighbours classifier.  Used by the Msgna et al. baseline
// (PCA + 1-NN, Table 1) and available for sweeps.
#pragma once

#include <vector>

#include "ml/classifier.hpp"

namespace sidis::ml {

class Knn : public Classifier {
 public:
  explicit Knn(std::size_t k = 1);

  void fit(const Dataset& train) override;
  int predict(const linalg::Vector& x) const override;
  /// Margin is the neighbour-vote gap; top_score is the negated distance to
  /// the winning label's nearest neighbour (an off-distribution gate).
  ScoredPrediction predict_scored(const linalg::Vector& x) const override;
  std::string name() const override;

  std::size_t k() const { return k_; }

 private:
  std::size_t k_;
  Dataset train_;
};

}  // namespace sidis::ml

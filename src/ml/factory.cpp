#include "ml/factory.hpp"

#include <stdexcept>

namespace sidis::ml {

std::string to_string(ClassifierKind kind) {
  switch (kind) {
    case ClassifierKind::kLda: return "LDA";
    case ClassifierKind::kQda: return "QDA";
    case ClassifierKind::kNaiveBayes: return "Naive Bayes";
    case ClassifierKind::kSvmRbf: return "SVM";
    case ClassifierKind::kSvmLinear: return "SVM-linear";
    case ClassifierKind::kKnn: return "kNN";
  }
  throw std::invalid_argument("to_string: unknown classifier kind");
}

std::unique_ptr<Classifier> make_classifier(ClassifierKind kind,
                                            const FactoryConfig& config) {
  switch (kind) {
    case ClassifierKind::kLda:
      return std::make_unique<Lda>(config.discriminant);
    case ClassifierKind::kQda:
      return std::make_unique<Qda>(config.discriminant);
    case ClassifierKind::kNaiveBayes:
      return std::make_unique<GaussianNaiveBayes>();
    case ClassifierKind::kSvmRbf: {
      SvmConfig c = config.svm;
      c.kernel = KernelType::kRbf;
      return std::make_unique<Svm>(c);
    }
    case ClassifierKind::kSvmLinear: {
      SvmConfig c = config.svm;
      c.kernel = KernelType::kLinear;
      return std::make_unique<Svm>(c);
    }
    case ClassifierKind::kKnn:
      return std::make_unique<Knn>(config.knn_k);
  }
  throw std::invalid_argument("make_classifier: unknown classifier kind");
}

}  // namespace sidis::ml

// Common classifier interface.  The paper compares LDA, QDA, SVM (RBF) and
// naive Bayes (Sec. 5.2) plus kNN for the prior-work baselines; they all
// plug in behind this interface so every experiment harness can sweep them.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "ml/dataset.hpp"

namespace sidis::ml {

/// A prediction with its decision-confidence diagnostics, the raw material
/// of the hierarchical disassembler's reject option.  Scores are in whatever
/// units the classifier decides with (log-likelihoods for the Gaussian
/// family, one-vs-one votes for SVM, neighbour votes for kNN); the reject
/// gates calibrate thresholds per classifier from clean traces, so only the
/// *ordering* within one fitted model matters.
struct ScoredPrediction {
  int label = 0;
  /// Decision score of the winning class (outlier gate: off-distribution
  /// inputs score low against every class).
  double top_score = 0.0;
  /// Winner-vs-runner-up score gap (ambiguity gate: a corrupted trace that
  /// still lands near a class boundary has a thin margin).
  double margin = 0.0;
};

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Learns from sample rows with integer labels.  Throws
  /// std::invalid_argument on inconsistent shapes or fewer than 2 classes.
  virtual void fit(const Dataset& train) = 0;

  /// Predicted label of one sample (must match training dim).
  virtual int predict(const linalg::Vector& x) const = 0;

  /// Prediction plus decision scores.  The base implementation reports
  /// infinite confidence (gates never fire); every shipped classifier
  /// overrides it with real scores.
  virtual ScoredPrediction predict_scored(const linalg::Vector& x) const;

  /// Scored predictions for a struct-of-arrays batch: `x_cols` is
  /// (dim x lanes) with *columns* as samples; out[l] must be bit-identical
  /// to predict_scored(column l).  The base implementation loops
  /// predict_scored per column; classifiers with a lane-vectorized scoring
  /// path (QDA) override it.
  virtual std::vector<ScoredPrediction> predict_scored_batch(
      const linalg::Matrix& x_cols) const;

  /// Full per-class decision-score surface of one sample, aligned with
  /// score_labels().  This is the raw material of probabilistic sequence
  /// decoding: the hierarchical disassembler log-softmaxes these into
  /// per-window posteriors.  Returns an empty vector when the classifier
  /// exposes only hard decisions (SVM one-vs-one votes, kNN neighbour
  /// counts have no calibratable score surface); callers fall back to a
  /// one-hot posterior at the predicted label.
  virtual linalg::Vector class_scores(const linalg::Vector& x) const;

  /// Labels aligned with class_scores(); empty when class_scores() is
  /// unsupported.
  virtual const std::vector<int>& score_labels() const;

  /// Batched score surface for a struct-of-arrays batch: `x_cols` is
  /// (dim x lanes) with columns as samples; returns (classes x lanes) where
  /// column l is bit-identical to class_scores(column l).  Empty matrix when
  /// class_scores() is unsupported.  The base implementation loops
  /// class_scores per column; QDA overrides with its blocked kernel.
  virtual linalg::Matrix class_scores_batch(const linalg::Matrix& x_cols) const;

  /// Display name ("QDA", "SVM-RBF", ...).
  virtual std::string name() const = 0;

  /// Predicts every row.
  std::vector<int> predict_all(const linalg::Matrix& x) const;

  /// Fraction of correctly predicted rows.
  double accuracy(const Dataset& test) const;
};

/// Factory signature used by one-vs-one wrappers and sweep harnesses.
using ClassifierFactory = std::unique_ptr<Classifier> (*)();

/// Argmax + runner-up over a per-class score vector (aligned with `labels`)
/// -- the shared back-half of every predict_scored override.
ScoredPrediction scored_from_scores(const linalg::Vector& scores,
                                    const std::vector<int>& labels);

}  // namespace sidis::ml

// Common classifier interface.  The paper compares LDA, QDA, SVM (RBF) and
// naive Bayes (Sec. 5.2) plus kNN for the prior-work baselines; they all
// plug in behind this interface so every experiment harness can sweep them.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "ml/dataset.hpp"

namespace sidis::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Learns from sample rows with integer labels.  Throws
  /// std::invalid_argument on inconsistent shapes or fewer than 2 classes.
  virtual void fit(const Dataset& train) = 0;

  /// Predicted label of one sample (must match training dim).
  virtual int predict(const linalg::Vector& x) const = 0;

  /// Display name ("QDA", "SVM-RBF", ...).
  virtual std::string name() const = 0;

  /// Predicts every row.
  std::vector<int> predict_all(const linalg::Matrix& x) const;

  /// Fraction of correctly predicted rows.
  double accuracy(const Dataset& test) const;
};

/// Factory signature used by one-vs-one wrappers and sweep harnesses.
using ClassifierFactory = std::unique_ptr<Classifier> (*)();

}  // namespace sidis::ml

// Evaluation metrics: accuracy (the paper's "successful recognition rate"),
// confusion matrices and per-class recall.
#pragma once

#include <string>
#include <vector>

#include "ml/classifier.hpp"

namespace sidis::ml {

/// Fraction of matching entries; sizes must agree and be non-zero.
double accuracy(const std::vector<int>& truth, const std::vector<int>& predicted);

/// Confusion counts over a fixed label ordering.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::vector<int> labels);

  void add(int truth, int predicted);
  void add_all(const std::vector<int>& truth, const std::vector<int>& predicted);

  std::size_t count(int truth, int predicted) const;
  std::size_t total() const { return total_; }

  /// Overall accuracy == successful recognition rate (SR).
  double accuracy() const;

  /// Recall of one class (diagonal / row sum); 0 when the class is absent.
  double recall(int label) const;

  /// Row-normalized pretty printer for experiment logs.
  std::string to_string() const;

  const std::vector<int>& labels() const { return labels_; }

 private:
  std::size_t index_of(int label) const;
  std::vector<int> labels_;
  std::vector<std::size_t> counts_;  ///< row-major [truth][predicted]
  std::size_t total_ = 0;
};

}  // namespace sidis::ml

// Cross-validation scoring and the paper's SVM grid search
// (Sec. 5.2: best C and gamma by grid search with 3-fold CV).
#pragma once

#include <functional>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/svm.hpp"

namespace sidis::ml {

/// Builds a fresh classifier for each CV fold.
using ClassifierBuilder = std::function<std::unique_ptr<Classifier>()>;

/// Mean accuracy over k folds (train on k-1, test on the held-out fold).
double cross_val_accuracy(const ClassifierBuilder& builder, const Dataset& data,
                          std::size_t k, std::mt19937_64& rng);

/// Result of an SVM hyper-parameter grid search.
struct GridSearchResult {
  SvmConfig best;
  double best_accuracy = 0.0;
  std::vector<std::pair<SvmConfig, double>> all;  ///< every point evaluated
};

/// Grid over C x gamma with 3-fold CV, matching the paper's procedure.
/// Empty grids default to C in {0.1, 1, 10, 100}, gamma in
/// {0.01, 0.1, 0.5, 2}.
GridSearchResult svm_grid_search(const Dataset& data, std::mt19937_64& rng,
                                 std::vector<double> c_grid = {},
                                 std::vector<double> gamma_grid = {},
                                 std::size_t folds = 3);

}  // namespace sidis::ml

// Continuous wavelet transform (CWT) in the style the paper uses (Sec. 3):
// every power trace is mapped onto a 50-scale x 315-sample time-frequency
// grid, and all feature selection happens on that grid.
//
// The transform is implemented as a bank of FIR correlations with sampled,
// L2-normalized mother-wavelet kernels, one per scale.  Kernels are
// precomputed once per `Cwt` instance, so transforming thousands of traces
// amortizes the setup cost.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace sidis::dsp {

/// Mother wavelet families.  The paper cites Cohen's time-frequency text and
/// standard SCA practice; the real-valued Morlet is the default because its
/// zero mean suppresses the DC component that carries the covariate shift,
/// while Ricker ("Mexican hat") is kept for ablations.
enum class WaveletFamily {
  kMorlet,  ///< exp(-t^2/2) * cos(w0 t), w0 = 5 (admissible, ~zero mean)
  kRicker,  ///< (1 - t^2) * exp(-t^2/2)
};

/// A time-frequency map: rows = scale index j (1..n_scales, coarse->fine as
/// configured), cols = time index k (one per input sample).
using Scalogram = linalg::Matrix;

/// Configuration of the scale axis.
struct CwtConfig {
  WaveletFamily family = WaveletFamily::kMorlet;
  std::size_t num_scales = 50;   ///< paper: j = 1..50
  double min_scale = 2.0;        ///< finest scale, in samples
  double max_scale = 64.0;       ///< coarsest scale, in samples
  bool log_spacing = true;       ///< geometric scale progression (octave-like)
  double kernel_radius = 4.0;    ///< kernel support = radius * scale samples
};

/// Precomputed CWT filter bank.
class Cwt {
 public:
  explicit Cwt(CwtConfig config = {});

  /// Transforms a trace into its scalogram (num_scales x trace.size()).
  /// Boundary handling: the trace is treated as zero outside its support,
  /// matching the paper's fixed 315-sample window per instruction.
  Scalogram transform(const std::vector<double>& trace) const;

  /// Single CWT coefficient at (scale index j, time index k) -- O(kernel)
  /// instead of O(grid).  The classification path only needs the few hundred
  /// selected feature points, so this is the hot function at inference time.
  double coefficient(const std::vector<double>& trace, std::size_t j,
                     std::size_t k) const;

  /// Scale value (in samples) for scale index j in [0, num_scales).
  double scale(std::size_t j) const { return scales_.at(j); }

  /// Pseudo-frequency (cycles/sample) associated with scale index j.  For
  /// Morlet this is w0 / (2 pi s); for Ricker the peak-response frequency.
  double pseudo_frequency(std::size_t j) const;

  const CwtConfig& config() const { return config_; }
  std::size_t num_scales() const { return scales_.size(); }

 private:
  CwtConfig config_;
  std::vector<double> scales_;
  std::vector<std::vector<double>> kernels_;  ///< per-scale sampled wavelet
};

/// Evaluates the mother wavelet psi(t) for a family at unit scale.
double mother_wavelet(WaveletFamily family, double t);

}  // namespace sidis::dsp

// Continuous wavelet transform (CWT) in the style the paper uses (Sec. 3):
// every power trace is mapped onto a 50-scale x 315-sample time-frequency
// grid, and all feature selection happens on that grid.
//
// Two evaluation paths share one sampled, L2-normalized kernel bank:
//
//  * a direct path -- per-scale FIR correlation, O(N * W_j) per row, which
//    wins while kernels are short and for sparse per-point extraction;
//  * a spectral path -- one padded forward FFT of the trace, then one
//    spectral multiply + inverse FFT per *pair* of scales (two real rows
//    packed into one complex inverse transform), O(L log L) per row with
//    L = next_pow2(N + max kernel radius).
//
// Kernels are precomputed once per `Cwt` instance; their padded spectra and
// the `FftPlan` are built lazily per trace length and shared (read-only)
// across threads and across copies of the `Cwt`, so transforming thousands
// of traces amortizes all setup.  `CwtConfig::backend` selects the path;
// the default `kAuto` picks per scale by the measured crossover documented
// in DESIGN.md.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "dsp/fft.hpp"
#include "linalg/matrix.hpp"

namespace sidis::dsp {

/// Mother wavelet families.  The paper cites Cohen's time-frequency text and
/// standard SCA practice; the real-valued Morlet is the default because its
/// zero mean suppresses the DC component that carries the covariate shift,
/// while Ricker ("Mexican hat") is kept for ablations.
enum class WaveletFamily {
  kMorlet,  ///< exp(-t^2/2) * cos(w0 t), w0 = 5 (admissible, ~zero mean)
  kRicker,  ///< (1 - t^2) * exp(-t^2/2)
};

/// A time-frequency map: rows = scale index j (1..n_scales, coarse->fine as
/// configured), cols = time index k (one per input sample).
using Scalogram = linalg::Matrix;

/// CWT evaluation strategy.
enum class CwtBackend {
  kAuto,      ///< per-scale crossover between direct and spectral (default)
  kDirect,    ///< always time-domain correlation (the reference path)
  kSpectral,  ///< always FFT, even where the direct path would win
};

/// Configuration of the scale axis.
struct CwtConfig {
  WaveletFamily family = WaveletFamily::kMorlet;
  std::size_t num_scales = 50;   ///< paper: j = 1..50
  double min_scale = 2.0;        ///< finest scale, in samples
  double max_scale = 64.0;       ///< coarsest scale, in samples
  bool log_spacing = true;       ///< geometric scale progression (octave-like)
  double kernel_radius = 4.0;    ///< kernel support = radius * scale samples
  CwtBackend backend = CwtBackend::kAuto;
};

/// Reusable scratch buffers for the spectral path.  A default-constructed
/// workspace works for any transform; buffers grow on first use and are then
/// reused, so steady-state transforms are allocation-free (except for the
/// returned scalogram itself).  Not thread-safe: use one per worker.
class CwtWorkspace {
 public:
  CwtWorkspace() = default;

 private:
  friend class Cwt;
  ComplexVector freq_;   ///< forward spectrum of the current padded trace
  ComplexVector work_;   ///< per-pair multiply / inverse-FFT scratch
};

/// Scratch for the batch (struct-of-arrays) paths: the lane-contiguous trace
/// block, the batched spectra, and the per-point accumulators.  Grow-once
/// like CwtWorkspace; one instance serves any batch width/length sequence.
/// Not thread-safe: use one per worker.
class CwtBatchWorkspace {
 public:
  CwtBatchWorkspace() = default;

  /// The marshalling buffer, exposed for callers that drive Cwt::marshal +
  /// coefficients_soa themselves (grow-once reuse instead of a fresh
  /// allocation per batch).  Safe to hand back to coefficients_soa: the
  /// batch routines only write freq_/work_/acc_ after marshalling.
  std::vector<double>& soa_scratch() { return soa_; }

 private:
  friend class Cwt;
  std::vector<double> soa_;   ///< traces, lane-contiguous: [sample][lane]
  std::vector<double> row_;   ///< one batched output row: [sample][lane]
  std::vector<double> acc_;   ///< per-lane correlation accumulators
  BatchComplex freq_;         ///< forward spectra of the padded batch
  BatchComplex work_;         ///< per-pair multiply / inverse scratch
};

/// Precomputed CWT filter bank.
class Cwt {
 public:
  explicit Cwt(CwtConfig config = {});

  /// Transforms a trace into its scalogram (num_scales x trace.size()).
  /// Boundary handling: the trace is treated as zero outside its support,
  /// matching the paper's fixed 315-sample window per instruction.
  /// The workspace overload reuses the caller's scratch buffers; the
  /// convenience overload allocates its own.
  Scalogram transform(const std::vector<double>& trace) const;
  Scalogram transform(const std::vector<double>& trace, CwtWorkspace& ws) const;

  /// Single CWT coefficient at (scale index j, time index k) -- one kernel
  /// correlation, always time-domain.  The classification path only needs a
  /// few hundred selected feature points, so this is the hot function at
  /// inference time.
  double coefficient(const std::vector<double>& trace, std::size_t j,
                     std::size_t k) const;

  /// Batched coefficient extraction: values of the (js[i], ks[i]) grid
  /// points, in input order (js and ks must have equal length).  Points are
  /// grouped by scale internally; once one scale holds enough points, the
  /// whole spectral row is computed instead of per-point correlations (the
  /// forward trace FFT amortizes across all such scales).  With
  /// `CwtBackend::kDirect` every point stays a per-point correlation.
  linalg::Vector coefficients(const std::vector<double>& trace,
                              std::span<const std::size_t> js,
                              std::span<const std::size_t> ks,
                              CwtWorkspace& ws) const;

  /// Batch of same-length traces, addressed by pointer (struct-of-arrays
  /// marshalling happens inside, against the workspace's grow-once buffers).
  using TraceBatch = std::span<const std::vector<double>* const>;

  /// Batched full transform: scalogram i is bit-identical to
  /// transform(*traces[i]), but the whole batch moves through the spectral
  /// machinery struct-of-arrays -- one interleaved FFT pass over all lanes,
  /// one vectorized spectral multiply + inverse per packed scale pair, and
  /// lane-vectorized direct correlation for the sub-crossover scales.
  /// Throws std::invalid_argument on an empty batch or mixed trace lengths.
  std::vector<Scalogram> transform_batch(TraceBatch traces,
                                         CwtBatchWorkspace& ws) const;

  /// Batched sparse extraction, struct-of-arrays result: the matrix is
  /// (js.size() x traces.size()) with *columns* as windows, so column w is
  /// bit-identical to coefficients(*traces[w], js, ks, ws) -- same per-scale
  /// direct/spectral decision, same arithmetic per lane -- while the kernel
  /// taps, packed spectra, and FFT twiddles load once per batch instead of
  /// once per window, and every inner loop runs lane-contiguous.  The
  /// point-major layout feeds FeaturePipeline::transform_prepared_batch
  /// without a transpose.
  linalg::Matrix coefficients_batch(TraceBatch traces,
                                    std::span<const std::size_t> js,
                                    std::span<const std::size_t> ks,
                                    CwtBatchWorkspace& ws) const;

  /// Marshals a batch of same-length traces into the lane-contiguous SoA
  /// block soa[t * lanes + l] = traces[l][t] (write-contiguous: the lane
  /// loop is innermost, so the reads are `lanes` sequential streams and the
  /// writes one).  Returns the common trace length.  Throws
  /// std::invalid_argument on an empty batch or mixed trace lengths.
  /// Callers that run several feature pipelines over one batch marshal once
  /// through this and feed the block to coefficients_soa /
  /// FeaturePipeline::transform_soa_batch, instead of paying the marshal per
  /// pipeline.
  static std::size_t marshal(TraceBatch traces, std::vector<double>& soa);

  /// coefficients_batch on a pre-marshalled SoA block (layout and guarantees
  /// as documented on marshal/coefficients_batch): `soa` holds `n * lanes`
  /// doubles and is NOT aliased by the workspace's own buffers.  Column w is
  /// bit-identical to coefficients(trace w, js, ks, ws).
  linalg::Matrix coefficients_soa(std::span<const double> soa, std::size_t n,
                                  std::size_t lanes,
                                  std::span<const std::size_t> js,
                                  std::span<const std::size_t> ks,
                                  CwtBatchWorkspace& ws) const;

  /// Scale value (in samples) for scale index j in [0, num_scales).
  double scale(std::size_t j) const { return scales_.at(j); }

  /// Kernel support width (taps) at scale index j.
  std::size_t kernel_width(std::size_t j) const { return kernels_.at(j).size(); }

  /// Pseudo-frequency (cycles/sample) associated with scale index j.  For
  /// Morlet this is w0 / (2 pi s); for Ricker the peak-response frequency.
  double pseudo_frequency(std::size_t j) const;

  const CwtConfig& config() const { return config_; }
  std::size_t num_scales() const { return scales_.size(); }

 private:
  /// Per-trace-length spectral machinery: the FFT plan plus the padded
  /// kernel spectra, packed two scales per complex spectrum (row pair =
  /// real/imaginary parts of one inverse transform).  Immutable once built.
  struct SpectralBank;
  /// Lazily grown, mutex-guarded bank list shared across copies of this Cwt
  /// (copies see the same scales/kernels, so sharing is sound).
  struct BankCache;

  const SpectralBank& bank_for(std::size_t trace_len) const;
  void direct_row(const std::vector<double>& trace, std::size_t j,
                  std::span<double> out) const;

  CwtConfig config_;
  std::vector<double> scales_;
  std::vector<std::vector<double>> kernels_;  ///< per-scale sampled wavelet
  std::shared_ptr<BankCache> banks_;
};

/// Evaluates the mother wavelet psi(t) for a family at unit scale.
double mother_wavelet(WaveletFamily family, double t);

}  // namespace sidis::dsp

// Minimal FFT machinery.
//
// Used for spectral diagnostics of the simulated scope front-end and for
// fast convolution when CWT kernels get long at large scales.  Radix-2
// iterative Cooley-Tukey; callers zero-pad to a power of two with
// `next_pow2`.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace sidis::dsp {

using Complex = std::complex<double>;
using ComplexVector = std::vector<Complex>;

/// Smallest power of two >= n (n = 0 maps to 1).
std::size_t next_pow2(std::size_t n);

/// In-place forward FFT; `x.size()` must be a power of two.
void fft(ComplexVector& x);

/// In-place inverse FFT (includes the 1/N scaling).
void ifft(ComplexVector& x);

/// Forward FFT of a real signal, zero-padded to the next power of two.
ComplexVector rfft(const std::vector<double>& x);

/// Magnitude spectrum |rfft(x)| truncated to the first N/2+1 bins.
std::vector<double> magnitude_spectrum(const std::vector<double>& x);

/// Linear convolution of two real signals via FFT; result length is
/// a.size() + b.size() - 1.  Falls back to direct convolution for tiny
/// inputs where FFT overhead dominates.
std::vector<double> convolve(const std::vector<double>& a,
                             const std::vector<double>& b);

}  // namespace sidis::dsp

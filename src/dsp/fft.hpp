// Minimal FFT machinery.
//
// Used for spectral diagnostics of the simulated scope front-end, for fast
// convolution when CWT kernels get long at large scales, and as the engine
// behind the spectral CWT path in wavelet.hpp.  Radix-2 iterative
// Cooley-Tukey; callers zero-pad to a power of two with `next_pow2`.
//
// Hot paths should hold an `FftPlan`: it caches the bit-reversal permutation
// and per-stage twiddle tables once per size, so repeated transforms do no
// trig and no allocation.  The free `fft`/`ifft` functions route through a
// thread-local plan cache and keep their historical signatures.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sidis::dsp {

using Complex = std::complex<double>;
using ComplexVector = std::vector<Complex>;

/// Smallest power of two >= n (n = 0 maps to 1).
std::size_t next_pow2(std::size_t n);

/// Struct-of-arrays batch of complex sequences: `lanes` sequences of length
/// `length`, split into real/imaginary planes with lane-contiguous storage
/// (element i of lane l lives at [i * lanes + l]).  This is the layout the
/// batch CWT hot path runs on: every butterfly / spectral-multiply inner loop
/// walks a contiguous block of `lanes` doubles, which the compiler vectorizes
/// without any arch-specific intrinsics.
struct BatchComplex {
  std::vector<double> re;
  std::vector<double> im;
  std::size_t lanes = 0;

  std::size_t length() const { return lanes == 0 ? 0 : re.size() / lanes; }

  /// Resizes to `length` x `lanes` and zero-fills both planes.
  void assign(std::size_t length, std::size_t num_lanes) {
    lanes = num_lanes;
    re.assign(length * num_lanes, 0.0);
    im.assign(length * num_lanes, 0.0);
  }
};

/// Precomputed radix-2 FFT plan for one power-of-two size: bit-reversal
/// permutation plus stage-concatenated twiddle tables.  Construction is the
/// only place that touches libm; `forward`/`inverse` are allocation-free and
/// run in-place on caller-provided buffers.  A plan is immutable after
/// construction, so one instance may serve any number of threads.
class FftPlan {
 public:
  /// Throws std::invalid_argument unless `n` is a power of two.
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place forward DFT; `x.size()` must equal `size()`.
  void forward(ComplexVector& x) const;

  /// In-place inverse DFT (includes the 1/N scaling).
  void inverse(ComplexVector& x) const;

  /// SoA batch transforms: every lane of `x` (length must equal `size()`)
  /// undergoes the same butterfly schedule as the scalar `forward`/`inverse`,
  /// with the lane dimension innermost, so each lane's result is
  /// bit-identical to a scalar transform of that lane while the twiddle and
  /// permutation work amortizes across the whole batch and the inner loops
  /// vectorize.
  void forward_batch(BatchComplex& x) const;
  void inverse_batch(BatchComplex& x) const;

  /// Thread-local plan cache keyed by size; the returned reference stays
  /// valid for the lifetime of the calling thread.
  static const FftPlan& shared(std::size_t n);

 private:
  void run(ComplexVector& x, bool inverse) const;
  void run_batch(BatchComplex& x, bool inverse) const;

  std::size_t n_ = 0;
  std::vector<std::uint32_t> bitrev_;  ///< permutation, identity-skipping pairs
  ComplexVector twiddle_;              ///< forward twiddles, n-1 entries
};

/// In-place forward FFT; `x.size()` must be a power of two.
void fft(ComplexVector& x);

/// In-place inverse FFT (includes the 1/N scaling).
void ifft(ComplexVector& x);

/// Forward FFT of a real signal, zero-padded to the next power of two.
ComplexVector rfft(const std::vector<double>& x);

/// Magnitude spectrum |rfft(x)| truncated to the first N/2+1 bins.
std::vector<double> magnitude_spectrum(const std::vector<double>& x);

/// Linear convolution of two real signals via FFT; result length is
/// a.size() + b.size() - 1.  Falls back to direct convolution for tiny
/// inputs where FFT overhead dominates.
std::vector<double> convolve(const std::vector<double>& a,
                             const std::vector<double>& b);

}  // namespace sidis::dsp
